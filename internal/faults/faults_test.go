package faults

import (
	"context"
	"errors"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestParseGrammar(t *testing.T) {
	in, err := Parse("stage:degree=panic,cache:read=ioerror:times=all,stage:eigen=slow:delay=5ms:after=2,*=error:p=0.5", 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.rules) != 4 {
		t.Fatalf("rules = %d, want 4", len(in.rules))
	}
	r := in.rules[0].Rule
	if r.Point != "stage:degree" || r.Kind != KindPanic || r.Times != 1 {
		t.Fatalf("rule 0 = %+v", r)
	}
	r = in.rules[1].Rule
	if r.Kind != KindIOError || r.Times != -1 {
		t.Fatalf("rule 1 = %+v", r)
	}
	r = in.rules[2].Rule
	if r.Kind != KindSlow || r.Delay != 5*time.Millisecond || r.After != 2 {
		t.Fatalf("rule 2 = %+v", r)
	}
	r = in.rules[3].Rule
	if r.Point != "*" || r.P != 0.5 {
		t.Fatalf("rule 3 = %+v", r)
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"degree=panic",           // bare point
		"stage:degree",           // no kind
		"stage:degree=explode",   // unknown kind
		"stage:=error",           // empty stage name
		"cache:mmap=error",       // unknown cache op
		"stage:degree=error:n=3", // unknown option
		"stage:degree=error:times=0",
		"stage:degree=error:p=2",
		"stage:degree=slow:delay=x",
	} {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) accepted, want error", spec)
		}
	}
	in, err := Parse("", 1)
	if err != nil || len(in.rules) != 0 {
		t.Fatalf("empty spec: %v, %d rules", err, len(in.rules))
	}
}

func TestErrorKindWrapsSentinel(t *testing.T) {
	in := New(1, Rule{Point: "stage:degree", Kind: KindError})
	err := in.Stage(context.Background(), "degree")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	// Times defaults to once: the fault clears after firing.
	if err := in.Stage(context.Background(), "degree"); err != nil {
		t.Fatalf("second hit = %v, want nil", err)
	}
	if got := in.Fired("stage:degree"); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
}

func TestPanicKindPanics(t *testing.T) {
	in := New(1, Rule{Point: "stage:degree", Kind: KindPanic})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("no panic")
		}
		// The injector's lock must be released before the panic unwinds.
		if err := in.Stage(context.Background(), "degree"); err != nil {
			t.Fatalf("post-panic hit = %v, want nil (rule exhausted)", err)
		}
	}()
	in.Stage(context.Background(), "degree")
}

func TestCancelKindInvokesBoundCancel(t *testing.T) {
	in := New(1, Rule{Point: "stage:eigen", Kind: KindCancel})
	cancelled := false
	in.BindCancel(func() { cancelled = true })
	err := in.Stage(context.Background(), "eigen")
	if !errors.Is(err, ErrInjected) || !cancelled {
		t.Fatalf("err = %v, cancelled = %v", err, cancelled)
	}
}

func TestENOSPCKind(t *testing.T) {
	in := New(1, Rule{Point: "cache:store", Kind: KindENOSPC})
	err := in.Cache("store")
	if !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ENOSPC wrapping ErrInjected", err)
	}
}

func TestNetKindsWrapSentinels(t *testing.T) {
	in, err := Parse("net:w1=drop,net:*=5xx", 1)
	if err != nil {
		t.Fatal(err)
	}
	// First hit on w1: the drop rule fires (declaration order).
	if err := in.Net(context.Background(), "w1"); !errors.Is(err, ErrDropped) || !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrDropped wrapping ErrInjected", err)
	}
	// w2 never matches the drop rule; the wildcard 5xx rule fires.
	if err := in.Net(context.Background(), "w2"); !errors.Is(err, ErrHTTP5xx) {
		t.Fatalf("err = %v, want ErrHTTP5xx", err)
	}
	// Both rules exhausted (Times defaults to once).
	if err := in.Net(context.Background(), "w1"); err != nil {
		t.Fatalf("exhausted rules still fired: %v", err)
	}
	if got := in.Fired("net:w1"); got != 1 {
		t.Fatalf("Fired(net:w1) = %d, want 1", got)
	}
}

func TestNetPointValidation(t *testing.T) {
	if _, err := Parse("net:=drop", 1); err == nil {
		t.Fatal("empty worker name accepted")
	}
	if _, err := Parse("net:127.0.0.1:9001=slow:delay=2ms", 1); err != nil {
		t.Fatalf("host:port point rejected: %v", err)
	}
}

func TestSlowKindDelaysAndProceeds(t *testing.T) {
	in := New(1, Rule{Point: "stage:degree", Kind: KindSlow, Delay: 10 * time.Millisecond, Times: -1})
	start := time.Now()
	if err := in.Stage(context.Background(), "degree"); err != nil {
		t.Fatalf("slow hook errored: %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("returned after %v, want >= 10ms", d)
	}
}

func TestSlowKindHonorsContext(t *testing.T) {
	in := New(1, Rule{Point: "stage:degree", Kind: KindSlow, Delay: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := in.Stage(ctx, "degree")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestAfterAndTimesWindow(t *testing.T) {
	in := New(1, Rule{Point: "cache:read", Kind: KindIOError, After: 2, Times: 2})
	var got []bool
	for i := 0; i < 6; i++ {
		got = append(got, in.Cache("read") != nil)
	}
	want := []bool{false, false, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d: fired=%v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestWildcardMatching(t *testing.T) {
	in := New(1, Rule{Point: "stage:*", Kind: KindError, Times: -1})
	if err := in.Stage(context.Background(), "degree"); err == nil {
		t.Fatal("stage:* did not match stage:degree")
	}
	if err := in.Cache("read"); err != nil {
		t.Fatal("stage:* matched cache:read")
	}
}

func TestProbabilityGateIsSeedDeterministic(t *testing.T) {
	fire := func(seed uint64) string {
		in := New(seed, Rule{Point: "stage:x", Kind: KindError, Times: -1, P: 0.5})
		var b strings.Builder
		for i := 0; i < 32; i++ {
			if in.Stage(context.Background(), "x") != nil {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		return b.String()
	}
	a, b := fire(42), fire(42)
	if a != b {
		t.Fatalf("same seed diverged: %s vs %s", a, b)
	}
	if !strings.Contains(a, "0") || !strings.Contains(a, "1") {
		t.Fatalf("p=0.5 produced a constant sequence: %s", a)
	}
	if c := fire(43); c == a {
		t.Fatalf("different seeds produced identical sequences: %s", c)
	}
}
