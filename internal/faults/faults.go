// Package faults is a deterministic fault-injection layer for the
// characterization stack. An Injector holds an ordered list of seeded,
// rule-based injection points; the pipeline scheduler consults Stage before
// each stage attempt and the result cache consults Cache before each disk
// operation, so tests (and eliteserve's hidden -faults flag) can force
// stage panics, stage errors, slow stages, cache I/O errors, disk-full
// conditions and mid-run cancellations at chosen points without touching
// production code paths.
//
// Rules are matched in declaration order against hierarchical point names
// ("stage:degree", "cache:read", "cache:store", "net:127.0.0.1:9001"); a
// trailing "*" in a rule's Point is a prefix wildcard. Each rule fires
// inside a hit window (After skipped hits, then Times fires) and,
// optionally, behind a seeded probability gate — the same seed and the same
// sequence of hits always produce the same injections, which is what lets
// the chaos suite assert exact degraded bodies and exact recovery.
//
// The "net:" points are the fleet's network fault surface: eliterouter's
// transport consults Net before every proxied attempt, so rules can inject
// added latency (slow), connection drops (drop) and synthesized 5xx bursts
// (5xx) per worker — which is how the chaos suite exercises failover,
// hedging and the per-worker circuit breaker deterministically, without a
// flaky network.
//
// The textual rule grammar accepted by Parse:
//
//	rule     := point "=" kind { ":" key "=" value }
//	spec     := rule { "," rule }
//	point    := "stage:" name | "cache:" op | "net:" worker | "*"
//	           (name/op/worker may be "*")
//	kind     := "panic" | "error" | "slow" | "cancel" | "ioerror" |
//	           "enospc" | "drop" | "5xx"
//	key      := "after" | "times" | "delay" | "p"     (times accepts "all")
//
// Example: "stage:degree=panic,net:*=drop:times=3,net:*=slow:delay=5ms:p=0.2".
package faults

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// ErrInjected is the sentinel every injected (non-panic) failure wraps, so
// tests can tell an injected fault from an organic one.
var ErrInjected = errors.New("faults: injected failure")

// ErrDropped is the sentinel KindDrop failures wrap (alongside
// ErrInjected): the network transport maps it to a torn connection.
var ErrDropped = errors.New("connection dropped")

// ErrHTTP5xx is the sentinel Kind5xx failures wrap (alongside
// ErrInjected): the network transport maps it to a synthesized 503
// response from the worker, as if it were overloaded.
var ErrHTTP5xx = errors.New("upstream 5xx")

// Kind is the failure mode a rule injects.
type Kind int

// Injection kinds.
const (
	// KindError makes the hook return an error wrapping ErrInjected.
	KindError Kind = iota
	// KindPanic makes the hook panic (the pipeline must contain it).
	KindPanic
	// KindSlow delays the hook by Rule.Delay, honoring the context, then
	// lets execution proceed (it composes with other rules at the point).
	KindSlow
	// KindCancel invokes the cancel function bound with BindCancel (the
	// run's own cancellation) and returns an error wrapping ErrInjected.
	KindCancel
	// KindIOError makes the hook return a generic injected I/O error.
	KindIOError
	// KindENOSPC makes the hook return an error wrapping syscall.ENOSPC.
	KindENOSPC
	// KindDrop makes the hook return an error wrapping ErrDropped; the
	// router's transport surfaces it as a connection torn mid-request.
	KindDrop
	// Kind5xx makes the hook return an error wrapping ErrHTTP5xx; the
	// router's transport surfaces it as a synthesized 503 from the worker.
	Kind5xx
)

// String names the kind in the Parse grammar's vocabulary.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindSlow:
		return "slow"
	case KindCancel:
		return "cancel"
	case KindIOError:
		return "ioerror"
	case KindENOSPC:
		return "enospc"
	case KindDrop:
		return "drop"
	case Kind5xx:
		return "5xx"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// defaultSlowDelay is the injected latency for KindSlow rules that set no
// Delay.
const defaultSlowDelay = 50 * time.Millisecond

// Rule is one injection: fire Kind at every point matching Point, within
// the (After, Times) hit window, behind an optional probability gate.
type Rule struct {
	// Point is the injection point: "stage:<name>" or "cache:<op>" (ops:
	// read, write, store), with a trailing "*" acting as a prefix wildcard.
	Point string
	// Kind is the injected failure mode.
	Kind Kind
	// After skips the first After matching hits before the rule arms.
	After int
	// Times bounds how often the rule fires once armed (0 means once;
	// negative means unlimited).
	Times int
	// Delay is the injected latency for KindSlow (0 means 50ms).
	Delay time.Duration
	// P gates each eligible hit on a seeded coin flip when 0 < P < 1
	// (0 and >= 1 both mean "always").
	P float64
}

// ruleState is a Rule plus its per-run counters.
type ruleState struct {
	Rule
	hits  int
	fired int
}

// Injector evaluates rules at injection points. All methods are safe for
// concurrent use; with concurrent stages the hit order (and therefore which
// hit a windowed or probabilistic rule fires on) follows the schedule, so
// deterministic tests should either serialize stages or use rules that fire
// on every hit.
type Injector struct {
	mu     sync.Mutex
	rules  []*ruleState
	rng    uint64
	cancel func()
	fired  map[string]int
}

// New builds an injector over rules; seed drives the probability gates.
func New(seed uint64, rules ...Rule) *Injector {
	in := &Injector{rng: seed, fired: map[string]int{}}
	for _, r := range rules {
		if r.Times == 0 {
			r.Times = 1
		}
		if r.Delay == 0 {
			r.Delay = defaultSlowDelay
		}
		in.rules = append(in.rules, &ruleState{Rule: r})
	}
	return in
}

// BindCancel registers the function KindCancel rules invoke — callers bind
// the run context's cancel before starting the pipeline. A nil fn unbinds.
func (in *Injector) BindCancel(fn func()) {
	in.mu.Lock()
	in.cancel = fn
	in.mu.Unlock()
}

// Stage is the pipeline hook: it fires any rules matching "stage:<name>".
// A KindPanic rule panics; other terminal kinds return an error the
// scheduler records as the stage's failure.
func (in *Injector) Stage(ctx context.Context, name string) error {
	return in.fire(ctx, "stage:"+name)
}

// Cache is the result-cache hook for disk operations ("read", "write",
// "store"): it fires any rules matching "cache:<op>". The cache layer
// treats a returned error as that operation's I/O failure.
func (in *Injector) Cache(op string) error {
	return in.fire(context.Background(), "cache:"+op)
}

// Net is the network-transport hook: it fires any rules matching
// "net:<name>" (name is the target worker's host:port) before a proxied
// attempt. KindSlow rules delay the attempt honoring ctx; a returned error
// wrapping ErrDropped means the connection drops, one wrapping ErrHTTP5xx
// means the worker answers 503.
func (in *Injector) Net(ctx context.Context, name string) error {
	return in.fire(ctx, "net:"+name)
}

// Fired reports how many injections have fired at point (exact name, not
// pattern).
func (in *Injector) Fired(point string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[point]
}

// TotalFired reports how many injections have fired anywhere.
func (in *Injector) TotalFired() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for _, v := range in.fired {
		n += v
	}
	return n
}

// match reports whether pattern covers point ("*" suffix is a prefix
// wildcard).
func match(pattern, point string) bool {
	if pattern == point {
		return true
	}
	if strings.HasSuffix(pattern, "*") {
		return strings.HasPrefix(point, pattern[:len(pattern)-1])
	}
	return false
}

// fire evaluates every rule at point. Rule state advances under the lock;
// the injected action itself (sleeping, panicking, cancelling) happens
// outside it, so a contained panic can never strand the injector's mutex.
func (in *Injector) fire(ctx context.Context, point string) error {
	in.mu.Lock()
	var delays []time.Duration
	var term *ruleState
	for _, rs := range in.rules {
		if !match(rs.Point, point) {
			continue
		}
		rs.hits++
		if rs.hits <= rs.After {
			continue
		}
		if rs.Times >= 0 && rs.fired >= rs.Times {
			continue
		}
		if rs.P > 0 && rs.P < 1 && in.randFloat() >= rs.P {
			continue
		}
		rs.fired++
		in.fired[point]++
		if rs.Kind == KindSlow {
			delays = append(delays, rs.Delay)
			continue
		}
		term = rs
		break
	}
	cancel := in.cancel
	in.mu.Unlock()

	for _, d := range delays {
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
	if term == nil {
		return nil
	}
	switch term.Kind {
	case KindPanic:
		panic(fmt.Sprintf("faults: injected panic at %s", point))
	case KindCancel:
		if cancel != nil {
			cancel()
		}
		return fmt.Errorf("%w: run cancelled at %s", ErrInjected, point)
	case KindIOError:
		return fmt.Errorf("%w: I/O error at %s", ErrInjected, point)
	case KindENOSPC:
		return fmt.Errorf("%w at %s: %w", ErrInjected, point, syscall.ENOSPC)
	case KindDrop:
		return fmt.Errorf("%w: %w at %s", ErrInjected, ErrDropped, point)
	case Kind5xx:
		return fmt.Errorf("%w: %w at %s", ErrInjected, ErrHTTP5xx, point)
	default:
		return fmt.Errorf("%w at %s", ErrInjected, point)
	}
}

// randFloat advances the seeded SplitMix64 stream and returns a uniform
// draw in [0, 1).
func (in *Injector) randFloat() float64 {
	in.rng += 0x9e3779b97f4a7c15
	z := in.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// Parse builds an injector from the textual rule grammar (see the package
// comment). An empty spec yields an injector with no rules.
func Parse(spec string, seed uint64) (*Injector, error) {
	var rules []Rule
	for _, raw := range strings.Split(spec, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		r, err := parseRule(raw)
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return New(seed, rules...), nil
}

func parseRule(raw string) (Rule, error) {
	point, rest, ok := strings.Cut(raw, "=")
	if !ok {
		return Rule{}, fmt.Errorf("faults: rule %q: want point=kind[:key=value...]", raw)
	}
	if err := checkPoint(point); err != nil {
		return Rule{}, err
	}
	parts := strings.Split(rest, ":")
	r := Rule{Point: point}
	switch parts[0] {
	case "error":
		r.Kind = KindError
	case "panic":
		r.Kind = KindPanic
	case "slow":
		r.Kind = KindSlow
	case "cancel":
		r.Kind = KindCancel
	case "ioerror":
		r.Kind = KindIOError
	case "enospc":
		r.Kind = KindENOSPC
	case "drop":
		r.Kind = KindDrop
	case "5xx":
		r.Kind = Kind5xx
	default:
		return Rule{}, fmt.Errorf("faults: rule %q: unknown kind %q (want panic|error|slow|cancel|ioerror|enospc|drop|5xx)", raw, parts[0])
	}
	for _, opt := range parts[1:] {
		key, val, ok := strings.Cut(opt, "=")
		if !ok {
			return Rule{}, fmt.Errorf("faults: rule %q: option %q: want key=value", raw, opt)
		}
		switch key {
		case "after":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return Rule{}, fmt.Errorf("faults: rule %q: bad after %q", raw, val)
			}
			r.After = n
		case "times":
			if val == "all" {
				r.Times = -1
				break
			}
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return Rule{}, fmt.Errorf("faults: rule %q: bad times %q (want a positive count or \"all\")", raw, val)
			}
			r.Times = n
		case "delay":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return Rule{}, fmt.Errorf("faults: rule %q: bad delay %q", raw, val)
			}
			r.Delay = d
		case "p":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return Rule{}, fmt.Errorf("faults: rule %q: bad p %q (want [0,1])", raw, val)
			}
			r.P = p
		default:
			return Rule{}, fmt.Errorf("faults: rule %q: unknown option %q (want after|times|delay|p)", raw, key)
		}
	}
	return r, nil
}

// checkPoint validates a rule's point against the known vocabulary, so a
// typoed stage prefix fails at parse time rather than silently never firing.
func checkPoint(point string) error {
	if point == "*" {
		return nil
	}
	if name, ok := strings.CutPrefix(point, "stage:"); ok {
		if name == "" {
			return fmt.Errorf("faults: point %q: empty stage name", point)
		}
		return nil
	}
	if op, ok := strings.CutPrefix(point, "cache:"); ok {
		switch op {
		case "read", "write", "store", "*":
			return nil
		}
		return fmt.Errorf("faults: point %q: unknown cache op (want read|write|store|*)", point)
	}
	if name, ok := strings.CutPrefix(point, "net:"); ok {
		if name == "" {
			return fmt.Errorf("faults: point %q: empty worker name", point)
		}
		return nil
	}
	return fmt.Errorf("faults: point %q: want stage:<name>, cache:<op>, net:<worker> or *", point)
}
