package mathx

import "math"

// RNG is a deterministic pseudo-random number generator based on
// xoshiro256** (Blackman & Vigna). Every stochastic component in the library
// takes an explicit *RNG so that datasets, generators and bootstrap
// procedures are exactly reproducible from a seed. It intentionally does not
// implement math/rand.Source so that callers cannot accidentally mix in
// global, unseeded randomness.
type RNG struct {
	s [4]uint64
	// cached spare normal deviate for the Box–Muller polar method.
	hasSpare bool
	spare    float64
}

// NewRNG returns a generator seeded from a single 64-bit seed via SplitMix64,
// which guarantees a well-distributed initial state even for small seeds.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed resets r in place to the state NewRNG(seed) would construct,
// discarding any cached normal deviate. It lets hot loops (the bootstrap's
// per-replicate derived streams) reuse one generator instead of allocating a
// fresh one per item.
func (r *RNG) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		r.s[i] = splitmix64(sm)
	}
	// A state of all zeros is invalid for xoshiro; SplitMix64 cannot
	// produce four consecutive zeros, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	r.hasSpare = false
	r.spare = 0
}

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche mix used for
// seeding and stream derivation.
func splitmix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split returns a new generator deterministically derived from this one.
// It is used to give independent streams to concurrent workers. Unlike
// Derive it consumes from this generator's stream, so the result depends on
// how many draws preceded it.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

// Derive returns an independent generator keyed by label: a pure function of
// this generator's current state and the label's bytes, mixed SplitMix64-style.
// It does not advance this generator, so derivations commute — any set of
// Derive calls yields the same streams regardless of order or interleaving
// with each other. The concurrent analysis pipeline relies on this to hand
// every stage its own reproducible randomness whatever the schedule.
func (r *RNG) Derive(label string) *RNG {
	out := &RNG{}
	r.DeriveInto(out, []byte(label))
	return out
}

// DeriveInto reseeds dst to the exact stream Derive(string(label)) would
// return, without allocating. It exists for per-item derivations inside
// steady-state hot loops (one bootstrap replicate per label); dst may be r
// itself.
func (r *RNG) DeriveInto(dst *RNG, label []byte) {
	const fnvOffset, fnvPrime = 14695981039346656037, 1099511628211
	h := uint64(fnvOffset)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= fnvPrime
	}
	dst.Reseed(r.deriveSeed(h))
}

// deriveSeed folds a label hash into this generator's state, SplitMix64-style.
func (r *RNG) deriveSeed(h uint64) uint64 {
	seed := h
	for _, s := range r.s {
		seed = splitmix64(seed + 0x9e3779b97f4a7c15 + s)
	}
	return seed
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mathx: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	v := r.Uint64()
	bound := uint64(n)
	hi, lo := mul64(v, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			v = r.Uint64()
			hi, lo = mul64(v, bound)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + (w1 >> 32)
	lo = a * b
	return
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform float64 in (0, 1), never exactly zero, which
// keeps log() and quantile transforms finite.
func (r *RNG) Float64Open() float64 {
	for {
		v := r.Float64()
		if v > 0 {
			return v
		}
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Normal returns a standard normal deviate by the Marsaglia polar method.
func (r *RNG) Normal() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		m := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * m
		r.hasSpare = true
		return u * m
	}
}

// LogNormal returns a lognormal deviate with location mu and scale sigma.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Normal())
}

// Exponential returns an exponential deviate with rate lambda.
func (r *RNG) Exponential(lambda float64) float64 {
	return -math.Log(r.Float64Open()) / lambda
}

// Pareto returns a continuous Pareto deviate with minimum xmin and density
// exponent alpha (p(x) ∝ x^-alpha for x >= xmin, alpha > 1). The tail index
// of the CCDF is alpha-1.
func (r *RNG) Pareto(xmin, alpha float64) float64 {
	return xmin * math.Pow(r.Float64Open(), -1/(alpha-1))
}

// ParetoInt returns a discrete power-law deviate with support {xmin, xmin+1,
// ...} and density exponent alpha, by the continuous-approximation method of
// Clauset et al. (2009), appendix D: round(x - 0.5) of a continuous Pareto
// with xmin - 0.5.
func (r *RNG) ParetoInt(xmin int, alpha float64) int {
	x := r.Pareto(float64(xmin)-0.5, alpha)
	v := int(math.Floor(x + 0.5))
	if v < xmin {
		v = xmin
	}
	return v
}

// Poisson returns a Poisson deviate with mean mu. For small mu it uses
// Knuth's product method; for large mu the PTRS transformed-rejection method
// of Hörmann, which stays O(1).
func (r *RNG) Poisson(mu float64) int {
	if mu <= 0 {
		return 0
	}
	if mu < 30 {
		l := math.Exp(-mu)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// PTRS (Hörmann 1993).
	smu := math.Sqrt(mu)
	b := 0.931 + 2.53*smu
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + mu + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		lg, _ := math.Lgamma(k + 1)
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*math.Log(mu)-mu-lg {
			return int(k)
		}
	}
}

// Zipf returns a deviate from a bounded Zipf distribution over {1, ..., n}
// with exponent s, by inversion over the precomputed CDF in ZipfSampler; this
// convenience method rebuilds the table each call and is intended for
// one-off sampling in tests.
func (r *RNG) Zipf(n int, s float64) int {
	z := NewZipfSampler(n, s)
	return z.Sample(r)
}

// Shuffle permutes the first n elements using the provided swap function
// (Fisher–Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// ZipfSampler draws from a bounded Zipf distribution over {1..n} with
// exponent s via binary search on the cumulative weights.
type ZipfSampler struct {
	cum []float64
}

// NewZipfSampler precomputes the cumulative distribution.
func NewZipfSampler(n int, s float64) *ZipfSampler {
	cum := make([]float64, n)
	total := 0.0
	for k := 1; k <= n; k++ {
		total += math.Pow(float64(k), -s)
		cum[k-1] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &ZipfSampler{cum: cum}
}

// Sample returns a value in {1..n}.
func (z *ZipfSampler) Sample(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// WeightedSampler draws indices proportionally to a fixed weight vector using
// Walker's alias method: O(n) build, O(1) sample. The network generators use
// it for preferential attachment over snapshots of the in-degree vector.
type WeightedSampler struct {
	prob  []float64
	alias []int
}

// NewWeightedSampler builds an alias table for the given non-negative
// weights. Zero-weight entries are never returned. It panics if all weights
// are zero or any weight is negative.
func NewWeightedSampler(weights []float64) *WeightedSampler {
	n := len(weights)
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("mathx: negative or NaN weight")
		}
		total += w
	}
	if total <= 0 {
		panic("mathx: all weights zero")
	}
	prob := make([]float64, n)
	alias := make([]int, n)
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		prob[s] = scaled[s]
		alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		prob[i] = 1
		alias[i] = i
	}
	for _, i := range small {
		prob[i] = 1
		alias[i] = i
	}
	return &WeightedSampler{prob: prob, alias: alias}
}

// Sample returns an index in [0, n) with probability proportional to its
// weight.
func (w *WeightedSampler) Sample(r *RNG) int {
	i := r.Intn(len(w.prob))
	if r.Float64() < w.prob[i] {
		return i
	}
	return w.alias[i]
}
