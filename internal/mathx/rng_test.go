package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce same stream")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds should diverge, %d collisions", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(7)
	s := r.Split()
	if r.Uint64() == s.Uint64() {
		t.Error("split stream should differ from parent")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(1)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(99)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestParetoTailIndex(t *testing.T) {
	// Hill estimator on Pareto(1, alpha) samples should recover alpha.
	r := NewRNG(11)
	const n = 100000
	alpha := 3.2
	sumLog := 0.0
	for i := 0; i < n; i++ {
		sumLog += math.Log(r.Pareto(1, alpha))
	}
	// For density exponent alpha, E[ln(x/xmin)] = 1/(alpha-1).
	est := 1 + 1/(sumLog/float64(n))
	if math.Abs(est-alpha) > 0.05 {
		t.Errorf("Pareto MLE alpha = %v, want %v", est, alpha)
	}
}

func TestParetoIntSupport(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 10000; i++ {
		v := r.ParetoInt(5, 2.5)
		if v < 5 {
			t.Fatalf("ParetoInt below xmin: %d", v)
		}
	}
}

func TestPoissonMoments(t *testing.T) {
	r := NewRNG(17)
	for _, mu := range []float64{0.5, 4, 25, 100, 400} {
		const n = 50000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := float64(r.Poisson(mu))
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean-mu) > 4*math.Sqrt(mu/n)+0.02 {
			t.Errorf("Poisson(%v) mean = %v", mu, mean)
		}
		if math.Abs(variance-mu) > 0.1*mu+0.1 {
			t.Errorf("Poisson(%v) variance = %v", mu, variance)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(23)
	f := func(n uint8) bool {
		m := int(n%50) + 1
		p := r.Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestZipfSamplerDistribution(t *testing.T) {
	r := NewRNG(29)
	z := NewZipfSampler(100, 1.5)
	const n = 100000
	counts := make([]int, 101)
	for i := 0; i < n; i++ {
		v := z.Sample(r)
		if v < 1 || v > 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	// P(1)/P(2) should be 2^1.5.
	ratio := float64(counts[1]) / float64(counts[2])
	if math.Abs(ratio-math.Pow(2, 1.5)) > 0.3 {
		t.Errorf("Zipf ratio P(1)/P(2) = %v, want %v", ratio, math.Pow(2, 1.5))
	}
}

func TestWeightedSamplerProportions(t *testing.T) {
	r := NewRNG(31)
	weights := []float64{1, 0, 3, 6}
	ws := NewWeightedSampler(weights)
	const n = 100000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[ws.Sample(r)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index sampled %d times", counts[1])
	}
	total := 1.0 + 3 + 6
	for i, w := range weights {
		want := float64(n) * w / total
		if math.Abs(float64(counts[i])-want) > 5*math.Sqrt(want+1) {
			t.Errorf("index %d count %d, want ~%v", i, counts[i], want)
		}
	}
}

func TestWeightedSamplerPanics(t *testing.T) {
	for _, w := range [][]float64{{0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("weights %v should panic", w)
				}
			}()
			NewWeightedSampler(w)
		}()
	}
}

func TestDeriveOrderIndependence(t *testing.T) {
	// Deriving does not consume from the parent, so label streams are the
	// same whatever order (or how often) they are derived.
	a := NewRNG(7)
	x1 := a.Derive("degree").Uint64()
	y1 := a.Derive("eigen").Uint64()
	b := NewRNG(7)
	y2 := b.Derive("eigen").Uint64()
	x2 := b.Derive("degree").Uint64()
	if x1 != x2 || y1 != y2 {
		t.Fatalf("derived streams depend on call order: (%d,%d) vs (%d,%d)", x1, y1, x2, y2)
	}
	if z := a.Derive("degree").Uint64(); z != x1 {
		t.Fatalf("re-deriving same label diverged: %d vs %d", z, x1)
	}
}

func TestDeriveDoesNotAdvanceParent(t *testing.T) {
	a, b := NewRNG(11), NewRNG(11)
	_ = a.Derive("anything")
	_ = a.Derive("else")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Derive advanced the parent stream")
		}
	}
}

func TestDeriveIndependentStreams(t *testing.T) {
	// Distinct labels and distinct parents must give distinct streams; the
	// same label on differently-positioned parents must too (Derive keys on
	// state, not the original seed).
	base := NewRNG(3)
	s1 := base.Derive("distances")
	s2 := base.Derive("centrality")
	if s1.Uint64() == s2.Uint64() && s1.Uint64() == s2.Uint64() {
		t.Fatal("distinct labels produced identical streams")
	}
	other := NewRNG(4)
	if base.Derive("x").Uint64() == other.Derive("x").Uint64() {
		t.Fatal("distinct parents produced identical streams")
	}
	advanced := NewRNG(3)
	advanced.Uint64()
	if base.Derive("x").Uint64() == advanced.Derive("x").Uint64() {
		t.Fatal("Derive ignored parent state position")
	}
	// Crude independence check: correlation of paired uniforms stays small.
	u, v := base.Derive("u"), base.Derive("v")
	n := 20000
	var sx, sy, sxy float64
	for i := 0; i < n; i++ {
		x, y := u.Float64(), v.Float64()
		sx += x
		sy += y
		sxy += x * y
	}
	cov := sxy/float64(n) - (sx/float64(n))*(sy/float64(n))
	if math.Abs(cov) > 0.01 {
		t.Fatalf("derived streams correlated: cov=%v", cov)
	}
}

func TestDeriveIntoMatchesDerive(t *testing.T) {
	base := NewRNG(77)
	var dst RNG
	for _, label := range []string{"gof/0", "gof/17", "", "x"} {
		want := base.Derive(label)
		base.DeriveInto(&dst, []byte(label))
		for i := 0; i < 16; i++ {
			if got, w := dst.Uint64(), want.Uint64(); got != w {
				t.Fatalf("label %q draw %d: DeriveInto %v != Derive %v", label, i, got, w)
			}
		}
	}
	// Reseeding must clear the cached normal spare: a generator that has
	// consumed one Normal draw and is then re-derived must match a fresh one.
	a := base.Derive("n")
	base.DeriveInto(&dst, []byte("n"))
	dst.Normal()
	base.DeriveInto(&dst, []byte("n"))
	if a.Normal() != dst.Normal() {
		t.Fatal("DeriveInto left stale Box-Muller spare state behind")
	}
}

func TestReseedMatchesNewRNG(t *testing.T) {
	r := NewRNG(1)
	r.Normal() // leave spare state behind
	r.Reseed(42)
	want := NewRNG(42)
	for i := 0; i < 8; i++ {
		if r.Uint64() != want.Uint64() {
			t.Fatalf("Reseed(42) draw %d diverges from NewRNG(42)", i)
		}
	}
}
