package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

func TestGammaRegPKnownValues(t *testing.T) {
	// Reference values computed with mpmath.
	cases := []struct{ a, x, want float64 }{
		{1, 1, 0.6321205588285577},     // 1 - e^-1
		{0.5, 0.5, 0.6826894921370859}, // P(chi2_1 <= 1) interior
		{2, 2, 0.5939941502901616},
		{5, 2, 0.052653017343711174},
		{5, 10, 0.9707473119230389},
		{10, 10, 0.5420702855281478},
		{100, 90, 0.15822098918643017},
		{100, 110, 0.8417213299399129},
		{3, 1e-8, 1.6666666625e-25},
	}
	for _, c := range cases {
		got := GammaRegP(c.a, c.x)
		if !almostEqual(got, c.want, 1e-9) {
			t.Errorf("GammaRegP(%v, %v) = %v, want %v", c.a, c.x, got, c.want)
		}
	}
}

func TestGammaRegComplementarity(t *testing.T) {
	f := func(a, x float64) bool {
		a = 0.1 + math.Abs(math.Mod(a, 50))
		x = math.Abs(math.Mod(x, 100))
		p := GammaRegP(a, x)
		q := GammaRegQ(a, x)
		return almostEqual(p+q, 1, 1e-10) && p >= 0 && p <= 1 && q >= 0 && q <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGammaRegMonotonicInX(t *testing.T) {
	for _, a := range []float64{0.5, 1, 3, 10, 42} {
		prev := -1.0
		for x := 0.0; x < 4*a; x += a / 10 {
			p := GammaRegP(a, x)
			if p < prev-1e-12 {
				t.Fatalf("GammaRegP(%v, ·) not monotone at x=%v: %v < %v", a, x, p, prev)
			}
			prev = p
		}
	}
}

func TestGammaRegEdgeCases(t *testing.T) {
	if v := GammaRegP(1, 0); v != 0 {
		t.Errorf("P(a,0) = %v, want 0", v)
	}
	if v := GammaRegQ(1, 0); v != 1 {
		t.Errorf("Q(a,0) = %v, want 1", v)
	}
	if !math.IsNaN(GammaRegP(-1, 1)) {
		t.Error("P(-1,1) should be NaN")
	}
	if !math.IsNaN(GammaRegP(1, -1)) {
		t.Error("P(1,-1) should be NaN")
	}
}

func TestBetaRegIKnownValues(t *testing.T) {
	cases := []struct{ x, a, b, want float64 }{
		{0.5, 1, 1, 0.5},
		{0.5, 2, 2, 0.5},
		{0.25, 2, 2, 0.15625},
		{0.5, 0.5, 0.5, 0.5},
		{0.9, 2, 5, 0.999945},
		{0.1, 5, 2, 5.5e-05},
		{0.3, 10, 10, 0.03255335740399916},
	}
	for _, c := range cases {
		got := BetaRegI(c.x, c.a, c.b)
		if !almostEqual(got, c.want, 1e-6) {
			t.Errorf("BetaRegI(%v, %v, %v) = %v, want %v", c.x, c.a, c.b, got, c.want)
		}
	}
}

func TestBetaRegISymmetry(t *testing.T) {
	// I_x(a,b) = 1 - I_{1-x}(b,a)
	f := func(x, a, b float64) bool {
		x = math.Abs(math.Mod(x, 1))
		a = 0.2 + math.Abs(math.Mod(a, 20))
		b = 0.2 + math.Abs(math.Mod(b, 20))
		lhs := BetaRegI(x, a, b)
		rhs := 1 - BetaRegI(1-x, b, a)
		return almostEqual(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHurwitzZetaKnownValues(t *testing.T) {
	// ζ(s, 1) is the Riemann zeta function.
	cases := []struct{ s, q, want float64 }{
		{2, 1, math.Pi * math.Pi / 6},
		{4, 1, math.Pow(math.Pi, 4) / 90},
		{2, 2, math.Pi*math.Pi/6 - 1},
		{3, 1, 1.2020569031595943}, // Apery's constant
		{2.5, 10, 0.022728699194534540},
		{3.24, 1334, 4.4644456778097897e-08},
	}
	for _, c := range cases {
		got := HurwitzZeta(c.s, c.q)
		if !almostEqual(got, c.want, 1e-8) {
			t.Errorf("HurwitzZeta(%v, %v) = %v, want %v", c.s, c.q, got, c.want)
		}
	}
}

func TestHurwitzZetaRecurrence(t *testing.T) {
	// ζ(s, q) = ζ(s, q+1) + q^-s
	f := func(s, q float64) bool {
		s = 1.1 + math.Abs(math.Mod(s, 5))
		q = 0.5 + math.Abs(math.Mod(q, 1000))
		lhs := HurwitzZeta(s, q)
		rhs := HurwitzZeta(s, q+1) + math.Pow(q, -s)
		return almostEqual(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHurwitzZetaDeriv(t *testing.T) {
	// Compare against central finite differences.
	for _, c := range []struct{ s, q float64 }{{2, 1}, {3.2, 10}, {2.5, 100}, {3.24, 1334}} {
		h := 1e-6
		want := (HurwitzZeta(c.s+h, c.q) - HurwitzZeta(c.s-h, c.q)) / (2 * h)
		got := HurwitzZetaDeriv(c.s, c.q)
		if !almostEqual(got, want, 1e-5) {
			t.Errorf("HurwitzZetaDeriv(%v, %v) = %v, want ~%v", c.s, c.q, got, want)
		}
	}
}

func TestLogFactorialAndChoose(t *testing.T) {
	if !almostEqual(LogFactorial(5), math.Log(120), 1e-12) {
		t.Error("LogFactorial(5) wrong")
	}
	if !almostEqual(LogChoose(10, 3), math.Log(120), 1e-12) {
		t.Error("LogChoose(10,3) wrong")
	}
	if v := LogChoose(5, 7); !math.IsInf(v, -1) {
		t.Errorf("LogChoose(5,7) = %v, want -Inf", v)
	}
}
