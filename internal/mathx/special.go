// Package mathx provides the special functions, probability distributions,
// random samplers and scalar optimizers that the rest of the library builds
// on. Everything is implemented from scratch on top of the Go standard
// library's math package; no third-party numerical code is used.
//
// The precision targets are those needed by the statistical procedures in the
// paper reproduction: regularized incomplete gamma/beta functions accurate to
// ~1e-12 over the ranges exercised by chi-square, Student-t and F statistics,
// and a Hurwitz zeta accurate to ~1e-10 for power-law maximum-likelihood
// estimation.
package mathx

import (
	"errors"
	"math"
)

// ErrNoConverge is returned by iterative routines that exhaust their
// iteration budget before reaching the requested tolerance.
var ErrNoConverge = errors.New("mathx: iteration did not converge")

// eps is the convergence tolerance used by the continued-fraction and series
// expansions below.
const eps = 1e-15

// GammaRegP computes the regularized lower incomplete gamma function
// P(a, x) = γ(a, x) / Γ(a) for a > 0, x >= 0.
//
// For x < a+1 the series expansion is used; otherwise the continued fraction
// for Q(a, x) is evaluated and P = 1 - Q. This is the classic split from
// Numerical Recipes and keeps both expansions in their regions of rapid
// convergence.
func GammaRegP(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x < 0:
		return math.NaN()
	case x == 0:
		return 0
	}
	if x < a+1 {
		return gammaSeriesP(a, x)
	}
	return 1 - gammaContFracQ(a, x)
}

// GammaRegQ computes the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func GammaRegQ(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x < 0:
		return math.NaN()
	case x == 0:
		return 1
	}
	if x < a+1 {
		return 1 - gammaSeriesP(a, x)
	}
	return gammaContFracQ(a, x)
}

// gammaSeriesP evaluates P(a,x) by its power series, valid for x < a+1.
func gammaSeriesP(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < 1000; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	v := sum * math.Exp(-x+a*math.Log(x)-lg)
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// gammaContFracQ evaluates Q(a,x) by the Lentz continued fraction, valid for
// x >= a+1.
func gammaContFracQ(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 1000; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	v := math.Exp(-x+a*math.Log(x)-lg) * h
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// BetaRegI computes the regularized incomplete beta function I_x(a, b) for
// a, b > 0 and x in [0, 1], using the continued fraction expansion with the
// symmetry transformation for x > (a+1)/(a+b+2).
func BetaRegI(x, a, b float64) float64 {
	switch {
	case a <= 0 || b <= 0 || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	lgab, _ := math.Lgamma(a + b)
	front := math.Exp(lgab - lga - lgb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaContFrac(x, a, b) / a
	}
	return 1 - front*betaContFrac(1-x, b, a)/b
}

// betaContFrac evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betaContFrac(x, a, b float64) float64 {
	const tiny = 1e-300
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= 500; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// HurwitzZeta computes the Hurwitz zeta function ζ(s, q) = Σ_{k>=0} (k+q)^-s
// for s > 1 and q > 0, by direct summation of the first terms followed by an
// Euler–Maclaurin tail correction. The power-law discrete MLE evaluates this
// with q = xmin, s = alpha.
func HurwitzZeta(s, q float64) float64 {
	if s <= 1 || q <= 0 {
		return math.NaN()
	}
	// Sum the first n terms directly; pick n so the asymptotic tail is
	// well inside its region of validity.
	const n = 16
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += math.Pow(q+float64(k), -s)
	}
	a := q + n
	// Euler–Maclaurin: ∫_a^∞ x^-s dx + 0.5 a^-s + Bernoulli corrections.
	sum += math.Pow(a, 1-s) / (s - 1)
	sum += 0.5 * math.Pow(a, -s)
	// Bernoulli numbers B2=1/6, B4=-1/30, B6=1/42, B8=-1/30.
	term := s * math.Pow(a, -s-1)
	sum += term * (1.0 / 12.0)
	term *= (s + 1) * (s + 2) / (a * a)
	sum -= term * (1.0 / 720.0)
	term *= (s + 3) * (s + 4) / (a * a)
	sum += term * (1.0 / 30240.0)
	term *= (s + 5) * (s + 6) / (a * a)
	sum -= term * (1.0 / 1209600.0)
	return sum
}

// HurwitzZetaDeriv computes the derivative of ζ(s, q) with respect to s,
// i.e. -Σ (k+q)^-s · ln(k+q), by the same direct-sum + Euler–Maclaurin
// strategy. It is used by the Newton refinement of the discrete power-law
// MLE.
func HurwitzZetaDeriv(s, q float64) float64 {
	if s <= 1 || q <= 0 {
		return math.NaN()
	}
	const n = 16
	sum := 0.0
	for k := 0; k < n; k++ {
		x := q + float64(k)
		sum -= math.Pow(x, -s) * math.Log(x)
	}
	a := q + n
	la := math.Log(a)
	// d/ds [a^{1-s}/(s-1)] = -a^{1-s}·ln a/(s-1) - a^{1-s}/(s-1)^2
	sum += -math.Pow(a, 1-s)*la/(s-1) - math.Pow(a, 1-s)/((s-1)*(s-1))
	// d/ds [0.5 a^{-s}] = -0.5 a^{-s} ln a
	sum += -0.5 * math.Pow(a, -s) * la
	// d/ds [s·a^{-s-1}/12] = a^{-s-1}(1 - s·ln a)/12
	sum += math.Pow(a, -s-1) * (1 - s*la) / 12.0
	return sum
}

// LogFactorial returns ln(n!) via Lgamma.
func LogFactorial(n int) float64 {
	if n < 0 {
		return math.NaN()
	}
	lg, _ := math.Lgamma(float64(n) + 1)
	return lg
}

// LogChoose returns ln(C(n, k)).
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	return LogFactorial(n) - LogFactorial(k) - LogFactorial(n-k)
}
