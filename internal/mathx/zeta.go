package mathx

import "math"

// This file holds the fast-path Hurwitz zeta machinery used by the discrete
// power-law kernel (internal/powerlaw). The Euler–Maclaurin evaluation in
// HurwitzZeta costs ~25 transcendental calls; the Clauset–Shalizi–Newman fit
// evaluates ζ(α, q) once per distinct tail value per xmin candidate, which
// made zeta the dominant cost of a fit. Two complementary shortcuts repair
// that:
//
//   - ZetaLadder turns a descending, integer-spaced scan of q values into a
//     downward recurrence — one math.Pow per unit step after a single
//     Euler–Maclaurin anchor — so a KS scan over the integer support pays
//     one anchor per α instead of one per distinct value;
//   - ZetaCache memoizes exact (s, q) pairs, so repeated evaluations at the
//     same point (the MLE's ζ(α, xmin) re-read by the KS statistic, the
//     CCDF's denominator) are computed once.
//
// Both are numerically transparent in the sense the power-law kernel
// depends on: a ZetaCache hit returns the bit-identical value HurwitzZeta
// would, and a ZetaLadder walk is a deterministic function of the anchor
// point and the visited sequence, so any two scans over the same descending
// sequence agree bit for bit.

// ZetaLadderMaxStep is the largest downward gap (in units of 1) a ZetaLadder
// bridges by recurrence before it re-anchors with a fresh Euler–Maclaurin
// evaluation. Beyond ~this many unit steps the recurrence costs more pows
// than HurwitzZeta itself.
const ZetaLadderMaxStep = 32

// ZetaLadder evaluates ζ(s, q) for one fixed exponent s over a sequence of
// arguments, exploiting the downward recurrence
//
//	ζ(s, q) = ζ(s, q+1) + q^(−s).
//
// Each At call either walks down from the previous evaluation — when the new
// argument lies below it by a positive integer no larger than
// ZetaLadderMaxStep — at one math.Pow per unit step, or re-anchors with a
// full HurwitzZeta evaluation. Descending integer-support scans (the KS
// statistic of a discrete power-law fit) therefore pay one Euler–Maclaurin
// anchor total, plus one pow per unit of support they cross.
//
// The zero value is not ready for use; construct with NewZetaLadder. A
// ZetaLadder is not safe for concurrent use.
type ZetaLadder struct {
	s     float64
	q, z  float64
	valid bool
}

// NewZetaLadder returns a ladder for the fixed exponent s (s > 1 for a
// finite zeta).
func NewZetaLadder(s float64) ZetaLadder { return ZetaLadder{s: s} }

// At returns ζ(s, q) for q > 0, by recurrence from the previous call when
// possible and by Euler–Maclaurin anchor otherwise.
func (l *ZetaLadder) At(q float64) float64 {
	if l.valid {
		gap := l.q - q
		if gap == 0 {
			return l.z
		}
		if gap > 0 && gap <= ZetaLadderMaxStep && gap == math.Trunc(gap) {
			z := l.z
			qq := l.q
			for i := 0; i < int(gap); i++ {
				qq--
				z += math.Pow(qq, -l.s)
			}
			l.q, l.z = q, z
			return z
		}
	}
	z := HurwitzZeta(l.s, q)
	l.q, l.z, l.valid = q, z, true
	return z
}

// zetaCacheSize is the number of direct-mapped ZetaCache slots. The discrete
// MLE's Brent search touches a few dozen distinct α values per xmin
// candidate; 64 slots keep the final iterate resident for the KS statistic's
// re-read without any eviction policy.
const zetaCacheSize = 64

// ZetaCache is a small direct-mapped memo for HurwitzZeta over exact (s, q)
// pairs. A hit returns the bit-identical value a fresh HurwitzZeta call
// would, so callers can route every evaluation through one cache without
// changing results. The zero value is ready for use. A ZetaCache is not safe
// for concurrent use; the power-law kernel keeps one per worker scratch.
type ZetaCache struct {
	keyS [zetaCacheSize]float64
	keyQ [zetaCacheSize]float64
	val  [zetaCacheSize]float64
	set  [zetaCacheSize]bool
}

// Get returns ζ(s, q), computing and caching it on a miss.
func (c *ZetaCache) Get(s, q float64) float64 {
	h := math.Float64bits(s)*0x9e3779b97f4a7c15 ^ math.Float64bits(q)*0xbf58476d1ce4e5b9
	i := int((h ^ h>>29) % zetaCacheSize)
	if c.set[i] && c.keyS[i] == s && c.keyQ[i] == q {
		return c.val[i]
	}
	v := HurwitzZeta(s, q)
	c.keyS[i], c.keyQ[i], c.val[i], c.set[i] = s, q, v, true
	return v
}
