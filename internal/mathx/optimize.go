package mathx

import "math"

// MinimizeBrent minimizes a one-dimensional function f over [a, b] using
// Brent's method (golden-section with parabolic interpolation). It returns
// the minimizing x and f(x). tol is the absolute x tolerance; maxIter bounds
// the number of iterations (100 is plenty for the smooth likelihoods used
// here).
func MinimizeBrent(f func(float64) float64, a, b, tol float64, maxIter int) (xmin, fmin float64) {
	const golden = 0.3819660112501051 // 2 - phi
	if a > b {
		a, b = b, a
	}
	x := a + golden*(b-a)
	w, v := x, x
	fx := f(x)
	fw, fv := fx, fx
	var d, e float64
	for i := 0; i < maxIter; i++ {
		m := 0.5 * (a + b)
		tol1 := tol*math.Abs(x) + 1e-12
		tol2 := 2 * tol1
		if math.Abs(x-m) <= tol2-0.5*(b-a) {
			break
		}
		useGolden := true
		if math.Abs(e) > tol1 {
			// Fit a parabola through (v,fv), (w,fw), (x,fx).
			r := (x - w) * (fx - fv)
			q := (x - v) * (fx - fw)
			p := (x-v)*q - (x-w)*r
			q = 2 * (q - r)
			if q > 0 {
				p = -p
			}
			q = math.Abs(q)
			etmp := e
			e = d
			if math.Abs(p) < math.Abs(0.5*q*etmp) && p > q*(a-x) && p < q*(b-x) {
				d = p / q
				u := x + d
				if u-a < tol2 || b-u < tol2 {
					if m-x >= 0 {
						d = tol1
					} else {
						d = -tol1
					}
				}
				useGolden = false
			}
		}
		if useGolden {
			if x < m {
				e = b - x
			} else {
				e = a - x
			}
			d = golden * e
		}
		var u float64
		if math.Abs(d) >= tol1 {
			u = x + d
		} else if d >= 0 {
			u = x + tol1
		} else {
			u = x - tol1
		}
		fu := f(u)
		if fu <= fx {
			if u >= x {
				a = x
			} else {
				b = x
			}
			v, w, x = w, x, u
			fv, fw, fx = fw, fx, fu
		} else {
			if u < x {
				a = u
			} else {
				b = u
			}
			if fu <= fw || w == x {
				v, w = w, u
				fv, fw = fw, fu
			} else if fu <= fv || v == x || v == w {
				v, fv = u, fu
			}
		}
	}
	return x, fx
}

// FindRootBisect finds a root of f in [a, b] by bisection. f(a) and f(b)
// must bracket a sign change; otherwise NaN is returned.
func FindRootBisect(f func(float64) float64, a, b, tol float64, maxIter int) float64 {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a
	}
	if fb == 0 {
		return b
	}
	if fa*fb > 0 {
		return math.NaN()
	}
	for i := 0; i < maxIter; i++ {
		m := 0.5 * (a + b)
		fm := f(m)
		if fm == 0 || (b-a)/2 < tol {
			return m
		}
		if fa*fm < 0 {
			b, fb = m, fm
		} else {
			a, fa = m, fm
		}
	}
	return 0.5 * (a + b)
}

// Clamp restricts v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
