package mathx

import "math"

// MinimizeNelderMead minimizes an n-dimensional function using the
// Nelder–Mead simplex method with standard coefficients (reflection 1,
// expansion 2, contraction 0.5, shrink 0.5). start is the initial point and
// step the per-coordinate initial simplex size. It returns the best point
// found and its value. Used for the 2-parameter truncated-lognormal MLE in
// the power-law comparisons; tolerances are on the simplex value spread.
func MinimizeNelderMead(f func([]float64) float64, start, step []float64, tol float64, maxIter int) ([]float64, float64) {
	n := len(start)
	if n == 0 {
		return nil, math.NaN()
	}
	if maxIter <= 0 {
		maxIter = 200 * n
	}
	if tol <= 0 {
		tol = 1e-10
	}
	// Build initial simplex of n+1 points.
	pts := make([][]float64, n+1)
	vals := make([]float64, n+1)
	for i := range pts {
		p := append([]float64(nil), start...)
		if i > 0 {
			s := step[i-1]
			if s == 0 {
				s = 0.1
			}
			p[i-1] += s
		}
		pts[i] = p
		vals[i] = f(p)
	}
	centroid := make([]float64, n)
	trial := make([]float64, n)
	for iter := 0; iter < maxIter; iter++ {
		// Order: find best, worst, second worst.
		best, worst, second := 0, 0, 0
		for i := 1; i <= n; i++ {
			if vals[i] < vals[best] {
				best = i
			}
			if vals[i] > vals[worst] {
				worst = i
			}
		}
		for i := 0; i <= n; i++ {
			if i != worst && vals[i] > vals[second] {
				second = i
			}
		}
		if math.Abs(vals[worst]-vals[best]) <= tol*(math.Abs(vals[best])+tol) {
			break
		}
		// Centroid of all but worst.
		for j := 0; j < n; j++ {
			centroid[j] = 0
		}
		for i := 0; i <= n; i++ {
			if i == worst {
				continue
			}
			for j := 0; j < n; j++ {
				centroid[j] += pts[i][j]
			}
		}
		for j := 0; j < n; j++ {
			centroid[j] /= float64(n)
		}
		// Reflection.
		for j := 0; j < n; j++ {
			trial[j] = centroid[j] + (centroid[j] - pts[worst][j])
		}
		fr := f(trial)
		switch {
		case fr < vals[best]:
			// Expansion.
			exp := make([]float64, n)
			for j := 0; j < n; j++ {
				exp[j] = centroid[j] + 2*(centroid[j]-pts[worst][j])
			}
			fe := f(exp)
			if fe < fr {
				copy(pts[worst], exp)
				vals[worst] = fe
			} else {
				copy(pts[worst], trial)
				vals[worst] = fr
			}
		case fr < vals[second]:
			copy(pts[worst], trial)
			vals[worst] = fr
		default:
			// Contraction toward the better of (worst, reflected).
			if fr < vals[worst] {
				copy(pts[worst], trial)
				vals[worst] = fr
			}
			for j := 0; j < n; j++ {
				trial[j] = centroid[j] + 0.5*(pts[worst][j]-centroid[j])
			}
			fc := f(trial)
			if fc < vals[worst] {
				copy(pts[worst], trial)
				vals[worst] = fc
			} else {
				// Shrink toward best.
				for i := 0; i <= n; i++ {
					if i == best {
						continue
					}
					for j := 0; j < n; j++ {
						pts[i][j] = pts[best][j] + 0.5*(pts[i][j]-pts[best][j])
					}
					vals[i] = f(pts[i])
				}
			}
		}
	}
	best := 0
	for i := 1; i <= n; i++ {
		if vals[i] < vals[best] {
			best = i
		}
	}
	return pts[best], vals[best]
}
