package mathx

import (
	"math"
	"testing"
)

func TestMinimizeBrentQuadratic(t *testing.T) {
	f := func(x float64) float64 { return (x - 3.7) * (x - 3.7) }
	x, fx := MinimizeBrent(f, -10, 10, 1e-10, 200)
	if math.Abs(x-3.7) > 1e-7 {
		t.Errorf("minimum at %v, want 3.7", x)
	}
	if fx > 1e-12 {
		t.Errorf("f(min) = %v, want ~0", fx)
	}
}

func TestMinimizeBrentNonSymmetric(t *testing.T) {
	// Negative log-likelihood-like shape: x - ln(x) has min at x=1.
	f := func(x float64) float64 { return x - math.Log(x) }
	x, _ := MinimizeBrent(f, 0.01, 50, 1e-10, 200)
	if math.Abs(x-1) > 1e-6 {
		t.Errorf("minimum at %v, want 1", x)
	}
}

func TestMinimizeBrentSwappedBounds(t *testing.T) {
	f := func(x float64) float64 { return x * x }
	x, _ := MinimizeBrent(f, 5, -5, 1e-9, 200)
	if math.Abs(x) > 1e-6 {
		t.Errorf("minimum at %v, want 0", x)
	}
}

func TestFindRootBisect(t *testing.T) {
	f := func(x float64) float64 { return x*x*x - 2 }
	r := FindRootBisect(f, 0, 3, 1e-12, 200)
	if math.Abs(r-math.Cbrt(2)) > 1e-9 {
		t.Errorf("root %v, want %v", r, math.Cbrt(2))
	}
	if !math.IsNaN(FindRootBisect(f, 3, 4, 1e-9, 100)) {
		t.Error("no bracket should give NaN")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}
