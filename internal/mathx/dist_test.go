package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{1.959963984540054, 0.975},
		{-3, 0.0013498980316300933},
		{5, 0.9999997133484281},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); !almostEqual(got, c.want, 1e-10) {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	f := func(p float64) bool {
		p = math.Abs(math.Mod(p, 1))
		if p < 1e-10 || p > 1-1e-10 {
			return true
		}
		x := NormalQuantile(p)
		return almostEqual(NormalCDF(x), p, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestNormalQuantileTails(t *testing.T) {
	for _, p := range []float64{1e-12, 1e-8, 1e-4, 0.5, 0.9999, 1 - 1e-8} {
		x := NormalQuantile(p)
		if got := NormalCDF(x); !almostEqual(got, p, 1e-8) {
			t.Errorf("round trip at p=%v: got %v", p, got)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("quantile at 0/1 should be infinite")
	}
}

func TestChiSquareCDF(t *testing.T) {
	// Reference values from R pchisq.
	cases := []struct {
		x, k, want float64
	}{
		{3.841458820694124, 1, 0.95},
		{5.991464547107979, 2, 0.95},
		{18.307038053275146, 10, 0.95},
		{10, 10, 0.5595067149347875},
		{185, 185, 0.5138274914069601},
	}
	for _, c := range cases {
		if got := ChiSquareCDF(c.x, c.k); !almostEqual(got, c.want, 1e-8) {
			t.Errorf("ChiSquareCDF(%v, %v) = %v, want %v", c.x, c.k, got, c.want)
		}
	}
}

func TestChiSquareSFComplement(t *testing.T) {
	f := func(x, k float64) bool {
		x = math.Abs(math.Mod(x, 300))
		k = 1 + math.Abs(math.Mod(k, 200))
		return almostEqual(ChiSquareCDF(x, k)+ChiSquareSF(x, k), 1, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStudentTCDF(t *testing.T) {
	// Reference values from R pt.
	cases := []struct{ t, nu, want float64 }{
		{0, 5, 0.5},
		{1, 1, 0.75},
		{2.0, 10, 0.96330598},
		{-2.0, 10, 0.03669402},
		{1.96, 1000, 0.97486341},
		{-3.86, 300, 0.00006944}, // deep left tail like the ADF statistic
	}
	for _, c := range cases {
		if got := StudentTCDF(c.t, c.nu); !almostEqual(got, c.want, 1e-4) {
			t.Errorf("StudentTCDF(%v, %v) = %v, want %v", c.t, c.nu, got, c.want)
		}
	}
}

func TestStudentTApproachesNormal(t *testing.T) {
	for _, x := range []float64{-2, -1, 0, 0.5, 1.5, 3} {
		tv := StudentTCDF(x, 1e7)
		nv := NormalCDF(x)
		if !almostEqual(tv, nv, 1e-5) {
			t.Errorf("t(1e7) at %v: %v vs normal %v", x, tv, nv)
		}
	}
}

func TestFDistCDF(t *testing.T) {
	// F(d1=1, d2=k) at t² equals 2·P(T<=t)-1 for t>0.
	for _, c := range []struct{ tval, nu float64 }{{1.5, 7}, {2.2, 20}} {
		f := FDistCDF(c.tval*c.tval, 1, c.nu)
		want := 2*StudentTCDF(c.tval, c.nu) - 1
		if !almostEqual(f, want, 1e-9) {
			t.Errorf("F/t relation failed: %v vs %v", f, want)
		}
	}
}

func TestPoissonLogPMFSumsToOne(t *testing.T) {
	for _, mu := range []float64{0.5, 3, 20} {
		sum := 0.0
		for k := 0; k < 200; k++ {
			sum += math.Exp(PoissonLogPMF(k, mu))
		}
		if !almostEqual(sum, 1, 1e-9) {
			t.Errorf("Poisson pmf(mu=%v) sums to %v", mu, sum)
		}
	}
}

func TestLogNormalLogPDFIntegratesToOne(t *testing.T) {
	// Trapezoid integration over a wide support.
	mu, sigma := 0.7, 0.9
	sum := 0.0
	dx := 0.001
	for x := dx; x < 200; x += dx {
		sum += math.Exp(LogNormalLogPDF(x, mu, sigma)) * dx
	}
	if !almostEqual(sum, 1, 1e-3) {
		t.Errorf("lognormal pdf integrates to %v", sum)
	}
}

func TestExponentialLogPDF(t *testing.T) {
	if v := ExponentialLogPDF(2, 0.5); !almostEqual(v, math.Log(0.5)-1, 1e-12) {
		t.Errorf("ExponentialLogPDF(2, 0.5) = %v", v)
	}
	if !math.IsInf(ExponentialLogPDF(-1, 1), -1) {
		t.Error("negative support should be -Inf")
	}
}
