package mathx

import (
	"math"
	"testing"
)

// TestZetaLadderMatchesDirect: a ladder walk must agree with direct
// Euler–Maclaurin evaluation to near machine precision at every point of a
// descending integer scan, whatever mix of recurrence steps and re-anchors
// the gaps trigger.
func TestZetaLadderMatchesDirect(t *testing.T) {
	for _, s := range []float64{1.5, 2.0, 2.74, 3.24, 6.5} {
		l := NewZetaLadder(s)
		// Descending scan with unit steps, small gaps and one gap beyond
		// ZetaLadderMaxStep (forces a re-anchor).
		qs := []float64{2000, 1999, 1995, 1800, 1799, 1798, 120, 119, 90, 41, 40, 12, 11, 10, 5, 4, 3, 2, 1}
		for _, q := range qs {
			got := l.At(q)
			want := HurwitzZeta(s, q)
			if rel := math.Abs(got-want) / want; rel > 1e-12 {
				t.Errorf("s=%v q=%v: ladder %v vs direct %v (rel %.2e)", s, q, got, want, rel)
			}
		}
	}
}

// TestZetaLadderNonIntegerOffsets: integer-spaced but non-integer arguments
// (FixedXmin fits at e.g. q=2.5) must ride the recurrence too.
func TestZetaLadderNonIntegerOffsets(t *testing.T) {
	l := NewZetaLadder(2.5)
	for q := 30.5; q >= 1.5; q-- {
		got := l.At(q)
		want := HurwitzZeta(2.5, q)
		if rel := math.Abs(got-want) / want; rel > 1e-12 {
			t.Errorf("q=%v: ladder %v vs direct %v (rel %.2e)", q, got, want, rel)
		}
	}
}

// TestZetaLadderReanchorsOnAscent: moving up (or jumping far down) must give
// the same values as direct evaluation — the ladder only shortcuts
// descending small gaps.
func TestZetaLadderReanchorsOnAscent(t *testing.T) {
	l := NewZetaLadder(3)
	seq := []float64{10, 50, 49, 1000, 30, 29, 29}
	for _, q := range seq {
		got := l.At(q)
		want := HurwitzZeta(3, q)
		if rel := math.Abs(got-want) / want; rel > 1e-12 {
			t.Errorf("q=%v: ladder %v vs direct %v (rel %.2e)", q, got, want, rel)
		}
	}
}

// TestZetaCacheTransparent: a cache hit must return the bit-identical value
// a fresh HurwitzZeta call would — the kernel routes every ζ(α, xmin)
// evaluation through one cache relying on exactly this.
func TestZetaCacheTransparent(t *testing.T) {
	var c ZetaCache
	pairs := [][2]float64{{2.5, 1}, {2.5, 2}, {3.24, 7}, {1.0001, 3}, {8, 1334}}
	for round := 0; round < 3; round++ {
		for _, p := range pairs {
			got := c.Get(p[0], p[1])
			want := HurwitzZeta(p[0], p[1])
			if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Fatalf("round %d: Get(%v,%v)=%v, want bit-identical %v", round, p[0], p[1], got, want)
			}
		}
	}
	// Collision stress: many distinct keys through 64 slots must still be
	// transparent (evict, never corrupt).
	for i := 0; i < 1000; i++ {
		s := 1.1 + float64(i%50)*0.13
		q := float64(1 + i%97)
		if got, want := c.Get(s, q), HurwitzZeta(s, q); got != want {
			t.Fatalf("collision stress: Get(%v,%v)=%v, want %v", s, q, got, want)
		}
	}
}
