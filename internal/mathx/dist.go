package mathx

import "math"

// NormalCDF returns the standard normal cumulative distribution function
// Φ(x).
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalSF returns the standard normal survival function 1 - Φ(x), computed
// without cancellation for large x.
func NormalSF(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// NormalQuantile returns Φ⁻¹(p) using the Acklam rational approximation
// refined by one Halley step, accurate to ~1e-15 over (0, 1).
func NormalQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0:
			return math.Inf(-1)
		case p == 1:
			return math.Inf(1)
		}
		return math.NaN()
	}
	// Coefficients for the central and tail rational approximations.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const plow = 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement using the exact CDF.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// ChiSquareCDF returns P(X <= x) for a chi-square distribution with k degrees
// of freedom.
func ChiSquareCDF(x float64, k float64) float64 {
	if x <= 0 {
		return 0
	}
	return GammaRegP(k/2, x/2)
}

// ChiSquareSF returns P(X > x) for a chi-square distribution with k degrees
// of freedom; this is the p-value of portmanteau statistics such as
// Ljung–Box.
func ChiSquareSF(x float64, k float64) float64 {
	if x <= 0 {
		return 1
	}
	return GammaRegQ(k/2, x/2)
}

// StudentTCDF returns P(T <= t) for Student's t distribution with nu degrees
// of freedom, via the regularized incomplete beta function.
func StudentTCDF(t, nu float64) float64 {
	if nu <= 0 {
		return math.NaN()
	}
	if t == 0 {
		return 0.5
	}
	x := nu / (nu + t*t)
	ib := BetaRegI(x, nu/2, 0.5)
	if t > 0 {
		return 1 - 0.5*ib
	}
	return 0.5 * ib
}

// StudentTSF returns P(T > t).
func StudentTSF(t, nu float64) float64 { return 1 - StudentTCDF(t, nu) }

// FDistCDF returns P(X <= x) for an F distribution with d1 and d2 degrees of
// freedom.
func FDistCDF(x, d1, d2 float64) float64 {
	if x <= 0 {
		return 0
	}
	return BetaRegI(d1*x/(d1*x+d2), d1/2, d2/2)
}

// PoissonLogPMF returns ln P(X = k) for a Poisson distribution with mean mu.
func PoissonLogPMF(k int, mu float64) float64 {
	if mu <= 0 || k < 0 {
		return math.Inf(-1)
	}
	return float64(k)*math.Log(mu) - mu - LogFactorial(k)
}

// LogNormalLogPDF returns the log density of a lognormal distribution with
// location mu and scale sigma at x.
func LogNormalLogPDF(x, mu, sigma float64) float64 {
	if x <= 0 || sigma <= 0 {
		return math.Inf(-1)
	}
	lx := math.Log(x)
	z := (lx - mu) / sigma
	return -lx - math.Log(sigma) - 0.5*math.Log(2*math.Pi) - 0.5*z*z
}

// ExponentialLogPDF returns the log density of an exponential distribution
// with rate lambda at x (support x >= xmin handled by callers by shifting).
func ExponentialLogPDF(x, lambda float64) float64 {
	if x < 0 || lambda <= 0 {
		return math.Inf(-1)
	}
	return math.Log(lambda) - lambda*x
}
