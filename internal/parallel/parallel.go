// Package parallel is the shared intra-stage scheduling substrate for the
// library's CPU-bound hot loops. Graph metrics (internal/graph), Brandes
// betweenness (internal/centrality) and the Clauset–Shalizi–Newman bootstrap
// (internal/powerlaw) all shard their work through ChunkReduce, so every
// sharded loop in the process competes for one global token pool instead of
// each spawning GOMAXPROCS goroutines and oversubscribing the scheduler when
// several pipeline stages run at once.
//
// The package enforces the library's determinism contract for data
// parallelism: work is split into fixed-width chunks whose layout depends
// only on the problem size — never on the worker count — and per-chunk
// results are returned in chunk order so callers can reduce them with a
// deterministic (in particular, floating-point-stable) left fold. Scheduling
// is dynamic; the reduction order is not. See docs/ARCHITECTURE.md.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// tokens caps the total number of concurrently executing chunk workers
// process-wide. Several analysis stages can shard their loops at once under
// the pipeline scheduler; the shared cap composes their demands instead of
// multiplying them.
var tokens = make(chan struct{}, runtime.GOMAXPROCS(0))

// Workers resolves a caller-supplied worker budget: values <= 0 select
// GOMAXPROCS. This is the same convention as core.Options.Parallelism, so a
// budget can be threaded through unmodified.
func Workers(budget int) int {
	if budget <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return budget
}

// ChunkReduce splits [0, n) into fixed-width chunks, evaluates fn on each
// chunk from a bounded worker pool, and returns the per-chunk results in
// chunk order. At most Workers(workers) goroutines run fn, each holding a
// process-wide token while it works. Chunks are claimed with an atomic
// counter, so scheduling is dynamic but the output layout — and therefore
// any ordered reduction over it — is identical at every worker count.
//
// chunk is the shard width in items and must not be derived from the worker
// count, or the determinism guarantee is lost; chunk <= 0 selects a single
// chunk covering all of [0, n).
func ChunkReduce[T any](n, chunk, workers int, fn func(lo, hi int) T) []T {
	return chunkReduce(n, chunk, workers, fn)
}

// BlockedSumInto folds per-chunk partial score vectors into dst, sharded
// over fixed-width column blocks instead of a serial whole-vector pass: each
// worker owns disjoint blocks of dst, and within a block the partials are
// added in slice order. Every dst element therefore accumulates its
// contributions in exactly the order a serial left fold over partials would
// use — the result is bit-identical to that fold at every worker budget —
// while the reduction runs on all workers and touches dst one cache-friendly
// block at a time rather than streaming len(partials)·len(dst) floats
// through a single core.
//
// Every partial must have at least len(dst) elements. block is the column
// width in elements and must not be derived from the worker count (a fixed
// constant keeps the layout deterministic); block <= 0 selects one block.
func BlockedSumInto(dst []float64, partials [][]float64, block, workers int) {
	if len(dst) == 0 || len(partials) == 0 {
		return
	}
	chunkReduce(len(dst), block, workers, func(lo, hi int) struct{} {
		d := dst[lo:hi]
		for _, p := range partials {
			p := p[lo:hi]
			for i, v := range p {
				d[i] += v
			}
		}
		return struct{}{}
	})
}

func chunkReduce[T any](n, chunk, workers int, fn func(lo, hi int) T) []T {
	if n <= 0 {
		return nil
	}
	if chunk <= 0 {
		chunk = n
	}
	chunks := (n + chunk - 1) / chunk
	out := make([]T, chunks)
	w := Workers(workers)
	if w > chunks {
		w = chunks
	}
	if w <= 1 {
		for c := 0; c < chunks; c++ {
			lo := c * chunk
			hi := min(lo+chunk, n)
			out[c] = fn(lo, hi)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tokens <- struct{}{}
			defer func() { <-tokens }()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				lo := c * chunk
				hi := min(lo+chunk, n)
				out[c] = fn(lo, hi)
			}
		}()
	}
	wg.Wait()
	return out
}
