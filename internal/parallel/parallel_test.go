package parallel

import (
	"reflect"
	"sync/atomic"
	"testing"
)

func TestChunkReduceCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 5, 100, 4097} {
		for _, workers := range []int{0, 1, 3, 16} {
			var total atomic.Int64
			parts := ChunkReduce(n, 7, workers, func(lo, hi int) int {
				s := 0
				for i := lo; i < hi; i++ {
					total.Add(1)
					s += i
				}
				return s
			})
			sum := 0
			for _, p := range parts {
				sum += p
			}
			want := n * (n - 1) / 2
			if sum != want {
				t.Fatalf("n=%d workers=%d: sum=%d want %d", n, workers, sum, want)
			}
			if int(total.Load()) != n {
				t.Fatalf("n=%d workers=%d: visited %d items", n, workers, total.Load())
			}
		}
	}
}

// TestChunkReduceOrderInvariant checks the determinism contract: the
// per-chunk output layout is identical at every worker count, so an ordered
// fold over it cannot depend on scheduling.
func TestChunkReduceOrderInvariant(t *testing.T) {
	const n, chunk = 1000, 13
	fn := func(lo, hi int) [2]int { return [2]int{lo, hi} }
	ref := ChunkReduce(n, chunk, 1, fn)
	for _, workers := range []int{2, 4, 7, 32} {
		got := ChunkReduce(n, chunk, workers, fn)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: chunk layout differs from sequential", workers)
		}
	}
}

func TestChunkReduceDegenerateChunk(t *testing.T) {
	parts := ChunkReduce(10, 0, 4, func(lo, hi int) int { return hi - lo })
	if len(parts) != 1 || parts[0] != 10 {
		t.Fatalf("chunk<=0 must yield one full-range chunk, got %v", parts)
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("positive budget must pass through")
	}
	if Workers(0) < 1 || Workers(-5) < 1 {
		t.Fatal("non-positive budget must resolve to at least one worker")
	}
}
