package graph

import (
	"testing"
	"testing/quick"

	"elites/internal/mathx"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(1, 2)
	b.AddEdge(2, 2) // self-loop dropped
	b.AddEdge(3, 0)
	g := b.Build()
	if g.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3 (dedup + self-loop drop)", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || !g.HasEdge(3, 0) {
		t.Fatal("missing expected edges")
	}
	if g.HasEdge(1, 0) || g.HasEdge(2, 2) {
		t.Fatal("unexpected edges")
	}
	if g.OutDegree(0) != 1 || g.OutDegree(2) != 0 {
		t.Fatal("OutDegree wrong")
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 5)
}

func TestAdjacencySorted(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 3)
	b.AddEdge(0, 2)
	g := b.Build()
	row := g.OutNeighbors(0)
	for i := 1; i < len(row); i++ {
		if row[i-1] >= row[i] {
			t.Fatalf("row not sorted: %v", row)
		}
	}
}

func TestInDegrees(t *testing.T) {
	g := FromEdges(3, [][2]int{{0, 1}, {2, 1}, {1, 0}})
	in := g.InDegrees()
	if in[0] != 1 || in[1] != 2 || in[2] != 0 {
		t.Fatalf("InDegrees = %v", in)
	}
}

func TestReverse(t *testing.T) {
	g := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 1}})
	r := g.Reverse()
	if r.NumEdges() != g.NumEdges() {
		t.Fatal("edge count changed")
	}
	g.Edges(func(u, v int) bool {
		if !r.HasEdge(v, u) {
			t.Fatalf("missing reversed edge %d->%d", v, u)
		}
		return true
	})
}

func TestReversePropertyRandom(t *testing.T) {
	rng := mathx.NewRNG(1)
	f := func(seed uint32) bool {
		g := randomDigraph(rng, 30, 0.1)
		rr := g.Reverse().Reverse()
		if rr.NumEdges() != g.NumEdges() {
			return false
		}
		equal := true
		g.Edges(func(u, v int) bool {
			if !rr.HasEdge(u, v) {
				equal = false
				return false
			}
			return true
		})
		return equal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func randomDigraph(rng *mathx.RNG, n int, p float64) *Digraph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Bool(p) {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

func TestDensity(t *testing.T) {
	g := FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	want := 2.0 / 6.0
	if g.Density() != want {
		t.Fatalf("Density = %v, want %v", g.Density(), want)
	}
	empty := NewBuilder(0).Build()
	if empty.Density() != 0 {
		t.Fatal("empty density")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}})
	sub, orig, err := g.InducedSubgraph([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumNodes() != 3 {
		t.Fatalf("sub nodes = %d", sub.NumNodes())
	}
	// Edges among {1,2,3}: 1->2, 2->3, 1->3.
	if sub.NumEdges() != 3 {
		t.Fatalf("sub edges = %d", sub.NumEdges())
	}
	find := func(old int) int {
		for i, o := range orig {
			if o == old {
				return i
			}
		}
		return -1
	}
	if !sub.HasEdge(find(1), find(2)) || !sub.HasEdge(find(2), find(3)) || !sub.HasEdge(find(1), find(3)) {
		t.Fatal("subgraph edges wrong")
	}
	if _, _, err := g.InducedSubgraph([]int{99}); err == nil {
		t.Fatal("expected range error")
	}
}

func TestInducedSubgraphDuplicates(t *testing.T) {
	g := FromEdges(3, [][2]int{{0, 1}})
	sub, orig, err := g.InducedSubgraph([]int{0, 0, 1})
	if err != nil || sub.NumNodes() != 2 || len(orig) != 2 {
		t.Fatalf("dup collapse failed: %v nodes=%d", err, sub.NumNodes())
	}
}

func TestUndirected(t *testing.T) {
	g := FromEdges(3, [][2]int{{0, 1}, {1, 0}, {1, 2}})
	u := g.Undirected()
	if u.NumEdges() != 4 { // {0,1} and {1,2} each twice
		t.Fatalf("undirected edges = %d", u.NumEdges())
	}
	if !u.HasEdge(2, 1) || !u.HasEdge(0, 1) {
		t.Fatal("undirected symmetry broken")
	}
}

func TestNewFromCSRRoundTrip(t *testing.T) {
	rng := mathx.NewRNG(7)
	g := randomDigraph(rng, 50, 0.07)
	off, adj := g.CSR()
	g2, err := NewFromCSR(g.NumNodes(), off, adj)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("round trip changed edges")
	}
}

func TestNewFromCSRValidation(t *testing.T) {
	// Unsorted row.
	if _, err := NewFromCSR(2, []int64{0, 2, 2}, []int32{1, 1}); err == nil {
		t.Fatal("duplicate should fail")
	}
	// Self-loop.
	if _, err := NewFromCSR(2, []int64{0, 1, 1}, []int32{0}); err == nil {
		t.Fatal("self-loop should fail")
	}
	// Out of range.
	if _, err := NewFromCSR(2, []int64{0, 1, 1}, []int32{5}); err == nil {
		t.Fatal("range should fail")
	}
	// Bad offsets.
	if _, err := NewFromCSR(2, []int64{0, 2, 1}, []int32{1, 0}); err == nil {
		t.Fatal("decreasing offsets should fail")
	}
}

func TestEdgesEarlyStop(t *testing.T) {
	g := FromEdges(4, [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}})
	seen := 0
	g.Edges(func(u, v int) bool {
		seen++
		return seen < 2
	})
	if seen != 2 {
		t.Fatalf("early stop failed, saw %d", seen)
	}
}
