package graph

import "elites/internal/cache"

// Digest returns a stable 64-bit content hash of the graph: the library's
// one canonical fold (cache.Hasher, word-at-a-time) over the node count and
// the raw CSR arrays. Two graphs digest equal iff they have identical
// structure (same node ids, same sorted adjacency), which makes the digest
// a content address for per-stage result caching — it is a pure function of
// the stored bytes, never of process state, so it is stable across runs and
// machines.
//
// Hashing folds one mixed word per offset and edge — hundreds of
// milliseconds at the paper's 79M edges, noise next to the analyses the
// cache skips.
func (g *Digraph) Digest() uint64 {
	h := cache.NewHasher()
	h.Word(uint64(g.n))
	for _, o := range g.offsets {
		h.Word(uint64(o))
	}
	for _, v := range g.adj {
		h.Word(uint64(uint32(v)))
	}
	return h.Sum()
}
