package graph

import (
	"math"
	"sort"
)

// Reciprocity returns the fraction of directed edges whose reverse edge also
// exists: |{(u,v) ∈ E : (v,u) ∈ E}| / |E|. Kwak et al. report 22.1% for the
// whole Twitter graph; the paper reports 33.7% for the verified sub-graph and
// cites 68% for Flickr.
func Reciprocity(g *Digraph) float64 {
	m := g.NumEdges()
	if m == 0 {
		return 0
	}
	// Sharded over source-node ranges; each ordered edge is owned by
	// exactly one chunk, so the partial counts sum exactly.
	parts := chunkReduce(g.NumNodes(), func(lo, hi int) int64 {
		var mutual int64
		for u := lo; u < hi; u++ {
			for _, v := range g.OutNeighbors(u) {
				// Count each direction; a mutual pair contributes 2.
				if g.HasEdge(int(v), u) {
					mutual++
				}
			}
		}
		return mutual
	})
	var mutual int64
	for _, p := range parts {
		mutual += p
	}
	return float64(mutual) / float64(m)
}

// AverageLocalClustering returns the mean local clustering coefficient over
// nodes with undirected degree >= 2, treating the graph as undirected (the
// convention of Watts–Strogatz and of the paper's reported 0.1583).
// Nodes with degree < 2 contribute 0, matching the networkx "average over
// all nodes" convention.
func AverageLocalClustering(g *Digraph) float64 {
	und := g.Undirected()
	n := und.NumNodes()
	if n == 0 {
		return 0
	}
	// Per-chunk partial sums are combined in chunk order, so the result is
	// bit-stable regardless of worker count.
	parts := chunkReduce(n, func(lo, hi int) float64 {
		s := 0.0
		for u := lo; u < hi; u++ {
			s += localClustering(und, u)
		}
		return s
	})
	total := 0.0
	for _, p := range parts {
		total += p
	}
	return total / float64(n)
}

// LocalClustering returns the local clustering coefficient of node u in the
// undirected projection of g.
func LocalClustering(g *Digraph, u int) float64 {
	return localClustering(g.Undirected(), u)
}

// LocalClusteringUndirected is LocalClustering on a graph that is already
// symmetric (as returned by Undirected): callers that need many per-node
// coefficients project once and amortize the O(m) projection instead of
// paying it on every call.
func LocalClusteringUndirected(und *Digraph, u int) float64 {
	return localClustering(und, u)
}

// localClustering computes triangles/(d·(d-1)/2) on an already-symmetric
// graph.
func localClustering(und *Digraph, u int) float64 {
	nbrs := und.OutNeighbors(u)
	d := len(nbrs)
	if d < 2 {
		return 0
	}
	links := 0
	for i := 0; i < d; i++ {
		vi := nbrs[i]
		row := und.OutNeighbors(int(vi))
		// Count neighbors of vi that are also neighbors of u with id
		// greater than vi (each undirected pair counted once) by merge
		// intersection.
		j, k := 0, 0
		for j < len(row) && k < d {
			switch {
			case row[j] < nbrs[k]:
				j++
			case row[j] > nbrs[k]:
				k++
			default:
				if row[j] > vi {
					links++
				}
				j++
				k++
			}
		}
	}
	return 2 * float64(links) / (float64(d) * float64(d-1))
}

// DegreeAssortativity returns the Pearson correlation of the (out-degree of
// source, in-degree of target) pairs over all directed edges — the
// out-in degree assortativity of Newman. Negative values indicate
// dissortativity; the paper measures −0.04 for the verified network, in
// contrast to the assortative full Twitter graph.
func DegreeAssortativity(g *Digraph) float64 {
	return DegreeAssortativityWithIn(g, g.InDegrees())
}

// DegreeAssortativityWithIn is DegreeAssortativity with a precomputed
// in-degree vector, saving the O(m) scan when the caller already holds one.
func DegreeAssortativityWithIn(g *Digraph, in []int) float64 {
	m := g.NumEdges()
	if m == 0 {
		return 0
	}
	// Each chunk accumulates the five edge moments over its source range;
	// combining in chunk order keeps the correlation bit-stable under any
	// worker count.
	type moments struct{ sx, sy, sxx, syy, sxy float64 }
	parts := chunkReduce(g.NumNodes(), func(lo, hi int) moments {
		var p moments
		for u := lo; u < hi; u++ {
			du := float64(g.OutDegree(u))
			for _, v := range g.OutNeighbors(u) {
				dv := float64(in[v])
				p.sx += du
				p.sy += dv
				p.sxx += du * du
				p.syy += dv * dv
				p.sxy += du * dv
			}
		}
		return p
	})
	var sx, sy, sxx, syy, sxy float64
	for _, p := range parts {
		sx += p.sx
		sy += p.sy
		sxx += p.sxx
		syy += p.syy
		sxy += p.sxy
	}
	fm := float64(m)
	cov := sxy/fm - (sx/fm)*(sy/fm)
	vx := sxx/fm - (sx/fm)*(sx/fm)
	vy := syy/fm - (sy/fm)*(sy/fm)
	if vx <= 0 || vy <= 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// UndirectedDegreeAssortativity returns the classic Newman degree
// assortativity of the undirected projection: the Pearson correlation of the
// degrees at the two ends of each undirected edge.
func UndirectedDegreeAssortativity(g *Digraph) float64 {
	und := g.Undirected()
	var sx, sy, sxx, syy, sxy float64
	var cnt float64
	for u := 0; u < und.NumNodes(); u++ {
		du := float64(und.OutDegree(u))
		for _, v := range und.OutNeighbors(u) {
			dv := float64(und.OutDegree(int(v)))
			sx += du
			sy += dv
			sxx += du * du
			syy += dv * dv
			sxy += du * dv
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	cov := sxy/cnt - (sx/cnt)*(sy/cnt)
	vx := sxx/cnt - (sx/cnt)*(sx/cnt)
	vy := syy/cnt - (sy/cnt)*(sy/cnt)
	if vx <= 0 || vy <= 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// DegreeStats summarizes a degree sequence.
type DegreeStats struct {
	Min, Max int
	Mean     float64
	Median   float64
}

// SummarizeDegrees computes order statistics of a degree slice.
func SummarizeDegrees(deg []int) DegreeStats {
	if len(deg) == 0 {
		return DegreeStats{}
	}
	sorted := make([]int, len(deg))
	copy(sorted, deg)
	sort.Ints(sorted)
	total := 0
	for _, d := range sorted {
		total += d
	}
	mid := len(sorted) / 2
	median := float64(sorted[mid])
	if len(sorted)%2 == 0 {
		median = (float64(sorted[mid-1]) + float64(sorted[mid])) / 2
	}
	return DegreeStats{
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   float64(total) / float64(len(sorted)),
		Median: median,
	}
}

// ArgMax returns the index of the maximum value in deg (first occurrence).
func ArgMax(deg []int) int {
	best := 0
	for i, d := range deg {
		if d > deg[best] {
			best = i
		}
	}
	return best
}
