package graph

import "testing"

func TestDigestStableAndSensitive(t *testing.T) {
	g1 := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	g2 := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if g1.Digest() != g2.Digest() {
		t.Fatal("identical graphs digest differently")
	}
	// One extra edge changes the digest.
	g3 := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}})
	if g3.Digest() == g1.Digest() {
		t.Fatal("added edge did not change digest")
	}
	// Same edges, different node count.
	g4 := FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if g4.Digest() == g1.Digest() {
		t.Fatal("extra isolated node did not change digest")
	}
	// Edge direction matters.
	g5 := FromEdges(4, [][2]int{{1, 0}, {1, 2}, {2, 3}, {3, 0}})
	if g5.Digest() == g1.Digest() {
		t.Fatal("reversed edge did not change digest")
	}
	// Empty graphs digest consistently without panicking.
	e1, e2 := FromEdges(0, nil), FromEdges(0, nil)
	if e1.Digest() != e2.Digest() {
		t.Fatal("empty graphs digest differently")
	}
}
