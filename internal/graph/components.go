package graph

// Components bundles the component-structure results the paper reports in
// its dataset section: weakly connected components, strongly connected
// components, the giant SCC, isolated nodes and attracting components.

// SCCResult describes the strongly connected component decomposition.
type SCCResult struct {
	// Comp[v] is the component id of node v; ids are in reverse
	// topological order of the condensation (Tarjan numbering): if there
	// is an edge from component a to component b in the condensation then
	// Comp id of a is greater than b's.
	Comp []int32
	// Sizes[i] is the number of nodes in component i.
	Sizes []int
}

// NumComponents returns the number of strongly connected components.
func (r *SCCResult) NumComponents() int { return len(r.Sizes) }

// Largest returns the id and size of the largest component (0,0 for an
// empty graph).
func (r *SCCResult) Largest() (id, size int) {
	for i, s := range r.Sizes {
		if s > size {
			id, size = i, s
		}
	}
	return
}

// StronglyConnectedComponents computes the SCC decomposition using an
// iterative Tarjan algorithm (explicit stack; the recursion depth on social
// graphs easily exceeds goroutine stack growth limits otherwise).
func StronglyConnectedComponents(g *Digraph) *SCCResult {
	n := g.NumNodes()
	const unvisited = -1
	index := make([]int32, n)
	lowlink := make([]int32, n)
	onStack := make([]bool, n)
	comp := make([]int32, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = -1
	}
	var stack []int32 // Tarjan stack
	var sizes []int
	var counter int32
	// Iterative DFS frame: node and position within its adjacency row.
	type frame struct {
		v   int32
		pos int64
	}
	var frames []frame
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames = append(frames[:0], frame{v: int32(root)})
		index[root] = counter
		lowlink[root] = counter
		counter++
		stack = append(stack, int32(root))
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			row := g.OutNeighbors(int(v))
			advanced := false
			for f.pos < int64(len(row)) {
				w := row[f.pos]
				f.pos++
				if index[w] == unvisited {
					index[w] = counter
					lowlink[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
					advanced = true
					break
				} else if onStack[w] && index[w] < lowlink[v] {
					lowlink[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v is finished.
			if lowlink[v] == index[v] {
				id := int32(len(sizes))
				size := 0
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = id
					size++
					if w == v {
						break
					}
				}
				sizes = append(sizes, size)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].v
				if lowlink[v] < lowlink[parent] {
					lowlink[parent] = lowlink[v]
				}
			}
		}
	}
	return &SCCResult{Comp: comp, Sizes: sizes}
}

// WCCResult describes the weakly connected component decomposition.
type WCCResult struct {
	Comp  []int32 // component id per node
	Sizes []int   // size per component
}

// NumComponents returns the number of weakly connected components. The paper
// reports 6,251 for the verified network.
func (r *WCCResult) NumComponents() int { return len(r.Sizes) }

// Largest returns the id and size of the largest weak component.
func (r *WCCResult) Largest() (id, size int) {
	for i, s := range r.Sizes {
		if s > size {
			id, size = i, s
		}
	}
	return
}

// WeaklyConnectedComponents computes weak components with a union-find over
// all edges (path halving + union by size).
func WeaklyConnectedComponents(g *Digraph) *WCCResult {
	n := g.NumNodes()
	parent := make([]int32, n)
	szs := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
		szs[i] = 1
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if szs[ra] < szs[rb] {
			ra, rb = rb, ra
		}
		parent[rb] = ra
		szs[ra] += szs[rb]
	}
	g.Edges(func(u, v int) bool {
		union(int32(u), int32(v))
		return true
	})
	comp := make([]int32, n)
	idOf := make(map[int32]int32)
	var sizes []int
	for v := 0; v < n; v++ {
		r := find(int32(v))
		id, ok := idOf[r]
		if !ok {
			id = int32(len(sizes))
			idOf[r] = id
			sizes = append(sizes, 0)
		}
		comp[v] = id
		sizes[id]++
	}
	return &WCCResult{Comp: comp, Sizes: sizes}
}

// IsolatedNodes returns the ids of nodes with zero in-degree and zero
// out-degree. The paper counts 6,027 isolated users.
func IsolatedNodes(g *Digraph) []int {
	in := g.InDegrees()
	var iso []int
	for v := 0; v < g.NumNodes(); v++ {
		if g.OutDegree(v) == 0 && in[v] == 0 {
			iso = append(iso, v)
		}
	}
	return iso
}

// AttractingComponents returns, for each attracting component, the ids of
// its member nodes. An attracting component is a strongly connected
// component with no edges leaving it (a sink of the condensation): once a
// random walk enters, it never leaves. Isolated nodes are trivially
// attracting. The paper counts 6,091 attracting components and observes that
// celebrity accounts that follow nobody sit at their cores.
func AttractingComponents(g *Digraph, scc *SCCResult) [][]int {
	if scc == nil {
		scc = StronglyConnectedComponents(g)
	}
	k := scc.NumComponents()
	isSink := make([]bool, k)
	for i := range isSink {
		isSink[i] = true
	}
	g.Edges(func(u, v int) bool {
		cu, cv := scc.Comp[u], scc.Comp[v]
		if cu != cv {
			isSink[cu] = false
		}
		return true
	})
	members := make(map[int32][]int)
	for v := 0; v < g.NumNodes(); v++ {
		c := scc.Comp[v]
		if isSink[c] {
			members[c] = append(members[c], v)
		}
	}
	out := make([][]int, 0, len(members))
	for c := int32(0); c < int32(k); c++ {
		if m, ok := members[c]; ok {
			out = append(out, m)
		}
	}
	return out
}

// Condensation returns the DAG whose nodes are the SCCs of g; there is an
// edge a→b iff some edge of g crosses from component a to component b.
func Condensation(g *Digraph, scc *SCCResult) *Digraph {
	if scc == nil {
		scc = StronglyConnectedComponents(g)
	}
	b := NewBuilder(scc.NumComponents())
	g.Edges(func(u, v int) bool {
		cu, cv := scc.Comp[u], scc.Comp[v]
		if cu != cv {
			b.AddEdge(int(cu), int(cv))
		}
		return true
	})
	return b.Build()
}
