package graph

import (
	"testing"
	"testing/quick"

	"elites/internal/mathx"
)

func TestSCCSimpleCycle(t *testing.T) {
	g := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	scc := StronglyConnectedComponents(g)
	if scc.NumComponents() != 2 {
		t.Fatalf("components = %d, want 2", scc.NumComponents())
	}
	if scc.Comp[0] != scc.Comp[1] || scc.Comp[1] != scc.Comp[2] {
		t.Fatal("cycle nodes should share a component")
	}
	if scc.Comp[3] == scc.Comp[0] {
		t.Fatal("node 3 should be separate")
	}
	_, size := scc.Largest()
	if size != 3 {
		t.Fatalf("largest = %d, want 3", size)
	}
}

func TestSCCDAGIsAllSingletons(t *testing.T) {
	g := FromEdges(5, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}})
	scc := StronglyConnectedComponents(g)
	if scc.NumComponents() != 5 {
		t.Fatalf("DAG should have n singleton SCCs, got %d", scc.NumComponents())
	}
}

func TestSCCTopologicalNumbering(t *testing.T) {
	// Tarjan ids are reverse topological: an edge crossing components goes
	// from a higher id to a lower id.
	rng := mathx.NewRNG(3)
	for trial := 0; trial < 30; trial++ {
		g := randomDigraph(rng, 40, 0.05)
		scc := StronglyConnectedComponents(g)
		g.Edges(func(u, v int) bool {
			cu, cv := scc.Comp[u], scc.Comp[v]
			if cu != cv && cu < cv {
				t.Fatalf("edge %d->%d crosses from comp %d to %d (not reverse-topological)", u, v, cu, cv)
			}
			return true
		})
	}
}

// bruteSCC computes SCCs by pairwise reachability — O(n·m) oracle.
func bruteSCC(g *Digraph) []int {
	n := g.NumNodes()
	reach := make([][]bool, n)
	for u := 0; u < n; u++ {
		reach[u] = make([]bool, n)
		dist := BFS(g, u)
		for v, d := range dist {
			if d >= 0 {
				reach[u][v] = true
			}
		}
	}
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	for u := 0; u < n; u++ {
		if comp[u] >= 0 {
			continue
		}
		comp[u] = next
		for v := u + 1; v < n; v++ {
			if comp[v] < 0 && reach[u][v] && reach[v][u] {
				comp[v] = next
			}
		}
		next++
	}
	return comp
}

func TestSCCAgainstBruteForce(t *testing.T) {
	rng := mathx.NewRNG(5)
	f := func(seed uint32) bool {
		n := 3 + rng.Intn(25)
		p := 0.02 + rng.Float64()*0.15
		g := randomDigraph(rng, n, p)
		scc := StronglyConnectedComponents(g)
		brute := bruteSCC(g)
		// Same partition: comp[u]==comp[v] iff brute[u]==brute[v].
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				a := scc.Comp[u] == scc.Comp[v]
				b := brute[u] == brute[v]
				if a != b {
					return false
				}
			}
		}
		// Sizes consistent.
		total := 0
		for _, s := range scc.Sizes {
			total += s
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSCCDeepPathNoStackOverflow(t *testing.T) {
	// A long path would blow recursive Tarjan; the iterative version must
	// handle 200k-node chains.
	n := 200000
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	g := b.Build()
	scc := StronglyConnectedComponents(g)
	if scc.NumComponents() != n {
		t.Fatalf("components = %d, want %d", scc.NumComponents(), n)
	}
}

func TestWCC(t *testing.T) {
	g := FromEdges(6, [][2]int{{0, 1}, {2, 1}, {3, 4}})
	wcc := WeaklyConnectedComponents(g)
	if wcc.NumComponents() != 3 {
		t.Fatalf("WCCs = %d, want 3 ({0,1,2},{3,4},{5})", wcc.NumComponents())
	}
	if wcc.Comp[0] != wcc.Comp[2] {
		t.Fatal("0 and 2 weakly connected via 1")
	}
	_, size := wcc.Largest()
	if size != 3 {
		t.Fatalf("largest WCC = %d", size)
	}
}

func TestWCCMatchesSCCOnUndirected(t *testing.T) {
	rng := mathx.NewRNG(11)
	for trial := 0; trial < 20; trial++ {
		g := randomDigraph(rng, 30, 0.04)
		und := g.Undirected()
		wcc := WeaklyConnectedComponents(g)
		scc := StronglyConnectedComponents(und)
		if wcc.NumComponents() != scc.NumComponents() {
			t.Fatalf("WCC of g (%d) != SCC of undirected (%d)",
				wcc.NumComponents(), scc.NumComponents())
		}
	}
}

func TestIsolatedNodes(t *testing.T) {
	g := FromEdges(5, [][2]int{{0, 1}, {1, 0}})
	iso := IsolatedNodes(g)
	if len(iso) != 3 {
		t.Fatalf("isolated = %v", iso)
	}
}

func TestAttractingComponents(t *testing.T) {
	// 0<->1 form an SCC that leaks to 2; 2 is a sink; 3 isolated (sink);
	// 4->2 is a source singleton.
	g := FromEdges(5, [][2]int{{0, 1}, {1, 0}, {1, 2}, {4, 2}})
	ac := AttractingComponents(g, nil)
	if len(ac) != 2 {
		t.Fatalf("attracting components = %d, want 2 ({2} and {3})", len(ac))
	}
	found2, found3 := false, false
	for _, members := range ac {
		if len(members) == 1 && members[0] == 2 {
			found2 = true
		}
		if len(members) == 1 && members[0] == 3 {
			found3 = true
		}
	}
	if !found2 || !found3 {
		t.Fatalf("attracting members wrong: %v", ac)
	}
}

func TestAttractingComponentsCycleSink(t *testing.T) {
	// Whole graph one cycle: the single SCC is attracting.
	g := FromEdges(3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	ac := AttractingComponents(g, nil)
	if len(ac) != 1 || len(ac[0]) != 3 {
		t.Fatalf("cycle should be one attracting comp of size 3: %v", ac)
	}
}

func TestCondensationIsDAG(t *testing.T) {
	rng := mathx.NewRNG(13)
	for trial := 0; trial < 20; trial++ {
		g := randomDigraph(rng, 35, 0.08)
		scc := StronglyConnectedComponents(g)
		cond := Condensation(g, scc)
		// A DAG has exactly as many SCCs as nodes.
		cscc := StronglyConnectedComponents(cond)
		if cscc.NumComponents() != cond.NumNodes() {
			t.Fatal("condensation is not a DAG")
		}
	}
}

func TestAttractingEqualsCondensationSinks(t *testing.T) {
	rng := mathx.NewRNG(17)
	for trial := 0; trial < 20; trial++ {
		g := randomDigraph(rng, 30, 0.06)
		scc := StronglyConnectedComponents(g)
		ac := AttractingComponents(g, scc)
		cond := Condensation(g, scc)
		sinks := 0
		for c := 0; c < cond.NumNodes(); c++ {
			if cond.OutDegree(c) == 0 {
				sinks++
			}
		}
		if len(ac) != sinks {
			t.Fatalf("attracting comps %d != condensation sinks %d", len(ac), sinks)
		}
	}
}
