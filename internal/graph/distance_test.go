package graph

import (
	"math"
	"testing"

	"elites/internal/mathx"
)

func TestBFSPath(t *testing.T) {
	g := FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	dist := BFS(g, 0)
	want := []int32{0, 1, 2, 3, -1}
	for i, w := range want {
		if dist[i] != w {
			t.Fatalf("dist = %v", dist)
		}
	}
}

func TestBFSDirectionality(t *testing.T) {
	g := FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	dist := BFS(g, 2)
	if dist[0] != -1 || dist[1] != -1 || dist[2] != 0 {
		t.Fatalf("reverse reachability should be empty: %v", dist)
	}
}

func TestExactDistancesCycle(t *testing.T) {
	// Directed 4-cycle: each ordered pair reachable; distances 1,2,3 from
	// each node.
	g := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	dd := ExactDistances(g)
	if dd.Pairs != 12 {
		t.Fatalf("pairs = %v, want 12", dd.Pairs)
	}
	if dd.Counts[1] != 4 || dd.Counts[2] != 4 || dd.Counts[3] != 4 {
		t.Fatalf("counts = %v", dd.Counts)
	}
	if math.Abs(dd.Mean()-2) > 1e-12 {
		t.Fatalf("mean = %v, want 2", dd.Mean())
	}
	if dd.MaxObserved() != 3 {
		t.Fatalf("diameter = %d, want 3", dd.MaxObserved())
	}
}

func TestDistanceDistributionPercentiles(t *testing.T) {
	dd := &DistanceDistribution{Counts: []float64{0, 50, 30, 20}, Pairs: 100}
	if m := dd.Median(); m < 0.9 || m > 1.1 {
		t.Fatalf("median = %v", m)
	}
	ed := dd.EffectiveDiameter()
	// 90th percentile: 50 at d=1, 30 at d=2 (cum 80), need 10 into the
	// 20 at d=3 -> 2 + 10/20 = 2.5.
	if math.Abs(ed-2.5) > 1e-9 {
		t.Fatalf("effective diameter = %v, want 2.5", ed)
	}
}

func TestSampledApproximatesExact(t *testing.T) {
	rng := mathx.NewRNG(5)
	g := randomDigraph(rng, 300, 0.02)
	exact := ExactDistances(g)
	sampled := SampledDistances(g, 150, rng)
	if !sampled.Sampled {
		t.Fatal("should be flagged sampled")
	}
	if exact.Pairs == 0 {
		t.Skip("degenerate random graph")
	}
	relMean := math.Abs(sampled.Mean()-exact.Mean()) / exact.Mean()
	if relMean > 0.1 {
		t.Fatalf("sampled mean %v vs exact %v", sampled.Mean(), exact.Mean())
	}
	relPairs := math.Abs(sampled.Pairs-exact.Pairs) / exact.Pairs
	if relPairs > 0.2 {
		t.Fatalf("sampled pairs %v vs exact %v", sampled.Pairs, exact.Pairs)
	}
}

func TestSampledFallsBackToExact(t *testing.T) {
	rng := mathx.NewRNG(6)
	g := FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	dd := SampledDistances(g, 10, rng)
	if dd.Sampled {
		t.Fatal("k >= n should run exact")
	}
	if dd.Pairs != 3 { // 0->1,0->2,1->2
		t.Fatalf("pairs = %v", dd.Pairs)
	}
}

func TestReachableFrom(t *testing.T) {
	g := FromEdges(4, [][2]int{{0, 1}, {1, 2}})
	if ReachableFrom(g, 0) != 2 {
		t.Fatal("reach from 0 should be 2")
	}
	if ReachableFrom(g, 3) != 0 {
		t.Fatal("reach from isolated should be 0")
	}
}

func TestDegreesWithinK(t *testing.T) {
	g := FromEdges(5, [][2]int{{0, 1}, {0, 2}, {1, 3}, {3, 4}})
	counts := DegreesWithinK(g, 0, 3)
	// d0: {0}; d1: {1,2}; d2: {3}; d3: {4}
	want := []int{1, 2, 1, 1}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("counts = %v", counts)
		}
	}
}

func TestHarmonicMeanDistance(t *testing.T) {
	dd := &DistanceDistribution{Counts: []float64{0, 4, 4}, Pairs: 8}
	// harmonic mean = 8 / (4/1 + 4/2) = 8/6
	if math.Abs(dd.HarmonicMeanDistance()-8.0/6.0) > 1e-12 {
		t.Fatalf("harmonic = %v", dd.HarmonicMeanDistance())
	}
	empty := &DistanceDistribution{Counts: []float64{0}, Pairs: 0}
	if !math.IsInf(empty.HarmonicMeanDistance(), 1) {
		t.Fatal("empty harmonic should be +Inf")
	}
}

func TestMeanMatchesBruteForce(t *testing.T) {
	rng := mathx.NewRNG(9)
	g := randomDigraph(rng, 60, 0.05)
	dd := ExactDistances(g)
	// Brute force with per-source BFS.
	var sum, cnt float64
	for u := 0; u < g.NumNodes(); u++ {
		dist := BFS(g, u)
		for _, d := range dist {
			if d > 0 {
				sum += float64(d)
				cnt++
			}
		}
	}
	if cnt == 0 {
		t.Skip("degenerate")
	}
	if math.Abs(dd.Mean()-sum/cnt) > 1e-9 {
		t.Fatalf("mean %v vs brute %v", dd.Mean(), sum/cnt)
	}
	if dd.Pairs != cnt {
		t.Fatalf("pairs %v vs brute %v", dd.Pairs, cnt)
	}
}

// TestDistanceWorkerInvariance pins the determinism contract for the
// ChunkReduce-sharded distance sweep: sampled and exact distributions are
// identical at worker budgets 1, 4 and 7 (including budgets exceeding the
// source count), matching the centrality and powerlaw invariance tests.
func TestDistanceWorkerInvariance(t *testing.T) {
	g := ringWithChords(400)
	ref := SampledDistancesWorkers(g, 50, mathx.NewRNG(99), 1)
	for _, workers := range []int{4, 7} {
		got := SampledDistancesWorkers(g, 50, mathx.NewRNG(99), workers)
		assertSameDistribution(t, ref, got, workers)
	}
	// Exact sweeps too, including workers > sources on a tiny graph.
	small := FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	refX := ExactDistancesWorkers(small, 1)
	for _, workers := range []int{4, 7} {
		gotX := ExactDistancesWorkers(small, workers)
		assertSameDistribution(t, refX, gotX, workers)
	}
}

func assertSameDistribution(t *testing.T, ref, got *DistanceDistribution, workers int) {
	t.Helper()
	if len(got.Counts) != len(ref.Counts) || got.Pairs != ref.Pairs ||
		got.Sources != ref.Sources || got.Sampled != ref.Sampled {
		t.Fatalf("workers=%d: shape diverges: %+v vs %+v", workers, got, ref)
	}
	for d := range ref.Counts {
		if got.Counts[d] != ref.Counts[d] {
			t.Fatalf("workers=%d: Counts[%d] = %v, want %v", workers, d, got.Counts[d], ref.Counts[d])
		}
	}
}

// ringWithChords builds a connected digraph with varied distances: a
// directed ring plus forward chords every 7 nodes.
func ringWithChords(n int) *Digraph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
		if i%7 == 0 {
			b.AddEdge(i, (i+n/3)%n)
		}
	}
	return b.Build()
}

// TestBFSQueueCapacityRetained pins the bfsInto contract: the returned queue
// must carry forward capacity grown during the traversal.
func TestBFSQueueCapacityRetained(t *testing.T) {
	g := ringWithChords(128)
	dist := make([]int32, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	q := bfsInto(g, 0, dist, make([]int32, 0, 1))
	if cap(q) < g.NumNodes() {
		t.Fatalf("returned queue cap = %d, want >= %d (growth discarded)", cap(q), g.NumNodes())
	}
	// Reuse must not re-grow: a full traversal visits every node, so the
	// queue needs n slots and already has them.
	for i := range dist {
		dist[i] = -1
	}
	q2 := bfsInto(g, 1, dist, q)
	if &q2[0] != &q[0] {
		t.Fatal("reused queue reallocated despite sufficient capacity")
	}
}

// TestBFSDirOptMatchesBFS: the direction-optimizing BFS must produce exactly
// the distances of the plain queue BFS on every fixture, at both heuristic
// extremes (all top-down and all bottom-up), because only the visit order —
// never a distance value — depends on the direction choice.
func TestBFSDirOptMatchesBFS(t *testing.T) {
	rng := mathx.NewRNG(31)
	graphs := map[string]*Digraph{
		"sparse":    randomDigraph(rng, 200, 0.01),
		"dense":     randomDigraph(rng, 80, 0.3),
		"ring":      ringWithChords(150),
		"path":      FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}}),
		"singleton": NewBuilder(1).Build(),
	}
	orig := distanceBottomUp
	defer func() { distanceBottomUp = orig }()
	for name, g := range graphs {
		n := g.NumNodes()
		g.InCSR()
		sc := newBFSScratch(n)
		got := make([]int32, n)
		for _, force := range []bool{false, true} {
			force := force
			distanceBottomUp = func(mf, restIn, unreached int64) bool { return force }
			for src := 0; src < n; src += 1 + n/7 {
				want := BFS(g, src)
				for i := range got {
					got[i] = -1
				}
				bfsDirOptInto(g, src, got, sc)
				for v := range want {
					if got[v] != want[v] {
						t.Fatalf("%s src=%d force=%v node %d: dist %d, want %d",
							name, src, force, v, got[v], want[v])
					}
				}
			}
		}
	}
}
