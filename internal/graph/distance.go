package graph

import (
	"math"

	"elites/internal/mathx"
	"elites/internal/parallel"
)

// DistanceDistribution is a histogram of finite pairwise shortest-path
// lengths (directed, hop counts). Counts[d] is the number of ordered reachable
// pairs at distance d >= 1; when sampled, counts are scaled estimates.
type DistanceDistribution struct {
	Counts []float64 // index = distance, Counts[0] unused
	// Pairs is the total number of ordered reachable pairs represented
	// (Σ Counts).
	Pairs float64
	// Sources is the number of BFS sources used (n for exact runs).
	Sources int
	// Sampled records whether the distribution is a source-sampled
	// estimate rather than exact.
	Sampled bool
}

// Mean returns the average distance over reachable pairs — the paper's 2.74
// "degrees of separation" statistic (isolated/unreachable pairs excluded).
func (d *DistanceDistribution) Mean() float64 {
	if d.Pairs == 0 {
		return 0
	}
	s := 0.0
	for dist, c := range d.Counts {
		s += float64(dist) * c
	}
	return s / d.Pairs
}

// Median returns the median distance over reachable pairs; the MSN study
// cited in the paper reports a median of 6.
func (d *DistanceDistribution) Median() float64 { return d.Percentile(0.50) }

// EffectiveDiameter returns the 90th-percentile distance (Leskovec's
// effective diameter) with linear interpolation between integer distances.
func (d *DistanceDistribution) EffectiveDiameter() float64 { return d.Percentile(0.90) }

// Percentile returns the p-quantile (0<p<=1) of the distance distribution
// with linear interpolation within the quantile's distance bucket.
func (d *DistanceDistribution) Percentile(p float64) float64 {
	if d.Pairs == 0 {
		return 0
	}
	target := p * d.Pairs
	cum := 0.0
	for dist := 1; dist < len(d.Counts); dist++ {
		c := d.Counts[dist]
		if c == 0 {
			continue
		}
		if cum+c >= target {
			// Interpolate within [dist-1, dist] following the
			// convention of Leskovec & Horvitz.
			frac := (target - cum) / c
			return float64(dist-1) + frac
		}
		cum += c
	}
	return float64(len(d.Counts) - 1)
}

// MaxObserved returns the largest finite distance observed (the diameter for
// exact runs, a lower bound when sampled).
func (d *DistanceDistribution) MaxObserved() int {
	for dist := len(d.Counts) - 1; dist >= 1; dist-- {
		if d.Counts[dist] > 0 {
			return dist
		}
	}
	return 0
}

// BFS computes directed hop distances from src; unreachable nodes get -1.
func BFS(g *Digraph, src int) []int32 {
	dist := make([]int32, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	_ = bfsInto(g, src, dist, make([]int32, 0, 1024))
	return dist
}

// bfsInto runs BFS reusing the provided queue; dist must be pre-filled with
// -1 and is written in place. It returns the (possibly grown) queue so that
// callers looping over many sources retain the grown capacity instead of
// re-growing from the original backing array on every traversal.
func bfsInto(g *Digraph, src int, dist []int32, queue []int32) []int32 {
	dist[src] = 0
	queue = append(queue[:0], int32(src))
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, v := range g.OutNeighbors(int(u)) {
			if dist[v] < 0 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return queue
}

// distanceBottomUp decides the traversal direction for one level of the
// distance sweeps' direction-optimizing BFS — same shape as the betweenness
// kernel's heuristic (see internal/centrality): top-down costs one probe per
// frontier out-edge (mf), bottom-up costs at most the unreached nodes'
// in-edges (restIn, estimated as unreached·m/n) and usually much less, since
// a distance-only sweep stops scanning a node's in-edges at the first
// frontier parent. Deterministic: inputs are pure functions of (graph,
// source). A variable so tests can force either direction.
var distanceBottomUp = func(mf, restIn, unreached int64) bool {
	return 8*mf > restIn+unreached
}

// bfsScratch is the reusable state of bfsDirOptInto.
type bfsScratch struct {
	cur, next []int32
	front     []uint64 // frontier bitmap, L1-resident at histogram scales
}

func newBFSScratch(n int) *bfsScratch {
	return &bfsScratch{
		cur:   make([]int32, 0, n),
		next:  make([]int32, 0, n),
		front: make([]uint64, (n+63)/64),
	}
}

// bfsDirOptInto is bfsInto with direction optimization: each level expands
// top-down (scan frontier out-edges) or bottom-up (scan unreached nodes'
// in-edges against a frontier bitmap, stopping at the first parent) per
// distanceBottomUp. Distances are identical either way — only the visit
// order differs, which a histogram never observes. dist must be pre-filled
// with -1; the caller must have materialized g.InCSR() already (workers
// would otherwise serialize on the lazy transpose build).
func bfsDirOptInto(g *Digraph, src int, dist []int32, sc *bfsScratch) {
	outOff, _ := g.CSR()
	inOff, inAdj := g.InCSR()
	n := g.n
	m := int64(len(inAdj))
	dist[src] = 0
	cur, next := sc.cur[:0], sc.next[:0]
	cur = append(cur, int32(src))
	reached := 1
	for d := int32(0); len(cur) > 0; d++ {
		var mf int64
		for _, u := range cur {
			mf += outOff[u+1] - outOff[u]
		}
		unreached := int64(n - reached)
		next = next[:0]
		if distanceBottomUp(mf, unreached*m/int64(n), unreached) {
			front := sc.front
			clear(front)
			for _, u := range cur {
				front[uint32(u)>>6] |= 1 << (uint32(u) & 63)
			}
			for v := 0; v < n; v++ {
				if dist[v] >= 0 {
					continue
				}
				for _, u := range inAdj[inOff[v]:inOff[v+1]] {
					if front[uint32(u)>>6]&(1<<(uint32(u)&63)) != 0 {
						dist[v] = d + 1
						next = append(next, int32(v))
						break
					}
				}
			}
		} else {
			for _, u := range cur {
				for _, v := range g.OutNeighbors(int(u)) {
					if dist[v] < 0 {
						dist[v] = d + 1
						next = append(next, v)
					}
				}
			}
		}
		reached += len(next)
		cur, next = next, cur
	}
	sc.cur, sc.next = cur, next // retain grown capacity for the next source
}

// ExactDistances runs a full all-pairs BFS (n BFS traversals, parallelized
// on the shared worker pool) and returns the exact distance distribution.
// Suitable up to a few tens of thousands of nodes.
func ExactDistances(g *Digraph) *DistanceDistribution {
	return ExactDistancesWorkers(g, 0)
}

// ExactDistancesWorkers is ExactDistances with an explicit worker budget
// (<= 0 means GOMAXPROCS); every budget yields identical counts.
func ExactDistancesWorkers(g *Digraph, workers int) *DistanceDistribution {
	n := g.NumNodes()
	sources := make([]int, n)
	for i := range sources {
		sources[i] = i
	}
	dd := distancesFromSources(g, sources, workers)
	dd.Sampled = false
	return dd
}

// SampledDistances estimates the distance distribution from k uniformly
// sampled BFS sources; the per-source pair counts are unbiased estimates of
// the full distribution up to the n/k scale factor, which we apply so that
// Counts are comparable to exact runs. Kwak et al. used the same
// source-sampling strategy for the full Twitter graph.
func SampledDistances(g *Digraph, k int, rng *mathx.RNG) *DistanceDistribution {
	return SampledDistancesWorkers(g, k, rng, 0)
}

// SampledDistancesWorkers is SampledDistances with an explicit worker budget
// (<= 0 means GOMAXPROCS). The source sample depends only on rng, and the
// sweep reduces fixed-layout integer partials in chunk order, so the
// distribution is identical at every budget.
func SampledDistancesWorkers(g *Digraph, k int, rng *mathx.RNG, workers int) *DistanceDistribution {
	n := g.NumNodes()
	if k >= n {
		return ExactDistancesWorkers(g, workers)
	}
	perm := rng.Perm(n)
	sources := perm[:k]
	dd := distancesFromSources(g, sources, workers)
	scale := float64(n) / float64(k)
	for i := range dd.Counts {
		dd.Counts[i] *= scale
	}
	dd.Pairs *= scale
	dd.Sampled = true
	return dd
}

// maxDistancePartials bounds how many source chunks a distance sweep splits
// into. Each in-flight chunk carries its own dist/queue scratch (O(n)), so
// the bound also caps scratch memory; like betweenness, the chunk layout is
// a function of the source count only — never of the worker budget — which
// keeps the reduction order fixed.
const maxDistancePartials = 64

// distancesFromSources accumulates the hop-distance histogram over BFS runs
// from the given sources, sharded through the shared worker pool
// (parallel.ChunkReduce): fixed-layout source chunks, one int64 histogram
// per chunk, folded in chunk order. Counts are integers, so the fold is
// exact at any budget; the fixed order keeps it deterministic by
// construction all the same.
func distancesFromSources(g *Digraph, sources []int, workers int) *DistanceDistribution {
	g.InCSR() // build the transpose once, before the workers race to it
	chunk := (len(sources) + maxDistancePartials - 1) / maxDistancePartials
	parts := parallel.ChunkReduce(len(sources), chunk, workers, func(lo, hi int) []int64 {
		n := g.NumNodes()
		dist := make([]int32, n)
		sc := newBFSScratch(n)
		counts := make([]int64, 64)
		for idx := lo; idx < hi; idx++ {
			src := sources[idx]
			for i := range dist {
				dist[i] = -1
			}
			bfsDirOptInto(g, src, dist, sc)
			for _, d := range dist {
				if d > 0 {
					if int(d) >= len(counts) {
						grow := make([]int64, int(d)*2)
						copy(grow, counts)
						counts = grow
					}
					counts[d]++
				}
			}
		}
		return counts
	})
	maxLen := 0
	for _, p := range parts {
		if len(p) > maxLen {
			maxLen = len(p)
		}
	}
	if maxLen == 0 {
		maxLen = 1
	}
	out := &DistanceDistribution{Counts: make([]float64, maxLen), Sources: len(sources)}
	for _, p := range parts {
		for d, c := range p {
			out.Counts[d] += float64(c)
			out.Pairs += float64(c)
		}
	}
	// Trim trailing zeros.
	last := len(out.Counts)
	for last > 1 && out.Counts[last-1] == 0 {
		last--
	}
	out.Counts = out.Counts[:last]
	return out
}

// ReachableFrom returns the number of nodes reachable from src (excluding
// src itself).
func ReachableFrom(g *Digraph, src int) int {
	dist := BFS(g, src)
	cnt := 0
	for _, d := range dist {
		if d > 0 {
			cnt++
		}
	}
	return cnt
}

// DegreesWithinK returns, for each hop distance d in [0, k], the number of
// nodes whose directed distance from src is exactly d. It powers the
// spam-whitelisting example (Hentschel et al.: most users sit within 7 hops
// of a verified user).
func DegreesWithinK(g *Digraph, src, k int) []int {
	dist := BFS(g, src)
	counts := make([]int, k+1)
	for _, d := range dist {
		if d >= 0 && int(d) <= k {
			counts[d]++
		}
	}
	return counts
}

// HarmonicMeanDistance returns the harmonic mean of pairwise distances from
// the distribution (used as a robust small-world summary; infinite distances
// contribute zero).
func (d *DistanceDistribution) HarmonicMeanDistance() float64 {
	s := 0.0
	for dist := 1; dist < len(d.Counts); dist++ {
		s += d.Counts[dist] / float64(dist)
	}
	if s == 0 {
		return math.Inf(1)
	}
	return d.Pairs / s
}
