package graph

import (
	"math"
	"sort"
)

// This file implements the core-structure analyses behind the paper's
// §IV-C conjecture — "the larger reciprocity rate viz-a-viz the whole
// Twitter graph is due to a larger core of publicly relevant and
// consequential personalities within this sub-graph. We leave validating
// this assertion for future work." — k-core decomposition, the rich-club
// coefficient, and extraction of the mutual (reciprocal-only) sub-graph.

// KCoreResult holds the core decomposition of the undirected projection.
type KCoreResult struct {
	// Core[v] is the core number of node v (the largest k such that v
	// belongs to the k-core).
	Core []int
	// MaxCore is the degeneracy of the graph.
	MaxCore int
}

// CoreSizes returns, for each k in [0, MaxCore], how many nodes have core
// number >= k (the size of the k-core).
func (r *KCoreResult) CoreSizes() []int {
	sizes := make([]int, r.MaxCore+1)
	for _, c := range r.Core {
		sizes[c]++
	}
	// Suffix-sum: nodes with core >= k.
	for k := r.MaxCore - 1; k >= 0; k-- {
		sizes[k] += sizes[k+1]
	}
	return sizes
}

// KCores computes core numbers of the undirected projection of g using the
// Batagelj–Zaveršnik bucket algorithm (O(n + m)).
func KCores(g *Digraph) *KCoreResult {
	und := g.Undirected()
	n := und.NumNodes()
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = und.OutDegree(v)
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket sort nodes by degree.
	bin := make([]int, maxDeg+2)
	for _, d := range deg {
		bin[d]++
	}
	start := 0
	for d := 0; d <= maxDeg; d++ {
		cnt := bin[d]
		bin[d] = start
		start += cnt
	}
	pos := make([]int, n)  // position of node in vert
	vert := make([]int, n) // nodes sorted by current degree
	for v := 0; v < n; v++ {
		pos[v] = bin[deg[v]]
		vert[pos[v]] = v
		bin[deg[v]]++
	}
	for d := maxDeg; d > 0; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0
	core := make([]int, n)
	copy(core, deg)
	for i := 0; i < n; i++ {
		v := vert[i]
		for _, u32 := range und.OutNeighbors(v) {
			u := int(u32)
			if core[u] > core[v] {
				// Move u one bucket down.
				du := core[u]
				pu := pos[u]
				pw := bin[du]
				w := vert[pw]
				if u != w {
					pos[u] = pw
					vert[pu] = w
					pos[w] = pu
					vert[pw] = u
				}
				bin[du]++
				core[u]--
			}
		}
	}
	maxCore := 0
	for _, c := range core {
		if c > maxCore {
			maxCore = c
		}
	}
	return &KCoreResult{Core: core, MaxCore: maxCore}
}

// RichClubPoint is the rich-club coefficient at one degree threshold.
type RichClubPoint struct {
	K       int     // degree threshold
	N       int     // nodes with undirected degree > K
	Phi     float64 // density of the sub-graph they induce (undirected)
	PhiNorm float64 // Phi normalized by the whole graph's density; > 1 ⇒ rich club
}

// RichClub computes the rich-club coefficient φ(k) = 2·E_{>k} / (N_{>k}·
// (N_{>k}−1)) of the undirected projection at logarithmically spaced degree
// thresholds, normalized by the overall density. Values well above 1 at
// high k indicate that the most-connected "elite" nodes preferentially
// interconnect — the structural meaning of the paper's "core of publicly
// relevant personalities".
func RichClub(g *Digraph, points int) []RichClubPoint {
	und := g.Undirected()
	n := und.NumNodes()
	if n < 3 || points < 1 {
		return nil
	}
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = und.OutDegree(v)
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	overall := und.Density() // symmetric digraph density = undirected density
	if overall == 0 {
		return nil
	}
	// Log-spaced thresholds from 1 to maxDeg/2.
	ks := logSpacedInts(1, maxDeg/2, points)
	out := make([]RichClubPoint, 0, len(ks))
	for _, k := range ks {
		var members []int
		for v := 0; v < n; v++ {
			if deg[v] > k {
				members = append(members, v)
			}
		}
		if len(members) < 2 {
			break
		}
		inSet := make(map[int32]bool, len(members))
		for _, v := range members {
			inSet[int32(v)] = true
		}
		var edges int64 // directed count within the symmetric projection
		for _, v := range members {
			for _, u := range und.OutNeighbors(v) {
				if inSet[u] {
					edges++
				}
			}
		}
		nm := float64(len(members))
		phi := float64(edges) / (nm * (nm - 1))
		out = append(out, RichClubPoint{
			K: k, N: len(members), Phi: phi, PhiNorm: phi / overall,
		})
	}
	return out
}

func logSpacedInts(lo, hi, points int) []int {
	if hi <= lo {
		return []int{lo}
	}
	var out []int
	last := -1
	for i := 0; i < points; i++ {
		f := float64(i) / float64(points-1)
		v := int(float64(lo) * pow(float64(hi)/float64(lo), f))
		if v != last {
			out = append(out, v)
			last = v
		}
	}
	return out
}

func pow(base, exp float64) float64 { return math.Pow(base, exp) }

// MutualSubgraph returns the sub-graph keeping only reciprocated edges
// (u→v and v→u both present) — the "mutual core" whose relative size the
// §IV-C conjecture is about.
func MutualSubgraph(g *Digraph) *Digraph {
	b := NewBuilder(g.NumNodes())
	g.Edges(func(u, v int) bool {
		if u < v && g.HasEdge(v, u) {
			b.AddEdge(u, v)
			b.AddEdge(v, u)
		}
		return true
	})
	return b.Build()
}

// CoreReciprocity reports reciprocity restricted to edges whose endpoints
// both have core number >= k, versus edges with at least one endpoint below
// k — the direct §IV-C validation: if the conjecture holds, core edges
// reciprocate far more often than periphery edges.
func CoreReciprocity(g *Digraph, cores *KCoreResult, k int) (core, periphery float64) {
	var coreMutual, coreTotal, perMutual, perTotal int64
	g.Edges(func(u, v int) bool {
		mutual := g.HasEdge(v, u)
		if cores.Core[u] >= k && cores.Core[v] >= k {
			coreTotal++
			if mutual {
				coreMutual++
			}
		} else {
			perTotal++
			if mutual {
				perMutual++
			}
		}
		return true
	})
	if coreTotal > 0 {
		core = float64(coreMutual) / float64(coreTotal)
	}
	if perTotal > 0 {
		periphery = float64(perMutual) / float64(perTotal)
	}
	return
}

// TopCoreNodes returns up to k nodes with the highest core numbers, ties
// broken by undirected degree (the "publicly relevant and consequential
// personalities").
func TopCoreNodes(g *Digraph, cores *KCoreResult, k int) []int {
	und := g.Undirected()
	n := g.NumNodes()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ca, cb := cores.Core[idx[a]], cores.Core[idx[b]]
		if ca != cb {
			return ca > cb
		}
		return und.OutDegree(idx[a]) > und.OutDegree(idx[b])
	})
	if k > n {
		k = n
	}
	return idx[:k]
}
