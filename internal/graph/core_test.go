package graph

import (
	"math"
	"testing"

	"elites/internal/mathx"
)

func TestKCoresClique(t *testing.T) {
	// A 5-clique (undirected via mutual edges): every node has core 4.
	b := NewBuilder(5)
	for u := 0; u < 5; u++ {
		for v := 0; v < 5; v++ {
			if u != v {
				b.AddEdge(u, v)
			}
		}
	}
	res := KCores(b.Build())
	if res.MaxCore != 4 {
		t.Fatalf("clique max core = %d, want 4", res.MaxCore)
	}
	for v, c := range res.Core {
		if c != 4 {
			t.Fatalf("node %d core = %d", v, c)
		}
	}
	sizes := res.CoreSizes()
	if sizes[4] != 5 || sizes[0] != 5 {
		t.Fatalf("core sizes = %v", sizes)
	}
}

func TestKCoresCliqueWithPendants(t *testing.T) {
	// 4-clique (nodes 0-3) plus pendant chain 4-5: pendants have core 1.
	b := NewBuilder(6)
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			if u != v {
				b.AddEdge(u, v)
			}
		}
	}
	b.AddEdge(0, 4)
	b.AddEdge(4, 0)
	b.AddEdge(4, 5)
	b.AddEdge(5, 4)
	res := KCores(b.Build())
	for v := 0; v < 4; v++ {
		if res.Core[v] != 3 {
			t.Fatalf("clique node %d core = %d, want 3", v, res.Core[v])
		}
	}
	if res.Core[4] != 1 || res.Core[5] != 1 {
		t.Fatalf("pendant cores = %d, %d, want 1, 1", res.Core[4], res.Core[5])
	}
}

// bruteCore computes core numbers by repeated peeling — the O(n²) oracle.
func bruteCore(g *Digraph) []int {
	und := g.Undirected()
	n := und.NumNodes()
	deg := make([]int, n)
	alive := make([]bool, n)
	for v := 0; v < n; v++ {
		deg[v] = und.OutDegree(v)
		alive[v] = true
	}
	core := make([]int, n)
	for k := 0; ; k++ {
		anyAlive := false
		for {
			removed := false
			for v := 0; v < n; v++ {
				if alive[v] && deg[v] <= k {
					alive[v] = false
					core[v] = k
					for _, u := range und.OutNeighbors(v) {
						if alive[u] {
							deg[u]--
						}
					}
					removed = true
				}
			}
			if !removed {
				break
			}
		}
		for v := 0; v < n; v++ {
			if alive[v] {
				anyAlive = true
			}
		}
		if !anyAlive {
			break
		}
	}
	return core
}

func TestKCoresAgainstBruteForce(t *testing.T) {
	rng := mathx.NewRNG(3)
	for trial := 0; trial < 25; trial++ {
		g := randomDigraph(rng, 40, 0.08)
		got := KCores(g)
		want := bruteCore(g)
		for v := range want {
			if got.Core[v] != want[v] {
				t.Fatalf("trial %d node %d: core %d vs brute %d", trial, v, got.Core[v], want[v])
			}
		}
	}
}

func TestRichClubDetectsElite(t *testing.T) {
	// Dense core of 20 nodes + sparse periphery of 380 attached one edge
	// each: φ_norm at high k must exceed 1 by a lot.
	rng := mathx.NewRNG(5)
	b := NewBuilder(400)
	for u := 0; u < 20; u++ {
		for v := 0; v < 20; v++ {
			if u != v && rng.Bool(0.8) {
				b.AddEdge(u, v)
				b.AddEdge(v, u)
			}
		}
	}
	for v := 20; v < 400; v++ {
		// Two mutual attachments so periphery degree (2) exceeds the
		// lowest rich-club threshold and the low-k club spans everyone.
		for a := 0; a < 2; a++ {
			hub := rng.Intn(20)
			b.AddEdge(v, hub)
			b.AddEdge(hub, v)
		}
	}
	g := b.Build()
	rc := RichClub(g, 12)
	if len(rc) == 0 {
		t.Fatal("no rich-club points")
	}
	last := rc[len(rc)-1]
	if last.PhiNorm < 3 {
		t.Fatalf("rich club not detected: %+v", rc)
	}
	// Low-k point should be near the overall density (φ_norm ≈ 1).
	if rc[0].PhiNorm > 3 {
		t.Fatalf("low-k already elite? %+v", rc[0])
	}
}

func TestMutualSubgraph(t *testing.T) {
	g := FromEdges(4, [][2]int{{0, 1}, {1, 0}, {1, 2}, {2, 3}, {3, 2}})
	m := MutualSubgraph(g)
	if m.NumEdges() != 4 { // (0,1) and (2,3) pairs
		t.Fatalf("mutual edges = %d, want 4", m.NumEdges())
	}
	if !m.HasEdge(0, 1) || !m.HasEdge(1, 0) || !m.HasEdge(2, 3) || !m.HasEdge(3, 2) {
		t.Fatal("mutual pairs missing")
	}
	if m.HasEdge(1, 2) {
		t.Fatal("one-way edge survived")
	}
	if r := Reciprocity(m); r != 1 {
		t.Fatalf("mutual subgraph reciprocity = %v, want 1", r)
	}
}

func TestCoreReciprocityConjecture(t *testing.T) {
	// On the calibrated verified-like generator, the §IV-C conjecture
	// should hold: high-core edges reciprocate more than periphery edges.
	// Build with the generator's mechanism in miniature: a mutual core
	// plus fan periphery.
	rng := mathx.NewRNG(7)
	b := NewBuilder(500)
	// Core: 50 nodes, dense mutual.
	for u := 0; u < 50; u++ {
		for k := 0; k < 8; k++ {
			v := rng.Intn(50)
			if v != u {
				b.AddEdge(u, v)
				b.AddEdge(v, u)
			}
		}
	}
	// Periphery: 450 nodes following core one-way. Note a periphery node
	// of degree d sits in the d-core (its hub neighbors never peel), so
	// the threshold below must exceed the periphery degree.
	for v := 50; v < 500; v++ {
		for k := 0; k < 3; k++ {
			b.AddEdge(v, rng.Intn(50))
		}
	}
	g := b.Build()
	cores := KCores(g)
	coreR, perR := CoreReciprocity(g, cores, 6)
	if coreR <= perR {
		t.Fatalf("conjecture violated in constructed case: core %v <= periphery %v", coreR, perR)
	}
	if coreR < 0.8 {
		t.Fatalf("core reciprocity = %v, want high", coreR)
	}
}

func TestTopCoreNodes(t *testing.T) {
	// Clique 0-3 + pendants: top core nodes must be the clique.
	b := NewBuilder(6)
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			if u != v {
				b.AddEdge(u, v)
			}
		}
	}
	b.AddEdge(4, 0)
	b.AddEdge(5, 1)
	g := b.Build()
	cores := KCores(g)
	top := TopCoreNodes(g, cores, 4)
	for _, v := range top {
		if v >= 4 {
			t.Fatalf("pendant %d in top core set %v", v, top)
		}
	}
	if len(TopCoreNodes(g, cores, 100)) != 6 {
		t.Fatal("k clamp failed")
	}
}

func TestCoreSizesMonotone(t *testing.T) {
	rng := mathx.NewRNG(11)
	g := randomDigraph(rng, 120, 0.05)
	sizes := KCores(g).CoreSizes()
	for k := 1; k < len(sizes); k++ {
		if sizes[k] > sizes[k-1] {
			t.Fatalf("core sizes not monotone: %v", sizes)
		}
	}
	if sizes[0] != g.NumNodes() {
		t.Fatalf("0-core = %d, want all nodes", sizes[0])
	}
	_ = math.Pi
}
