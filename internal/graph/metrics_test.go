package graph

import (
	"math"
	"testing"

	"elites/internal/mathx"
)

func TestReciprocityFull(t *testing.T) {
	g := FromEdges(2, [][2]int{{0, 1}, {1, 0}})
	if r := Reciprocity(g); r != 1 {
		t.Fatalf("Reciprocity = %v, want 1", r)
	}
}

func TestReciprocityNone(t *testing.T) {
	g := FromEdges(3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	if r := Reciprocity(g); r != 0 {
		t.Fatalf("Reciprocity = %v, want 0", r)
	}
}

func TestReciprocityMixed(t *testing.T) {
	// 4 edges, one mutual pair -> 2/4.
	g := FromEdges(4, [][2]int{{0, 1}, {1, 0}, {1, 2}, {2, 3}})
	if r := Reciprocity(g); r != 0.5 {
		t.Fatalf("Reciprocity = %v, want 0.5", r)
	}
}

func TestReciprocityBounds(t *testing.T) {
	rng := mathx.NewRNG(1)
	for trial := 0; trial < 20; trial++ {
		g := randomDigraph(rng, 25, 0.1)
		r := Reciprocity(g)
		if r < 0 || r > 1 {
			t.Fatalf("Reciprocity out of bounds: %v", r)
		}
	}
}

func TestReciprocityDialExpectation(t *testing.T) {
	// Generate edges, reciprocating with probability p; measured r should
	// approach 2p/(1+p) — the identity the generator calibration relies on.
	rng := mathx.NewRNG(2)
	p := 0.203
	n := 2000
	b := NewBuilder(n)
	for i := 0; i < 40000; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		b.AddEdge(u, v)
		if rng.Bool(p) {
			b.AddEdge(v, u)
		}
	}
	g := b.Build()
	want := 2 * p / (1 + p)
	got := Reciprocity(g)
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("reciprocity dial: got %v, want ~%v", got, want)
	}
}

func TestClusteringTriangle(t *testing.T) {
	// Undirected triangle: every node has clustering 1.
	g := FromEdges(3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	if c := AverageLocalClustering(g); math.Abs(c-1) > 1e-12 {
		t.Fatalf("triangle clustering = %v, want 1", c)
	}
}

func TestClusteringStar(t *testing.T) {
	// Star: center has no closed triples, leaves degree 1 -> all zero.
	g := FromEdges(5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	if c := AverageLocalClustering(g); c != 0 {
		t.Fatalf("star clustering = %v, want 0", c)
	}
}

func TestClusteringPartial(t *testing.T) {
	// Path 0-1-2 plus edge 0-2 makes triangle; add pendant 3 on 0.
	// Degrees: 0:{1,2,3} c=1/3; 1:{0,2} c=1; 2:{0,1} c=1; 3:{0} c=0.
	g := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {0, 3}})
	want := (1.0/3 + 1 + 1 + 0) / 4
	if c := AverageLocalClustering(g); math.Abs(c-want) > 1e-12 {
		t.Fatalf("clustering = %v, want %v", c, want)
	}
}

func TestLocalClusteringDirectionIgnored(t *testing.T) {
	// Directions shouldn't matter: 0->1, 2->1, 0->2 still closes the
	// undirected triangle.
	g := FromEdges(3, [][2]int{{0, 1}, {2, 1}, {0, 2}})
	if c := LocalClustering(g, 0); math.Abs(c-1) > 1e-12 {
		t.Fatalf("directed triangle clustering = %v, want 1", c)
	}
}

func TestAssortativityDisassortativeStar(t *testing.T) {
	// Directed star out of the hub: hub has high out-degree, leaves
	// in-degree 1; constant values give r=0 denominators -> define via
	// a two-star graph instead.
	g := FromEdges(6, [][2]int{
		{0, 1}, {0, 2}, {0, 3}, // hub 0
		{4, 5}, // low-degree pair
	})
	r := DegreeAssortativity(g)
	if r > 0 {
		t.Fatalf("expected non-positive assortativity, got %v", r)
	}
}

func TestAssortativityBounds(t *testing.T) {
	rng := mathx.NewRNG(3)
	for trial := 0; trial < 20; trial++ {
		g := randomDigraph(rng, 30, 0.1)
		r := DegreeAssortativity(g)
		if math.IsNaN(r) || r < -1-1e-9 || r > 1+1e-9 {
			t.Fatalf("assortativity out of range: %v", r)
		}
		u := UndirectedDegreeAssortativity(g)
		if math.IsNaN(u) || u < -1-1e-9 || u > 1+1e-9 {
			t.Fatalf("undirected assortativity out of range: %v", u)
		}
	}
}

func TestUndirectedAssortativityKnown(t *testing.T) {
	// A path graph 0-1-2-3: degree pairs across edges (1,2),(2,1),(2,2),
	// (2,2),(2,1),(1,2). Newman r for P4 is -0.5.
	g := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	r := UndirectedDegreeAssortativity(g)
	if math.Abs(r+0.5) > 1e-9 {
		t.Fatalf("P4 assortativity = %v, want -0.5", r)
	}
}

func TestSummarizeDegrees(t *testing.T) {
	s := SummarizeDegrees([]int{3, 1, 4, 1, 5})
	if s.Min != 1 || s.Max != 5 || math.Abs(s.Mean-2.8) > 1e-12 || s.Median != 3 {
		t.Fatalf("stats = %+v", s)
	}
	even := SummarizeDegrees([]int{1, 2, 3, 4})
	if even.Median != 2.5 {
		t.Fatalf("even median = %v", even.Median)
	}
	empty := SummarizeDegrees(nil)
	if empty.Max != 0 {
		t.Fatal("empty stats should be zero")
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax([]int{1, 9, 3, 9}) != 1 {
		t.Fatal("ArgMax should return first maximum")
	}
}

// TestShardedMetricsMatchSequential pins the sharded implementations to a
// straightforward sequential reference on a graph big enough to span
// several chunks (> metricChunk nodes), and checks run-to-run bit-stability.
func TestShardedMetricsMatchSequential(t *testing.T) {
	rng := mathx.NewRNG(6)
	n := 3 * metricChunk
	b := NewBuilder(n)
	for i := 0; i < 20*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		b.AddEdge(u, v)
		if rng.Bool(0.3) {
			b.AddEdge(v, u)
		}
	}
	g := b.Build()

	// Sequential references.
	var mutual int64
	for u := 0; u < n; u++ {
		for _, v := range g.OutNeighbors(u) {
			if g.HasEdge(int(v), u) {
				mutual++
			}
		}
	}
	wantRecip := float64(mutual) / float64(g.NumEdges())
	und := g.Undirected()
	clustSum := 0.0
	for u := 0; u < n; u++ {
		clustSum += localClustering(und, u)
	}
	wantClust := clustSum / float64(n)
	in := g.InDegrees()
	var sx, sy, sxx, syy, sxy float64
	for u := 0; u < n; u++ {
		du := float64(g.OutDegree(u))
		for _, v := range g.OutNeighbors(u) {
			dv := float64(in[v])
			sx += du
			sy += dv
			sxx += du * du
			syy += dv * dv
			sxy += du * dv
		}
	}
	fm := float64(g.NumEdges())
	cov := sxy/fm - (sx/fm)*(sy/fm)
	wantAssort := cov / math.Sqrt((sxx/fm-(sx/fm)*(sx/fm))*(syy/fm-(sy/fm)*(sy/fm)))

	if got := Reciprocity(g); got != wantRecip {
		t.Fatalf("sharded reciprocity %v != sequential %v", got, wantRecip)
	}
	if got := AverageLocalClustering(g); math.Abs(got-wantClust) > 1e-12 {
		t.Fatalf("sharded clustering %v != sequential %v", got, wantClust)
	}
	r1 := DegreeAssortativity(g)
	if math.Abs(r1-wantAssort) > 1e-12 {
		t.Fatalf("sharded assortativity %v != sequential %v", r1, wantAssort)
	}
	if got := DegreeAssortativityWithIn(g, in); got != r1 {
		t.Fatalf("precomputed-degrees variant %v != %v", got, r1)
	}
	// Bit-stability across repeated parallel runs.
	for i := 0; i < 3; i++ {
		if Reciprocity(g) != wantRecip {
			t.Fatal("reciprocity not run-to-run stable")
		}
		if AverageLocalClustering(g) != AverageLocalClustering(g) {
			t.Fatal("clustering not run-to-run stable")
		}
		if DegreeAssortativity(g) != r1 {
			t.Fatal("assortativity not run-to-run stable")
		}
	}
}
