// Package graph implements the directed-graph substrate of the library: a
// compact immutable CSR (compressed sparse row) digraph, a mutable builder,
// and the structural analyses the paper runs on the Twitter verified-user
// network — strongly and weakly connected components, attracting components,
// reciprocity, clustering, degree assortativity and shortest-path
// distributions.
//
// Graphs at the paper's scale (231k nodes, 79M directed edges) fit in a few
// hundred MB in this representation; node ids are dense [0, N) integers and
// adjacency lists are sorted, enabling O(log d) edge queries and
// cache-friendly traversals.
package graph

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrNodeRange is returned when a node id is outside [0, N).
var ErrNodeRange = errors.New("graph: node id out of range")

// Digraph is an immutable directed graph in CSR form. Use Builder to
// construct one. The zero value is an empty graph.
type Digraph struct {
	n       int
	offsets []int64 // len n+1; out-neighbors of u are adj[offsets[u]:offsets[u+1]]
	adj     []int32 // sorted within each row

	// Transpose CSR (in-neighbors), built lazily by InCSR/InNeighbors and
	// cached for the graph's lifetime. Direction-optimizing traversals
	// (bottom-up BFS in the betweenness kernel and the distance sweeps)
	// read it; everything else never pays for it.
	inOnce sync.Once
	inOff  []int64
	inAdj  []int32
}

// NumNodes returns the number of nodes.
func (g *Digraph) NumNodes() int { return g.n }

// NumEdges returns the number of directed edges.
func (g *Digraph) NumEdges() int64 {
	if g.n == 0 {
		return 0
	}
	return g.offsets[g.n]
}

// OutDegree returns the out-degree of u.
func (g *Digraph) OutDegree(u int) int {
	return int(g.offsets[u+1] - g.offsets[u])
}

// OutNeighbors returns the sorted out-neighbor slice of u. The returned
// slice aliases internal storage and must not be modified.
func (g *Digraph) OutNeighbors(u int) []int32 {
	return g.adj[g.offsets[u]:g.offsets[u+1]]
}

// HasEdge reports whether the directed edge u→v exists, by binary search.
func (g *Digraph) HasEdge(u, v int) bool {
	row := g.OutNeighbors(u)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= int32(v) })
	return i < len(row) && row[i] == int32(v)
}

// InDegrees computes the in-degree of every node in one pass.
func (g *Digraph) InDegrees() []int {
	in := make([]int, g.n)
	for _, v := range g.adj {
		in[v]++
	}
	return in
}

// OutDegrees returns the out-degree of every node.
func (g *Digraph) OutDegrees() []int {
	out := make([]int, g.n)
	for u := 0; u < g.n; u++ {
		out[u] = g.OutDegree(u)
	}
	return out
}

// buildIn materializes the transpose CSR once. Rows of the transpose are
// filled in increasing source order, so they come out sorted.
func (g *Digraph) buildIn() {
	in := g.InDegrees()
	offsets := make([]int64, g.n+1)
	for u := 0; u < g.n; u++ {
		offsets[u+1] = offsets[u] + int64(in[u])
	}
	adj := make([]int32, g.NumEdges())
	cursor := make([]int64, g.n)
	copy(cursor, offsets[:g.n])
	for u := 0; u < g.n; u++ {
		for _, v := range g.OutNeighbors(u) {
			adj[cursor[v]] = int32(u)
			cursor[v]++
		}
	}
	g.inOff, g.inAdj = offsets, adj
}

// InCSR returns the transpose adjacency (offsets, in-neighbors) in CSR form:
// the in-neighbors of v are inAdj[inOff[v]:inOff[v+1]], sorted. The transpose
// is built on first use (O(m)) and cached; the returned slices alias internal
// storage and must not be modified. Safe for concurrent use.
func (g *Digraph) InCSR() ([]int64, []int32) {
	g.inOnce.Do(g.buildIn)
	return g.inOff, g.inAdj
}

// InNeighbors returns the sorted in-neighbor slice of v, building the cached
// transpose on first use. The returned slice aliases internal storage and
// must not be modified.
func (g *Digraph) InNeighbors(v int) []int32 {
	g.inOnce.Do(g.buildIn)
	return g.inAdj[g.inOff[v]:g.inOff[v+1]]
}

// Reverse returns the transpose graph (every edge u→v becomes v→u). The
// returned graph shares the cached transpose arrays (both graphs are
// immutable), so calling Reverse after InCSR — or vice versa — transposes
// only once.
func (g *Digraph) Reverse() *Digraph {
	offsets, adj := g.InCSR()
	return &Digraph{n: g.n, offsets: offsets, adj: adj}
}

// Density returns m / (n·(n-1)), the fraction of possible directed edges
// present. The paper reports 0.00148 for the verified network.
func (g *Digraph) Density() float64 {
	if g.n < 2 {
		return 0
	}
	return float64(g.NumEdges()) / (float64(g.n) * float64(g.n-1))
}

// InducedSubgraph returns the subgraph induced by keep (node ids in the
// original graph) plus the mapping orig[i] = original id of new node i.
// Duplicate ids in keep are collapsed.
func (g *Digraph) InducedSubgraph(keep []int) (*Digraph, []int, error) {
	remap := make(map[int32]int32, len(keep))
	orig := make([]int, 0, len(keep))
	for _, u := range keep {
		if u < 0 || u >= g.n {
			return nil, nil, fmt.Errorf("%w: %d", ErrNodeRange, u)
		}
		if _, ok := remap[int32(u)]; !ok {
			remap[int32(u)] = int32(len(orig))
			orig = append(orig, u)
		}
	}
	b := NewBuilder(len(orig))
	for newU, oldU := range orig {
		for _, v := range g.OutNeighbors(oldU) {
			if newV, ok := remap[v]; ok {
				b.AddEdge(newU, int(newV))
			}
		}
	}
	sub := b.Build()
	return sub, orig, nil
}

// Undirected returns the underlying undirected graph as a symmetric digraph:
// each pair {u,v} connected in either direction appears as both u→v and v→u
// exactly once. Self-loops are never present (Builder drops them).
func (g *Digraph) Undirected() *Digraph {
	b := NewBuilder(g.n)
	for u := 0; u < g.n; u++ {
		for _, v := range g.OutNeighbors(u) {
			b.AddEdge(u, int(v))
			b.AddEdge(int(v), u)
		}
	}
	return b.Build()
}

// Edges calls fn for every directed edge. Iteration stops if fn returns
// false.
func (g *Digraph) Edges(fn func(u, v int) bool) {
	for u := 0; u < g.n; u++ {
		for _, v := range g.OutNeighbors(u) {
			if !fn(u, int(v)) {
				return
			}
		}
	}
}

// Builder accumulates edges and produces an immutable Digraph. It drops
// self-loops and duplicate edges. Builders are not safe for concurrent use;
// generators shard work and merge.
type Builder struct {
	n    int
	rows [][]int32
}

// NewBuilder returns a builder for a graph with n nodes (ids 0..n-1).
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: n, rows: make([][]int32, n)}
}

// NumNodes returns the node count the builder was created with.
func (b *Builder) NumNodes() int { return b.n }

// AddEdge records the directed edge u→v. Self-loops are silently ignored.
// It panics if either endpoint is out of range (generator bugs should fail
// loudly, not corrupt datasets).
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	b.rows[u] = append(b.rows[u], int32(v))
}

// HasEdgeSlow reports whether u→v has been added, by linear scan. Intended
// for generator-side duplicate avoidance on short rows; Build dedups anyway.
func (b *Builder) HasEdgeSlow(u, v int) bool {
	for _, w := range b.rows[u] {
		if w == int32(v) {
			return true
		}
	}
	return false
}

// OutDegree returns the current (pre-dedup) out-degree of u.
func (b *Builder) OutDegree(u int) int { return len(b.rows[u]) }

// Build sorts, dedups and freezes the graph. The builder can be reused after
// Build (it retains its rows), but usually is discarded.
func (b *Builder) Build() *Digraph {
	offsets := make([]int64, b.n+1)
	var total int64
	for u := 0; u < b.n; u++ {
		row := b.rows[u]
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		// In-place dedup.
		w := 0
		for i, v := range row {
			if i == 0 || v != row[i-1] {
				row[w] = v
				w++
			}
		}
		b.rows[u] = row[:w]
		total += int64(w)
		offsets[u+1] = total
	}
	adj := make([]int32, total)
	for u := 0; u < b.n; u++ {
		copy(adj[offsets[u]:offsets[u+1]], b.rows[u])
	}
	return &Digraph{n: b.n, offsets: offsets, adj: adj}
}

// FromEdges is a convenience constructor from an explicit edge list.
func FromEdges(n int, edges [][2]int) *Digraph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// NewFromCSR constructs a Digraph directly from CSR arrays. Rows must be
// sorted and free of duplicates/self-loops; this is validated and the arrays
// are used without copying on success. Intended for the binary codec in
// internal/store.
func NewFromCSR(n int, offsets []int64, adj []int32) (*Digraph, error) {
	if len(offsets) != n+1 {
		return nil, fmt.Errorf("graph: offsets length %d, want %d", len(offsets), n+1)
	}
	if offsets[0] != 0 || int64(len(adj)) != offsets[n] {
		return nil, errors.New("graph: inconsistent CSR offsets")
	}
	for u := 0; u < n; u++ {
		if offsets[u] > offsets[u+1] {
			return nil, errors.New("graph: decreasing CSR offsets")
		}
		row := adj[offsets[u]:offsets[u+1]]
		for i, v := range row {
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("%w: %d", ErrNodeRange, v)
			}
			if int(v) == u {
				return nil, fmt.Errorf("graph: self-loop at node %d", u)
			}
			if i > 0 && row[i-1] >= v {
				return nil, fmt.Errorf("graph: row %d not strictly sorted", u)
			}
		}
	}
	return &Digraph{n: n, offsets: offsets, adj: adj}, nil
}

// CSR exposes the raw arrays (offsets, adjacency) for serialization. The
// returned slices alias internal storage and must not be modified.
func (g *Digraph) CSR() ([]int64, []int32) { return g.offsets, g.adj }
