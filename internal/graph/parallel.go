package graph

import "elites/internal/parallel"

// metricChunk is the fixed shard width (in nodes) for parallel metric
// reductions. It is a constant — not a function of the worker count — so
// that per-chunk partial sums are always combined in the same order and
// floating-point results are bit-identical whatever GOMAXPROCS is.
const metricChunk = 2048

// chunkReduce shards [0, n) over the process-wide worker pool shared by
// every CPU-bound loop in the library (see internal/parallel), returning
// per-chunk results in chunk order for deterministic reduction.
func chunkReduce[T any](n int, fn func(lo, hi int) T) []T {
	return parallel.ChunkReduce(n, metricChunk, 0, fn)
}
