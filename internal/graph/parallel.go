package graph

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// metricChunk is the fixed shard width (in nodes) for parallel metric
// reductions. It is a constant — not a function of the worker count — so
// that per-chunk partial sums are always combined in the same order and
// floating-point results are bit-identical whatever GOMAXPROCS is.
const metricChunk = 2048

// metricTokens caps the total number of concurrently executing chunk
// workers process-wide. Several metric stages can run at once under the
// analysis pipeline; without the shared cap each would spawn GOMAXPROCS
// CPU-bound workers and oversubscribe the scheduler.
var metricTokens = make(chan struct{}, runtime.GOMAXPROCS(0))

// chunkReduce splits [0, n) into fixed-width chunks, evaluates fn on each
// chunk from a bounded worker pool, and returns the per-chunk results in
// chunk order. Chunks are claimed with an atomic counter, so scheduling is
// dynamic but the output layout — and therefore any ordered reduction over
// it — is deterministic.
func chunkReduce[T any](n int, fn func(lo, hi int) T) []T {
	if n <= 0 {
		return nil
	}
	chunks := (n + metricChunk - 1) / metricChunk
	out := make([]T, chunks)
	workers := runtime.GOMAXPROCS(0)
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		for c := 0; c < chunks; c++ {
			lo := c * metricChunk
			hi := min(lo+metricChunk, n)
			out[c] = fn(lo, hi)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			metricTokens <- struct{}{}
			defer func() { <-metricTokens }()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				lo := c * metricChunk
				hi := min(lo+metricChunk, n)
				out[c] = fn(lo, hi)
			}
		}()
	}
	wg.Wait()
	return out
}
