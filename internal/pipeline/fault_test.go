package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestPanicRecoveredAsStagePanicError asserts the containment contract: a
// panicking stage becomes a typed error with a captured stack, its
// dependents are skipped, independent stages still run, and the process
// (the test binary) survives.
func TestPanicRecoveredAsStagePanicError(t *testing.T) {
	ranC := false
	stages := []Stage{
		{Name: "a", Run: func() error { panic("boom") }},
		{Name: "b", Deps: []string{"a"}, Run: func() error { return nil }},
		{Name: "c", Run: func() error { ranC = true; return nil }},
	}
	timings, err := Run(stages, Options{Parallelism: 2})
	if err == nil {
		t.Fatal("no error")
	}
	var pe *StagePanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want StagePanicError", err)
	}
	if pe.Stage != "a" || pe.Value != "boom" {
		t.Fatalf("panic error = %+v", pe)
	}
	if !strings.Contains(string(pe.Stack), "fault_test.go") {
		t.Fatalf("stack does not point at the panic site:\n%s", pe.Stack)
	}
	if !errors.As(timings[0].Err, &pe) {
		t.Fatalf("timing err = %v, want StagePanicError", timings[0].Err)
	}
	if !timings[1].Skipped || !errors.Is(timings[1].Err, ErrDependencySkipped) {
		t.Fatalf("dependent not skipped: %+v", timings[1])
	}
	if !ranC || timings[2].Err != nil {
		t.Fatalf("independent stage affected: ran=%v err=%v", ranC, timings[2].Err)
	}
}

// TestPanicInDecodeFallsBackToRun asserts corruption containment one level
// deeper: a cache payload whose Decode panics is a miss, not a failure.
func TestPanicInDecodeFallsBackToRun(t *testing.T) {
	c := &faultMapCache{data: map[string][]byte{"k": []byte("payload")}}
	ran := false
	stages := []Stage{{
		Name: "a", CacheKey: "k",
		Run:    func() error { ran = true; return nil },
		Encode: func() ([]byte, error) { return []byte("fresh"), nil },
		Decode: func([]byte) error { panic("corrupt beyond belief") },
	}}
	timings, err := Run(stages, Options{Cache: c})
	if err != nil || !ran {
		t.Fatalf("err=%v ran=%v, want clean fallback run", err, ran)
	}
	if timings[0].CacheHit {
		t.Fatal("panicking decode counted as a hit")
	}
}

func TestRetryPolicyRetriesTransientErrors(t *testing.T) {
	attempts := 0
	stages := []Stage{{
		Name:  "flaky",
		Retry: RetryPolicy{MaxRetries: 3, Backoff: time.Millisecond},
		Run: func() error {
			attempts++
			if attempts < 3 {
				return fmt.Errorf("transient %d", attempts)
			}
			return nil
		},
	}}
	timings, err := Run(stages, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 3 || timings[0].Retries != 2 {
		t.Fatalf("attempts=%d retries=%d, want 3 attempts / 2 retries", attempts, timings[0].Retries)
	}
}

func TestRetryPolicyGivesUp(t *testing.T) {
	attempts := 0
	stages := []Stage{{
		Name:  "doomed",
		Retry: RetryPolicy{MaxRetries: 2, Backoff: time.Millisecond},
		Run:   func() error { attempts++; return errors.New("persistent") },
	}}
	timings, err := Run(stages, Options{})
	if err == nil || attempts != 3 {
		t.Fatalf("err=%v attempts=%d, want failure after 3 attempts", err, attempts)
	}
	if timings[0].Retries != 2 {
		t.Fatalf("retries = %d, want 2", timings[0].Retries)
	}
}

func TestRetryNeverRetriesPanics(t *testing.T) {
	attempts := 0
	stages := []Stage{{
		Name:  "panicky",
		Retry: RetryPolicy{MaxRetries: 5, Backoff: time.Millisecond},
		Run:   func() error { attempts++; panic("once is enough") },
	}}
	timings, err := Run(stages, Options{})
	var pe *StagePanicError
	if !errors.As(err, &pe) || attempts != 1 {
		t.Fatalf("err=%v attempts=%d, want one panicking attempt", err, attempts)
	}
	if timings[0].Retries != 0 {
		t.Fatalf("retries = %d, want 0", timings[0].Retries)
	}
}

func TestInterceptErrorFailsStage(t *testing.T) {
	sentinel := errors.New("injected")
	ran := false
	stages := []Stage{
		{Name: "a", Run: func() error { ran = true; return nil }},
		{Name: "b", Run: func() error { return nil }},
	}
	timings, err := Run(stages, Options{
		Intercept: func(_ context.Context, stage string) error {
			if stage == "a" {
				return sentinel
			}
			return nil
		},
	})
	if !errors.Is(err, sentinel) || ran {
		t.Fatalf("err=%v ran=%v, want interception before Run", err, ran)
	}
	if timings[1].Err != nil {
		t.Fatalf("uninjected stage failed: %v", timings[1].Err)
	}
}

// TestStageTimeout asserts the deadline policy at a stage's cancellation
// point: an Intercept that waits on the stage context observes the per-stage
// deadline, and the failure is typed ErrStageTimeout.
func TestStageTimeout(t *testing.T) {
	stages := []Stage{{
		Name:    "slow",
		Timeout: 10 * time.Millisecond,
		Run:     func() error { return nil },
	}}
	_, err := Run(stages, Options{
		Intercept: func(ctx context.Context, _ string) error {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(5 * time.Second):
				return nil
			}
		},
	})
	if !errors.Is(err, ErrStageTimeout) {
		t.Fatalf("err = %v, want ErrStageTimeout", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped DeadlineExceeded", err)
	}
}

// TestPanicUnderConcurrencyKeepsSchedulerAlive floods a wide graph with
// panicking stages and asserts the run terminates with every timing
// accounted for (no stranded workers, no deadlock).
func TestPanicUnderConcurrencyKeepsSchedulerAlive(t *testing.T) {
	var stages []Stage
	for i := 0; i < 24; i++ {
		name := fmt.Sprintf("s%d", i)
		if i%3 == 0 {
			stages = append(stages, Stage{Name: name, Run: func() error { panic(name) }})
		} else {
			stages = append(stages, Stage{Name: name, Run: func() error { return nil }})
		}
	}
	timings, err := Run(stages, Options{Parallelism: 8})
	if err == nil {
		t.Fatal("no error")
	}
	for i, tm := range timings {
		if tm.Skipped {
			t.Fatalf("stage %d skipped in a dependency-free graph", i)
		}
		if i%3 == 0 {
			var pe *StagePanicError
			if !errors.As(tm.Err, &pe) {
				t.Fatalf("stage %d: err = %v, want StagePanicError", i, tm.Err)
			}
		} else if tm.Err != nil {
			t.Fatalf("stage %d failed: %v", i, tm.Err)
		}
	}
}

// faultMapCache is the trivial Cacher used by the fault tests.
type faultMapCache struct{ data map[string][]byte }

func (m *faultMapCache) Get(key string) ([]byte, bool) { d, ok := m.data[key]; return d, ok }
func (m *faultMapCache) Put(key string, data []byte)   { m.data[key] = data }
