package pipeline

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// orderRecorder appends stage names under a lock so tests can assert
// scheduling constraints.
type orderRecorder struct {
	mu    sync.Mutex
	order []string
}

func (r *orderRecorder) stage(name string, deps ...string) Stage {
	return Stage{Name: name, Deps: deps, Run: func() error {
		r.mu.Lock()
		r.order = append(r.order, name)
		r.mu.Unlock()
		return nil
	}}
}

func (r *orderRecorder) index(name string) int {
	for i, n := range r.order {
		if n == name {
			return i
		}
	}
	return -1
}

func TestDependencyOrdering(t *testing.T) {
	for _, par := range []int{1, 4} {
		rec := &orderRecorder{}
		stages := []Stage{
			rec.stage("fan1"),
			rec.stage("root"),
			rec.stage("mid", "root"),
			rec.stage("leaf", "mid", "fan1"),
			rec.stage("fan2", "root"),
		}
		if _, err := Run(stages, Options{Parallelism: par}); err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if len(rec.order) != len(stages) {
			t.Fatalf("par=%d: ran %d stages, want %d", par, len(rec.order), len(stages))
		}
		for _, pair := range [][2]string{{"root", "mid"}, {"mid", "leaf"}, {"fan1", "leaf"}, {"root", "fan2"}} {
			if rec.index(pair[0]) > rec.index(pair[1]) {
				t.Errorf("par=%d: %q ran after dependent %q (order %v)", par, pair[0], pair[1], rec.order)
			}
		}
	}
}

func TestFailurePropagation(t *testing.T) {
	boom := errors.New("boom")
	var ranLeaf, ranSibling atomic.Bool
	stages := []Stage{
		{Name: "bad", Run: func() error { return boom }},
		{Name: "leaf", Deps: []string{"bad"}, Run: func() error { ranLeaf.Store(true); return nil }},
		{Name: "grandleaf", Deps: []string{"leaf"}, Run: func() error { ranLeaf.Store(true); return nil }},
		{Name: "sibling", Run: func() error { ranSibling.Store(true); return nil }},
	}
	timings, err := Run(stages, Options{Parallelism: 2})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if ranLeaf.Load() {
		t.Fatal("dependent of failed stage must not run")
	}
	if !ranSibling.Load() {
		t.Fatal("independent sibling must still run")
	}
	byName := map[string]Timing{}
	for _, tm := range timings {
		byName[tm.Name] = tm
	}
	if tm := byName["bad"]; tm.Skipped || !errors.Is(tm.Err, boom) {
		t.Fatalf("bad timing = %+v", tm)
	}
	for _, name := range []string{"leaf", "grandleaf"} {
		tm := byName[name]
		if !tm.Skipped || !errors.Is(tm.Err, ErrDependencySkipped) {
			t.Fatalf("%s timing = %+v, want skipped with ErrDependencySkipped", name, tm)
		}
	}
	if tm := byName["sibling"]; tm.Skipped || tm.Err != nil {
		t.Fatalf("sibling timing = %+v", tm)
	}
	// The joined error mentions only the root cause, not the cascade.
	if got := err.Error(); strings.Contains(got, "leaf") {
		t.Fatalf("error should not include skipped dependents: %v", got)
	}
}

func TestStageSubsetting(t *testing.T) {
	rec := &orderRecorder{}
	stages := []Stage{
		rec.stage("root"),
		rec.stage("mid", "root"),
		rec.stage("leaf", "mid"),
		rec.stage("other"),
	}
	timings, err := Run(stages, Options{Only: []string{"mid"}, Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(rec.order, ","); got != "root,mid" {
		t.Fatalf("ran %q, want root then mid only", got)
	}
	byName := map[string]Timing{}
	for _, tm := range timings {
		byName[tm.Name] = tm
	}
	for _, name := range []string{"leaf", "other"} {
		if tm := byName[name]; !tm.Skipped || tm.Err != nil {
			t.Fatalf("%s timing = %+v, want cleanly skipped", name, tm)
		}
	}
	if _, err := Run(stages, Options{Only: []string{"nope"}}); err == nil {
		t.Fatal("unknown subset name must error")
	}
}

func TestParallelismBound(t *testing.T) {
	var cur, peak atomic.Int64
	block := make(chan struct{})
	var stages []Stage
	for i := 0; i < 8; i++ {
		stages = append(stages, Stage{Name: string(rune('a' + i)), Run: func() error {
			if c := cur.Add(1); c > peak.Load() {
				peak.Store(c)
			}
			<-block
			cur.Add(-1)
			return nil
		}})
	}
	done := make(chan struct{})
	var timings []Timing
	go func() {
		timings, _ = Run(stages, Options{Parallelism: 2})
		close(done)
	}()
	// Let the pool saturate, then release everyone.
	for cur.Load() < 2 {
	}
	close(block)
	<-done
	if got := peak.Load(); got > 2 {
		t.Fatalf("observed %d concurrent stages, want <= 2", got)
	}
	for _, tm := range timings {
		if tm.Skipped {
			t.Fatalf("stage %s skipped", tm.Name)
		}
	}
}

func TestGraphValidation(t *testing.T) {
	if err := Validate([]Stage{{Name: "a", Deps: []string{"missing"}}}); err == nil {
		t.Fatal("unknown dep must fail validation")
	}
	if err := Validate([]Stage{{Name: "a"}, {Name: "a"}}); err == nil {
		t.Fatal("duplicate name must fail validation")
	}
	if err := Validate([]Stage{{Name: "a", Deps: []string{"b"}}, {Name: "b", Deps: []string{"a"}}}); err == nil {
		t.Fatal("cycle must fail validation")
	}
	if _, err := Run([]Stage{{Name: "a", Deps: []string{"a"}}}, Options{}); err == nil {
		t.Fatal("self-cycle must fail Run")
	}
	if err := Validate([]Stage{{Name: "a"}, {Name: "b", Deps: []string{"a"}}}); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	if timings, err := Run(nil, Options{}); err != nil || len(timings) != 0 {
		t.Fatalf("empty graph: %v %v", timings, err)
	}
	ran := false
	timings, err := Run([]Stage{{Name: "only", Run: func() error { ran = true; return nil }}}, Options{Parallelism: 16})
	if err != nil || !ran {
		t.Fatalf("single stage: ran=%v err=%v", ran, err)
	}
	if timings[0].Skipped || timings[0].Err != nil {
		t.Fatalf("timing = %+v", timings[0])
	}
}

// mapCache is an in-memory Cacher for scheduler tests.
type mapCache struct {
	mu   sync.Mutex
	m    map[string][]byte
	gets int
	puts int
}

func newMapCache() *mapCache { return &mapCache{m: map[string][]byte{}} }

func (c *mapCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gets++
	data, ok := c.m[key]
	return data, ok
}

func (c *mapCache) Put(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
	c.m[key] = data
}

func TestCacheHitSkipsRun(t *testing.T) {
	cache := newMapCache()
	var state string
	mk := func() []Stage {
		var ran atomic.Int32
		return []Stage{{
			Name: "work",
			Run: func() error {
				ran.Add(1)
				state = "computed"
				return nil
			},
			CacheKey: "work-v1-k",
			Encode:   func() ([]byte, error) { return []byte(state), nil },
			Decode: func(b []byte) error {
				state = string(b)
				return nil
			},
		}}
	}

	// Cold: runs, stores.
	state = ""
	timings, err := Run(mk(), Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if timings[0].CacheHit {
		t.Fatal("cold run reported a cache hit")
	}
	if cache.puts != 1 {
		t.Fatalf("puts = %d, want 1", cache.puts)
	}

	// Warm: hydrates without running.
	state = ""
	timings, err = Run(mk(), Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !timings[0].CacheHit {
		t.Fatal("warm run missed")
	}
	if state != "computed" {
		t.Fatalf("decode did not hydrate state: %q", state)
	}
	if cache.puts != 1 {
		t.Fatalf("warm run stored again: puts = %d", cache.puts)
	}
}

func TestCacheDecodeFailureFallsBackToRun(t *testing.T) {
	cache := newMapCache()
	cache.m["k"] = []byte("garbage")
	ran := false
	stages := []Stage{{
		Name:     "s",
		Run:      func() error { ran = true; return nil },
		CacheKey: "k",
		Encode:   func() ([]byte, error) { return []byte("good"), nil },
		Decode:   func(b []byte) error { return errors.New("corrupt") },
	}}
	timings, err := Run(stages, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if timings[0].CacheHit || !ran {
		t.Fatalf("decode failure should fall back to Run (hit=%v ran=%v)", timings[0].CacheHit, ran)
	}
	if string(cache.m["k"]) != "good" {
		t.Fatal("fallback run should overwrite the bad entry")
	}
}

func TestCacheEncodeFailureStillSucceeds(t *testing.T) {
	cache := newMapCache()
	stages := []Stage{{
		Name:     "s",
		Run:      func() error { return nil },
		CacheKey: "k",
		Encode:   func() ([]byte, error) { return nil, errors.New("cannot encode") },
		Decode:   func(b []byte) error { return nil },
	}}
	timings, err := Run(stages, Options{Cache: cache})
	if err != nil || timings[0].Err != nil {
		t.Fatalf("encode failure must not fail the stage: %v %v", err, timings[0].Err)
	}
	if cache.puts != 0 {
		t.Fatal("failed encode should not store")
	}
}

func TestCacheIgnoredWithoutHooksOrCacher(t *testing.T) {
	// No Cacher configured: hooks are inert.
	calls := 0
	stages := []Stage{{
		Name:     "s",
		Run:      func() error { calls++; return nil },
		CacheKey: "k",
		Encode:   func() ([]byte, error) { return nil, nil },
		Decode:   func(b []byte) error { return nil },
	}}
	if _, err := Run(stages, Options{}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatal("stage did not run without a cacher")
	}

	// Cacher configured but stage has no key: never consulted.
	cache := newMapCache()
	plain := []Stage{{Name: "p", Run: func() error { return nil }}}
	if _, err := Run(plain, Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if cache.gets != 0 || cache.puts != 0 {
		t.Fatalf("uncached stage touched the cache: gets=%d puts=%d", cache.gets, cache.puts)
	}
}

func TestCacheFailedStageNotStored(t *testing.T) {
	cache := newMapCache()
	boom := errors.New("boom")
	stages := []Stage{{
		Name:     "s",
		Run:      func() error { return boom },
		CacheKey: "k",
		Encode:   func() ([]byte, error) { return []byte("x"), nil },
		Decode:   func(b []byte) error { return nil },
	}}
	if _, err := Run(stages, Options{Cache: cache}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if cache.puts != 0 {
		t.Fatal("failed stage must not be cached")
	}
}
