package pipeline

import (
	"context"
	"errors"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// orderRecorder appends stage names under a lock so tests can assert
// scheduling constraints.
type orderRecorder struct {
	mu    sync.Mutex
	order []string
}

func (r *orderRecorder) stage(name string, deps ...string) Stage {
	return Stage{Name: name, Deps: deps, Run: func() error {
		r.mu.Lock()
		r.order = append(r.order, name)
		r.mu.Unlock()
		return nil
	}}
}

func (r *orderRecorder) index(name string) int {
	for i, n := range r.order {
		if n == name {
			return i
		}
	}
	return -1
}

func TestDependencyOrdering(t *testing.T) {
	for _, par := range []int{1, 4} {
		rec := &orderRecorder{}
		stages := []Stage{
			rec.stage("fan1"),
			rec.stage("root"),
			rec.stage("mid", "root"),
			rec.stage("leaf", "mid", "fan1"),
			rec.stage("fan2", "root"),
		}
		if _, err := Run(stages, Options{Parallelism: par}); err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		if len(rec.order) != len(stages) {
			t.Fatalf("par=%d: ran %d stages, want %d", par, len(rec.order), len(stages))
		}
		for _, pair := range [][2]string{{"root", "mid"}, {"mid", "leaf"}, {"fan1", "leaf"}, {"root", "fan2"}} {
			if rec.index(pair[0]) > rec.index(pair[1]) {
				t.Errorf("par=%d: %q ran after dependent %q (order %v)", par, pair[0], pair[1], rec.order)
			}
		}
	}
}

func TestFailurePropagation(t *testing.T) {
	boom := errors.New("boom")
	var ranLeaf, ranSibling atomic.Bool
	stages := []Stage{
		{Name: "bad", Run: func() error { return boom }},
		{Name: "leaf", Deps: []string{"bad"}, Run: func() error { ranLeaf.Store(true); return nil }},
		{Name: "grandleaf", Deps: []string{"leaf"}, Run: func() error { ranLeaf.Store(true); return nil }},
		{Name: "sibling", Run: func() error { ranSibling.Store(true); return nil }},
	}
	timings, err := Run(stages, Options{Parallelism: 2})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if ranLeaf.Load() {
		t.Fatal("dependent of failed stage must not run")
	}
	if !ranSibling.Load() {
		t.Fatal("independent sibling must still run")
	}
	byName := map[string]Timing{}
	for _, tm := range timings {
		byName[tm.Name] = tm
	}
	if tm := byName["bad"]; tm.Skipped || !errors.Is(tm.Err, boom) {
		t.Fatalf("bad timing = %+v", tm)
	}
	for _, name := range []string{"leaf", "grandleaf"} {
		tm := byName[name]
		if !tm.Skipped || !errors.Is(tm.Err, ErrDependencySkipped) {
			t.Fatalf("%s timing = %+v, want skipped with ErrDependencySkipped", name, tm)
		}
	}
	if tm := byName["sibling"]; tm.Skipped || tm.Err != nil {
		t.Fatalf("sibling timing = %+v", tm)
	}
	// The joined error mentions only the root cause, not the cascade.
	if got := err.Error(); strings.Contains(got, "leaf") {
		t.Fatalf("error should not include skipped dependents: %v", got)
	}
}

func TestStageSubsetting(t *testing.T) {
	rec := &orderRecorder{}
	stages := []Stage{
		rec.stage("root"),
		rec.stage("mid", "root"),
		rec.stage("leaf", "mid"),
		rec.stage("other"),
	}
	timings, err := Run(stages, Options{Only: []string{"mid"}, Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(rec.order, ","); got != "root,mid" {
		t.Fatalf("ran %q, want root then mid only", got)
	}
	byName := map[string]Timing{}
	for _, tm := range timings {
		byName[tm.Name] = tm
	}
	for _, name := range []string{"leaf", "other"} {
		if tm := byName[name]; !tm.Skipped || tm.Err != nil {
			t.Fatalf("%s timing = %+v, want cleanly skipped", name, tm)
		}
	}
	if _, err := Run(stages, Options{Only: []string{"nope"}}); err == nil {
		t.Fatal("unknown subset name must error")
	}
}

func TestParallelismBound(t *testing.T) {
	var cur, peak atomic.Int64
	block := make(chan struct{})
	var stages []Stage
	for i := 0; i < 8; i++ {
		stages = append(stages, Stage{Name: string(rune('a' + i)), Run: func() error {
			if c := cur.Add(1); c > peak.Load() {
				peak.Store(c)
			}
			<-block
			cur.Add(-1)
			return nil
		}})
	}
	done := make(chan struct{})
	var timings []Timing
	go func() {
		timings, _ = Run(stages, Options{Parallelism: 2})
		close(done)
	}()
	// Let the pool saturate, then release everyone.
	for cur.Load() < 2 {
	}
	close(block)
	<-done
	if got := peak.Load(); got > 2 {
		t.Fatalf("observed %d concurrent stages, want <= 2", got)
	}
	for _, tm := range timings {
		if tm.Skipped {
			t.Fatalf("stage %s skipped", tm.Name)
		}
	}
}

func TestGraphValidation(t *testing.T) {
	if err := Validate([]Stage{{Name: "a", Deps: []string{"missing"}}}); err == nil {
		t.Fatal("unknown dep must fail validation")
	}
	if err := Validate([]Stage{{Name: "a"}, {Name: "a"}}); err == nil {
		t.Fatal("duplicate name must fail validation")
	}
	if err := Validate([]Stage{{Name: "a", Deps: []string{"b"}}, {Name: "b", Deps: []string{"a"}}}); err == nil {
		t.Fatal("cycle must fail validation")
	}
	if _, err := Run([]Stage{{Name: "a", Deps: []string{"a"}}}, Options{}); err == nil {
		t.Fatal("self-cycle must fail Run")
	}
	if err := Validate([]Stage{{Name: "a"}, {Name: "b", Deps: []string{"a"}}}); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	if timings, err := Run(nil, Options{}); err != nil || len(timings) != 0 {
		t.Fatalf("empty graph: %v %v", timings, err)
	}
	ran := false
	timings, err := Run([]Stage{{Name: "only", Run: func() error { ran = true; return nil }}}, Options{Parallelism: 16})
	if err != nil || !ran {
		t.Fatalf("single stage: ran=%v err=%v", ran, err)
	}
	if timings[0].Skipped || timings[0].Err != nil {
		t.Fatalf("timing = %+v", timings[0])
	}
}

// mapCache is an in-memory Cacher for scheduler tests.
type mapCache struct {
	mu   sync.Mutex
	m    map[string][]byte
	gets int
	puts int
}

func newMapCache() *mapCache { return &mapCache{m: map[string][]byte{}} }

func (c *mapCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gets++
	data, ok := c.m[key]
	return data, ok
}

func (c *mapCache) Put(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
	c.m[key] = data
}

func TestCacheHitSkipsRun(t *testing.T) {
	cache := newMapCache()
	var state string
	mk := func() []Stage {
		var ran atomic.Int32
		return []Stage{{
			Name: "work",
			Run: func() error {
				ran.Add(1)
				state = "computed"
				return nil
			},
			CacheKey: "work-v1-k",
			Encode:   func() ([]byte, error) { return []byte(state), nil },
			Decode: func(b []byte) error {
				state = string(b)
				return nil
			},
		}}
	}

	// Cold: runs, stores.
	state = ""
	timings, err := Run(mk(), Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if timings[0].CacheHit {
		t.Fatal("cold run reported a cache hit")
	}
	if cache.puts != 1 {
		t.Fatalf("puts = %d, want 1", cache.puts)
	}

	// Warm: hydrates without running.
	state = ""
	timings, err = Run(mk(), Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !timings[0].CacheHit {
		t.Fatal("warm run missed")
	}
	if state != "computed" {
		t.Fatalf("decode did not hydrate state: %q", state)
	}
	if cache.puts != 1 {
		t.Fatalf("warm run stored again: puts = %d", cache.puts)
	}
}

func TestCacheDecodeFailureFallsBackToRun(t *testing.T) {
	cache := newMapCache()
	cache.m["k"] = []byte("garbage")
	ran := false
	stages := []Stage{{
		Name:     "s",
		Run:      func() error { ran = true; return nil },
		CacheKey: "k",
		Encode:   func() ([]byte, error) { return []byte("good"), nil },
		Decode:   func(b []byte) error { return errors.New("corrupt") },
	}}
	timings, err := Run(stages, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if timings[0].CacheHit || !ran {
		t.Fatalf("decode failure should fall back to Run (hit=%v ran=%v)", timings[0].CacheHit, ran)
	}
	if string(cache.m["k"]) != "good" {
		t.Fatal("fallback run should overwrite the bad entry")
	}
}

func TestCacheEncodeFailureStillSucceeds(t *testing.T) {
	cache := newMapCache()
	stages := []Stage{{
		Name:     "s",
		Run:      func() error { return nil },
		CacheKey: "k",
		Encode:   func() ([]byte, error) { return nil, errors.New("cannot encode") },
		Decode:   func(b []byte) error { return nil },
	}}
	timings, err := Run(stages, Options{Cache: cache})
	if err != nil || timings[0].Err != nil {
		t.Fatalf("encode failure must not fail the stage: %v %v", err, timings[0].Err)
	}
	if cache.puts != 0 {
		t.Fatal("failed encode should not store")
	}
}

func TestCacheIgnoredWithoutHooksOrCacher(t *testing.T) {
	// No Cacher configured: hooks are inert.
	calls := 0
	stages := []Stage{{
		Name:     "s",
		Run:      func() error { calls++; return nil },
		CacheKey: "k",
		Encode:   func() ([]byte, error) { return nil, nil },
		Decode:   func(b []byte) error { return nil },
	}}
	if _, err := Run(stages, Options{}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatal("stage did not run without a cacher")
	}

	// Cacher configured but stage has no key: never consulted.
	cache := newMapCache()
	plain := []Stage{{Name: "p", Run: func() error { return nil }}}
	if _, err := Run(plain, Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if cache.gets != 0 || cache.puts != 0 {
		t.Fatalf("uncached stage touched the cache: gets=%d puts=%d", cache.gets, cache.puts)
	}
}

func TestCacheFailedStageNotStored(t *testing.T) {
	cache := newMapCache()
	boom := errors.New("boom")
	stages := []Stage{{
		Name:     "s",
		Run:      func() error { return boom },
		CacheKey: "k",
		Encode:   func() ([]byte, error) { return []byte("x"), nil },
		Decode:   func(b []byte) error { return nil },
	}}
	if _, err := Run(stages, Options{Cache: cache}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if cache.puts != 0 {
		t.Fatal("failed stage must not be cached")
	}
}

// TestCancellationStopsScheduling cancels the context from inside the first
// stage of a chain: the running stage completes (and keeps its result), but
// no dependent starts, every unstarted stage is marked with ErrCanceled, and
// the run error matches context.Canceled exactly once.
func TestCancellationStopsScheduling(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int32
	stages := []Stage{
		{Name: "a", Run: func() error {
			atomic.AddInt32(&ran, 1)
			cancel()
			return nil
		}},
		{Name: "b", Deps: []string{"a"}, Run: func() error {
			atomic.AddInt32(&ran, 1)
			return nil
		}},
		{Name: "c", Deps: []string{"b"}, Run: func() error {
			atomic.AddInt32(&ran, 1)
			return nil
		}},
	}
	timings, err := RunContext(ctx, stages, Options{Parallelism: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if got := atomic.LoadInt32(&ran); got != 1 {
		t.Fatalf("ran %d stages, want 1 (only the cancelling stage)", got)
	}
	if timings[0].Skipped || timings[0].Err != nil {
		t.Fatalf("stage a should have completed: %+v", timings[0])
	}
	for _, i := range []int{1, 2} {
		if !timings[i].Skipped {
			t.Fatalf("stage %s should be skipped", timings[i].Name)
		}
		// b is cancellation-skipped; c cascades as either a dependency skip
		// or a cancellation skip depending on which the scheduler saw first.
		if !errors.Is(timings[i].Err, ErrCanceled) && !errors.Is(timings[i].Err, ErrDependencySkipped) {
			t.Fatalf("stage %s err = %v", timings[i].Name, timings[i].Err)
		}
	}
	// The single joined ctx error must not be repeated per stage.
	if n := strings.Count(err.Error(), context.Canceled.Error()); n < 1 {
		t.Fatalf("err %q should mention the context error", err)
	}
}

// TestPreCancelledContextRunsNothing: a context cancelled before RunContext
// is called must not execute any stage.
func TestPreCancelledContextRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int32
	stages := []Stage{
		{Name: "a", Run: func() error { atomic.AddInt32(&ran, 1); return nil }},
		{Name: "b", Run: func() error { atomic.AddInt32(&ran, 1); return nil }},
	}
	timings, err := RunContext(ctx, stages, Options{Parallelism: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if atomic.LoadInt32(&ran) != 0 {
		t.Fatal("no stage should run under a pre-cancelled context")
	}
	for _, tm := range timings {
		if !tm.Skipped || !errors.Is(tm.Err, ErrCanceled) {
			t.Fatalf("stage %s: %+v", tm.Name, tm)
		}
	}
}

// TestObserverSeesEveryExecutedStage: Observe fires once per executed stage
// (cache hits included), never for deselected or dependency-skipped ones.
func TestObserverSeesEveryExecutedStage(t *testing.T) {
	cache := newMapCache()
	cache.Put("hit", []byte("x"))
	boom := errors.New("boom")
	stages := []Stage{
		{Name: "ok", Run: func() error { return nil }},
		{Name: "cached", Run: func() error { t.Error("cached stage must not run"); return nil },
			CacheKey: "hit",
			Encode:   func() ([]byte, error) { return nil, nil },
			Decode:   func([]byte) error { return nil }},
		{Name: "fail", Run: func() error { return boom }},
		{Name: "skipped", Deps: []string{"fail"}, Run: func() error { return nil }},
	}
	var mu sync.Mutex
	seen := map[string]Timing{}
	_, err := Run(stages, Options{Cache: cache, Observe: func(tm Timing) {
		mu.Lock()
		seen[tm.Name] = tm
		mu.Unlock()
	}})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if len(seen) != 3 {
		t.Fatalf("observed %v, want ok/cached/fail", seen)
	}
	if !seen["cached"].CacheHit {
		t.Fatal("cached stage should report CacheHit to the observer")
	}
	if seen["fail"].Err == nil {
		t.Fatal("failed stage should reach the observer with its error")
	}
	if _, ok := seen["skipped"]; ok {
		t.Fatal("dependency-skipped stage must not reach the observer")
	}
}

// TestStagePprofLabels: while a stage executes, its goroutine (and any
// goroutine it spawns) must carry the pprof label stage=<name>, so CPU
// profiles of a battery run can be broken down per stage with
// `go tool pprof -tagshow stage`. The goroutine profile is what the
// profiler reads, so the assertion goes through it.
func TestStagePprofLabels(t *testing.T) {
	release := make(chan struct{})
	var running sync.WaitGroup
	running.Add(2)
	block := func() error {
		done := make(chan struct{})
		go func() { // labels must propagate to spawned goroutines
			defer close(done)
			running.Done()
			<-release
		}()
		<-done
		return nil
	}
	stages := []Stage{
		{Name: "alpha", Run: block},
		{Name: "beta", Run: block},
	}
	var runErr error
	var finished sync.WaitGroup
	finished.Add(1)
	go func() {
		defer finished.Done()
		_, runErr = Run(stages, Options{Parallelism: 2})
	}()
	running.Wait() // both stages are now blocked inside Run
	var buf strings.Builder
	if err := pprof.Lookup("goroutine").WriteTo(&buf, 1); err != nil {
		t.Fatal(err)
	}
	close(release)
	finished.Wait()
	if runErr != nil {
		t.Fatal(runErr)
	}
	for _, want := range []string{`"stage":"alpha"`, `"stage":"beta"`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("goroutine profile lacks label %s:\n%s", want, buf.String())
		}
	}
}
