// Package pipeline executes a declarative stage graph on a bounded worker
// pool. A Stage is a named unit of work with explicit dependencies; Run
// schedules every stage whose dependencies have completed, so independent
// analyses proceed concurrently while ordered ones wait. The scheduler
// records per-stage wall clock, propagates failures to dependents (they are
// skipped, not run against missing inputs), and supports running a subset of
// the graph: requested stages are closed over their transitive dependencies.
//
// The package is deliberately value-free: stages communicate through
// whatever state their closures capture. Callers that need deterministic
// output under concurrency must make each stage's work independent of
// scheduling order — the core characterizer does this by deriving an
// independent RNG stream per stage (mathx.RNG.Derive).
//
// Stages may additionally opt into a result cache (Stage.CacheKey with
// Encode/Decode hooks, served by Options.Cache): on a hit the scheduler
// hydrates the stage's outputs instead of running it, which is how warm
// re-runs of the characterization battery skip the expensive analyses. See
// internal/cache for the content-addressed key discipline.
//
// RunContext accepts a context and stops scheduling at stage granularity
// when it is cancelled: stages already executing run to completion (their
// closures have no cancellation points), but no further stage starts, which
// is what lets a serving layer abandon a battery the client stopped waiting
// for without burning every remaining worker-hour.
//
// Failure containment: a panic inside a stage (its Run, Encode, Decode or
// the Intercept hook) is recovered into a typed *StagePanicError carrying
// the captured stack — the stage fails, its dependents are skipped, and the
// process survives. Stages may additionally declare a RetryPolicy (bounded
// re-runs with deterministic exponential backoff after transient errors;
// panics and cancellations are never retried) and a Timeout (a per-stage
// deadline enforced at the stage's cancellation points).
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sync"
	"time"
)

// Stage is one named node of the graph. Run is invoked at most once, after
// every stage named in Deps has finished successfully.
//
// A stage that sets CacheKey (with Encode and Decode) opts into the result
// cache: when Options.Cache holds the key, the scheduler calls Decode to
// hydrate the stage's outputs instead of Run; after a successful Run it
// calls Encode and stores the payload. The key must be content-addressed —
// a pure function of everything that changes the stage's output — because
// the scheduler never invalidates, it only looks up.
type Stage struct {
	Name string
	Deps []string
	Run  func() error
	// CacheKey enables result caching for this stage when non-empty and
	// Options.Cache is set. Encode and Decode must both be non-nil then.
	CacheKey string
	// Encode serializes the stage's outputs after a successful Run. An
	// error skips the store (the run's results still stand).
	Encode func() ([]byte, error)
	// Decode hydrates the stage's outputs from a cached payload. An error
	// is treated as a miss and the stage runs normally.
	Decode func([]byte) error
	// Retry, when MaxRetries > 0, re-runs the stage after a failed attempt.
	// Panics and cancellations are never retried — only plain errors, which
	// for deterministic stages are transient by construction (an injected
	// fault, a flaky cache disk), so a re-run is always safe.
	Retry RetryPolicy
	// Timeout, when > 0, bounds the stage's wall clock with a derived
	// deadline context. Stages are only preemptible at their cancellation
	// points (the Intercept hook and anything the stage itself selects on),
	// so a compute-bound Run past its deadline still finishes — the
	// deadline is enforced, not the preemption.
	Timeout time.Duration
}

// RetryPolicy bounds how a failing stage is retried: up to MaxRetries
// re-runs, sleeping Backoff, 2·Backoff, 4·Backoff, ... between attempts
// (deterministic — no jitter, so timed tests and chaos suites replay
// exactly).
type RetryPolicy struct {
	MaxRetries int
	Backoff    time.Duration
}

// StagePanicError is the typed error a recovered stage panic converts to:
// the stage name, the panic value and the stack captured at recovery. The
// scheduler treats it like any stage failure (dependents are skipped), so a
// panicking stage can never take down the process hosting the pipeline.
type StagePanicError struct {
	Stage string
	Value any
	Stack []byte
}

// Error renders the panic value; the stack is carried separately.
func (e *StagePanicError) Error() string {
	return fmt.Sprintf("pipeline: stage %q panicked: %v", e.Stage, e.Value)
}

// ErrStageTimeout wraps the error recorded for a stage that exceeded its
// declared Timeout.
var ErrStageTimeout = errors.New("pipeline: stage deadline exceeded")

// Timing reports how one stage fared: wall-clock duration for executed
// stages, Skipped for stages that never ran (deselected, or a dependency
// failed), Err for failures (including dependency-failure skips), and
// CacheHit for stages hydrated from the result cache instead of executed.
type Timing struct {
	Name     string
	Duration time.Duration
	Err      error
	Skipped  bool
	CacheHit bool
	// Retries counts re-run attempts beyond the first (0 for stages that
	// succeeded or failed on their only attempt).
	Retries int
	// Start is when the stage began executing (zero for stages that never
	// ran); with Duration it places the stage on a trace timeline.
	Start time.Time
}

// Cacher is the result-cache surface the scheduler consumes; implemented by
// internal/cache.Cache. Get reports a miss (never an error) for unknown or
// unreadable keys; Put must tolerate concurrent writers of the same key.
type Cacher interface {
	Get(key string) ([]byte, bool)
	Put(key string, data []byte)
}

// Options tunes a Run.
type Options struct {
	// Parallelism bounds concurrently executing stages
	// (<= 0 means GOMAXPROCS).
	Parallelism int
	// Only, when non-empty, restricts execution to the named stages plus
	// their transitive dependencies. Unknown names are an error.
	Only []string
	// Cache, when non-nil, serves stages that declare a CacheKey.
	Cache Cacher
	// Observe, when non-nil, is called once per executed stage as it
	// finishes (cache hits included; deselected, dependency-skipped and
	// cancellation-skipped stages never reach it). Concurrent stages may
	// invoke it concurrently; it must not block for long — the scheduler's
	// workers call it inline. Serving layers use it for live progress.
	Observe func(Timing)
	// Intercept, when non-nil, runs before every stage attempt (cache
	// lookup included) with the stage's context and name. A returned error
	// fails the attempt; a panic is contained like any stage panic. Fault
	// injectors hook here, which keeps the scheduler itself free of any
	// testing seams.
	Intercept func(ctx context.Context, stage string) error
}

// ErrDependencySkipped wraps the error recorded for a stage that was skipped
// because one of its (possibly transitive) dependencies failed.
var ErrDependencySkipped = errors.New("pipeline: dependency failed")

// ErrCanceled wraps the error recorded for a stage that never started
// because the run's context was cancelled. RunContext's returned error also
// matches the context's own error (context.Canceled / DeadlineExceeded).
var ErrCanceled = errors.New("pipeline: run cancelled")

// Validate checks the graph for duplicate names, unknown dependencies and
// cycles without running anything.
func Validate(stages []Stage) error {
	_, err := indexStages(stages)
	if err != nil {
		return err
	}
	return checkAcyclic(stages)
}

func indexStages(stages []Stage) (map[string]int, error) {
	idx := make(map[string]int, len(stages))
	for i, s := range stages {
		if s.Name == "" {
			return nil, fmt.Errorf("pipeline: stage %d has no name", i)
		}
		if _, dup := idx[s.Name]; dup {
			return nil, fmt.Errorf("pipeline: duplicate stage %q", s.Name)
		}
		idx[s.Name] = i
	}
	for _, s := range stages {
		for _, d := range s.Deps {
			if _, ok := idx[d]; !ok {
				return nil, fmt.Errorf("pipeline: stage %q depends on unknown stage %q", s.Name, d)
			}
		}
	}
	return idx, nil
}

func checkAcyclic(stages []Stage) error {
	idx, err := indexStages(stages)
	if err != nil {
		return err
	}
	const (
		unvisited = 0
		onStack   = 1
		done      = 2
	)
	state := make([]int, len(stages))
	var visit func(i int) error
	visit = func(i int) error {
		switch state[i] {
		case onStack:
			return fmt.Errorf("pipeline: cycle through stage %q", stages[i].Name)
		case done:
			return nil
		}
		state[i] = onStack
		for _, d := range stages[i].Deps {
			if err := visit(idx[d]); err != nil {
				return err
			}
		}
		state[i] = done
		return nil
	}
	for i := range stages {
		if err := visit(i); err != nil {
			return err
		}
	}
	return nil
}

// selectStages returns the boolean inclusion mask for opts.Only closed over
// transitive dependencies (all stages when Only is empty).
func selectStages(stages []Stage, idx map[string]int, only []string) ([]bool, error) {
	include := make([]bool, len(stages))
	if len(only) == 0 {
		for i := range include {
			include[i] = true
		}
		return include, nil
	}
	var mark func(i int)
	mark = func(i int) {
		if include[i] {
			return
		}
		include[i] = true
		for _, d := range stages[i].Deps {
			mark(idx[d])
		}
	}
	for _, name := range only {
		i, ok := idx[name]
		if !ok {
			return nil, fmt.Errorf("pipeline: unknown stage %q", name)
		}
		mark(i)
	}
	return include, nil
}

// Run executes the stage graph and returns one Timing per stage, in the
// order the stages were declared. The returned error joins every stage
// error (dependency skips are not doubled in). Run validates the graph
// first, so a malformed graph fails before any stage executes.
func Run(stages []Stage, opts Options) ([]Timing, error) {
	return RunContext(context.Background(), stages, opts)
}

// RunContext is Run with cancellation: once ctx is cancelled no further
// stage starts. Stages already executing finish normally and keep their
// results; stages that never started are marked Skipped with an error
// wrapping ErrCanceled, and the returned error wraps ctx.Err() exactly once
// (so errors.Is(err, context.Canceled) works) rather than once per
// unstarted stage.
func RunContext(ctx context.Context, stages []Stage, opts Options) ([]Timing, error) {
	idx, err := indexStages(stages)
	if err != nil {
		return nil, err
	}
	if err := checkAcyclic(stages); err != nil {
		return nil, err
	}
	include, err := selectStages(stages, idx, opts.Only)
	if err != nil {
		return nil, err
	}

	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(stages) {
		workers = len(stages)
	}
	if workers < 1 {
		workers = 1
	}

	timings := make([]Timing, len(stages))
	for i, s := range stages {
		timings[i] = Timing{Name: s.Name, Skipped: true}
	}

	// dependents[i] lists stages waiting on i; pending[i] counts unmet deps.
	dependents := make([][]int, len(stages))
	pending := make([]int, len(stages))
	remaining := 0
	for i, s := range stages {
		if !include[i] {
			continue
		}
		remaining++
		pending[i] = len(s.Deps)
		for _, d := range s.Deps {
			dependents[idx[d]] = append(dependents[idx[d]], i)
		}
	}
	if remaining == 0 {
		return timings, nil
	}

	var (
		mu     sync.Mutex
		wg     sync.WaitGroup
		ready  = make(chan int, len(stages))
		failed = make([]bool, len(stages))
		closed = false
	)

	// finish marks stage i complete (ok=false on failure), releasing or
	// failing its dependents. Callers hold mu.
	var finish func(i int, ok bool)
	finish = func(i int, ok bool) {
		remaining--
		for _, d := range dependents[i] {
			if !include[d] {
				continue
			}
			if !ok && !failed[d] {
				failed[d] = true
				timings[d].Err = fmt.Errorf("%w: stage %q skipped because %q did not complete",
					ErrDependencySkipped, stages[d].Name, stages[i].Name)
			}
			pending[d]--
			if pending[d] == 0 {
				if failed[d] {
					finish(d, false) // cascade the skip
				} else {
					ready <- d
				}
			}
		}
		// Guarded: when a cascade above closed the channel already, this
		// outer frame also observes remaining == 0 and must not re-close.
		if remaining == 0 && !closed {
			closed = true
			close(ready)
		}
	}

	mu.Lock()
	for i := range stages {
		if include[i] && pending[i] == 0 {
			ready <- i
		}
	}
	mu.Unlock()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ready {
				if ctx.Err() != nil {
					// Cancelled: don't start the stage, but still flow it
					// through finish so dependents cascade and the ready
					// channel drains to termination.
					mu.Lock()
					timings[i].Err = fmt.Errorf("%w: stage %q not started: %v",
						ErrCanceled, stages[i].Name, ctx.Err())
					finish(i, false)
					mu.Unlock()
					continue
				}
				start := time.Now()
				hit, retries, err := execute(ctx, &stages[i], &opts)
				mu.Lock()
				timings[i].Start = start
				timings[i].Duration = time.Since(start)
				timings[i].Skipped = false
				timings[i].CacheHit = hit
				timings[i].Err = err
				timings[i].Retries = retries
				tm := timings[i]
				finish(i, err == nil)
				mu.Unlock()
				if opts.Observe != nil {
					opts.Observe(tm)
				}
			}
		}()
	}
	wg.Wait()

	var errs []error
	for i := range timings {
		if timings[i].Err != nil &&
			!errors.Is(timings[i].Err, ErrDependencySkipped) &&
			!errors.Is(timings[i].Err, ErrCanceled) {
			errs = append(errs, fmt.Errorf("stage %q: %w", stages[i].Name, timings[i].Err))
		}
	}
	if cerr := ctx.Err(); cerr != nil {
		errs = append(errs, fmt.Errorf("%w: %w", ErrCanceled, cerr))
	}
	return timings, errors.Join(errs...)
}

// execute runs one stage through its retry/deadline policy, consulting the
// result cache first when the stage opted in. A cache hit hydrates the
// stage's outputs through Decode and skips Run entirely; a decode failure
// (corrupt or stale payload) falls back to a normal run. After a successful
// run the encoded outputs are stored — Encode failures only skip the store,
// never fail the stage.
//
// The whole execution — cache lookup, Run, store — is wrapped in a pprof
// label ("stage" = the stage name), so a CPU profile of a battery run
// (go test -cpuprofile, or the server's /debug/pprof/profile) attributes
// samples to pipeline stages: `go tool pprof -tagfocus stage=betweenness`
// isolates one stage, `-tagshow stage` breaks the profile down by all of
// them. Labels propagate to goroutines the stage spawns (the parallel
// chunk workers inherit them), so sharded loops are attributed too.
func execute(ctx context.Context, s *Stage, opts *Options) (cacheHit bool, retries int, err error) {
	pprof.Do(ctx, pprof.Labels("stage", s.Name), func(ctx context.Context) {
		cacheHit, retries, err = executeWithPolicy(ctx, s, opts)
	})
	return cacheHit, retries, err
}

// executeWithPolicy drives the stage's attempt loop: a deadline context
// when the stage declares a Timeout, then up to 1+MaxRetries attempts with
// deterministic exponential backoff between them. Panics (already converted
// to *StagePanicError by executeOnce) and cancellations end the loop
// immediately — only plain errors are retried.
func executeWithPolicy(ctx context.Context, s *Stage, opts *Options) (cacheHit bool, retries int, err error) {
	sctx := ctx
	if s.Timeout > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(ctx, s.Timeout)
		defer cancel()
	}
	for attempt := 0; ; attempt++ {
		cacheHit, err = executeOnce(sctx, s, opts)
		if err == nil {
			return cacheHit, attempt, nil
		}
		var pe *StagePanicError
		if errors.As(err, &pe) || ctx.Err() != nil || attempt >= s.Retry.MaxRetries {
			break
		}
		if sctx.Err() != nil {
			break
		}
		if d := s.Retry.Backoff << attempt; d > 0 {
			t := time.NewTimer(d)
			select {
			case <-sctx.Done():
				t.Stop()
			case <-t.C:
			}
		}
		if sctx.Err() != nil {
			break
		}
		retries = attempt + 1
	}
	if s.Timeout > 0 && sctx.Err() != nil && ctx.Err() == nil {
		err = fmt.Errorf("%w: stage %q exceeded %v: %w", ErrStageTimeout, s.Name, s.Timeout, err)
	}
	return cacheHit, retries, err
}

// executeOnce is one attempt. The deferred recover is the pipeline's panic
// containment: whatever the stage's closures do, the worker goroutine
// survives and the failure is a typed error with the stack attached.
func executeOnce(ctx context.Context, s *Stage, opts *Options) (cacheHit bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &StagePanicError{Stage: s.Name, Value: r, Stack: debug.Stack()}
		}
	}()
	if opts.Intercept != nil {
		if ierr := opts.Intercept(ctx, s.Name); ierr != nil {
			return false, ierr
		}
	}
	c := opts.Cache
	cached := c != nil && s.CacheKey != "" && s.Encode != nil && s.Decode != nil
	if cached {
		if data, ok := c.Get(s.CacheKey); ok {
			if tryDecode(s, data) {
				return true, nil
			}
		}
	}
	if err := s.Run(); err != nil {
		return false, err
	}
	if cached {
		if data, eerr := s.Encode(); eerr == nil {
			c.Put(s.CacheKey, data)
		}
	}
	return false, nil
}

// tryDecode hydrates the stage from a cached payload, treating a decoder
// panic exactly like a decode error: a miss. Corruption must degrade to
// recomputation, never fail (or crash) the stage.
func tryDecode(s *Stage, data []byte) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	return s.Decode(data) == nil
}
