package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"elites/internal/graph"
	"elites/internal/mathx"
	"elites/internal/timeseries"
	"elites/internal/twitter"
)

func TestGraphRoundTrip(t *testing.T) {
	rng := mathx.NewRNG(1)
	b := graph.NewBuilder(200)
	for i := 0; i < 3000; i++ {
		u, v := rng.Intn(200), rng.Intn(200)
		if u != v {
			b.AddEdge(u, v)
		}
	}
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("size mismatch: %d/%d vs %d/%d",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	g.Edges(func(u, v int) bool {
		if !g2.HasEdge(u, v) {
			t.Fatalf("edge %d->%d lost", u, v)
		}
		return true
	})
}

func TestGraphRoundTripProperty(t *testing.T) {
	rng := mathx.NewRNG(2)
	f := func(seed uint32) bool {
		n := 1 + rng.Intn(60)
		b := graph.NewBuilder(n)
		edges := rng.Intn(200)
		for i := 0; i < edges; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		var buf bytes.Buffer
		if err := WriteGraph(&buf, g); err != nil {
			return false
		}
		g2, err := ReadGraph(&buf)
		if err != nil {
			return false
		}
		if g2.NumEdges() != g.NumEdges() || g2.NumNodes() != g.NumNodes() {
			return false
		}
		ok := true
		g.Edges(func(u, v int) bool {
			if !g2.HasEdge(u, v) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGraphDecodeRejectsGarbage(t *testing.T) {
	if _, err := ReadGraph(bytes.NewReader([]byte("NOPE"))); err != ErrBadMagic {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
	if _, err := ReadGraph(bytes.NewReader([]byte("EL"))); err == nil {
		t.Fatal("truncated magic should fail")
	}
	// Valid magic, bogus version.
	var buf bytes.Buffer
	buf.WriteString("ELGR")
	buf.WriteByte(99)
	if _, err := ReadGraph(&buf); err == nil {
		t.Fatal("bad version should fail")
	}
}

func TestGraphEmpty(t *testing.T) {
	g := graph.NewBuilder(0).Build()
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(&buf)
	if err != nil || g2.NumNodes() != 0 {
		t.Fatalf("empty round trip: %v %v", g2, err)
	}
}

func sampleProfiles() []twitter.Profile {
	return []twitter.Profile{
		{
			ID: 1000001, ScreenName: "NewsUser1", Name: "User One",
			Bio: "Official Twitter account of nothing.", Lang: "en",
			Verified: true, Category: twitter.CatJournalist,
			Followers: 1234, Friends: 56, Statuses: 789, Listed: 12,
			CreatedAt: time.Date(2015, 3, 2, 0, 0, 0, 0, time.UTC),
		},
		{
			ID: 1000002, ScreenName: "SportUser2", Name: "User Two",
			Bio: "Professional rugby player.", Lang: "es",
			Verified: true, Category: twitter.CatAthlete,
			Followers: 999999, Friends: 42, Statuses: 10000, Listed: 4000,
			CreatedAt: time.Date(2010, 12, 25, 0, 0, 0, 0, time.UTC),
		},
	}
}

func TestProfilesRoundTrip(t *testing.T) {
	ps := sampleProfiles()
	var buf bytes.Buffer
	if err := WriteProfiles(&buf, ps); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfiles(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ps) {
		t.Fatalf("count = %d", len(got))
	}
	for i := range ps {
		if got[i] != ps[i] {
			t.Fatalf("profile %d mismatch:\n%+v\n%+v", i, got[i], ps[i])
		}
	}
}

func TestSeriesRoundTrip(t *testing.T) {
	s := &timeseries.DailySeries{
		Start:  time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC),
		Values: []float64{1, 2.5, 3.25, 0, -1},
	}
	var buf bytes.Buffer
	if err := WriteSeries(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSeries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Start.Equal(s.Start) || len(got.Values) != len(s.Values) {
		t.Fatalf("series mismatch: %+v", got)
	}
	for i := range s.Values {
		if got.Values[i] != s.Values[i] {
			t.Fatalf("value %d: %v vs %v", i, got.Values[i], s.Values[i])
		}
	}
}

func TestSeriesRejectsBadInput(t *testing.T) {
	cases := []string{
		"",
		"nope\n",
		"date,value\n2017-06-01\n",
		"date,value\n2017-06-01,abc\n",
		"date,value\nnotadate,1\n",
		"date,value\n2017-06-01,1\n2017-06-05,2\n", // gap
	}
	for i, c := range cases {
		if _, err := ReadSeries(bytes.NewReader([]byte(c))); err == nil {
			t.Fatalf("case %d should fail", i)
		}
	}
}

func TestSaveLoadDataset(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	g := graph.FromEdges(2, [][2]int{{0, 1}})
	ds := &twitter.Dataset{Graph: g, Profiles: sampleProfiles(), TotalVerified: 5}
	activity := &timeseries.DailySeries{
		Start:  time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC),
		Values: []float64{10, 20, 30},
	}
	meta := Meta{Tool: "test", Seed: 7, CreatedAt: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
	if err := SaveDataset(dir, ds, activity, meta); err != nil {
		t.Fatal(err)
	}
	got, act, m, err := LoadDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Graph.NumEdges() != 1 || len(got.Profiles) != 2 || got.TotalVerified != 5 {
		t.Fatalf("dataset mismatch: %+v", got)
	}
	if act == nil || act.Len() != 3 {
		t.Fatalf("activity mismatch: %+v", act)
	}
	if m.Tool != "test" || m.Seed != 7 || m.Nodes != 2 || m.Edges != 1 {
		t.Fatalf("meta mismatch: %+v", m)
	}
}

func TestLoadDatasetWithoutOptionalFiles(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	g := graph.FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	f, err := os.Create(filepath.Join(dir, "graph.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteGraph(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	ds, act, _, err := LoadDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Graph.NumEdges() != 2 || ds.Profiles != nil || act != nil {
		t.Fatalf("partial load wrong: %+v %+v", ds, act)
	}
}

func TestLoadDatasetProfileCountMismatch(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ds")
	g := graph.FromEdges(3, [][2]int{{0, 1}})
	ds := &twitter.Dataset{Graph: g, Profiles: sampleProfiles()} // 2 profiles, 3 nodes
	if err := SaveDataset(dir, ds, nil, Meta{}); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := LoadDataset(dir); err == nil {
		t.Fatal("mismatched profile count should fail to load")
	}
}
