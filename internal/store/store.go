// Package store persists and loads datasets: the verified follow graph in a
// compact varint-delta CSR binary format, profiles as gzip-compressed JSON
// lines, and activity series as CSV. The on-disk layout is a directory:
//
//	dataset/
//	  graph.bin          varint CSR digraph
//	  profiles.jsonl.gz  one JSON profile per line
//	  activity.csv       date,value daily series
//	  meta.json          counts and provenance
//
// Formats are versioned and self-describing enough that a partial dataset
// (graph only) loads cleanly.
package store

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"elites/internal/graph"
	"elites/internal/timeseries"
	"elites/internal/twitter"
)

// Format errors.
var (
	ErrBadMagic   = errors.New("store: bad magic")
	ErrBadVersion = errors.New("store: unsupported version")
)

const (
	graphMagic   = "ELGR"
	graphVersion = 1
)

// WriteGraph encodes g to w: header, then per-row degree + delta-encoded
// sorted adjacency, all varints.
func WriteGraph(w io.Writer, g *graph.Digraph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(graphMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := writeUvarint(graphVersion); err != nil {
		return err
	}
	n := g.NumNodes()
	if err := writeUvarint(uint64(n)); err != nil {
		return err
	}
	if err := writeUvarint(uint64(g.NumEdges())); err != nil {
		return err
	}
	for u := 0; u < n; u++ {
		row := g.OutNeighbors(u)
		if err := writeUvarint(uint64(len(row))); err != nil {
			return err
		}
		prev := int32(-1)
		for _, v := range row {
			// Rows are strictly increasing, so deltas are >= 1;
			// store delta-1 to squeeze a little more.
			if err := writeUvarint(uint64(v - prev - 1)); err != nil {
				return err
			}
			prev = v
		}
	}
	return bw.Flush()
}

// ReadGraph decodes a graph written by WriteGraph.
func ReadGraph(r io.Reader) (*graph.Digraph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != graphMagic {
		return nil, ErrBadMagic
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if version != graphVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, version)
	}
	n64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	m64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n64 > 1<<31 {
		return nil, fmt.Errorf("store: implausible node count %d", n64)
	}
	n := int(n64)
	offsets := make([]int64, n+1)
	adj := make([]int32, 0, m64)
	for u := 0; u < n; u++ {
		deg, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		prev := int64(-1)
		for i := uint64(0); i < deg; i++ {
			delta, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			v := prev + 1 + int64(delta)
			if v >= int64(n) {
				return nil, fmt.Errorf("store: node %d out of range in row %d", v, u)
			}
			adj = append(adj, int32(v))
			prev = v
		}
		offsets[u+1] = int64(len(adj))
	}
	if uint64(len(adj)) != m64 {
		return nil, fmt.Errorf("store: edge count mismatch: header %d, rows %d", m64, len(adj))
	}
	return graph.NewFromCSR(n, offsets, adj)
}

// storedProfile is the JSON wire form of twitter.Profile.
type storedProfile struct {
	ID         int64  `json:"id"`
	ScreenName string `json:"screen_name"`
	Name       string `json:"name"`
	Bio        string `json:"bio"`
	Lang       string `json:"lang"`
	Verified   bool   `json:"verified"`
	Category   uint8  `json:"category"`
	Followers  int64  `json:"followers"`
	Friends    int64  `json:"friends"`
	Statuses   int64  `json:"statuses"`
	Listed     int64  `json:"listed"`
	CreatedAt  string `json:"created_at"`
}

// WriteProfiles writes gzip-compressed JSON lines.
func WriteProfiles(w io.Writer, profiles []twitter.Profile) error {
	gz := gzip.NewWriter(w)
	enc := json.NewEncoder(gz)
	for _, p := range profiles {
		sp := storedProfile{
			ID: p.ID, ScreenName: p.ScreenName, Name: p.Name, Bio: p.Bio,
			Lang: p.Lang, Verified: p.Verified, Category: uint8(p.Category),
			Followers: p.Followers, Friends: p.Friends,
			Statuses: p.Statuses, Listed: p.Listed,
			CreatedAt: p.CreatedAt.UTC().Format(time.RFC3339),
		}
		if err := enc.Encode(&sp); err != nil {
			return err
		}
	}
	return gz.Close()
}

// ReadProfiles reads what WriteProfiles wrote.
func ReadProfiles(r io.Reader) ([]twitter.Profile, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, err
	}
	defer gz.Close()
	dec := json.NewDecoder(gz)
	var out []twitter.Profile
	for {
		var sp storedProfile
		if err := dec.Decode(&sp); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, err
		}
		created, err := time.Parse(time.RFC3339, sp.CreatedAt)
		if err != nil {
			return nil, fmt.Errorf("store: bad created_at %q: %w", sp.CreatedAt, err)
		}
		out = append(out, twitter.Profile{
			ID: sp.ID, ScreenName: sp.ScreenName, Name: sp.Name, Bio: sp.Bio,
			Lang: sp.Lang, Verified: sp.Verified,
			Category:  twitter.Category(sp.Category),
			Followers: sp.Followers, Friends: sp.Friends,
			Statuses: sp.Statuses, Listed: sp.Listed, CreatedAt: created,
		})
	}
	return out, nil
}

// WriteSeries writes a daily series as "date,value" CSV with a header.
func WriteSeries(w io.Writer, s *timeseries.DailySeries) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("date,value\n"); err != nil {
		return err
	}
	for i, v := range s.Values {
		line := s.Date(i).Format("2006-01-02") + "," +
			strconv.FormatFloat(v, 'g', -1, 64) + "\n"
		if _, err := bw.WriteString(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSeries reads what WriteSeries wrote.
func ReadSeries(r io.Reader) (*timeseries.DailySeries, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return nil, errors.New("store: empty series file")
	}
	if got := sc.Text(); got != "date,value" {
		return nil, fmt.Errorf("store: bad series header %q", got)
	}
	out := &timeseries.DailySeries{}
	line := 0
	for sc.Scan() {
		parts := strings.SplitN(sc.Text(), ",", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("store: bad series line %d", line+2)
		}
		date, err := time.Parse("2006-01-02", parts[0])
		if err != nil {
			return nil, fmt.Errorf("store: bad date on line %d: %w", line+2, err)
		}
		v, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("store: bad value on line %d: %w", line+2, err)
		}
		if line == 0 {
			out.Start = date
		} else if !out.Date(line).Equal(date) {
			return nil, fmt.Errorf("store: non-contiguous dates at line %d", line+2)
		}
		out.Values = append(out.Values, v)
		line++
	}
	return out, sc.Err()
}

// Meta records dataset provenance.
type Meta struct {
	Nodes         int       `json:"nodes"`
	Edges         int64     `json:"edges"`
	TotalVerified int       `json:"total_verified"`
	CreatedAt     time.Time `json:"created_at"`
	Tool          string    `json:"tool"`
	Seed          uint64    `json:"seed"`
}

// SaveDataset writes a dataset directory.
func SaveDataset(dir string, ds *twitter.Dataset, activity *timeseries.DailySeries, meta Meta) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(dir, "graph.bin"), func(w io.Writer) error {
		return WriteGraph(w, ds.Graph)
	}); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(dir, "profiles.jsonl.gz"), func(w io.Writer) error {
		return WriteProfiles(w, ds.Profiles)
	}); err != nil {
		return err
	}
	if activity != nil {
		if err := writeFile(filepath.Join(dir, "activity.csv"), func(w io.Writer) error {
			return WriteSeries(w, activity)
		}); err != nil {
			return err
		}
	}
	meta.Nodes = ds.Graph.NumNodes()
	meta.Edges = ds.Graph.NumEdges()
	meta.TotalVerified = ds.TotalVerified
	return writeFile(filepath.Join(dir, "meta.json"), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(&meta)
	})
}

// LoadDataset reads a dataset directory; activity may be nil if absent.
func LoadDataset(dir string) (*twitter.Dataset, *timeseries.DailySeries, *Meta, error) {
	g, err := readFileGraph(filepath.Join(dir, "graph.bin"))
	if err != nil {
		return nil, nil, nil, err
	}
	var profiles []twitter.Profile
	pf, err := os.Open(filepath.Join(dir, "profiles.jsonl.gz"))
	if err == nil {
		profiles, err = ReadProfiles(pf)
		pf.Close()
		if err != nil {
			return nil, nil, nil, err
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, nil, err
	}
	if profiles != nil && len(profiles) != g.NumNodes() {
		return nil, nil, nil, fmt.Errorf("store: %d profiles for %d nodes", len(profiles), g.NumNodes())
	}
	var activity *timeseries.DailySeries
	af, err := os.Open(filepath.Join(dir, "activity.csv"))
	if err == nil {
		activity, err = ReadSeries(af)
		af.Close()
		if err != nil {
			return nil, nil, nil, err
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, nil, err
	}
	var meta Meta
	mf, err := os.Open(filepath.Join(dir, "meta.json"))
	if err == nil {
		err = json.NewDecoder(mf).Decode(&meta)
		mf.Close()
		if err != nil {
			return nil, nil, nil, err
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, nil, err
	}
	ds := &twitter.Dataset{Graph: g, Profiles: profiles, TotalVerified: meta.TotalVerified}
	return ds, activity, &meta, nil
}

func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readFileGraph(path string) (*graph.Digraph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadGraph(f)
}
