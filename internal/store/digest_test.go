package store

import (
	"testing"
	"time"

	"elites/internal/graph"
	"elites/internal/timeseries"
	"elites/internal/twitter"
)

func digestFixture() (*twitter.Dataset, *timeseries.DailySeries) {
	g := graph.FromEdges(3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	ds := &twitter.Dataset{
		Graph: g,
		Profiles: []twitter.Profile{
			{ID: 1, ScreenName: "a", Bio: "actor", Lang: "en", Verified: true,
				Followers: 10, Friends: 2, Statuses: 5, Listed: 1,
				CreatedAt: time.Date(2018, 7, 1, 0, 0, 0, 0, time.UTC)},
			{ID: 2, ScreenName: "b", Bio: "band", Lang: "en", Verified: true,
				Followers: 20, Friends: 4, Statuses: 9, Listed: 3,
				CreatedAt: time.Date(2018, 7, 2, 0, 0, 0, 0, time.UTC)},
			{ID: 3, ScreenName: "c", Bio: "coach", Lang: "en", Verified: true,
				CreatedAt: time.Date(2018, 7, 3, 0, 0, 0, 0, time.UTC)},
		},
		TotalVerified: 5,
	}
	act := &timeseries.DailySeries{
		Start:  time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC),
		Values: []float64{1, 2, 3, 4},
	}
	return ds, act
}

func TestDatasetDigestStable(t *testing.T) {
	ds1, act1 := digestFixture()
	ds2, act2 := digestFixture()
	if DatasetDigest(ds1, act1) != DatasetDigest(ds2, act2) {
		t.Fatal("identical datasets digest differently")
	}
}

func TestDatasetDigestSensitivity(t *testing.T) {
	base, act := digestFixture()
	ref := DatasetDigest(base, act)

	perturb := map[string]func(ds *twitter.Dataset, a *timeseries.DailySeries){
		"graph edge": func(ds *twitter.Dataset, a *timeseries.DailySeries) {
			ds.Graph = graph.FromEdges(3, [][2]int{{0, 1}, {1, 2}})
		},
		"profile bio":    func(ds *twitter.Dataset, a *timeseries.DailySeries) { ds.Profiles[1].Bio = "tweaked" },
		"profile metric": func(ds *twitter.Dataset, a *timeseries.DailySeries) { ds.Profiles[0].Followers = 11 },
		"total verified": func(ds *twitter.Dataset, a *timeseries.DailySeries) { ds.TotalVerified = 6 },
		"series value":   func(ds *twitter.Dataset, a *timeseries.DailySeries) { a.Values[2] = 99 },
		"series start":   func(ds *twitter.Dataset, a *timeseries.DailySeries) { a.Start = a.Start.AddDate(0, 0, 1) },
	}
	for name, fn := range perturb {
		ds, a := digestFixture()
		fn(ds, a)
		if DatasetDigest(ds, a) == ref {
			t.Errorf("%s change did not move the digest", name)
		}
	}
}

func TestDatasetDigestNilPieces(t *testing.T) {
	ds, act := digestFixture()
	if DatasetDigest(ds, nil) == DatasetDigest(ds, act) {
		t.Fatal("dropping the series should change the digest")
	}
	if DatasetDigest(nil, nil) != DatasetDigest(nil, nil) {
		t.Fatal("nil dataset digest unstable")
	}
	// A saved-then-loaded dataset digests identically (content address
	// survives the round trip through the on-disk formats).
	dir := t.TempDir()
	if err := SaveDataset(dir, ds, act, Meta{}); err != nil {
		t.Fatal(err)
	}
	ds2, act2, _, err := LoadDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	// TotalVerified lives in meta.json; SaveDataset rewrote it from ds.
	if got, want := DatasetDigest(ds2, act2), DatasetDigest(ds, act); got != want {
		t.Fatalf("digest changed across save/load: %x vs %x", got, want)
	}
}
