package store

import (
	"elites/internal/cache"
	"elites/internal/timeseries"
	"elites/internal/twitter"
)

// DatasetDigest returns a stable 64-bit content hash of everything the
// characterization pipeline reads from a dataset: the graph's CSR arrays
// (via graph.Digest), every profile field that feeds an analysis, the
// verified-total, and the activity series. It is the dataset half of the
// result-cache key (see internal/cache): any change to the underlying data
// changes the digest and therefore misses every cached stage. activity may
// be nil.
func DatasetDigest(ds *twitter.Dataset, activity *timeseries.DailySeries) uint64 {
	h := cache.NewHasher()
	if ds != nil {
		if ds.Graph != nil {
			h.Word(ds.Graph.Digest())
		}
		h.Word(uint64(ds.TotalVerified))
		h.Word(uint64(len(ds.Profiles)))
		for i := range ds.Profiles {
			p := &ds.Profiles[i]
			h.Word(uint64(p.ID))
			h.String(p.ScreenName)
			h.String(p.Name)
			h.String(p.Bio)
			h.String(p.Lang)
			if p.Verified {
				h.Byte(1)
			} else {
				h.Byte(0)
			}
			h.Byte(byte(p.Category))
			h.Word(uint64(p.Followers))
			h.Word(uint64(p.Friends))
			h.Word(uint64(p.Statuses))
			h.Word(uint64(p.Listed))
			h.Word(uint64(p.CreatedAt.UTC().Unix()))
		}
	}
	if activity != nil {
		h.Word(uint64(activity.Start.UTC().Unix()))
		h.Word(uint64(len(activity.Values)))
		for _, v := range activity.Values {
			h.Float64(v)
		}
	}
	return h.Sum()
}
