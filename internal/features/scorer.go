package features

import (
	"fmt"
	"math"
	"sync"

	"elites/internal/gen"
	"elites/internal/graph"
	"elites/internal/mathx"
	"elites/internal/twitter"
)

// Scorer classes. ClassElite is the celebrity-sink shape (heavily followed,
// follows almost nobody), ClassBot the inverse (follows aggressively, no
// audience), ClassRegular everything else.
const (
	// ClassElite is the celebrity/elite account shape.
	ClassElite = iota
	// ClassBot is the bot-like account shape.
	ClassBot
	// ClassRegular is every other account.
	ClassRegular
	// NumClasses is the number of scorer classes.
	NumClasses
)

// classNames maps classes to their JSON names, in class order.
var classNames = [NumClasses]string{"elite", "bot", "regular"}

// ClassName returns the JSON/doc name of a scorer class ("elite", "bot",
// "regular").
func ClassName(c int) string { return classNames[c] }

// trainSeeds is the fixed seed schedule the default scorer trains on; a
// disjoint seed (holdoutSeed) generates the held-out graph the AUC sanity
// test scores. Changing the schedule changes the shipped weights, so the
// scorer determinism tests pin Train's output bit-for-bit instead.
var trainSeeds = [...]uint64{11, 12, 13}

const (
	trainNodes    = 1500
	trainBots     = 100
	trainEpochs   = 300
	trainRate     = 0.5
	trainL2       = 1e-4
	holdoutSeed   = 99
	trainBetwSrcs = 64
)

// Scorer is a multinomial logistic classifier over transformed feature
// rows. W holds NumClasses weight rows of NumFeatures+1 entries each
// (bias last), row-major.
type Scorer struct {
	// W is the weight matrix, NumClasses×(NumFeatures+1) row-major with
	// the bias in the last column.
	W []float64
}

// transform maps one raw feature row into the scorer's input space:
// degrees are log1p-compressed, the ratio is NaN→0 and clamped before
// log1p (celebrity sinks divide by zero), percentiles/indicators pass
// through. z must have NumFeatures entries.
func transform(row, z []float64) {
	z[FeatOutDegree] = math.Log1p(row[FeatOutDegree])
	z[FeatInDegree] = math.Log1p(row[FeatInDegree])
	r := row[FeatRatio]
	switch {
	case math.IsNaN(r):
		r = 0
	case r > 1e12:
		r = 1e12 // +Inf and absurd ratios saturate instead of poisoning the dot product
	}
	z[FeatRatio] = math.Log1p(r)
	z[FeatMutualCore] = row[FeatMutualCore]
	z[FeatBetweennessPct] = row[FeatBetweennessPct]
	z[FeatEigenPct] = row[FeatEigenPct]
	z[FeatClustering] = row[FeatClustering]
	z[FeatTail] = row[FeatTail]
}

// logits fills out[c] with the linear score of each class for an
// already-transformed row z.
func (s *Scorer) logits(z, out []float64) {
	const w = NumFeatures + 1
	for c := 0; c < NumClasses; c++ {
		wc := s.W[c*w : (c+1)*w]
		v := wc[NumFeatures] // bias
		for j := 0; j < NumFeatures; j++ {
			v += wc[j] * z[j]
		}
		out[c] = v
	}
}

// Score classifies one raw feature row: probs (length NumClasses) receives
// the softmax class probabilities and the returned class is the argmax
// (lowest index wins ties). The softmax subtracts the max logit first, so
// probabilities stay finite for any input row.
func (s *Scorer) Score(row []float64, probs []float64) int {
	var z [NumFeatures]float64
	transform(row, z[:])
	s.logits(z[:], probs)
	maxv := probs[0]
	for _, v := range probs[1:] {
		if v > maxv {
			maxv = v
		}
	}
	sum := 0.0
	for c := range probs {
		probs[c] = math.Exp(probs[c] - maxv)
		sum += probs[c]
	}
	best := 0
	for c := range probs {
		probs[c] /= sum
		if probs[c] > probs[best] {
			best = c
		}
	}
	return best
}

// trainingGraph builds one labeled training graph: an elitegen verified
// network (celebrity sinks = elite labels) with trainBots injected
// bot-shaped nodes — each follows many drawn targets and is followed by
// nobody. The graph and labels are pure functions of the seed.
func trainingGraph(seed uint64) (*twitter.Dataset, []uint8, error) {
	cfg := gen.VerifiedDefaults(trainNodes)
	cfg.Seed = seed
	cfg.CelebrityFraction = 0.02 // enough elite examples at this scale
	cfg.IsolatedFraction = 0.01
	res, err := gen.Generate(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("features: training config invalid: %w", err)
	}
	g := res.Graph
	n := g.NumNodes()
	b := graph.NewBuilder(n + trainBots)
	for u := 0; u < n; u++ {
		for _, v := range g.OutNeighbors(u) {
			b.AddEdge(u, int(v))
		}
	}
	rng := mathx.NewRNG(seed).Derive("features/train/bots")
	for i := 0; i < trainBots; i++ {
		u := n + i
		k := 60 + rng.Intn(120)
		for j := 0; j < k; j++ {
			b.AddEdge(u, rng.Intn(n))
		}
	}
	labels := make([]uint8, n+trainBots)
	for u := 0; u < n; u++ {
		if res.Roles[u] == gen.RoleCelebritySink {
			labels[u] = ClassElite
		} else {
			labels[u] = ClassRegular
		}
	}
	for i := 0; i < trainBots; i++ {
		labels[n+i] = ClassBot
	}
	// No Profiles: FeatRatio falls back to in-degree/out-degree, exactly
	// what a served dataset without profile metadata sees.
	return &twitter.Dataset{Graph: b.Build()}, labels, nil
}

// Train fits the scorer on the fixed seed schedule with full-batch gradient
// descent. The result is bit-identical for any workers value: the worker
// budget only reaches the feature computation, which is itself invariant,
// and the descent loop is serial with samples visited in node order.
func Train(workers int) (*Scorer, error) {
	type sample struct {
		z     [NumFeatures]float64
		label uint8
	}
	var samples []sample
	for _, seed := range trainSeeds {
		ds, labels, err := trainingGraph(seed)
		if err != nil {
			return nil, err
		}
		m := computeWith(ds, Options{
			Seed:               seed,
			BetweennessSources: trainBetwSrcs,
			Parallelism:        workers,
		}, nil)
		for u := 0; u < m.N; u++ {
			var s sample
			transform(m.Row(u), s.z[:])
			s.label = labels[u]
			samples = append(samples, s)
		}
	}

	const w = NumFeatures + 1
	sc := &Scorer{W: make([]float64, NumClasses*w)}
	grad := make([]float64, NumClasses*w)
	var p [NumClasses]float64
	inv := 1.0 / float64(len(samples))
	for epoch := 0; epoch < trainEpochs; epoch++ {
		for i := range grad {
			grad[i] = 0
		}
		for i := range samples {
			s := &samples[i]
			sc.logits(s.z[:], p[:])
			maxv := p[0]
			for _, v := range p[1:] {
				if v > maxv {
					maxv = v
				}
			}
			sum := 0.0
			for c := range p {
				p[c] = math.Exp(p[c] - maxv)
				sum += p[c]
			}
			for c := 0; c < NumClasses; c++ {
				d := p[c]/sum - b2f(uint8(c) == s.label)
				gc := grad[c*w : (c+1)*w]
				for j := 0; j < NumFeatures; j++ {
					gc[j] += d * s.z[j]
				}
				gc[NumFeatures] += d
			}
		}
		for i := range sc.W {
			sc.W[i] -= trainRate * (grad[i]*inv + trainL2*sc.W[i])
		}
	}
	return sc, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

var (
	defaultScorerOnce sync.Once
	defaultScorer     *Scorer
	defaultScorerErr  error
)

// DefaultScorer returns the process-wide scorer trained once on the fixed
// seed schedule (Train(0)). Every caller shares the same weights, so
// reports scored in different processes agree bit-for-bit. Training
// failures (an invalid built-in config) are memoized too: every caller
// sees the same error rather than a panic.
func DefaultScorer() (*Scorer, error) {
	defaultScorerOnce.Do(func() { defaultScorer, defaultScorerErr = Train(0) })
	return defaultScorer, defaultScorerErr
}
