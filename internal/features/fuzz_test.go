package features

import (
	"testing"
)

// FuzzFeatureShardDecode throws arbitrary bytes at the shard codec. The
// contract under test is the cache-miss discipline: a corrupted entry must
// decode to an error (which the Store treats as a silent miss and the
// pipeline as a recompute), never a panic, and never a partially-populated
// Rows fragment whose range disagrees with what the caller asked for.
func FuzzFeatureShardDecode(f *testing.F) {
	// Seed the corpus with a real encoded shard plus the classic mutations;
	// the checked-in files under testdata/fuzz pin the same shapes.
	m := testMatrix(f, 24)
	valid := encodeShard(m, 0, m.N)
	f.Add(valid, m.N)
	f.Add([]byte{}, 1)
	f.Add(valid[:len(valid)/3], m.N)
	f.Add(append(append([]byte{}, valid...), 0x00), m.N)
	flipped := append([]byte{}, valid...)
	flipped[0] ^= 0x01 // NumFeatures echo
	f.Add(flipped, m.N)
	lenCorrupt := append([]byte{}, valid...)
	lenCorrupt[3] = 0xFF // count varint region
	f.Add(lenCorrupt, m.N)

	f.Fuzz(func(t *testing.T, data []byte, wantCount int) {
		if wantCount < 1 || wantCount > ShardRows {
			wantCount = 1 + (wantCount&0x7FFFFFFF)%ShardRows
		}
		for _, lo := range []int{0, ShardRows} {
			r, err := decodeShard(data, lo, wantCount)
			if err != nil {
				if r != nil {
					t.Fatalf("error %v with non-nil rows", err)
				}
				continue
			}
			// A successful decode must be fully hydrated and in range.
			if r == nil {
				t.Fatal("nil rows without error")
			}
			if r.Lo != lo || r.Count() != wantCount {
				t.Fatalf("range mismatch: got lo=%d count=%d want lo=%d count=%d",
					r.Lo, r.Count(), lo, wantCount)
			}
			if len(r.Data) != wantCount*NumFeatures ||
				len(r.Probs) != wantCount*NumClasses ||
				len(r.Class) != wantCount {
				t.Fatalf("partial hydration: %d/%d/%d for count=%d",
					len(r.Data), len(r.Probs), len(r.Class), wantCount)
			}
			for i, c := range r.Class {
				if c >= NumClasses {
					t.Fatalf("Class[%d]=%d out of range", i, c)
				}
			}
		}
	})
}
