package features

import (
	"math"
	"sort"
	"testing"
)

// TestScorerTrainDeterministic pins the training run bit-for-bit: the same
// weights regardless of how many times we train or how many workers the
// feature passes underneath use. This is the whole reason DefaultScorer can
// bake its weights into cached shards — any drift here silently invalidates
// every warm cache in the fleet.
func TestScorerTrainDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("training runs the feature pipeline on three generated graphs")
	}
	base, err := Train(1)
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	again, err := Train(1)
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	wide, err := Train(7)
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	if len(base.W) != NumClasses*(NumFeatures+1) {
		t.Fatalf("weight shape: %d", len(base.W))
	}
	for i := range base.W {
		if math.Float64bits(base.W[i]) != math.Float64bits(again.W[i]) {
			t.Fatalf("W[%d] differs across identical runs: %v vs %v", i, base.W[i], again.W[i])
		}
		if math.Float64bits(base.W[i]) != math.Float64bits(wide.W[i]) {
			t.Fatalf("W[%d] differs across worker budgets: %v (w=1) vs %v (w=7)", i, base.W[i], wide.W[i])
		}
	}
}

// TestScorerHoldoutAUC scores a held-out generated graph (a seed the trainer
// never saw) and checks the elite and bot one-vs-rest AUCs clear a generous
// floor. This is not a model-quality benchmark — it guards against silent
// feature-column reordering or a transform bug, either of which craters AUC
// to ~0.5 while leaving training "successful".
func TestScorerHoldoutAUC(t *testing.T) {
	if testing.Short() {
		t.Skip("holdout scoring runs the feature pipeline")
	}
	sc, err := DefaultScorer()
	if err != nil {
		t.Fatalf("default scorer: %v", err)
	}
	ds, labels, terr := trainingGraph(holdoutSeed)
	if terr != nil {
		t.Fatalf("training graph: %v", terr)
	}
	m := computeWith(ds, Options{BetweennessSources: trainBetwSrcs, Seed: holdoutSeed}, nil)

	probs := make([]float64, NumClasses)
	scores := make([][NumClasses]float64, m.N)
	for u := 0; u < m.N; u++ {
		sc.Score(m.Row(u), probs)
		copy(scores[u][:], probs)
	}

	for _, class := range []int{ClassElite, ClassBot} {
		auc := oneVsRestAUC(scores, labels, class)
		t.Logf("%s AUC on holdout seed %d: %.4f", ClassName(class), holdoutSeed, auc)
		if auc < 0.80 {
			t.Errorf("%s AUC %.4f below floor 0.80", ClassName(class), auc)
		}
	}
}

// oneVsRestAUC is the rank-statistic AUC of p(class) against the binary
// label "is this class", with mid-rank tie handling.
func oneVsRestAUC(scores [][NumClasses]float64, labels []uint8, class int) float64 {
	type pair struct {
		p   float64
		pos bool
	}
	ps := make([]pair, len(labels))
	npos := 0
	for u := range labels {
		ps[u] = pair{scores[u][class], int(labels[u]) == class}
		if ps[u].pos {
			npos++
		}
	}
	nneg := len(ps) - npos
	if npos == 0 || nneg == 0 {
		return math.NaN()
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].p < ps[j].p })
	// Sum positive mid-ranks over tie groups.
	var rankSum float64
	for i := 0; i < len(ps); {
		j := i
		for j < len(ps) && ps[j].p == ps[i].p {
			j++
		}
		mid := float64(i+j+1) / 2 // average 1-based rank of the tie group
		for k := i; k < j; k++ {
			if ps[k].pos {
				rankSum += mid
			}
		}
		i = j
	}
	return (rankSum - float64(npos)*float64(npos+1)/2) / (float64(npos) * float64(nneg))
}

// TestScorerScoreStable pins the decision function itself: identical rows
// give identical probabilities, and the returned class is the argmax with
// lowest-index tie-breaking.
func TestScorerScoreStable(t *testing.T) {
	sc, err := DefaultScorer()
	if err != nil {
		t.Fatalf("default scorer: %v", err)
	}
	row := make([]float64, NumFeatures)
	row[FeatOutDegree] = 120
	row[FeatInDegree] = 3400
	row[FeatRatio] = 28.3
	row[FeatMutualCore] = 1
	row[FeatBetweennessPct] = 0.97
	row[FeatEigenPct] = 0.99
	row[FeatClustering] = 0.12
	row[FeatTail] = 1

	a := make([]float64, NumClasses)
	b := make([]float64, NumClasses)
	ca := sc.Score(row, a)
	cb := sc.Score(row, b)
	if ca != cb {
		t.Fatalf("class differs across calls: %d vs %d", ca, cb)
	}
	var sum float64
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("probs[%d] differs across calls", i)
		}
		if a[i] < 0 || a[i] > 1 {
			t.Fatalf("probs[%d]=%v outside [0,1]", i, a[i])
		}
		sum += a[i]
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probs sum to %v", sum)
	}
	for i := range a {
		if a[i] > a[ca] {
			t.Fatalf("class %d is not the argmax (probs %v)", ca, a)
		}
	}

	// NaN / Inf ratio inputs must not poison the probabilities.
	row[FeatRatio] = math.NaN()
	if c := sc.Score(row, a); c < 0 || c >= NumClasses || math.IsNaN(a[c]) {
		t.Fatalf("NaN ratio: class %d probs %v", c, a)
	}
	row[FeatRatio] = math.Inf(1)
	if c := sc.Score(row, a); c < 0 || c >= NumClasses || math.IsNaN(a[c]) {
		t.Fatalf("+Inf ratio: class %d probs %v", c, a)
	}
}
