package features

import (
	"fmt"
	"math"

	"elites/internal/cache"
)

// ShardRows is the fixed row width of one feature shard. It is part of the
// shard codec (keys embed the shard index, bodies echo the row range), so a
// change invalidates every stored shard — bump shardCodecVersion with it.
const ShardRows = 4096

// shardCodecVersion versions the per-shard binary layout below.
const shardCodecVersion = 1

// ManifestCodecVersion versions the manifest layout (EncodeManifest /
// DecodeManifest); core keys the features pipeline stage with it, so bump it
// whenever the manifest or the Matrix scalars it captures change shape.
const ManifestCodecVersion = 1

// NumShards returns the number of shards covering an n-row matrix.
func NumShards(n int) int { return (n + ShardRows - 1) / ShardRows }

// shardKey builds the cache key of shard i for a (dataset, options) pair.
// The shard index lives in the stage name so each shard is its own cache
// entry with the standard key-echo + checksum protection.
func shardKey(dataset, options uint64, i int) string {
	return cache.Key{
		Stage:   fmt.Sprintf("features.shard%04d", i),
		Version: shardCodecVersion,
		Dataset: dataset,
		Options: options,
	}.String()
}

// encodeShard serializes rows [lo, lo+count) of m.
func encodeShard(m *Matrix, lo, count int) []byte {
	var e cache.Encoder
	e.Uvarint(uint64(NumFeatures))
	e.Uvarint(uint64(NumClasses))
	e.Uvarint(uint64(lo))
	e.Uvarint(uint64(count))
	e.Float64s(m.Data[lo*NumFeatures : (lo+count)*NumFeatures])
	e.Float64s(m.Probs[lo*NumClasses : (lo+count)*NumClasses])
	for i := 0; i < count; i++ {
		e.Uvarint(uint64(m.Class[lo+i]))
	}
	return e.Bytes()
}

// decodeShard parses one shard body into a fresh Rows fragment. Every
// violation — wrong header echo, misaligned range, short or oversized
// payload, out-of-range class, trailing bytes — returns cache.ErrCorrupt so
// callers treat the entry as a miss; it never panics and never returns a
// partially-filled fragment.
func decodeShard(data []byte, wantLo, wantCount int) (*Rows, error) {
	d := cache.NewDecoder(data)
	nf := d.Uvarint()
	nc := d.Uvarint()
	lo := d.Uvarint()
	count := d.Uvarint()
	if d.Err() != nil || nf != NumFeatures || nc != NumClasses {
		return nil, cache.ErrCorrupt
	}
	if lo != uint64(wantLo) || count != uint64(wantCount) ||
		count == 0 || count > ShardRows || lo%ShardRows != 0 {
		return nil, cache.ErrCorrupt
	}
	data64 := d.Float64s()
	probs := d.Float64s()
	if d.Err() != nil ||
		len(data64) != int(count)*NumFeatures ||
		len(probs) != int(count)*NumClasses {
		return nil, cache.ErrCorrupt
	}
	class := make([]uint8, count)
	for i := range class {
		c := d.Uvarint()
		if d.Err() != nil || c >= NumClasses {
			return nil, cache.ErrCorrupt
		}
		class[i] = uint8(c)
	}
	if d.Finish() != nil {
		return nil, cache.ErrCorrupt
	}
	return &Rows{Lo: int(lo), Data: data64, Probs: probs, Class: class}, nil
}

// EncodeManifest appends the matrix's scalar summary to a cache encoder —
// the pipeline-stage body. Row payloads live in the per-shard entries
// (Store.Put), not here, so the manifest stays tiny and a corrupt shard
// surfaces as a stage miss via Store.Load.
func EncodeManifest(e *cache.Encoder, m *Matrix) {
	e.Uvarint(uint64(m.N))
	e.Uvarint(ShardRows)
	e.Uvarint(uint64(m.CoreK))
	e.Uvarint(uint64(m.Degeneracy))
	e.Float64(m.TailXmin)
	e.Uvarint(uint64(m.TailCount))
	for _, c := range m.ClassCounts {
		e.Uvarint(uint64(c))
	}
}

// DecodeManifest parses a manifest body into a Matrix whose row storage is
// allocated but unfilled (call Store.Load to hydrate it). wantN is the
// caller's node count; a mismatch — stale entry for a different dataset
// shape — is corruption.
func DecodeManifest(d *cache.Decoder, wantN int) (*Matrix, error) {
	n := d.Uvarint()
	rows := d.Uvarint()
	coreK := d.Uvarint()
	degen := d.Uvarint()
	xmin := d.Float64()
	tail := d.Uvarint()
	var classes [NumClasses]uint64
	for i := range classes {
		classes[i] = d.Uvarint()
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	if n != uint64(wantN) || rows != ShardRows ||
		coreK > n+1 || degen > n || tail > n {
		return nil, cache.ErrCorrupt
	}
	m := &Matrix{
		N: wantN,
		Rows: Rows{
			Data:  make([]float64, wantN*NumFeatures),
			Probs: make([]float64, wantN*NumClasses),
			Class: make([]uint8, wantN),
		},
		CoreK:      int(coreK),
		Degeneracy: int(degen),
		TailXmin:   xmin,
		TailCount:  int(tail),
	}
	var total uint64
	for i, c := range classes {
		if c > n {
			return nil, cache.ErrCorrupt
		}
		total += c
		m.ClassCounts[i] = int(c)
	}
	if total > n || (math.IsNaN(xmin) && tail != 0) {
		return nil, cache.ErrCorrupt
	}
	return m, nil
}

// Store reads and writes a matrix's row shards through a cache instance,
// keyed by the (dataset digest, feature-options digest) identity that core
// and the serving layer share.
type Store struct {
	// Cache is the backing cache (shared per directory).
	Cache *cache.Cache
	// Dataset is the store.DatasetDigest half of every shard key.
	Dataset uint64
	// Options is the OptionsDigest half of every shard key.
	Options uint64
}

// Put writes every row shard of m. Errors are ignored shard-by-shard, like
// the cache's own best-effort disk writes: a failed Put costs a future
// recompute, never correctness.
func (s Store) Put(m *Matrix) {
	for i := 0; i < NumShards(m.N); i++ {
		lo := i * ShardRows
		count := m.N - lo
		if count > ShardRows {
			count = ShardRows
		}
		s.Cache.Put(shardKey(s.Dataset, s.Options, i), encodeShard(m, lo, count))
	}
}

// Load hydrates m's row storage from the store. It fills fresh buffers and
// swaps them in only after every shard decoded cleanly, so a missing or
// corrupt shard returns an error with m untouched — the pipeline then
// treats the whole stage as a miss and recomputes.
func (s Store) Load(m *Matrix) error {
	data := make([]float64, m.N*NumFeatures)
	probs := make([]float64, m.N*NumClasses)
	class := make([]uint8, m.N)
	for i := 0; i < NumShards(m.N); i++ {
		lo := i * ShardRows
		count := m.N - lo
		if count > ShardRows {
			count = ShardRows
		}
		body, ok := s.Cache.Get(shardKey(s.Dataset, s.Options, i))
		if !ok {
			return fmt.Errorf("features: shard %d missing", i)
		}
		r, err := decodeShard(body, lo, count)
		if err != nil {
			return fmt.Errorf("features: shard %d: %w", i, err)
		}
		copy(data[lo*NumFeatures:], r.Data)
		copy(probs[lo*NumClasses:], r.Probs)
		copy(class[lo:], r.Class)
	}
	m.Data, m.Probs, m.Class = data, probs, class
	return nil
}

// LoadShard fetches and decodes the single shard covering rows
// [i·ShardRows, …) of an n-row matrix. ok is false on a miss or corrupt
// entry — the serving layer then falls back to running the pipeline stage.
func (s Store) LoadShard(i, n int) (*Rows, bool) {
	lo := i * ShardRows
	if lo >= n {
		return nil, false
	}
	count := n - lo
	if count > ShardRows {
		count = ShardRows
	}
	body, ok := s.Cache.Get(shardKey(s.Dataset, s.Options, i))
	if !ok {
		return nil, false
	}
	r, err := decodeShard(body, lo, count)
	if err != nil {
		return nil, false
	}
	return r, true
}
