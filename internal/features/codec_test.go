package features

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"elites/internal/cache"
	"elites/internal/graph"
	"elites/internal/twitter"
)

// testMatrix computes a small real matrix to round-trip.
func testMatrix(t testing.TB, n int) *Matrix {
	t.Helper()
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		b.AddEdge(u, (u+1)%n)
		b.AddEdge(u, (u+7)%n)
		if u%3 == 0 {
			b.AddEdge((u+1)%n, u)
		}
	}
	ds := &twitter.Dataset{Graph: b.Build()}
	m, err := Compute(ds, Options{BetweennessSources: 8, Seed: 9})
	if err != nil {
		t.Fatalf("compute: %v", err)
	}
	return m
}

func TestShardRoundTrip(t *testing.T) {
	m := testMatrix(t, 50)
	body := encodeShard(m, 0, m.N)
	r, err := decodeShard(body, 0, m.N)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if r.Lo != 0 || r.Count() != m.N {
		t.Fatalf("range: got lo=%d count=%d", r.Lo, r.Count())
	}
	for i := range m.Data {
		if math.Float64bits(r.Data[i]) != math.Float64bits(m.Data[i]) {
			t.Fatalf("Data[%d]: want %v got %v", i, m.Data[i], r.Data[i])
		}
	}
	for i := range m.Probs {
		if math.Float64bits(r.Probs[i]) != math.Float64bits(m.Probs[i]) {
			t.Fatalf("Probs[%d]: want %v got %v", i, m.Probs[i], r.Probs[i])
		}
	}
	for i := range m.Class {
		if r.Class[i] != m.Class[i] {
			t.Fatalf("Class[%d]: want %d got %d", i, m.Class[i], r.Class[i])
		}
	}
}

func TestShardDecodeRejectsCorruption(t *testing.T) {
	m := testMatrix(t, 40)
	body := encodeShard(m, 0, m.N)

	cases := map[string][]byte{
		"empty":     {},
		"truncated": body[:len(body)/2],
		"trailing":  append(append([]byte{}, body...), 0xAB),
	}
	// Range mismatches against the caller's expectation.
	if _, err := decodeShard(body, ShardRows, m.N); err == nil {
		t.Fatal("wrong lo accepted")
	}
	if _, err := decodeShard(body, 0, m.N-1); err == nil {
		t.Fatal("wrong count accepted")
	}
	// Every single-bit flip must fail or decode to a consistent fragment —
	// never panic. (Bit flips in float payloads legitimately decode; the
	// cache layer's checksum is what rejects those. The codec's own checks
	// cover structure.)
	for i := 0; i < len(body); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte{}, body...)
			mut[i] ^= 1 << bit
			r, err := decodeShard(mut, 0, m.N)
			if err == nil && (r == nil || r.Count() != m.N) {
				t.Fatalf("flip byte %d bit %d: nil/short fragment without error", i, bit)
			}
		}
	}
	for name, data := range cases {
		if r, err := decodeShard(data, 0, m.N); err == nil {
			t.Fatalf("%s: decoded without error (count=%d)", name, r.Count())
		}
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := testMatrix(t, 30)
	var e cache.Encoder
	EncodeManifest(&e, m)
	d := cache.NewDecoder(e.Bytes())
	got, err := DecodeManifest(d, m.N)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	if got.N != m.N || got.CoreK != m.CoreK || got.Degeneracy != m.Degeneracy ||
		got.TailCount != m.TailCount || got.ClassCounts != m.ClassCounts ||
		math.Float64bits(got.TailXmin) != math.Float64bits(m.TailXmin) {
		t.Fatalf("manifest mismatch: want %+v scalars, got %+v", m, got)
	}
	// Row storage is allocated but unfilled.
	if len(got.Data) != m.N*NumFeatures || len(got.Probs) != m.N*NumClasses || len(got.Class) != m.N {
		t.Fatalf("row storage not allocated: %d/%d/%d", len(got.Data), len(got.Probs), len(got.Class))
	}

	// A manifest for a different node count is a stale entry, not a panic.
	d = cache.NewDecoder(e.Bytes())
	if _, err := DecodeManifest(d, m.N+1); err == nil {
		t.Fatal("wrong wantN accepted")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cc, err := cache.New(dir)
	if err != nil {
		t.Fatalf("cache: %v", err)
	}
	defer cache.Release(dir)

	m := testMatrix(t, ShardRows+123) // spans two shards, second partial
	st := Store{Cache: cc, Dataset: 0xD5, Options: 0x07}
	st.Put(m)

	hydrated := &Matrix{
		N:        m.N,
		CoreK:    m.CoreK,
		TailXmin: m.TailXmin,
		Rows: Rows{
			Data:  make([]float64, m.N*NumFeatures),
			Probs: make([]float64, m.N*NumClasses),
			Class: make([]uint8, m.N),
		},
	}
	if err := st.Load(hydrated); err != nil {
		t.Fatalf("load: %v", err)
	}
	for i := range m.Data {
		if math.Float64bits(hydrated.Data[i]) != math.Float64bits(m.Data[i]) {
			t.Fatalf("Data[%d] differs after round-trip", i)
		}
	}

	// LoadShard serves each shard independently.
	for i := 0; i < NumShards(m.N); i++ {
		r, ok := st.LoadShard(i, m.N)
		if !ok {
			t.Fatalf("shard %d missing", i)
		}
		if r.Lo != i*ShardRows {
			t.Fatalf("shard %d: lo=%d", i, r.Lo)
		}
	}
	if _, ok := st.LoadShard(NumShards(m.N), m.N); ok {
		t.Fatal("out-of-range shard index served")
	}

	// A different (dataset, options) identity misses.
	other := Store{Cache: cc, Dataset: 0xBEEF, Options: 0x07}
	if _, ok := other.LoadShard(0, m.N); ok {
		t.Fatal("shard served under wrong dataset digest")
	}
}

func TestStoreLoadCorruptShardIsMissNotPartial(t *testing.T) {
	dir := t.TempDir()
	cc, err := cache.New(dir)
	if err != nil {
		t.Fatalf("cache: %v", err)
	}
	defer cache.Release(dir)

	m := testMatrix(t, ShardRows+50)
	st := Store{Cache: cc, Dataset: 1, Options: 2}
	st.Put(m)

	// Corrupt shard 1's on-disk entry and drop the memory tier so Get hits
	// disk. The cache's checksum turns the flip into a miss.
	var corrupted bool
	err = filepath.WalkDir(dir, func(path string, de os.DirEntry, werr error) error {
		if werr != nil || de.IsDir() {
			return werr
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		if strings.Contains(string(data), "features.shard0001") {
			data[len(data)-3] ^= 0xFF
			corrupted = true
			return os.WriteFile(path, data, 0o644)
		}
		return nil
	})
	if err != nil || !corrupted {
		t.Fatalf("corrupting shard: err=%v corrupted=%v", err, corrupted)
	}
	cc.DropMemory()

	hydrated := &Matrix{
		N: m.N,
		Rows: Rows{
			Data:  make([]float64, m.N*NumFeatures),
			Probs: make([]float64, m.N*NumClasses),
			Class: make([]uint8, m.N),
		},
	}
	if err := st.Load(hydrated); err == nil {
		t.Fatal("corrupt shard hydrated without error")
	}
	// The failed load must not have touched the destination rows.
	for i, v := range hydrated.Data {
		if v != 0 {
			t.Fatalf("partial hydration: Data[%d]=%v after failed Load", i, v)
		}
	}
}

func TestOptionsDigestDefaultsAgree(t *testing.T) {
	// The zero options and their explicit defaults must digest identically:
	// core passes defaulted values, serve passes raw config values.
	raw := OptionsDigest(Options{})
	explicit := OptionsDigest(Options{BetweennessSources: 256, Seed: 1})
	if raw != explicit {
		t.Fatalf("digest mismatch: zero %x vs explicit defaults %x", raw, explicit)
	}
	if OptionsDigest(Options{Seed: 2}) == raw {
		t.Fatal("seed not folded into digest")
	}
	if OptionsDigest(Options{BetweennessSources: 64}) == raw {
		t.Fatal("betweenness sources not folded into digest")
	}
	// Parallelism must NOT enter the digest (determinism contract).
	if OptionsDigest(Options{Parallelism: 8}) != raw {
		t.Fatal("parallelism leaked into digest")
	}
}
