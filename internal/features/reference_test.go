package features

import (
	"math"
	"testing"

	"elites/internal/centrality"
	"elites/internal/graph"
	"elites/internal/mathx"
	"elites/internal/powerlaw"
	"elites/internal/twitter"
)

// reference_test.go pins the production feature matrix to a naive reference
// implementation: straight per-user loops, no sharding, no shared scratch,
// no amortized projections — every per-node quantity recomputed from
// scratch the obvious way. The equivalence is bit-for-bit
// (math.Float64bits, so NaN placement counts too) at every tested worker
// budget, on the canonical generated dataset and on adversarial fixtures.

// referenceMatrix computes the matrix the slow, obvious way.
func referenceMatrix(ds *twitter.Dataset, opts Options, sc *Scorer) *Matrix {
	o := opts.withDefaults()
	g := ds.Graph
	n := g.NumNodes()
	m := &Matrix{
		N: n,
		Rows: Rows{
			Data:  make([]float64, n*NumFeatures),
			Probs: make([]float64, n*NumClasses),
			Class: make([]uint8, n),
		},
		TailXmin: math.NaN(),
	}
	if n == 0 {
		return m
	}

	// In-degrees by full edge scan per node — O(n·m), no InDegrees call.
	inDeg := make([]int, n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			for _, w := range g.OutNeighbors(v) {
				if int(w) == u {
					inDeg[u]++
				}
			}
		}
	}

	cores := graph.KCores(g)
	m.Degeneracy = cores.MaxCore
	m.CoreK = cores.MaxCore / 2
	if m.CoreK < 1 {
		m.CoreK = 1
	}

	// The sampled Brandes kernel has its own reference suite
	// (internal/centrality); here it is an input, called identically but
	// always at workers=1.
	rng := mathx.NewRNG(o.Seed).Derive("features/betweenness")
	bc := centrality.ApproxBetweennessWorkers(g, o.BetweennessSources, rng, 1)
	pr, err := centrality.PageRank(g, nil)
	if err != nil || pr == nil {
		pr = make([]float64, n)
	}

	// O(n²) pair-counting mid-rank percentiles.
	pct := func(s []float64, u int) float64 {
		if n < 2 {
			return 0
		}
		less, ties := 0, 0
		for v := 0; v < n; v++ {
			switch {
			case s[v] < s[u]:
				less++
			case s[v] == s[u]:
				ties++
			}
		}
		return (float64(less) + 0.5*float64(ties-1)) / float64(n-1)
	}

	xmin := math.NaN()
	if fit, ferr := powerlaw.FitDiscrete(g.OutDegrees(), nil); ferr == nil {
		xmin = fit.Xmin
		m.TailXmin = xmin
	}

	for u := 0; u < n; u++ {
		row := m.Data[u*NumFeatures : (u+1)*NumFeatures]
		outD := len(g.OutNeighbors(u))
		row[FeatOutDegree] = float64(outD)
		row[FeatInDegree] = float64(inDeg[u])
		if len(ds.Profiles) == n {
			row[FeatRatio] = float64(ds.Profiles[u].Followers) / float64(ds.Profiles[u].Friends)
		} else {
			row[FeatRatio] = float64(inDeg[u]) / float64(outD)
		}
		if cores.Core[u] >= m.CoreK {
			row[FeatMutualCore] = 1
		}
		row[FeatBetweennessPct] = pct(bc, u)
		row[FeatEigenPct] = pct(pr, u)
		// LocalClustering re-projects the graph on every call.
		row[FeatClustering] = graph.LocalClustering(g, u)
		if !math.IsNaN(xmin) && float64(outD) >= xmin {
			row[FeatTail] = 1
			m.TailCount++
		}
		if sc != nil {
			c := sc.Score(row, m.Probs[u*NumClasses:(u+1)*NumClasses])
			m.Class[u] = uint8(c)
			m.ClassCounts[c]++
		}
	}
	return m
}

// fixtureGraphs builds the adversarial fixture set.
func fixtureGraphs(t testing.TB) map[string]*twitter.Dataset {
	t.Helper()
	fixtures := map[string]*twitter.Dataset{}

	// Singleton: one node, no edges.
	fixtures["singleton"] = &twitter.Dataset{Graph: graph.NewBuilder(1).Build()}

	// Two disconnected directed triangles.
	b := graph.NewBuilder(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}} {
		b.AddEdge(e[0], e[1])
	}
	fixtures["disconnected"] = &twitter.Dataset{Graph: b.Build()}

	// Zero-out-degree sinks: nodes 5..7 are followed but follow nobody
	// (their degree ratio divides by zero).
	b = graph.NewBuilder(8)
	for u := 0; u < 5; u++ {
		for s := 5; s < 8; s++ {
			b.AddEdge(u, s)
		}
		b.AddEdge(u, (u+1)%5)
	}
	fixtures["zero-out-degree"] = &twitter.Dataset{Graph: b.Build()}

	// Star: every leaf follows the hub, the hub follows nobody.
	b = graph.NewBuilder(12)
	for u := 1; u < 12; u++ {
		b.AddEdge(u, 0)
	}
	fixtures["star"] = &twitter.Dataset{Graph: b.Build()}

	// Fully-mutual K5 clique plus one isolated node (0/0 ratio ⇒ NaN).
	b = graph.NewBuilder(6)
	for u := 0; u < 5; u++ {
		for v := 0; v < 5; v++ {
			if u != v {
				b.AddEdge(u, v)
			}
		}
	}
	fixtures["mutual-clique"] = &twitter.Dataset{Graph: b.Build()}

	return fixtures
}

// canonicalDataset is the generated platform dataset (with profiles) the
// repo's other equivalence suites use, sized for test speed.
func canonicalDataset(t testing.TB) *twitter.Dataset {
	t.Helper()
	cfg := twitter.DefaultPlatformConfig(1200)
	cfg.Seed = 7
	p, err := twitter.NewPlatform(cfg)
	if err != nil {
		t.Fatalf("platform: %v", err)
	}
	ds, err := twitter.DatasetFromPlatform(p)
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}
	return ds
}

// requireMatrixEqual compares every field bit-for-bit.
func requireMatrixEqual(t *testing.T, want, got *Matrix, label string) {
	t.Helper()
	if want.N != got.N || want.CoreK != got.CoreK || want.Degeneracy != got.Degeneracy ||
		want.TailCount != got.TailCount || want.ClassCounts != got.ClassCounts {
		t.Fatalf("%s: scalar mismatch: want N=%d coreK=%d degen=%d tail=%d classes=%v, got N=%d coreK=%d degen=%d tail=%d classes=%v",
			label, want.N, want.CoreK, want.Degeneracy, want.TailCount, want.ClassCounts,
			got.N, got.CoreK, got.Degeneracy, got.TailCount, got.ClassCounts)
	}
	if math.Float64bits(want.TailXmin) != math.Float64bits(got.TailXmin) {
		t.Fatalf("%s: TailXmin: want %v got %v", label, want.TailXmin, got.TailXmin)
	}
	for i := range want.Data {
		if math.Float64bits(want.Data[i]) != math.Float64bits(got.Data[i]) {
			t.Fatalf("%s: Data[%d] (node %d, col %d): want %v got %v",
				label, i, i/NumFeatures, i%NumFeatures, want.Data[i], got.Data[i])
		}
	}
	for i := range want.Probs {
		if math.Float64bits(want.Probs[i]) != math.Float64bits(got.Probs[i]) {
			t.Fatalf("%s: Probs[%d]: want %v got %v", label, i, want.Probs[i], got.Probs[i])
		}
	}
	for i := range want.Class {
		if want.Class[i] != got.Class[i] {
			t.Fatalf("%s: Class[%d]: want %d got %d", label, i, want.Class[i], got.Class[i])
		}
	}
}

var referenceWorkerBudgets = []int{1, 2, 4, 7, 8}

func TestFeatureMatrixReferenceFixtures(t *testing.T) {
	sc, err := DefaultScorer()
	if err != nil {
		t.Fatalf("default scorer: %v", err)
	}
	opts := Options{BetweennessSources: 16, Seed: 5}
	for name, ds := range fixtureGraphs(t) {
		ref := referenceMatrix(ds, opts, sc)
		for _, workers := range referenceWorkerBudgets {
			o := opts
			o.Parallelism = workers
			got := computeWith(ds, o, sc)
			requireMatrixEqual(t, ref, got, name+"/workers="+itoa(workers))
		}
	}
}

func TestFeatureMatrixReferenceCanonical(t *testing.T) {
	if testing.Short() {
		t.Skip("canonical graph reference pass is slow")
	}
	ds := canonicalDataset(t)
	sc, err := DefaultScorer()
	if err != nil {
		t.Fatalf("default scorer: %v", err)
	}
	opts := Options{BetweennessSources: 32, Seed: 3}
	ref := referenceMatrix(ds, opts, sc)
	for _, workers := range referenceWorkerBudgets {
		o := opts
		o.Parallelism = workers
		got := computeWith(ds, o, sc)
		requireMatrixEqual(t, ref, got, "canonical/workers="+itoa(workers))
	}
}

// TestFeatureMatrixWorkerInvariance is the cheap always-on variant of the
// reference suite: production vs production across worker budgets on the
// canonical dataset (the reference pass above is the slow cross-check).
func TestFeatureMatrixWorkerInvariance(t *testing.T) {
	ds := canonicalDataset(t)
	opts := Options{BetweennessSources: 32, Seed: 3, Parallelism: 1}
	base, err := Compute(ds, opts)
	if err != nil {
		t.Fatalf("compute: %v", err)
	}
	for _, workers := range referenceWorkerBudgets[1:] {
		o := opts
		o.Parallelism = workers
		got, gerr := Compute(ds, o)
		if gerr != nil {
			t.Fatalf("compute workers=%d: %v", workers, gerr)
		}
		requireMatrixEqual(t, base, got, "workers="+itoa(workers))
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
