// Package features computes the per-user feature matrix behind the related
// work's verification predictor ("What sets Verified Users apart?",
// arXiv:1903.04879): for every account, the structural signals the paper's
// whole-network battery measures in aggregate — in/out degree, the
// follower–following ratio, mutual-core membership, betweenness and
// eigenvector-centrality percentiles, the ego clustering coefficient and
// power-law tail membership — plus a deterministic logistic scorer that
// classifies accounts as elite-, bot- or regular-shaped.
//
// The matrix is computed once per dataset (Compute), sharded row-major into
// fixed-width fragments (ShardRows) that are filled via the shared worker
// pool and stored through internal/cache under a dedicated codec version
// (codec.go), so serving layers answer per-user feature requests from
// precomputed shards without touching the pipeline. The determinism
// contract of the rest of the repo holds here too: the matrix is
// bit-identical at every worker budget (fixed shard layout, per-stage
// derived RNG streams for the sampled betweenness, a serial percentile
// pass) and so is the trained scorer.
package features

import (
	"math"
	"sort"

	"elites/internal/cache"
	"elites/internal/centrality"
	"elites/internal/graph"
	"elites/internal/mathx"
	"elites/internal/parallel"
	"elites/internal/powerlaw"
	"elites/internal/twitter"
)

// Feature column indices of one matrix row. The order is part of the shard
// codec (bump shardCodecVersion when it changes) and of the scorer's weight
// layout — the column-reorder guard in the scorer tests exists because a
// silent shuffle here would leave both plausible and wrong.
const (
	// FeatOutDegree is the node's out-degree (accounts it follows).
	FeatOutDegree = iota
	// FeatInDegree is the node's in-degree (accounts following it).
	FeatInDegree
	// FeatRatio is the follower–following ratio: Profile.Followers /
	// Profile.Friends when the dataset carries profiles, in-degree /
	// out-degree otherwise. The raw IEEE division is kept: 0/0 is NaN and
	// x/0 is +Inf (JSON views render both as null), which is itself a
	// signal — celebrity sinks follow nobody.
	FeatRatio
	// FeatMutualCore is 1 when the node's core number reaches the §IV-C
	// mutual-core threshold (degeneracy/2, clamped to at least 1), 0
	// otherwise.
	FeatMutualCore
	// FeatBetweennessPct is the node's mid-rank percentile (in [0, 1]) of
	// sampled Brandes betweenness.
	FeatBetweennessPct
	// FeatEigenPct is the node's mid-rank percentile of PageRank, the
	// battery's eigenvector-style centrality.
	FeatEigenPct
	// FeatClustering is the ego clustering coefficient on the undirected
	// projection (triangles over wedges; degree < 2 contributes 0).
	FeatClustering
	// FeatTail is 1 when the node's out-degree falls in the fitted
	// power-law tail (>= the CSN xmin), 0 otherwise (or when no tail fits).
	FeatTail
	// NumFeatures is the row width.
	NumFeatures
)

// featureNames maps columns to their JSON/doc names, in column order.
var featureNames = [NumFeatures]string{
	"out_degree", "in_degree", "follower_following_ratio", "mutual_core",
	"betweenness_pct", "eigen_pct", "clustering", "power_law_tail",
}

// Names returns the feature column names in column order.
func Names() []string {
	out := make([]string, NumFeatures)
	copy(out, featureNames[:])
	return out
}

// Options tunes a feature-matrix computation. The zero value matches the
// core battery's defaults, so a matrix computed standalone is bit-identical
// to one computed through the pipeline with default core.Options.
type Options struct {
	// BetweennessSources is the number of sampled Brandes sources
	// (0 = 256, exact when >= number of nodes).
	BetweennessSources int
	// Seed derives the betweenness sampling stream (0 = 1).
	Seed uint64
	// Parallelism is the worker budget for the sharded row fill and the
	// betweenness sources (<= 0 means GOMAXPROCS). It never changes the
	// result and never enters OptionsDigest.
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.BetweennessSources == 0 {
		o.BetweennessSources = 256
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// OptionsDigest folds the result-shaping options into the features half of
// a cache key. core and the serving layer must agree on this digest for a
// server to find the shards a pipeline run stored.
func OptionsDigest(o Options) uint64 {
	o = o.withDefaults()
	return cache.HashWords(o.Seed, uint64(o.BetweennessSources))
}

// Rows is a contiguous row-range fragment of a feature matrix: rows
// [Lo, Lo+Count) of the dataset, row-major. Shards decode into Rows and a
// full Matrix embeds one spanning every row.
type Rows struct {
	// Lo is the first node id covered.
	Lo int
	// Data holds Count×NumFeatures feature values, row-major.
	Data []float64
	// Probs holds Count×NumClasses scorer class probabilities, row-major.
	Probs []float64
	// Class holds each row's argmax class (ClassElite/ClassBot/
	// ClassRegular).
	Class []uint8
}

// Count returns the number of rows covered.
func (r *Rows) Count() int { return len(r.Class) }

// Contains reports whether node u falls inside this fragment.
func (r *Rows) Contains(u int) bool { return u >= r.Lo && u < r.Lo+r.Count() }

// Row returns node u's feature vector (aliases internal storage).
func (r *Rows) Row(u int) []float64 {
	i := u - r.Lo
	return r.Data[i*NumFeatures : (i+1)*NumFeatures]
}

// ProbsRow returns node u's class probabilities (aliases internal storage).
func (r *Rows) ProbsRow(u int) []float64 {
	i := u - r.Lo
	return r.Probs[i*NumClasses : (i+1)*NumClasses]
}

// ClassOf returns node u's argmax class.
func (r *Rows) ClassOf(u int) int { return int(r.Class[u-r.Lo]) }

// Matrix is the full per-dataset feature matrix plus the scalar facts the
// stage summary reports. The embedded Rows spans every node (Lo = 0).
type Matrix struct {
	Rows
	// N is the number of users (rows).
	N int
	// CoreK is the mutual-core threshold used for FeatMutualCore
	// (degeneracy/2, clamped to at least 1).
	CoreK int
	// Degeneracy is the graph's maximum core number.
	Degeneracy int
	// TailXmin is the fitted power-law cutoff behind FeatTail; NaN when no
	// tail fit succeeded (every FeatTail is then 0).
	TailXmin float64
	// TailCount is the number of rows with FeatTail set.
	TailCount int
	// ClassCounts is the number of rows per scorer class.
	ClassCounts [NumClasses]int
}

// RankByOutDegree returns node ids ordered by the serving layer's per-user
// ranking: out-degree descending, node id ascending on ties. byRank[0] is
// rank 1.
func RankByOutDegree(g *graph.Digraph) []int32 {
	outDeg := g.OutDegrees()
	byRank := make([]int32, g.NumNodes())
	for i := range byRank {
		byRank[i] = int32(i)
	}
	sort.SliceStable(byRank, func(a, b int) bool {
		da, db := outDeg[byRank[a]], outDeg[byRank[b]]
		if da != db {
			return da > db
		}
		return byRank[a] < byRank[b]
	})
	return byRank
}

// Compute builds the feature matrix for a dataset and scores every row with
// the default scorer. The result is bit-identical at every
// Options.Parallelism: the global vectors (betweenness, PageRank, cores,
// percentiles, the power-law fit) are computed with the repo's
// deterministic kernels, and the row fill shards into fixed ShardRows-wide
// chunks whose layout is independent of the worker count.
func Compute(ds *twitter.Dataset, opts Options) (*Matrix, error) {
	sc, err := DefaultScorer()
	if err != nil {
		return nil, err
	}
	return computeWith(ds, opts, sc), nil
}

// computeWith is Compute with an explicit scorer; a nil scorer leaves
// Probs/Class zero (the scorer's own training path uses this to avoid
// bootstrapping on itself).
func computeWith(ds *twitter.Dataset, opts Options, sc *Scorer) *Matrix {
	o := opts.withDefaults()
	g := ds.Graph
	n := g.NumNodes()
	m := &Matrix{
		N: n,
		Rows: Rows{
			Data:  make([]float64, n*NumFeatures),
			Probs: make([]float64, n*NumClasses),
			Class: make([]uint8, n),
		},
		TailXmin: math.NaN(),
	}
	if n == 0 {
		return m
	}

	// Global vectors first; every one of these kernels is deterministic at
	// any worker budget, so the per-row fill below only reads fixed inputs.
	outDeg := g.OutDegrees()
	inDeg := g.InDegrees()
	cores := graph.KCores(g)
	m.Degeneracy = cores.MaxCore
	m.CoreK = cores.MaxCore / 2
	if m.CoreK < 1 {
		m.CoreK = 1 // AnalyzeMutualCore's clamp, kept in lockstep
	}
	und := g.Undirected()

	// The betweenness sample draws from its own derived stream, so the
	// matrix commutes with every other consumer of the seed (Derive never
	// advances the base generator).
	rng := mathx.NewRNG(o.Seed).Derive("features/betweenness")
	bc := centrality.ApproxBetweennessWorkers(g, o.BetweennessSources, rng, o.Parallelism)
	pr, err := centrality.PageRank(g, nil)
	if err != nil || pr == nil {
		pr = make([]float64, n)
	}
	bPct := percentiles(bc)
	ePct := percentiles(pr)

	xmin := math.NaN()
	if fit, ferr := powerlaw.FitDiscrete(outDeg, nil); ferr == nil {
		xmin = fit.Xmin
		m.TailXmin = xmin
	}
	profiles := ds.Profiles
	if len(profiles) < n {
		profiles = nil // training graphs carry no profiles; fall back to degrees
	}

	// Row fill: fixed ShardRows-wide chunks (never derived from the worker
	// count) with per-chunk tallies folded in chunk order.
	type chunkTally struct {
		tail    int
		classes [NumClasses]int
	}
	tallies := parallel.ChunkReduce(n, ShardRows, o.Parallelism, func(lo, hi int) chunkTally {
		var t chunkTally
		for u := lo; u < hi; u++ {
			row := m.Data[u*NumFeatures : (u+1)*NumFeatures]
			row[FeatOutDegree] = float64(outDeg[u])
			row[FeatInDegree] = float64(inDeg[u])
			var followers, friends float64
			if profiles != nil {
				followers = float64(profiles[u].Followers)
				friends = float64(profiles[u].Friends)
			} else {
				followers = float64(inDeg[u])
				friends = float64(outDeg[u])
			}
			row[FeatRatio] = followers / friends // 0/0 ⇒ NaN, x/0 ⇒ +Inf, both kept
			if cores.Core[u] >= m.CoreK {
				row[FeatMutualCore] = 1
			}
			row[FeatBetweennessPct] = bPct[u]
			row[FeatEigenPct] = ePct[u]
			row[FeatClustering] = graph.LocalClusteringUndirected(und, u)
			if !math.IsNaN(xmin) && float64(outDeg[u]) >= xmin {
				row[FeatTail] = 1
				t.tail++
			}
			if sc != nil {
				c := sc.Score(row, m.Probs[u*NumClasses:(u+1)*NumClasses])
				m.Class[u] = uint8(c)
				t.classes[c]++
			}
		}
		return t
	})
	for _, t := range tallies {
		m.TailCount += t.tail
		for c := range t.classes {
			m.ClassCounts[c] += t.classes[c]
		}
	}
	return m
}

// percentiles maps a finite score vector onto mid-rank percentiles in
// [0, 1]: a node's percentile is the average zero-based rank of its score
// among all nodes (ties share their group's mid rank) divided by n−1. A
// single node gets 0 by convention. Ranks and tie counts are integers, so
// the mid rank is exact in float64 and the result is bit-identical to a
// naive pair-counting pass.
func percentiles(s []float64) []float64 {
	n := len(s)
	out := make([]float64, n)
	if n < 2 {
		return out
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if s[idx[a]] != s[idx[b]] {
			return s[idx[a]] < s[idx[b]]
		}
		return idx[a] < idx[b]
	})
	den := float64(n - 1)
	for i := 0; i < n; {
		j := i + 1
		for j < n && s[idx[j]] == s[idx[i]] {
			j++
		}
		p := (float64(i) + float64(j-1)) / 2 / den
		for k := i; k < j; k++ {
			out[idx[k]] = p
		}
		i = j
	}
	return out
}
