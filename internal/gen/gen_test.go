package gen

import (
	"math"
	"testing"

	"elites/internal/graph"
	"elites/internal/mathx"
	"elites/internal/powerlaw"
)

// The calibration tests pin the verified-network fingerprint to bands around
// the paper's measurements. They run at n=6,000 to stay fast; the full-size
// comparison lives in the bench harness.

func genVerifiedSmall(t *testing.T) *Result {
	t.Helper()
	res, err := Verified(6000, 7)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestVerifiedReciprocityBand(t *testing.T) {
	res := genVerifiedSmall(t)
	r := graph.Reciprocity(res.Graph)
	// Paper: 33.7%.
	if r < 0.30 || r > 0.38 {
		t.Fatalf("reciprocity = %v, want ≈0.337", r)
	}
}

func TestVerifiedGiantSCC(t *testing.T) {
	res := genVerifiedSmall(t)
	scc := graph.StronglyConnectedComponents(res.Graph)
	_, size := scc.Largest()
	frac := float64(size) / float64(res.Graph.NumNodes())
	// Paper: 97.24%.
	if frac < 0.94 || frac > 0.985 {
		t.Fatalf("giant SCC fraction = %v, want ≈0.97", frac)
	}
}

func TestVerifiedIsolatedAndSinks(t *testing.T) {
	res := genVerifiedSmall(t)
	iso := graph.IsolatedNodes(res.Graph)
	wantIso := int(math.Round(0.0261 * 6000))
	if math.Abs(float64(len(iso)-wantIso)) > 3 {
		t.Fatalf("isolated = %d, want ≈%d", len(iso), wantIso)
	}
	// Attracting components = isolated + celebrity sinks (echoing the
	// paper's 6,091 ≈ 6,027 + 64).
	scc := graph.StronglyConnectedComponents(res.Graph)
	ac := graph.AttractingComponents(res.Graph, scc)
	sinks := 0
	for _, role := range res.Roles {
		if role == RoleCelebritySink {
			sinks++
		}
	}
	want := len(iso) + sinks
	if math.Abs(float64(len(ac)-want)) > 2 {
		t.Fatalf("attracting components = %d, want ≈ isolated+sinks = %d", len(ac), want)
	}
	// Sinks must have zero out-degree and high in-degree.
	in := res.Graph.InDegrees()
	for v, role := range res.Roles {
		if role == RoleCelebritySink {
			if res.Graph.OutDegree(v) != 0 {
				t.Fatalf("sink %d has out-degree %d", v, res.Graph.OutDegree(v))
			}
			if in[v] < 50 {
				t.Fatalf("sink %d in-degree %d, want large", v, in[v])
			}
		}
		if role == RoleIsolated && (res.Graph.OutDegree(v) != 0 || in[v] != 0) {
			t.Fatalf("isolated node %d has edges", v)
		}
	}
}

func TestVerifiedDissortative(t *testing.T) {
	res := genVerifiedSmall(t)
	r := graph.DegreeAssortativity(res.Graph)
	// Paper: −0.04 ("slight dissortativity"); allow a small-n band but
	// demand the sign.
	if r > 0 || r < -0.15 {
		t.Fatalf("assortativity = %v, want slightly negative", r)
	}
}

func TestVerifiedShortDistances(t *testing.T) {
	res := genVerifiedSmall(t)
	rng := mathx.NewRNG(3)
	dd := graph.SampledDistances(res.Graph, 80, rng)
	// Paper: 2.74 at n=231k. Smaller graphs are slightly tighter; accept
	// the small-world band.
	if dd.Mean() < 2.0 || dd.Mean() > 3.3 {
		t.Fatalf("mean distance = %v, want ≈2.7", dd.Mean())
	}
}

func TestVerifiedClusteringLowButPresent(t *testing.T) {
	res := genVerifiedSmall(t)
	c := graph.AverageLocalClustering(res.Graph)
	// Paper: 0.1583 ("low").
	if c < 0.06 || c > 0.25 {
		t.Fatalf("clustering = %v, want ≈0.1–0.2", c)
	}
}

func TestVerifiedOutDegreePowerLaw(t *testing.T) {
	res, err := Verified(12000, 11)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := powerlaw.FitDiscrete(res.Graph.OutDegrees(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: α = 3.24.
	if fit.Alpha < 2.8 || fit.Alpha > 3.8 {
		t.Fatalf("alpha = %v, want ≈3.24", fit.Alpha)
	}
	rng := mathx.NewRNG(5)
	if p := fit.GoodnessOfFit(40, rng); p <= 0.1 {
		t.Fatalf("power-law GoF p = %v, want > 0.1", p)
	}
}

func TestTwitterBaselineContrast(t *testing.T) {
	v, err := Verified(6000, 1)
	if err != nil {
		t.Fatal(err)
	}
	tw, err := Twitter(6000, 2)
	if err != nil {
		t.Fatal(err)
	}
	rv := graph.Reciprocity(v.Graph)
	rt := graph.Reciprocity(tw.Graph)
	if rt < 0.18 || rt > 0.27 {
		t.Fatalf("twitter reciprocity = %v, want ≈0.221", rt)
	}
	if rv <= rt {
		t.Fatalf("verified reciprocity (%v) must exceed generic (%v)", rv, rt)
	}
	rng := mathx.NewRNG(4)
	dv := graph.SampledDistances(v.Graph, 60, rng)
	dt := graph.SampledDistances(tw.Graph, 60, rng)
	if dv.Mean() >= dt.Mean() {
		t.Fatalf("verified distances (%v) must undercut generic (%v)", dv.Mean(), dt.Mean())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Verified(2000, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Verified(2000, 99)
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("same seed, different edge count")
	}
	equal := true
	a.Graph.Edges(func(u, v int) bool {
		if !b.Graph.HasEdge(u, v) {
			equal = false
			return false
		}
		return true
	})
	if !equal {
		t.Fatal("same seed, different edges")
	}
	c, err := Verified(2000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if c.Graph.NumEdges() == a.Graph.NumEdges() {
		// Same count is possible but all-edges-equal is not.
		same := true
		a.Graph.Edges(func(u, v int) bool {
			if !c.Graph.HasEdge(u, v) {
				same = false
				return false
			}
			return true
		})
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestGenerateConfigValidation(t *testing.T) {
	bad := []Config{
		{N: 0, MeanDegree: 10},
		{N: 10, MeanDegree: 0},
		{N: 10, MeanDegree: 5, MutualFraction: 1.5},
		{N: 10, MeanDegree: 5, IsolatedFraction: 0.4, CelebrityFraction: 0.2},
		{N: 10, MeanDegree: 5, IsolatedFraction: -0.1},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Fatalf("config %d should be rejected", i)
		}
	}
}

func TestRoleString(t *testing.T) {
	if RoleRegular.String() != "regular" || RoleIsolated.String() != "isolated" ||
		RoleCelebritySink.String() != "celebrity-sink" || Role(9).String() != "unknown" {
		t.Fatal("role names wrong")
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(500, 0.01, 3)
	want := 0.01 * 500 * 499
	got := float64(g.NumEdges())
	if math.Abs(got-want) > 5*math.Sqrt(want) {
		t.Fatalf("ER edges = %v, want ≈%v", got, want)
	}
	if ErdosRenyi(10, 0, 1).NumEdges() != 0 {
		t.Fatal("p=0 should be empty")
	}
	if ErdosRenyi(5, 1, 1).NumEdges() != 20 {
		t.Fatal("p=1 should be complete")
	}
}

func TestBarabasiAlbertHubs(t *testing.T) {
	g := BarabasiAlbert(2000, 3, 0.3, 5)
	in := g.InDegrees()
	maxIn := 0
	for _, d := range in {
		if d > maxIn {
			maxIn = d
		}
	}
	// Preferential attachment must grow hubs far beyond m.
	if maxIn < 30 {
		t.Fatalf("BA max in-degree = %d, want hubs", maxIn)
	}
	// Early nodes should on average be richer than late ones.
	early, late := 0, 0
	for v := 0; v < 100; v++ {
		early += in[v]
	}
	for v := 1900; v < 2000; v++ {
		late += in[v]
	}
	if early <= late {
		t.Fatalf("rich-get-richer violated: early %d vs late %d", early, late)
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(300, 4, 0, 7)
	if g.NumEdges() != 1200 {
		t.Fatalf("ring edges = %d", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 4) || g.HasEdge(0, 5) {
		t.Fatal("ring structure wrong")
	}
	// With rewiring, distances shrink.
	rng := mathx.NewRNG(8)
	d0 := graph.SampledDistances(g, 40, rng).Mean()
	g2 := WattsStrogatz(300, 4, 0.2, 7)
	d2 := graph.SampledDistances(g2, 40, rng).Mean()
	if d2 >= d0 {
		t.Fatalf("rewiring should shorten paths: %v vs %v", d2, d0)
	}
}

func TestConfigurationModel(t *testing.T) {
	out := []int{3, 2, 1, 0, 2}
	in := []int{1, 1, 2, 3, 1}
	g, err := ConfigurationModel(out, in, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Stub collapse loses some edges but most survive.
	if g.NumEdges() < 6 || g.NumEdges() > 8 {
		t.Fatalf("edges = %d, want 6..8", g.NumEdges())
	}
	if _, err := ConfigurationModel([]int{1}, []int{2}, 1); err == nil {
		t.Fatal("unequal sums should error")
	}
	if _, err := ConfigurationModel([]int{-1}, []int{-1}, 1); err == nil {
		t.Fatal("negative degrees should error")
	}
	if _, err := ConfigurationModel([]int{1, 2}, []int{3}, 1); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestSortedOutDegrees(t *testing.T) {
	g := graph.FromEdges(3, [][2]int{{0, 1}, {0, 2}, {1, 2}})
	d := SortedOutDegrees(g)
	if d[0] != 2 || d[1] != 1 || d[2] != 0 {
		t.Fatalf("sorted = %v", d)
	}
}
