// Package gen synthesizes directed social networks whose structural
// fingerprints match the populations studied in the paper: the Twitter
// verified-user sub-graph (power-law out-degree tail, reciprocity ≈ 0.34,
// slight dissortativity, a giant SCC holding ~97% of users, mean pairwise
// distance below 3, isolated users and celebrity "sink" accounts) and the
// generic Twittersphere reference of Kwak et al. (no clean power-law
// verdict, reciprocity ≈ 0.22, longer paths).
//
// The real July-2018 crawl is unobtainable, so these generators are the
// dataset substitute: every analysis in the paper is a function of the
// graph, and a graph that reproduces the measured invariants reproduces the
// analyses' shape. The mechanism separates each user's edges into
//
//   - mutual "peer" edges — partner chosen proportionally to the partner's
//     own sociability (drawn out-degree), optionally via triadic closure,
//     added in both directions; and
//   - one-way "fan" edges — target chosen proportionally to a Zipf fame
//     fitness, never reciprocated.
//
// With a fraction φ of each user's degree budget spent on mutual pairs, the
// measured edge reciprocity is 2φ/(1+φ) and out-degrees keep their drawn
// distribution shape (both phases scale a node's degree linearly), which is
// what makes the dials calibratable in closed form.
package gen

import (
	"errors"
	"math"
	"sort"

	"elites/internal/graph"
	"elites/internal/mathx"
)

// ErrConfig reports an invalid generator configuration.
var ErrConfig = errors.New("gen: invalid configuration")

// Role classifies a generated node; the twitter substrate uses roles to
// assign profile archetypes.
type Role uint8

// Node roles.
const (
	// RoleRegular nodes follow and are followed.
	RoleRegular Role = iota
	// RoleIsolated nodes have no edges at all (the paper counts 6,027).
	RoleIsolated
	// RoleCelebritySink nodes follow nobody but are heavily followed —
	// the cores of the paper's attracting components ('@ladbible',
	// '@SriSri', ...).
	RoleCelebritySink
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleRegular:
		return "regular"
	case RoleIsolated:
		return "isolated"
	case RoleCelebritySink:
		return "celebrity-sink"
	}
	return "unknown"
}

// Config parameterizes the social-graph engine. The zero value is invalid;
// start from VerifiedDefaults or TwitterDefaults.
type Config struct {
	// N is the number of nodes.
	N int
	// MeanDegree is the target mean drawn out-degree of active nodes
	// before mutual amplification.
	MeanDegree float64
	// TailExponent is the density exponent α of the Pareto out-degree
	// tail; <= 1 disables the tail (lognormal body only).
	TailExponent float64
	// TailFraction is the probability an active node draws its degree
	// from the Pareto tail instead of the lognormal body.
	TailFraction float64
	// TailXminFactor positions the tail cutoff at TailXminFactor ×
	// MeanDegree.
	TailXminFactor float64
	// BodyLogStd is the σ of the lognormal degree body (its median is
	// set from MeanDegree).
	BodyLogStd float64
	// MutualFraction is φ, the share of each node's degree budget spent
	// on mutual pairs; reciprocity ≈ 2φ/(1+φ).
	MutualFraction float64
	// TriadicClosure is the probability a mutual partner is drawn from
	// the node's current two-hop mutual neighborhood instead of globally
	// (the clustering dial).
	TriadicClosure float64
	// CopyProb is the probability a fan target is copied from a mutual
	// friend's fan list ("follow who your friends follow"), the second
	// clustering dial; it also reinforces preferential attachment.
	CopyProb float64
	// FameExponent shapes the Zipf fame fitness for fan-edge targets
	// (larger → more skew, stronger hubs, shorter paths).
	FameExponent float64
	// Communities is the number of topical communities (0 disables the
	// community layer). Real verified users cluster by occupation —
	// journalists follow journalists — which is where most triangle mass
	// lives.
	Communities int
	// CommunityBias is the probability an edge (mutual or fan) is drawn
	// from the node's own community instead of globally.
	CommunityBias float64
	// IsolatedFraction of nodes have no edges.
	IsolatedFraction float64
	// CelebrityFraction of nodes are zero-out-degree sinks occupying the
	// top fame ranks.
	CelebrityFraction float64
	// Seed drives all randomness; identical configs produce identical
	// graphs.
	Seed uint64
}

// VerifiedDefaults returns the configuration calibrated to the paper's
// verified-network fingerprint at n nodes (the paper's own scale is
// n=231,246 with mean degree 342.55; benches default to n=20,000 with the
// degree scaled to keep generation affordable while preserving every
// dimensionless statistic).
func VerifiedDefaults(n int) Config {
	return Config{
		N:          n,
		MeanDegree: 60,
		// Drawn tail exponent. Mutual-amplification noise flattens the
		// finite-size fit slightly while the English-language induced
		// subgraph (binomial edge thinning) steepens it; 3.16 lands the
		// English sub-graph's measured α at the paper's 3.24.
		TailExponent:      3.16,
		TailFraction:      0.05,
		TailXminFactor:    3.0,
		BodyLogStd:        1.1,
		MutualFraction:    0.182, // measured reciprocity ≈ 0.337 after the min-1 mutual clip
		TriadicClosure:    0.75,
		CopyProb:          0.60,
		FameExponent:      0.85,
		Communities:       400,
		CommunityBias:     0.65,
		IsolatedFraction:  0.0261, // 6027/231246
		CelebrityFraction: 0.00028,
		Seed:              1,
	}
}

// TwitterDefaults returns the generic-Twittersphere reference configuration
// (Kwak et al.: reciprocity 22.1%, no out-degree power-law verdict, mean
// separation ≈ 4).
func TwitterDefaults(n int) Config {
	return Config{
		N:                 n,
		MeanDegree:        15,
		TailExponent:      0, // no Pareto tail: lognormal out-degrees
		TailFraction:      0,
		TailXminFactor:    0,
		BodyLogStd:        1.3,
		MutualFraction:    0.106, // measured reciprocity ≈ 0.221
		TriadicClosure:    0.35,
		CopyProb:          0.15,
		FameExponent:      0.45,
		Communities:       200,
		CommunityBias:     0.15,
		IsolatedFraction:  0.01,
		CelebrityFraction: 0,
		Seed:              2,
	}
}

// Result is a generated network with its node roles and drawn degrees.
type Result struct {
	Graph *graph.Digraph
	Roles []Role
	// DrawnDegree is each node's sampled degree budget (0 for isolated
	// and sinks); the twitter substrate reuses it as an activity prior.
	DrawnDegree []int
	// FameRank is each node's rank in the fame fitness (0 = most
	// famous); isolated nodes rank last.
	FameRank []int
}

// Generate runs the engine.
func Generate(cfg Config) (*Result, error) {
	if cfg.N <= 0 || cfg.MeanDegree <= 0 {
		return nil, ErrConfig
	}
	if cfg.MutualFraction < 0 || cfg.MutualFraction >= 1 {
		return nil, ErrConfig
	}
	if cfg.IsolatedFraction < 0 || cfg.CelebrityFraction < 0 ||
		cfg.IsolatedFraction+cfg.CelebrityFraction > 0.5 {
		return nil, ErrConfig
	}
	rng := mathx.NewRNG(cfg.Seed)
	n := cfg.N

	// --- Role assignment ------------------------------------------------
	roles := make([]Role, n)
	perm := rng.Perm(n)
	nIso := int(math.Round(cfg.IsolatedFraction * float64(n)))
	nCel := int(math.Round(cfg.CelebrityFraction * float64(n)))
	for i := 0; i < nIso; i++ {
		roles[perm[i]] = RoleIsolated
	}
	for i := nIso; i < nIso+nCel; i++ {
		roles[perm[i]] = RoleCelebritySink
	}

	// --- Fame fitness (fan-edge attractiveness) -------------------------
	// Zipf over the non-isolated nodes; celebrity sinks take the top
	// ranks, shuffled regular nodes the rest.
	fame := make([]float64, n)
	fameRank := make([]int, n)
	var active []int // non-isolated nodes
	for v := 0; v < n; v++ {
		if roles[v] != RoleIsolated {
			active = append(active, v)
		}
		fameRank[v] = n - 1 // isolated default: last
	}
	// Order: sinks first (most famous), then regular in random order.
	ordered := make([]int, 0, len(active))
	for _, v := range active {
		if roles[v] == RoleCelebritySink {
			ordered = append(ordered, v)
		}
	}
	regStart := len(ordered)
	for _, v := range active {
		if roles[v] == RoleRegular {
			ordered = append(ordered, v)
		}
	}
	rng.Shuffle(len(ordered)-regStart, func(i, j int) {
		ordered[regStart+i], ordered[regStart+j] = ordered[regStart+j], ordered[regStart+i]
	})
	for rank, v := range ordered {
		fame[v] = math.Pow(float64(rank+1), -cfg.FameExponent)
		fameRank[v] = rank
	}
	fameSampler := mathx.NewWeightedSampler(fame)

	// --- Degree budgets ---------------------------------------------------
	// Lognormal body with median MeanDegree/2 plus optional Pareto tail.
	drawn := make([]int, n)
	bodyMu := math.Log(cfg.MeanDegree / 2)
	xminTail := cfg.TailXminFactor * cfg.MeanDegree
	var totalDrawn float64
	for _, v := range active {
		if roles[v] != RoleRegular {
			continue
		}
		var d float64
		if cfg.TailExponent > 1 && rng.Bool(cfg.TailFraction) {
			d = rng.Pareto(xminTail, cfg.TailExponent)
		} else {
			d = rng.LogNormal(bodyMu, cfg.BodyLogStd)
			// Keep the body strictly below the Pareto cutoff so the
			// tail region stays a pure power law (body leakage above
			// xmin bends the tail and fails the CSN goodness-of-fit).
			if cfg.TailExponent > 1 {
				for attempt := 0; d >= xminTail && attempt < 20; attempt++ {
					d = rng.LogNormal(bodyMu, cfg.BodyLogStd)
				}
				if d >= xminTail {
					d = xminTail * 0.9
				}
			}
		}
		if d < 1 {
			d = 1
		}
		// Cap at n/4 so one node cannot absorb the whole graph at
		// small n.
		if d > float64(n)/4 {
			d = float64(n) / 4
		}
		drawn[v] = int(d)
		totalDrawn += d
	}

	// Sociability sampler for mutual partners: weight ∝ drawn degree,
	// which keeps out-degree distribution shape under mutual
	// amplification.
	soc := make([]float64, n)
	for v := 0; v < n; v++ {
		if roles[v] == RoleRegular {
			soc[v] = float64(drawn[v])
		}
	}
	socSampler := mathx.NewWeightedSampler(soc)

	// --- Community layer --------------------------------------------------
	// Per-community fame and sociability samplers over member indices.
	var comm []int
	var commFame, commSoc []*mathx.WeightedSampler
	var commMembers [][]int
	if cfg.Communities > 1 && cfg.CommunityBias > 0 {
		c := cfg.Communities
		comm = make([]int, n)
		commMembers = make([][]int, c)
		for v := 0; v < n; v++ {
			comm[v] = rng.Intn(c)
			commMembers[comm[v]] = append(commMembers[comm[v]], v)
		}
		commFame = make([]*mathx.WeightedSampler, c)
		commSoc = make([]*mathx.WeightedSampler, c)
		for ci := 0; ci < c; ci++ {
			members := commMembers[ci]
			if len(members) == 0 {
				continue
			}
			wf := make([]float64, len(members))
			ws := make([]float64, len(members))
			anyF, anyS := false, false
			for i, v := range members {
				wf[i] = fame[v]
				ws[i] = soc[v]
				anyF = anyF || wf[i] > 0
				anyS = anyS || ws[i] > 0
			}
			if anyF {
				commFame[ci] = mathx.NewWeightedSampler(wf)
			}
			if anyS {
				commSoc[ci] = mathx.NewWeightedSampler(ws)
			}
		}
	}
	sampleFame := func(u int) int {
		if comm != nil && rng.Bool(cfg.CommunityBias) {
			if s := commFame[comm[u]]; s != nil {
				return commMembers[comm[u]][s.Sample(rng)]
			}
		}
		return fameSampler.Sample(rng)
	}
	sampleSoc := func(u int) int {
		if comm != nil && rng.Bool(cfg.CommunityBias) {
			if s := commSoc[comm[u]]; s != nil {
				return commMembers[comm[u]][s.Sample(rng)]
			}
		}
		return socSampler.Sample(rng)
	}

	// --- Edge generation --------------------------------------------------
	b := graph.NewBuilder(n)
	// mutual adjacency for triadic closure lookups; fan adjacency for the
	// copying mechanism
	mutual := make([][]int32, n)
	fanAdj := make([][]int32, n)
	addMutual := func(u, v int) {
		b.AddEdge(u, v)
		b.AddEdge(v, u)
		mutual[u] = append(mutual[u], int32(v))
		mutual[v] = append(mutual[v], int32(u))
	}
	hasMutual := func(u, v int) bool {
		row := mutual[u]
		if len(row) > len(mutual[v]) {
			row = mutual[v]
			u, v = v, u
		}
		for _, w := range row {
			if w == int32(v) {
				return true
			}
		}
		return false
	}
	for _, u := range active {
		if roles[u] != RoleRegular {
			continue
		}
		d := drawn[u]
		nMutual := int(math.Round(cfg.MutualFraction * float64(d)))
		if d >= 1 && nMutual < 1 {
			nMutual = 1
		}
		nFan := d - nMutual
		// Mutual pairs.
		for k := 0; k < nMutual; k++ {
			var v int
			found := false
			for attempt := 0; attempt < 8; attempt++ {
				if cfg.TriadicClosure > 0 && len(mutual[u]) > 0 && rng.Bool(cfg.TriadicClosure) {
					// friend-of-friend
					w := mutual[u][rng.Intn(len(mutual[u]))]
					if len(mutual[w]) == 0 {
						continue
					}
					v = int(mutual[w][rng.Intn(len(mutual[w]))])
				} else {
					v = sampleSoc(u)
				}
				if v != u && roles[v] == RoleRegular && !hasMutual(u, v) {
					found = true
					break
				}
			}
			if found {
				addMutual(u, v)
			}
		}
		// Fan edges: sample distinct targets (duplicates would collapse
		// in Build and compress the degree tail, steepening the fitted
		// exponent), with a bounded retry so hub saturation cannot
		// stall generation.
		var seen map[int32]bool
		if nFan > 32 {
			seen = make(map[int32]bool, nFan+len(mutual[u]))
			for _, w := range mutual[u] {
				seen[w] = true
			}
		}
		for k := 0; k < nFan; k++ {
			for attempt := 0; attempt < 16; attempt++ {
				var v int
				if cfg.CopyProb > 0 && len(mutual[u]) > 0 && rng.Bool(cfg.CopyProb) {
					// Copy a fan target from a mutual friend,
					// closing the triangle u–friend–target.
					w := mutual[u][rng.Intn(len(mutual[u]))]
					if len(fanAdj[w]) == 0 {
						v = sampleFame(u)
					} else {
						v = int(fanAdj[w][rng.Intn(len(fanAdj[w]))])
					}
				} else {
					v = sampleFame(u)
				}
				if v == u {
					continue
				}
				if seen != nil {
					if seen[int32(v)] {
						continue
					}
					seen[int32(v)] = true
				}
				b.AddEdge(u, v)
				fanAdj[u] = append(fanAdj[u], int32(v))
				break
			}
		}
	}
	g := b.Build()
	return &Result{Graph: g, Roles: roles, DrawnDegree: drawn, FameRank: fameRank}, nil
}

// Verified generates the calibrated verified-network instance at n nodes
// with the given seed.
func Verified(n int, seed uint64) (*Result, error) {
	cfg := VerifiedDefaults(n)
	cfg.Seed = seed
	return Generate(cfg)
}

// Twitter generates the generic-Twittersphere reference instance.
func Twitter(n int, seed uint64) (*Result, error) {
	cfg := TwitterDefaults(n)
	cfg.Seed = seed
	return Generate(cfg)
}

// --- Classic baselines ----------------------------------------------------

// ErdosRenyi generates a directed G(n, p) graph.
func ErdosRenyi(n int, p float64, seed uint64) *graph.Digraph {
	rng := mathx.NewRNG(seed)
	b := graph.NewBuilder(n)
	// Geometric skipping for sparse p.
	if p <= 0 {
		return b.Build()
	}
	if p >= 1 {
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v {
					b.AddEdge(u, v)
				}
			}
		}
		return b.Build()
	}
	logq := math.Log(1 - p)
	total := int64(n) * int64(n)
	var idx int64 = -1
	for {
		skip := int64(math.Floor(math.Log(rng.Float64Open()) / logq))
		idx += skip + 1
		if idx >= total {
			break
		}
		u := int(idx / int64(n))
		v := int(idx % int64(n))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// BarabasiAlbert generates a preferential-attachment graph: each new node
// attaches m directed edges to existing nodes chosen proportionally to
// in-degree+1, and each target links back with probability backP (0 gives a
// DAG, 1 an undirected-style BA graph).
func BarabasiAlbert(n, m int, backP float64, seed uint64) *graph.Digraph {
	if m < 1 {
		m = 1
	}
	rng := mathx.NewRNG(seed)
	b := graph.NewBuilder(n)
	// Repeated-nodes list trick: sampling uniformly from the target list
	// implements in-degree+1 preferential attachment.
	targets := make([]int32, 0, 2*n*m)
	for v := 0; v < n && v < m+1; v++ {
		targets = append(targets, int32(v))
	}
	for u := m + 1; u < n; u++ {
		seen := map[int32]bool{}
		for k := 0; k < m && len(seen) < u; k++ {
			var v int32
			for attempt := 0; attempt < 16; attempt++ {
				v = targets[rng.Intn(len(targets))]
				if int(v) != u && !seen[v] {
					break
				}
			}
			if int(v) == u || seen[v] {
				continue
			}
			seen[v] = true
			b.AddEdge(u, int(v))
			targets = append(targets, v)
			if backP > 0 && rng.Bool(backP) {
				b.AddEdge(int(v), u)
				targets = append(targets, int32(u))
			}
		}
		targets = append(targets, int32(u))
	}
	return b.Build()
}

// WattsStrogatz generates a directed small-world ring: each node points at
// its k nearest clockwise neighbors, each edge rewired to a uniform target
// with probability beta.
func WattsStrogatz(n, k int, beta float64, seed uint64) *graph.Digraph {
	rng := mathx.NewRNG(seed)
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for j := 1; j <= k; j++ {
			v := (u + j) % n
			if beta > 0 && rng.Bool(beta) {
				for attempt := 0; attempt < 8; attempt++ {
					w := rng.Intn(n)
					if w != u {
						v = w
						break
					}
				}
			}
			if v != u {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// ConfigurationModel generates a directed graph with (approximately) the
// given out- and in-degree sequences by random stub matching; parallel stubs
// collapse and self-loops drop, so heavy-tailed sequences lose a small
// fraction of edges. The sequences must have equal sums.
func ConfigurationModel(outDeg, inDeg []int, seed uint64) (*graph.Digraph, error) {
	if len(outDeg) != len(inDeg) {
		return nil, ErrConfig
	}
	var so, si int
	for _, d := range outDeg {
		if d < 0 {
			return nil, ErrConfig
		}
		so += d
	}
	for _, d := range inDeg {
		if d < 0 {
			return nil, ErrConfig
		}
		si += d
	}
	if so != si {
		return nil, ErrConfig
	}
	rng := mathx.NewRNG(seed)
	n := len(outDeg)
	outStubs := make([]int32, 0, so)
	inStubs := make([]int32, 0, si)
	for v := 0; v < n; v++ {
		for i := 0; i < outDeg[v]; i++ {
			outStubs = append(outStubs, int32(v))
		}
		for i := 0; i < inDeg[v]; i++ {
			inStubs = append(inStubs, int32(v))
		}
	}
	rng.Shuffle(len(inStubs), func(i, j int) {
		inStubs[i], inStubs[j] = inStubs[j], inStubs[i]
	})
	b := graph.NewBuilder(n)
	for i, u := range outStubs {
		v := inStubs[i]
		if u != v {
			b.AddEdge(int(u), int(v))
		}
	}
	return b.Build(), nil
}

// SortedOutDegrees returns the generated graph's out-degree sequence in
// descending order, a convenience for fingerprint reports.
func SortedOutDegrees(g *graph.Digraph) []int {
	deg := g.OutDegrees()
	sort.Sort(sort.Reverse(sort.IntSlice(deg)))
	return deg
}
