// Package powerlaw implements the Clauset–Shalizi–Newman (2009) framework
// for fitting and validating power-law models on empirical data, as used by
// the paper's §IV-B analysis of out-degree and Laplacian-eigenvalue
// distributions. It provides:
//
//   - maximum-likelihood estimation of the exponent α for discrete
//     (Hurwitz-zeta likelihood) and continuous (closed-form) power laws;
//   - selection of the lower cutoff xmin by minimizing the Kolmogorov–
//     Smirnov distance of the fitted tail;
//   - a semiparametric bootstrap goodness-of-fit p-value (p > 0.1 is the
//     conventional "plausible power law" threshold used in the paper),
//     with replicates running concurrently on the shared worker pool from
//     per-replicate derived RNG streams, so the p-value is bit-identical at
//     any worker count;
//   - Vuong likelihood-ratio comparisons against lognormal, exponential
//     and Poisson alternatives fitted to the same tail.
package powerlaw

import (
	"errors"
	"math"
	"sort"
	"strconv"

	"elites/internal/mathx"
	"elites/internal/parallel"
)

// ErrTooFewPoints indicates not enough tail data to fit (need >= 2 distinct
// values and >= MinTail observations above xmin).
var ErrTooFewPoints = errors.New("powerlaw: too few data points")

// Options configures fitting.
type Options struct {
	// MaxXminCandidates caps how many distinct values are scanned as xmin
	// candidates (log-spaced subsample when exceeded). 0 means 100.
	MaxXminCandidates int
	// MinTail is the minimum number of observations that must lie at or
	// above xmin for a candidate to be considered. 0 means 10.
	MinTail int
	// AlphaMax bounds the exponent search. 0 means 8.
	AlphaMax float64
	// FixedXmin, when > 0, skips the xmin scan and fits the tail at this
	// cutoff.
	FixedXmin float64
}

func (o *Options) defaults() Options {
	out := Options{MaxXminCandidates: 100, MinTail: 10, AlphaMax: 8}
	if o == nil {
		return out
	}
	if o.MaxXminCandidates > 0 {
		out.MaxXminCandidates = o.MaxXminCandidates
	}
	if o.MinTail > 0 {
		out.MinTail = o.MinTail
	}
	if o.AlphaMax > 1 {
		out.AlphaMax = o.AlphaMax
	}
	out.FixedXmin = o.FixedXmin
	return out
}

// Fit is a fitted power-law model p(x) ∝ x^−α for x ≥ Xmin.
type Fit struct {
	// Discrete records whether the discrete (integer support) or
	// continuous MLE was used.
	Discrete bool
	// Alpha is the density exponent estimate.
	Alpha float64
	// Xmin is the fitted lower cutoff of power-law behaviour.
	Xmin float64
	// KS is the Kolmogorov–Smirnov distance between the empirical tail
	// CDF and the fitted CDF.
	KS float64
	// NTail is the number of observations at or above Xmin.
	NTail int
	// N is the total number of observations supplied.
	N int
	// LogLik is the tail log-likelihood at the MLE.
	LogLik float64
	// AlphaStdErr is the asymptotic standard error (α−1)/√n_tail.
	AlphaStdErr float64

	sorted []float64 // full sorted data, ascending
	opts   Options
}

// Tail returns a copy of the observations at or above Xmin, ascending.
func (f *Fit) Tail() []float64 {
	i := sort.SearchFloat64s(f.sorted, f.Xmin)
	out := make([]float64, len(f.sorted)-i)
	copy(out, f.sorted[i:])
	return out
}

// FitDiscrete fits a discrete power law to integer-valued data (degrees,
// counts). Zero and negative values are ignored (a node of degree zero
// cannot participate in a power-law tail).
func FitDiscrete(xs []int, opts *Options) (*Fit, error) {
	data := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x > 0 {
			data = append(data, float64(x))
		}
	}
	return fit(data, true, opts.defaults())
}

// FitContinuous fits a continuous power law to positive real data
// (eigenvalues). Non-positive values are ignored.
func FitContinuous(xs []float64, opts *Options) (*Fit, error) {
	data := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x > 0 && !math.IsNaN(x) && !math.IsInf(x, 0) {
			data = append(data, x)
		}
	}
	return fit(data, false, opts.defaults())
}

func fit(data []float64, discrete bool, o Options) (*Fit, error) {
	if len(data) < o.MinTail {
		return nil, ErrTooFewPoints
	}
	sort.Float64s(data)
	candidates := xminCandidates(data, o)
	if len(candidates) == 0 {
		return nil, ErrTooFewPoints
	}
	best := &Fit{KS: math.Inf(1)}
	for _, xmin := range candidates {
		i := sort.SearchFloat64s(data, xmin)
		tail := data[i:]
		if len(tail) < o.MinTail {
			continue
		}
		var alpha, ll float64
		if discrete {
			alpha, ll = mleDiscrete(tail, xmin, o.AlphaMax)
		} else {
			alpha, ll = mleContinuous(tail, xmin)
		}
		if math.IsNaN(alpha) || alpha <= 1 {
			continue
		}
		ks := ksDistance(tail, xmin, alpha, discrete)
		if ks < best.KS {
			best = &Fit{
				Discrete: discrete,
				Alpha:    alpha,
				Xmin:     xmin,
				KS:       ks,
				NTail:    len(tail),
				N:        len(data),
				LogLik:   ll,
			}
		}
	}
	if math.IsInf(best.KS, 1) {
		return nil, ErrTooFewPoints
	}
	best.AlphaStdErr = (best.Alpha - 1) / math.Sqrt(float64(best.NTail))
	best.sorted = data
	best.opts = o
	return best, nil
}

// xminCandidates returns the distinct values to scan, log-subsampled down to
// the configured cap; a FixedXmin short-circuits the scan.
func xminCandidates(sorted []float64, o Options) []float64 {
	if o.FixedXmin > 0 {
		return []float64{o.FixedXmin}
	}
	uniq := make([]float64, 0, 256)
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			uniq = append(uniq, v)
		}
	}
	// Never use the largest values as xmin (tail would be tiny).
	if len(uniq) > 1 {
		uniq = uniq[:len(uniq)-1]
	}
	if len(uniq) <= o.MaxXminCandidates {
		return uniq
	}
	// Log-spaced subsample over the index range preserves resolution at
	// the small-x end where candidate density matters most.
	out := make([]float64, 0, o.MaxXminCandidates)
	last := -1
	for k := 0; k < o.MaxXminCandidates; k++ {
		f := float64(k) / float64(o.MaxXminCandidates-1)
		idx := int(math.Round(math.Pow(float64(len(uniq)-1), f)))
		if idx >= len(uniq) {
			idx = len(uniq) - 1
		}
		if idx != last {
			out = append(out, uniq[idx])
			last = idx
		}
	}
	return out
}

// mleContinuous returns the closed-form Hill estimator and log-likelihood
// for a continuous power law on [xmin, ∞).
func mleContinuous(tail []float64, xmin float64) (alpha, logLik float64) {
	n := float64(len(tail))
	s := 0.0
	for _, x := range tail {
		s += math.Log(x / xmin)
	}
	if s <= 0 {
		return math.NaN(), math.NaN()
	}
	alpha = 1 + n/s
	logLik = n*math.Log((alpha-1)/xmin) - alpha*s
	return alpha, logLik
}

// mleDiscrete maximizes the zeta likelihood with Brent's method.
func mleDiscrete(tail []float64, xmin, alphaMax float64) (alpha, logLik float64) {
	n := float64(len(tail))
	sumLog := 0.0
	for _, x := range tail {
		sumLog += math.Log(x)
	}
	neg := func(a float64) float64 {
		z := mathx.HurwitzZeta(a, xmin)
		if math.IsNaN(z) || z <= 0 {
			return math.Inf(1)
		}
		return n*math.Log(z) + a*sumLog
	}
	a, nll := mathx.MinimizeBrent(neg, 1.0001, alphaMax, 1e-8, 200)
	return a, -nll
}

// ksDistance computes the KS statistic between the empirical CDF of the tail
// (ascending) and the fitted model CDF.
func ksDistance(tail []float64, xmin, alpha float64, discrete bool) float64 {
	n := float64(len(tail))
	var zden float64
	if discrete {
		zden = mathx.HurwitzZeta(alpha, xmin)
	}
	d := 0.0
	for i := 0; i < len(tail); i++ {
		// Only evaluate at the last occurrence of a repeated value.
		if i+1 < len(tail) && tail[i+1] == tail[i] {
			continue
		}
		x := tail[i]
		var modelCDF float64
		if discrete {
			// P(X <= x) = 1 - ζ(α, x+1)/ζ(α, xmin)
			modelCDF = 1 - mathx.HurwitzZeta(alpha, x+1)/zden
		} else {
			modelCDF = 1 - math.Pow(x/xmin, 1-alpha)
		}
		empCDF := float64(i+1) / n
		if diff := math.Abs(empCDF - modelCDF); diff > d {
			d = diff
		}
	}
	return d
}

// CCDF returns the model complementary CDF P(X >= x) at x (x >= Xmin).
func (f *Fit) CCDF(x float64) float64 {
	if x < f.Xmin {
		return 1
	}
	if f.Discrete {
		return mathx.HurwitzZeta(f.Alpha, math.Ceil(x)) / mathx.HurwitzZeta(f.Alpha, f.Xmin)
	}
	return math.Pow(x/f.Xmin, 1-f.Alpha)
}

// GoodnessOfFit estimates the bootstrap p-value of the power-law hypothesis
// with B semiparametric replicates (Clauset et al. §4.1): each replicate
// draws below-xmin values from the empirical body and tail values from the
// fitted law, refits (including the xmin scan), and compares KS distances.
// p is the fraction of replicates whose KS exceeds the observed one; p > 0.1
// supports the power law. B = 100 gives ±0.05 resolution.
//
// Replicates run concurrently on the shared worker pool; see
// GoodnessOfFitWorkers for the determinism contract. Note that rng is used
// only as a key for derived streams and is never advanced: calling
// GoodnessOfFit twice with the same generator returns the same p-value.
// For a second independent estimate, pass a different generator (or Split).
func (f *Fit) GoodnessOfFit(B int, rng *mathx.RNG) float64 {
	return f.GoodnessOfFitWorkers(B, rng, 0)
}

// GoodnessOfFitWorkers is GoodnessOfFit with an explicit worker budget
// (<= 0 means GOMAXPROCS). Replicate b draws from its own RNG stream derived
// from rng as "gof/b" — rng itself is never advanced — so the p-value is a
// pure function of the fit, B and the rng state: bit-identical at every
// worker count and schedule, and unaffected by other consumers of rng.
func (f *Fit) GoodnessOfFitWorkers(B int, rng *mathx.RNG, workers int) float64 {
	if B <= 0 {
		B = 100
	}
	i := sort.SearchFloat64s(f.sorted, f.Xmin)
	body := f.sorted[:i]
	nTail := f.N - i
	pTail := float64(nTail) / float64(f.N)
	// One replicate per chunk: each refit dominates the Derive cost, and an
	// exceedance count is an integer, so any summation order is exact.
	parts := parallel.ChunkReduce(B, 1, workers, func(lo, hi int) int {
		exceed := 0
		for b := lo; b < hi; b++ {
			r := rng.Derive("gof/" + strconv.Itoa(b))
			data := make([]float64, f.N)
			for j := range data {
				if len(body) == 0 || r.Bool(pTail) {
					data[j] = f.sample(r)
				} else {
					data[j] = body[r.Intn(len(body))]
				}
			}
			ff, err := fit(data, f.Discrete, f.opts)
			if err != nil {
				continue
			}
			if ff.KS >= f.KS {
				exceed++
			}
		}
		return exceed
	})
	exceed := 0
	for _, p := range parts {
		exceed += p
	}
	return float64(exceed) / float64(B)
}

// sample draws one value from the fitted tail distribution.
func (f *Fit) sample(rng *mathx.RNG) float64 {
	if f.Discrete {
		return float64(rng.ParetoInt(int(f.Xmin), f.Alpha))
	}
	return rng.Pareto(f.Xmin, f.Alpha)
}
