// Package powerlaw implements the Clauset–Shalizi–Newman (2009) framework
// for fitting and validating power-law models on empirical data, as used by
// the paper's §IV-B analysis of out-degree and Laplacian-eigenvalue
// distributions. It provides:
//
//   - maximum-likelihood estimation of the exponent α for discrete
//     (Hurwitz-zeta likelihood) and continuous (closed-form) power laws;
//   - selection of the lower cutoff xmin by minimizing the Kolmogorov–
//     Smirnov distance of the fitted tail;
//   - a semiparametric bootstrap goodness-of-fit p-value (p > 0.1 is the
//     conventional "plausible power law" threshold used in the paper),
//     with replicates running concurrently on the shared worker pool from
//     per-replicate derived RNG streams, so the p-value is bit-identical at
//     any worker count;
//   - Vuong likelihood-ratio comparisons against lognormal, exponential
//     and Poisson alternatives fitted to the same tail.
//
// # The fast-path kernel and its numeric contract
//
// One fit scans up to MaxXminCandidates cutoffs over the sorted data; the
// kernel keeps that scan near-linear instead of O(candidates × tail):
//
//   - tail log-sums come from one precomputed suffix-sum pass — logSuf[i] =
//     Σ_{j≥i} ln data[j], accumulated from the largest value down — so every
//     candidate's continuous MLE and discrete Σ ln x are O(1) lookups;
//   - the discrete MLE's Brent search brackets warm around the closed-form
//     continuous estimate on xmin−½ (falling back to the full [1, AlphaMax]
//     range whenever the minimizer pins an interior bracket edge), and every
//     ζ(α, xmin) evaluation goes through a mathx.ZetaCache memo;
//   - the discrete KS statistic walks the tail's distinct values descending
//     through a mathx.ZetaLadder, paying one Euler–Maclaurin anchor per α
//     (plus re-anchors across gaps wider than mathx.ZetaLadderMaxStep)
//     instead of one per distinct value;
//   - bootstrap replicates refit through per-worker reusable scratch
//     (sample buffer, counting-sort path for bounded integer replicates,
//     candidate and suffix-sum buffers, allocation-free derived RNG
//     streams), so the steady-state replicate path allocates nothing.
//
// These choices fix the kernel's floating-point semantics: tail log-sums
// are right-to-left (descending-index) sums, and discrete model CDFs are
// ladder walks anchored per the rule above. The test-only reference
// implementation (reference_test.go) restates the same contract naively —
// recomputing everything per candidate with fresh allocations — and the
// equivalence tests assert the two agree bit for bit, which pins every
// reuse and indexing shortcut in this file.
package powerlaw

import (
	"errors"
	"math"
	"slices"
	"sort"
	"strconv"
	"sync"

	"elites/internal/mathx"
	"elites/internal/parallel"
)

// ErrTooFewPoints indicates not enough tail data to fit (need >= 2 distinct
// values and >= MinTail observations above xmin).
var ErrTooFewPoints = errors.New("powerlaw: too few data points")

// Options configures fitting.
type Options struct {
	// MaxXminCandidates caps how many distinct values are scanned as xmin
	// candidates (log-spaced subsample when exceeded). 0 means 100.
	MaxXminCandidates int
	// MinTail is the minimum number of observations that must lie at or
	// above xmin for a candidate to be considered. 0 means 10.
	MinTail int
	// AlphaMax bounds the exponent search. 0 means 8.
	AlphaMax float64
	// FixedXmin, when > 0, skips the xmin scan and fits the tail at this
	// cutoff.
	FixedXmin float64
}

func (o *Options) defaults() Options {
	out := Options{MaxXminCandidates: 100, MinTail: 10, AlphaMax: 8}
	if o == nil {
		return out
	}
	if o.MaxXminCandidates > 0 {
		out.MaxXminCandidates = o.MaxXminCandidates
	}
	if o.MinTail > 0 {
		out.MinTail = o.MinTail
	}
	if o.AlphaMax > 1 {
		out.AlphaMax = o.AlphaMax
	}
	out.FixedXmin = o.FixedXmin
	return out
}

// Fit is a fitted power-law model p(x) ∝ x^−α for x ≥ Xmin.
type Fit struct {
	// Discrete records whether the discrete (integer support) or
	// continuous MLE was used.
	Discrete bool
	// Alpha is the density exponent estimate.
	Alpha float64
	// Xmin is the fitted lower cutoff of power-law behaviour.
	Xmin float64
	// KS is the Kolmogorov–Smirnov distance between the empirical tail
	// CDF and the fitted CDF.
	KS float64
	// NTail is the number of observations at or above Xmin.
	NTail int
	// N is the total number of observations supplied.
	N int
	// LogLik is the tail log-likelihood at the MLE.
	LogLik float64
	// AlphaStdErr is the asymptotic standard error (α−1)/√n_tail.
	AlphaStdErr float64

	sorted []float64 // full sorted data, ascending
	logSuf []float64 // suffix sums of ln(sorted): logSuf[i] = Σ_{j≥i} ln sorted[j]
	zden   float64   // ζ(Alpha, Xmin) for discrete fits (the CCDF denominator)
	opts   Options
}

// Tail returns a copy of the observations at or above Xmin, ascending.
func (f *Fit) Tail() []float64 {
	i := f.tailStart()
	out := make([]float64, len(f.sorted)-i)
	copy(out, f.sorted[i:])
	return out
}

// tailStart returns the index of the first observation at or above Xmin.
func (f *Fit) tailStart() int { return sort.SearchFloat64s(f.sorted, f.Xmin) }

// tailView returns the tail as a view into the fit's sorted data — no copy.
// Callers must not mutate it; it is how GoodnessOfFit and the Vuong
// comparisons share one tail instead of re-materializing it per use.
func (f *Fit) tailView() []float64 { return f.sorted[f.tailStart():] }

// tailLogSum returns Σ ln x over sorted[i:] from the precomputed suffix
// sums (recomputing on the fly only for fits built before the suffix pass
// existed, e.g. hand-constructed test values).
func (f *Fit) tailLogSum(i int) float64 {
	if f.logSuf != nil {
		return f.logSuf[i]
	}
	s := 0.0
	for j := len(f.sorted) - 1; j >= i; j-- {
		s += math.Log(f.sorted[j])
	}
	return s
}

// initDerived fills the unexported derived state (suffix log-sums, the
// discrete CCDF denominator) that EncodeTo deliberately does not persist:
// both are pure functions of the encoded fields, so hydrating a fit from
// the result cache recomputes them instead of storing redundant bytes.
func (f *Fit) initDerived() {
	n := len(f.sorted)
	f.logSuf = make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		f.logSuf[i] = f.logSuf[i+1] + math.Log(f.sorted[i])
	}
	if f.Discrete {
		f.zden = mathx.HurwitzZeta(f.Alpha, f.Xmin)
	}
}

// FitDiscrete fits a discrete power law to integer-valued data (degrees,
// counts). Zero and negative values are ignored (a node of degree zero
// cannot participate in a power-law tail).
func FitDiscrete(xs []int, opts *Options) (*Fit, error) {
	data := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x > 0 {
			data = append(data, float64(x))
		}
	}
	return fit(data, true, opts.defaults())
}

// FitContinuous fits a continuous power law to positive real data
// (eigenvalues). Non-positive values are ignored.
func FitContinuous(xs []float64, opts *Options) (*Fit, error) {
	data := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x > 0 && !math.IsNaN(x) && !math.IsInf(x, 0) {
			data = append(data, x)
		}
	}
	return fit(data, false, opts.defaults())
}

func fit(data []float64, discrete bool, o Options) (*Fit, error) {
	if len(data) < o.MinTail {
		return nil, ErrTooFewPoints
	}
	// slices.Sort (pdqsort, no interface boxing) — replicate data is
	// NaN-free by construction, so the order matches sort.Float64s.
	slices.Sort(data)
	var fc fitCore
	fc.prepare(data)
	res, err := fc.run(data, discrete, o)
	if err != nil {
		return nil, err
	}
	f := &Fit{
		Discrete:    discrete,
		Alpha:       res.alpha,
		Xmin:        res.xmin,
		KS:          res.ks,
		NTail:       res.nTail,
		N:           len(data),
		LogLik:      res.logLik,
		AlphaStdErr: (res.alpha - 1) / math.Sqrt(float64(res.nTail)),
		sorted:      data,
		logSuf:      fc.logSuf,
		opts:        o,
	}
	if discrete {
		f.zden = fc.zeta.Get(res.alpha, res.xmin)
	}
	return f, nil
}

// fitResult is the winning candidate of one xmin scan.
type fitResult struct {
	alpha, xmin, ks, logLik float64
	nTail                   int
}

// fitCore holds the reusable kernel state for one fit: the suffix log-sums,
// the distinct-value index, the candidate list and the zeta memo. The
// observed fit builds one on the stack; bootstrap replicates reuse one per
// worker scratch so the steady-state replicate path allocates nothing.
type fitCore struct {
	// logSuf[i] = Σ_{j≥i} ln data[j], accumulated descending (the kernel's
	// canonical log-sum order); logSuf[len(data)] = 0.
	logSuf []float64
	// distinct holds the last-occurrence index of each distinct value,
	// ascending. A tail starting at i owns exactly the suffix of entries
	// with index ≥ i, so every candidate shares one list.
	distinct []int
	// cand / candX are the xmin scan's candidate start indices and values.
	cand  []int
	candX []float64
	// zeta memoizes ζ(α, xmin) across the Brent search and the KS re-read.
	zeta mathx.ZetaCache
}

// prepare (re)builds the suffix log-sums and distinct-value index for
// sorted data, reusing buffer capacity.
func (fc *fitCore) prepare(data []float64) {
	n := len(data)
	if cap(fc.logSuf) < n+1 {
		fc.logSuf = make([]float64, n+1)
	}
	fc.logSuf = fc.logSuf[:n+1]
	fc.logSuf[n] = 0
	for i := n - 1; i >= 0; i-- {
		fc.logSuf[i] = fc.logSuf[i+1] + math.Log(data[i])
	}
	fc.distinct = fc.distinct[:0]
	for i := 0; i < n; i++ {
		if i+1 == n || data[i+1] != data[i] {
			fc.distinct = append(fc.distinct, i)
		}
	}
}

// candidates fills fc.cand/fc.candX with the xmin candidates to scan: every
// distinct value except the largest, log-subsampled down to the configured
// cap; a FixedXmin short-circuits the scan.
func (fc *fitCore) candidates(data []float64, o Options) {
	fc.cand = fc.cand[:0]
	fc.candX = fc.candX[:0]
	if o.FixedXmin > 0 {
		fc.cand = append(fc.cand, sort.SearchFloat64s(data, o.FixedXmin))
		fc.candX = append(fc.candX, o.FixedXmin)
		return
	}
	// Never use the largest value as xmin (tail would be tiny).
	m := len(fc.distinct)
	if m > 1 {
		m--
	}
	// first-occurrence index of the j-th distinct value.
	first := func(j int) int {
		if j == 0 {
			return 0
		}
		return fc.distinct[j-1] + 1
	}
	if m <= o.MaxXminCandidates {
		for j := 0; j < m; j++ {
			fc.cand = append(fc.cand, first(j))
			fc.candX = append(fc.candX, data[fc.distinct[j]])
		}
		return
	}
	// Log-spaced subsample over the index range preserves resolution at
	// the small-x end where candidate density matters most.
	last := -1
	for k := 0; k < o.MaxXminCandidates; k++ {
		f := float64(k) / float64(o.MaxXminCandidates-1)
		idx := int(math.Round(math.Pow(float64(m-1), f)))
		if idx >= m {
			idx = m - 1
		}
		if idx != last {
			fc.cand = append(fc.cand, first(idx))
			fc.candX = append(fc.candX, data[fc.distinct[idx]])
			last = idx
		}
	}
}

// run scans the candidates and returns the KS-minimizing fit.
func (fc *fitCore) run(data []float64, discrete bool, o Options) (fitResult, error) {
	fc.candidates(data, o)
	n := len(data)
	best := fitResult{ks: math.Inf(1)}
	for c := range fc.cand {
		i := fc.cand[c]
		xmin := fc.candX[c]
		nt := n - i
		if nt < o.MinTail {
			continue
		}
		var alpha, ll float64
		if discrete {
			alpha, ll = fc.mleDiscrete(i, nt, xmin, o.AlphaMax)
		} else {
			alpha, ll = fc.mleContinuous(i, nt, xmin)
		}
		if math.IsNaN(alpha) || alpha <= 1 {
			continue
		}
		ks := fc.ksDistance(data, i, nt, xmin, alpha, discrete)
		if ks < best.ks {
			best = fitResult{alpha: alpha, xmin: xmin, ks: ks, logLik: ll, nTail: nt}
		}
	}
	if math.IsInf(best.ks, 1) {
		return best, ErrTooFewPoints
	}
	return best, nil
}

// mleContinuous returns the closed-form Hill estimator and log-likelihood
// for a continuous power law on [xmin, ∞); the tail log-sum is an O(1)
// suffix-sum lookup.
func (fc *fitCore) mleContinuous(i, nt int, xmin float64) (alpha, logLik float64) {
	n := float64(nt)
	s := fc.logSuf[i] - n*math.Log(xmin)
	if s <= 0 {
		return math.NaN(), math.NaN()
	}
	alpha = 1 + n/s
	logLik = n*math.Log((alpha-1)/xmin) - alpha*s
	return alpha, logLik
}

// brentTol / brentIters are the α search tolerances (part of the kernel's
// numeric contract; the reference implementation uses the same values).
const (
	brentTol   = 1e-8
	brentIters = 200
	alphaFloor = 1.0001
	// brentWarmRadius is the half-width of the warm bracket around the
	// closed-form continuous estimate; brentEdge is the pin margin that
	// triggers the full-range fallback.
	brentWarmRadius = 1.5
	brentEdge       = 1e-6
)

// mleDiscrete maximizes the zeta likelihood with Brent's method, bracketing
// warm around the closed-form continuous estimate on xmin−½ (Clauset et
// al.'s eq. 3.7 approximation). If the minimizer lands pinned to an
// interior edge of the warm bracket, the search reruns over the full
// [alphaFloor, alphaMax] range, so warm-starting can never change which
// optimum is found — only how many ζ evaluations reaching it costs.
func (fc *fitCore) mleDiscrete(i, nt int, xmin, alphaMax float64) (alpha, logLik float64) {
	n := float64(nt)
	sumLog := fc.logSuf[i]
	neg := func(a float64) float64 {
		z := fc.zeta.Get(a, xmin)
		if math.IsNaN(z) || z <= 0 {
			return math.Inf(1)
		}
		return n*math.Log(z) + a*sumLog
	}
	lo, hi := alphaFloor, alphaMax
	if xmin > 0.5 {
		if s0 := sumLog - n*math.Log(xmin-0.5); s0 > 0 {
			a0 := 1 + n/s0
			wlo := math.Max(alphaFloor, a0-brentWarmRadius)
			whi := math.Min(alphaMax, a0+brentWarmRadius)
			if wlo < whi {
				lo, hi = wlo, whi
			}
		}
	}
	a, nll := mathx.MinimizeBrent(neg, lo, hi, brentTol, brentIters)
	if (a-lo < brentEdge && lo > alphaFloor) || (hi-a < brentEdge && hi < alphaMax) {
		a, nll = mathx.MinimizeBrent(neg, alphaFloor, alphaMax, brentTol, brentIters)
	}
	return a, -nll
}

// ksDistance computes the KS statistic between the empirical CDF of the
// tail starting at index i and the fitted model CDF, evaluated at the last
// occurrence of each distinct value. The discrete model CDF walks the
// distinct values descending through a zeta ladder — one Euler–Maclaurin
// anchor per α plus one pow per unit of support crossed — instead of one
// full zeta evaluation per distinct value.
func (fc *fitCore) ksDistance(data []float64, i, nt int, xmin, alpha float64, discrete bool) float64 {
	n := float64(nt)
	j0 := sort.SearchInts(fc.distinct, i)
	d := 0.0
	if discrete {
		zden := fc.zeta.Get(alpha, xmin)
		ladder := mathx.NewZetaLadder(alpha)
		for j := len(fc.distinct) - 1; j >= j0; j-- {
			pos := fc.distinct[j]
			x := data[pos]
			// P(X <= x) = 1 - ζ(α, x+1)/ζ(α, xmin)
			modelCDF := 1 - ladder.At(x+1)/zden
			empCDF := float64(pos-i+1) / n
			if diff := math.Abs(empCDF - modelCDF); diff > d {
				d = diff
			}
		}
		return d
	}
	for j := j0; j < len(fc.distinct); j++ {
		pos := fc.distinct[j]
		x := data[pos]
		modelCDF := 1 - math.Pow(x/xmin, 1-alpha)
		empCDF := float64(pos-i+1) / n
		if diff := math.Abs(empCDF - modelCDF); diff > d {
			d = diff
		}
	}
	return d
}

// CCDF returns the model complementary CDF P(X >= x) at x (x >= Xmin).
func (f *Fit) CCDF(x float64) float64 {
	if x < f.Xmin {
		return 1
	}
	if f.Discrete {
		zden := f.zden
		if zden == 0 { // hand-constructed fit; no precomputed denominator
			zden = mathx.HurwitzZeta(f.Alpha, f.Xmin)
		}
		return mathx.HurwitzZeta(f.Alpha, math.Ceil(x)) / zden
	}
	return math.Pow(x/f.Xmin, 1-f.Alpha)
}

// GoFResult reports one bootstrap goodness-of-fit estimate.
type GoFResult struct {
	// P is the p-value: the fraction of successfully refitted replicates
	// whose KS distance met or exceeded the observed fit's.
	P float64
	// B is the number of replicates attempted.
	B int
	// Exceed is the number of replicates with KS >= the observed KS.
	Exceed int
	// Dropped counts replicates whose refit failed (ErrTooFewPoints on a
	// degenerate resample). They are excluded from the denominator —
	// counting them as non-exceedances would silently bias P downward.
	Dropped int
}

// GoodnessOfFit estimates the bootstrap p-value of the power-law hypothesis
// with B semiparametric replicates (Clauset et al. §4.1): each replicate
// draws below-xmin values from the empirical body and tail values from the
// fitted law, refits (including the xmin scan), and compares KS distances.
// p is the fraction of replicates whose KS exceeds the observed one; p > 0.1
// supports the power law. B = 100 gives ±0.05 resolution.
//
// Replicates run concurrently on the shared worker pool; see
// GoodnessOfFitWorkers for the determinism contract. Note that rng is used
// only as a key for derived streams and is never advanced: calling
// GoodnessOfFit twice with the same generator returns the same p-value.
// For a second independent estimate, pass a different generator (or Split).
func (f *Fit) GoodnessOfFit(B int, rng *mathx.RNG) float64 {
	return f.Bootstrap(B, rng, 0).P
}

// GoodnessOfFitWorkers is GoodnessOfFit with an explicit worker budget
// (<= 0 means GOMAXPROCS). Replicate b draws from its own RNG stream derived
// from rng as "gof/b" — rng itself is never advanced — so the p-value is a
// pure function of the fit, B and the rng state: bit-identical at every
// worker count and schedule, and unaffected by other consumers of rng.
func (f *Fit) GoodnessOfFitWorkers(B int, rng *mathx.RNG, workers int) float64 {
	return f.Bootstrap(B, rng, workers).P
}

// Bootstrap runs the goodness-of-fit bootstrap and returns the full
// accounting: p-value, exceedance count and how many replicates were
// dropped because their refit failed. It shares GoodnessOfFitWorkers'
// determinism contract. Replicates refit through per-worker reusable
// scratch, so the steady-state path allocates nothing per replicate.
func (f *Fit) Bootstrap(B int, rng *mathx.RNG, workers int) GoFResult {
	if B <= 0 {
		B = 100
	}
	i := f.tailStart()
	body := f.sorted[:i]
	pTail := float64(f.N-i) / float64(f.N)
	type part struct{ exceed, dropped int }
	// One replicate per chunk: each refit dominates the Derive cost, and
	// exceedance/drop counts are integers, so any summation order is exact.
	parts := parallel.ChunkReduce(B, 1, workers, func(lo, hi int) part {
		sc := gofScratchPool.Get().(*gofScratch)
		var p part
		for b := lo; b < hi; b++ {
			ks, ok := f.replicateKS(b, rng, body, pTail, sc)
			if !ok {
				p.dropped++
				continue
			}
			if ks >= f.KS {
				p.exceed++
			}
		}
		gofScratchPool.Put(sc)
		return p
	})
	res := GoFResult{B: B}
	for _, p := range parts {
		res.Exceed += p.exceed
		res.Dropped += p.dropped
	}
	if den := res.B - res.Dropped; den > 0 {
		res.P = float64(res.Exceed) / float64(den)
	} else {
		res.P = math.NaN()
	}
	return res
}

// gofScratch is one worker's reusable bootstrap state. Everything a
// replicate touches lives here, so the steady-state replicate path performs
// zero heap allocations (guarded by TestReplicateSteadyStateAllocs).
type gofScratch struct {
	rng      mathx.RNG
	label    []byte
	data     []float64
	counts   []int32
	overflow []float64
	core     fitCore
}

var gofScratchPool = sync.Pool{New: func() any { return new(gofScratch) }}

// replicateKS draws and refits semiparametric replicate b, returning its KS
// distance (ok=false when the refit failed). The replicate is a pure
// function of (f, b, rng state): the derived stream, the draw order and the
// refit are all deterministic, so results are identical whichever worker's
// scratch runs it.
func (f *Fit) replicateKS(b int, rng *mathx.RNG, body []float64, pTail float64, sc *gofScratch) (float64, bool) {
	sc.label = append(sc.label[:0], "gof/"...)
	sc.label = strconv.AppendInt(sc.label, int64(b), 10)
	rng.DeriveInto(&sc.rng, sc.label)
	r := &sc.rng
	if cap(sc.data) < f.N {
		sc.data = make([]float64, f.N)
	}
	data := sc.data[:f.N]
	for j := range data {
		if len(body) == 0 || r.Bool(pTail) {
			data[j] = f.sample(r)
		} else {
			data[j] = body[r.Intn(len(body))]
		}
	}
	sc.sortReplicate(data, f.Discrete)
	sc.core.prepare(data)
	res, err := sc.core.run(data, f.Discrete, f.opts)
	if err != nil {
		return 0, false
	}
	return res.ks, true
}

// countingSortSpan bounds the counting-sort bucket array for discrete
// replicates: values below the span are bucket-counted, the rare larger
// draws (a heavy tail's extremes) go through a comparison sort of the tiny
// overflow slice. 64Ki buckets cover every realistic degree replicate while
// keeping the per-replicate reset walk trivial.
const countingSortSpan = 1 << 16

// sortReplicate sorts replicate data ascending: comparison sort for
// continuous data, counting sort for the bounded-integer bulk of discrete
// data. The output is the sorted multiset either way, so the choice of path
// can never change a fit.
func (sc *gofScratch) sortReplicate(data []float64, discrete bool) {
	if !discrete {
		slices.Sort(data)
		return
	}
	// Discrete replicates are positive integers by construction (empirical
	// body values and ParetoInt draws); verify before trusting truncation,
	// and fall back to the comparison sort if anything else shows up.
	for _, x := range data {
		if v := int(x); v <= 0 || float64(v) != x {
			slices.Sort(data)
			return
		}
	}
	if sc.counts == nil {
		sc.counts = make([]int32, countingSortSpan)
	}
	sc.overflow = sc.overflow[:0]
	minV, maxV := countingSortSpan, -1
	for _, x := range data {
		v := int(x)
		if v < countingSortSpan {
			sc.counts[v]++
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		} else {
			sc.overflow = append(sc.overflow, x)
		}
	}
	idx := 0
	for k := minV; k <= maxV; k++ {
		for c := sc.counts[k]; c > 0; c-- {
			data[idx] = float64(k)
			idx++
		}
		sc.counts[k] = 0
	}
	if len(sc.overflow) > 0 {
		// Every overflow value is >= countingSortSpan > every bucketed one.
		slices.Sort(sc.overflow)
		copy(data[idx:], sc.overflow)
	}
}

// sample draws one value from the fitted tail distribution.
func (f *Fit) sample(rng *mathx.RNG) float64 {
	if f.Discrete {
		return float64(rng.ParetoInt(int(f.Xmin), f.Alpha))
	}
	return rng.Pareto(f.Xmin, f.Alpha)
}
