package powerlaw

// Test-only reference implementation of the power-law kernel's numeric
// contract (see the package comment in fit.go). It computes exactly the
// same floating-point operations as the optimized kernel — descending tail
// log-sums, the warm-bracketed Brent search, the descending zeta-ladder
// walk for discrete model CDFs — but does everything the slow, obvious way:
// fresh allocations per candidate, per-candidate re-summation instead of
// suffix sums, binary search instead of shared distinct indices, comparison
// sort instead of counting sort, string-label Derive instead of scratch
// reuse. The equivalence tests assert the optimized kernel is bit-identical
// to this reference on fixed seeds, which pins every indexing and reuse
// shortcut in fit.go without freezing the (deliberately unspecified)
// last-ulp behaviour against unrelated refactors.

import (
	"math"
	"slices"
	"sort"
	"strconv"
	"testing"

	"elites/internal/mathx"
)

type refFit struct {
	alpha, xmin, ks, logLik float64
	nTail, n                int
}

// refSumLogDesc is the contract's canonical tail log-sum: a right-to-left
// (descending-index) sum.
func refSumLogDesc(tail []float64) float64 {
	s := 0.0
	for j := len(tail) - 1; j >= 0; j-- {
		s += math.Log(tail[j])
	}
	return s
}

func referenceFit(input []float64, discrete bool, o Options) (refFit, bool) {
	if len(input) < o.MinTail {
		return refFit{}, false
	}
	data := append([]float64(nil), input...)
	slices.Sort(data)
	// Candidate selection, restated naively.
	var candidates []float64
	if o.FixedXmin > 0 {
		candidates = []float64{o.FixedXmin}
	} else {
		var uniq []float64
		for i, v := range data {
			if i == 0 || v != data[i-1] {
				uniq = append(uniq, v)
			}
		}
		if len(uniq) > 1 {
			uniq = uniq[:len(uniq)-1]
		}
		if len(uniq) <= o.MaxXminCandidates {
			candidates = uniq
		} else {
			last := -1
			for k := 0; k < o.MaxXminCandidates; k++ {
				f := float64(k) / float64(o.MaxXminCandidates-1)
				idx := int(math.Round(math.Pow(float64(len(uniq)-1), f)))
				if idx >= len(uniq) {
					idx = len(uniq) - 1
				}
				if idx != last {
					candidates = append(candidates, uniq[idx])
					last = idx
				}
			}
		}
	}
	best := refFit{ks: math.Inf(1)}
	for _, xmin := range candidates {
		i := sort.SearchFloat64s(data, xmin)
		tail := data[i:]
		if len(tail) < o.MinTail {
			continue
		}
		var alpha, ll float64
		if discrete {
			alpha, ll = refMleDiscrete(tail, xmin, o.AlphaMax)
		} else {
			alpha, ll = refMleContinuous(tail, xmin)
		}
		if math.IsNaN(alpha) || alpha <= 1 {
			continue
		}
		ks := refKSDistance(tail, xmin, alpha, discrete)
		if ks < best.ks {
			best = refFit{alpha: alpha, xmin: xmin, ks: ks, logLik: ll, nTail: len(tail), n: len(data)}
		}
	}
	if math.IsInf(best.ks, 1) {
		return refFit{}, false
	}
	return best, true
}

func refMleContinuous(tail []float64, xmin float64) (alpha, logLik float64) {
	n := float64(len(tail))
	s := refSumLogDesc(tail) - n*math.Log(xmin)
	if s <= 0 {
		return math.NaN(), math.NaN()
	}
	alpha = 1 + n/s
	logLik = n*math.Log((alpha-1)/xmin) - alpha*s
	return alpha, logLik
}

func refMleDiscrete(tail []float64, xmin, alphaMax float64) (alpha, logLik float64) {
	n := float64(len(tail))
	sumLog := refSumLogDesc(tail)
	neg := func(a float64) float64 {
		z := mathx.HurwitzZeta(a, xmin)
		if math.IsNaN(z) || z <= 0 {
			return math.Inf(1)
		}
		return n*math.Log(z) + a*sumLog
	}
	// Same warm-bracket rule as the kernel (the shared constants are the
	// contract).
	lo, hi := alphaFloor, alphaMax
	if xmin > 0.5 {
		if s0 := sumLog - n*math.Log(xmin-0.5); s0 > 0 {
			a0 := 1 + n/s0
			wlo := math.Max(alphaFloor, a0-brentWarmRadius)
			whi := math.Min(alphaMax, a0+brentWarmRadius)
			if wlo < whi {
				lo, hi = wlo, whi
			}
		}
	}
	a, nll := mathx.MinimizeBrent(neg, lo, hi, brentTol, brentIters)
	if (a-lo < brentEdge && lo > alphaFloor) || (hi-a < brentEdge && hi < alphaMax) {
		a, nll = mathx.MinimizeBrent(neg, alphaFloor, alphaMax, brentTol, brentIters)
	}
	return a, -nll
}

func refKSDistance(tail []float64, xmin, alpha float64, discrete bool) float64 {
	n := float64(len(tail))
	d := 0.0
	if discrete {
		zden := mathx.HurwitzZeta(alpha, xmin)
		// The contract's descending ladder walk, restated inline: recur
		// ζ(α,q) = ζ(α,q+1) + q^−α across integer gaps up to
		// ZetaLadderMaxStep, re-anchor with HurwitzZeta beyond.
		var lastQ, lastZ float64
		valid := false
		zeta := func(q float64) float64 {
			if valid {
				gap := lastQ - q
				if gap == 0 {
					return lastZ
				}
				if gap > 0 && gap <= mathx.ZetaLadderMaxStep && gap == math.Trunc(gap) {
					z := lastZ
					qq := lastQ
					for i := 0; i < int(gap); i++ {
						qq--
						z += math.Pow(qq, -alpha)
					}
					lastQ, lastZ = q, z
					return z
				}
			}
			z := mathx.HurwitzZeta(alpha, q)
			lastQ, lastZ, valid = q, z, true
			return z
		}
		for i := len(tail) - 1; i >= 0; i-- {
			// Descending, the first index of a run of equal values we meet
			// is the run's last occurrence — skip the rest of the run.
			if i+1 < len(tail) && tail[i+1] == tail[i] {
				continue
			}
			modelCDF := 1 - zeta(tail[i]+1)/zden
			empCDF := float64(i+1) / n
			if diff := math.Abs(empCDF - modelCDF); diff > d {
				d = diff
			}
		}
		return d
	}
	for i := 0; i < len(tail); i++ {
		if i+1 < len(tail) && tail[i+1] == tail[i] {
			continue
		}
		modelCDF := 1 - math.Pow(tail[i]/xmin, 1-alpha)
		empCDF := float64(i+1) / n
		if diff := math.Abs(empCDF - modelCDF); diff > d {
			d = diff
		}
	}
	return d
}

// referenceBootstrap mirrors Bootstrap naively: fresh slices per replicate,
// string-label stream derivation, comparison sort, reference refit.
func referenceBootstrap(f *Fit, B int, rng *mathx.RNG) GoFResult {
	i := f.tailStart()
	body := f.sorted[:i]
	pTail := float64(f.N-i) / float64(f.N)
	res := GoFResult{B: B}
	for b := 0; b < B; b++ {
		r := rng.Derive("gof/" + strconv.Itoa(b))
		data := make([]float64, f.N)
		for j := range data {
			if len(body) == 0 || r.Bool(pTail) {
				data[j] = f.sample(r)
			} else {
				data[j] = body[r.Intn(len(body))]
			}
		}
		rf, ok := referenceFit(data, f.Discrete, f.opts)
		if !ok {
			res.Dropped++
			continue
		}
		if rf.ks >= f.KS {
			res.Exceed++
		}
	}
	if den := res.B - res.Dropped; den > 0 {
		res.P = float64(res.Exceed) / float64(den)
	} else {
		res.P = math.NaN()
	}
	return res
}

// referenceVuong mirrors compareAlternative with a copied tail and a naive
// descending tail log-sum instead of the fit's shared views.
func referenceVuong(f *Fit, alt Alternative) (*VuongResult, error) {
	tail := f.Tail()
	n := len(tail)
	if n < 3 {
		return nil, ErrTooFewPoints
	}
	plLL := make([]float64, n)
	if f.Discrete {
		lz := math.Log(mathx.HurwitzZeta(f.Alpha, f.Xmin))
		for i, x := range tail {
			plLL[i] = -f.Alpha*math.Log(x) - lz
		}
	} else {
		la := math.Log(f.Alpha - 1)
		lx := math.Log(f.Xmin)
		for i, x := range tail {
			plLL[i] = la - lx - f.Alpha*(math.Log(x)-lx)
		}
	}
	altLL, params, err := alternativeLogLik(tail, f.Xmin, refSumLogDesc(tail), alt, f.Discrete)
	if err != nil {
		return nil, err
	}
	var sum, sumSq float64
	for i := range plLL {
		d := plLL[i] - altLL[i]
		sum += d
		sumSq += d * d
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance <= 1e-18 {
		return nil, ErrDegenerate
	}
	stat := sum / (math.Sqrt(variance) * math.Sqrt(float64(n)))
	return &VuongResult{
		Alternative: alt,
		LogLikRatio: sum,
		Statistic:   stat,
		PValue:      2 * mathx.NormalSF(math.Abs(stat)),
		AltParams:   params,
	}, nil
}

// --- fixtures ----------------------------------------------------------------

// discreteMixture builds body-noise + power-law-tail integer data, the shape
// that exercises the full xmin scan.
func discreteMixture(seed uint64, n int) []int {
	rng := mathx.NewRNG(seed)
	out := make([]int, n)
	for i := range out {
		if i%3 == 0 {
			out[i] = 1 + rng.Intn(20)
		} else {
			out[i] = rng.ParetoInt(20, 2.5)
		}
	}
	return out
}

func continuousMixture(seed uint64, n int) []float64 {
	rng := mathx.NewRNG(seed)
	out := make([]float64, n)
	for i := range out {
		if i%3 == 0 {
			out[i] = 1 + 19*rng.Float64()
		} else {
			out[i] = rng.Pareto(20, 2.8)
		}
	}
	return out
}

func assertFitMatchesReference(t *testing.T, f *Fit, rf refFit) {
	t.Helper()
	if f.Alpha != rf.alpha {
		t.Errorf("Alpha %v != reference %v", f.Alpha, rf.alpha)
	}
	if f.Xmin != rf.xmin {
		t.Errorf("Xmin %v != reference %v", f.Xmin, rf.xmin)
	}
	if f.KS != rf.ks {
		t.Errorf("KS %v != reference %v", f.KS, rf.ks)
	}
	if f.LogLik != rf.logLik {
		t.Errorf("LogLik %v != reference %v", f.LogLik, rf.logLik)
	}
	if f.NTail != rf.nTail || f.N != rf.n {
		t.Errorf("NTail/N %d/%d != reference %d/%d", f.NTail, f.N, rf.nTail, rf.n)
	}
}

// --- equivalence tests -------------------------------------------------------

func TestFitMatchesReferenceDiscrete(t *testing.T) {
	cases := []struct {
		name string
		opts *Options
		data []int
	}{
		{"mixture full scan", nil, discreteMixture(101, 4000)},
		{"many distinct (log subsample)", nil, func() []int {
			rng := mathx.NewRNG(102)
			out := make([]int, 6000)
			for i := range out {
				out[i] = rng.ParetoInt(1, 2.2)
			}
			return out
		}()},
		{"few candidates", &Options{MaxXminCandidates: 15}, discreteMixture(103, 2000)},
		{"fixed xmin", &Options{FixedXmin: 20}, discreteMixture(104, 2000)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, err := FitDiscrete(tc.data, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			floats := make([]float64, 0, len(tc.data))
			for _, x := range tc.data {
				if x > 0 {
					floats = append(floats, float64(x))
				}
			}
			rf, ok := referenceFit(floats, true, tc.opts.defaults())
			if !ok {
				t.Fatal("reference fit failed where kernel succeeded")
			}
			assertFitMatchesReference(t, f, rf)
		})
	}
}

func TestFitMatchesReferenceContinuous(t *testing.T) {
	data := continuousMixture(201, 5000)
	f, err := FitContinuous(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	rf, ok := referenceFit(data, false, (*Options)(nil).defaults())
	if !ok {
		t.Fatal("reference fit failed where kernel succeeded")
	}
	assertFitMatchesReference(t, f, rf)
}

func TestBootstrapMatchesReference(t *testing.T) {
	const B = 20
	t.Run("discrete", func(t *testing.T) {
		f, err := FitDiscrete(discreteMixture(301, 1500), nil)
		if err != nil {
			t.Fatal(err)
		}
		base := mathx.NewRNG(31)
		want := referenceBootstrap(f, B, base)
		for _, workers := range []int{1, 4} {
			if got := f.Bootstrap(B, base, workers); got != want {
				t.Fatalf("workers=%d: Bootstrap %+v != reference %+v", workers, got, want)
			}
		}
	})
	t.Run("continuous", func(t *testing.T) {
		f, err := FitContinuous(continuousMixture(302, 1500), nil)
		if err != nil {
			t.Fatal(err)
		}
		base := mathx.NewRNG(33)
		want := referenceBootstrap(f, B, base)
		for _, workers := range []int{1, 4} {
			if got := f.Bootstrap(B, base, workers); got != want {
				t.Fatalf("workers=%d: Bootstrap %+v != reference %+v", workers, got, want)
			}
		}
	})
}

func TestVuongMatchesReference(t *testing.T) {
	fd, err := FitDiscrete(discreteMixture(401, 2500), nil)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := FitContinuous(continuousMixture(402, 2500), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []*Fit{fd, fc} {
		for _, alt := range []Alternative{AltLognormal, AltExponential, AltPoisson} {
			want, werr := referenceVuong(f, alt)
			got, gerr := f.CompareAlternative(alt)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("discrete=%v %v: err %v vs reference %v", f.Discrete, alt, gerr, werr)
			}
			if gerr != nil {
				continue
			}
			if got.LogLikRatio != want.LogLikRatio || got.Statistic != want.Statistic ||
				got.PValue != want.PValue || !slices.Equal(got.AltParams, want.AltParams) {
				t.Errorf("discrete=%v %v: %+v != reference %+v", f.Discrete, alt, got, want)
			}
		}
	}
}

// TestBootstrapDroppedReplicates forces degenerate replicates (a fixed xmin
// with a tiny tail, so many resamples land under MinTail) and checks the
// accounting: drops are counted, excluded from the denominator, identical
// to the reference and invariant across worker budgets.
func TestBootstrapDroppedReplicates(t *testing.T) {
	rng := mathx.NewRNG(55)
	data := make([]int, 30)
	for i := range data {
		if i < 25 {
			data[i] = 1 + rng.Intn(40)
		} else {
			data[i] = rng.ParetoInt(50, 2.5)
		}
	}
	f, err := FitDiscrete(data, &Options{FixedXmin: 50, MinTail: 5})
	if err != nil {
		t.Fatal(err)
	}
	base := mathx.NewRNG(7)
	const B = 40
	res := f.Bootstrap(B, base, 1)
	if res.Dropped == 0 {
		t.Fatal("expected dropped replicates on a 5-point tail; got none (weaken the fixture?)")
	}
	if res.B != B || res.Exceed > B-res.Dropped {
		t.Fatalf("inconsistent accounting: %+v", res)
	}
	if want := float64(res.Exceed) / float64(B-res.Dropped); res.P != want {
		t.Fatalf("P=%v, want Exceed/(B-Dropped)=%v", res.P, want)
	}
	if ref := referenceBootstrap(f, B, base); res != ref {
		t.Fatalf("Bootstrap %+v != reference %+v", res, ref)
	}
	for _, workers := range []int{4, 7} {
		if got := f.Bootstrap(B, base, workers); got != res {
			t.Fatalf("workers=%d: %+v != sequential %+v", workers, got, res)
		}
	}
}

// --- steady-state allocation guards ------------------------------------------

// TestReplicateSteadyStateAllocs pins the zero-alloc contract of the
// bootstrap replicate path: with a warmed per-worker scratch, a replicate
// performs no heap allocations — not for the sample buffer, the sort, the
// candidate scan, the zeta evaluations or the derived RNG stream.
func TestReplicateSteadyStateAllocs(t *testing.T) {
	run := func(t *testing.T, f *Fit) {
		i := f.tailStart()
		body := f.sorted[:i]
		pTail := float64(f.N-i) / float64(f.N)
		base := mathx.NewRNG(17)
		sc := new(gofScratch)
		for b := 0; b < 4; b++ { // warm every buffer the labels touch
			f.replicateKS(b, base, body, pTail, sc)
		}
		b := 0
		allocs := testing.AllocsPerRun(25, func() {
			f.replicateKS(b%4, base, body, pTail, sc)
			b++
		})
		if allocs != 0 {
			t.Fatalf("steady-state replicate allocates %.1f times per run, want 0", allocs)
		}
	}
	t.Run("discrete", func(t *testing.T) {
		f, err := FitDiscrete(discreteMixture(501, 1200), nil)
		if err != nil {
			t.Fatal(err)
		}
		run(t, f)
	})
	t.Run("continuous", func(t *testing.T) {
		f, err := FitContinuous(continuousMixture(502, 1200), nil)
		if err != nil {
			t.Fatal(err)
		}
		run(t, f)
	})
}
