package powerlaw

import (
	"errors"

	"elites/internal/cache"
)

// Codec for cached pipeline stages (internal/cache). A Fit round-trips
// completely — including the sorted data and fit options that back Tail,
// GoodnessOfFit and CompareAll — so a fit hydrated from the result cache is
// indistinguishable from a freshly computed one. Derived unexported state
// (the suffix log-sums and the discrete CCDF denominator) is deliberately
// not encoded: it is a pure function of the encoded fields and is
// recomputed by DecodeFitFrom, keeping cache entries minimal.

// ErrDecode reports a malformed Fit or VuongResult payload.
var ErrDecode = errors.New("powerlaw: malformed encoded fit")

// EncodeTo appends the fit's complete state to e.
func (f *Fit) EncodeTo(e *cache.Encoder) {
	e.Bool(f.Discrete)
	e.Float64(f.Alpha)
	e.Float64(f.Xmin)
	e.Float64(f.KS)
	e.Int(f.NTail)
	e.Int(f.N)
	e.Float64(f.LogLik)
	e.Float64(f.AlphaStdErr)
	e.Float64s(f.sorted)
	e.Int(f.opts.MaxXminCandidates)
	e.Int(f.opts.MinTail)
	e.Float64(f.opts.AlphaMax)
	e.Float64(f.opts.FixedXmin)
}

// DecodeFitFrom reads what EncodeTo wrote. The decoder's sticky error state
// is checked here, so callers sequencing several decodes can rely on the
// returned error.
func DecodeFitFrom(d *cache.Decoder) (*Fit, error) {
	f := &Fit{
		Discrete:    d.Bool(),
		Alpha:       d.Float64(),
		Xmin:        d.Float64(),
		KS:          d.Float64(),
		NTail:       d.Int(),
		N:           d.Int(),
		LogLik:      d.Float64(),
		AlphaStdErr: d.Float64(),
		sorted:      d.Float64s(),
	}
	f.opts = Options{
		MaxXminCandidates: d.Int(),
		MinTail:           d.Int(),
		AlphaMax:          d.Float64(),
		FixedXmin:         d.Float64(),
	}
	if d.Err() != nil {
		return nil, ErrDecode
	}
	f.initDerived()
	return f, nil
}

// EncodeTo appends the comparison outcome to e.
func (v *VuongResult) EncodeTo(e *cache.Encoder) {
	e.Int(int(v.Alternative))
	e.Float64(v.LogLikRatio)
	e.Float64(v.Statistic)
	e.Float64(v.PValue)
	e.Float64s(v.AltParams)
}

// DecodeVuongFrom reads what VuongResult.EncodeTo wrote.
func DecodeVuongFrom(d *cache.Decoder) (*VuongResult, error) {
	v := &VuongResult{
		Alternative: Alternative(d.Int()),
		LogLikRatio: d.Float64(),
		Statistic:   d.Float64(),
		PValue:      d.Float64(),
		AltParams:   d.Float64s(),
	}
	if d.Err() != nil {
		return nil, ErrDecode
	}
	return v, nil
}
