package powerlaw

import (
	"math"
	"testing"

	"elites/internal/mathx"
)

func TestContinuousRecoversAlpha(t *testing.T) {
	rng := mathx.NewRNG(1)
	for _, alpha := range []float64{2.0, 2.5, 3.18, 3.5} {
		data := make([]float64, 20000)
		for i := range data {
			data[i] = rng.Pareto(5, alpha)
		}
		fit, err := FitContinuous(data, &Options{FixedXmin: 5})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fit.Alpha-alpha) > 0.06 {
			t.Errorf("alpha = %v, want %v", fit.Alpha, alpha)
		}
		if fit.Discrete {
			t.Error("continuous fit flagged discrete")
		}
		if fit.NTail != len(data) {
			t.Errorf("NTail = %d", fit.NTail)
		}
	}
}

func TestDiscreteRecoversAlpha(t *testing.T) {
	rng := mathx.NewRNG(2)
	for _, alpha := range []float64{2.2, 3.24} {
		data := make([]int, 20000)
		for i := range data {
			data[i] = rng.ParetoInt(3, alpha)
		}
		fit, err := FitDiscrete(data, &Options{FixedXmin: 3})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fit.Alpha-alpha) > 0.1 {
			t.Errorf("alpha = %v, want %v", fit.Alpha, alpha)
		}
		if !fit.Discrete {
			t.Error("discrete fit not flagged")
		}
	}
}

func TestXminScanFindsCutoff(t *testing.T) {
	// Body: uniform noise in [1, 20); tail: Pareto from 20. The scan
	// should land near 20.
	rng := mathx.NewRNG(3)
	var data []float64
	for i := 0; i < 4000; i++ {
		data = append(data, 1+19*rng.Float64())
	}
	for i := 0; i < 6000; i++ {
		data = append(data, rng.Pareto(20, 2.8))
	}
	fit, err := FitContinuous(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Xmin < 12 || fit.Xmin > 30 {
		t.Errorf("xmin = %v, want near 20", fit.Xmin)
	}
	if math.Abs(fit.Alpha-2.8) > 0.25 {
		t.Errorf("alpha = %v, want ~2.8", fit.Alpha)
	}
}

func TestFitRejectsTinyData(t *testing.T) {
	if _, err := FitContinuous([]float64{1, 2, 3}, nil); err != ErrTooFewPoints {
		t.Fatalf("want ErrTooFewPoints, got %v", err)
	}
	if _, err := FitDiscrete([]int{0, 0, 0}, nil); err != ErrTooFewPoints {
		t.Fatalf("all non-positive: want ErrTooFewPoints, got %v", err)
	}
}

func TestFitIgnoresNonPositive(t *testing.T) {
	rng := mathx.NewRNG(4)
	data := []float64{-1, 0, math.NaN(), math.Inf(1)}
	for i := 0; i < 1000; i++ {
		data = append(data, rng.Pareto(2, 3))
	}
	fit, err := FitContinuous(data, &Options{FixedXmin: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fit.N != 1000 {
		t.Fatalf("N = %d, want 1000 (junk filtered)", fit.N)
	}
}

func TestKSDistanceSmallForTrueModel(t *testing.T) {
	rng := mathx.NewRNG(5)
	data := make([]float64, 10000)
	for i := range data {
		data[i] = rng.Pareto(1, 2.5)
	}
	fit, err := FitContinuous(data, &Options{FixedXmin: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Expected KS for a correct model ~ 0.5/sqrt(n) scale.
	if fit.KS > 0.03 {
		t.Errorf("KS = %v, too large for true model", fit.KS)
	}
}

func TestCCDFProperties(t *testing.T) {
	rng := mathx.NewRNG(6)
	data := make([]float64, 5000)
	for i := range data {
		data[i] = rng.Pareto(2, 3)
	}
	fit, _ := FitContinuous(data, &Options{FixedXmin: 2})
	if fit.CCDF(1) != 1 {
		t.Error("CCDF below xmin should be 1")
	}
	if v := fit.CCDF(2); math.Abs(v-1) > 1e-9 {
		t.Errorf("CCDF(xmin) = %v", v)
	}
	prev := 1.0
	for x := 2.0; x < 100; x *= 1.5 {
		v := fit.CCDF(x)
		if v > prev+1e-12 {
			t.Error("CCDF not monotone")
		}
		prev = v
	}
}

func TestGoodnessOfFitAcceptsTrueModel(t *testing.T) {
	rng := mathx.NewRNG(7)
	data := make([]int, 3000)
	for i := range data {
		data[i] = rng.ParetoInt(2, 2.6)
	}
	fit, err := FitDiscrete(data, &Options{MaxXminCandidates: 20})
	if err != nil {
		t.Fatal(err)
	}
	p := fit.GoodnessOfFit(60, rng)
	if p <= 0.1 {
		t.Errorf("GoF p = %v for true power-law data, want > 0.1", p)
	}
}

func TestGoodnessOfFitRejectsLognormal(t *testing.T) {
	// Strongly curved lognormal data should not look like a power law.
	rng := mathx.NewRNG(8)
	data := make([]float64, 5000)
	for i := range data {
		data[i] = rng.LogNormal(1.0, 0.3)
	}
	fit, err := FitContinuous(data, &Options{MaxXminCandidates: 25})
	if err != nil {
		// A failed fit is also an acceptable rejection.
		t.Skip("no fit at all on lognormal data")
	}
	p := fit.GoodnessOfFit(60, rng)
	// With σ=0.3 the body is strongly curved; the scan may rescue a tiny
	// tail, so accept either a small p or a small surviving tail.
	if p > 0.1 && fit.NTail > len(data)/4 {
		t.Errorf("GoF p = %v with NTail %d: lognormal accepted as power law", p, fit.NTail)
	}
}

func TestAlphaStdErr(t *testing.T) {
	rng := mathx.NewRNG(9)
	data := make([]float64, 10000)
	for i := range data {
		data[i] = rng.Pareto(1, 3)
	}
	fit, _ := FitContinuous(data, &Options{FixedXmin: 1})
	want := (fit.Alpha - 1) / math.Sqrt(float64(fit.NTail))
	if fit.AlphaStdErr != want {
		t.Errorf("stderr = %v, want %v", fit.AlphaStdErr, want)
	}
	if math.Abs(fit.Alpha-3) > 3*fit.AlphaStdErr+0.05 {
		t.Errorf("alpha %v more than 3 stderr from truth", fit.Alpha)
	}
}

func TestTailCopy(t *testing.T) {
	rng := mathx.NewRNG(10)
	data := make([]float64, 200)
	for i := range data {
		data[i] = rng.Pareto(1, 2.5)
	}
	fit, _ := FitContinuous(data, &Options{FixedXmin: 1, MinTail: 5})
	tail := fit.Tail()
	if len(tail) != fit.NTail {
		t.Fatalf("tail length %d != NTail %d", len(tail), fit.NTail)
	}
	tail[0] = -99 // must not corrupt the fit's internal state
	tail2 := fit.Tail()
	if tail2[0] == -99 {
		t.Fatal("Tail returned aliased storage")
	}
}

// TestGoodnessOfFitWorkerInvariance: the bootstrap p-value must be
// byte-identical at worker budgets 1, 4 and 7 — including B < workers —
// because every replicate draws from its own derived stream and exceedance
// counts are integers. Repeated calls with the same generator must also
// agree, since Derive never advances it.
func TestGoodnessOfFitWorkerInvariance(t *testing.T) {
	rng := mathx.NewRNG(11)
	data := make([]int, 800)
	for i := range data {
		data[i] = rng.ParetoInt(1, 2.4)
	}
	fit, err := FitDiscrete(data, &Options{MaxXminCandidates: 15})
	if err != nil {
		t.Fatal(err)
	}
	base := mathx.NewRNG(99)
	for _, B := range []int{3, 24} { // B=3 exercises replicates < workers
		ref := fit.GoodnessOfFitWorkers(B, base, 1)
		for _, workers := range []int{4, 7} {
			if got := fit.GoodnessOfFitWorkers(B, base, workers); got != ref {
				t.Fatalf("B=%d workers=%d: p=%v vs sequential %v", B, workers, got, ref)
			}
		}
		if again := fit.GoodnessOfFitWorkers(B, base, 3); again != ref {
			t.Fatalf("B=%d: repeat call p=%v vs %v (base generator advanced?)", B, again, ref)
		}
	}
}
