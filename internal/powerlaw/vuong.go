package powerlaw

import (
	"errors"
	"fmt"
	"math"

	"elites/internal/mathx"
)

// Alternative identifies a competing heavy- or thin-tailed model for the
// Vuong comparison.
type Alternative int

// Supported alternatives, the three the paper tests against.
const (
	AltLognormal Alternative = iota
	AltExponential
	AltPoisson
)

// String names the alternative.
func (a Alternative) String() string {
	switch a {
	case AltLognormal:
		return "lognormal"
	case AltExponential:
		return "exponential"
	case AltPoisson:
		return "poisson"
	}
	return fmt.Sprintf("Alternative(%d)", int(a))
}

// ErrDegenerate indicates the likelihood comparison is degenerate (zero
// variance of pointwise log-likelihood ratios).
var ErrDegenerate = errors.New("powerlaw: degenerate likelihood comparison")

// VuongResult reports a Vuong likelihood-ratio test between the fitted power
// law and an alternative distribution fitted to the same tail.
type VuongResult struct {
	Alternative Alternative
	// LogLikRatio is Σ (ln p_PL(x_i) − ln p_alt(x_i)); positive favours
	// the power law. The paper reports "2–3 digit" values for the
	// out-degree distribution.
	LogLikRatio float64
	// Statistic is the normalized Vuong statistic R/(σ√n), asymptotically
	// standard normal under the null of indistinguishable fits.
	Statistic float64
	// PValue is the two-sided p-value of the null.
	PValue float64
	// AltParams holds the fitted alternative's parameters for reporting:
	// lognormal (μ, σ); exponential (λ); Poisson (μ).
	AltParams []float64
}

// Favours reports which model the test prefers at the 0.05 level:
// +1 power law, −1 alternative, 0 inconclusive.
func (v *VuongResult) Favours() int {
	if v.PValue > 0.05 {
		return 0
	}
	if v.Statistic > 0 {
		return 1
	}
	return -1
}

// CompareAlternative fits the alternative to the tail of f (same xmin,
// truncated support) by maximum likelihood and runs the Vuong test.
func (f *Fit) CompareAlternative(alt Alternative) (*VuongResult, error) {
	return f.compareAlternative(f.tailView(), alt)
}

// compareAlternative is CompareAlternative over an already-materialized
// tail view, so CompareAll shares one view across all three alternatives
// instead of copying the tail per comparison. tail is read-only.
func (f *Fit) compareAlternative(tail []float64, alt Alternative) (*VuongResult, error) {
	n := len(tail)
	if n < 3 {
		return nil, ErrTooFewPoints
	}
	// Pointwise log-likelihoods under the fitted power law.
	plLL := make([]float64, n)
	if f.Discrete {
		lz := math.Log(mathx.HurwitzZeta(f.Alpha, f.Xmin))
		for i, x := range tail {
			plLL[i] = -f.Alpha*math.Log(x) - lz
		}
	} else {
		la := math.Log(f.Alpha - 1)
		lx := math.Log(f.Xmin)
		for i, x := range tail {
			plLL[i] = la - lx - f.Alpha*(math.Log(x)-lx)
		}
	}
	altLL, params, err := alternativeLogLik(tail, f.Xmin, f.tailLogSum(f.tailStart()), alt, f.Discrete)
	if err != nil {
		return nil, err
	}
	// Vuong statistic.
	var sum, sumSq float64
	for i := range plLL {
		d := plLL[i] - altLL[i]
		sum += d
		sumSq += d * d
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance <= 1e-18 {
		return nil, ErrDegenerate
	}
	stat := sum / (math.Sqrt(variance) * math.Sqrt(float64(n)))
	p := 2 * mathx.NormalSF(math.Abs(stat))
	return &VuongResult{
		Alternative: alt,
		LogLikRatio: sum,
		Statistic:   stat,
		PValue:      p,
		AltParams:   params,
	}, nil
}

// CompareAll runs the Vuong test against every supported alternative,
// returning results keyed in order lognormal, exponential, poisson.
// Degenerate comparisons are skipped. All three comparisons share one tail
// view into the fit's sorted data — the tail is never copied.
func (f *Fit) CompareAll() []*VuongResult {
	tail := f.tailView()
	var out []*VuongResult
	for _, alt := range []Alternative{AltLognormal, AltExponential, AltPoisson} {
		if r, err := f.compareAlternative(tail, alt); err == nil {
			out = append(out, r)
		}
	}
	return out
}

// alternativeLogLik fits the alternative distribution truncated to
// [xmin, ∞) and returns the pointwise log-likelihoods and parameters. For
// discrete data the alternatives are discretized (probability mass on the
// integer bins), matching Clauset et al.'s treatment — comparing a discrete
// pmf against a continuous density would systematically mis-score ties at
// small integers. sumLogTail is Σ ln x over the tail (the fit's suffix-sum
// view), which seeds the lognormal location estimate without another pass.
func alternativeLogLik(tail []float64, xmin, sumLogTail float64, alt Alternative, discrete bool) ([]float64, []float64, error) {
	n := len(tail)
	ll := make([]float64, n)
	switch alt {
	case AltExponential:
		if discrete {
			// Geometric-type pmf p(k) = (1−e^−λ)·e^{−λ(k−xmin)} on
			// {xmin, xmin+1, ...}; MLE λ = ln(1 + 1/mean(k−xmin)).
			mean := 0.0
			for _, x := range tail {
				mean += x - xmin
			}
			mean /= float64(n)
			if mean <= 0 {
				return nil, nil, ErrDegenerate
			}
			lambda := math.Log(1 + 1/mean)
			l1m := math.Log(1 - math.Exp(-lambda))
			for i, x := range tail {
				ll[i] = l1m - lambda*(x-xmin)
			}
			return ll, []float64{lambda}, nil
		}
		// Truncated exponential on [xmin, ∞): MLE λ = 1/(mean − xmin).
		mean := 0.0
		for _, x := range tail {
			mean += x
		}
		mean /= float64(n)
		if mean <= xmin {
			return nil, nil, ErrDegenerate
		}
		lambda := 1 / (mean - xmin)
		for i, x := range tail {
			ll[i] = math.Log(lambda) - lambda*(x-xmin)
		}
		return ll, []float64{lambda}, nil

	case AltLognormal:
		logs := make([]float64, n)
		for i, x := range tail {
			logs[i] = math.Log(x)
		}
		mu0 := sumLogTail / float64(n)
		var var0 float64
		for _, lx := range logs {
			var0 += (lx - mu0) * (lx - mu0)
		}
		sigma0 := math.Sqrt(var0/float64(n)) + 1e-3
		var neg func(p []float64) float64
		if discrete {
			// Discretized lognormal: p(k) ∝ Φ((ln(k+0.5)−μ)/σ) −
			// Φ((ln(k−0.5)−μ)/σ), normalized by the mass on
			// [xmin−0.5, ∞).
			lo := math.Log(xmin - 0.5)
			neg = func(p []float64) float64 {
				mu, sigma := p[0], p[1]
				if sigma <= 1e-6 {
					return math.Inf(1)
				}
				tailMass := mathx.NormalSF((lo - mu) / sigma)
				if tailMass <= 1e-300 {
					return math.Inf(1)
				}
				s := 0.0
				for _, x := range tail {
					pm := mathx.NormalCDF((math.Log(x+0.5)-mu)/sigma) -
						mathx.NormalCDF((math.Log(x-0.5)-mu)/sigma)
					if pm <= 1e-300 {
						return math.Inf(1)
					}
					s += math.Log(pm)
				}
				s -= float64(n) * math.Log(tailMass)
				return -s
			}
		} else {
			lxmin := math.Log(xmin)
			neg = func(p []float64) float64 {
				mu, sigma := p[0], p[1]
				if sigma <= 1e-6 {
					return math.Inf(1)
				}
				tailMass := mathx.NormalSF((lxmin - mu) / sigma)
				if tailMass <= 1e-300 {
					return math.Inf(1)
				}
				s := 0.0
				for _, lx := range logs {
					z := (lx - mu) / sigma
					s += -lx - math.Log(sigma) - 0.5*math.Log(2*math.Pi) - 0.5*z*z
				}
				s -= float64(n) * math.Log(tailMass)
				return -s
			}
		}
		best, _ := mathx.MinimizeNelderMead(neg,
			[]float64{mu0, sigma0}, []float64{1, 0.5}, 1e-12, 2000)
		mu, sigma := best[0], best[1]
		if sigma <= 0 {
			return nil, nil, ErrDegenerate
		}
		if discrete {
			lo := math.Log(xmin - 0.5)
			tailMass := mathx.NormalSF((lo - mu) / sigma)
			if tailMass <= 0 {
				return nil, nil, ErrDegenerate
			}
			lt := math.Log(tailMass)
			for i, x := range tail {
				pm := mathx.NormalCDF((math.Log(x+0.5)-mu)/sigma) -
					mathx.NormalCDF((math.Log(x-0.5)-mu)/sigma)
				if pm <= 1e-300 {
					pm = 1e-300
				}
				ll[i] = math.Log(pm) - lt
			}
			return ll, []float64{mu, sigma}, nil
		}
		tailMass := mathx.NormalSF((math.Log(xmin) - mu) / sigma)
		if tailMass <= 0 {
			return nil, nil, ErrDegenerate
		}
		lt := math.Log(tailMass)
		for i, x := range tail {
			ll[i] = mathx.LogNormalLogPDF(x, mu, sigma) - lt
		}
		return ll, []float64{mu, sigma}, nil

	case AltPoisson:
		if !discrete {
			return nil, nil, fmt.Errorf("powerlaw: poisson alternative requires discrete data")
		}
		// Truncated Poisson on {xmin, xmin+1, ...}: maximize
		// Σ ln pmf(x;μ) − n·ln P(X ≥ xmin) over μ with Brent.
		// P(X ≥ k) for Poisson(μ) equals the regularized lower
		// incomplete gamma P(k, μ).
		k := math.Ceil(xmin)
		mean := 0.0
		for _, x := range tail {
			mean += x
		}
		mean /= float64(n)
		neg := func(mu float64) float64 {
			if mu <= 0 {
				return math.Inf(1)
			}
			tailMass := mathx.GammaRegP(k, mu)
			if tailMass <= 1e-300 {
				return math.Inf(1)
			}
			s := 0.0
			for _, x := range tail {
				s += mathx.PoissonLogPMF(int(x), mu)
			}
			s -= float64(n) * math.Log(tailMass)
			return -s
		}
		lo := math.Max(mean/100, 1e-6)
		hi := mean * 3
		mu, _ := mathx.MinimizeBrent(neg, lo, hi, 1e-9, 300)
		tailMass := mathx.GammaRegP(k, mu)
		if tailMass <= 0 {
			return nil, nil, ErrDegenerate
		}
		lt := math.Log(tailMass)
		for i, x := range tail {
			ll[i] = mathx.PoissonLogPMF(int(x), mu) - lt
		}
		return ll, []float64{mu}, nil
	}
	return nil, nil, fmt.Errorf("powerlaw: unknown alternative %v", alt)
}
