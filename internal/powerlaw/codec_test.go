package powerlaw

import (
	"bytes"
	"testing"

	"elites/internal/cache"
	"elites/internal/mathx"
)

func TestFitCodecRoundTrip(t *testing.T) {
	rng := mathx.NewRNG(5)
	xs := make([]int, 3000)
	for i := range xs {
		xs[i] = rng.ParetoInt(1, 2.5)
	}
	fit, err := FitDiscrete(xs, nil)
	if err != nil {
		t.Fatal(err)
	}

	var e cache.Encoder
	fit.EncodeTo(&e)
	got, err := DecodeFitFrom(cache.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	if got.Discrete != fit.Discrete || got.Alpha != fit.Alpha || got.Xmin != fit.Xmin ||
		got.KS != fit.KS || got.NTail != fit.NTail || got.N != fit.N ||
		got.LogLik != fit.LogLik || got.AlphaStdErr != fit.AlphaStdErr {
		t.Fatalf("exported fields diverge: %+v vs %+v", got, fit)
	}
	// The unexported state must round-trip too: Tail, the bootstrap and the
	// Vuong comparisons all read it.
	a, b := fit.Tail(), got.Tail()
	if len(a) != len(b) {
		t.Fatalf("tail lengths diverge: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tail[%d]: %v vs %v", i, a[i], b[i])
		}
	}
	seed := mathx.NewRNG(77)
	if p1, p2 := fit.GoodnessOfFit(10, seed), got.GoodnessOfFit(10, seed); p1 != p2 {
		t.Fatalf("bootstrap diverges after round trip: %v vs %v", p1, p2)
	}
	v1, v2 := fit.CompareAll(), got.CompareAll()
	if len(v1) != len(v2) {
		t.Fatalf("CompareAll lengths diverge")
	}
	for i := range v1 {
		if v1[i].LogLikRatio != v2[i].LogLikRatio || v1[i].PValue != v2[i].PValue {
			t.Fatalf("Vuong diverges after round trip at %d", i)
		}
	}
}

func TestVuongCodecRoundTrip(t *testing.T) {
	v := &VuongResult{
		Alternative: AltExponential,
		LogLikRatio: 123.5,
		Statistic:   -2.25,
		PValue:      0.024,
		AltParams:   []float64{0.5},
	}
	var e cache.Encoder
	v.EncodeTo(&e)
	got, err := DecodeVuongFrom(cache.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Alternative != v.Alternative || got.LogLikRatio != v.LogLikRatio ||
		got.Statistic != v.Statistic || got.PValue != v.PValue ||
		len(got.AltParams) != 1 || got.AltParams[0] != 0.5 {
		t.Fatalf("round trip diverges: %+v", got)
	}
}

func TestFitCodecCorruption(t *testing.T) {
	rng := mathx.NewRNG(5)
	xs := make([]int, 500)
	for i := range xs {
		xs[i] = rng.ParetoInt(1, 2.5)
	}
	fit, err := FitDiscrete(xs, nil)
	if err != nil {
		t.Fatal(err)
	}
	var e cache.Encoder
	fit.EncodeTo(&e)
	full := e.Bytes()
	for _, cut := range []int{0, 1, 5, len(full) / 2, len(full) - 1} {
		if _, err := DecodeFitFrom(cache.NewDecoder(full[:cut])); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
	if _, err := DecodeFitFrom(cache.NewDecoder(bytes.Repeat([]byte{0xff}, 16))); err == nil {
		t.Fatal("garbage decoded cleanly")
	}
}
