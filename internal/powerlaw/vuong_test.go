package powerlaw

import (
	"math"
	"testing"

	"elites/internal/mathx"
)

func TestVuongFavoursPowerLawOnParetoData(t *testing.T) {
	rng := mathx.NewRNG(1)
	data := make([]int, 8000)
	for i := range data {
		data[i] = rng.ParetoInt(5, 2.8)
	}
	fit, err := FitDiscrete(data, &Options{FixedXmin: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, alt := range []Alternative{AltLognormal, AltExponential, AltPoisson} {
		res, err := fit.CompareAlternative(alt)
		if err != nil {
			t.Fatalf("%v: %v", alt, err)
		}
		// Exponential and Poisson should lose decisively; lognormal is
		// famously hard to distinguish from a power law, so only
		// require that it does not *significantly* beat the truth.
		if alt == AltLognormal {
			if res.Favours() == -1 {
				t.Errorf("lognormal significantly favoured on true power-law data (stat %.2f p %.3f)",
					res.Statistic, res.PValue)
			}
			continue
		}
		if res.LogLikRatio <= 0 {
			t.Errorf("%v: LLR = %v, want positive (favouring power law)", alt, res.LogLikRatio)
		}
		if res.Favours() != 1 {
			t.Errorf("%v: Favours() = %d (stat %.2f p %.3f), want 1",
				alt, res.Favours(), res.Statistic, res.PValue)
		}
	}
}

func TestVuongFavoursLognormalOnLognormalData(t *testing.T) {
	rng := mathx.NewRNG(2)
	data := make([]float64, 8000)
	for i := range data {
		data[i] = rng.LogNormal(2, 0.5)
	}
	fit, err := FitContinuous(data, &Options{FixedXmin: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fit.CompareAlternative(AltLognormal)
	if err != nil {
		t.Fatal(err)
	}
	if res.LogLikRatio >= 0 {
		t.Errorf("LLR = %v on lognormal data, want negative", res.LogLikRatio)
	}
	if res.Favours() != -1 {
		t.Errorf("Favours() = %d, want -1 (lognormal)", res.Favours())
	}
}

func TestVuongExponentialParamRecovery(t *testing.T) {
	// Shifted exponential data: λ should be recovered by the truncated
	// exponential MLE inside the comparison.
	rng := mathx.NewRNG(3)
	lambda := 0.4
	xmin := 10.0
	data := make([]float64, 6000)
	for i := range data {
		data[i] = xmin + rng.Exponential(lambda)
	}
	fit, err := FitContinuous(data, &Options{FixedXmin: xmin})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fit.CompareAlternative(AltExponential)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.AltParams[0]-lambda) > 0.03 {
		t.Errorf("λ = %v, want %v", res.AltParams[0], lambda)
	}
	if res.Favours() != -1 {
		t.Errorf("exponential data should favour exponential, got %d", res.Favours())
	}
}

func TestPoissonRequiresDiscrete(t *testing.T) {
	rng := mathx.NewRNG(4)
	data := make([]float64, 1000)
	for i := range data {
		data[i] = rng.Pareto(1, 3)
	}
	fit, _ := FitContinuous(data, &Options{FixedXmin: 1})
	if _, err := fit.CompareAlternative(AltPoisson); err == nil {
		t.Fatal("poisson on continuous data should error")
	}
}

func TestCompareAllReturnsResults(t *testing.T) {
	rng := mathx.NewRNG(5)
	data := make([]int, 4000)
	for i := range data {
		data[i] = rng.ParetoInt(2, 2.5)
	}
	fit, _ := FitDiscrete(data, &Options{FixedXmin: 2})
	results := fit.CompareAll()
	if len(results) != 3 {
		t.Fatalf("CompareAll returned %d results, want 3", len(results))
	}
	names := map[string]bool{}
	for _, r := range results {
		names[r.Alternative.String()] = true
	}
	if !names["lognormal"] || !names["exponential"] || !names["poisson"] {
		t.Fatalf("alternatives covered: %v", names)
	}
}

func TestAlternativeString(t *testing.T) {
	if AltLognormal.String() != "lognormal" ||
		AltExponential.String() != "exponential" ||
		AltPoisson.String() != "poisson" {
		t.Fatal("String names wrong")
	}
	if Alternative(99).String() == "" {
		t.Fatal("unknown alternative should still render")
	}
}
