package cache

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// newTestCache opens the (shared, per-directory) instance for dir; tests
// use unique t.TempDir() roots, so each starts with a cold memory tier, and
// exercise the disk tier via readFile or cache.Release.
func newTestCache(dir string) *Cache {
	c, err := New(dir)
	if err != nil {
		panic(err)
	}
	return c
}

func TestKeyString(t *testing.T) {
	k := Key{Stage: "distances", Version: 2, Dataset: 0xdead, Options: 0xbeef}
	want := "distances-v2-000000000000dead-000000000000beef"
	if got := k.String(); got != want {
		t.Fatalf("Key.String() = %q, want %q", got, want)
	}
}

func TestRoundTripMemoryAndDisk(t *testing.T) {
	dir := t.TempDir()
	c := newTestCache(dir)
	key := Key{Stage: "s", Version: 1, Dataset: 1, Options: 2}.String()
	payload := []byte("hello cached world")
	if _, ok := c.Get(key); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	c.Put(key, payload)
	got, ok := c.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("memory Get = %q, %v", got, ok)
	}
}

func TestNewSharesInstancePerDir(t *testing.T) {
	dir := t.TempDir()
	a := newTestCache(dir)
	b := newTestCache(dir)
	if a != b {
		t.Fatal("New returned distinct instances for one directory")
	}
	if _, err := New(""); err == nil {
		t.Fatal("New(\"\") should fail")
	}
}

func TestDiskSurvivesColdMemory(t *testing.T) {
	dir := t.TempDir()
	c := newTestCache(dir)
	key := Key{Stage: "deg", Version: 1, Dataset: 42, Options: 7}.String()
	payload := []byte{1, 2, 3, 4, 5}
	c.Put(key, payload)

	got, res := c.readFile(key)
	if res != diskOK || !bytes.Equal(got, payload) {
		t.Fatalf("readFile = %v, %v; want payload back", got, res)
	}
}

func TestCorruptedEntriesAreMisses(t *testing.T) {
	dir := t.TempDir()
	c := newTestCache(dir)
	key := Key{Stage: "x", Version: 1, Dataset: 3, Options: 4}.String()
	c.Put(key, []byte("payload-bytes-here"))
	path := c.path(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	corruptions := map[string]func() []byte{
		"truncated": func() []byte { return raw[:len(raw)/2] },
		"bad magic": func() []byte {
			b := append([]byte(nil), raw...)
			b[0] ^= 0xff
			return b
		},
		"flipped payload bit": func() []byte {
			b := append([]byte(nil), raw...)
			b[len(b)-12] ^= 0x01 // inside payload, before the checksum
			return b
		},
		"empty file": func() []byte { return nil },
	}
	for name, mk := range corruptions {
		if err := os.WriteFile(path, mk(), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, res := c.readFile(key); res == diskOK {
			t.Errorf("%s: corrupted entry served as a hit", name)
		}
	}

	// A wrong key echo (file moved under another name) must also miss.
	other := Key{Stage: "y", Version: 1, Dataset: 3, Options: 4}.String()
	if err := os.WriteFile(c.path(other), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, res := c.readFile(other); res == diskOK {
		t.Error("entry with mismatched key echo served as a hit")
	}
}

func TestLRUEviction(t *testing.T) {
	dir := t.TempDir()
	c := newTestCache(dir)
	c.SetMaxBytes(64) // tiny cap to force eviction
	big := bytes.Repeat([]byte{7}, 30)
	c.Put("a", big)
	c.Put("b", big)
	c.Get("a") // refresh a
	c.Put("c", big)
	c.mu.Lock()
	_, aIn := c.mem["a"]
	_, bIn := c.mem["b"]
	_, cIn := c.mem["c"]
	c.mu.Unlock()
	if !aIn || bIn || !cIn {
		t.Fatalf("LRU state a=%v b=%v c=%v, want a and c resident, b evicted", aIn, bIn, cIn)
	}
	// The evicted entry is still a hit via disk.
	if _, ok := c.Get("b"); !ok {
		t.Fatal("evicted entry lost from disk tier")
	}
	if s := c.Stats(); s.Evictions == 0 || s.MaxBytes != 64 {
		t.Fatalf("Stats = %+v, want evictions counted under the 64-byte cap", s)
	}
}

// TestSetMaxBytesShrinkEvictsImmediately: resizing below the resident set
// evicts LRU entries at once rather than waiting for the next Put, and a
// non-positive cap restores the default.
func TestSetMaxBytesShrinkEvictsImmediately(t *testing.T) {
	c := newTestCache(t.TempDir())
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte{1}, 100))
	}
	c.SetMaxBytes(150)
	s := c.Stats()
	if s.MemBytes > 150 || s.MemEntries != 1 || s.Evictions != 3 {
		t.Fatalf("after shrink: %+v", s)
	}
	c.SetMaxBytes(0)
	if s := c.Stats(); s.MaxBytes != DefaultMemBytes {
		t.Fatalf("cap after reset = %d, want default", s.MaxBytes)
	}
}

// TestConcurrentCachersSharedDir hammers one cache directory from two
// distinct Cacher instances (forced apart via Release, the way two server
// workers on separate registries would share a dir) plus the disk tier,
// under the race detector: every write must stay readable and untorn from
// both instances.
func TestConcurrentCachersSharedDir(t *testing.T) {
	dir := t.TempDir()
	a := newTestCache(dir)
	Release(dir)
	b := newTestCache(dir)
	defer Release(dir)
	if a == b {
		t.Fatal("want two distinct instances over one directory")
	}
	b.SetMaxBytes(1 << 10) // small cap so b also exercises eviction

	payload := func(k int) []byte {
		return bytes.Repeat([]byte{byte(k)}, 64+k)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		c := a
		if w%2 == 1 {
			c = b
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				k := (w + j) % 6
				key := fmt.Sprintf("shared-%d", k)
				c.Put(key, payload(k))
				if got, ok := c.Get(key); ok && !bytes.Equal(got, payload(k)) {
					t.Errorf("torn read on %s", key)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Whatever instance reads last, every key must be served (memory or
	// disk) with the exact bytes written.
	for k := 0; k < 6; k++ {
		key := fmt.Sprintf("shared-%d", k)
		for _, c := range []*Cache{a, b} {
			got, ok := c.Get(key)
			if !ok || !bytes.Equal(got, payload(k)) {
				t.Fatalf("key %s lost or torn (ok=%v)", key, ok)
			}
		}
	}
}

func TestConcurrentSameKey(t *testing.T) {
	dir := t.TempDir()
	c := newTestCache(dir)
	key := Key{Stage: "conc", Version: 1, Dataset: 9, Options: 9}.String()
	payload := bytes.Repeat([]byte{0xAB}, 512)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				c.Put(key, payload)
				if got, ok := c.Get(key); ok && !bytes.Equal(got, payload) {
					t.Error("torn read")
					return
				}
			}
		}()
	}
	wg.Wait()
	got, ok := c.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatal("payload lost after concurrent writes")
	}
	if _, err := os.Stat(c.path(key)); err != nil {
		t.Fatalf("disk entry missing: %v", err)
	}
	// No stray temp files left behind.
	matches, _ := filepath.Glob(filepath.Join(dir, "*.tmp*"))
	if len(matches) != 0 {
		t.Fatalf("leftover temp files: %v", matches)
	}
}

func TestPutOnUnwritableDirIsSilent(t *testing.T) {
	c := newTestCache(filepath.Join(t.TempDir(), "sub"))
	// Make the parent read-only so MkdirAll fails.
	if err := os.Chmod(filepath.Dir(c.dir), 0o555); err != nil {
		t.Skip("cannot chmod")
	}
	defer os.Chmod(filepath.Dir(c.dir), 0o755)
	c.Put("k", []byte("v")) // must not panic or error
	if _, ok := c.Get("k"); !ok {
		t.Fatal("memory tier should still serve the entry")
	}
}

func TestStats(t *testing.T) {
	c := newTestCache(t.TempDir())
	c.Get("missing")
	c.Put("k", []byte("v"))
	c.Get("k")
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 1 || s.MemEntries != 1 || s.MemBytes != 1 {
		t.Fatalf("Stats = %+v", s)
	}
}

func TestHasher(t *testing.T) {
	if HashWords(1, 2) == HashWords(2, 1) {
		t.Fatal("word order should matter")
	}
	h1 := NewHasher()
	h1.String("ab")
	h1.String("c")
	h2 := NewHasher()
	h2.String("a")
	h2.String("bc")
	if h1.Sum() == h2.Sum() {
		t.Fatal("length prefixing should separate string boundaries")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	var e Encoder
	e.Uvarint(300)
	e.Varint(-7)
	e.Int(123456)
	e.Bool(true)
	e.Bool(false)
	e.Float64(math.Pi)
	e.Float64(math.NaN())
	e.String("héllo")
	e.Float64s([]float64{1.5, -2.5, math.Inf(1)})
	e.Float64s(nil)

	d := NewDecoder(e.Bytes())
	if v := d.Uvarint(); v != 300 {
		t.Fatalf("Uvarint = %d", v)
	}
	if v := d.Varint(); v != -7 {
		t.Fatalf("Varint = %d", v)
	}
	if v := d.Int(); v != 123456 {
		t.Fatalf("Int = %d", v)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("Bool mismatch")
	}
	if v := d.Float64(); v != math.Pi {
		t.Fatalf("Float64 = %v", v)
	}
	if v := d.Float64(); !math.IsNaN(v) {
		t.Fatalf("NaN lost: %v", v)
	}
	if s := d.String(); s != "héllo" {
		t.Fatalf("String = %q", s)
	}
	xs := d.Float64s()
	if len(xs) != 3 || xs[0] != 1.5 || xs[1] != -2.5 || !math.IsInf(xs[2], 1) {
		t.Fatalf("Float64s = %v", xs)
	}
	if xs := d.Float64s(); xs != nil {
		t.Fatalf("empty Float64s = %v", xs)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestDecoderStickyErrors(t *testing.T) {
	// Truncations at every prefix of a valid payload must all surface as
	// ErrCorrupt (or decode cleanly for the full length), never panic.
	var e Encoder
	e.Uvarint(1 << 40)
	e.Float64(2.5)
	e.String("abcdef")
	e.Float64s([]float64{1, 2, 3})
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		d.Uvarint()
		d.Float64()
		_ = d.String()
		d.Float64s()
		if err := d.Finish(); err == nil {
			t.Fatalf("truncation at %d of %d decoded cleanly", cut, len(full))
		}
	}
	// A length prefix far beyond the buffer must fail, not allocate.
	var e2 Encoder
	e2.Uvarint(1 << 60) // claims 2^60 floats follow
	d := NewDecoder(e2.Bytes())
	if xs := d.Float64s(); xs != nil || d.Err() == nil {
		t.Fatal("oversized length prefix accepted")
	}
	// Trailing garbage is corruption.
	d2 := NewDecoder(append(full, 0x00))
	d2.Uvarint()
	d2.Float64()
	_ = d2.String()
	d2.Float64s()
	if err := d2.Finish(); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestGetMissesOnAbsentDir(t *testing.T) {
	c := newTestCache(filepath.Join(t.TempDir(), "never-created"))
	for i := 0; i < 3; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); ok {
			t.Fatal("hit on nonexistent directory")
		}
	}
}

func TestRelease(t *testing.T) {
	dir := t.TempDir()
	a := newTestCache(dir)
	a.Put("k", []byte("v"))
	Release(dir)
	b := newTestCache(dir)
	if a == b {
		t.Fatal("Release did not evict the registry entry")
	}
	// The fresh instance starts with a cold memory tier but still serves
	// the entry from disk.
	b.mu.Lock()
	resident := len(b.mem)
	b.mu.Unlock()
	if resident != 0 {
		t.Fatalf("fresh instance has %d resident entries", resident)
	}
	if got, ok := b.Get("k"); !ok || string(got) != "v" {
		t.Fatalf("disk entry lost across Release: %q %v", got, ok)
	}
	Release(filepath.Join(dir, "never-opened")) // no-op must not panic
}
