package cache

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"syscall"
	"testing"
)

// faultFS wraps osFS and fails selected operations, exercising the disk
// tier's I/O-error paths without a genuinely broken disk: EACCES on load,
// ENOSPC on store (rename), short writes, temp-file creation failure and
// rename failure.
type faultFS struct {
	osFS
	mu          sync.Mutex
	failRead    error // ReadFile returns this when set
	failMkdir   error
	failCreate  error
	failRename  error
	shortWrites bool // Write persists only half the buffer
	removed     int  // temp files cleaned up after a failure
}

func (f *faultFS) get(dst *error) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return *dst
}

func (f *faultFS) ReadFile(name string) ([]byte, error) {
	if err := f.get(&f.failRead); err != nil {
		return nil, err
	}
	return f.osFS.ReadFile(name)
}

func (f *faultFS) MkdirAll(dir string) error {
	if err := f.get(&f.failMkdir); err != nil {
		return err
	}
	return f.osFS.MkdirAll(dir)
}

func (f *faultFS) CreateTemp(dir, pattern string) (diskFile, error) {
	if err := f.get(&f.failCreate); err != nil {
		return nil, err
	}
	inner, err := f.osFS.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{diskFile: inner, fs: f}, nil
}

func (f *faultFS) Rename(o, n string) error {
	if err := f.get(&f.failRename); err != nil {
		return err
	}
	return f.osFS.Rename(o, n)
}

func (f *faultFS) Remove(name string) error {
	f.mu.Lock()
	f.removed++
	f.mu.Unlock()
	return f.osFS.Remove(name)
}

type faultFile struct {
	diskFile
	fs *faultFS
}

func (f *faultFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	short := f.fs.shortWrites
	f.fs.mu.Unlock()
	if short && len(p) > 1 {
		n, _ := f.diskFile.Write(p[:len(p)/2])
		return n, nil // a short write with a nil error, like a full pipe
	}
	return f.diskFile.Write(p)
}

// newFaultCache builds a cache on its own temp dir backed by a faultFS.
func newFaultCache(t *testing.T) (*Cache, *faultFS) {
	t.Helper()
	c := newTestCache(t.TempDir())
	fs := &faultFS{}
	c.fs = fs
	return c, fs
}

func TestReadErrorIsSilentMiss(t *testing.T) {
	c, fs := newFaultCache(t)
	c.Put("k", []byte("payload"))
	c.DropMemory()

	fs.failRead = syscall.EACCES
	if _, ok := c.Get("k"); ok {
		t.Fatal("EACCES read served as a hit")
	}
	s := c.Stats()
	if s.IOErrors != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 IO error counted as a miss", s)
	}

	// The entry is intact on disk: clearing the fault restores the hit.
	fs.failRead = nil
	if got, ok := c.Get("k"); !ok || !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("recovered Get = %q, %v", got, ok)
	}
}

func TestStoreFailuresLeaveNoPartialEntry(t *testing.T) {
	cases := []struct {
		name  string
		arm   func(fs *faultFS)
		wrote bool // temp file reached Remove cleanup
	}{
		{"enospc on rename", func(fs *faultFS) { fs.failRename = syscall.ENOSPC }, true},
		{"mkdir denied", func(fs *faultFS) { fs.failMkdir = syscall.EACCES }, false},
		{"createtemp denied", func(fs *faultFS) { fs.failCreate = syscall.EACCES }, false},
		{"short write", func(fs *faultFS) { fs.shortWrites = true }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, fs := newFaultCache(t)
			tc.arm(fs)
			c.Put("k", []byte("payload-bytes"))

			// The memory tier still serves the entry...
			if _, ok := c.Get("k"); !ok {
				t.Fatal("memory tier lost the entry")
			}
			// ...but nothing (whole or torn) reached the final disk name,
			// and any temp file was cleaned up.
			if _, err := os.Stat(c.path("k")); !os.IsNotExist(err) {
				t.Fatalf("final entry exists after %s (err=%v)", tc.name, err)
			}
			ents, _ := os.ReadDir(c.Dir())
			if len(ents) != 0 {
				t.Fatalf("%d stray files left in cache dir", len(ents))
			}
			if tc.wrote && fs.removed == 0 {
				t.Fatal("temp file was not removed after the failure")
			}
			if s := c.Stats(); s.IOErrors != 1 {
				t.Fatalf("IOErrors = %d, want 1", s.IOErrors)
			}
		})
	}
}

func TestBreakerTripsAndRecovers(t *testing.T) {
	c, fs := newFaultCache(t)
	fs.failRead = syscall.EIO

	// breakerTripAfter consecutive failures open the breaker.
	for i := 0; i < breakerTripAfter; i++ {
		c.Get(fmt.Sprintf("k%d", i))
	}
	s := c.Stats()
	if !s.BreakerOpen || s.BreakerTrips != 1 || s.IOErrors != uint64(breakerTripAfter) {
		t.Fatalf("after %d failures: %+v, want open breaker", breakerTripAfter, s)
	}

	// While open, disk is not touched: the fault stays armed but IOErrors
	// must not advance for breakerProbeAfter-1 skipped operations.
	for i := 0; i < breakerProbeAfter-1; i++ {
		c.Get("skipped")
	}
	if s = c.Stats(); s.IOErrors != uint64(breakerTripAfter) {
		t.Fatalf("breaker leaked %d disk ops while open", s.IOErrors-uint64(breakerTripAfter))
	}

	// The next operation is the half-open probe; it still fails, so the
	// breaker stays open without re-tripping.
	c.Get("probe")
	if s = c.Stats(); s.IOErrors != uint64(breakerTripAfter)+1 || !s.BreakerOpen || s.BreakerTrips != 1 {
		t.Fatalf("failed probe: %+v", s)
	}

	// Clear the fault: the next probe succeeds and closes the breaker.
	fs.mu.Lock()
	fs.failRead = nil
	fs.mu.Unlock()
	for i := 0; i < breakerProbeAfter; i++ {
		c.Get("recovering")
	}
	if s = c.Stats(); s.BreakerOpen {
		t.Fatalf("breaker still open after a clean probe: %+v", s)
	}

	// Fully closed: writes flow to disk again.
	c.Put("fresh", []byte("data"))
	c.DropMemory()
	if _, ok := c.Get("fresh"); !ok {
		t.Fatal("post-recovery write did not persist")
	}
}

// TestBreakerRecoveryRestoresHits: an entry persisted before the disk
// fails must come back as a hit — with its original bytes — within one
// probe window (breakerProbeAfter operations) of the filesystem healing.
// This is the contract the serving layer's degraded mode leans on: a trip
// is an episode, not a permanent demotion to cold reads.
func TestBreakerRecoveryRestoresHits(t *testing.T) {
	c, fs := newFaultCache(t)
	payload := []byte("survives the outage")
	c.Put("k", payload)
	c.DropMemory() // only the disk tier has it now

	// Trip the breaker with consecutive read failures.
	fs.mu.Lock()
	fs.failRead = syscall.EIO
	fs.mu.Unlock()
	for i := 0; i < breakerTripAfter; i++ {
		if _, ok := c.Get("k"); ok {
			t.Fatal("Get hit through an EIO disk")
		}
	}
	if s := c.Stats(); !s.BreakerOpen || s.BreakerTrips != 1 {
		t.Fatalf("breaker not open after %d failures: %+v", breakerTripAfter, s)
	}

	// Heal the filesystem. The entry must be served again within one probe
	// window: the next half-open probe reads it, succeeds, and closes the
	// breaker.
	fs.mu.Lock()
	fs.failRead = nil
	fs.mu.Unlock()
	recovered := false
	for i := 0; i < breakerProbeAfter; i++ {
		if got, ok := c.Get("k"); ok {
			if !bytes.Equal(got, payload) {
				t.Fatalf("recovered entry = %q, want %q", got, payload)
			}
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatalf("no hit within %d operations of the disk healing", breakerProbeAfter)
	}
	if s := c.Stats(); s.BreakerOpen {
		t.Fatalf("breaker still open after successful probe: %+v", s)
	}

	// And it keeps hitting — memory tier re-primed by the recovery read.
	if _, ok := c.Get("k"); !ok {
		t.Fatal("hit did not stick after recovery")
	}
}

func TestInjectedFaultHookCountsAsIOError(t *testing.T) {
	c := newTestCache(t.TempDir())
	c.Put("k", []byte("payload"))
	c.DropMemory()

	c.SetFaults(func(op string) error {
		if op == "read" {
			return syscall.EIO
		}
		return nil
	})
	if _, ok := c.Get("k"); ok {
		t.Fatal("injected read fault served as a hit")
	}
	if s := c.Stats(); s.IOErrors != 1 {
		t.Fatalf("IOErrors = %d, want 1", s.IOErrors)
	}

	// "store" faults fire after the temp write, before rename: the final
	// name must never appear.
	c.SetFaults(func(op string) error {
		if op == "store" {
			return syscall.ENOSPC
		}
		return nil
	})
	c.Put("k2", []byte("second"))
	if _, err := os.Stat(c.path("k2")); !os.IsNotExist(err) {
		t.Fatal("store fault did not prevent the rename")
	}

	c.SetFaults(nil)
	if _, ok := c.Get("k"); !ok {
		t.Fatal("unhooked cache did not recover")
	}
}
