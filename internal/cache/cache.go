// Package cache is a content-addressed, two-tier result cache for pipeline
// stage outputs. Keys identify a result by what produced it — the dataset
// digest, a digest of the options that affect the stage, the stage name and
// a stage codec version — so a hit is valid by construction and there is no
// invalidation protocol: change anything that matters and the key changes.
//
// The two tiers are an in-process LRU of encoded payloads (shared between
// every Cache opened on the same directory, so repeated runs in one process
// skip the disk entirely) and an on-disk store of one self-describing binary
// file per key:
//
//	<dir>/<stage>-v<version>-<dataset digest>-<options digest>.bin
//	  magic "ELCA" · format version · key echo · payload · FNV-64a checksum
//
// Reads are paranoid — a missing file, bad magic, short payload, key
// mismatch or checksum failure is reported as a miss, never an error, so a
// corrupted cache silently degrades to recomputation. Writes go through a
// temp file and an atomic rename, so concurrent writers of the same key
// (identical content by construction) cannot tear each other's files.
//
// The same silent-miss contract covers I/O failure, not just corruption: a
// disk that errors on read or write (EACCES, ENOSPC, short writes, rename
// failure) costs a recomputation, never a report. Consecutive I/O errors
// trip a per-cache circuit breaker that stops touching the failing disk —
// the memory tier keeps serving — and periodically lets one half-open probe
// through; a probe that succeeds closes the breaker. Stats surfaces the
// error count and breaker state.
package cache

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"
)

// Key names one cached stage result. All four fields participate in the
// content address: Dataset is the dataset digest, Options a digest of every
// option that changes the stage's output (never of options that provably do
// not, like worker budgets), and Version the stage's codec/algorithm
// version — bump it when the encoding or the computation changes.
type Key struct {
	Stage   string
	Version int
	Dataset uint64
	Options uint64
}

// String renders the key in its canonical (and filesystem-safe) form.
func (k Key) String() string {
	return fmt.Sprintf("%s-v%d-%016x-%016x", k.Stage, k.Version, k.Dataset, k.Options)
}

// FNV-64a, the digest used for key derivation and payload checksums.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// Hasher accumulates a 64-bit content digest over typed values: FNV-64a
// byte folds for raw bytes and strings, one SplitMix64-style avalanche per
// 64-bit word (Word/Float64) so bulk numeric data hashes at word speed.
// The zero value is not ready; use NewHasher.
type Hasher struct{ h uint64 }

// NewHasher returns a ready Hasher.
func NewHasher() *Hasher { return &Hasher{h: fnvOffset} }

// Byte folds one byte into the digest.
func (h *Hasher) Byte(b byte) {
	h.h = (h.h ^ uint64(b)) * fnvPrime
}

// Word folds a 64-bit value into the digest with one SplitMix64-style
// avalanche per word (three multiply/shift rounds) rather than eight
// dependent byte folds — this is what keeps hashing a paper-scale CSR array
// (79M edges) in the hundreds of milliseconds instead of seconds.
func (h *Hasher) Word(v uint64) {
	x := h.h ^ v
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	h.h = x ^ (x >> 31)
}

// Float64 folds the raw IEEE-754 bits into the digest.
func (h *Hasher) Float64(v float64) { h.Word(math.Float64bits(v)) }

// String folds a length-prefixed string into the digest (length-prefixing
// keeps "ab"+"c" distinct from "a"+"bc").
func (h *Hasher) String(s string) {
	h.Word(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h.Byte(s[i])
	}
}

// Bytes folds a length-prefixed byte slice into the digest.
func (h *Hasher) Bytes(b []byte) {
	h.Word(uint64(len(b)))
	for _, c := range b {
		h.Byte(c)
	}
}

// Sum returns the digest of everything folded so far.
func (h *Hasher) Sum() uint64 { return h.h }

// HashWords digests a sequence of 64-bit words — the convenience form for
// option digests.
func HashWords(words ...uint64) uint64 {
	h := NewHasher()
	for _, w := range words {
		h.Word(w)
	}
	return h.Sum()
}

// checksum is the payload FNV-64a used by the disk format (raw bytes, no
// length prefix — the payload length is framed separately).
func checksum(data []byte) uint64 {
	h := NewHasher()
	for _, b := range data {
		h.Byte(b)
	}
	return h.Sum()
}

// Stats counts cache traffic since the process started.
type Stats struct {
	Hits         uint64 // memory or disk hits
	Misses       uint64
	Evictions    uint64 // memory-tier entries dropped to stay under the cap
	MemEntries   int
	MemBytes     int64
	MaxBytes     int64  // current memory-tier capacity
	IOErrors     uint64 // disk operations that failed with a real I/O error
	BreakerTrips uint64 // times the disk circuit breaker opened
	BreakerOpen  bool   // disk circuit breaker currently open
}

// DefaultMemBytes caps the in-memory tier per cache instance.
const DefaultMemBytes = 256 << 20

// Cache is one two-tier result cache. Obtain instances with New; all
// methods are safe for concurrent use.
type Cache struct {
	dir string

	mu        sync.Mutex
	mem       map[string]*list.Element
	lru       *list.List // front = most recent; values are *entry
	memBytes  int64
	maxBytes  int64
	hits      uint64
	misses    uint64
	evictions uint64

	fs     diskFS                // disk tier backend; osFS outside tests
	faults func(op string) error // optional injection hook (SetFaults)
	io     breaker               // disk-tier circuit breaker + error counters
}

// breaker tracks disk-tier health: consecutive I/O errors trip it open, and
// while open the cache skips disk entirely except for a periodic half-open
// probe. A successful disk operation (including a clean miss) closes it.
// Guarded by Cache.mu.
type breaker struct {
	errors uint64 // lifetime I/O error count (Stats.IOErrors)
	consec int    // consecutive I/O errors since the last success
	open   bool
	skips  int    // disk ops skipped while open, for probe cadence
	trips  uint64 // lifetime open transitions (Stats.BreakerTrips)
}

// Breaker thresholds: trip after breakerTripAfter consecutive I/O errors;
// while open, let every breakerProbeAfter-th skipped operation through as a
// half-open probe.
const (
	breakerTripAfter  = 3
	breakerProbeAfter = 8
)

// diskResult classifies one disk-tier operation for the breaker.
type diskResult int

const (
	diskOK      diskResult = iota // operation succeeded
	diskMiss                      // clean miss (absent or corrupt entry) — the disk itself is fine
	diskIOError                   // the disk failed (read/write/rename error, ENOSPC, injected fault)
)

// diskFS is the filesystem surface the disk tier uses; tests substitute a
// faulting implementation to exercise every I/O error path.
type diskFS interface {
	ReadFile(name string) ([]byte, error)
	MkdirAll(dir string) error
	CreateTemp(dir, pattern string) (diskFile, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
}

// diskFile is the subset of *os.File the writer needs.
type diskFile interface {
	io.Writer
	Close() error
	Name() string
}

// osFS is the production diskFS.
type osFS struct{}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (osFS) MkdirAll(dir string) error            { return os.MkdirAll(dir, 0o755) }
func (osFS) Rename(o, n string) error             { return os.Rename(o, n) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) CreateTemp(dir, pattern string) (diskFile, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

type entry struct {
	key  string
	data []byte
}

// registry shares one instance per directory so the memory tier survives
// across Characterizer runs within a process.
var (
	regMu    sync.Mutex
	registry = map[string]*Cache{}
)

// New returns the cache rooted at dir, creating the directory lazily on the
// first Put. Calls with the same directory share one instance (and thus one
// memory tier); dir must be non-empty.
func New(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("cache: empty directory")
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	regMu.Lock()
	defer regMu.Unlock()
	if c, ok := registry[abs]; ok {
		return c, nil
	}
	c := &Cache{
		dir:      abs,
		mem:      map[string]*list.Element{},
		lru:      list.New(),
		maxBytes: DefaultMemBytes,
		fs:       osFS{},
	}
	registry[abs] = c
	return c, nil
}

// SetFaults installs (or, with nil, removes) a fault-injection hook consulted
// before every disk operation ("read", "write", "store"). A non-nil error
// from the hook is treated exactly like a real I/O failure at that point —
// this is how the chaos suite drives the breaker without a broken disk.
// Because New shares one instance per directory, the hook applies to every
// holder of that directory's cache.
func (c *Cache) SetFaults(fn func(op string) error) {
	c.mu.Lock()
	c.faults = fn
	c.mu.Unlock()
}

// Release drops the instance registered for dir: its memory tier is freed
// and the next New(dir) starts cold (the disk tier is untouched). Callers
// that open caches on many short-lived directories — benchmarks, batch
// drivers — use this to keep the per-directory registry from pinning every
// instance's LRU for the process lifetime. Releasing a directory that was
// never opened is a no-op.
func Release(dir string) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return
	}
	regMu.Lock()
	c, ok := registry[abs]
	delete(registry, abs)
	regMu.Unlock()
	if ok {
		c.DropMemory()
	}
}

// Dir returns the cache's on-disk root.
func (c *Cache) Dir() string { return c.dir }

// SetMaxBytes resizes the in-memory tier's capacity (n <= 0 restores
// DefaultMemBytes), evicting least-recently-used entries immediately if the
// resident set exceeds the new cap. Because New shares one instance per
// directory, the new capacity applies to every holder of that directory's
// cache — last caller wins, which is the sensible semantic for a process
// hosting several Characterizers over one cache.
func (c *Cache) SetMaxBytes(n int64) {
	if n <= 0 {
		n = DefaultMemBytes
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maxBytes = n
	c.evictOverCap()
}

// Get returns the payload stored under key, consulting the memory tier
// first, then disk (promoting disk hits into memory). The returned slice
// must not be modified. ok is false on any miss, including a corrupted or
// truncated disk entry and any disk I/O failure.
func (c *Cache) Get(key string) (data []byte, ok bool) {
	c.mu.Lock()
	if el, hit := c.mem[key]; hit {
		c.lru.MoveToFront(el)
		c.hits++
		data = el.Value.(*entry).data
		c.mu.Unlock()
		return data, true
	}
	allowed := c.diskAllowedLocked()
	c.mu.Unlock()

	res := diskMiss
	if allowed {
		data, res = c.readFile(key)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if allowed {
		c.noteDiskLocked(res)
	}
	if res != diskOK {
		c.misses++
		return nil, false
	}
	c.hits++
	c.insert(key, data)
	return data, true
}

// Put stores payload under key in both tiers. Failures to persist (read-only
// filesystem, full disk) are deliberately swallowed: the cache is an
// accelerator, never a correctness dependency. They do feed the circuit
// breaker, so a persistently failing disk stops being touched at all.
func (c *Cache) Put(key string, data []byte) {
	c.mu.Lock()
	c.insert(key, data)
	allowed := c.diskAllowedLocked()
	c.mu.Unlock()
	if !allowed {
		return
	}
	res := c.writeFile(key, data)
	c.mu.Lock()
	c.noteDiskLocked(res)
	c.mu.Unlock()
}

// diskAllowedLocked reports whether the next disk operation may proceed:
// always when the breaker is closed, and as a periodic half-open probe when
// open. Callers hold mu.
func (c *Cache) diskAllowedLocked() bool {
	if !c.io.open {
		return true
	}
	c.io.skips++
	return c.io.skips%breakerProbeAfter == 0
}

// noteDiskLocked feeds one attempted disk operation's outcome to the
// breaker. Callers hold mu.
func (c *Cache) noteDiskLocked(res diskResult) {
	switch res {
	case diskOK, diskMiss:
		c.io.consec = 0
		if c.io.open {
			c.io.open = false
			c.io.skips = 0
		}
	case diskIOError:
		c.io.errors++
		c.io.consec++
		if c.io.consec >= breakerTripAfter && !c.io.open {
			c.io.open = true
			c.io.skips = 0
			c.io.trips++
		}
	}
}

// insert adds or refreshes a memory entry and evicts LRU entries over the
// byte cap. Callers hold mu.
func (c *Cache) insert(key string, data []byte) {
	if el, ok := c.mem[key]; ok {
		c.memBytes += int64(len(data)) - int64(len(el.Value.(*entry).data))
		el.Value.(*entry).data = data
		c.lru.MoveToFront(el)
	} else {
		c.mem[key] = c.lru.PushFront(&entry{key: key, data: data})
		c.memBytes += int64(len(data))
	}
	c.evictOverCap()
}

// evictOverCap drops LRU entries until the resident set fits the cap (the
// most recent entry always stays, so a single oversized payload still
// serves). Callers hold mu.
func (c *Cache) evictOverCap() {
	for c.memBytes > c.maxBytes && c.lru.Len() > 1 {
		el := c.lru.Back()
		e := el.Value.(*entry)
		c.lru.Remove(el)
		delete(c.mem, e.key)
		c.memBytes -= int64(len(e.data))
		c.evictions++
	}
}

// DropMemory empties the in-memory tier (the disk tier is untouched). Used
// under memory pressure and by tests that need to exercise the disk path of
// a shared instance.
func (c *Cache) DropMemory() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mem = map[string]*list.Element{}
	c.lru.Init()
	c.memBytes = 0
}

// Stats snapshots the traffic counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		MemEntries: c.lru.Len(), MemBytes: c.memBytes, MaxBytes: c.maxBytes,
		IOErrors: c.io.errors, BreakerTrips: c.io.trips, BreakerOpen: c.io.open,
	}
}

// --- disk tier ---------------------------------------------------------------

const diskMagic = "ELCA"

const diskVersion = 1

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".bin")
}

// faultHook snapshots the injection hook under the lock.
func (c *Cache) faultHook() func(op string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.faults
}

// readFile loads and validates one disk entry. An absent or corrupt entry
// is a clean miss; a filesystem error (or injected "read" fault) is an I/O
// error for the breaker. Either way the caller sees a miss.
func (c *Cache) readFile(key string) ([]byte, diskResult) {
	if ff := c.faultHook(); ff != nil {
		if err := ff("read"); err != nil {
			return nil, diskIOError
		}
	}
	raw, err := c.fs.ReadFile(c.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, diskMiss
		}
		return nil, diskIOError
	}
	payload, ok := decodeEntry(key, raw)
	if !ok {
		return nil, diskMiss
	}
	return payload, diskOK
}

// decodeEntry parses and validates one "ELCA" disk entry against the key it
// should hold. ok is false on any framing, echo or checksum failure.
func decodeEntry(key string, raw []byte) (payload []byte, ok bool) {
	if len(raw) < len(diskMagic) || string(raw[:len(diskMagic)]) != diskMagic {
		return nil, false
	}
	rest := raw[len(diskMagic):]
	version, n := binary.Uvarint(rest)
	if n <= 0 || version != diskVersion {
		return nil, false
	}
	rest = rest[n:]
	echo, rest, ok := readLenPrefixed(rest)
	if !ok || string(echo) != key {
		return nil, false
	}
	payload, rest, ok = readLenPrefixed(rest)
	if !ok || len(rest) != 8 {
		return nil, false
	}
	if binary.LittleEndian.Uint64(rest) != checksum(payload) {
		return nil, false
	}
	return payload, true
}

func readLenPrefixed(b []byte) (field, rest []byte, ok bool) {
	l, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)-n) < l {
		return nil, nil, false
	}
	return b[n : n+int(l)], b[n+int(l):], true
}

// encodeEntry frames one payload in the "ELCA" disk format.
func encodeEntry(key string, payload []byte) []byte {
	var buf []byte
	buf = append(buf, diskMagic...)
	buf = binary.AppendUvarint(buf, diskVersion)
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint64(buf, checksum(payload))
}

// writeFile persists one entry atomically: temp file in the same directory,
// then rename over the final name. Errors are swallowed (see Put) but
// classified for the breaker: a short write, a failed close, a failed
// rename and the injected "write"/"store" faults all count as I/O errors,
// and the temp file is removed so a torn write can never hydrate a reader.
func (c *Cache) writeFile(key string, payload []byte) diskResult {
	ff := c.faultHook()
	if ff != nil {
		if err := ff("write"); err != nil {
			return diskIOError
		}
	}
	if err := c.fs.MkdirAll(c.dir); err != nil {
		return diskIOError
	}
	buf := encodeEntry(key, payload)
	tmp, err := c.fs.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return diskIOError
	}
	name := tmp.Name()
	if n, err := tmp.Write(buf); err != nil || n < len(buf) {
		tmp.Close()
		c.fs.Remove(name)
		return diskIOError
	}
	if err := tmp.Close(); err != nil {
		c.fs.Remove(name)
		return diskIOError
	}
	if ff != nil {
		if err := ff("store"); err != nil {
			c.fs.Remove(name)
			return diskIOError
		}
	}
	if err := c.fs.Rename(name, c.path(key)); err != nil {
		c.fs.Remove(name)
		return diskIOError
	}
	return diskOK
}
