// Package cache is a content-addressed, two-tier result cache for pipeline
// stage outputs. Keys identify a result by what produced it — the dataset
// digest, a digest of the options that affect the stage, the stage name and
// a stage codec version — so a hit is valid by construction and there is no
// invalidation protocol: change anything that matters and the key changes.
//
// The two tiers are an in-process LRU of encoded payloads (shared between
// every Cache opened on the same directory, so repeated runs in one process
// skip the disk entirely) and an on-disk store of one self-describing binary
// file per key:
//
//	<dir>/<stage>-v<version>-<dataset digest>-<options digest>.bin
//	  magic "ELCA" · format version · key echo · payload · FNV-64a checksum
//
// Reads are paranoid — a missing file, bad magic, short payload, key
// mismatch or checksum failure is reported as a miss, never an error, so a
// corrupted cache silently degrades to recomputation. Writes go through a
// temp file and an atomic rename, so concurrent writers of the same key
// (identical content by construction) cannot tear each other's files.
package cache

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
)

// Key names one cached stage result. All four fields participate in the
// content address: Dataset is the dataset digest, Options a digest of every
// option that changes the stage's output (never of options that provably do
// not, like worker budgets), and Version the stage's codec/algorithm
// version — bump it when the encoding or the computation changes.
type Key struct {
	Stage   string
	Version int
	Dataset uint64
	Options uint64
}

// String renders the key in its canonical (and filesystem-safe) form.
func (k Key) String() string {
	return fmt.Sprintf("%s-v%d-%016x-%016x", k.Stage, k.Version, k.Dataset, k.Options)
}

// FNV-64a, the digest used for key derivation and payload checksums.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// Hasher accumulates a 64-bit content digest over typed values: FNV-64a
// byte folds for raw bytes and strings, one SplitMix64-style avalanche per
// 64-bit word (Word/Float64) so bulk numeric data hashes at word speed.
// The zero value is not ready; use NewHasher.
type Hasher struct{ h uint64 }

// NewHasher returns a ready Hasher.
func NewHasher() *Hasher { return &Hasher{h: fnvOffset} }

// Byte folds one byte into the digest.
func (h *Hasher) Byte(b byte) {
	h.h = (h.h ^ uint64(b)) * fnvPrime
}

// Word folds a 64-bit value into the digest with one SplitMix64-style
// avalanche per word (three multiply/shift rounds) rather than eight
// dependent byte folds — this is what keeps hashing a paper-scale CSR array
// (79M edges) in the hundreds of milliseconds instead of seconds.
func (h *Hasher) Word(v uint64) {
	x := h.h ^ v
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	h.h = x ^ (x >> 31)
}

// Float64 folds the raw IEEE-754 bits into the digest.
func (h *Hasher) Float64(v float64) { h.Word(math.Float64bits(v)) }

// String folds a length-prefixed string into the digest (length-prefixing
// keeps "ab"+"c" distinct from "a"+"bc").
func (h *Hasher) String(s string) {
	h.Word(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h.Byte(s[i])
	}
}

// Bytes folds a length-prefixed byte slice into the digest.
func (h *Hasher) Bytes(b []byte) {
	h.Word(uint64(len(b)))
	for _, c := range b {
		h.Byte(c)
	}
}

// Sum returns the digest of everything folded so far.
func (h *Hasher) Sum() uint64 { return h.h }

// HashWords digests a sequence of 64-bit words — the convenience form for
// option digests.
func HashWords(words ...uint64) uint64 {
	h := NewHasher()
	for _, w := range words {
		h.Word(w)
	}
	return h.Sum()
}

// checksum is the payload FNV-64a used by the disk format (raw bytes, no
// length prefix — the payload length is framed separately).
func checksum(data []byte) uint64 {
	h := NewHasher()
	for _, b := range data {
		h.Byte(b)
	}
	return h.Sum()
}

// Stats counts cache traffic since the process started.
type Stats struct {
	Hits       uint64 // memory or disk hits
	Misses     uint64
	Evictions  uint64 // memory-tier entries dropped to stay under the cap
	MemEntries int
	MemBytes   int64
	MaxBytes   int64 // current memory-tier capacity
}

// DefaultMemBytes caps the in-memory tier per cache instance.
const DefaultMemBytes = 256 << 20

// Cache is one two-tier result cache. Obtain instances with New; all
// methods are safe for concurrent use.
type Cache struct {
	dir string

	mu        sync.Mutex
	mem       map[string]*list.Element
	lru       *list.List // front = most recent; values are *entry
	memBytes  int64
	maxBytes  int64
	hits      uint64
	misses    uint64
	evictions uint64
}

type entry struct {
	key  string
	data []byte
}

// registry shares one instance per directory so the memory tier survives
// across Characterizer runs within a process.
var (
	regMu    sync.Mutex
	registry = map[string]*Cache{}
)

// New returns the cache rooted at dir, creating the directory lazily on the
// first Put. Calls with the same directory share one instance (and thus one
// memory tier); dir must be non-empty.
func New(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("cache: empty directory")
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	regMu.Lock()
	defer regMu.Unlock()
	if c, ok := registry[abs]; ok {
		return c, nil
	}
	c := &Cache{
		dir:      abs,
		mem:      map[string]*list.Element{},
		lru:      list.New(),
		maxBytes: DefaultMemBytes,
	}
	registry[abs] = c
	return c, nil
}

// Release drops the instance registered for dir: its memory tier is freed
// and the next New(dir) starts cold (the disk tier is untouched). Callers
// that open caches on many short-lived directories — benchmarks, batch
// drivers — use this to keep the per-directory registry from pinning every
// instance's LRU for the process lifetime. Releasing a directory that was
// never opened is a no-op.
func Release(dir string) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return
	}
	regMu.Lock()
	c, ok := registry[abs]
	delete(registry, abs)
	regMu.Unlock()
	if ok {
		c.DropMemory()
	}
}

// Dir returns the cache's on-disk root.
func (c *Cache) Dir() string { return c.dir }

// SetMaxBytes resizes the in-memory tier's capacity (n <= 0 restores
// DefaultMemBytes), evicting least-recently-used entries immediately if the
// resident set exceeds the new cap. Because New shares one instance per
// directory, the new capacity applies to every holder of that directory's
// cache — last caller wins, which is the sensible semantic for a process
// hosting several Characterizers over one cache.
func (c *Cache) SetMaxBytes(n int64) {
	if n <= 0 {
		n = DefaultMemBytes
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maxBytes = n
	c.evictOverCap()
}

// Get returns the payload stored under key, consulting the memory tier
// first, then disk (promoting disk hits into memory). The returned slice
// must not be modified. ok is false on any miss, including a corrupted or
// truncated disk entry.
func (c *Cache) Get(key string) (data []byte, ok bool) {
	c.mu.Lock()
	if el, hit := c.mem[key]; hit {
		c.lru.MoveToFront(el)
		c.hits++
		data = el.Value.(*entry).data
		c.mu.Unlock()
		return data, true
	}
	c.mu.Unlock()

	data, ok = c.readFile(key)
	c.mu.Lock()
	defer c.mu.Unlock()
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.insert(key, data)
	return data, true
}

// Put stores payload under key in both tiers. Failures to persist (read-only
// filesystem, full disk) are deliberately swallowed: the cache is an
// accelerator, never a correctness dependency.
func (c *Cache) Put(key string, data []byte) {
	c.mu.Lock()
	c.insert(key, data)
	c.mu.Unlock()
	c.writeFile(key, data)
}

// insert adds or refreshes a memory entry and evicts LRU entries over the
// byte cap. Callers hold mu.
func (c *Cache) insert(key string, data []byte) {
	if el, ok := c.mem[key]; ok {
		c.memBytes += int64(len(data)) - int64(len(el.Value.(*entry).data))
		el.Value.(*entry).data = data
		c.lru.MoveToFront(el)
	} else {
		c.mem[key] = c.lru.PushFront(&entry{key: key, data: data})
		c.memBytes += int64(len(data))
	}
	c.evictOverCap()
}

// evictOverCap drops LRU entries until the resident set fits the cap (the
// most recent entry always stays, so a single oversized payload still
// serves). Callers hold mu.
func (c *Cache) evictOverCap() {
	for c.memBytes > c.maxBytes && c.lru.Len() > 1 {
		el := c.lru.Back()
		e := el.Value.(*entry)
		c.lru.Remove(el)
		delete(c.mem, e.key)
		c.memBytes -= int64(len(e.data))
		c.evictions++
	}
}

// DropMemory empties the in-memory tier (the disk tier is untouched). Used
// under memory pressure and by tests that need to exercise the disk path of
// a shared instance.
func (c *Cache) DropMemory() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mem = map[string]*list.Element{}
	c.lru.Init()
	c.memBytes = 0
}

// Stats snapshots the traffic counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		MemEntries: c.lru.Len(), MemBytes: c.memBytes, MaxBytes: c.maxBytes,
	}
}

// --- disk tier ---------------------------------------------------------------

const diskMagic = "ELCA"

const diskVersion = 1

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".bin")
}

// readFile loads and validates one disk entry; every failure mode is a miss.
func (c *Cache) readFile(key string) ([]byte, bool) {
	raw, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	if len(raw) < len(diskMagic) || string(raw[:len(diskMagic)]) != diskMagic {
		return nil, false
	}
	rest := raw[len(diskMagic):]
	version, n := binary.Uvarint(rest)
	if n <= 0 || version != diskVersion {
		return nil, false
	}
	rest = rest[n:]
	echo, rest, ok := readLenPrefixed(rest)
	if !ok || string(echo) != key {
		return nil, false
	}
	payload, rest, ok := readLenPrefixed(rest)
	if !ok || len(rest) != 8 {
		return nil, false
	}
	if binary.LittleEndian.Uint64(rest) != checksum(payload) {
		return nil, false
	}
	return payload, true
}

func readLenPrefixed(b []byte) (field, rest []byte, ok bool) {
	l, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)-n) < l {
		return nil, nil, false
	}
	return b[n : n+int(l)], b[n+int(l):], true
}

// writeFile persists one entry atomically: temp file in the same directory,
// then rename over the final name. Errors are swallowed (see Put).
func (c *Cache) writeFile(key string, payload []byte) {
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	var buf []byte
	buf = append(buf, diskMagic...)
	buf = binary.AppendUvarint(buf, diskVersion)
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint64(buf, checksum(payload))

	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(name)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, c.path(key)); err != nil {
		os.Remove(name)
	}
}
