package cache

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrCorrupt is the sticky error a Decoder reports for any malformed input.
var ErrCorrupt = errors.New("cache: corrupt payload")

// Encoder builds a stage payload in the library's store-style binary idiom:
// varint integers, raw little-endian float bits, length-prefixed strings and
// slices. It never fails; retrieve the bytes with Bytes.
type Encoder struct{ buf []byte }

// Bytes returns the encoded payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }

// Varint appends a signed varint.
func (e *Encoder) Varint(v int64) { e.buf = binary.AppendVarint(e.buf, v) }

// Int appends a signed integer.
func (e *Encoder) Int(v int) { e.Varint(int64(v)) }

// Bool appends a boolean.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Float64 appends the raw IEEE-754 bits (bit-exact round trip, NaN included).
func (e *Encoder) Float64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Float64s appends a length-prefixed float slice.
func (e *Encoder) Float64s(xs []float64) {
	e.Uvarint(uint64(len(xs)))
	for _, x := range xs {
		e.Float64(x)
	}
}

// Decoder reads what an Encoder wrote. Errors are sticky: after the first
// malformed read every accessor returns a zero value and Err reports
// ErrCorrupt, so callers can decode a whole payload and check once at the
// end.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps an encoded payload.
func NewDecoder(data []byte) *Decoder { return &Decoder{buf: data} }

// Err reports whether any read so far was malformed, or — after Finish —
// whether trailing bytes remained.
func (d *Decoder) Err() error { return d.err }

// Finish flags trailing garbage as corruption and returns the final error.
func (d *Decoder) Finish() error {
	if d.err == nil && d.off != len(d.buf) {
		d.err = ErrCorrupt
	}
	return d.err
}

func (d *Decoder) fail() {
	if d.err == nil {
		d.err = ErrCorrupt
	}
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

// Varint reads a signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

// Int reads a signed integer.
func (d *Decoder) Int() int { return int(d.Varint()) }

// Bool reads a boolean.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.buf) {
		d.fail()
		return false
	}
	b := d.buf[d.off]
	d.off++
	return b != 0
}

// Float64 reads raw IEEE-754 bits.
func (d *Decoder) Float64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	l := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.buf)-d.off) < l {
		d.fail()
		return ""
	}
	s := string(d.buf[d.off : d.off+int(l)])
	d.off += int(l)
	return s
}

// Float64s reads a length-prefixed float slice (nil for length zero).
func (d *Decoder) Float64s() []float64 {
	l := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if uint64(len(d.buf)-d.off)/8 < l {
		d.fail()
		return nil
	}
	if l == 0 {
		return nil
	}
	out := make([]float64, l)
	for i := range out {
		out[i] = d.Float64()
	}
	return out
}
