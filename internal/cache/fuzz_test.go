package cache

import (
	"bytes"
	"testing"
)

// FuzzCacheEntryDecode hammers the "ELCA" disk-entry decoder with mutated
// frames. The invariants: decodeEntry never panics, never accepts a frame
// whose key echo or checksum disagrees, and anything it does accept
// round-trips byte-identically through encodeEntry.
func FuzzCacheEntryDecode(f *testing.F) {
	const key = "deg-v1-000000000000002a-0000000000000007"
	valid := encodeEntry(key, []byte("payload-bytes-here"))
	f.Add(key, valid)
	f.Add(key, []byte{})
	f.Add(key, valid[:len(valid)/2])
	f.Add("other-key", valid)
	flipped := append([]byte{}, valid...)
	flipped[len(flipped)-4] ^= 0x01 // inside the checksum trailer
	f.Add(key, flipped)
	truncVarint := append([]byte{}, valid[:6]...)
	truncVarint[5] = 0xFF // unterminated uvarint in the key-length region
	f.Add(key, truncVarint)

	f.Fuzz(func(t *testing.T, k string, data []byte) {
		payload, ok := decodeEntry(k, data)
		if !ok {
			return
		}
		// Accepted frames must round-trip: re-encoding the decoded payload
		// under the same key reproduces a frame that decodes to the same
		// payload (the original frame may differ only in varint width, and
		// the canonical encoder always emits minimal varints).
		re := encodeEntry(k, payload)
		back, ok2 := decodeEntry(k, re)
		if !ok2 || !bytes.Equal(back, payload) {
			t.Fatalf("round-trip failed: %q -> %q (ok=%v)", payload, back, ok2)
		}
	})
}
