package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"elites/internal/mathx"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(0, 2, 5)
	m.Set(1, 1, -2)
	if m.At(0, 2) != 5 || m.At(1, 1) != -2 || m.At(1, 0) != 0 {
		t.Fatal("At/Set broken")
	}
	m.Add(0, 0, 2)
	if m.At(0, 0) != 3 {
		t.Fatal("Add broken")
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 3 {
		t.Fatal("Clone aliases data")
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	// [1 2 3; 4 5 6]
	for j := 0; j < 3; j++ {
		m.Set(0, j, float64(j+1))
		m.Set(1, j, float64(j+4))
	}
	y := m.MulVec([]float64{1, 1, 1})
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec = %v", y)
	}
	z := m.TMulVec([]float64{1, 1})
	if z[0] != 5 || z[1] != 7 || z[2] != 9 {
		t.Fatalf("TMulVec = %v", z)
	}
}

func TestMulAgainstManual(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 3)
	a.Set(1, 1, 4)
	b := NewMatrix(2, 2)
	b.Set(0, 0, 5)
	b.Set(0, 1, 6)
	b.Set(1, 0, 7)
	b.Set(1, 1, 8)
	c := Mul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestTMulEqualsTransposeMul(t *testing.T) {
	r := mathx.NewRNG(1)
	a := randMatrix(r, 7, 4)
	b := randMatrix(r, 7, 5)
	c1 := TMul(a, b)
	c2 := Mul(a.Transpose(), b)
	assertMatrixEqual(t, c1, c2, 1e-12)
	d1 := MulT(a.Transpose(), b.Transpose())
	assertMatrixEqual(t, d1, c1, 1e-12)
}

func randMatrix(r *mathx.RNG, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.Normal()
	}
	return m
}

func assertMatrixEqual(t *testing.T, a, b *Matrix, tol float64) {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols {
		t.Fatalf("shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			t.Fatalf("entry %d: %v vs %v", i, a.Data[i], b.Data[i])
		}
	}
}

func spdMatrix(r *mathx.RNG, n int) *Matrix {
	g := randMatrix(r, n+3, n)
	a := TMul(g, g)
	a.AddScaledIdentity(0.5)
	return a
}

func TestCholeskySolve(t *testing.T) {
	r := mathx.NewRNG(2)
	for _, n := range []int{1, 2, 5, 20, 50} {
		a := spdMatrix(r, n)
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = r.Normal()
		}
		b := a.MulVec(xTrue)
		x, err := SolveSPD(a, b)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-8 {
				t.Fatalf("n=%d solution wrong at %d: %v vs %v", n, i, x[i], xTrue[i])
			}
		}
	}
}

func TestCholeskyReconstruction(t *testing.T) {
	r := mathx.NewRNG(3)
	a := spdMatrix(r, 8)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	rec := MulT(ch.L, ch.L)
	assertMatrixEqual(t, a, rec, 1e-10)
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 5)
	a.Set(1, 0, 5)
	a.Set(1, 1, 1) // eigenvalues 6, -4
	if _, err := NewCholesky(a); err != ErrNotPositiveDefinite {
		t.Fatalf("expected ErrNotPositiveDefinite, got %v", err)
	}
}

func TestCholeskyInverseAndLogDet(t *testing.T) {
	r := mathx.NewRNG(4)
	a := spdMatrix(r, 6)
	ch, _ := NewCholesky(a)
	inv := ch.Inverse()
	prod := Mul(a, inv)
	eye := NewMatrix(6, 6)
	for i := 0; i < 6; i++ {
		eye.Set(i, i, 1)
	}
	assertMatrixEqual(t, prod, eye, 1e-8)

	// logdet via Jacobi eigenvalues.
	vals, _, err := JacobiEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for _, v := range vals {
		want += math.Log(v)
	}
	if math.Abs(ch.LogDet()-want) > 1e-8 {
		t.Fatalf("LogDet %v, want %v", ch.LogDet(), want)
	}
}

func TestVectorOps(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatal("Dot wrong")
	}
	if math.Abs(Norm2([]float64{3, 4})-5) > 1e-15 {
		t.Fatal("Norm2 wrong")
	}
	v := []float64{1, 2}
	Scale(v, 3)
	if v[0] != 3 || v[1] != 6 {
		t.Fatal("Scale wrong")
	}
	y := []float64{1, 1}
	Axpy(2, []float64{1, 2}, y)
	if y[0] != 3 || y[1] != 5 {
		t.Fatal("Axpy wrong")
	}
}

func TestJacobiEigenDiagonal(t *testing.T) {
	a := NewMatrix(3, 3)
	a.Set(0, 0, 1)
	a.Set(1, 1, 5)
	a.Set(2, 2, 3)
	vals, _, err := JacobiEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 3, 1}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Fatalf("vals = %v", vals)
		}
	}
}

func TestJacobiEigenProperty(t *testing.T) {
	// For random SPD matrices: A·v = λ·v per pair and trace = Σλ.
	r := mathx.NewRNG(5)
	f := func(seed uint32) bool {
		rr := mathx.NewRNG(uint64(seed) + 1)
		n := 2 + rr.Intn(8)
		a := spdMatrix(r, n)
		vals, vecs, err := JacobiEigen(a)
		if err != nil {
			return false
		}
		trace := 0.0
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
		}
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		if math.Abs(trace-sum) > 1e-8*(1+math.Abs(trace)) {
			return false
		}
		for k := 0; k < n; k++ {
			v := make([]float64, n)
			for i := 0; i < n; i++ {
				v[i] = vecs.At(i, k)
			}
			av := a.MulVec(v)
			for i := 0; i < n; i++ {
				if math.Abs(av[i]-vals[k]*v[i]) > 1e-7 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSymTridiagonalEigenvalues(t *testing.T) {
	// Known spectrum: tridiag with d=2, e=-1 (discrete Laplacian) has
	// eigenvalues 2-2cos(kπ/(n+1)).
	n := 12
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = 2
	}
	for i := range e {
		e[i] = -1
	}
	got, err := SymTridiagonalEigenvalues(d, e)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, n)
	for k := 1; k <= n; k++ {
		want[n-k] = 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
	}
	// got is descending; want built descending as well.
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("eig[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSymTridiagonalAgainstJacobi(t *testing.T) {
	r := mathx.NewRNG(6)
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(15)
		d := make([]float64, n)
		e := make([]float64, n-1)
		for i := range d {
			d[i] = r.Normal() * 3
		}
		for i := range e {
			e[i] = r.Normal()
		}
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, d[i])
			if i+1 < n {
				a.Set(i, i+1, e[i])
				a.Set(i+1, i, e[i])
			}
		}
		want, _, err := JacobiEigen(a)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SymTridiagonalEigenvalues(d, e)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("trial %d eig[%d]: %v vs %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestSymTridiagonalEdge(t *testing.T) {
	got, err := SymTridiagonalEigenvalues([]float64{7}, nil)
	if err != nil || len(got) != 1 || got[0] != 7 {
		t.Fatalf("1x1 case: %v %v", got, err)
	}
	if _, err := SymTridiagonalEigenvalues([]float64{1, 2}, []float64{1, 2}); err != ErrShape {
		t.Fatal("shape error expected")
	}
}
