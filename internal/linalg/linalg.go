// Package linalg supplies the small dense linear-algebra kernel used by the
// statistical routines: column-major dense matrices, Cholesky factorization
// for normal-equation solves (OLS, penalized splines), and a Jacobi
// eigensolver for small symmetric matrices that serves as the test oracle for
// the large-scale Lanczos code in internal/spectral.
//
// These routines target the "many small systems" regime (basis sizes of tens,
// regression designs of a few hundred columns at most); they are deliberately
// simple, allocation-conscious and dependency-free rather than tuned BLAS.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is not
// (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix not positive definite")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("linalg: incompatible shapes")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, Data[i*Cols+j] = M[i,j]
}

// NewMatrix returns a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic("linalg: negative dimension")
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// At returns M[i,j].
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns M[i,j] = v.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates M[i,j] += v.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := ""
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s += fmt.Sprintf("%10.4g ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}

// MulVec computes y = M·x. It panics on shape mismatch.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(ErrShape)
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// TMulVec computes y = Mᵀ·x.
func (m *Matrix) TMulVec(x []float64) []float64 {
	if len(x) != m.Rows {
		panic(ErrShape)
	}
	y := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, v := range row {
			y[j] += v * xi
		}
	}
	return y
}

// Mul computes C = A·B.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(ErrShape)
	}
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		crow := c.Data[i*c.Cols : (i+1)*c.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// MulT computes C = A·Bᵀ.
func MulT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(ErrShape)
	}
	c := NewMatrix(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*b.Cols : (j+1)*b.Cols]
			s := 0.0
			for k, av := range arow {
				s += av * brow[k]
			}
			c.Set(i, j, s)
		}
	}
	return c
}

// TMul computes C = Aᵀ·B (the Gram-matrix building block of normal
// equations).
func TMul(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(ErrShape)
	}
	c := NewMatrix(a.Cols, b.Cols)
	for k := 0; k < a.Rows; k++ {
		arow := a.Data[k*a.Cols : (k+1)*a.Cols]
		brow := b.Data[k*b.Cols : (k+1)*b.Cols]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			crow := c.Data[i*c.Cols : (i+1)*c.Cols]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// Transpose returns Aᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// AddScaledIdentity adds s·I in place; the matrix must be square.
func (m *Matrix) AddScaledIdentity(s float64) {
	if m.Rows != m.Cols {
		panic(ErrShape)
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+i] += s
	}
}

// AddScaled accumulates M += s·B.
func (m *Matrix) AddScaled(s float64, b *Matrix) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(ErrShape)
	}
	for i := range m.Data {
		m.Data[i] += s * b.Data[i]
	}
}

// Cholesky holds the lower-triangular factor L with A = L·Lᵀ.
type Cholesky struct {
	L *Matrix
}

// NewCholesky factors the symmetric positive definite matrix A. Only the
// lower triangle of A is read.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, ErrShape
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			ljk := l.At(j, k)
			d -= ljk * ljk
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/d)
		}
	}
	return &Cholesky{L: l}, nil
}

// Solve solves A·x = b given the factorization.
func (c *Cholesky) Solve(b []float64) []float64 {
	n := c.L.Rows
	if len(b) != n {
		panic(ErrShape)
	}
	// Forward substitution L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= c.L.At(i, k) * y[k]
		}
		y[i] = s / c.L.At(i, i)
	}
	// Back substitution Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.L.At(k, i) * x[k]
		}
		x[i] = s / c.L.At(i, i)
	}
	return x
}

// SolveMatrix solves A·X = B column by column.
func (c *Cholesky) SolveMatrix(b *Matrix) *Matrix {
	if b.Rows != c.L.Rows {
		panic(ErrShape)
	}
	x := NewMatrix(b.Rows, b.Cols)
	col := make([]float64, b.Rows)
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < b.Rows; i++ {
			col[i] = b.At(i, j)
		}
		sol := c.Solve(col)
		for i := 0; i < b.Rows; i++ {
			x.Set(i, j, sol[i])
		}
	}
	return x
}

// Inverse returns A⁻¹ from the factorization.
func (c *Cholesky) Inverse() *Matrix {
	n := c.L.Rows
	eye := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		eye.Set(i, i, 1)
	}
	return c.SolveMatrix(eye)
}

// LogDet returns ln|A| from the factorization.
func (c *Cholesky) LogDet() float64 {
	s := 0.0
	for i := 0; i < c.L.Rows; i++ {
		s += math.Log(c.L.At(i, i))
	}
	return 2 * s
}

// SolveSPD is a convenience wrapper: factor A and solve A·x = b.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	ch, err := NewCholesky(a)
	if err != nil {
		return nil, err
	}
	return ch.Solve(b), nil
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(ErrShape)
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// Scale multiplies v by s in place.
func Scale(v []float64, s float64) {
	for i := range v {
		v[i] *= s
	}
}

// Axpy computes y += a·x in place.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(ErrShape)
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// JacobiEigen computes all eigenvalues and eigenvectors of a small symmetric
// matrix by the cyclic Jacobi rotation method. Eigenvalues are returned in
// descending order with matching eigenvector columns. Intended for n up to a
// few hundred; it is the oracle against which the Lanczos solver is tested.
func JacobiEigen(a *Matrix) (values []float64, vectors *Matrix, err error) {
	if a.Rows != a.Cols {
		return nil, nil, ErrShape
	}
	n := a.Rows
	m := a.Clone()
	v := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if off < 1e-22*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := m.At(p, p)
				aqq := m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for k := 0; k < n; k++ {
					akp := m.At(k, p)
					akq := m.At(k, q)
					m.Set(k, p, c*akp-s*akq)
					m.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk := m.At(p, k)
					aqk := m.At(q, k)
					m.Set(p, k, c*apk-s*aqk)
					m.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = m.At(i, i)
	}
	// Sort eigenpairs in descending eigenvalue order (selection sort keeps
	// vector columns aligned and n is small).
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if values[j] > values[best] {
				best = j
			}
		}
		if best != i {
			values[i], values[best] = values[best], values[i]
			for k := 0; k < n; k++ {
				vi, vb := v.At(k, i), v.At(k, best)
				v.Set(k, i, vb)
				v.Set(k, best, vi)
			}
		}
	}
	return values, v, nil
}

// SymTridiagonalEigenvalues computes all eigenvalues of the symmetric
// tridiagonal matrix with diagonal d and off-diagonal e (len(e) = len(d)-1)
// using the implicit QL method with Wilkinson shifts. The input slices are
// not modified. Eigenvalues are returned in descending order. This is the
// final step of the Lanczos procedure in internal/spectral.
func SymTridiagonalEigenvalues(d, e []float64) ([]float64, error) {
	n := len(d)
	if n == 0 {
		return nil, nil
	}
	if len(e) != n-1 {
		return nil, ErrShape
	}
	dd := make([]float64, n)
	copy(dd, d)
	ee := make([]float64, n)
	copy(ee, e) // ee[n-1] spare zero
	for l := 0; l < n; l++ {
		iter := 0
		for {
			var m int
			for m = l; m < n-1; m++ {
				s := math.Abs(dd[m]) + math.Abs(dd[m+1])
				if math.Abs(ee[m]) <= 1e-16*s {
					break
				}
			}
			if m == l {
				break
			}
			iter++
			if iter > 50 {
				return nil, ErrNoConvergeTridiag
			}
			g := (dd[l+1] - dd[l]) / (2 * ee[l])
			r := math.Hypot(g, 1)
			g = dd[m] - dd[l] + ee[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * ee[i]
				b := c * ee[i]
				r = math.Hypot(f, g)
				ee[i+1] = r
				if r == 0 {
					dd[i+1] -= p
					ee[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = dd[i+1] - p
				r = (dd[i]-g)*s + 2*c*b
				p = s * r
				dd[i+1] = g + p
				g = c*r - b
			}
			if r == 0 && m-1 >= l {
				continue
			}
			dd[l] -= p
			ee[l] = g
			ee[m] = 0
		}
	}
	// Descending sort.
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if dd[j] > dd[best] {
				best = j
			}
		}
		dd[i], dd[best] = dd[best], dd[i]
	}
	return dd, nil
}

// ErrNoConvergeTridiag is returned when the tridiagonal QL iteration fails to
// converge; in practice this indicates NaN contamination of the input.
var ErrNoConvergeTridiag = errors.New("linalg: tridiagonal QL did not converge")
