package plot

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"elites/internal/mathx"
	"elites/internal/stats"
	"elites/internal/timeseries"
)

func checkSVG(t *testing.T, buf *bytes.Buffer, wantElems ...string) {
	t.Helper()
	s := buf.String()
	if !strings.HasPrefix(s, "<svg") || !strings.HasSuffix(strings.TrimSpace(s), "</svg>") {
		t.Fatalf("not a complete SVG document:\n%.120s ... %.40s", s, s[len(s)-40:])
	}
	for _, e := range wantElems {
		if !strings.Contains(s, e) {
			t.Fatalf("SVG missing %q", e)
		}
	}
	// No NaN/Inf coordinates may leak into the document.
	for _, bad := range []string{"NaN", "Inf"} {
		if strings.Contains(s, bad) {
			t.Fatalf("SVG contains %s coordinates", bad)
		}
	}
}

func TestCanvasPrimitives(t *testing.T) {
	c := NewCanvas(200, 100)
	c.Line(0, 0, 10, 10, "black", 1)
	c.Circle(5, 5, 2, "red", 0.5)
	c.Rect(1, 1, 5, 5, "blue")
	c.Polyline([]float64{0, 1, 2}, []float64{0, 1, 0}, "green", 1)
	c.Polygon([]float64{0, 1, 2}, []float64{0, 1, 0}, "gray", 0.3)
	c.Text(3, 3, `a<b&"c"`, 10, "middle", "black")
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	checkSVG(t, &buf, "<line", "<circle", "<rect", "<polyline", "<polygon", "&lt;b&amp;")
}

func TestLogHistogramFigure(t *testing.T) {
	rng := mathx.NewRNG(1)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.LogNormal(5, 1.5)
	}
	h := stats.NewLogHistogram(xs, 25)
	var buf bytes.Buffer
	if err := LogHistogram(&buf, h, "Figure 1(a)", "friends"); err != nil {
		t.Fatal(err)
	}
	checkSVG(t, &buf, "Figure 1(a)", "number of users", "<line")
}

func TestFrequencySeriesFigure(t *testing.T) {
	rng := mathx.NewRNG(2)
	deg := make([]int, 8000)
	for i := range deg {
		deg[i] = rng.ParetoInt(1, 2.8)
	}
	pts := stats.DegreeFrequency(deg)
	var buf bytes.Buffer
	if err := FrequencySeries(&buf, pts, 2.8, 5, "Figure 2"); err != nil {
		t.Fatal(err)
	}
	checkSVG(t, &buf, "Figure 2", "fitted power law", "<circle")
	// Empty input still yields a valid document.
	var empty bytes.Buffer
	if err := FrequencySeries(&empty, nil, 0, 0, "t"); err != nil {
		t.Fatal(err)
	}
	checkSVG(t, &empty)
}

func TestDistanceHistogramFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := DistanceHistogram(&buf, []float64{0, 100, 5000, 300, 4}, "Figure 3"); err != nil {
		t.Fatal(err)
	}
	checkSVG(t, &buf, "Figure 3", "<rect")
}

func TestScatterSplineFigure(t *testing.T) {
	rng := mathx.NewRNG(3)
	n := 800
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.LogNormal(0, 1)
		ys[i] = xs[i] * rng.LogNormal(2, 0.4)
	}
	curve := []stats.CurvePoint{
		{X: -1, Y: 1, Lo: 0.8, Hi: 1.2},
		{X: 0, Y: 2, Lo: 1.8, Hi: 2.2},
		{X: 1, Y: 3, Lo: 2.8, Hi: 3.2},
	}
	var buf bytes.Buffer
	if err := ScatterSpline(&buf, xs, ys, curve, "Figure 5(d)", "pagerank", "followers"); err != nil {
		t.Fatal(err)
	}
	checkSVG(t, &buf, "Figure 5(d)", "<polygon", "<polyline", "<circle")
}

func TestScatterSplineSubsamples(t *testing.T) {
	rng := mathx.NewRNG(4)
	n := 20000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = 1 + rng.Float64()*100
		ys[i] = 1 + rng.Float64()*100
	}
	var buf bytes.Buffer
	if err := ScatterSpline(&buf, xs, ys, nil, "big", "x", "y"); err != nil {
		t.Fatal(err)
	}
	if circles := strings.Count(buf.String(), "<circle"); circles > 6000 {
		t.Fatalf("scatter not subsampled: %d circles", circles)
	}
}

func TestCalendarFigure(t *testing.T) {
	rng := mathx.NewRNG(5)
	vals := make([]float64, 366)
	for i := range vals {
		vals[i] = 100 + 10*rng.Normal()
	}
	s := &timeseries.DailySeries{
		Start:  time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC),
		Values: vals,
	}
	var buf bytes.Buffer
	if err := Calendar(&buf, s, "Figure 6"); err != nil {
		t.Fatal(err)
	}
	checkSVG(t, &buf, "Figure 6", "Jun", "Dec", "Sun", "Sat")
	// 366 day cells plus background.
	if rects := strings.Count(buf.String(), "<rect"); rects < 366 {
		t.Fatalf("calendar has %d rects, want >= 366", rects)
	}
}
