package plot

import (
	"io"
	"math"
	"sort"
	"time"

	"elites/internal/stats"
	"elites/internal/timeseries"
)

// LogHistogram renders a Figure 1 panel: log-binned counts on log-log axes.
func LogHistogram(w io.Writer, h *stats.Histogram, title, xlabel string) error {
	c := NewCanvas(560, 400)
	xmin, xmax := h.Edges[0], h.Edges[len(h.Edges)-1]
	ymax := 1.0
	for _, cnt := range h.Counts {
		if float64(cnt) > ymax {
			ymax = float64(cnt)
		}
	}
	a := NewAxes(c, title, xlabel, "number of users", xmin, xmax, 0.8, ymax*1.3, true, true)
	centers := h.GeometricCenters()
	for i, cnt := range h.Counts {
		if cnt == 0 {
			continue
		}
		x, y := a.XY(centers[i], float64(cnt))
		_, y0 := a.XY(centers[i], 0.8)
		c.Line(x, y0, x, y, "#4878CF", 5)
		c.Circle(x, y, 2.5, "#2a4d8f", 1)
	}
	_, err := c.WriteTo(w)
	return err
}

// FrequencySeries renders Figure 2: proportion of users per out-degree on
// log-log axes, optionally overlaying the fitted power law p(x) =
// C·x^-alpha for x >= xmin (C chosen to match the first tail point).
func FrequencySeries(w io.Writer, pts []stats.CCDFPoint, alpha, xmin float64, title string) error {
	c := NewCanvas(560, 400)
	if len(pts) == 0 {
		_, err := c.WriteTo(w)
		return err
	}
	maxX, minP, maxP := 1.0, 1.0, 0.0
	for _, p := range pts {
		if p.X > maxX {
			maxX = p.X
		}
		if p.P < minP && p.P > 0 {
			minP = p.P
		}
		if p.P > maxP {
			maxP = p.P
		}
	}
	a := NewAxes(c, title, "out-degree", "proportion of users",
		1, maxX*1.2, minP*0.7, maxP*1.5, true, true)
	for _, p := range pts {
		x, y := a.XY(p.X, p.P)
		c.Circle(x, y, 1.8, "#4878CF", 0.7)
	}
	if alpha > 1 && xmin > 0 {
		// Anchor the fitted line at the empirical density near xmin.
		var anchor stats.CCDFPoint
		for _, p := range pts {
			if p.X >= xmin {
				anchor = p
				break
			}
		}
		if anchor.X > 0 {
			cNorm := anchor.P * math.Pow(anchor.X, alpha)
			var xs, ys []float64
			for x := xmin; x <= maxX; x *= 1.15 {
				px, py := a.XY(x, cNorm*math.Pow(x, -alpha))
				xs = append(xs, px)
				ys = append(ys, py)
			}
			c.Polyline(xs, ys, "#d62728", 1.6)
			c.Text(120, 50, "fitted power law", 11, "start", "#d62728")
		}
	}
	_, err := c.WriteTo(w)
	return err
}

// DistanceHistogram renders Figure 3: pair counts per hop distance with a
// log-scaled y axis.
func DistanceHistogram(w io.Writer, d []float64, title string) error {
	c := NewCanvas(560, 400)
	maxC := 1.0
	maxD := 1
	for dist := 1; dist < len(d); dist++ {
		if d[dist] > maxC {
			maxC = d[dist]
		}
		if d[dist] > 0 && dist > maxD {
			maxD = dist
		}
	}
	a := NewAxes(c, title, "degrees of separation", "number of node pairs",
		0, float64(maxD)+1, 0.8, maxC*2, false, true)
	for dist := 1; dist < len(d); dist++ {
		if d[dist] <= 0 {
			continue
		}
		x0, y0 := a.XY(float64(dist)-0.35, 0.8)
		x1, y1 := a.XY(float64(dist)+0.35, d[dist])
		c.Rect(x0, y1, x1-x0, y0-y1, "#4878CF")
	}
	_, err := c.WriteTo(w)
	return err
}

// ScatterSpline renders one Figure 5 panel: a log-log scatter with the GAM
// spline and its 95% band. xs/ys are raw values (non-positives dropped);
// curve is in log10 space as produced by core's CentralityPair.
func ScatterSpline(w io.Writer, xs, ys []float64, curve []stats.CurvePoint, title, xlabel, ylabel string) error {
	c := NewCanvas(560, 400)
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, xs[i])
			ly = append(ly, ys[i])
		}
	}
	if len(lx) == 0 {
		_, err := c.WriteTo(w)
		return err
	}
	minX, maxX := lx[0], lx[0]
	minY, maxY := ly[0], ly[0]
	for i := range lx {
		minX = math.Min(minX, lx[i])
		maxX = math.Max(maxX, lx[i])
		minY = math.Min(minY, ly[i])
		maxY = math.Max(maxY, ly[i])
	}
	a := NewAxes(c, title, xlabel, ylabel, minX, maxX*1.2, minY, maxY*1.5, true, true)
	// Subsample heavy scatters for file-size sanity.
	step := 1
	if len(lx) > 4000 {
		step = len(lx) / 4000
	}
	for i := 0; i < len(lx); i += step {
		px, py := a.XY(lx[i], ly[i])
		c.Circle(px, py, 1.2, "#808080", 0.35)
	}
	if len(curve) > 1 {
		// Band polygon: upper path then reversed lower path. Curve
		// coordinates are log10; convert back to raw for XY.
		var bx, by []float64
		for _, cp := range curve {
			px, py := a.XY(math.Pow(10, cp.X), math.Pow(10, cp.Hi))
			bx = append(bx, px)
			by = append(by, py)
		}
		for i := len(curve) - 1; i >= 0; i-- {
			cp := curve[i]
			px, py := a.XY(math.Pow(10, cp.X), math.Pow(10, cp.Lo))
			bx = append(bx, px)
			by = append(by, py)
		}
		c.Polygon(bx, by, "#d62728", 0.18)
		var sx, sy []float64
		for _, cp := range curve {
			px, py := a.XY(math.Pow(10, cp.X), math.Pow(10, cp.Y))
			sx = append(sx, px)
			sy = append(sy, py)
		}
		c.Polyline(sx, sy, "#d62728", 2)
	}
	_, err := c.WriteTo(w)
	return err
}

// Calendar renders Figure 6: a GitHub-style year heatmap, one column per
// ISO week, one row per weekday, intensity from value quantiles.
func Calendar(w io.Writer, s *timeseries.DailySeries, title string) error {
	const cell = 11
	weeks := s.Len()/7 + 3
	width := 60 + weeks*cell + 20
	c := NewCanvas(width, 40+7*cell+40)
	c.Text(float64(width)/2, 20, title, 13, "middle", "black")
	// Quantile color scale.
	sorted := append([]float64(nil), s.Values...)
	sort.Float64s(sorted)
	colors := []string{"#eeeeee", "#c6dbef", "#6baed6", "#2171b5", "#08306b"}
	colorOf := func(v float64) string {
		for i, q := range []float64{0.2, 0.4, 0.6, 0.8} {
			if v <= stats.Quantile(sorted, q) {
				return colors[i]
			}
		}
		return colors[4]
	}
	weekday := []string{"Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat"}
	for i, name := range weekday {
		c.Text(50, float64(40+i*cell+8), name, 8, "end", "black")
	}
	startOffset := int(s.Start.Weekday())
	lastMonth := time.Month(0)
	for i := 0; i < s.Len(); i++ {
		date := s.Date(i)
		col := (i + startOffset) / 7
		row := int(date.Weekday())
		x := float64(60 + col*cell)
		y := float64(40 + row*cell)
		c.Rect(x, y, cell-1, cell-1, colorOf(s.Values[i]))
		if date.Month() != lastMonth {
			c.Text(x, 36, date.Month().String()[:3], 8, "start", "black")
			lastMonth = date.Month()
		}
	}
	_, err := c.WriteTo(w)
	return err
}
