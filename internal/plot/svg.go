// Package plot renders the paper's figures as standalone SVG documents:
// log-log scatter plots with GAM splines and confidence bands (Figure 5),
// log-binned histograms (Figure 1), log-log frequency series (Figure 2),
// distance histograms (Figure 3) and calendar heatmaps (Figure 6). The SVG
// generator is minimal and dependency-free; output opens in any browser.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Canvas accumulates SVG elements within a fixed viewport.
type Canvas struct {
	W, H int
	b    strings.Builder
}

// NewCanvas starts an SVG document of the given pixel size.
func NewCanvas(w, h int) *Canvas {
	c := &Canvas{W: w, H: h}
	fmt.Fprintf(&c.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", w, h, w, h)
	fmt.Fprintf(&c.b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	return c
}

// Line draws a straight segment.
func (c *Canvas) Line(x1, y1, x2, y2 float64, stroke string, width float64) {
	fmt.Fprintf(&c.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`+"\n",
		x1, y1, x2, y2, stroke, width)
}

// Circle draws a dot.
func (c *Canvas) Circle(x, y, r float64, fill string, opacity float64) {
	fmt.Fprintf(&c.b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" fill-opacity="%.2f"/>`+"\n",
		x, y, r, fill, opacity)
}

// Rect draws a filled rectangle.
func (c *Canvas) Rect(x, y, w, h float64, fill string) {
	fmt.Fprintf(&c.b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
		x, y, w, h, fill)
}

// Polyline draws a connected path.
func (c *Canvas) Polyline(xs, ys []float64, stroke string, width float64) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return
	}
	var pts strings.Builder
	for i := range xs {
		fmt.Fprintf(&pts, "%.1f,%.1f ", xs[i], ys[i])
	}
	fmt.Fprintf(&c.b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="%.1f"/>`+"\n",
		strings.TrimSpace(pts.String()), stroke, width)
}

// Polygon draws a filled region (used for confidence bands).
func (c *Canvas) Polygon(xs, ys []float64, fill string, opacity float64) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return
	}
	var pts strings.Builder
	for i := range xs {
		fmt.Fprintf(&pts, "%.1f,%.1f ", xs[i], ys[i])
	}
	fmt.Fprintf(&c.b, `<polygon points="%s" fill="%s" fill-opacity="%.2f"/>`+"\n",
		strings.TrimSpace(pts.String()), fill, opacity)
}

// Text places a label; anchor is "start", "middle" or "end".
func (c *Canvas) Text(x, y float64, s string, size int, anchor string, fill string) {
	fmt.Fprintf(&c.b, `<text x="%.1f" y="%.1f" font-size="%d" font-family="sans-serif" text-anchor="%s" fill="%s">%s</text>`+"\n",
		x, y, size, anchor, fill, escape(s))
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// WriteTo finishes the document and writes it.
func (c *Canvas) WriteTo(w io.Writer) (int64, error) {
	n, err := io.WriteString(w, c.b.String()+"</svg>\n")
	return int64(n), err
}

// Axes describes a plotting area with optionally logarithmic scales.
type Axes struct {
	c                      *Canvas
	left, right, top, bott float64
	xmin, xmax, ymin, ymax float64
	logX, logY             bool
}

// NewAxes lays out a plot area with margins and draws the frame, tick labels
// and axis titles.
func NewAxes(c *Canvas, title, xlabel, ylabel string, xmin, xmax, ymin, ymax float64, logX, logY bool) *Axes {
	a := &Axes{
		c: c, left: 70, right: float64(c.W) - 20, top: 40, bott: float64(c.H) - 50,
		xmin: xmin, xmax: xmax, ymin: ymin, ymax: ymax, logX: logX, logY: logY,
	}
	if logX {
		a.xmin, a.xmax = math.Log10(math.Max(xmin, 1e-300)), math.Log10(math.Max(xmax, 1e-300))
	}
	if logY {
		a.ymin, a.ymax = math.Log10(math.Max(ymin, 1e-300)), math.Log10(math.Max(ymax, 1e-300))
	}
	if a.xmax <= a.xmin {
		a.xmax = a.xmin + 1
	}
	if a.ymax <= a.ymin {
		a.ymax = a.ymin + 1
	}
	// Frame.
	c.Line(a.left, a.top, a.left, a.bott, "black", 1)
	c.Line(a.left, a.bott, a.right, a.bott, "black", 1)
	c.Text(float64(c.W)/2, 22, title, 14, "middle", "black")
	c.Text((a.left+a.right)/2, float64(c.H)-12, xlabel, 11, "middle", "black")
	c.Text(16, (a.top+a.bott)/2, ylabel, 11, "middle", "black")
	a.drawTicks()
	return a
}

func (a *Axes) drawTicks() {
	ticks := func(lo, hi float64, log bool) []float64 {
		var out []float64
		if log {
			for e := math.Floor(lo); e <= math.Ceil(hi); e++ {
				if e >= lo-1e-9 && e <= hi+1e-9 {
					out = append(out, e)
				}
			}
			return out
		}
		step := niceStep(hi - lo)
		for v := math.Ceil(lo/step) * step; v <= hi+1e-9; v += step {
			out = append(out, v)
		}
		return out
	}
	for _, tx := range ticks(a.xmin, a.xmax, a.logX) {
		px := a.px(tx)
		a.c.Line(px, a.bott, px, a.bott+4, "black", 1)
		a.c.Text(px, a.bott+16, tickLabel(tx, a.logX), 9, "middle", "black")
	}
	for _, ty := range ticks(a.ymin, a.ymax, a.logY) {
		py := a.py(ty)
		a.c.Line(a.left-4, py, a.left, py, "black", 1)
		a.c.Text(a.left-6, py+3, tickLabel(ty, a.logY), 9, "end", "black")
	}
}

func tickLabel(v float64, log bool) string {
	if log {
		return fmt.Sprintf("1e%d", int(v))
	}
	return fmt.Sprintf("%.3g", v)
}

func niceStep(span float64) float64 {
	if span <= 0 {
		return 1
	}
	raw := span / 6
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	for _, m := range []float64{1, 2, 5, 10} {
		if raw <= m*mag {
			return m * mag
		}
	}
	return 10 * mag
}

// px maps a data x (already logged if logX) to pixels.
func (a *Axes) px(x float64) float64 {
	return a.left + (x-a.xmin)/(a.xmax-a.xmin)*(a.right-a.left)
}

func (a *Axes) py(y float64) float64 {
	return a.bott - (y-a.ymin)/(a.ymax-a.ymin)*(a.bott-a.top)
}

// XY maps raw data coordinates to pixels, applying log scales as
// configured; non-positive values on a log axis are clamped to the axis
// minimum.
func (a *Axes) XY(x, y float64) (float64, float64) {
	if a.logX {
		if x <= 0 {
			x = a.xmin
		} else {
			x = math.Log10(x)
		}
	}
	if a.logY {
		if y <= 0 {
			y = a.ymin
		} else {
			y = math.Log10(y)
		}
	}
	return a.px(clampF(x, a.xmin, a.xmax)), a.py(clampF(y, a.ymin, a.ymax))
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
