package obs

// expo.go is a strict validator for the classic Prometheus text
// exposition format (0.0.4). It exists for the golden tests that pin
// both /metrics endpoints to valid exposition output — the serve and
// fleet emitters once formatted label escaping independently and
// drifted, which is exactly the class of bug a shared parser catches.

import (
	"fmt"
	"strconv"
	"strings"
)

// validMetricName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports whether s matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// baseName strips the histogram sample suffixes so _bucket/_sum/_count
// samples attribute to their family.
func baseName(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// ValidateExposition checks that b is well-formed classic Prometheus
// text exposition: every line is a HELP/TYPE comment or a sample;
// sample names are valid and declared by a preceding TYPE; labels are
// well-formed with properly escaped quoted values; sample values parse
// as floats; histograms carry _bucket, _sum and _count samples. The
// first violation is returned with its line number.
func ValidateExposition(b []byte) error {
	types := map[string]string{}      // family -> declared type
	sampled := map[string]bool{}      // family -> saw any sample
	histParts := map[string][3]bool{} // family -> bucket/sum/count seen
	helped := map[string]bool{}       // family -> HELP seen
	lines := strings.Split(string(b), "\n")
	for ln, line := range lines {
		n := ln + 1
		if line == "" {
			if ln != len(lines)-1 {
				return fmt.Errorf("line %d: blank line inside exposition", n)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || fields[0] != "#" {
				return fmt.Errorf("line %d: malformed comment %q", n, line)
			}
			switch fields[1] {
			case "HELP":
				if !validMetricName(fields[2]) {
					return fmt.Errorf("line %d: bad metric name in HELP: %q", n, fields[2])
				}
				if helped[fields[2]] {
					return fmt.Errorf("line %d: duplicate HELP for %s", n, fields[2])
				}
				helped[fields[2]] = true
			case "TYPE":
				if !validMetricName(fields[2]) {
					return fmt.Errorf("line %d: bad metric name in TYPE: %q", n, fields[2])
				}
				if len(fields) != 4 {
					return fmt.Errorf("line %d: TYPE missing kind", n)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown TYPE %q", n, fields[3])
				}
				if _, dup := types[fields[2]]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", n, fields[2])
				}
				if sampled[fields[2]] {
					return fmt.Errorf("line %d: TYPE for %s after its samples", n, fields[2])
				}
				types[fields[2]] = fields[3]
			default:
				return fmt.Errorf("line %d: unknown comment keyword %q", n, fields[1])
			}
			continue
		}

		name, rest, err := parseSampleName(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", n, err)
		}
		fam := baseName(name)
		typ, declared := types[fam]
		if !declared {
			// _sum on a family named *_sum etc. can't happen here, but a
			// sample whose full name was declared directly is fine too.
			if t2, ok := types[name]; ok {
				fam, typ, declared = name, t2, true
			}
		}
		if !declared {
			return fmt.Errorf("line %d: sample %s has no TYPE declaration", n, name)
		}
		if typ == "histogram" && fam != name {
			parts := histParts[fam]
			switch strings.TrimPrefix(name, fam) {
			case "_bucket":
				parts[0] = true
			case "_sum":
				parts[1] = true
			case "_count":
				parts[2] = true
			}
			histParts[fam] = parts
		}
		sampled[fam] = true

		value := rest
		if strings.HasPrefix(rest, "{") {
			value, err = parseLabels(rest, typ == "histogram")
			if err != nil {
				return fmt.Errorf("line %d: %v", n, err)
			}
		}
		value = strings.TrimPrefix(value, " ")
		fields := strings.Fields(value)
		if len(fields) < 1 || len(fields) > 2 {
			return fmt.Errorf("line %d: want 'value [timestamp]' after name, got %q", n, value)
		}
		if _, err := strconv.ParseFloat(fields[0], 64); err != nil && fields[0] != "+Inf" && fields[0] != "-Inf" && fields[0] != "NaN" {
			return fmt.Errorf("line %d: bad sample value %q", n, fields[0])
		}
		if len(fields) == 2 {
			if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
				return fmt.Errorf("line %d: bad timestamp %q", n, fields[1])
			}
		}
	}

	for fam, typ := range types {
		if typ == "histogram" && sampled[fam] {
			p := histParts[fam]
			if !p[0] || !p[1] || !p[2] {
				return fmt.Errorf("histogram %s missing _bucket/_sum/_count samples", fam)
			}
		}
	}
	return nil
}

// parseSampleName splits a sample line into metric name and remainder.
func parseSampleName(line string) (name, rest string, err error) {
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", "", fmt.Errorf("sample line without value: %q", line)
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", "", fmt.Errorf("bad metric name %q", name)
	}
	return name, line[i:], nil
}

// parseLabels consumes a {k="v",...} block, validating names, escapes
// and (for histograms) that an le label is present; it returns the
// remainder of the line after the closing brace.
func parseLabels(s string, histogram bool) (rest string, err error) {
	s = s[1:] // consume '{'
	sawLE := false
	for {
		if s == "" {
			return "", fmt.Errorf("unterminated label block")
		}
		if s[0] == '}' {
			if histogram && !sawLE {
				return "", fmt.Errorf("histogram bucket without le label")
			}
			return s[1:], nil
		}
		eq := strings.Index(s, "=")
		if eq < 0 {
			return "", fmt.Errorf("label without '=' in %q", s)
		}
		lname := s[:eq]
		if !validLabelName(lname) {
			return "", fmt.Errorf("bad label name %q", lname)
		}
		if lname == "le" {
			sawLE = true
		}
		s = s[eq+1:]
		if s == "" || s[0] != '"' {
			return "", fmt.Errorf("label %s value not quoted", lname)
		}
		s = s[1:]
		// scan the quoted value honoring \\ \" \n escapes
		closed := false
		for i := 0; i < len(s); i++ {
			if s[i] == '\\' {
				if i+1 >= len(s) {
					return "", fmt.Errorf("dangling escape in label %s", lname)
				}
				switch s[i+1] {
				case '\\', '"', 'n':
					i++
					continue
				default:
					return "", fmt.Errorf("bad escape \\%c in label %s", s[i+1], lname)
				}
			}
			if s[i] == '"' {
				s = s[i+1:]
				closed = true
				break
			}
		}
		if !closed {
			return "", fmt.Errorf("unterminated value for label %s", lname)
		}
		if s != "" && s[0] == ',' {
			s = s[1:]
		}
	}
}
