// Package obs is the zero-dependency observability layer shared by the
// router, the server and the CLI: request-scoped tracing with W3C
// traceparent propagation (trace.go, export.go), a Prometheus-text
// metrics registry both /metrics endpoints render from (metrics.go,
// expo.go), and log/slog-based structured logging with trace ids
// attached (log.go).
//
// The span model is deliberately small — trace id, span id, parent,
// start/duration, string attributes, timestamped events, and links to
// other traces (how a coalesced joiner points at the leader's run).
// Spans are created by a Tracer, carried through call trees in a
// context.Context, and recorded on End into a fixed-size ring buffer
// (served as JSON at /debug/traces) plus an optional JSONL sink.
//
// Ids come from a mathx.RNG stream derived from (seed, tracer name), the
// same Derive discipline every other stochastic component uses, so tests
// get deterministic trace ids from deterministic seeds. Every method is
// nil-receiver safe: a nil *Tracer starts nil *Spans and a nil *Span
// swallows attribute/event/End calls, so instrumented code paths need no
// "is tracing on" guards and a tracer-less Server runs with zero
// overhead beyond the nil checks.
package obs

import (
	"context"
	"encoding/hex"
	"io"
	"net/http"
	"sync"
	"time"

	"elites/internal/mathx"
)

// TraceID is the 128-bit W3C trace id.
type TraceID [16]byte

// SpanID is the 64-bit W3C span (parent) id.
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the id is the invalid all-zero id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the id as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// Attr is one key=value attribute on a span or event.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Event is one timestamped occurrence inside a span: a retry, an
// injected fault firing, a breaker opening.
type Event struct {
	Name  string
	Time  time.Time
	Attrs []Attr
}

// Span is one timed operation in a trace. Create spans through a Tracer
// (Root, Continue, Child, StartSpan) and finish them with End; a
// finished span is recorded into the tracer's ring buffer and sink.
// All methods are safe on a nil receiver and safe for concurrent use.
type Span struct {
	tracer *Tracer
	trace  TraceID
	id     SpanID
	parent SpanID
	name   string
	start  time.Time

	mu     sync.Mutex
	attrs  []Attr
	events []Event
	links  []TraceID
	ended  bool
}

// TraceID returns the span's trace id (zero for a nil span).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.trace
}

// SpanID returns the span's own id (zero for a nil span).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// Name returns the span's operation name ("" for a nil span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetAttr sets a string attribute; the last write per key wins at export.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{key, value})
	s.mu.Unlock()
}

// SetAttrBool sets a boolean attribute ("true"/"false").
func (s *Span) SetAttrBool(key string, v bool) {
	if v {
		s.SetAttr(key, "true")
	} else {
		s.SetAttr(key, "false")
	}
}

// SetAttrInt sets an integer attribute.
func (s *Span) SetAttrInt(key string, v int) {
	s.SetAttr(key, itoa(v))
}

// AddEvent records an event at time.Now(); kv is alternating key, value.
func (s *Span) AddEvent(name string, kv ...string) {
	s.AddEventAt(name, time.Now(), kv...)
}

// AddEventAt records an event at an explicit time — how spans
// synthesized after the fact (the per-stage pipeline spans) place their
// retry and fault events inside the stage window.
func (s *Span) AddEventAt(name string, at time.Time, kv ...string) {
	if s == nil {
		return
	}
	ev := Event{Name: name, Time: at}
	for i := 0; i+1 < len(kv); i += 2 {
		ev.Attrs = append(ev.Attrs, Attr{kv[i], kv[i+1]})
	}
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// AddLink records a pointer to another trace — a coalesced joiner links
// to the leader run's trace this way.
func (s *Span) AddLink(t TraceID) {
	if s == nil || t.IsZero() {
		return
	}
	s.mu.Lock()
	s.links = append(s.links, t)
	s.mu.Unlock()
}

// Child starts a child span under s, beginning now.
func (s *Span) Child(name string) *Span { return s.ChildAt(name, time.Now()) }

// ChildAt starts a child span with an explicit start time (for spans
// reconstructed from timings after the work already ran).
func (s *Span) ChildAt(name string, start time.Time) *Span {
	if s == nil || s.tracer == nil {
		return nil
	}
	return s.tracer.start(name, s.trace, s.id, start)
}

// End finishes the span now and records it.
func (s *Span) End() { s.EndAt(time.Now()) }

// EndAt finishes the span at an explicit end time and records it.
// Double-End is a no-op.
func (s *Span) EndAt(end time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	rec := s.recordLocked(end)
	s.mu.Unlock()
	if s.tracer != nil {
		s.tracer.record(rec)
	}
}

// recordLocked snapshots the span as an exportable record; s.mu held.
func (s *Span) recordLocked(end time.Time) SpanRecord {
	rec := SpanRecord{
		Trace:   s.trace.String(),
		Span:    s.id.String(),
		Name:    s.name,
		StartUS: s.start.UnixMicro(),
		DurUS:   end.Sub(s.start).Microseconds(),
	}
	if !s.parent.IsZero() {
		rec.Parent = s.parent.String()
	}
	if len(s.attrs) > 0 {
		rec.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			rec.Attrs[a.Key] = a.Value
		}
	}
	for _, ev := range s.events {
		er := EventRecord{Name: ev.Name, AtUS: ev.Time.UnixMicro()}
		if len(ev.Attrs) > 0 {
			er.Attrs = make(map[string]string, len(ev.Attrs))
			for _, a := range ev.Attrs {
				er.Attrs[a.Key] = a.Value
			}
		}
		rec.Events = append(rec.Events, er)
	}
	for _, l := range s.links {
		rec.Links = append(rec.Links, l.String())
	}
	return rec
}

// TracerConfig configures a Tracer.
type TracerConfig struct {
	// Name distinguishes this tracer's id stream from other processes
	// started with the same seed (e.g. "eliteserve:127.0.0.1:9001") and
	// is attached to every span as the "service" attribute when set.
	Name string
	// Seed feeds the id stream via mathx.NewRNG(Seed).Derive, so ids are
	// deterministic per (seed, name) — the same discipline every other
	// stochastic component uses.
	Seed uint64
	// RingSize bounds the finished-span ring buffer (0 means 4096).
	RingSize int
	// Sink, when non-nil, receives every finished span as one JSON line
	// (the -trace-out format scripts/traceview.sh pretty-prints).
	Sink io.Writer
}

// Tracer creates spans and collects finished ones. Safe for concurrent
// use; a nil *Tracer is a valid no-op tracer.
type Tracer struct {
	name string

	mu   sync.Mutex
	rng  *mathx.RNG
	ring []SpanRecord
	next int
	full bool

	sinkMu sync.Mutex
	sink   io.Writer
}

// NewTracer builds a Tracer from cfg.
func NewTracer(cfg TracerConfig) *Tracer {
	size := cfg.RingSize
	if size <= 0 {
		size = 4096
	}
	return &Tracer{
		name: cfg.Name,
		rng:  mathx.NewRNG(cfg.Seed).Derive("obs/ids/" + cfg.Name),
		ring: make([]SpanRecord, size),
		sink: cfg.Sink,
	}
}

// newTraceID draws a fresh trace id.
func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	t.mu.Lock()
	for id.IsZero() {
		putUint64(id[0:8], t.rng.Uint64())
		putUint64(id[8:16], t.rng.Uint64())
	}
	t.mu.Unlock()
	return id
}

// newSpanID draws a fresh span id; the caller holds no tracer locks.
func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	t.mu.Lock()
	for id.IsZero() {
		putUint64(id[:], t.rng.Uint64())
	}
	t.mu.Unlock()
	return id
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}

// start builds a live span; trace may be zero (a fresh trace is drawn).
func (t *Tracer) start(name string, trace TraceID, parent SpanID, at time.Time) *Span {
	if t == nil {
		return nil
	}
	if trace.IsZero() {
		trace = t.newTraceID()
	}
	sp := &Span{tracer: t, trace: trace, id: t.newSpanID(), parent: parent, name: name, start: at}
	if t.name != "" {
		sp.attrs = append(sp.attrs, Attr{"service", t.name})
	}
	return sp
}

// Root starts a new trace with a root span named name.
func (t *Tracer) Root(name string) *Span {
	if t == nil {
		return nil
	}
	return t.start(name, TraceID{}, SpanID{}, time.Now())
}

// Continue starts a span continuing a remote trace (from a traceparent
// header): same trace id, parented under the remote span.
func (t *Tracer) Continue(name string, trace TraceID, parent SpanID) *Span {
	if t == nil {
		return nil
	}
	return t.start(name, trace, parent, time.Now())
}

// StartFromHeader continues the trace in h's traceparent header, or
// starts a new root when the header is absent or malformed.
func (t *Tracer) StartFromHeader(h http.Header, name string) *Span {
	if t == nil {
		return nil
	}
	if trace, parent, ok := ParseTraceparent(h.Get("traceparent")); ok {
		return t.Continue(name, trace, parent)
	}
	return t.Root(name)
}

// spanKey is the context key for the current span.
type spanKey struct{}

// ContextWithSpan returns ctx carrying sp as the current span.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFromContext returns the current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// StartSpan starts a child of ctx's current span (using that span's
// tracer), or a root span on t when ctx carries none, and returns a ctx
// carrying the new span. With a nil tracer and no span in ctx it returns
// (ctx, nil).
func StartSpan(ctx context.Context, t *Tracer, name string) (context.Context, *Span) {
	if parent := SpanFromContext(ctx); parent != nil {
		sp := parent.Child(name)
		return ContextWithSpan(ctx, sp), sp
	}
	sp := t.Root(name)
	return ContextWithSpan(ctx, sp), sp
}

// ParseTraceID decodes a 32-hex-digit trace id; ok is false for
// malformed or all-zero input.
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 32 {
		return TraceID{}, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil || id.IsZero() {
		return TraceID{}, false
	}
	return id, true
}

// TraceIDFromContext returns the current span's trace id as hex, or "".
func TraceIDFromContext(ctx context.Context) string {
	if sp := SpanFromContext(ctx); sp != nil {
		return sp.TraceID().String()
	}
	return ""
}

// itoa is strconv.Itoa without the import weight in this hot path.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
