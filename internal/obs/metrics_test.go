package obs

import (
	"net/http"
	"strings"
	"testing"
)

// TestRegistryRenderGolden pins the classic exposition bytes the
// registry produces — the same format the hand-rolled serve and fleet
// emitters printed, which CI greps and scripts/fleetload.sh parse.
func TestRegistryRenderGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("demo_total", "Things counted.")
	c.Add(3)
	r.GaugeFunc("demo_uptime_seconds", "Uptime.", 3, func() float64 { return 1.5 })
	g := r.Gauge("demo_workers", "Workers.", GaugeShortest)
	g.Set(2)
	h := r.Histogram("demo_seconds", "Latency.", []float64{0.005, 0.01})
	h.Observe(0.003)
	h.Observe(0.007)
	h.Observe(9)
	cv := r.CounterVec("demo_requests_total", "Requests.", "route", "code")
	cv.Inc("report", "200")
	cv.Inc("healthz", "200")
	cv.Inc("report", "200")
	gv := r.GaugeVec("demo_up", "Per-worker up.", GaugeShortest, "worker")
	gv.Set(1, "b")
	gv.Set(0, "a") // first-Set order, NOT sorted

	var b strings.Builder
	r.Write(&b, false)
	want := `# HELP demo_total Things counted.
# TYPE demo_total counter
demo_total 3
# HELP demo_uptime_seconds Uptime.
# TYPE demo_uptime_seconds gauge
demo_uptime_seconds 1.500
# HELP demo_workers Workers.
# TYPE demo_workers gauge
demo_workers 2
# HELP demo_seconds Latency.
# TYPE demo_seconds histogram
demo_seconds_bucket{le="0.005"} 1
demo_seconds_bucket{le="0.01"} 2
demo_seconds_bucket{le="+Inf"} 3
demo_seconds_sum 9.010000
demo_seconds_count 3
# HELP demo_requests_total Requests.
# TYPE demo_requests_total counter
demo_requests_total{route="healthz",code="200"} 1
demo_requests_total{route="report",code="200"} 2
# HELP demo_up Per-worker up.
# TYPE demo_up gauge
demo_up{worker="b"} 1
demo_up{worker="a"} 0
`
	if got := b.String(); got != want {
		t.Fatalf("classic render:\n%s\nwant:\n%s", got, want)
	}
	if err := ValidateExposition([]byte(b.String())); err != nil {
		t.Fatalf("golden output fails its own validator: %v", err)
	}
}

// TestCounterVecLabelOrder: CounterVec sorts series lexicographically by
// label values, so scrapes are stable regardless of Inc order.
func TestCounterVecLabelOrder(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("x_total", "X.", "route", "code")
	cv.Inc("b", "500")
	cv.Inc("a", "200")
	cv.Inc("a", "503")
	var b strings.Builder
	r.Write(&b, false)
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")[2:]
	want := []string{
		`x_total{route="a",code="200"} 1`,
		`x_total{route="a",code="503"} 1`,
		`x_total{route="b",code="500"} 1`,
	}
	for i, w := range want {
		if lines[i] != w {
			t.Fatalf("series %d = %q, want %q\nfull:\n%s", i, lines[i], w, b.String())
		}
	}
}

// TestLabelEscaping: backslash, quote and newline escape identically for
// every vec family — the drift between the old emitters this package
// retired.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("esc_total", "Escaping.", "v")
	cv.Inc("a\\b\"c\nd")
	var b strings.Builder
	r.Write(&b, false)
	want := `esc_total{v="a\\b\"c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaped render missing %q:\n%s", want, b.String())
	}
	if err := ValidateExposition([]byte(b.String())); err != nil {
		t.Fatalf("escaped output invalid: %v", err)
	}
}

// TestExemplarsOnlyInOpenMetrics: classic output carries no exemplars
// (fleetload.sh's awk parsing depends on plain "name value" samples);
// the OM flavor carries them plus the EOF marker.
func TestExemplarsOnlyInOpenMetrics(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", DefaultLatencyBuckets)
	h.ObserveExemplar(0.007, "4bf92f3577b34da6a3ce929d0e0e4736")

	var classic, om strings.Builder
	r.Write(&classic, false)
	r.Write(&om, true)
	if strings.Contains(classic.String(), "trace_id") || strings.Contains(classic.String(), "# EOF") {
		t.Fatalf("classic render leaked OM syntax:\n%s", classic.String())
	}
	if !strings.Contains(om.String(), `# {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 0.007`) {
		t.Fatalf("OM render missing exemplar:\n%s", om.String())
	}
	if !strings.HasSuffix(om.String(), "# EOF\n") {
		t.Fatalf("OM render missing EOF marker:\n%s", om.String())
	}
	if err := ValidateExposition([]byte(classic.String())); err != nil {
		t.Fatalf("classic render invalid: %v", err)
	}
}

// TestNegotiateExposition: OM only on explicit Accept.
func TestNegotiateExposition(t *testing.T) {
	h := http.Header{}
	if ct, om := NegotiateExposition(h); om || !strings.Contains(ct, "0.0.4") {
		t.Fatalf("no Accept: ct=%q om=%v", ct, om)
	}
	h.Set("Accept", "application/openmetrics-text; version=1.0.0")
	if ct, om := NegotiateExposition(h); !om || !strings.Contains(ct, "openmetrics") {
		t.Fatalf("OM Accept: ct=%q om=%v", ct, om)
	}
}

// TestDuplicateRegistrationPanics: duplicate names are programming
// errors and fail loudly.
func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "First.")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "Second.")
}

// TestGaugeVecReset: Reset drops all series so scrape handlers can
// rebuild per-worker gauges from a live snapshot.
func TestGaugeVecReset(t *testing.T) {
	r := NewRegistry()
	gv := r.GaugeVec("up", "Up.", GaugeShortest, "worker")
	gv.Set(1, "w1")
	gv.Reset()
	gv.Set(0, "w2")
	var b strings.Builder
	r.Write(&b, false)
	if strings.Contains(b.String(), "w1") || !strings.Contains(b.String(), `up{worker="w2"} 0`) {
		t.Fatalf("Reset did not drop old series:\n%s", b.String())
	}
}

// TestValidateExposition: the validator accepts well-formed exposition
// and rejects each class of malformation with a line number.
func TestValidateExposition(t *testing.T) {
	good := "# HELP a_total A.\n# TYPE a_total counter\na_total 1\n"
	if err := ValidateExposition([]byte(good)); err != nil {
		t.Fatalf("good exposition rejected: %v", err)
	}
	bad := []struct {
		name, in string
	}{
		{"sample without TYPE", "a_total 1\n"},
		{"bad metric name", "# HELP 1bad A.\n# TYPE 1bad counter\n1bad 1\n"},
		{"unknown TYPE kind", "# TYPE a_total thing\na_total 1\n"},
		{"duplicate TYPE", "# TYPE a_total counter\n# TYPE a_total counter\na_total 1\n"},
		{"TYPE after samples", "# TYPE a_total counter\na_total 1\n# TYPE a_total counter\n"},
		{"bad value", "# TYPE a_total counter\na_total xyz\n"},
		{"bad label name", "# TYPE a_total counter\na_total{1x=\"v\"} 1\n"},
		{"unquoted label", "# TYPE a_total counter\na_total{x=v} 1\n"},
		{"bad escape", "# TYPE a_total counter\na_total{x=\"\\q\"} 1\n"},
		{"unterminated label", "# TYPE a_total counter\na_total{x=\"v\" 1\n"},
		{"blank line inside", "# TYPE a_total counter\n\na_total 1\n"},
		{"bucket without le", "# TYPE h histogram\nh_bucket{x=\"1\"} 1\nh_sum 1\nh_count 1\n"},
		{"histogram missing parts", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\n"},
	}
	for _, tc := range bad {
		if err := ValidateExposition([]byte(tc.in)); err == nil {
			t.Errorf("%s: accepted:\n%s", tc.name, tc.in)
		}
	}
}
