package obs

// log.go is the structured-logging third of the package: log/slog
// loggers in the operator-chosen -log-format, plus helpers that stamp
// trace and span ids onto log records so a slow-request log line can be
// joined against /debug/traces output.

import (
	"fmt"
	"io"
	"log/slog"
)

// NewLogger builds a slog.Logger writing to w in the given format,
// "text" or "json" — the value space of the -log-format flag.
func NewLogger(format string, w io.Writer) (*slog.Logger, error) {
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
}

// WithSpan returns l with the span's trace and span ids attached to
// every record; it returns l unchanged for a nil span, and nil for a
// nil logger (slog methods on which the callers must not invoke — use
// LogAttrs-style guards or the nil-safe helpers below).
func WithSpan(l *slog.Logger, sp *Span) *slog.Logger {
	if l == nil || sp == nil {
		return l
	}
	return l.With(
		slog.String("trace", sp.TraceID().String()),
		slog.String("span", sp.SpanID().String()),
	)
}
