package obs

// export.go is the read side of the tracer: W3C traceparent encode /
// decode, the finished-span ring buffer behind GET /debug/traces, the
// JSONL sink behind -trace-out, and RenderTree, the indented duration
// tree used by slow-request flight-recorder dumps and traceview.sh.

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// SpanRecord is one finished span, as exported over /debug/traces and
// the JSONL sink. Times are microseconds: StartUS since the Unix epoch,
// DurUS a duration.
type SpanRecord struct {
	Trace   string            `json:"trace"`
	Span    string            `json:"span"`
	Parent  string            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	StartUS int64             `json:"start_us"`
	DurUS   int64             `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
	Events  []EventRecord     `json:"events,omitempty"`
	Links   []string          `json:"links,omitempty"`
}

// EventRecord is one span event in export form.
type EventRecord struct {
	Name  string            `json:"name"`
	AtUS  int64             `json:"at_us"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Traceparent renders the span as a W3C traceparent header value
// (version 00, sampled flag set), or "" for a nil span.
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return "00-" + s.trace.String() + "-" + s.id.String() + "-01"
}

// ParseTraceparent decodes a W3C traceparent header value. It accepts
// any version whose first two fields are the standard 32-hex trace id
// and 16-hex parent span id, and rejects all-zero ids per the spec.
func ParseTraceparent(v string) (trace TraceID, parent SpanID, ok bool) {
	parts := strings.Split(strings.TrimSpace(v), "-")
	if len(parts) < 4 || len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 {
		return TraceID{}, SpanID{}, false
	}
	if _, err := hex.Decode(trace[:], []byte(parts[1])); err != nil {
		return TraceID{}, SpanID{}, false
	}
	if _, err := hex.Decode(parent[:], []byte(parts[2])); err != nil {
		return TraceID{}, SpanID{}, false
	}
	if trace.IsZero() || parent.IsZero() {
		return TraceID{}, SpanID{}, false
	}
	return trace, parent, true
}

// InjectHeader sets h's traceparent header from sp; no-op for nil sp.
func InjectHeader(h http.Header, sp *Span) {
	if sp == nil {
		return
	}
	h.Set("traceparent", sp.Traceparent())
}

// record appends a finished span to the ring and the sink.
func (t *Tracer) record(rec SpanRecord) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring[t.next] = rec
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()

	if t.sink != nil {
		line, err := json.Marshal(rec)
		if err == nil {
			t.sinkMu.Lock()
			t.sink.Write(append(line, '\n'))
			t.sinkMu.Unlock()
		}
	}
}

// Spans returns the buffered finished spans, oldest first.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []SpanRecord
	if t.full {
		out = append(out, t.ring[t.next:]...)
	}
	out = append(out, t.ring[:t.next]...)
	return out
}

// TraceSpans returns the buffered spans of one trace, oldest first.
func (t *Tracer) TraceSpans(trace string) []SpanRecord {
	var out []SpanRecord
	for _, rec := range t.Spans() {
		if rec.Trace == trace {
			out = append(out, rec)
		}
	}
	return out
}

// traceGroup is one trace in the /debug/traces response.
type traceGroup struct {
	Trace string       `json:"trace"`
	Spans []SpanRecord `json:"spans"`
}

// ServeTraces handles GET /debug/traces: the buffered spans grouped by
// trace id, ordered oldest trace first. Query parameters: trace=<id>
// keeps only that trace; min_ms=<n> keeps traces whose longest span is
// at least n milliseconds.
func (t *Tracer) ServeTraces(w http.ResponseWriter, r *http.Request) {
	if t == nil {
		http.Error(w, "tracing disabled", http.StatusNotFound)
		return
	}
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	wantTrace := r.URL.Query().Get("trace")
	minMS := 0.0
	if v := r.URL.Query().Get("min_ms"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			http.Error(w, "bad min_ms", http.StatusBadRequest)
			return
		}
		minMS = f
	}

	groups := map[string]*traceGroup{}
	var order []string
	for _, rec := range t.Spans() {
		if wantTrace != "" && rec.Trace != wantTrace {
			continue
		}
		g, ok := groups[rec.Trace]
		if !ok {
			g = &traceGroup{Trace: rec.Trace}
			groups[rec.Trace] = g
			order = append(order, rec.Trace)
		}
		g.Spans = append(g.Spans, rec)
	}

	out := make([]traceGroup, 0, len(order))
	for _, id := range order {
		g := groups[id]
		if minMS > 0 {
			longest := int64(0)
			for _, rec := range g.Spans {
				if rec.DurUS > longest {
					longest = rec.DurUS
				}
			}
			if float64(longest)/1000.0 < minMS {
				continue
			}
		}
		out = append(out, *g)
	}

	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Traces []traceGroup `json:"traces"`
	}{Traces: out})
}

// RenderTree formats one trace's spans as an indented duration tree —
// the shape slow-request dumps log and traceview.sh prints:
//
//	router.request 12.4ms
//	  router.attempt 3.1ms worker=127.0.0.1:9001
//	  serve.report 8.9ms
//	    pipeline 8.2ms
//	      stage.degree 0.4ms cache_hit=true
//
// Orphan spans (parent not in the slice, e.g. evicted from the ring)
// render at the top level. Siblings sort by start time.
func RenderTree(spans []SpanRecord) string {
	byID := make(map[string]int, len(spans))
	for i, rec := range spans {
		byID[rec.Span] = i
	}
	children := make(map[string][]int)
	var roots []int
	for i, rec := range spans {
		if rec.Parent != "" {
			if _, ok := byID[rec.Parent]; ok {
				children[rec.Parent] = append(children[rec.Parent], i)
				continue
			}
		}
		roots = append(roots, i)
	}
	byStart := func(idx []int) {
		sort.SliceStable(idx, func(a, b int) bool { return spans[idx[a]].StartUS < spans[idx[b]].StartUS })
	}
	byStart(roots)
	for _, c := range children {
		byStart(c)
	}

	var b strings.Builder
	var walk func(i, depth int)
	walk = func(i, depth int) {
		rec := spans[i]
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "%s %s", rec.Name, time.Duration(rec.DurUS)*time.Microsecond)
		keys := make([]string, 0, len(rec.Attrs))
		for k := range rec.Attrs {
			if k == "service" {
				continue
			}
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%s", k, rec.Attrs[k])
		}
		for _, ev := range rec.Events {
			fmt.Fprintf(&b, " [%s]", ev.Name)
		}
		b.WriteByte('\n')
		for _, c := range children[rec.Span] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}
