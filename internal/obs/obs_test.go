package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestDeterministicIDs: trace and span ids are a pure function of
// (seed, tracer name) — the same Derive discipline as every other
// stochastic component — so tests can pin them.
func TestDeterministicIDs(t *testing.T) {
	a := NewTracer(TracerConfig{Name: "svc", Seed: 7})
	b := NewTracer(TracerConfig{Name: "svc", Seed: 7})
	sa, sb := a.Root("op"), b.Root("op")
	if sa.TraceID() != sb.TraceID() || sa.SpanID() != sb.SpanID() {
		t.Fatalf("same (seed,name) drew different ids: %s/%s vs %s/%s",
			sa.TraceID(), sa.SpanID(), sb.TraceID(), sb.SpanID())
	}
	c := NewTracer(TracerConfig{Name: "other", Seed: 7})
	if sc := c.Root("op"); sc.TraceID() == sa.TraceID() {
		t.Fatalf("different tracer names drew the same trace id %s", sc.TraceID())
	}
	d := NewTracer(TracerConfig{Name: "svc", Seed: 8})
	if sd := d.Root("op"); sd.TraceID() == sa.TraceID() {
		t.Fatalf("different seeds drew the same trace id %s", sd.TraceID())
	}
}

// TestTraceparentRoundTrip: a span's header value parses back to its own
// trace and span ids, and malformed/all-zero headers are rejected.
func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTracer(TracerConfig{Name: "svc", Seed: 1})
	sp := tr.Root("op")
	trace, parent, ok := ParseTraceparent(sp.Traceparent())
	if !ok || trace != sp.TraceID() || parent != sp.SpanID() {
		t.Fatalf("round trip failed: %q -> %s %s %v", sp.Traceparent(), trace, parent, ok)
	}
	for _, bad := range []string{
		"",
		"00-abc-def-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero parent id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",    // missing flags
		"zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // ok: version opaque
	} {
		_, _, ok := ParseTraceparent(bad)
		wantOK := strings.HasPrefix(bad, "zz")
		if ok != wantOK {
			t.Errorf("ParseTraceparent(%q) ok=%v, want %v", bad, ok, wantOK)
		}
	}
	h := http.Header{}
	h.Set("traceparent", sp.Traceparent())
	cont := tr.StartFromHeader(h, "child")
	if cont.TraceID() != sp.TraceID() {
		t.Fatalf("StartFromHeader did not continue the trace: %s vs %s", cont.TraceID(), sp.TraceID())
	}
	fresh := tr.StartFromHeader(http.Header{}, "root")
	if fresh.TraceID() == sp.TraceID() || fresh.TraceID().IsZero() {
		t.Fatalf("StartFromHeader without header should start a fresh trace, got %s", fresh.TraceID())
	}
}

// TestNilSafety: every method on a nil tracer / nil span is a no-op, so
// instrumented code paths need no tracing-enabled guards.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.Root("op")
	if sp != nil {
		t.Fatalf("nil tracer Root = %v, want nil", sp)
	}
	sp.SetAttr("k", "v")
	sp.SetAttrBool("b", true)
	sp.SetAttrInt("i", 3)
	sp.AddEvent("e", "k", "v")
	sp.AddLink(TraceID{1})
	if c := sp.Child("c"); c != nil {
		t.Fatalf("nil span Child = %v, want nil", c)
	}
	sp.End()
	sp.End() // double End also fine
	if got := sp.Traceparent(); got != "" {
		t.Fatalf("nil span Traceparent = %q", got)
	}
	if tr.Spans() != nil {
		t.Fatal("nil tracer Spans != nil")
	}
	InjectHeader(http.Header{}, nil)
	ctx := ContextWithSpan(t.Context(), nil)
	if SpanFromContext(ctx) != nil {
		t.Fatal("nil span stored in context")
	}
	if TraceIDFromContext(ctx) != "" {
		t.Fatal("trace id from empty context")
	}
	rec := httptest.NewRecorder()
	tr.ServeTraces(rec, httptest.NewRequest(http.MethodGet, "/debug/traces", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("nil tracer ServeTraces = %d, want 404", rec.Code)
	}
}

// TestRingWrap: the ring keeps the newest RingSize spans, oldest first.
func TestRingWrap(t *testing.T) {
	tr := NewTracer(TracerConfig{Name: "svc", Seed: 1, RingSize: 4})
	for i := 0; i < 6; i++ {
		sp := tr.Root("op" + itoa(i))
		sp.End()
	}
	got := tr.Spans()
	if len(got) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(got))
	}
	for i, rec := range got {
		if want := "op" + itoa(i+2); rec.Name != want {
			t.Fatalf("span %d = %s, want %s (oldest first)", i, rec.Name, want)
		}
	}
}

// TestSinkJSONL: every finished span becomes one JSON line in the sink.
func TestSinkJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(TracerConfig{Name: "svc", Seed: 1, Sink: &buf})
	root := tr.Root("parent")
	child := root.Child("kid")
	child.SetAttr("k", "v")
	child.End()
	root.End()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("sink got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var recs [2]SpanRecord
	for i, ln := range lines {
		if err := json.Unmarshal([]byte(ln), &recs[i]); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
	}
	if recs[0].Name != "kid" || recs[1].Name != "parent" {
		t.Fatalf("sink order %s,%s; want kid,parent (End order)", recs[0].Name, recs[1].Name)
	}
	if recs[0].Parent != recs[1].Span || recs[0].Trace != recs[1].Trace {
		t.Fatal("child record does not reference parent span/trace")
	}
	if recs[0].Attrs["k"] != "v" || recs[0].Attrs["service"] != "svc" {
		t.Fatalf("child attrs = %v", recs[0].Attrs)
	}
}

// TestServeTraces: grouping by trace, the trace= and min_ms= filters,
// and method enforcement.
func TestServeTraces(t *testing.T) {
	tr := NewTracer(TracerConfig{Name: "svc", Seed: 1})
	fast := tr.Root("fast")
	fast.EndAt(fast.start.Add(2 * time.Millisecond))
	slow := tr.Root("slow")
	slow.EndAt(slow.start.Add(80 * time.Millisecond))

	serve := func(target string) (int, struct {
		Traces []struct {
			Trace string       `json:"trace"`
			Spans []SpanRecord `json:"spans"`
		} `json:"traces"`
	}) {
		rec := httptest.NewRecorder()
		tr.ServeTraces(rec, httptest.NewRequest(http.MethodGet, target, nil))
		var out struct {
			Traces []struct {
				Trace string       `json:"trace"`
				Spans []SpanRecord `json:"spans"`
			} `json:"traces"`
		}
		if rec.Code == http.StatusOK {
			if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
				t.Fatalf("bad JSON from %s: %v", target, err)
			}
		}
		return rec.Code, out
	}

	code, all := serve("/debug/traces")
	if code != http.StatusOK || len(all.Traces) != 2 {
		t.Fatalf("all traces: code=%d n=%d, want 200/2", code, len(all.Traces))
	}
	_, one := serve("/debug/traces?trace=" + slow.TraceID().String())
	if len(one.Traces) != 1 || one.Traces[0].Trace != slow.TraceID().String() {
		t.Fatalf("trace filter returned %+v", one.Traces)
	}
	_, slowOnly := serve("/debug/traces?min_ms=50")
	if len(slowOnly.Traces) != 1 || slowOnly.Traces[0].Spans[0].Name != "slow" {
		t.Fatalf("min_ms filter returned %+v", slowOnly.Traces)
	}
	if code, _ := serve("/debug/traces?min_ms=-1"); code != http.StatusBadRequest {
		t.Fatalf("negative min_ms = %d, want 400", code)
	}
	rec := httptest.NewRecorder()
	tr.ServeTraces(rec, httptest.NewRequest(http.MethodPost, "/debug/traces", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST = %d, want 405", rec.Code)
	}
}

// TestRenderTree: parent/child indentation, sibling start-time order,
// attrs sorted with service elided, events bracketed, orphans at top.
func TestRenderTree(t *testing.T) {
	tr := NewTracer(TracerConfig{Seed: 1}) // no name: no service attr
	root := tr.Root("router.request")
	second := root.ChildAt("b-later", root.start.Add(2*time.Millisecond))
	first := root.ChildAt("a-earlier", root.start.Add(1*time.Millisecond))
	first.SetAttr("worker", "w1")
	first.SetAttrBool("hedge", true)
	first.AddEvent("retry")
	first.EndAt(first.start.Add(time.Millisecond))
	second.EndAt(second.start.Add(time.Millisecond))
	root.EndAt(root.start.Add(5 * time.Millisecond))

	got := RenderTree(tr.TraceSpans(root.TraceID().String()))
	want := "router.request 5ms\n" +
		"  a-earlier 1ms hedge=true worker=w1 [retry]\n" +
		"  b-later 1ms\n"
	if got != want {
		t.Fatalf("RenderTree:\n%s\nwant:\n%s", got, want)
	}

	// An orphan (parent span outside the slice) renders at top level.
	orphan := []SpanRecord{{Span: "s1", Parent: "gone", Name: "lost", DurUS: 1000}}
	if got := RenderTree(orphan); got != "lost 1ms\n" {
		t.Fatalf("orphan render = %q", got)
	}
}

// TestContextHelpers: StartSpan childs off the context span, or roots on
// the tracer when the context carries none.
func TestContextHelpers(t *testing.T) {
	tr := NewTracer(TracerConfig{Name: "svc", Seed: 1})
	ctx, root := StartSpan(t.Context(), tr, "root")
	if root == nil || SpanFromContext(ctx) != root {
		t.Fatal("StartSpan did not install the root span")
	}
	ctx2, child := StartSpan(ctx, nil, "child")
	if child == nil || child.TraceID() != root.TraceID() {
		t.Fatal("StartSpan did not child off the context span")
	}
	if SpanFromContext(ctx2) != child {
		t.Fatal("child not installed in context")
	}
	if got := TraceIDFromContext(ctx2); got != root.TraceID().String() {
		t.Fatalf("TraceIDFromContext = %q", got)
	}
	if _, sp := StartSpan(t.Context(), nil, "none"); sp != nil {
		t.Fatal("StartSpan with nil tracer and empty ctx should return nil span")
	}
}

// TestCoalesceLinkFields: links and events survive export.
func TestCoalesceLinkFields(t *testing.T) {
	tr := NewTracer(TracerConfig{Name: "svc", Seed: 1})
	leader := tr.Root("leader")
	joiner := tr.Root("joiner")
	joiner.AddLink(leader.TraceID())
	joiner.AddEvent("coalesced", "leader_trace", leader.TraceID().String())
	joiner.End()
	leader.End()
	recs := tr.TraceSpans(joiner.TraceID().String())
	if len(recs) != 1 {
		t.Fatalf("joiner trace has %d spans", len(recs))
	}
	if len(recs[0].Links) != 1 || recs[0].Links[0] != leader.TraceID().String() {
		t.Fatalf("links = %v", recs[0].Links)
	}
	if len(recs[0].Events) != 1 || recs[0].Events[0].Attrs["leader_trace"] != leader.TraceID().String() {
		t.Fatalf("events = %+v", recs[0].Events)
	}
}
