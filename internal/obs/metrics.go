package obs

// metrics.go is the unified metrics registry both /metrics endpoints
// render from. It replaced the two hand-rolled emitters that used to
// live in internal/serve and internal/fleet (which had drifted on label
// escaping), so bucket layout, escaping and value formatting are now
// defined in exactly one place. The classic text render is
// byte-compatible with the old emitters — every pre-existing metric
// name, label and value format is preserved so CI greps and
// scripts/fleetload.sh keep working — and an OpenMetrics-flavored
// render adds trace-id exemplars on histogram buckets for clients that
// ask for it via Accept.

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets are the request-latency histogram upper bounds
// in seconds, shared by the server and the router.
var DefaultLatencyBuckets = []float64{
	0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// GaugeShortest formats a gauge with the shortest exact representation
// (0 renders "0", 1 renders "1").
const GaugeShortest = -1

// family is anything the registry can render.
type family interface {
	render(w io.Writer, om bool)
}

// Registry holds metric families and renders them in registration
// order. All families it hands out are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families []family
	names    map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

// add registers fam under name, panicking on duplicates — a duplicate
// registration is a programming error worth failing loudly on.
func (r *Registry) add(name string, fam family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic("obs: duplicate metric " + name)
	}
	r.names[name] = true
	r.families = append(r.families, fam)
}

// Write renders every family in registration order. The classic form
// (om=false) is Prometheus text exposition 0.0.4, byte-compatible with
// the emitters it replaced; om=true appends histogram exemplars and a
// trailing "# EOF" marker in the OpenMetrics style.
func (r *Registry) Write(w io.Writer, om bool) {
	r.mu.Lock()
	fams := make([]family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	for _, f := range fams {
		f.render(w, om)
	}
	if om {
		io.WriteString(w, "# EOF\n")
	}
}

// openMetricsContentType is what an OM render is served as.
const openMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// classicContentType is the classic exposition content type.
const classicContentType = "text/plain; version=0.0.4; charset=utf-8"

// NegotiateExposition picks the render flavor from a request's Accept
// header: OpenMetrics (with exemplars) only when explicitly requested,
// classic 0.0.4 otherwise.
func NegotiateExposition(h http.Header) (contentType string, om bool) {
	if strings.Contains(h.Get("Accept"), "application/openmetrics-text") {
		return openMetricsContentType, true
	}
	return classicContentType, false
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double-quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// header writes the HELP/TYPE preamble for one family.
func header(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	name string
	help string
	v    atomic.Uint64
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.add(name, c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) render(w io.Writer, om bool) {
	header(w, c.name, c.help, "counter")
	fmt.Fprintf(w, "%s %d\n", c.name, c.v.Load())
}

// counterFunc is a counter whose value is computed at scrape time.
type counterFunc struct {
	name string
	help string
	fn   func() uint64
}

// CounterFunc registers a counter read from fn at scrape time — for
// totals owned by another subsystem (e.g. breaker trips summed from
// per-worker state).
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.add(name, &counterFunc{name: name, help: help, fn: fn})
}

func (c *counterFunc) render(w io.Writer, om bool) {
	header(w, c.name, c.help, "counter")
	fmt.Fprintf(w, "%s %d\n", c.name, c.fn())
}

// formatGauge renders a gauge value: prec >= 0 is fixed-decimal %.Nf
// (how the old emitters printed uptime and ratios), GaugeShortest is
// the shortest exact form.
func formatGauge(v float64, prec int) string {
	if prec >= 0 {
		return strconv.FormatFloat(v, 'f', prec, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Gauge is a settable float metric.
type Gauge struct {
	name string
	help string
	prec int
	bits atomic.Uint64
}

// Gauge registers and returns a settable gauge; prec fixes the rendered
// decimal places (GaugeShortest for shortest-form).
func (r *Registry) Gauge(name, help string, prec int) *Gauge {
	g := &Gauge{name: name, help: help, prec: prec}
	r.add(name, g)
	return g
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) render(w io.Writer, om bool) {
	header(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %s\n", g.name, formatGauge(g.Value(), g.prec))
}

// gaugeFunc is a gauge computed at scrape time.
type gaugeFunc struct {
	name string
	help string
	prec int
	fn   func() float64
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, prec int, fn func() float64) {
	r.add(name, &gaugeFunc{name: name, help: help, prec: prec, fn: fn})
}

func (g *gaugeFunc) render(w io.Writer, om bool) {
	header(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %s\n", g.name, formatGauge(g.fn(), g.prec))
}

// exemplar is the last trace-id exemplar observed for one bucket.
type exemplar struct {
	traceID string
	value   float64
	atUnix  float64
}

// Histogram is a fixed-bucket histogram with optional trace-id
// exemplars. Buckets are upper bounds in seconds (or any unit).
type Histogram struct {
	name    string
	help    string
	buckets []float64

	mu        sync.Mutex
	counts    []uint64 // len(buckets)+1; last is +Inf
	sum       float64
	count     uint64
	exemplars []exemplar // parallel to counts; zero traceID = none
}

// Histogram registers and returns a histogram over the given upper
// bounds (which must be sorted ascending).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if !sort.Float64sAreSorted(buckets) {
		panic("obs: histogram buckets not sorted: " + name)
	}
	h := &Histogram{
		name:      name,
		help:      help,
		buckets:   buckets,
		counts:    make([]uint64, len(buckets)+1),
		exemplars: make([]exemplar, len(buckets)+1),
	}
	r.add(name, h)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) { h.ObserveExemplar(v, "") }

// ObserveExemplar records one value and, when traceID is non-empty,
// remembers it as the bucket's exemplar (rendered only in the
// OpenMetrics flavor).
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	i := sort.SearchFloat64s(h.buckets, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	if traceID != "" {
		h.exemplars[i] = exemplar{traceID: traceID, value: v, atUnix: float64(time.Now().UnixMilli()) / 1000}
	}
	h.mu.Unlock()
}

func (h *Histogram) render(w io.Writer, om bool) {
	h.mu.Lock()
	counts := make([]uint64, len(h.counts))
	copy(counts, h.counts)
	sum, count := h.sum, h.count
	exemplars := make([]exemplar, len(h.exemplars))
	copy(exemplars, h.exemplars)
	h.mu.Unlock()

	header(w, h.name, h.help, "histogram")
	cum := uint64(0)
	line := func(le string, i int) {
		fmt.Fprintf(w, "%s_bucket{le=%q} %d", h.name, le, cum)
		if om && exemplars[i].traceID != "" {
			ex := exemplars[i]
			fmt.Fprintf(w, " # {trace_id=%q} %g %.3f", ex.traceID, ex.value, ex.atUnix)
		}
		io.WriteString(w, "\n")
	}
	for i, ub := range h.buckets {
		cum += counts[i]
		line(strconv.FormatFloat(ub, 'g', -1, 64), i)
	}
	cum += counts[len(h.buckets)]
	line("+Inf", len(h.buckets))
	fmt.Fprintf(w, "%s_sum %.6f\n", h.name, sum)
	fmt.Fprintf(w, "%s_count %d\n", h.name, count)
}

// CounterVec is a family of counters keyed by label values.
type CounterVec struct {
	name   string
	help   string
	labels []string

	mu     sync.Mutex
	series map[string]*vecCounter
}

type vecCounter struct {
	values []string
	v      atomic.Uint64
}

// CounterVec registers and returns a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{name: name, help: help, labels: labels, series: map[string]*vecCounter{}}
	r.add(name, v)
	return v
}

// Inc adds one to the series with the given label values (created on
// first use). len(values) must equal the label count.
func (v *CounterVec) Inc(values ...string) {
	if len(values) != len(v.labels) {
		panic("obs: label cardinality mismatch on " + v.name)
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	s, ok := v.series[key]
	if !ok {
		s = &vecCounter{values: append([]string(nil), values...)}
		v.series[key] = s
	}
	v.mu.Unlock()
	s.v.Add(1)
}

func (v *CounterVec) render(w io.Writer, om bool) {
	v.mu.Lock()
	all := make([]*vecCounter, 0, len(v.series))
	for _, s := range v.series {
		all = append(all, s)
	}
	v.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		for k := range all[i].values {
			if all[i].values[k] != all[j].values[k] {
				return all[i].values[k] < all[j].values[k]
			}
		}
		return false
	})
	header(w, v.name, v.help, "counter")
	for _, s := range all {
		fmt.Fprintf(w, "%s%s %d\n", v.name, renderLabels(v.labels, s.values), s.v.Load())
	}
}

// GaugeVec is a family of settable gauges keyed by label values. Unlike
// CounterVec it supports Reset, so scrape handlers can rebuild
// per-worker state (up/breaker flags) from a live snapshot.
type GaugeVec struct {
	name   string
	help   string
	labels []string
	prec   int

	mu    sync.Mutex
	order []string
	vals  map[string]vecGaugeEntry
}

type vecGaugeEntry struct {
	values []string
	v      float64
}

// GaugeVec registers and returns a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, prec int, labels ...string) *GaugeVec {
	v := &GaugeVec{name: name, help: help, labels: labels, prec: prec, vals: map[string]vecGaugeEntry{}}
	r.add(name, v)
	return v
}

// Set stores val for the series with the given label values; series
// render in first-Set order (matching the old per-worker line order).
func (v *GaugeVec) Set(val float64, values ...string) {
	if len(values) != len(v.labels) {
		panic("obs: label cardinality mismatch on " + v.name)
	}
	key := strings.Join(values, "\x00")
	v.mu.Lock()
	if _, ok := v.vals[key]; !ok {
		v.order = append(v.order, key)
	}
	v.vals[key] = vecGaugeEntry{values: append([]string(nil), values...), v: val}
	v.mu.Unlock()
}

// Reset drops every series.
func (v *GaugeVec) Reset() {
	v.mu.Lock()
	v.order = v.order[:0]
	v.vals = map[string]vecGaugeEntry{}
	v.mu.Unlock()
}

func (v *GaugeVec) render(w io.Writer, om bool) {
	v.mu.Lock()
	entries := make([]vecGaugeEntry, 0, len(v.order))
	for _, key := range v.order {
		entries = append(entries, v.vals[key])
	}
	v.mu.Unlock()
	header(w, v.name, v.help, "gauge")
	for _, e := range entries {
		fmt.Fprintf(w, "%s%s %s\n", v.name, renderLabels(v.labels, e.values), formatGauge(e.v, v.prec))
	}
}

// renderLabels renders {k1="v1",k2="v2"} with exposition escaping.
func renderLabels(labels, values []string) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}
