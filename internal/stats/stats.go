// Package stats provides the descriptive and regression statistics behind
// the paper's figures: summary statistics, linear and logarithmic histograms
// (Figure 1), complementary CDFs (Figure 2), Pearson and Spearman
// correlations, ordinary least squares (the building block of the ADF test),
// and a penalized B-spline "GAM-style" smoother with GCV-chosen smoothing
// and ±1.96·SE confidence bands (the regression splines of Figure 5).
package stats

import (
	"errors"
	"math"
	"sort"

	"elites/internal/mathx"
)

// ErrEmpty indicates an empty input sample.
var ErrEmpty = errors.New("stats: empty sample")

// ErrMismatch indicates paired samples of different lengths.
var ErrMismatch = errors.New("stats: length mismatch")

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N                  int
	Mean, Var, Std     float64
	Min, Max           float64
	Median, Q1, Q3     float64
	Skewness, Kurtosis float64 // kurtosis is excess kurtosis
}

// Summarize computes a Summary. Variance is the unbiased (n−1) estimator.
func Summarize(xs []float64) (Summary, error) {
	n := len(xs)
	if n == 0 {
		return Summary{}, ErrEmpty
	}
	var s Summary
	s.N = n
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(n)
	var m2, m3, m4 float64
	for _, x := range xs {
		d := x - s.Mean
		m2 += d * d
		m3 += d * d * d
		m4 += d * d * d * d
	}
	if n > 1 {
		s.Var = m2 / float64(n-1)
		s.Std = math.Sqrt(s.Var)
	}
	if m2 > 0 {
		popVar := m2 / float64(n)
		s.Skewness = (m3 / float64(n)) / math.Pow(popVar, 1.5)
		s.Kurtosis = (m4/float64(n))/(popVar*popVar) - 3
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.Q1 = Quantile(sorted, 0.25)
	s.Q3 = Quantile(sorted, 0.75)
	return s, nil
}

// Quantile returns the p-quantile (linear interpolation, type-7) of an
// ascending-sorted sample.
func Quantile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	h := p * float64(n-1)
	i := int(math.Floor(h))
	frac := h - float64(i)
	if i+1 >= n {
		return sorted[n-1]
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// Pearson returns the Pearson correlation coefficient of paired samples.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, ErrMismatch
	}
	n := len(x)
	if n < 2 {
		return 0, ErrEmpty
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0, nil
	}
	return cov / math.Sqrt(vx*vy), nil
}

// Spearman returns the Spearman rank correlation (Pearson on midranks; ties
// receive the average of the ranks they span).
func Spearman(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, ErrMismatch
	}
	rx := Ranks(x)
	ry := Ranks(y)
	return Pearson(rx, ry)
}

// Ranks returns 1-based midranks of the sample.
func Ranks(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && x[idx[j+1]] == x[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// CorrelationTest reports the t-test p-value for H0: ρ=0 given a Pearson
// correlation r on n pairs.
func CorrelationTest(r float64, n int) float64 {
	if n < 3 || math.Abs(r) >= 1 {
		if math.Abs(r) >= 1 {
			return 0
		}
		return 1
	}
	t := r * math.Sqrt(float64(n-2)/(1-r*r))
	return 2 * mathx.StudentTSF(math.Abs(t), float64(n-2))
}
