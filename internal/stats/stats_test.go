package stats

import (
	"math"
	"testing"
	"testing/quick"

	"elites/internal/mathx"
)

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary = %+v", s)
	}
	// Unbiased variance of this classic sample is 32/7.
	if math.Abs(s.Var-32.0/7) > 1e-12 {
		t.Fatalf("Var = %v, want %v", s.Var, 32.0/7)
	}
	if math.Abs(s.Median-4.5) > 1e-12 {
		t.Fatalf("Median = %v", s.Median)
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatal("empty should error")
	}
}

func TestSummarizeSkewness(t *testing.T) {
	rng := mathx.NewRNG(1)
	sym := make([]float64, 50000)
	for i := range sym {
		sym[i] = rng.Normal()
	}
	s, _ := Summarize(sym)
	if math.Abs(s.Skewness) > 0.05 || math.Abs(s.Kurtosis) > 0.1 {
		t.Fatalf("normal sample skew=%v kurt=%v", s.Skewness, s.Kurtosis)
	}
	heavy := make([]float64, 50000)
	for i := range heavy {
		heavy[i] = rng.LogNormal(0, 1)
	}
	hs, _ := Summarize(heavy)
	if hs.Skewness < 1 {
		t.Fatalf("lognormal should be right-skewed, got %v", hs.Skewness)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	r, err := Pearson(x, y)
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Fatalf("r = %v, err %v", r, err)
	}
	yn := []float64{-1, -2, -3, -4}
	r, _ = Pearson(x, yn)
	if math.Abs(r+1) > 1e-12 {
		t.Fatalf("r = %v, want -1", r)
	}
}

func TestPearsonConstantIsZero(t *testing.T) {
	r, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil || r != 0 {
		t.Fatalf("constant series: r=%v err=%v", r, err)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any monotone transform has Spearman 1.
	x := []float64{1, 5, 2, 8, 3}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = math.Exp(v)
	}
	r, err := Spearman(x, y)
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Fatalf("Spearman = %v, err %v", r, err)
	}
}

func TestRanksWithTies(t *testing.T) {
	r := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v", r)
		}
	}
}

func TestCorrelationTest(t *testing.T) {
	// Strong correlation on decent n: tiny p.
	if p := CorrelationTest(0.9, 100); p > 1e-10 {
		t.Fatalf("p = %v, want tiny", p)
	}
	// Zero correlation: p = 1.
	if p := CorrelationTest(0, 100); math.Abs(p-1) > 1e-9 {
		t.Fatalf("p = %v, want 1", p)
	}
	if p := CorrelationTest(1, 50); p != 0 {
		t.Fatalf("perfect r: p = %v", p)
	}
}

func TestPearsonPropertySymmetricBounded(t *testing.T) {
	rng := mathx.NewRNG(2)
	f := func(seed uint32) bool {
		n := 3 + rng.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.Normal()
			y[i] = rng.Normal()
		}
		rxy, _ := Pearson(x, y)
		ryx, _ := Pearson(y, x)
		return math.Abs(rxy-ryx) < 1e-12 && rxy >= -1-1e-12 && rxy <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
