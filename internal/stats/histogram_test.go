package stats

import (
	"math"
	"testing"

	"elites/internal/mathx"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if h.Total() != 10 {
		t.Fatalf("total = %d", h.Total())
	}
	for _, c := range h.Counts {
		if c != 2 {
			t.Fatalf("uniform data should spread evenly: %v", h.Counts)
		}
	}
	if len(h.Edges) != 6 {
		t.Fatalf("edges = %v", h.Edges)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram([]float64{5, 5, 5}, 3)
	if h.Total() != 3 {
		t.Fatalf("constant data lost: %v", h.Counts)
	}
	h = NewHistogram(nil, 3)
	if h.Total() != 0 {
		t.Fatal("empty data")
	}
}

func TestLogHistogram(t *testing.T) {
	xs := []float64{1, 10, 100, 1000, -5, 0}
	h := NewLogHistogram(xs, 3)
	if h.Total() != 4 {
		t.Fatalf("non-positive not dropped: total=%d", h.Total())
	}
	// Edges should be geometric.
	ratio1 := h.Edges[1] / h.Edges[0]
	ratio2 := h.Edges[2] / h.Edges[1]
	if math.Abs(ratio1-ratio2) > 1e-9 {
		t.Fatalf("edges not geometric: %v", h.Edges)
	}
	gc := h.GeometricCenters()
	if len(gc) != 3 || gc[0] <= h.Edges[0] || gc[0] >= h.Edges[1] {
		t.Fatalf("geometric centers wrong: %v", gc)
	}
}

func TestDensitiesIntegrateToOne(t *testing.T) {
	rng := mathx.NewRNG(1)
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = rng.Normal()
	}
	h := NewHistogram(xs, 40)
	sum := 0.0
	for i, d := range h.Densities() {
		sum += d * (h.Edges[i+1] - h.Edges[i])
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("densities integrate to %v", sum)
	}
}

func TestEmpiricalCCDF(t *testing.T) {
	pts := EmpiricalCCDF([]float64{1, 2, 2, 3})
	// P(X>=1)=1, P(X>=2)=0.75, P(X>=3)=0.25
	if len(pts) != 3 {
		t.Fatalf("points = %v", pts)
	}
	if pts[0].P != 1 || pts[1].P != 0.75 || pts[2].P != 0.25 {
		t.Fatalf("ccdf = %v", pts)
	}
	// Monotone decreasing in P, increasing in X.
	for i := 1; i < len(pts); i++ {
		if pts[i].X <= pts[i-1].X || pts[i].P >= pts[i-1].P {
			t.Fatal("CCDF not monotone")
		}
	}
	if EmpiricalCCDF(nil) != nil {
		t.Fatal("empty CCDF")
	}
}

func TestDegreeFrequency(t *testing.T) {
	pts := DegreeFrequency([]int{1, 1, 2, 0, -3})
	if len(pts) != 2 {
		t.Fatalf("points = %v", pts)
	}
	if pts[0].X != 1 || math.Abs(pts[0].P-2.0/3) > 1e-12 {
		t.Fatalf("freq = %v", pts)
	}
	sum := 0.0
	for _, p := range pts {
		sum += p.P
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("frequencies sum to %v", sum)
	}
}
