package stats

import (
	"math"
	"sort"
)

// Histogram is a binned frequency distribution. Bins are [Edges[i],
// Edges[i+1]) with the final bin closed on the right.
type Histogram struct {
	Edges  []float64 // len = len(Counts)+1, ascending
	Counts []int
}

// Total returns the number of binned observations.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Centers returns the bin midpoints (geometric midpoints would suit log bins;
// callers plotting log-log should use GeometricCenters).
func (h *Histogram) Centers() []float64 {
	out := make([]float64, len(h.Counts))
	for i := range out {
		out[i] = (h.Edges[i] + h.Edges[i+1]) / 2
	}
	return out
}

// GeometricCenters returns sqrt(lo·hi) per bin, the natural x-coordinate for
// log-binned data.
func (h *Histogram) GeometricCenters() []float64 {
	out := make([]float64, len(h.Counts))
	for i := range out {
		out[i] = math.Sqrt(h.Edges[i] * h.Edges[i+1])
	}
	return out
}

// Densities returns counts normalized by bin width and total count, i.e. an
// empirical pdf.
func (h *Histogram) Densities() []float64 {
	total := float64(h.Total())
	out := make([]float64, len(h.Counts))
	if total == 0 {
		return out
	}
	for i, c := range h.Counts {
		w := h.Edges[i+1] - h.Edges[i]
		if w > 0 {
			out[i] = float64(c) / (total * w)
		}
	}
	return out
}

// NewHistogram bins xs into k equal-width bins spanning [min, max]. Values
// outside the range are clamped into the edge bins.
func NewHistogram(xs []float64, k int) *Histogram {
	if k <= 0 || len(xs) == 0 {
		return &Histogram{Edges: []float64{0, 1}, Counts: make([]int, 1)}
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	h := &Histogram{Edges: make([]float64, k+1), Counts: make([]int, k)}
	for i := 0; i <= k; i++ {
		h.Edges[i] = lo + (hi-lo)*float64(i)/float64(k)
	}
	w := (hi - lo) / float64(k)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= k {
			i = k - 1
		}
		h.Counts[i]++
	}
	return h
}

// NewLogHistogram bins positive values into k logarithmically spaced bins —
// the binning used by the Figure 1 "log-scaled number of users vs metric"
// panels. Non-positive values are dropped (callers report them separately as
// the zero bucket).
func NewLogHistogram(xs []float64, k int) *Histogram {
	var pos []float64
	for _, x := range xs {
		if x > 0 {
			pos = append(pos, x)
		}
	}
	if k <= 0 || len(pos) == 0 {
		return &Histogram{Edges: []float64{1, 10}, Counts: make([]int, 1)}
	}
	lo, hi := pos[0], pos[0]
	for _, x := range pos {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		hi = lo * 10
	}
	lLo, lHi := math.Log(lo), math.Log(hi)
	h := &Histogram{Edges: make([]float64, k+1), Counts: make([]int, k)}
	for i := 0; i <= k; i++ {
		h.Edges[i] = math.Exp(lLo + (lHi-lLo)*float64(i)/float64(k))
	}
	w := (lHi - lLo) / float64(k)
	for _, x := range pos {
		i := int((math.Log(x) - lLo) / w)
		if i < 0 {
			i = 0
		}
		if i >= k {
			i = k - 1
		}
		h.Counts[i]++
	}
	return h
}

// CCDFPoint is one point of an empirical complementary CDF.
type CCDFPoint struct {
	X float64 // value
	P float64 // fraction of observations >= X
}

// EmpiricalCCDF returns P(X >= x) evaluated at each distinct value of the
// sample, ascending in X — the standard log-log tail plot (Figure 2 uses the
// pdf variant; the CCDF is what the KS machinery compares).
func EmpiricalCCDF(xs []float64) []CCDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var out []CCDFPoint
	for i := 0; i < len(sorted); {
		j := i
		for j+1 < len(sorted) && sorted[j+1] == sorted[i] {
			j++
		}
		out = append(out, CCDFPoint{X: sorted[i], P: float64(len(sorted)-i) / n})
		i = j + 1
	}
	return out
}

// DegreeFrequency returns, for each distinct positive value, the fraction of
// observations equal to it — the "proportion of users vs out-degree" series
// of Figure 2.
func DegreeFrequency(xs []int) []CCDFPoint {
	if len(xs) == 0 {
		return nil
	}
	counts := map[int]int{}
	total := 0
	for _, x := range xs {
		if x > 0 {
			counts[x]++
			total++
		}
	}
	keys := make([]int, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]CCDFPoint, len(keys))
	for i, k := range keys {
		out[i] = CCDFPoint{X: float64(k), P: float64(counts[k]) / float64(total)}
	}
	return out
}
