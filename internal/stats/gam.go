package stats

import (
	"errors"
	"math"
	"sort"

	"elites/internal/linalg"
)

// ErrBadSpline flags invalid smoother configuration.
var ErrBadSpline = errors.New("stats: bad spline configuration")

// SplineOptions configures the penalized B-spline smoother.
type SplineOptions struct {
	// Segments is the number of B-spline segments (basis size = Segments
	// + Degree). 0 means 20.
	Segments int
	// Degree of the B-spline basis; 0 means cubic (3).
	Degree int
	// PenaltyOrder is the difference-penalty order; 0 means 2 (curvature).
	PenaltyOrder int
	// Lambdas is the grid scanned by GCV; nil means a log grid from 1e-4
	// to 1e6.
	Lambdas []float64
}

func (o *SplineOptions) defaults() SplineOptions {
	out := SplineOptions{Segments: 20, Degree: 3, PenaltyOrder: 2}
	if o != nil {
		if o.Segments > 0 {
			out.Segments = o.Segments
		}
		if o.Degree > 0 {
			out.Degree = o.Degree
		}
		if o.PenaltyOrder > 0 {
			out.PenaltyOrder = o.PenaltyOrder
		}
		out.Lambdas = o.Lambdas
	}
	if out.Lambdas == nil {
		for e := -4.0; e <= 6.0; e += 0.5 {
			out.Lambdas = append(out.Lambdas, math.Pow(10, e))
		}
	}
	return out
}

// Spline is a fitted penalized regression spline (P-spline, Eilers & Marx):
// a cubic B-spline basis with a difference penalty on adjacent coefficients,
// the smoothing parameter chosen by generalized cross-validation. It plays
// the role of the "regression splines computed using a generalized additive
// model" in the paper's Figure 5.
type Spline struct {
	// Lambda is the GCV-selected smoothing parameter.
	Lambda float64
	// EDF is the effective degrees of freedom tr(H) at Lambda.
	EDF float64
	// GCV is the criterion value at Lambda.
	GCV float64
	// Sigma2 is the residual variance estimate RSS/(n − EDF).
	Sigma2 float64

	coef     []float64
	covB     *linalg.Matrix // Bayesian covariance σ²·(BᵀB+λP)⁻¹
	lo, hi   float64
	segments int
	degree   int
}

// FitSpline fits the smoother to (x, y). x need not be sorted; degenerate
// inputs (fewer points than basis functions, or zero x-range) reduce the
// basis automatically.
func FitSpline(x, y []float64, opts *SplineOptions) (*Spline, error) {
	if len(x) != len(y) {
		return nil, ErrMismatch
	}
	n := len(x)
	if n < 4 {
		return nil, ErrEmpty
	}
	o := opts.defaults()
	lo, hi := x[0], x[0]
	for _, v := range x {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo <= 0 {
		return nil, ErrBadSpline
	}
	// Basis must be smaller than the sample.
	for o.Segments+o.Degree >= n && o.Segments > 2 {
		o.Segments--
	}
	nb := o.Segments + o.Degree
	if nb < o.PenaltyOrder+1 {
		return nil, ErrBadSpline
	}
	b := bsplineBasis(x, lo, hi, o.Segments, o.Degree)
	// Difference penalty matrix P = DᵀD of the requested order.
	d := diffMatrix(nb, o.PenaltyOrder)
	pen := linalg.TMul(d, d)
	btb := linalg.TMul(b, b)
	bty := b.TMulVec(y)

	var best *Spline
	for _, lambda := range o.Lambdas {
		a := btb.Clone()
		a.AddScaled(lambda, pen)
		// Tiny ridge for numerical definiteness with sparse data.
		a.AddScaledIdentity(1e-9)
		ch, err := linalg.NewCholesky(a)
		if err != nil {
			continue
		}
		coef := ch.Solve(bty)
		fitted := b.MulVec(coef)
		rss := 0.0
		for i := range y {
			r := y[i] - fitted[i]
			rss += r * r
		}
		// Effective df: tr(H) = tr((BᵀB+λP)⁻¹ BᵀB).
		ainvBtb := ch.SolveMatrix(btb)
		edf := 0.0
		for i := 0; i < nb; i++ {
			edf += ainvBtb.At(i, i)
		}
		den := 1 - edf/float64(n)
		if den <= 0 {
			continue
		}
		gcv := rss / (float64(n) * den * den)
		if best == nil || gcv < best.GCV {
			sigma2 := rss / math.Max(float64(n)-edf, 1)
			covB := ch.Inverse()
			for i := range covB.Data {
				covB.Data[i] *= sigma2
			}
			best = &Spline{
				Lambda:   lambda,
				EDF:      edf,
				GCV:      gcv,
				Sigma2:   sigma2,
				coef:     coef,
				covB:     covB,
				lo:       lo,
				hi:       hi,
				segments: o.Segments,
				degree:   o.Degree,
			}
		}
	}
	if best == nil {
		return nil, ErrBadSpline
	}
	return best, nil
}

// Eval returns the fitted mean at x0 (clamped into the fit range).
func (s *Spline) Eval(x0 float64) float64 {
	row := bsplineBasis([]float64{clamp(x0, s.lo, s.hi)}, s.lo, s.hi, s.segments, s.degree)
	v := 0.0
	for j := 0; j < row.Cols; j++ {
		v += row.At(0, j) * s.coef[j]
	}
	return v
}

// SE returns the pointwise standard error of the fitted mean at x0.
func (s *Spline) SE(x0 float64) float64 {
	row := bsplineBasis([]float64{clamp(x0, s.lo, s.hi)}, s.lo, s.hi, s.segments, s.degree)
	b := make([]float64, row.Cols)
	for j := range b {
		b[j] = row.At(0, j)
	}
	cv := s.covB.MulVec(b)
	return math.Sqrt(math.Max(linalg.Dot(b, cv), 0))
}

// CurvePoint is one evaluation of the smoother with its 95% band.
type CurvePoint struct {
	X, Y, Lo, Hi float64
}

// Curve evaluates the smoother with ±1.96·SE bands on k points spanning the
// fitted range.
func (s *Spline) Curve(k int) []CurvePoint {
	if k < 2 {
		k = 2
	}
	out := make([]CurvePoint, k)
	for i := 0; i < k; i++ {
		x := s.lo + (s.hi-s.lo)*float64(i)/float64(k-1)
		y := s.Eval(x)
		se := s.SE(x)
		out[i] = CurvePoint{X: x, Y: y, Lo: y - 1.96*se, Hi: y + 1.96*se}
	}
	return out
}

// clamp restricts v to [lo, hi].
func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// bsplineBasis evaluates the B-spline basis matrix (Cox–de Boor recursion)
// for the given points over [lo, hi] with nseg equal segments and the given
// degree. Rows are points, columns the nseg+degree basis functions.
func bsplineBasis(xs []float64, lo, hi float64, nseg, degree int) *linalg.Matrix {
	nb := nseg + degree
	h := (hi - lo) / float64(nseg)
	// Extended knot vector with degree extra knots on each side.
	nKnots := nseg + 2*degree + 1
	knots := make([]float64, nKnots)
	for i := range knots {
		knots[i] = lo + h*float64(i-degree)
	}
	m := linalg.NewMatrix(len(xs), nb)
	basis := make([]float64, nKnots-1)
	for r, x := range xs {
		if x < lo {
			x = lo
		}
		if x > hi {
			x = hi
		}
		// Degree-0 basis: indicator of the knot span, with the right
		// edge folded into the last interior span.
		span := int((x - lo) / h)
		if span >= nseg {
			span = nseg - 1
		}
		for i := range basis {
			basis[i] = 0
		}
		basis[span+degree] = 1
		// Raise the degree.
		for d := 1; d <= degree; d++ {
			for i := 0; i < nKnots-d-1; i++ {
				var left, right float64
				if den := knots[i+d] - knots[i]; den > 0 && basis[i] != 0 {
					left = (x - knots[i]) / den * basis[i]
				}
				if den := knots[i+d+1] - knots[i+1]; den > 0 && basis[i+1] != 0 {
					right = (knots[i+d+1] - x) / den * basis[i+1]
				}
				basis[i] = left + right
			}
		}
		for j := 0; j < nb; j++ {
			m.Set(r, j, basis[j])
		}
	}
	return m
}

// diffMatrix returns the order-k difference operator D with shape
// (n−k)×n (D1 = first differences, D2 = second differences, ...).
func diffMatrix(n, k int) *linalg.Matrix {
	// Start with identity and difference k times.
	cur := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		cur.Set(i, i, 1)
	}
	for step := 0; step < k; step++ {
		rows := cur.Rows - 1
		next := linalg.NewMatrix(rows, n)
		for i := 0; i < rows; i++ {
			for j := 0; j < n; j++ {
				next.Set(i, j, cur.At(i+1, j)-cur.At(i, j))
			}
		}
		cur = next
	}
	return cur
}

// BinnedMedians reduces a scatter to per-bin medians on a log-x grid — used
// to overlay Figure 5 scatters with robust trend points.
type BinnedPoint struct {
	X, Median float64
	Count     int
}

// LogBinnedMedians bins positive x values into k log bins and reports the
// median y per non-empty bin.
func LogBinnedMedians(x, y []float64, k int) []BinnedPoint {
	if len(x) != len(y) || len(x) == 0 || k <= 0 {
		return nil
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range x {
		if v > 0 {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if !(hi > lo) {
		return nil
	}
	lLo, lHi := math.Log(lo), math.Log(hi)
	w := (lHi - lLo) / float64(k)
	buckets := make([][]float64, k)
	for i, v := range x {
		if v <= 0 {
			continue
		}
		b := int((math.Log(v) - lLo) / w)
		if b < 0 {
			b = 0
		}
		if b >= k {
			b = k - 1
		}
		buckets[b] = append(buckets[b], y[i])
	}
	var out []BinnedPoint
	for b, ys := range buckets {
		if len(ys) == 0 {
			continue
		}
		sort.Float64s(ys)
		out = append(out, BinnedPoint{
			X:      math.Exp(lLo + w*(float64(b)+0.5)),
			Median: Quantile(ys, 0.5),
			Count:  len(ys),
		})
	}
	return out
}
