package stats

import (
	"errors"
	"math"

	"elites/internal/linalg"
	"elites/internal/mathx"
)

// ErrSingular indicates a rank-deficient design matrix.
var ErrSingular = errors.New("stats: singular design matrix")

// OLSResult reports an ordinary least squares fit y = X·β + ε.
type OLSResult struct {
	Coef   []float64 // β̂
	StdErr []float64 // standard errors of β̂
	TStat  []float64 // t statistics
	PValue []float64 // two-sided p-values (t distribution, n−p dof)
	// Residuals are y − X·β̂.
	Residuals []float64
	// Fitted are X·β̂.
	Fitted []float64
	// Sigma2 is the unbiased residual variance RSS/(n−p).
	Sigma2 float64
	// R2 and AdjR2 are the coefficients of determination.
	R2, AdjR2 float64
	// LogLik is the Gaussian log-likelihood at the MLE variance.
	LogLik float64
	// AIC and BIC are the usual information criteria (Gaussian).
	AIC, BIC float64
	// DF is the residual degrees of freedom n − p.
	DF int
	// XtXInv is (XᵀX)⁻¹, needed by callers building Wald tests.
	XtXInv *linalg.Matrix
}

// OLS fits y = X·β by least squares via the normal equations (the designs in
// this library are small and well-conditioned after centering; no QR
// needed). X is n×p with n > p.
func OLS(x *linalg.Matrix, y []float64) (*OLSResult, error) {
	n, p := x.Rows, x.Cols
	if len(y) != n {
		return nil, ErrMismatch
	}
	if n <= p {
		return nil, ErrSingular
	}
	xtx := linalg.TMul(x, x)
	ch, err := linalg.NewCholesky(xtx)
	if err != nil {
		return nil, ErrSingular
	}
	xty := x.TMulVec(y)
	beta := ch.Solve(xty)
	fitted := x.MulVec(beta)
	res := make([]float64, n)
	rss := 0.0
	meanY := 0.0
	for _, v := range y {
		meanY += v
	}
	meanY /= float64(n)
	tss := 0.0
	for i := range y {
		res[i] = y[i] - fitted[i]
		rss += res[i] * res[i]
		d := y[i] - meanY
		tss += d * d
	}
	df := n - p
	sigma2 := rss / float64(df)
	inv := ch.Inverse()
	stderr := make([]float64, p)
	tstat := make([]float64, p)
	pval := make([]float64, p)
	for j := 0; j < p; j++ {
		se := math.Sqrt(sigma2 * inv.At(j, j))
		stderr[j] = se
		if se > 0 {
			tstat[j] = beta[j] / se
			pval[j] = 2 * mathx.StudentTSF(math.Abs(tstat[j]), float64(df))
		} else {
			pval[j] = 1
		}
	}
	r2 := 0.0
	if tss > 0 {
		r2 = 1 - rss/tss
	}
	adj := 1 - (1-r2)*float64(n-1)/float64(df)
	// Gaussian log-likelihood with MLE variance RSS/n.
	mleVar := rss / float64(n)
	logLik := -0.5 * float64(n) * (math.Log(2*math.Pi*mleVar) + 1)
	k := float64(p) + 1 // +1 for the variance
	return &OLSResult{
		Coef:      beta,
		StdErr:    stderr,
		TStat:     tstat,
		PValue:    pval,
		Residuals: res,
		Fitted:    fitted,
		Sigma2:    sigma2,
		R2:        r2,
		AdjR2:     adj,
		LogLik:    logLik,
		AIC:       -2*logLik + 2*k,
		BIC:       -2*logLik + k*math.Log(float64(n)),
		DF:        df,
		XtXInv:    inv,
	}, nil
}

// DesignWithIntercept assembles a design matrix [1 | cols...] from column
// vectors of equal length.
func DesignWithIntercept(cols ...[]float64) (*linalg.Matrix, error) {
	if len(cols) == 0 {
		return nil, ErrEmpty
	}
	n := len(cols[0])
	for _, c := range cols {
		if len(c) != n {
			return nil, ErrMismatch
		}
	}
	m := linalg.NewMatrix(n, len(cols)+1)
	for i := 0; i < n; i++ {
		m.Set(i, 0, 1)
		for j, c := range cols {
			m.Set(i, j+1, c[i])
		}
	}
	return m, nil
}
