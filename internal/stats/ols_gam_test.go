package stats

import (
	"math"
	"testing"

	"elites/internal/mathx"
)

func TestOLSRecoversCoefficients(t *testing.T) {
	rng := mathx.NewRNG(1)
	n := 500
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x1[i] = rng.Normal()
		x2[i] = rng.Normal()
		y[i] = 2 + 3*x1[i] - 1.5*x2[i] + 0.1*rng.Normal()
	}
	design, err := DesignWithIntercept(x1, x2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := OLS(design, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1.5}
	for j, w := range want {
		if math.Abs(res.Coef[j]-w) > 0.05 {
			t.Fatalf("β[%d] = %v, want %v", j, res.Coef[j], w)
		}
		if res.PValue[j] > 1e-10 {
			t.Fatalf("p[%d] = %v, want tiny", j, res.PValue[j])
		}
	}
	if res.R2 < 0.99 {
		t.Fatalf("R² = %v", res.R2)
	}
	if res.DF != n-3 {
		t.Fatalf("DF = %d", res.DF)
	}
}

func TestOLSNullCoefficientPValue(t *testing.T) {
	// x2 unrelated to y: its p-value should usually be > 0.05.
	rng := mathx.NewRNG(2)
	reject := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		n := 200
		x1 := make([]float64, n)
		x2 := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x1[i] = rng.Normal()
			x2[i] = rng.Normal()
			y[i] = 1 + 2*x1[i] + rng.Normal()
		}
		design, _ := DesignWithIntercept(x1, x2)
		res, err := OLS(design, y)
		if err != nil {
			t.Fatal(err)
		}
		if res.PValue[2] < 0.05 {
			reject++
		}
	}
	// 5% level: expect ~2 rejections in 40; allow up to 8.
	if reject > 8 {
		t.Fatalf("null coefficient rejected %d/%d times", reject, trials)
	}
}

func TestOLSSingular(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	design, _ := DesignWithIntercept(x, x) // perfectly collinear
	if _, err := OLS(design, []float64{1, 2, 3, 4}); err != ErrSingular {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestOLSDimensionErrors(t *testing.T) {
	design, _ := DesignWithIntercept([]float64{1, 2})
	if _, err := OLS(design, []float64{1, 2, 3}); err != ErrMismatch {
		t.Fatal("length mismatch should error")
	}
	if _, err := DesignWithIntercept([]float64{1, 2}, []float64{1}); err != ErrMismatch {
		t.Fatal("ragged columns should error")
	}
}

func TestSplineFitsLinearExactly(t *testing.T) {
	// A heavily penalized 2nd-order P-spline shrinks to a line; a linear
	// signal should be recovered essentially exactly at any lambda.
	rng := mathx.NewRNG(3)
	n := 300
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() * 10
		y[i] = 1 + 2*x[i]
	}
	sp, err := FitSpline(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, x0 := range []float64{0.5, 3, 7.5, 9.5} {
		if math.Abs(sp.Eval(x0)-(1+2*x0)) > 0.05 {
			t.Fatalf("Eval(%v) = %v, want %v", x0, sp.Eval(x0), 1+2*x0)
		}
	}
}

func TestSplineRecoverySine(t *testing.T) {
	rng := mathx.NewRNG(4)
	n := 1500
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() * 2 * math.Pi
		y[i] = math.Sin(x[i]) + 0.2*rng.Normal()
	}
	sp, err := FitSpline(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	maxErr := 0.0
	for _, x0 := range []float64{0.5, 1.5, 2.5, 3.5, 4.5, 5.5} {
		e := math.Abs(sp.Eval(x0) - math.Sin(x0))
		if e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.12 {
		t.Fatalf("sine recovery error %v", maxErr)
	}
	if sp.EDF < 4 || sp.EDF > 25 {
		t.Fatalf("EDF = %v, implausible for a sine", sp.EDF)
	}
}

func TestSplineBandsCoverTruth(t *testing.T) {
	rng := mathx.NewRNG(5)
	n := 800
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() * 4
		y[i] = x[i]*x[i] + rng.Normal()
	}
	sp, err := FitSpline(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	curve := sp.Curve(30)
	covered := 0
	for _, cp := range curve {
		truth := cp.X * cp.X
		if truth >= cp.Lo && truth <= cp.Hi {
			covered++
		}
		if cp.Hi < cp.Lo {
			t.Fatal("band inverted")
		}
	}
	// Pointwise 95% bands should cover the truth at most points.
	if covered < 24 {
		t.Fatalf("bands cover truth at only %d/30 points", covered)
	}
}

func TestSplineErrors(t *testing.T) {
	if _, err := FitSpline([]float64{1, 2}, []float64{1}, nil); err != ErrMismatch {
		t.Fatal("mismatch should error")
	}
	if _, err := FitSpline([]float64{1, 2, 3}, []float64{1, 2, 3}, nil); err != ErrEmpty {
		t.Fatal("too few points should error")
	}
	if _, err := FitSpline([]float64{2, 2, 2, 2, 2}, []float64{1, 2, 3, 4, 5}, nil); err != ErrBadSpline {
		t.Fatal("zero x-range should error")
	}
}

func TestSplineSmallSampleShrinksBasis(t *testing.T) {
	rng := mathx.NewRNG(6)
	n := 12 // far fewer than the default 23 basis functions
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
		y[i] = 3 * x[i]
		_ = rng
	}
	sp, err := FitSpline(x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sp.Eval(5)-15) > 0.5 {
		t.Fatalf("small-sample fit Eval(5) = %v", sp.Eval(5))
	}
}

func TestLogBinnedMedians(t *testing.T) {
	x := []float64{1, 10, 100, 1000, 0, -2}
	y := []float64{1, 2, 3, 4, 99, 99}
	pts := LogBinnedMedians(x, y, 4)
	if len(pts) == 0 {
		t.Fatal("no bins")
	}
	total := 0
	for _, p := range pts {
		total += p.Count
	}
	if total != 4 {
		t.Fatalf("binned %d values, want 4 (non-positive dropped)", total)
	}
	if LogBinnedMedians([]float64{1}, []float64{1, 2}, 3) != nil {
		t.Fatal("mismatch should return nil")
	}
}
