package timeseries

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// DailySeries is a contiguous run of daily observations starting at Start
// (which should be midnight UTC of the first day).
type DailySeries struct {
	Start  time.Time
	Values []float64
}

// Date returns the date of observation i.
func (d *DailySeries) Date(i int) time.Time { return d.Start.AddDate(0, 0, i) }

// Len returns the number of days.
func (d *DailySeries) Len() int { return len(d.Values) }

// IndexOf returns the index of the given date, or -1 if out of range.
func (d *DailySeries) IndexOf(t time.Time) int {
	days := int(t.Sub(d.Start).Hours() / 24)
	if days < 0 || days >= len(d.Values) {
		return -1
	}
	return days
}

// WeekdayMeans returns the mean value per weekday (index 0 = Sunday). The
// paper observes that "activity rates on Sundays are reliably lower than
// those on weekdays".
func (d *DailySeries) WeekdayMeans() [7]float64 {
	var sums, counts [7]float64
	for i, v := range d.Values {
		w := int(d.Date(i).Weekday())
		sums[w] += v
		counts[w]++
	}
	var out [7]float64
	for w := range out {
		if counts[w] > 0 {
			out[w] = sums[w] / counts[w]
		}
	}
	return out
}

// CalendarMap renders the series as a GitHub-style calendar heatmap
// (Figure 6): one text block per month, rows are weekdays, columns week of
// month, intensity from quintiles of the whole series. The rendering is
// plain ASCII/Unicode suitable for terminals and logs.
func (d *DailySeries) CalendarMap() string {
	if len(d.Values) == 0 {
		return ""
	}
	// Quintile thresholds for intensity buckets.
	sorted := append([]float64(nil), d.Values...)
	sort.Float64s(sorted)
	q := func(p float64) float64 {
		idx := int(p * float64(len(sorted)-1))
		return sorted[idx]
	}
	thresholds := []float64{q(0.2), q(0.4), q(0.6), q(0.8)}
	glyphs := []rune{'·', '░', '▒', '▓', '█'}
	glyph := func(v float64) rune {
		for i, th := range thresholds {
			if v <= th {
				return glyphs[i]
			}
		}
		return glyphs[len(glyphs)-1]
	}
	var b strings.Builder
	// Group indices by month.
	type monthKey struct {
		y int
		m time.Month
	}
	months := []monthKey{}
	byMonth := map[monthKey][]int{}
	for i := range d.Values {
		t := d.Date(i)
		k := monthKey{t.Year(), t.Month()}
		if _, ok := byMonth[k]; !ok {
			months = append(months, k)
		}
		byMonth[k] = append(byMonth[k], i)
	}
	weekdayNames := []string{"Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat"}
	for _, k := range months {
		idxs := byMonth[k]
		fmt.Fprintf(&b, "%s %d\n", k.m.String()[:3], k.y)
		// Build a 7×6 grid: row = weekday, column = week of month.
		var grid [7][6]rune
		for r := range grid {
			for c := range grid[r] {
				grid[r][c] = ' '
			}
		}
		for _, i := range idxs {
			t := d.Date(i)
			w := int(t.Weekday())
			week := (t.Day() - 1 + int(firstWeekday(t))) / 7
			if week > 5 {
				week = 5
			}
			grid[w][week] = glyph(d.Values[i])
		}
		for w := 0; w < 7; w++ {
			fmt.Fprintf(&b, "  %s ", weekdayNames[w])
			for c := 0; c < 6; c++ {
				b.WriteRune(grid[w][c])
				b.WriteByte(' ')
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// firstWeekday returns the weekday of the first day of t's month.
func firstWeekday(t time.Time) time.Weekday {
	first := time.Date(t.Year(), t.Month(), 1, 0, 0, 0, 0, t.Location())
	return first.Weekday()
}

// Slice returns the sub-series covering [from, to) by index, sharing
// storage.
func (d *DailySeries) Slice(from, to int) *DailySeries {
	if from < 0 {
		from = 0
	}
	if to > len(d.Values) {
		to = len(d.Values)
	}
	if from >= to {
		return &DailySeries{Start: d.Start}
	}
	return &DailySeries{Start: d.Date(from), Values: d.Values[from:to]}
}
