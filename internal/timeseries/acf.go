// Package timeseries implements the activity-analysis toolkit of the paper's
// §V: autocorrelation and the Ljung–Box / Box–Pierce portmanteau tests, the
// Augmented Dickey–Fuller unit-root test with MacKinnon critical values, the
// PELT change-point algorithm (with a binary-segmentation baseline and the
// paper's penalty-sweep protocol), and a calendar heatmap renderer for daily
// activity series (Figure 6).
package timeseries

import (
	"errors"
	"math"

	"elites/internal/mathx"
)

// ErrShortSeries indicates the series is too short for the requested
// analysis.
var ErrShortSeries = errors.New("timeseries: series too short")

// ACF returns the sample autocorrelation function ρ̂_1..ρ̂_maxLag (index 0 of
// the result is lag 1). The denominator is the lag-0 autocovariance, the
// standard biased estimator used by portmanteau statistics.
func ACF(x []float64, maxLag int) ([]float64, error) {
	n := len(x)
	if n < 2 {
		return nil, ErrShortSeries
	}
	if maxLag >= n {
		maxLag = n - 1
	}
	if maxLag < 1 {
		return nil, ErrShortSeries
	}
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	c0 := 0.0
	for _, v := range x {
		d := v - mean
		c0 += d * d
	}
	if c0 == 0 {
		return make([]float64, maxLag), nil
	}
	out := make([]float64, maxLag)
	for k := 1; k <= maxLag; k++ {
		s := 0.0
		for t := k; t < n; t++ {
			s += (x[t] - mean) * (x[t-k] - mean)
		}
		out[k-1] = s / c0
	}
	return out, nil
}

// PortmanteauResult reports a Ljung–Box or Box–Pierce test at a single lag
// horizon.
type PortmanteauResult struct {
	Lag       int
	Statistic float64
	PValue    float64 // chi-square survival with Lag dof
}

// LjungBox runs the Ljung–Box test for every horizon h = 1..maxLag:
// Q(h) = n(n+2) Σ_{k≤h} ρ̂_k²/(n−k), compared to χ²_h. Small p-values reject
// the null of no autocorrelation. The paper evaluates horizons up to 185
// days and reports a maximum p of 3.81e-38.
func LjungBox(x []float64, maxLag int) ([]PortmanteauResult, error) {
	rho, err := ACF(x, maxLag)
	if err != nil {
		return nil, err
	}
	n := float64(len(x))
	out := make([]PortmanteauResult, len(rho))
	q := 0.0
	for k := 1; k <= len(rho); k++ {
		q += rho[k-1] * rho[k-1] / (n - float64(k))
		stat := n * (n + 2) * q
		out[k-1] = PortmanteauResult{
			Lag:       k,
			Statistic: stat,
			PValue:    mathx.ChiSquareSF(stat, float64(k)),
		}
	}
	return out, nil
}

// BoxPierce runs the Box–Pierce test Q(h) = n Σ_{k≤h} ρ̂_k² for every
// horizon up to maxLag.
func BoxPierce(x []float64, maxLag int) ([]PortmanteauResult, error) {
	rho, err := ACF(x, maxLag)
	if err != nil {
		return nil, err
	}
	n := float64(len(x))
	out := make([]PortmanteauResult, len(rho))
	q := 0.0
	for k := 1; k <= len(rho); k++ {
		q += rho[k-1] * rho[k-1]
		stat := n * q
		out[k-1] = PortmanteauResult{
			Lag:       k,
			Statistic: stat,
			PValue:    mathx.ChiSquareSF(stat, float64(k)),
		}
	}
	return out, nil
}

// MaxPValue returns the largest p-value across horizons — the summary the
// paper reports ("maximum p value of 3.81e-38").
func MaxPValue(results []PortmanteauResult) float64 {
	m := 0.0
	for _, r := range results {
		if r.PValue > m {
			m = r.PValue
		}
	}
	return m
}

// Difference returns the first difference x_t − x_{t−1} (length n−1).
func Difference(x []float64) []float64 {
	if len(x) < 2 {
		return nil
	}
	out := make([]float64, len(x)-1)
	for i := 1; i < len(x); i++ {
		out[i-1] = x[i] - x[i-1]
	}
	return out
}

// Standardize returns (x − mean)/std; a zero-variance series maps to zeros.
func Standardize(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	ss := 0.0
	for _, v := range x {
		d := v - mean
		ss += d * d
	}
	if ss == 0 {
		return out
	}
	sd := math.Sqrt(ss / float64(n))
	for i, v := range x {
		out[i] = (v - mean) / sd
	}
	return out
}
