package timeseries

import (
	"math"
	"testing"
	"time"

	"elites/internal/mathx"
)

func TestKPSSAcceptsStationary(t *testing.T) {
	rng := mathx.NewRNG(1)
	x := make([]float64, 400)
	for i := 1; i < len(x); i++ {
		x[i] = 0.4*x[i-1] + rng.Normal()
	}
	res, err := KPSS(x, RegConstant, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.StationaryAt5() {
		t.Fatalf("stationary AR rejected: stat %v crit %v", res.Statistic, res.Crit5)
	}
}

func TestKPSSRejectsRandomWalk(t *testing.T) {
	rng := mathx.NewRNG(2)
	reject := 0
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		x := make([]float64, 400)
		for i := 1; i < len(x); i++ {
			x[i] = x[i-1] + rng.Normal()
		}
		res, err := KPSS(x, RegConstant, -1)
		if err != nil {
			t.Fatal(err)
		}
		if !res.StationaryAt5() {
			reject++
		}
	}
	// The test should reject random walks most of the time.
	if reject < trials*3/5 {
		t.Fatalf("random walk rejected only %d/%d times", reject, trials)
	}
}

func TestKPSSTrendVariant(t *testing.T) {
	rng := mathx.NewRNG(3)
	// Trend-stationary series: trend KPSS accepts, level KPSS rejects.
	x := make([]float64, 400)
	for i := range x {
		x[i] = 0.5*float64(i) + rng.Normal()*3
	}
	lvl, err := KPSS(x, RegConstant, -1)
	if err != nil {
		t.Fatal(err)
	}
	trd, err := KPSS(x, RegConstantTrend, -1)
	if err != nil {
		t.Fatal(err)
	}
	if lvl.StationaryAt5() {
		t.Fatalf("level KPSS accepted a trending series: %v", lvl.Statistic)
	}
	if !trd.StationaryAt5() {
		t.Fatalf("trend KPSS rejected a trend-stationary series: %v vs %v", trd.Statistic, trd.Crit5)
	}
	// Critical values ordered.
	if !(trd.Crit10 < trd.Crit5 && trd.Crit5 < trd.Crit1) {
		t.Fatal("critical value ordering wrong")
	}
}

func TestKPSSShortSeries(t *testing.T) {
	if _, err := KPSS([]float64{1, 2, 3}, RegConstant, -1); err != ErrShortSeries {
		t.Fatal("short series should error")
	}
}

func TestDecomposeRecoversWeekday(t *testing.T) {
	rng := mathx.NewRNG(4)
	start := time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC)
	n := 366
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		date := start.AddDate(0, 0, i)
		v := 100.0
		if date.Weekday() == time.Sunday {
			v = 80
		}
		vals[i] = v + 0.5*rng.Normal()
	}
	s := &DailySeries{Start: start, Values: vals}
	dec, err := Decompose(s)
	if err != nil {
		t.Fatal(err)
	}
	// The Sunday seasonal component must be clearly negative.
	var sundaySeasonal float64
	for i := 0; i < n; i++ {
		if s.Date(i).Weekday() == time.Sunday {
			sundaySeasonal = dec.Seasonal[i]
			break
		}
	}
	if sundaySeasonal > -10 {
		t.Fatalf("sunday seasonal = %v, want ≈ -17", sundaySeasonal)
	}
	if dec.SeasonalStrength < 0.9 {
		t.Fatalf("seasonal strength = %v, want near 1", dec.SeasonalStrength)
	}
	// Components reassemble the series.
	for i := 0; i < n; i++ {
		sum := dec.Trend[i] + dec.Seasonal[i] + dec.Remainder[i]
		if math.Abs(sum-vals[i]) > 1e-9 {
			t.Fatalf("decomposition does not reassemble at %d", i)
		}
	}
}

func TestDecomposeNoSeasonality(t *testing.T) {
	rng := mathx.NewRNG(5)
	start := time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC)
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = rng.Normal()
	}
	dec, err := Decompose(&DailySeries{Start: start, Values: vals})
	if err != nil {
		t.Fatal(err)
	}
	if dec.SeasonalStrength > 0.4 {
		t.Fatalf("white noise seasonal strength = %v, want small", dec.SeasonalStrength)
	}
}

func TestDecomposeShort(t *testing.T) {
	s := &DailySeries{Values: make([]float64, 10)}
	if _, err := Decompose(s); err != ErrShortSeries {
		t.Fatal("short series should error")
	}
}
