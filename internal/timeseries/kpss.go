package timeseries

import (
	"math"

	"elites/internal/linalg"
	"elites/internal/stats"
)

// KPSSResult reports a Kwiatkowski–Phillips–Schmidt–Shin test. KPSS inverts
// the ADF hypotheses: the null is stationarity (level- or trend-), so for
// the paper's §V claim the two tests should agree by ADF rejecting *and*
// KPSS not rejecting — the standard confirmatory pairing.
type KPSSResult struct {
	// Statistic is the KPSS η statistic; larger values reject
	// stationarity.
	Statistic float64
	// Lags is the Newey–West bandwidth used for the long-run variance.
	Lags int
	// Crit10, Crit5, Crit1 are the asymptotic critical values.
	Crit10, Crit5, Crit1 float64
	// Regression echoes the deterministic specification (RegConstant for
	// level-stationarity, RegConstantTrend for trend-stationarity).
	Regression Regression
}

// StationaryAt5 reports whether the stationarity null survives at the 5%
// level.
func (r *KPSSResult) StationaryAt5() bool { return r.Statistic < r.Crit5 }

// KPSS runs the test with the given deterministic specification
// (RegConstant or RegConstantTrend; RegNone is treated as RegConstant).
// lags < 0 selects the Newey–West automatic bandwidth 4·(T/100)^0.25.
func KPSS(y []float64, reg Regression, lags int) (*KPSSResult, error) {
	t := len(y)
	if t < 12 {
		return nil, ErrShortSeries
	}
	if lags < 0 {
		lags = int(4 * math.Pow(float64(t)/100, 0.25))
	}
	if lags >= t {
		lags = t - 1
	}
	// Residuals from the deterministic regression.
	var resid []float64
	switch reg {
	case RegConstantTrend:
		trend := make([]float64, t)
		for i := range trend {
			trend[i] = float64(i + 1)
		}
		x, err := stats.DesignWithIntercept(trend)
		if err != nil {
			return nil, err
		}
		res, err := stats.OLS(x, y)
		if err != nil {
			return nil, err
		}
		resid = res.Residuals
	default:
		mean := 0.0
		for _, v := range y {
			mean += v
		}
		mean /= float64(t)
		resid = make([]float64, t)
		for i, v := range y {
			resid[i] = v - mean
		}
	}
	// Partial sums.
	s := make([]float64, t)
	cum := 0.0
	for i, e := range resid {
		cum += e
		s[i] = cum
	}
	num := 0.0
	for _, v := range s {
		num += v * v
	}
	num /= float64(t) * float64(t)
	// Long-run variance: Newey–West with Bartlett kernel.
	lrv := linalg.Dot(resid, resid) / float64(t)
	for l := 1; l <= lags; l++ {
		w := 1 - float64(l)/float64(lags+1)
		g := 0.0
		for i := l; i < t; i++ {
			g += resid[i] * resid[i-l]
		}
		lrv += 2 * w * g / float64(t)
	}
	if lrv <= 0 {
		return nil, ErrADF
	}
	out := &KPSSResult{
		Statistic:  num / lrv,
		Lags:       lags,
		Regression: reg,
	}
	if reg == RegConstantTrend {
		out.Crit10, out.Crit5, out.Crit1 = 0.119, 0.146, 0.216
	} else {
		out.Crit10, out.Crit5, out.Crit1 = 0.347, 0.463, 0.739
	}
	return out, nil
}

// Decomposition splits a daily series into a centered-moving-average trend,
// a weekday seasonal component and a remainder — the classical additive
// decomposition at weekly period, used to visualize and quantify the
// Sunday dip.
type Decomposition struct {
	Trend     []float64
	Seasonal  []float64 // repeats with period 7, aligned to the series
	Remainder []float64
	// SeasonalStrength is Hyndman's F_s = max(0, 1 − Var(R)/Var(S+R)).
	SeasonalStrength float64
}

// Decompose performs the additive weekly decomposition. The series must
// cover at least three weeks.
func Decompose(s *DailySeries) (*Decomposition, error) {
	n := s.Len()
	if n < 21 {
		return nil, ErrShortSeries
	}
	y := s.Values
	// Centered 7-term moving average (endpoints use shrinking windows).
	trend := make([]float64, n)
	for i := 0; i < n; i++ {
		lo, hi := i-3, i+3
		if lo < 0 {
			lo = 0
		}
		if hi >= n {
			hi = n - 1
		}
		sum := 0.0
		for j := lo; j <= hi; j++ {
			sum += y[j]
		}
		trend[i] = sum / float64(hi-lo+1)
	}
	// Weekday means of the detrended series.
	var wkSum [7]float64
	var wkCnt [7]float64
	for i := 0; i < n; i++ {
		w := int(s.Date(i).Weekday())
		wkSum[w] += y[i] - trend[i]
		wkCnt[w]++
	}
	var wk [7]float64
	meanAdj := 0.0
	for w := 0; w < 7; w++ {
		if wkCnt[w] > 0 {
			wk[w] = wkSum[w] / wkCnt[w]
		}
		meanAdj += wk[w]
	}
	meanAdj /= 7 // center the seasonal component
	seasonal := make([]float64, n)
	remainder := make([]float64, n)
	for i := 0; i < n; i++ {
		w := int(s.Date(i).Weekday())
		seasonal[i] = wk[w] - meanAdj
		remainder[i] = y[i] - trend[i] - seasonal[i]
	}
	// Seasonal strength.
	varOf := func(xs []float64) float64 {
		m := 0.0
		for _, v := range xs {
			m += v
		}
		m /= float64(len(xs))
		ss := 0.0
		for _, v := range xs {
			ss += (v - m) * (v - m)
		}
		return ss / float64(len(xs))
	}
	sr := make([]float64, n)
	for i := range sr {
		sr[i] = seasonal[i] + remainder[i]
	}
	strength := 0.0
	if v := varOf(sr); v > 0 {
		strength = math.Max(0, 1-varOf(remainder)/v)
	}
	return &Decomposition{
		Trend:            trend,
		Seasonal:         seasonal,
		Remainder:        remainder,
		SeasonalStrength: strength,
	}, nil
}
