package timeseries

import (
	"errors"
	"math"

	"elites/internal/linalg"
	"elites/internal/mathx"
	"elites/internal/stats"
)

// Regression selects the deterministic terms of the ADF regression.
type Regression int

// ADF regression variants.
const (
	// RegNone: Δy = γ·y_{t−1} + lags.
	RegNone Regression = iota
	// RegConstant: Δy = μ + γ·y_{t−1} + lags.
	RegConstant
	// RegConstantTrend: Δy = μ + βt + γ·y_{t−1} + lags — the paper's
	// choice ("with both a constant term and a trend term").
	RegConstantTrend
)

// ErrADF indicates the ADF regression could not be estimated.
var ErrADF = errors.New("timeseries: ADF regression failed")

// ADFResult reports an Augmented Dickey–Fuller test.
type ADFResult struct {
	// Statistic is the t-ratio of γ; more negative is more stationary.
	Statistic float64
	// Lags is the selected augmentation order.
	Lags int
	// NObs is the effective number of observations in the regression.
	NObs int
	// Crit1, Crit5, Crit10 are MacKinnon (2010) finite-sample critical
	// values at the 1/5/10% levels for the chosen regression.
	Crit1, Crit5, Crit10 float64
	// PValue is an approximate p-value interpolated through the
	// MacKinnon critical values on the normal-quantile scale (adequate
	// for decision-making at conventional levels; the paper itself
	// compares the statistic to the 95% critical value).
	PValue float64
	// Regression echoes the deterministic specification.
	Regression Regression
}

// Stationary reports whether the unit-root null is rejected at the 5%
// level.
func (r *ADFResult) Stationary() bool { return r.Statistic < r.Crit5 }

// ADF runs the Augmented Dickey–Fuller test. maxLag bounds the augmentation
// order; if maxLag < 0 the Schwert rule 12·(T/100)^0.25 is used. The lag
// order is chosen by AIC over 0..maxLag, mirroring statsmodels' adfuller
// (the implementation the paper cites).
func ADF(y []float64, reg Regression, maxLag int) (*ADFResult, error) {
	t := len(y)
	if t < 12 {
		return nil, ErrShortSeries
	}
	if maxLag < 0 {
		maxLag = int(12 * math.Pow(float64(t)/100, 0.25))
	}
	// Keep enough observations: after differencing and lagging we need
	// more rows than regressors.
	det := 0
	switch reg {
	case RegConstant:
		det = 1
	case RegConstantTrend:
		det = 2
	}
	for maxLag > 0 && t-1-maxLag <= maxLag+det+2 {
		maxLag--
	}
	bestLag, bestAIC := 0, math.Inf(1)
	var bestRes *stats.OLSResult
	for p := 0; p <= maxLag; p++ {
		res, err := adfRegression(y, reg, p, maxLag)
		if err != nil {
			continue
		}
		if res.AIC < bestAIC {
			bestAIC = res.AIC
			bestLag = p
			bestRes = res
		}
	}
	if bestRes == nil {
		return nil, ErrADF
	}
	// Re-estimate at the chosen lag using all available rows (the AIC
	// scan used a common sample for comparability).
	final, err := adfRegression(y, reg, bestLag, bestLag)
	if err != nil {
		return nil, err
	}
	// γ is the coefficient right after the deterministic terms.
	gi := det
	stat := final.TStat[gi]
	nobs := len(final.Residuals)
	c1, c5, c10 := MacKinnonCrit(reg, nobs)
	return &ADFResult{
		Statistic:  stat,
		Lags:       bestLag,
		NObs:       nobs,
		Crit1:      c1,
		Crit5:      c5,
		Crit10:     c10,
		PValue:     mackinnonApproxP(stat, c1, c5, c10),
		Regression: reg,
	}, nil
}

// adfRegression builds and fits the ADF design at augmentation order p.
// startLag fixes the first usable index so different p share a sample during
// AIC comparison.
func adfRegression(y []float64, reg Regression, p, startLag int) (*stats.OLSResult, error) {
	t := len(y)
	dy := Difference(y)
	// Rows run over time indices i (of dy) from startLag..len(dy)-1:
	// dy[i] = deterministics + γ·y[i] + Σ_{j=1..p} φ_j dy[i−j].
	first := startLag
	rows := len(dy) - first
	det := 0
	switch reg {
	case RegConstant:
		det = 1
	case RegConstantTrend:
		det = 2
	}
	cols := det + 1 + p
	if rows <= cols {
		return nil, ErrADF
	}
	x := linalg.NewMatrix(rows, cols)
	yy := make([]float64, rows)
	for r := 0; r < rows; r++ {
		i := first + r
		c := 0
		if det >= 1 {
			x.Set(r, c, 1)
			c++
		}
		if det == 2 {
			x.Set(r, c, float64(i+1)) // trend
			c++
		}
		x.Set(r, c, y[i]) // y_{t−1} level
		c++
		for j := 1; j <= p; j++ {
			x.Set(r, c, dy[i-j])
			c++
		}
		yy[r] = dy[i]
	}
	_ = t
	return stats.OLS(x, yy)
}

// MacKinnonCrit returns the MacKinnon (2010) finite-sample critical values
// (1%, 5%, 10%) for the ADF t-statistic with the given deterministic terms
// and effective sample size, via the published response surfaces
// cv = b∞ + b1/T + b2/T².
func MacKinnonCrit(reg Regression, nobs int) (c1, c5, c10 float64) {
	T := float64(nobs)
	type surf struct{ b0, b1, b2 float64 }
	var s1, s5, s10 surf
	switch reg {
	case RegNone:
		s1 = surf{-2.56574, -2.2358, -3.627}
		s5 = surf{-1.94100, -0.2686, -3.365}
		s10 = surf{-1.61682, 0.2656, -2.714}
	case RegConstant:
		s1 = surf{-3.43035, -6.5393, -16.786}
		s5 = surf{-2.86154, -2.8903, -4.234}
		s10 = surf{-2.56677, -1.5384, -2.809}
	default: // RegConstantTrend
		s1 = surf{-3.95877, -9.0531, -28.428}
		s5 = surf{-3.41049, -4.3904, -9.036}
		s10 = surf{-3.12705, -2.5856, -3.925}
	}
	ev := func(s surf) float64 { return s.b0 + s.b1/T + s.b2/(T*T) }
	return ev(s1), ev(s5), ev(s10)
}

// mackinnonApproxP interpolates an approximate p-value from the three
// critical values: the statistic's position among (cv, p) anchor points is
// mapped through the normal quantile scale, which matches the Dickey–Fuller
// distribution's tail behaviour well enough for reporting.
func mackinnonApproxP(stat, c1, c5, c10 float64) float64 {
	type anchor struct{ cv, q float64 }
	anchors := []anchor{
		{c1, mathx.NormalQuantile(0.01)},
		{c5, mathx.NormalQuantile(0.05)},
		{c10, mathx.NormalQuantile(0.10)},
	}
	// Linear interpolation/extrapolation of the normal quantile in the
	// statistic.
	var q float64
	switch {
	case stat <= anchors[0].cv:
		// Extrapolate below 1% with the 1–5% slope.
		slope := (anchors[1].q - anchors[0].q) / (anchors[1].cv - anchors[0].cv)
		q = anchors[0].q + slope*(stat-anchors[0].cv)
	case stat >= anchors[2].cv:
		slope := (anchors[2].q - anchors[1].q) / (anchors[2].cv - anchors[1].cv)
		q = anchors[2].q + slope*(stat-anchors[2].cv)
	case stat <= anchors[1].cv:
		f := (stat - anchors[0].cv) / (anchors[1].cv - anchors[0].cv)
		q = anchors[0].q + f*(anchors[1].q-anchors[0].q)
	default:
		f := (stat - anchors[1].cv) / (anchors[2].cv - anchors[1].cv)
		q = anchors[1].q + f*(anchors[2].q-anchors[1].q)
	}
	return mathx.Clamp(mathx.NormalCDF(q), 0, 1)
}
