package timeseries

import (
	"math"
	"testing"

	"elites/internal/mathx"
)

func TestADFRejectsOnStationaryAR1(t *testing.T) {
	rng := mathx.NewRNG(1)
	n := 366
	x := make([]float64, n)
	for i := 1; i < n; i++ {
		x[i] = 0.5*x[i-1] + rng.Normal()
	}
	res, err := ADF(x, RegConstantTrend, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stationary() {
		t.Fatalf("AR(0.5) not detected stationary: stat %v crit5 %v", res.Statistic, res.Crit5)
	}
	if res.PValue > 0.05 {
		t.Fatalf("p = %v, want < 0.05", res.PValue)
	}
}

func TestADFAcceptsRandomWalk(t *testing.T) {
	// Unit root: rejection rate at 5% should be ≈5%, definitely not high.
	rng := mathx.NewRNG(2)
	const trials = 40
	reject := 0
	for trial := 0; trial < trials; trial++ {
		n := 300
		x := make([]float64, n)
		for i := 1; i < n; i++ {
			x[i] = x[i-1] + rng.Normal()
		}
		res, err := ADF(x, RegConstantTrend, -1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stationary() {
			reject++
		}
	}
	if reject > 8 {
		t.Fatalf("random walk rejected %d/%d times at 5%%", reject, trials)
	}
}

func TestADFTrendStationary(t *testing.T) {
	// y = trend + AR(1) noise: with trend term included, should reject
	// the unit root.
	rng := mathx.NewRNG(3)
	n := 366
	x := make([]float64, n)
	ar := 0.0
	for i := 0; i < n; i++ {
		ar = 0.4*ar + rng.Normal()
		x[i] = 0.05*float64(i) + ar
	}
	res, err := ADF(x, RegConstantTrend, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stationary() {
		t.Fatalf("trend-stationary series not detected: stat %v", res.Statistic)
	}
}

func TestMacKinnonCritKnownValues(t *testing.T) {
	// Asymptotic values (T→∞): ct 5% ≈ −3.41, c 5% ≈ −2.86, nc 5% ≈ −1.94.
	_, c5, _ := MacKinnonCrit(RegConstantTrend, 1000000)
	if math.Abs(c5-(-3.41049)) > 1e-3 {
		t.Fatalf("ct crit5 asymptotic = %v", c5)
	}
	_, c5c, _ := MacKinnonCrit(RegConstant, 1000000)
	if math.Abs(c5c-(-2.86154)) > 1e-3 {
		t.Fatalf("c crit5 asymptotic = %v", c5c)
	}
	_, c5n, _ := MacKinnonCrit(RegNone, 1000000)
	if math.Abs(c5n-(-1.94100)) > 1e-3 {
		t.Fatalf("nc crit5 asymptotic = %v", c5n)
	}
	// The paper's critical value for upwards of 250 observations: −3.42
	// with constant and trend at 95%.
	_, c5p, _ := MacKinnonCrit(RegConstantTrend, 360)
	if math.Abs(c5p-(-3.42)) > 0.01 {
		t.Fatalf("ct crit5 at T=360 = %v, paper cites −3.42", c5p)
	}
	// Ordering: 1% < 5% < 10% (more negative is stricter).
	c1, c5o, c10 := MacKinnonCrit(RegConstantTrend, 366)
	if !(c1 < c5o && c5o < c10) {
		t.Fatalf("crit ordering wrong: %v %v %v", c1, c5o, c10)
	}
}

func TestADFPValueMonotone(t *testing.T) {
	c1, c5, c10 := MacKinnonCrit(RegConstantTrend, 366)
	pAt := func(stat float64) float64 { return mackinnonApproxP(stat, c1, c5, c10) }
	if !(pAt(-5) < pAt(-3.8) && pAt(-3.8) < pAt(-3.2) && pAt(-3.2) < pAt(-1)) {
		t.Fatal("approx p not monotone in statistic")
	}
	if math.Abs(pAt(c5)-0.05) > 1e-9 {
		t.Fatalf("p at crit5 = %v, want 0.05", pAt(c5))
	}
	if math.Abs(pAt(c1)-0.01) > 1e-9 {
		t.Fatalf("p at crit1 = %v, want 0.01", pAt(c1))
	}
}

func TestADFShortSeries(t *testing.T) {
	if _, err := ADF([]float64{1, 2, 3}, RegConstant, -1); err != ErrShortSeries {
		t.Fatal("short series should error")
	}
}

func TestADFLagSelectionPositive(t *testing.T) {
	// AR(2) with a heavy second lag: Δy_t = −0.2·y_{t−1} − 0.5·Δy_{t−1} + ε,
	// so the augmentation term is strong and AIC must pick p ≥ 1.
	rng := mathx.NewRNG(4)
	n := 400
	x := make([]float64, n)
	for i := 2; i < n; i++ {
		x[i] = 0.3*x[i-1] + 0.5*x[i-2] + rng.Normal()
	}
	res, err := ADF(x, RegConstant, -1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lags < 1 {
		t.Fatalf("selected %d lags, want >= 1", res.Lags)
	}
}
