package timeseries

import (
	"math"
	"sort"
)

// changepointStats holds prefix sums enabling O(1) Gaussian segment costs.
type changepointStats struct {
	n    int
	sum  []float64 // sum[i] = Σ x[0..i)
	sum2 []float64
}

func newChangepointStats(x []float64) *changepointStats {
	n := len(x)
	s := &changepointStats{
		n:    n,
		sum:  make([]float64, n+1),
		sum2: make([]float64, n+1),
	}
	for i, v := range x {
		s.sum[i+1] = s.sum[i] + v
		s.sum2[i+1] = s.sum2[i] + v*v
	}
	return s
}

// cost returns the Gaussian negative twice-log-likelihood of the segment
// x[a..b) with its MLE mean and variance: n·(log 2π + log σ̂² + 1). A
// variance floor keeps constant segments finite.
func (s *changepointStats) cost(a, b int) float64 {
	n := float64(b - a)
	if n <= 0 {
		return 0
	}
	mean := (s.sum[b] - s.sum[a]) / n
	variance := (s.sum2[b]-s.sum2[a])/n - mean*mean
	if variance < 1e-12 {
		variance = 1e-12
	}
	return n * (math.Log(2*math.Pi) + math.Log(variance) + 1)
}

// PELT finds the optimal segmentation of x under the penalized Gaussian
// (changing mean and variance) cost with penalty beta and minimum segment
// length minSeg, using the Pruned Exact Linear Time algorithm of Killick,
// Fearnhead & Eckley (2012) — the method the paper uses on the activity
// series. It returns the sorted change-point indices (each index is the
// first element of a new segment).
func PELT(x []float64, beta float64, minSeg int) []int {
	n := len(x)
	if minSeg < 1 {
		minSeg = 1
	}
	if n < 2*minSeg {
		return nil
	}
	st := newChangepointStats(x)
	const k = 0 // the Gaussian cost satisfies C(a,c) >= C(a,b)+C(b,c) with K=0
	f := make([]float64, n+1)
	prev := make([]int, n+1)
	f[0] = -beta
	for i := 1; i <= n; i++ {
		f[i] = math.Inf(1)
	}
	candidates := []int{0}
	for t := minSeg; t <= n; t++ {
		bestVal := math.Inf(1)
		bestTau := -1
		for _, tau := range candidates {
			if t-tau < minSeg {
				continue
			}
			v := f[tau] + st.cost(tau, t) + beta
			if v < bestVal {
				bestVal = v
				bestTau = tau
			}
		}
		f[t] = bestVal
		prev[t] = bestTau
		// Prune: keep tau only if it could still be optimal later.
		kept := candidates[:0]
		for _, tau := range candidates {
			if t-tau < minSeg || f[tau]+st.cost(tau, t)+k <= f[t] {
				kept = append(kept, tau)
			}
		}
		candidates = append(kept, t-minSeg+1)
	}
	// Backtrack.
	var cps []int
	t := n
	for t > 0 {
		tau := prev[t]
		if tau <= 0 {
			break
		}
		cps = append(cps, tau)
		t = tau
	}
	sort.Ints(cps)
	return cps
}

// BICPenalty returns the standard PELT penalty p·log(n) for Gaussian
// segments with p=2 free parameters (mean and variance) plus the
// change-point location.
func BICPenalty(n int) float64 { return 3 * math.Log(float64(n)) }

// BinarySegmentation is the classical greedy baseline: it recursively splits
// at the single best change-point while the cost reduction exceeds the
// penalty. Used by the ablation bench against PELT.
func BinarySegmentation(x []float64, beta float64, minSeg int) []int {
	if minSeg < 1 {
		minSeg = 1
	}
	st := newChangepointStats(x)
	var cps []int
	var recurse func(a, b int)
	recurse = func(a, b int) {
		if b-a < 2*minSeg {
			return
		}
		whole := st.cost(a, b)
		bestGain := 0.0
		bestSplit := -1
		for s := a + minSeg; s+minSeg <= b; s++ {
			gain := whole - st.cost(a, s) - st.cost(s, b)
			if gain > bestGain {
				bestGain = gain
				bestSplit = s
			}
		}
		if bestSplit < 0 || bestGain <= beta {
			return
		}
		cps = append(cps, bestSplit)
		recurse(a, bestSplit)
		recurse(bestSplit, b)
	}
	recurse(0, len(x))
	sort.Ints(cps)
	return cps
}

// SweepCandidate is a change-point with the fraction of penalty settings
// that retained it.
type SweepCandidate struct {
	Index     int
	Stability float64
}

// PenaltySweep reproduces the paper's protocol: run PELT repeatedly while
// "cooling down the penalty factor and ramping up the number of
// change-points", then rank change-points by how many runs retained them
// (±tol index slack groups near-identical detections). Penalties are a
// geometric grid from hi down to lo.
func PenaltySweep(x []float64, lo, hi float64, steps, minSeg, tol int) []SweepCandidate {
	if steps < 2 || lo <= 0 || hi <= lo {
		return nil
	}
	type group struct {
		repr  int
		count int
		sum   int
	}
	var groups []*group
	ratio := math.Pow(lo/hi, 1/float64(steps-1))
	beta := hi
	for s := 0; s < steps; s++ {
		for _, cp := range PELT(x, beta, minSeg) {
			matched := false
			for _, g := range groups {
				if abs(cp-g.repr) <= tol {
					g.count++
					g.sum += cp
					g.repr = g.sum / g.count
					matched = true
					break
				}
			}
			if !matched {
				groups = append(groups, &group{repr: cp, count: 1, sum: cp})
			}
		}
		beta *= ratio
	}
	out := make([]SweepCandidate, len(groups))
	for i, g := range groups {
		out[i] = SweepCandidate{Index: g.repr, Stability: float64(g.count) / float64(steps)}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stability != out[j].Stability {
			return out[i].Stability > out[j].Stability
		}
		return out[i].Index < out[j].Index
	})
	return out
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
