package timeseries

import (
	"math"
	"testing"

	"elites/internal/mathx"
)

func TestACFWhiteNoiseSmall(t *testing.T) {
	rng := mathx.NewRNG(1)
	x := make([]float64, 5000)
	for i := range x {
		x[i] = rng.Normal()
	}
	rho, err := ACF(x, 20)
	if err != nil {
		t.Fatal(err)
	}
	bound := 4 / math.Sqrt(float64(len(x)))
	for k, r := range rho {
		if math.Abs(r) > bound {
			t.Fatalf("white noise ACF lag %d = %v exceeds %v", k+1, r, bound)
		}
	}
}

func TestACFAR1(t *testing.T) {
	// AR(1) with φ=0.7: ρ_k ≈ 0.7^k.
	rng := mathx.NewRNG(2)
	n := 200000
	x := make([]float64, n)
	for i := 1; i < n; i++ {
		x[i] = 0.7*x[i-1] + rng.Normal()
	}
	rho, err := ACF(x, 5)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 5; k++ {
		want := math.Pow(0.7, float64(k))
		if math.Abs(rho[k-1]-want) > 0.02 {
			t.Fatalf("AR1 ACF lag %d = %v, want ~%v", k, rho[k-1], want)
		}
	}
}

func TestACFPeriodicSignal(t *testing.T) {
	// Strong weekly seasonality: lag-7 autocorrelation should dominate.
	rng := mathx.NewRNG(3)
	n := 366
	x := make([]float64, n)
	for i := range x {
		x[i] = 10
		if i%7 == 0 {
			x[i] = 5 // "Sunday" dip
		}
		x[i] += 0.1 * rng.Normal()
	}
	rho, _ := ACF(x, 10)
	if rho[6] < 0.5 {
		t.Fatalf("lag-7 ACF = %v, want strong", rho[6])
	}
	if rho[6] < rho[2] {
		t.Fatalf("lag-7 (%v) should exceed lag-3 (%v)", rho[6], rho[2])
	}
}

func TestACFErrors(t *testing.T) {
	if _, err := ACF([]float64{1}, 3); err != ErrShortSeries {
		t.Fatal("short series should error")
	}
	// Constant series: zero ACF, not NaN.
	rho, err := ACF([]float64{2, 2, 2, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rho {
		if r != 0 {
			t.Fatalf("constant series ACF = %v", rho)
		}
	}
}

func TestLjungBoxWhiteNoiseUniformP(t *testing.T) {
	// Under the null, Ljung–Box p at a fixed horizon is ~Uniform(0,1);
	// rejection rate at 5% should be near 5%.
	rng := mathx.NewRNG(4)
	const trials = 200
	reject := 0
	for trial := 0; trial < trials; trial++ {
		x := make([]float64, 300)
		for i := range x {
			x[i] = rng.Normal()
		}
		res, err := LjungBox(x, 10)
		if err != nil {
			t.Fatal(err)
		}
		if res[9].PValue < 0.05 {
			reject++
		}
	}
	if reject < 2 || reject > 25 {
		t.Fatalf("LB rejected %d/%d at 5%%, want ≈10", reject, trials)
	}
}

func TestLjungBoxDetectsSeasonality(t *testing.T) {
	// Weekly dips plus a slow seasonal wave — the structure of real
	// activity series, which carry strong correlation at *every* horizon
	// (isolated weekly dips alone leave the lag-1 statistic weak).
	rng := mathx.NewRNG(5)
	n := 366
	x := make([]float64, n)
	for i := range x {
		x[i] = 100 + 30*math.Sin(float64(i)/30)
		if i%7 == 0 {
			x[i] -= 40
		}
		x[i] += rng.Normal()
	}
	lb, err := LjungBox(x, 185)
	if err != nil {
		t.Fatal(err)
	}
	maxP := MaxPValue(lb)
	// The paper reports max p ≈ 3.8e-38 on its series; require decisive
	// rejection here too.
	if maxP > 1e-10 {
		t.Fatalf("max Ljung–Box p = %v, want < 1e-10", maxP)
	}
	bp, err := BoxPierce(x, 185)
	if err != nil {
		t.Fatal(err)
	}
	if MaxPValue(bp) > 1e-10 {
		t.Fatalf("max Box–Pierce p = %v", MaxPValue(bp))
	}
}

func TestBoxPierceLessPowerfulThanLjungBox(t *testing.T) {
	// LB inflates small-sample statistics: Q_LB >= Q_BP for the same data.
	rng := mathx.NewRNG(6)
	x := make([]float64, 100)
	for i := range x {
		x[i] = rng.Normal() + math.Sin(float64(i)/3)
	}
	lb, _ := LjungBox(x, 20)
	bp, _ := BoxPierce(x, 20)
	for k := range lb {
		if lb[k].Statistic < bp[k].Statistic {
			t.Fatalf("lag %d: LB %v < BP %v", k+1, lb[k].Statistic, bp[k].Statistic)
		}
	}
}

func TestDifference(t *testing.T) {
	d := Difference([]float64{1, 4, 9, 16})
	want := []float64{3, 5, 7}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("diff = %v", d)
		}
	}
	if Difference([]float64{1}) != nil {
		t.Fatal("short diff should be nil")
	}
}

func TestStandardize(t *testing.T) {
	z := Standardize([]float64{1, 2, 3, 4, 5})
	mean, ss := 0.0, 0.0
	for _, v := range z {
		mean += v
	}
	mean /= float64(len(z))
	for _, v := range z {
		ss += (v - mean) * (v - mean)
	}
	if math.Abs(mean) > 1e-12 || math.Abs(ss/float64(len(z))-1) > 1e-12 {
		t.Fatalf("standardize: mean=%v var=%v", mean, ss/float64(len(z)))
	}
	zc := Standardize([]float64{3, 3, 3})
	for _, v := range zc {
		if v != 0 {
			t.Fatal("constant series should standardize to zeros")
		}
	}
}
