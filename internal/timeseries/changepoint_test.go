package timeseries

import (
	"testing"
	"time"

	"elites/internal/mathx"
)

func plantedSeries(rng *mathx.RNG, segMeans []float64, segLen int) []float64 {
	var x []float64
	for _, m := range segMeans {
		for i := 0; i < segLen; i++ {
			x = append(x, m+rng.Normal())
		}
	}
	return x
}

func TestPELTFindsPlantedMeanShifts(t *testing.T) {
	rng := mathx.NewRNG(1)
	x := plantedSeries(rng, []float64{0, 5, -3}, 100)
	cps := PELT(x, BICPenalty(len(x)), 5)
	if len(cps) != 2 {
		t.Fatalf("found %d change-points %v, want 2", len(cps), cps)
	}
	for i, want := range []int{100, 200} {
		if abs(cps[i]-want) > 3 {
			t.Fatalf("cp[%d] = %d, want ≈%d", i, cps[i], want)
		}
	}
}

func TestPELTFindsVarianceShift(t *testing.T) {
	rng := mathx.NewRNG(2)
	var x []float64
	for i := 0; i < 150; i++ {
		x = append(x, rng.Normal())
	}
	for i := 0; i < 150; i++ {
		x = append(x, 5*rng.Normal())
	}
	cps := PELT(x, BICPenalty(len(x)), 5)
	if len(cps) != 1 || abs(cps[0]-150) > 8 {
		t.Fatalf("variance shift: cps = %v, want ≈[150]", cps)
	}
}

func TestPELTNoChangeOnStationary(t *testing.T) {
	rng := mathx.NewRNG(3)
	x := make([]float64, 400)
	for i := range x {
		x[i] = rng.Normal()
	}
	cps := PELT(x, BICPenalty(len(x)), 5)
	if len(cps) > 1 {
		t.Fatalf("stationary noise produced %v", cps)
	}
}

func TestPELTMatchesBinSegOnCleanData(t *testing.T) {
	rng := mathx.NewRNG(4)
	x := plantedSeries(rng, []float64{0, 8, 0, 8}, 80)
	pelt := PELT(x, BICPenalty(len(x)), 5)
	bs := BinarySegmentation(x, BICPenalty(len(x)), 5)
	if len(pelt) != 3 || len(bs) != 3 {
		t.Fatalf("pelt=%v binseg=%v, want 3 cps each", pelt, bs)
	}
	for i := range pelt {
		if abs(pelt[i]-bs[i]) > 5 {
			t.Fatalf("disagreement: pelt=%v binseg=%v", pelt, bs)
		}
	}
}

func TestPELTMinSegRespected(t *testing.T) {
	rng := mathx.NewRNG(5)
	x := plantedSeries(rng, []float64{0, 6}, 50)
	cps := PELT(x, BICPenalty(len(x)), 30)
	for _, cp := range cps {
		if cp < 30 || len(x)-cp < 30 {
			t.Fatalf("cp %d violates minSeg", cp)
		}
	}
}

func TestPELTPenaltyMonotone(t *testing.T) {
	// Higher penalty → no more change-points than lower penalty.
	rng := mathx.NewRNG(6)
	x := plantedSeries(rng, []float64{0, 2, 4, 1}, 60)
	low := PELT(x, 5, 5)
	high := PELT(x, 100, 5)
	if len(high) > len(low) {
		t.Fatalf("penalty monotonicity violated: %d cps at β=100 vs %d at β=5",
			len(high), len(low))
	}
}

func TestPELTEdgeCases(t *testing.T) {
	if cps := PELT(nil, 10, 5); cps != nil {
		t.Fatal("empty series")
	}
	if cps := PELT([]float64{1, 2, 3}, 10, 5); cps != nil {
		t.Fatal("too short for two segments")
	}
}

func TestPenaltySweepStability(t *testing.T) {
	rng := mathx.NewRNG(7)
	// Two strong change-points; sweep should rank them with stability
	// near 1 and spurious ones (if any) lower.
	x := plantedSeries(rng, []float64{0, 6, 12}, 120)
	cands := PenaltySweep(x, 2, 500, 12, 7, 5)
	if len(cands) < 2 {
		t.Fatalf("sweep found %v", cands)
	}
	top2 := map[int]bool{}
	for _, c := range cands[:2] {
		if c.Stability < 0.7 {
			t.Fatalf("top candidate stability %v too low (%v)", c.Stability, cands)
		}
		top2[c.Index] = true
	}
	found120, found240 := false, false
	for idx := range top2 {
		if abs(idx-120) <= 6 {
			found120 = true
		}
		if abs(idx-240) <= 6 {
			found240 = true
		}
	}
	if !found120 || !found240 {
		t.Fatalf("top-2 candidates %v, want ≈120 and ≈240", cands[:2])
	}
}

func TestPenaltySweepBadParams(t *testing.T) {
	if PenaltySweep([]float64{1, 2}, 10, 5, 5, 1, 1) != nil {
		t.Fatal("hi<=lo should nil")
	}
	if PenaltySweep([]float64{1, 2}, 1, 5, 1, 1, 1) != nil {
		t.Fatal("steps<2 should nil")
	}
}

func TestDailySeriesBasics(t *testing.T) {
	start := time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC)
	s := &DailySeries{Start: start, Values: make([]float64, 30)}
	if s.Len() != 30 {
		t.Fatal("len")
	}
	if s.Date(5).Day() != 6 {
		t.Fatalf("Date(5) = %v", s.Date(5))
	}
	if s.IndexOf(start.AddDate(0, 0, 10)) != 10 {
		t.Fatal("IndexOf")
	}
	if s.IndexOf(start.AddDate(0, 0, -1)) != -1 || s.IndexOf(start.AddDate(0, 0, 31)) != -1 {
		t.Fatal("IndexOf out of range")
	}
}

func TestWeekdayMeans(t *testing.T) {
	// 2017-06-04 was a Sunday.
	start := time.Date(2017, 6, 4, 0, 0, 0, 0, time.UTC)
	vals := make([]float64, 28)
	for i := range vals {
		if i%7 == 0 { // Sundays
			vals[i] = 1
		} else {
			vals[i] = 10
		}
	}
	s := &DailySeries{Start: start, Values: vals}
	wm := s.WeekdayMeans()
	if wm[0] != 1 {
		t.Fatalf("Sunday mean = %v", wm[0])
	}
	for w := 1; w < 7; w++ {
		if wm[w] != 10 {
			t.Fatalf("weekday %d mean = %v", w, wm[w])
		}
	}
}

func TestCalendarMapRenders(t *testing.T) {
	start := time.Date(2017, 7, 1, 0, 0, 0, 0, time.UTC)
	vals := make([]float64, 62) // July + August 2017
	for i := range vals {
		vals[i] = float64(i)
	}
	s := &DailySeries{Start: start, Values: vals}
	out := s.CalendarMap()
	if out == "" {
		t.Fatal("empty render")
	}
	for _, want := range []string{"Jul 2017", "Aug 2017", "Sun", "Sat"} {
		if !containsStr(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	empty := &DailySeries{Start: start}
	if empty.CalendarMap() != "" {
		t.Fatal("empty series should render empty")
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func TestSlice(t *testing.T) {
	start := time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC)
	s := &DailySeries{Start: start, Values: []float64{0, 1, 2, 3, 4}}
	sub := s.Slice(1, 3)
	if sub.Len() != 2 || sub.Values[0] != 1 || sub.Start.Day() != 2 {
		t.Fatalf("slice = %+v", sub)
	}
	if s.Slice(4, 2).Len() != 0 {
		t.Fatal("inverted slice should be empty")
	}
	if s.Slice(-5, 99).Len() != 5 {
		t.Fatal("clamped slice")
	}
}
