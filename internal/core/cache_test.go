package core

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"elites/internal/cache"
	"elites/internal/gen"
	"elites/internal/twitter"
)

// cacheOptions keeps the heavy stages cheap but real (bootstraps,
// betweenness and distances all run) so hit/miss behaviour is exercised on
// every cached stage.
func cacheOptions(dir string) Options {
	o := fastOptions()
	o.CacheDir = dir
	return o
}

func renderString(t *testing.T, rep *Report) string {
	t.Helper()
	var buf bytes.Buffer
	rep.Render(&buf)
	return buf.String()
}

// cachedStageNames is what a full run should report as cache traffic, in
// stage declaration order; seedKeyedStageNames is the subset whose options
// digest includes Seed (basic and mutualcore are deterministic over the
// graph, so a seed change still hits them).
var (
	cachedStageNames    = []string{StageBasic, StageDegree, StageEigen, StageDistances, StageCentrality, StageMutualCore}
	seedKeyedStageNames = []string{StageDegree, StageEigen, StageDistances, StageCentrality}
)

func TestWarmRunByteIdenticalAndSkipsHeavyStages(t *testing.T) {
	p, ds := testPlatform(t)
	activity := p.ActivitySeries(p.EnglishNodes())
	dir := t.TempDir()

	cold, err := NewCharacterizer(cacheOptions(dir)).Run(ds, activity)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cache == nil {
		t.Fatal("cache report missing on cold run")
	}
	if len(cold.Cache.Hits) != 0 || !reflect.DeepEqual(cold.Cache.Misses, cachedStageNames) {
		t.Fatalf("cold run cache traffic: hits=%v misses=%v", cold.Cache.Hits, cold.Cache.Misses)
	}

	warm, err := NewCharacterizer(cacheOptions(dir)).Run(ds, activity)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm.Cache.Hits, cachedStageNames) || len(warm.Cache.Misses) != 0 {
		t.Fatalf("warm run cache traffic: hits=%v misses=%v", warm.Cache.Hits, warm.Cache.Misses)
	}
	if coldOut, warmOut := renderString(t, cold), renderString(t, warm); coldOut != warmOut {
		t.Fatal("warm-cache report is not byte-identical to the cold run")
	}
	// The hydrated analyses must be structurally identical too, not just
	// identically rendered.
	if !reflect.DeepEqual(cold.Distances, warm.Distances) {
		t.Fatal("distances diverge after cache round trip")
	}
	if !reflect.DeepEqual(cold.Centrality, warm.Centrality) {
		t.Fatal("centrality diverges after cache round trip")
	}
	if !reflect.DeepEqual(cold.DegreeSeries, warm.DegreeSeries) {
		t.Fatal("degree series diverges after cache round trip")
	}
	if cold.Degree.GoFP != warm.Degree.GoFP || cold.Degree.Fit.Alpha != warm.Degree.Fit.Alpha {
		t.Fatal("degree analysis diverges after cache round trip")
	}
	if !reflect.DeepEqual(cold.Basic, warm.Basic) {
		t.Fatal("basic analysis diverges after cache round trip")
	}
	if !reflect.DeepEqual(cold.MutualCore, warm.MutualCore) {
		t.Fatal("mutual-core analysis diverges after cache round trip")
	}
}

func TestCacheTimingsMarkHits(t *testing.T) {
	p, ds := testPlatform(t)
	activity := p.ActivitySeries(p.EnglishNodes())
	dir := t.TempDir()
	opts := cacheOptions(dir)
	opts.Timings = true

	if _, err := NewCharacterizer(opts).Run(ds, activity); err != nil {
		t.Fatal(err)
	}
	warm, err := NewCharacterizer(opts).Run(ds, activity)
	if err != nil {
		t.Fatal(err)
	}
	hits := map[string]bool{}
	for _, tm := range warm.Timings {
		if tm.CacheHit {
			hits[tm.Name] = true
		}
	}
	for _, name := range cachedStageNames {
		if !hits[name] {
			t.Errorf("stage %s not marked as a cache hit in timings", name)
		}
	}
	if hits[StageSummary] || hits[StageReciprocity] {
		t.Error("uncached stage marked as hit")
	}
}

func TestChangedOptionsMiss(t *testing.T) {
	p, ds := testPlatform(t)
	activity := p.ActivitySeries(p.EnglishNodes())
	dir := t.TempDir()

	if _, err := NewCharacterizer(cacheOptions(dir)).Run(ds, activity); err != nil {
		t.Fatal(err)
	}

	// Each perturbation must miss exactly the stages whose output it can
	// change, and still hit the others.
	cases := []struct {
		name       string
		mutate     func(o *Options)
		wantMisses []string
	}{
		{"seed", func(o *Options) { o.Seed = 4 }, seedKeyedStageNames},
		{"distance sources", func(o *Options) { o.DistanceSources = 61 }, []string{StageDistances}},
		{"betweenness sources", func(o *Options) { o.BetweennessSources = 41 }, []string{StageCentrality}},
		{"bootstrap reps", func(o *Options) { o.BootstrapReps = 21 }, []string{StageDegree, StageEigen}},
		{"eigen k", func(o *Options) { o.EigenK = 41 }, []string{StageEigen}},
		{"skip bootstrap", func(o *Options) { o.SkipBootstrap = true }, []string{StageDegree, StageEigen}},
		{"parallelism (never keyed)", func(o *Options) { o.Parallelism = 3 }, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := cacheOptions(dir)
			tc.mutate(&opts)
			rep, err := NewCharacterizer(opts).Run(ds, activity)
			if err != nil {
				t.Fatal(err)
			}
			var misses []string
			if rep.Cache != nil {
				misses = rep.Cache.Misses
			}
			if !reflect.DeepEqual(misses, tc.wantMisses) {
				t.Fatalf("misses = %v, want %v (hits %v)", misses, tc.wantMisses, rep.Cache.Hits)
			}
		})
	}
}

func TestChangedDatasetMisses(t *testing.T) {
	dir := t.TempDir()
	mk := func(n int) *twitter.Dataset {
		res, err := gen.Verified(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		return &twitter.Dataset{Graph: res.Graph}
	}
	opts := cacheOptions(dir)
	opts.SkipEigen = true
	if _, err := NewCharacterizer(opts).Run(mk(500), nil); err != nil {
		t.Fatal(err)
	}
	rep, err := NewCharacterizer(opts).Run(mk(501), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cache.Hits) != 0 {
		t.Fatalf("different dataset produced cache hits: %v", rep.Cache.Hits)
	}
	// Same dataset again: hits.
	rep2, err := NewCharacterizer(opts).Run(mk(500), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Cache.Misses) != 0 {
		t.Fatalf("identical regenerated dataset missed: %v", rep2.Cache.Misses)
	}
}

func TestCorruptedCacheFilesRecomputeSilently(t *testing.T) {
	p, ds := testPlatform(t)
	activity := p.ActivitySeries(p.EnglishNodes())
	dir := t.TempDir()

	cold, err := NewCharacterizer(cacheOptions(dir)).Run(ds, activity)
	if err != nil {
		t.Fatal(err)
	}
	// Instances are shared per directory, so drop the memory tier to force
	// the next run through the (about to be corrupted) disk entries — as a
	// fresh process would read them.
	dropMemoryTier(t, dir)
	entries, err := filepath.Glob(filepath.Join(dir, "*.bin"))
	if err != nil || len(entries) != len(cachedStageNames) {
		t.Fatalf("cache dir entries = %v (err %v)", entries, err)
	}
	for i, path := range entries {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		switch i % 3 {
		case 0: // truncate
			raw = raw[:len(raw)/3]
		case 1: // flip a payload byte
			raw[len(raw)/2] ^= 0x40
		case 2: // empty
			raw = nil
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	rep, err := NewCharacterizer(cacheOptions(dir)).Run(ds, activity)
	if err != nil {
		t.Fatalf("corrupted cache must recompute, not error: %v", err)
	}
	if len(rep.Cache.Hits) != 0 {
		t.Fatalf("corrupted entries served as hits: %v", rep.Cache.Hits)
	}
	if got, want := renderString(t, rep), renderString(t, cold); got != want {
		t.Fatal("recomputed report diverges from cold run")
	}
	// And the rewritten entries serve the next run.
	rep2, err := NewCharacterizer(cacheOptions(dir)).Run(ds, activity)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Cache.Misses) != 0 {
		t.Fatalf("repaired cache still missing: %v", rep2.Cache.Misses)
	}
}

// dropMemoryTier empties the shared in-memory tier for dir, simulating a
// fresh process that only has the disk tier.
func dropMemoryTier(t *testing.T, dir string) {
	t.Helper()
	cc, err := cache.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	cc.DropMemory()
}

func TestNoCacheAndNoDir(t *testing.T) {
	p, ds := testPlatform(t)
	activity := p.ActivitySeries(p.EnglishNodes())

	// No CacheDir: no cache report, no files.
	rep, err := NewCharacterizer(fastOptions()).Run(ds, activity)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cache != nil {
		t.Fatal("cache report without CacheDir")
	}

	// NoCache overrides CacheDir.
	dir := t.TempDir()
	opts := cacheOptions(dir)
	opts.NoCache = true
	rep, err = NewCharacterizer(opts).Run(ds, activity)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cache != nil {
		t.Fatal("cache report despite NoCache")
	}
	if entries, _ := os.ReadDir(dir); len(entries) != 0 {
		t.Fatalf("NoCache wrote files: %v", entries)
	}
}

func TestCacheWithStageSubset(t *testing.T) {
	p, ds := testPlatform(t)
	activity := p.ActivitySeries(p.EnglishNodes())
	dir := t.TempDir()

	opts := cacheOptions(dir)
	opts.Stages = []string{StageDistances}
	cold, err := NewCharacterizer(opts).Run(ds, activity)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold.Cache.Misses, []string{StageDistances}) || len(cold.Cache.Hits) != 0 {
		t.Fatalf("subset cold traffic: %+v", cold.Cache)
	}
	warm, err := NewCharacterizer(opts).Run(ds, activity)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm.Cache.Hits, []string{StageDistances}) || len(warm.Cache.Misses) != 0 {
		t.Fatalf("subset warm traffic: %+v", warm.Cache)
	}
	// The full run then hits distances but misses the others.
	full, err := NewCharacterizer(cacheOptions(dir)).Run(ds, activity)
	if err != nil {
		t.Fatal(err)
	}
	if !contains(full.Cache.Hits, StageDistances) {
		t.Fatalf("full run should reuse the subset's distances: %+v", full.Cache)
	}
	if !contains(full.Cache.Misses, StageCentrality) {
		t.Fatalf("full run should still compute centrality: %+v", full.Cache)
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func TestCacheKeysAreStageScoped(t *testing.T) {
	// Every cached stage on one dataset produces its own distinct file —
	// no key collisions between stages sharing a dataset digest.
	p, ds := testPlatform(t)
	activity := p.ActivitySeries(p.EnglishNodes())
	dir := t.TempDir()
	if _, err := NewCharacterizer(cacheOptions(dir)).Run(ds, activity); err != nil {
		t.Fatal(err)
	}
	entries, _ := filepath.Glob(filepath.Join(dir, "*.bin"))
	seen := map[string]bool{}
	for _, e := range entries {
		base := filepath.Base(e)
		stage := base[:strings.IndexByte(base, '-')]
		if seen[stage] {
			t.Fatalf("two files for stage %s", stage)
		}
		seen[stage] = true
	}
	for _, name := range cachedStageNames {
		if !seen[name] {
			t.Errorf("no cache file for stage %s (have %v)", name, entries)
		}
	}
}
