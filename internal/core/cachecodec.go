package core

import (
	"elites/internal/cache"
	"elites/internal/graph"
	"elites/internal/powerlaw"
	"elites/internal/stats"
)

// Binary codecs for the cached pipeline stages (store-style: varints, raw
// float bits, length prefixes). Each cached stage owns one codec version
// constant — bump it whenever the encoding *or the stage's computation*
// changes, so stale entries from older builds become unreachable instead of
// wrong. Decoders inherit the cache.Decoder sticky-error discipline: any
// malformed payload surfaces as one error, which the scheduler treats as a
// miss and recomputes.
const (
	distancesCodecVersion  = 1
	centralityCodecVersion = 1
	// degree and eigen are at v2: the PR 4 power-law kernel changed the
	// fit's numerics (suffix-sum tail statistics, ladder-evaluated zeta,
	// warm-started Brent) and the bootstrap's denominator accounting
	// (dropped replicates are excluded), plus Fit grew derived unexported
	// state — v1 entries carry pre-kernel values and must not be served.
	degreeCodecVersion = 2
	eigenCodecVersion  = 2
	// basic and mutualcore joined the cache in PR 4 (the ROADMAP's
	// mid-weight leftovers): both are pure functions of the graph with no
	// shaping options, so their options digest is the empty hash.
	basicCodecVersion      = 1
	mutualCoreCodecVersion = 1
)

// --- distances ---------------------------------------------------------------

func encodeDistancesTo(e *cache.Encoder, dd *graph.DistanceDistribution) {
	e.Bool(dd != nil)
	if dd == nil {
		return
	}
	e.Float64s(dd.Counts)
	e.Float64(dd.Pairs)
	e.Int(dd.Sources)
	e.Bool(dd.Sampled)
}

func decodeDistancesFrom(d *cache.Decoder) (*graph.DistanceDistribution, error) {
	if !d.Bool() {
		return nil, d.Err()
	}
	dd := &graph.DistanceDistribution{
		Counts:  d.Float64s(),
		Pairs:   d.Float64(),
		Sources: d.Int(),
		Sampled: d.Bool(),
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return dd, nil
}

// --- power-law analyses (degree, eigen) --------------------------------------

func encodePowerLawTo(e *cache.Encoder, pa *PowerLawAnalysis) {
	e.Bool(pa != nil)
	if pa == nil {
		return
	}
	pa.Fit.EncodeTo(e)
	e.Float64(pa.GoFP)
	e.Uvarint(uint64(len(pa.Vuong)))
	for _, v := range pa.Vuong {
		v.EncodeTo(e)
	}
}

func decodePowerLawFrom(d *cache.Decoder) (*PowerLawAnalysis, error) {
	if !d.Bool() {
		return nil, d.Err()
	}
	fit, err := powerlaw.DecodeFitFrom(d)
	if err != nil {
		return nil, err
	}
	pa := &PowerLawAnalysis{Fit: fit, GoFP: d.Float64()}
	n := d.Uvarint()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if n > 16 { // far above the three fixed alternatives; reject corruption
		return nil, cache.ErrCorrupt
	}
	for i := uint64(0); i < n; i++ {
		v, err := powerlaw.DecodeVuongFrom(d)
		if err != nil {
			return nil, err
		}
		pa.Vuong = append(pa.Vuong, v)
	}
	return pa, nil
}

// encodeDegreeTo covers everything the degree stage writes: the Figure 2
// frequency series and the §IV-B analysis.
func encodeDegreeTo(e *cache.Encoder, series []stats.CCDFPoint, pa *PowerLawAnalysis) {
	e.Uvarint(uint64(len(series)))
	for _, p := range series {
		e.Float64(p.X)
		e.Float64(p.P)
	}
	encodePowerLawTo(e, pa)
}

func decodeDegreeFrom(d *cache.Decoder) ([]stats.CCDFPoint, *PowerLawAnalysis, error) {
	n := d.Uvarint()
	if d.Err() != nil {
		return nil, nil, d.Err()
	}
	var series []stats.CCDFPoint
	for i := uint64(0); i < n; i++ {
		p := stats.CCDFPoint{X: d.Float64(), P: d.Float64()}
		if d.Err() != nil {
			return nil, nil, d.Err()
		}
		series = append(series, p)
	}
	pa, err := decodePowerLawFrom(d)
	if err != nil {
		return nil, nil, err
	}
	return series, pa, nil
}

// --- centrality --------------------------------------------------------------

func encodeCentralityTo(e *cache.Encoder, pairs []CentralityPair) {
	e.Uvarint(uint64(len(pairs)))
	for i := range pairs {
		p := &pairs[i]
		e.String(p.Label)
		e.Float64(p.Pearson)
		e.Float64(p.Spearman)
		e.Float64(p.PValue)
		e.Int(p.N)
		e.Uvarint(uint64(len(p.Curve)))
		for _, cp := range p.Curve {
			e.Float64(cp.X)
			e.Float64(cp.Y)
			e.Float64(cp.Lo)
			e.Float64(cp.Hi)
		}
	}
}

func decodeCentralityFrom(d *cache.Decoder) ([]CentralityPair, error) {
	n := d.Uvarint()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if n > 64 { // six panels today; reject implausible counts as corruption
		return nil, cache.ErrCorrupt
	}
	var pairs []CentralityPair
	for i := uint64(0); i < n; i++ {
		p := CentralityPair{
			Label:    d.String(),
			Pearson:  d.Float64(),
			Spearman: d.Float64(),
			PValue:   d.Float64(),
			N:        d.Int(),
		}
		m := d.Uvarint()
		if d.Err() != nil {
			return nil, d.Err()
		}
		for j := uint64(0); j < m; j++ {
			p.Curve = append(p.Curve, stats.CurvePoint{
				X: d.Float64(), Y: d.Float64(), Lo: d.Float64(), Hi: d.Float64(),
			})
			if d.Err() != nil {
				return nil, d.Err()
			}
		}
		pairs = append(pairs, p)
	}
	return pairs, nil
}

// --- basic (§IV-A) -----------------------------------------------------------

func encodeBasicTo(e *cache.Encoder, b BasicAnalysis) {
	e.Float64(b.Clustering)
	e.Float64(b.Assortativity)
	e.Int(b.AttractingComponents)
	e.Uvarint(uint64(len(b.AttractingCores)))
	for _, v := range b.AttractingCores {
		e.Int(v)
	}
}

func decodeBasicFrom(d *cache.Decoder) (BasicAnalysis, error) {
	b := BasicAnalysis{
		Clustering:           d.Float64(),
		Assortativity:        d.Float64(),
		AttractingComponents: d.Int(),
	}
	n := d.Uvarint()
	if d.Err() != nil {
		return b, d.Err()
	}
	if n > 10 { // the stage keeps at most 10 representative cores
		return b, cache.ErrCorrupt
	}
	for i := uint64(0); i < n; i++ {
		b.AttractingCores = append(b.AttractingCores, d.Int())
	}
	return b, d.Err()
}

// --- mutual core (§IV-C conjecture) ------------------------------------------

func encodeMutualCoreTo(e *cache.Encoder, m *MutualCoreAnalysis) {
	e.Bool(m != nil)
	if m == nil {
		return
	}
	e.Int(m.CoreK)
	e.Int(m.Degeneracy)
	e.Int(m.CoreNodes)
	e.Float64(m.CoreReciprocity)
	e.Float64(m.PeripheryReciprocity)
	e.Float64(m.MutualEdgeShare)
	e.Uvarint(uint64(len(m.RichClub)))
	for _, p := range m.RichClub {
		e.Int(p.K)
		e.Int(p.N)
		e.Float64(p.Phi)
		e.Float64(p.PhiNorm)
	}
}

func decodeMutualCoreFrom(d *cache.Decoder) (*MutualCoreAnalysis, error) {
	if !d.Bool() {
		return nil, d.Err()
	}
	m := &MutualCoreAnalysis{
		CoreK:                d.Int(),
		Degeneracy:           d.Int(),
		CoreNodes:            d.Int(),
		CoreReciprocity:      d.Float64(),
		PeripheryReciprocity: d.Float64(),
		MutualEdgeShare:      d.Float64(),
	}
	n := d.Uvarint()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if n > 1024 { // the curve has ~10 log-spaced points; reject corruption
		return nil, cache.ErrCorrupt
	}
	for i := uint64(0); i < n; i++ {
		m.RichClub = append(m.RichClub, graph.RichClubPoint{
			K: d.Int(), N: d.Int(), Phi: d.Float64(), PhiNorm: d.Float64(),
		})
		if d.Err() != nil {
			return nil, d.Err()
		}
	}
	return m, nil
}
