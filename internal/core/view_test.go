package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"sync/atomic"
	"testing"
)

func TestJSONFloatMarshal(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{1.5, "1.5"},
		{0, "0"},
		{math.NaN(), "null"},
		{math.Inf(1), "null"},
		{math.Inf(-1), "null"},
		{2.74, "2.74"},
	}
	for _, c := range cases {
		got, err := json.Marshal(JSONFloat(c.in))
		if err != nil {
			t.Fatalf("marshal %v: %v", c.in, err)
		}
		if string(got) != c.want {
			t.Errorf("marshal %v = %s, want %s", c.in, got, c.want)
		}
	}
}

// TestReportViewMarshalsAndIsDeterministic runs the fast battery, projects
// the report, and asserts the view marshals (despite the NaN GoFP from
// skipped bootstraps), round-trips as JSON, marshals to identical bytes
// twice, and carries the sections the run produced.
func TestReportViewMarshalsAndIsDeterministic(t *testing.T) {
	p, ds := testPlatform(t)
	activity := p.ActivitySeries(p.EnglishNodes())
	opts := fastOptions()
	opts.SkipBootstrap = true // forces GoFP = NaN through the view
	rep, err := NewCharacterizer(opts).Run(ds, activity)
	if err != nil {
		t.Fatal(err)
	}
	v := NewReportView(rep)
	b1, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("view must marshal even with NaN fields: %v", err)
	}
	b2, err := json.Marshal(NewReportView(rep))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("view marshaling is not deterministic")
	}
	var decoded map[string]any
	if err := json.Unmarshal(b1, &decoded); err != nil {
		t.Fatalf("view JSON does not parse: %v", err)
	}
	for _, section := range []string{"summary", "basic", "degree", "reciprocity",
		"distances", "bios", "histograms", "centrality", "mutual_core", "activity"} {
		if _, ok := decoded[section]; !ok {
			t.Errorf("section %q missing from view JSON", section)
		}
	}
	// The NaN GoFP must surface as null, not as a marshal failure.
	deg := decoded["degree"].(map[string]any)
	if v, ok := deg["gof_p"]; !ok || v != nil {
		t.Fatalf("degree.gof_p = %v, want null", v)
	}
	if deg["alpha"] == nil {
		t.Fatal("degree.alpha should be a number")
	}
}

// TestStageViewFragments asserts each stage maps to the matching subtree of
// the full view and unknown stages error.
func TestStageViewFragments(t *testing.T) {
	p, ds := testPlatform(t)
	activity := p.ActivitySeries(p.EnglishNodes())
	rep, err := NewCharacterizer(fastOptions()).Run(ds, activity)
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range StageNames() {
		frag, err := StageView(rep, stage)
		if err != nil {
			t.Fatalf("StageView(%s): %v", stage, err)
		}
		if _, err := json.Marshal(frag); err != nil {
			t.Fatalf("stage %s fragment does not marshal: %v", stage, err)
		}
	}
	sv, err := StageView(rep, StageSummary)
	if err != nil {
		t.Fatal(err)
	}
	if sv.(*SummaryView).Nodes != rep.Summary.Nodes {
		t.Fatal("summary fragment does not match the report")
	}
	if _, err := StageView(rep, "nope"); err == nil {
		t.Fatal("unknown stage should error")
	}
}

// TestRunContextCancellation cancels mid-run via the stage observer: the
// run must return an error matching context.Canceled alongside the partial
// report built from whatever stages completed before the cancel.
func TestRunContextCancellation(t *testing.T) {
	p, ds := testPlatform(t)
	activity := p.ActivitySeries(p.EnglishNodes())
	ctx, cancel := context.WithCancel(context.Background())
	var observed int32
	opts := fastOptions()
	opts.Parallelism = 1
	opts.StageObserver = func(StageTiming) {
		if atomic.AddInt32(&observed, 1) == 1 {
			cancel() // abandon the battery after the first completed stage
		}
	}
	rep, err := NewCharacterizer(opts).RunContext(ctx, ds, activity)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil {
		t.Fatal("cancelled run should still return the partial report")
	}
	// Stage-granular cancellation: strictly fewer stages executed than the
	// full battery (13 stages on this dataset).
	if n := atomic.LoadInt32(&observed); n >= 13 {
		t.Fatalf("observed %d stages after cancellation, want fewer than the full battery", n)
	}
}

// TestRunContextPreCancelled: an already-cancelled context runs nothing.
func TestRunContextPreCancelled(t *testing.T) {
	p, ds := testPlatform(t)
	activity := p.ActivitySeries(p.EnglishNodes())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var observed int32
	opts := fastOptions()
	opts.StageObserver = func(StageTiming) { atomic.AddInt32(&observed, 1) }
	if _, err := NewCharacterizer(opts).RunContext(ctx, ds, activity); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if atomic.LoadInt32(&observed) != 0 {
		t.Fatal("no stage should execute under a pre-cancelled context")
	}
}

// TestValueSectionPresenceFollowsTimings: on timed reports the value-typed
// sections (summary, basic, reciprocity) are present exactly when their
// stage ran — a legitimately zero reciprocity still serves as 0 — and on
// untimed reports the zero-value heuristic applies.
func TestValueSectionPresenceFollowsTimings(t *testing.T) {
	timed := &Report{
		Reciprocity: 0,
		Timings:     []StageTiming{{Name: StageReciprocity}},
	}
	v := NewReportView(timed)
	if v.Reciprocity == nil || *v.Reciprocity != 0 {
		t.Fatalf("timed zero reciprocity should serve as 0, got %v", v.Reciprocity)
	}
	if v.Summary != nil || v.Basic != nil {
		t.Fatal("sections whose stages did not run must stay absent")
	}
	untimed := &Report{Reciprocity: 0}
	if v := NewReportView(untimed); v.Reciprocity != nil {
		t.Fatal("untimed zero reciprocity is indistinguishable from not-run and must be omitted")
	}
}

// TestViewStages: components' servable view needs the summary stage.
func TestViewStages(t *testing.T) {
	got := ViewStages(StageComponents)
	if len(got) != 2 || got[0] != StageComponents || got[1] != StageSummary {
		t.Fatalf("ViewStages(components) = %v", got)
	}
	if got := ViewStages(StageDegree); len(got) != 1 || got[0] != StageDegree {
		t.Fatalf("ViewStages(degree) = %v", got)
	}
}
