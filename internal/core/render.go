package core

import (
	"fmt"
	"io"
	"math"
	"strings"

	"elites/internal/stats"
	"elites/internal/text"
)

// Render writes the full report in the paper's order: §III dataset table,
// §IV-A basic analysis, Figure 1 histograms, Figure 2 + §IV-B power laws,
// §IV-C reciprocity, Figure 3 distances, §IV-E bio tables + Figure 4 cloud,
// Figure 5 centrality panels, and §V activity analysis with the Figure 6
// calendar map.
func (r *Report) Render(w io.Writer) {
	r.renderSummary(w)
	r.renderBasic(w)
	r.renderFigure1(w)
	r.renderPowerLaws(w)
	r.renderReciprocity(w)
	r.renderDistances(w)
	r.renderBios(w)
	r.renderCentrality(w)
	r.renderCategories(w)
	r.renderMutualCore(w)
	r.renderActivity(w)
}

func (r *Report) renderCategories(w io.Writer) {
	if r.Categories == nil {
		return
	}
	section(w, "User categorization (archetype mix, audience, topical affinity)")
	r.Categories.Render(w)
}

func (r *Report) renderMutualCore(w io.Writer) {
	if r.MutualCore == nil {
		return
	}
	section(w, "§IV-C conjecture validation: core vs periphery reciprocity")
	r.MutualCore.Render(w)
}

func section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}

func (r *Report) renderSummary(w io.Writer) {
	s := r.Summary
	section(w, "Dataset (paper §III)")
	if s.TotalVerified > 0 {
		fmt.Fprintf(w, "verified users total:     %d\n", s.TotalVerified)
	}
	fmt.Fprintf(w, "english verified users:   %d\n", s.Nodes)
	fmt.Fprintf(w, "directed edges:           %d\n", s.Edges)
	fmt.Fprintf(w, "density:                  %.5f\n", s.Density)
	fmt.Fprintf(w, "isolated users:           %d\n", s.Isolated)
	fmt.Fprintf(w, "average out-degree:       %.2f\n", s.AvgOutDegree)
	fmt.Fprintf(w, "maximum out-degree:       %d (node %d)\n", s.MaxOutDegree, s.MaxOutNode)
	fmt.Fprintf(w, "giant SCC:                %d users (%.2f%%)\n", s.GiantSCCSize, 100*s.GiantSCCShare)
	fmt.Fprintf(w, "connected components:     %d weak / %d strong\n", s.NumWCCs, s.NumSCCs)
}

func (r *Report) renderBasic(w io.Writer) {
	section(w, "Basic analysis (paper §IV-A)")
	fmt.Fprintf(w, "average local clustering: %.4f\n", r.Basic.Clustering)
	fmt.Fprintf(w, "degree assortativity:     %+.4f\n", r.Basic.Assortativity)
	fmt.Fprintf(w, "attracting components:    %d\n", r.Basic.AttractingComponents)
	if len(r.Basic.AttractingCores) > 0 {
		fmt.Fprintf(w, "largest attracting cores: nodes %v\n", r.Basic.AttractingCores)
	}
}

// renderFigure1 prints the four log-log histograms as ASCII bars.
func (r *Report) renderFigure1(w io.Writer) {
	if len(r.MetricHists) == 0 {
		return
	}
	section(w, "Figure 1: distributions of friends, followers, list memberships, statuses")
	for _, name := range []string{"friends", "followers", "list memberships", "statuses"} {
		h, ok := r.MetricHists[name]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "\n  %s (log-binned, %d users)\n", name, h.Total())
		renderHistogram(w, h, 46)
	}
}

// renderHistogram draws a log-binned histogram with log-scaled bars, the
// visual convention of the paper's Figure 1.
func renderHistogram(w io.Writer, h *stats.Histogram, width int) {
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	if maxC == 0 {
		return
	}
	logMax := math.Log10(float64(maxC) + 1)
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		bar := int(math.Round(math.Log10(float64(c)+1) / logMax * float64(width)))
		fmt.Fprintf(w, "  %10.3g–%-10.3g |%s %d\n",
			h.Edges[i], h.Edges[i+1], strings.Repeat("█", bar), c)
	}
}

func (r *Report) renderPowerLaws(w io.Writer) {
	section(w, "Figure 2 / §IV-B: power-law inference (Clauset–Shalizi–Newman MLE)")
	render := func(name string, pa *PowerLawAnalysis) {
		if pa == nil || pa.Fit == nil {
			fmt.Fprintf(w, "%s: no fit\n", name)
			return
		}
		f := pa.Fit
		kind := "continuous"
		if f.Discrete {
			kind = "discrete"
		}
		fmt.Fprintf(w, "\n%s (%s MLE):\n", name, kind)
		fmt.Fprintf(w, "  alpha = %.3f ± %.3f, xmin = %.4g, tail n = %d of %d, KS = %.4f\n",
			f.Alpha, f.AlphaStdErr, f.Xmin, f.NTail, f.N, f.KS)
		if !math.IsNaN(pa.GoFP) {
			verdict := "power law plausible (p > 0.1)"
			if pa.GoFP <= 0.1 {
				verdict = "power law rejected (p <= 0.1)"
			}
			fmt.Fprintf(w, "  bootstrap GoF p = %.3f → %s\n", pa.GoFP, verdict)
		}
		for _, v := range pa.Vuong {
			var verdict string
			switch v.Favours() {
			case 1:
				verdict = "power law wins"
			case -1:
				verdict = v.Alternative.String() + " wins"
			default:
				verdict = "inconclusive"
			}
			fmt.Fprintf(w, "  Vuong vs %-11s LLR = %+9.1f  stat = %+6.2f  p = %.3g → %s\n",
				v.Alternative, v.LogLikRatio, v.Statistic, v.PValue, verdict)
		}
	}
	render("out-degree distribution", r.Degree)
	render("Laplacian eigenvalues", r.Eigen)
	if len(r.DegreeSeries) > 0 {
		fmt.Fprintf(w, "\n  out-degree frequency series (Figure 2): %d distinct degrees, head:\n", len(r.DegreeSeries))
		for i, p := range r.DegreeSeries {
			if i >= 5 {
				break
			}
			fmt.Fprintf(w, "    degree %6.0f: %.5f of users\n", p.X, p.P)
		}
	}
}

func (r *Report) renderReciprocity(w io.Writer) {
	section(w, "Reciprocity (paper §IV-C)")
	fmt.Fprintf(w, "reciprocity: %.1f%%   (paper: verified 33.7%%, whole Twitter 22.1%%, Flickr 68%%)\n",
		100*r.Reciprocity)
}

func (r *Report) renderDistances(w io.Writer) {
	if r.Distances == nil {
		return
	}
	section(w, "Figure 3 / §IV-D: degrees of separation")
	d := r.Distances
	fmt.Fprintf(w, "mean distance:      %.3f   (paper: 2.74 verified, 4.12 Kwak full Twitter)\n", d.Mean())
	fmt.Fprintf(w, "median distance:    %.2f\n", d.Median())
	fmt.Fprintf(w, "effective diameter: %.2f (90th pct)\n", d.EffectiveDiameter())
	fmt.Fprintf(w, "max observed:       %d\n", d.MaxObserved())
	total := d.Pairs
	if total > 0 {
		fmt.Fprintf(w, "distance histogram (log-scaled pair counts):\n")
		maxLog := 0.0
		for _, c := range d.Counts {
			if l := math.Log10(c + 1); l > maxLog {
				maxLog = l
			}
		}
		for dist := 1; dist < len(d.Counts); dist++ {
			c := d.Counts[dist]
			if c == 0 {
				continue
			}
			bar := int(math.Log10(c+1) / maxLog * 40)
			fmt.Fprintf(w, "  %2d hops |%s %.3g\n", dist, strings.Repeat("█", bar), c)
		}
	}
}

func (r *Report) renderBios(w io.Writer) {
	if r.Bios == nil {
		return
	}
	section(w, "Tables I & II / Figure 4: verified user bios (§IV-E)")
	fmt.Fprintf(w, "\nTable I: most popular bigrams\n")
	renderNGrams(w, r.Bios.TopBigrams)
	fmt.Fprintf(w, "\nTable II: most popular trigrams\n")
	renderNGrams(w, r.Bios.TopTrigrams)
	fmt.Fprintf(w, "\nFigure 4: unigram word cloud\n")
	fmt.Fprint(w, text.RenderASCII(r.Bios.Cloud, 72))
}

func renderNGrams(w io.Writer, grams []text.NGram) {
	fmt.Fprintf(w, "  %-34s %s\n", "Phrase", "Occurrences")
	for _, g := range grams {
		fmt.Fprintf(w, "  %-34s %d\n", g.Phrase(), g.Count)
	}
}

func (r *Report) renderCentrality(w io.Writer) {
	if len(r.Centrality) == 0 {
		return
	}
	section(w, "Figure 5: influence correlations with GAM splines (§IV-F)")
	fmt.Fprintf(w, "  %-38s %9s %9s %12s %7s\n", "panel (log-log)", "pearson", "spearman", "p-value", "n")
	for _, p := range r.Centrality {
		fmt.Fprintf(w, "  %-38s %+9.3f %+9.3f %12.3g %7d\n",
			p.Label, p.Pearson, p.Spearman, p.PValue, p.N)
	}
	// One spline rendered as a sample; full curves are in the struct.
	for _, p := range r.Centrality {
		if p.Label != "follower count vs pagerank" || len(p.Curve) == 0 {
			continue
		}
		fmt.Fprintf(w, "\n  spline: follower count vs pagerank (log10 axes, ±95%% band)\n")
		for i := 0; i < len(p.Curve); i += 4 {
			cp := p.Curve[i]
			fmt.Fprintf(w, "    x=%6.2f  y=%6.2f  [%6.2f, %6.2f]\n", cp.X, cp.Y, cp.Lo, cp.Hi)
		}
	}
}

func (r *Report) renderActivity(w io.Writer) {
	if r.Activity == nil {
		return
	}
	a := r.Activity
	section(w, "Activity analysis (paper §V)")
	fmt.Fprintf(w, "portmanteau tests up to lag %d:\n", a.PortmanteauLag)
	fmt.Fprintf(w, "  Ljung–Box  max p = %.3g   (paper: 3.81e-38)\n", a.LjungBoxMaxP)
	fmt.Fprintf(w, "  Box–Pierce max p = %.3g   (paper: 7.57e-38)\n", a.BoxPierceMaxP)
	if a.ADF != nil {
		verdict := "stationary (unit root rejected)"
		if !a.ADF.Stationary() {
			verdict = "unit root NOT rejected"
		}
		fmt.Fprintf(w, "ADF (constant+trend): stat = %.2f, crit 5%% = %.2f, lags = %d → %s\n",
			a.ADF.Statistic, a.ADF.Crit5, a.ADF.Lags, verdict)
		fmt.Fprintf(w, "  (paper: −3.86 vs −3.42 → stationary)\n")
	}
	fmt.Fprintf(w, "Sunday / weekday activity ratio: %.3f (Sundays reliably lower)\n", a.SundayWeekday)
	fmt.Fprintf(w, "PELT penalty sweep change-points (index, stability):\n")
	for i, c := range a.Changepoints {
		if i >= 6 {
			break
		}
		date := a.Series.Date(c.Index).Format("2006-01-02")
		fmt.Fprintf(w, "  %s (day %d), stability %.2f\n", date, c.Index, c.Stability)
	}
	fmt.Fprintf(w, "\nFigure 6: calendar heatmap\n%s", a.Series.CalendarMap())
}
