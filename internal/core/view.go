package core

import (
	"errors"
	"fmt"
	"strconv"

	"elites/internal/features"
	"elites/internal/graph"
	"elites/internal/pipeline"
	"elites/internal/powerlaw"
	"elites/internal/stats"
	"elites/internal/text"
	"elites/internal/timeseries"
)

// view.go projects a Report into JSON-safe view structs for the serving
// layer (internal/serve). Two properties are load-bearing:
//
//   - Marshalable always: encoding/json rejects NaN and ±Inf, and several
//     report floats are legitimately NaN (GoFP when bootstraps are skipped,
//     degenerate correlations). Every float crosses through JSONFloat,
//     which marshals non-finite values as null.
//   - Deterministic bytes: a view built from a given report marshals to
//     identical bytes every time (Go's encoder sorts map keys, struct
//     fields are ordered), so coalesced and cached responses can be
//     compared byte-for-byte. Timings and cache traffic are deliberately
//     excluded — they vary run to run while the analysis results do not.

// JSONFloat is a float64 that marshals NaN and ±Inf as null instead of
// failing the whole encode.
type JSONFloat float64

// MarshalJSON renders finite values as numbers and non-finite ones as null.
func (f JSONFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if v != v || v > maxJSONFloat || v < -maxJSONFloat {
		return []byte("null"), nil
	}
	return strconv.AppendFloat(nil, v, 'g', -1, 64), nil
}

const maxJSONFloat = 1.7976931348623157e308 // math.MaxFloat64, inline to keep the method allocation-free

func jfloats(in []float64) []JSONFloat {
	if in == nil {
		return nil
	}
	out := make([]JSONFloat, len(in))
	for i, v := range in {
		out[i] = JSONFloat(v)
	}
	return out
}

// ReportView is the full JSON projection of a Report. Sections the run did
// not produce (skipped stages, missing profiles or activity) are omitted.
type ReportView struct {
	Summary     *SummaryView             `json:"summary,omitempty"`
	Basic       *BasicView               `json:"basic,omitempty"`
	Degree      *PowerLawView            `json:"degree,omitempty"`
	Eigen       *PowerLawView            `json:"eigen,omitempty"`
	Reciprocity *JSONFloat               `json:"reciprocity,omitempty"`
	Distances   *DistancesView           `json:"distances,omitempty"`
	Bios        *BiosView                `json:"bios,omitempty"`
	Histograms  map[string]HistogramView `json:"histograms,omitempty"`
	Centrality  []CentralityPairView     `json:"centrality,omitempty"`
	Categories  *CategoriesView          `json:"categories,omitempty"`
	MutualCore  *MutualCoreView          `json:"mutual_core,omitempty"`
	Activity    *ActivityView            `json:"activity,omitempty"`
	Features    *FeaturesSummaryView     `json:"features,omitempty"`
	// Degraded marks a partial report: one or more stages failed and their
	// sections are missing. Clean reports omit both fields entirely, so a
	// degraded-then-recovered dataset serves bodies byte-identical to a
	// never-faulted run. The fields sort last in the struct so every clean
	// section keeps its position.
	Degraded    bool             `json:"degraded,omitempty"`
	StageErrors []StageErrorView `json:"stage_errors,omitempty"`
}

// StageErrorView is one failed (or fault-skipped) stage's structured error
// entry in a degraded report.
type StageErrorView struct {
	Stage string `json:"stage"`
	Error string `json:"error"`
	// Panic marks stages whose failure was a contained panic; Stack is the
	// goroutine stack captured at the panic site.
	Panic bool   `json:"panic,omitempty"`
	Stack string `json:"stack,omitempty"`
	// Skipped marks stages that never executed (failed dependency or
	// cancelled run) rather than failed themselves.
	Skipped bool `json:"skipped,omitempty"`
	// Retries counts failed re-run attempts beyond the first.
	Retries int `json:"retries,omitempty"`
}

// SummaryView mirrors the §III dataset table.
type SummaryView struct {
	Nodes         int       `json:"nodes"`
	Edges         int64     `json:"edges"`
	Density       JSONFloat `json:"density"`
	Isolated      int       `json:"isolated"`
	AvgOutDegree  JSONFloat `json:"avg_out_degree"`
	MaxOutDegree  int       `json:"max_out_degree"`
	MaxOutNode    int       `json:"max_out_node"`
	GiantSCCSize  int       `json:"giant_scc_size"`
	GiantSCCShare JSONFloat `json:"giant_scc_share"`
	NumSCCs       int       `json:"num_sccs"`
	NumWCCs       int       `json:"num_wccs"`
	TotalVerified int       `json:"total_verified,omitempty"`
}

// BasicView mirrors §IV-A.
type BasicView struct {
	Clustering           JSONFloat `json:"clustering"`
	Assortativity        JSONFloat `json:"assortativity"`
	AttractingComponents int       `json:"attracting_components"`
	AttractingCores      []int     `json:"attracting_cores,omitempty"`
}

// PowerLawView carries one distribution's §IV-B inference.
type PowerLawView struct {
	Discrete    bool        `json:"discrete"`
	Alpha       JSONFloat   `json:"alpha"`
	AlphaStdErr JSONFloat   `json:"alpha_std_err"`
	Xmin        JSONFloat   `json:"xmin"`
	KS          JSONFloat   `json:"ks"`
	NTail       int         `json:"n_tail"`
	N           int         `json:"n"`
	GoFP        JSONFloat   `json:"gof_p"` // null when bootstraps were skipped
	Vuong       []VuongView `json:"vuong,omitempty"`
}

// VuongView is one likelihood-ratio comparison against an alternative.
type VuongView struct {
	Alternative string    `json:"alternative"`
	LogLikRatio JSONFloat `json:"log_lik_ratio"`
	Statistic   JSONFloat `json:"statistic"`
	PValue      JSONFloat `json:"p_value"`
	Favours     string    `json:"favours"` // "power-law" | "alternative" | "inconclusive"
}

// DistancesView summarizes the Figure 3 distance distribution.
type DistancesView struct {
	Mean              JSONFloat   `json:"mean"`
	Median            JSONFloat   `json:"median"`
	EffectiveDiameter JSONFloat   `json:"effective_diameter"`
	MaxObserved       int         `json:"max_observed"`
	Pairs             JSONFloat   `json:"pairs"`
	Sources           int         `json:"sources"`
	Sampled           bool        `json:"sampled"`
	Counts            []JSONFloat `json:"counts"`
}

// NGramView is one table row of Tables I/II.
type NGramView struct {
	Phrase string `json:"phrase"`
	Count  int    `json:"count"`
}

// BiosView carries the §IV-E n-gram tables.
type BiosView struct {
	TopUnigrams []NGramView `json:"top_unigrams,omitempty"`
	TopBigrams  []NGramView `json:"top_bigrams,omitempty"`
	TopTrigrams []NGramView `json:"top_trigrams,omitempty"`
}

// HistogramView is one Figure 1 panel.
type HistogramView struct {
	Edges  []JSONFloat `json:"edges"`
	Counts []int       `json:"counts"`
}

// CentralityPairView is one Figure 5 panel.
type CentralityPairView struct {
	Label    string           `json:"label"`
	Pearson  JSONFloat        `json:"pearson"`
	Spearman JSONFloat        `json:"spearman"`
	PValue   JSONFloat        `json:"p_value"`
	N        int              `json:"n"`
	Curve    []CurvePointView `json:"curve,omitempty"`
}

// CurvePointView is one GAM spline sample with its ±95% band.
type CurvePointView struct {
	X  JSONFloat `json:"x"`
	Y  JSONFloat `json:"y"`
	Lo JSONFloat `json:"lo"`
	Hi JSONFloat `json:"hi"`
}

// CategoriesView is the per-archetype table.
type CategoriesView struct {
	Stats []CategoryStatView `json:"stats"`
}

// CategoryStatView is one archetype row.
type CategoryStatView struct {
	Category      string    `json:"category"`
	Count         int       `json:"count"`
	Share         JSONFloat `json:"share"`
	MeanFollowers JSONFloat `json:"mean_followers"`
	MeanListed    JSONFloat `json:"mean_listed"`
	PageRankShare JSONFloat `json:"pagerank_share"`
	Affinity      JSONFloat `json:"affinity"`
}

// MutualCoreView is the §IV-C core-reciprocity validation.
type MutualCoreView struct {
	CoreK                int            `json:"core_k"`
	Degeneracy           int            `json:"degeneracy"`
	CoreNodes            int            `json:"core_nodes"`
	CoreReciprocity      JSONFloat      `json:"core_reciprocity"`
	PeripheryReciprocity JSONFloat      `json:"periphery_reciprocity"`
	MutualEdgeShare      JSONFloat      `json:"mutual_edge_share"`
	RichClub             []RichClubView `json:"rich_club,omitempty"`
}

// RichClubView is one normalized rich-club curve point.
type RichClubView struct {
	K       int       `json:"k"`
	N       int       `json:"n"`
	Phi     JSONFloat `json:"phi"`
	PhiNorm JSONFloat `json:"phi_norm"`
}

// ActivityView is the §V verdict set.
type ActivityView struct {
	Days           int               `json:"days"`
	Start          string            `json:"start"` // ISO date
	PortmanteauLag int               `json:"portmanteau_lag"`
	LjungBoxMaxP   JSONFloat         `json:"ljung_box_max_p"`
	BoxPierceMaxP  JSONFloat         `json:"box_pierce_max_p"`
	ADF            *ADFView          `json:"adf,omitempty"`
	SundayWeekday  JSONFloat         `json:"sunday_weekday_ratio"`
	WeekdayMeans   []JSONFloat       `json:"weekday_means"`
	Changepoints   []ChangepointView `json:"changepoints,omitempty"`
}

// ADFView is the Augmented Dickey–Fuller outcome.
type ADFView struct {
	Statistic  JSONFloat `json:"statistic"`
	Lags       int       `json:"lags"`
	Crit5      JSONFloat `json:"crit_5"`
	Stationary bool      `json:"stationary"`
}

// ChangepointView is one PELT sweep candidate.
type ChangepointView struct {
	Index     int       `json:"index"`
	Date      string    `json:"date,omitempty"` // ISO date when the series is known
	Stability JSONFloat `json:"stability"`
}

// FeaturesSummaryView is the feature-matrix stage's report fragment: the
// scalar summary only — per-row payloads are served through the per-user
// endpoints, never inlined into a report body.
type FeaturesSummaryView struct {
	Users        int       `json:"users"`
	Columns      []string  `json:"columns"`
	CoreK        int       `json:"core_k"`
	Degeneracy   int       `json:"degeneracy"`
	TailXmin     JSONFloat `json:"tail_xmin"` // null when no power-law tail fit succeeded
	TailCount    int       `json:"tail_count"`
	EliteCount   int       `json:"elite_count"`
	BotCount     int       `json:"bot_count"`
	RegularCount int       `json:"regular_count"`
}

// FeatureVectorView is one user's named feature vector, in matrix column
// order.
type FeatureVectorView struct {
	OutDegree  JSONFloat `json:"out_degree"`
	InDegree   JSONFloat `json:"in_degree"`
	Ratio      JSONFloat `json:"follower_following_ratio"` // null for 0/0 (NaN) and x/0 (+Inf)
	MutualCore bool      `json:"mutual_core"`
	BetwPct    JSONFloat `json:"betweenness_pct"`
	EigenPct   JSONFloat `json:"eigen_pct"`
	Clustering JSONFloat `json:"clustering"`
	Tail       bool      `json:"power_law_tail"`
}

// UserScoreView is the scorer's verdict for one user.
type UserScoreView struct {
	Class   string    `json:"class"` // "elite" | "bot" | "regular"
	Elite   JSONFloat `json:"elite"`
	Bot     JSONFloat `json:"bot"`
	Regular JSONFloat `json:"regular"`
}

// UserFeaturesView is one user's feature row + score, addressed by
// out-degree rank (rank 1 = most-following account) like the serving
// layer's other per-user responses.
type UserFeaturesView struct {
	Rank     int               `json:"rank"`
	Node     int               `json:"node"`
	Features FeatureVectorView `json:"features"`
	Score    UserScoreView     `json:"score"`
}

// UsersBatchView is the users:batch response body: the requested users in
// request order. It carries no dataset identity, so eliteanalyze -features
// emits byte-identical bodies for the same dataset and ranks.
type UsersBatchView struct {
	Users []UserFeaturesView `json:"users"`
}

// NewReportView projects rep into its JSON view. The projection never
// fails: sections the run skipped come out nil/omitted.
//
// Pointer-typed report sections encode their own presence. The value-typed
// ones (summary, basic, reciprocity) cannot, so their presence is decided
// by Report.Timings when the run collected them (Options.Timings — the
// serving layer always does, so a legitimately zero reciprocity still
// serves as 0 rather than vanishing), falling back to zero-value
// heuristics on untimed reports.
func NewReportView(rep *Report) *ReportView {
	if rep == nil {
		return &ReportView{}
	}
	v := &ReportView{
		Degree:     powerLawView(rep.Degree),
		Eigen:      powerLawView(rep.Eigen),
		Distances:  distancesView(rep.Distances),
		Bios:       biosView(rep.Bios),
		Categories: categoriesView(rep.Categories),
		MutualCore: mutualCoreView(rep.MutualCore),
		Activity:   activityView(rep.Activity),
		Features:   featuresView(rep.Features),
	}
	// ran reports whether a stage executed successfully, when the report can
	// tell (ok=false means the report was not timed and the caller must fall
	// back to zero-value sniffing). Failed and skipped stages are present in
	// Timings but did not produce a section — a degraded report must not
	// render their zero values as results.
	ran := func(stage string) (yes, ok bool) {
		if len(rep.Timings) == 0 {
			return false, false
		}
		for _, tm := range rep.Timings {
			if tm.Name == stage {
				return tm.Err == nil && !tm.Skipped, true
			}
		}
		return false, true
	}
	// A report with failed stages is degraded: surface each failure as a
	// structured entry, with contained panics carrying their stacks.
	for _, tm := range rep.Timings {
		if tm.Err == nil {
			continue
		}
		v.Degraded = true
		sev := StageErrorView{
			Stage: tm.Name, Error: tm.Err.Error(),
			Skipped: tm.Skipped, Retries: tm.Retries,
		}
		var pe *pipeline.StagePanicError
		if errors.As(tm.Err, &pe) {
			sev.Panic = true
			sev.Stack = string(pe.Stack)
		}
		v.StageErrors = append(v.StageErrors, sev)
	}
	if yes, ok := ran(StageSummary); yes || (!ok && rep.Summary.Nodes > 0) {
		v.Summary = summaryView(rep.Summary)
	}
	if yes, ok := ran(StageBasic); yes ||
		(!ok && (rep.Basic.Clustering != 0 || rep.Basic.AttractingComponents != 0 ||
			rep.Basic.Assortativity != 0 || len(rep.Basic.AttractingCores) != 0)) {
		v.Basic = basicView(rep.Basic)
	}
	if yes, ok := ran(StageReciprocity); yes || (!ok && rep.Reciprocity != 0) {
		r := JSONFloat(rep.Reciprocity)
		v.Reciprocity = &r
	}
	if len(rep.MetricHists) > 0 {
		v.Histograms = make(map[string]HistogramView, len(rep.MetricHists))
		for name, h := range rep.MetricHists {
			v.Histograms[name] = histogramView(h)
		}
	}
	for _, p := range rep.Centrality {
		v.Centrality = append(v.Centrality, centralityPairView(p))
	}
	return v
}

// ViewStages returns the pipeline stages a run must include for
// StageView(rep, stage) to be populated. For every stage this is the stage
// itself, except components, whose servable projection is the summary
// table — a run restricted to components alone computes the
// decompositions but never renders them.
func ViewStages(stage string) []string {
	if stage == StageComponents {
		return []string{StageComponents, StageSummary}
	}
	return []string{stage}
}

// StageView returns the JSON fragment a single pipeline stage contributes
// to the report view, or an error for stages with no servable projection.
// The fragment types are the same structs ReportView embeds, so a stage
// response is always a subtree of the full report response.
func StageView(rep *Report, stage string) (any, error) {
	v := NewReportView(rep)
	switch stage {
	case StageComponents, StageSummary:
		return v.Summary, nil
	case StageBasic:
		return v.Basic, nil
	case StageDegree:
		return v.Degree, nil
	case StageEigen:
		return v.Eigen, nil
	case StageReciprocity:
		return v.Reciprocity, nil
	case StageDistances:
		return v.Distances, nil
	case StageBios:
		return v.Bios, nil
	case StageHistograms:
		return v.Histograms, nil
	case StageCentrality:
		return v.Centrality, nil
	case StageCategories:
		return v.Categories, nil
	case StageMutualCore:
		return v.MutualCore, nil
	case StageActivity:
		return v.Activity, nil
	case StageFeatures:
		return v.Features, nil
	}
	return nil, fmt.Errorf("core: no view for stage %q (known: %v)", stage, StageNames())
}

func summaryView(s DatasetSummary) *SummaryView {
	return &SummaryView{
		Nodes: s.Nodes, Edges: s.Edges, Density: JSONFloat(s.Density),
		Isolated: s.Isolated, AvgOutDegree: JSONFloat(s.AvgOutDegree),
		MaxOutDegree: s.MaxOutDegree, MaxOutNode: s.MaxOutNode,
		GiantSCCSize: s.GiantSCCSize, GiantSCCShare: JSONFloat(s.GiantSCCShare),
		NumSCCs: s.NumSCCs, NumWCCs: s.NumWCCs, TotalVerified: s.TotalVerified,
	}
}

func basicView(b BasicAnalysis) *BasicView {
	return &BasicView{
		Clustering:           JSONFloat(b.Clustering),
		Assortativity:        JSONFloat(b.Assortativity),
		AttractingComponents: b.AttractingComponents,
		AttractingCores:      b.AttractingCores,
	}
}

func powerLawView(pa *PowerLawAnalysis) *PowerLawView {
	if pa == nil || pa.Fit == nil {
		return nil
	}
	f := pa.Fit
	v := &PowerLawView{
		Discrete: f.Discrete, Alpha: JSONFloat(f.Alpha),
		AlphaStdErr: JSONFloat(f.AlphaStdErr), Xmin: JSONFloat(f.Xmin),
		KS: JSONFloat(f.KS), NTail: f.NTail, N: f.N, GoFP: JSONFloat(pa.GoFP),
	}
	for _, vr := range pa.Vuong {
		v.Vuong = append(v.Vuong, vuongView(vr))
	}
	return v
}

func vuongView(vr *powerlaw.VuongResult) VuongView {
	verdict := "inconclusive"
	switch vr.Favours() {
	case 1:
		verdict = "power-law"
	case -1:
		verdict = "alternative"
	}
	return VuongView{
		Alternative: vr.Alternative.String(),
		LogLikRatio: JSONFloat(vr.LogLikRatio),
		Statistic:   JSONFloat(vr.Statistic),
		PValue:      JSONFloat(vr.PValue),
		Favours:     verdict,
	}
}

func distancesView(d *graph.DistanceDistribution) *DistancesView {
	if d == nil {
		return nil
	}
	return &DistancesView{
		Mean:              JSONFloat(d.Mean()),
		Median:            JSONFloat(d.Median()),
		EffectiveDiameter: JSONFloat(d.EffectiveDiameter()),
		MaxObserved:       d.MaxObserved(),
		Pairs:             JSONFloat(d.Pairs),
		Sources:           d.Sources,
		Sampled:           d.Sampled,
		Counts:            jfloats(d.Counts),
	}
}

func ngramViews(grams []text.NGram) []NGramView {
	out := make([]NGramView, 0, len(grams))
	for _, g := range grams {
		out = append(out, NGramView{Phrase: g.Phrase(), Count: g.Count})
	}
	return out
}

func biosView(b *BioAnalysis) *BiosView {
	if b == nil {
		return nil
	}
	return &BiosView{
		TopUnigrams: ngramViews(b.TopUnigrams),
		TopBigrams:  ngramViews(b.TopBigrams),
		TopTrigrams: ngramViews(b.TopTrigrams),
	}
}

func histogramView(h *stats.Histogram) HistogramView {
	return HistogramView{Edges: jfloats(h.Edges), Counts: h.Counts}
}

func centralityPairView(p CentralityPair) CentralityPairView {
	v := CentralityPairView{
		Label: p.Label, Pearson: JSONFloat(p.Pearson),
		Spearman: JSONFloat(p.Spearman), PValue: JSONFloat(p.PValue), N: p.N,
	}
	for _, cp := range p.Curve {
		v.Curve = append(v.Curve, CurvePointView{
			X: JSONFloat(cp.X), Y: JSONFloat(cp.Y),
			Lo: JSONFloat(cp.Lo), Hi: JSONFloat(cp.Hi),
		})
	}
	return v
}

func categoriesView(ca *CategoryAnalysis) *CategoriesView {
	if ca == nil {
		return nil
	}
	v := &CategoriesView{Stats: make([]CategoryStatView, 0, len(ca.Stats))}
	for _, s := range ca.Stats {
		v.Stats = append(v.Stats, CategoryStatView{
			Category: s.Category.String(), Count: s.Count,
			Share:         JSONFloat(s.Share),
			MeanFollowers: JSONFloat(s.MeanFollowers),
			MeanListed:    JSONFloat(s.MeanListed),
			PageRankShare: JSONFloat(s.PageRankShare),
			Affinity:      JSONFloat(s.Affinity),
		})
	}
	return v
}

func mutualCoreView(m *MutualCoreAnalysis) *MutualCoreView {
	if m == nil {
		return nil
	}
	v := &MutualCoreView{
		CoreK: m.CoreK, Degeneracy: m.Degeneracy, CoreNodes: m.CoreNodes,
		CoreReciprocity:      JSONFloat(m.CoreReciprocity),
		PeripheryReciprocity: JSONFloat(m.PeripheryReciprocity),
		MutualEdgeShare:      JSONFloat(m.MutualEdgeShare),
	}
	for _, p := range m.RichClub {
		v.RichClub = append(v.RichClub, RichClubView{
			K: p.K, N: p.N, Phi: JSONFloat(p.Phi), PhiNorm: JSONFloat(p.PhiNorm),
		})
	}
	return v
}

func featuresView(m *features.Matrix) *FeaturesSummaryView {
	if m == nil {
		return nil
	}
	return &FeaturesSummaryView{
		Users:        m.N,
		Columns:      features.Names(),
		CoreK:        m.CoreK,
		Degeneracy:   m.Degeneracy,
		TailXmin:     JSONFloat(m.TailXmin),
		TailCount:    m.TailCount,
		EliteCount:   m.ClassCounts[features.ClassElite],
		BotCount:     m.ClassCounts[features.ClassBot],
		RegularCount: m.ClassCounts[features.ClassRegular],
	}
}

// NewUserFeaturesView builds one user's feature view from a raw matrix row
// and the scorer outputs for that row.
func NewUserFeaturesView(rank, node int, row, probs []float64, class int) UserFeaturesView {
	return UserFeaturesView{
		Rank: rank,
		Node: node,
		Features: FeatureVectorView{
			OutDegree:  JSONFloat(row[features.FeatOutDegree]),
			InDegree:   JSONFloat(row[features.FeatInDegree]),
			Ratio:      JSONFloat(row[features.FeatRatio]),
			MutualCore: row[features.FeatMutualCore] != 0,
			BetwPct:    JSONFloat(row[features.FeatBetweennessPct]),
			EigenPct:   JSONFloat(row[features.FeatEigenPct]),
			Clustering: JSONFloat(row[features.FeatClustering]),
			Tail:       row[features.FeatTail] != 0,
		},
		Score: UserScoreView{
			Class:   features.ClassName(class),
			Elite:   JSONFloat(probs[features.ClassElite]),
			Bot:     JSONFloat(probs[features.ClassBot]),
			Regular: JSONFloat(probs[features.ClassRegular]),
		},
	}
}

func activityView(a *ActivityAnalysis) *ActivityView {
	if a == nil {
		return nil
	}
	v := &ActivityView{
		PortmanteauLag: a.PortmanteauLag,
		LjungBoxMaxP:   JSONFloat(a.LjungBoxMaxP),
		BoxPierceMaxP:  JSONFloat(a.BoxPierceMaxP),
		SundayWeekday:  JSONFloat(a.SundayWeekday),
		WeekdayMeans:   jfloats(a.WeekdayMeans[:]),
	}
	var series *timeseries.DailySeries
	if a.Series != nil {
		series = a.Series
		v.Days = series.Len()
		v.Start = series.Start.Format("2006-01-02")
	}
	if a.ADF != nil {
		v.ADF = &ADFView{
			Statistic: JSONFloat(a.ADF.Statistic), Lags: a.ADF.Lags,
			Crit5: JSONFloat(a.ADF.Crit5), Stationary: a.ADF.Stationary(),
		}
	}
	for _, c := range a.Changepoints {
		cv := ChangepointView{Index: c.Index, Stability: JSONFloat(c.Stability)}
		if series != nil {
			cv.Date = series.Date(c.Index).Format("2006-01-02")
		}
		v.Changepoints = append(v.Changepoints, cv)
	}
	return v
}
