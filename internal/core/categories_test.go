package core

import (
	"strings"
	"testing"

	"elites/internal/gen"
	"elites/internal/twitter"
)

func TestAnalyzeCategories(t *testing.T) {
	_, ds := testPlatform(t)
	ca, err := AnalyzeCategories(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(ca.Stats) < 8 {
		t.Fatalf("categories found = %d", len(ca.Stats))
	}
	// Journalists dominate the archetype mix (the paper's observation).
	if ca.Stats[0].Category != twitter.CatJournalist {
		t.Fatalf("largest category = %v, want journalist", ca.Stats[0].Category)
	}
	totalShare, totalPR := 0.0, 0.0
	for _, s := range ca.Stats {
		if s.Count <= 0 || s.Share <= 0 || s.MeanFollowers <= 0 {
			t.Fatalf("bad stat: %+v", s)
		}
		if s.Affinity < 0 || s.Affinity > 1 {
			t.Fatalf("affinity out of range: %+v", s)
		}
		totalShare += s.Share
		totalPR += s.PageRankShare
	}
	if totalShare < 0.999 || totalShare > 1.001 {
		t.Fatalf("shares sum to %v", totalShare)
	}
	if totalPR < 0.999 || totalPR > 1.001 {
		t.Fatalf("PageRank shares sum to %v", totalPR)
	}
	// Distinctive terms should include category-signature vocabulary.
	for _, s := range ca.Stats {
		if s.Category == twitter.CatWeather {
			found := false
			for _, term := range s.DistinctiveTerms {
				if term.Term == "weather" || term.Term == "alerts" ||
					term.Term == "forecasts" || term.Term == "warnings" {
					found = true
				}
			}
			if !found {
				t.Fatalf("weather distinctive terms = %v", s.DistinctiveTerms)
			}
		}
	}
	var sb strings.Builder
	ca.Render(&sb)
	if !strings.Contains(sb.String(), "journalist") {
		t.Fatal("render incomplete")
	}
}

func TestAnalyzeCategoriesErrors(t *testing.T) {
	if _, err := AnalyzeCategories(nil); err != ErrNoData {
		t.Fatal("nil dataset should error")
	}
	if _, err := AnalyzeCategories(&twitter.Dataset{}); err != ErrNoData {
		t.Fatal("empty dataset should error")
	}
}

func TestMutualCoreConjectureOnVerified(t *testing.T) {
	// The §IV-C conjecture must hold on the calibrated verified network:
	// the dense core reciprocates more than the periphery.
	res, err := gen.Verified(6000, 5)
	if err != nil {
		t.Fatal(err)
	}
	mca := AnalyzeMutualCore(res.Graph)
	if !mca.ConjectureHolds() {
		t.Fatalf("§IV-C conjecture fails: core %.3f vs periphery %.3f",
			mca.CoreReciprocity, mca.PeripheryReciprocity)
	}
	if mca.Degeneracy <= 1 || mca.CoreNodes <= 0 {
		t.Fatalf("degenerate core structure: %+v", mca)
	}
	var sb strings.Builder
	mca.Render(&sb)
	if !strings.Contains(sb.String(), "conjecture") {
		t.Fatal("render incomplete")
	}
}
