package core

import (
	"math"
	"strings"
	"testing"

	"elites/internal/gen"
	"elites/internal/mathx"
	"elites/internal/twitter"
)

// testDataset builds a small platform dataset once per test binary.
var (
	cachedPlatform *twitter.Platform
	cachedDataset  *twitter.Dataset
)

func testPlatform(t *testing.T) (*twitter.Platform, *twitter.Dataset) {
	t.Helper()
	if cachedPlatform == nil {
		p, err := twitter.NewPlatform(twitter.DefaultPlatformConfig(3000))
		if err != nil {
			t.Fatal(err)
		}
		cachedPlatform = p
		ds, err := twitter.DatasetFromPlatform(p)
		if err != nil {
			t.Fatal(err)
		}
		cachedDataset = ds
	}
	return cachedPlatform, cachedDataset
}

func fastOptions() Options {
	return Options{
		DistanceSources:    60,
		BetweennessSources: 40,
		EigenK:             40,
		BootstrapReps:      20,
		Seed:               3,
	}
}

func TestRunFullPipeline(t *testing.T) {
	p, ds := testPlatform(t)
	activity := p.ActivitySeries(p.EnglishNodes())
	rep, err := NewCharacterizer(fastOptions()).Run(ds, activity)
	if err != nil {
		t.Fatal(err)
	}
	// §III summary.
	if rep.Summary.Nodes != ds.Graph.NumNodes() || rep.Summary.Edges != ds.Graph.NumEdges() {
		t.Fatal("summary counts wrong")
	}
	if rep.Summary.GiantSCCShare < 0.9 {
		t.Fatalf("giant SCC share = %v", rep.Summary.GiantSCCShare)
	}
	// §IV-A.
	if rep.Basic.Clustering <= 0 || rep.Basic.Clustering > 1 {
		t.Fatalf("clustering = %v", rep.Basic.Clustering)
	}
	if rep.Basic.AttractingComponents <= 0 {
		t.Fatal("no attracting components")
	}
	// §IV-B.
	if rep.Degree == nil || rep.Degree.Fit == nil {
		t.Fatal("degree fit missing")
	}
	if rep.Degree.Fit.Alpha < 2.5 || rep.Degree.Fit.Alpha > 4 {
		t.Fatalf("degree alpha = %v", rep.Degree.Fit.Alpha)
	}
	if rep.Eigen == nil || rep.Eigen.Fit == nil {
		t.Fatal("eigen fit missing")
	}
	if len(rep.Degree.Vuong) != 3 {
		t.Fatalf("degree Vuong comparisons = %d", len(rep.Degree.Vuong))
	}
	// §IV-C.
	if rep.Reciprocity < 0.25 || rep.Reciprocity > 0.45 {
		t.Fatalf("reciprocity = %v", rep.Reciprocity)
	}
	// §IV-D.
	if rep.Distances.Mean() < 1.5 || rep.Distances.Mean() > 4 {
		t.Fatalf("mean distance = %v", rep.Distances.Mean())
	}
	// §IV-E.
	if rep.Bios == nil || len(rep.Bios.TopBigrams) == 0 || len(rep.Bios.TopTrigrams) == 0 {
		t.Fatal("bios missing")
	}
	if rep.Bios.TopBigrams[0].Phrase() != "Official Twitter" {
		t.Fatalf("top bigram = %v", rep.Bios.TopBigrams[0].Phrase())
	}
	// Figure 1.
	if len(rep.MetricHists) != 4 {
		t.Fatalf("metric histograms = %d", len(rep.MetricHists))
	}
	// Figure 5: six panels, all positively correlated.
	if len(rep.Centrality) != 6 {
		t.Fatalf("centrality panels = %d, want 6", len(rep.Centrality))
	}
	for _, p := range rep.Centrality {
		if p.Pearson <= 0 {
			t.Errorf("panel %q: pearson = %v, want positive", p.Label, p.Pearson)
		}
	}
	// §V.
	if rep.Activity == nil || rep.Activity.ADF == nil {
		t.Fatal("activity analysis missing")
	}
	if !rep.Activity.ADF.Stationary() {
		t.Fatalf("activity not stationary: %v", rep.Activity.ADF.Statistic)
	}
	if rep.Activity.LjungBoxMaxP > 1e-6 {
		t.Fatalf("Ljung–Box max p = %v", rep.Activity.LjungBoxMaxP)
	}
	if rep.Activity.SundayWeekday >= 1 {
		t.Fatalf("Sunday ratio = %v, want < 1", rep.Activity.SundayWeekday)
	}
}

func TestRunErrors(t *testing.T) {
	c := NewCharacterizer(Options{})
	if _, err := c.Run(nil, nil); err != ErrNoData {
		t.Fatal("nil dataset should error")
	}
	if _, err := c.Run(&twitter.Dataset{}, nil); err != ErrNoData {
		t.Fatal("empty dataset should error")
	}
}

func TestSkipFlags(t *testing.T) {
	_, ds := testPlatform(t)
	opts := fastOptions()
	opts.SkipEigen = true
	opts.SkipBetweenness = true
	opts.SkipBootstrap = true
	rep, err := NewCharacterizer(opts).Run(ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Eigen != nil {
		t.Fatal("eigen should be skipped")
	}
	// Without betweenness, only 4 panels survive.
	if len(rep.Centrality) != 4 {
		t.Fatalf("panels = %d, want 4 without betweenness", len(rep.Centrality))
	}
	if rep.Activity != nil {
		t.Fatal("activity should be nil without a series")
	}
	if !math.IsNaN(rep.Degree.GoFP) {
		t.Fatal("bootstrap should be skipped")
	}
}

func TestRenderContainsSections(t *testing.T) {
	p, ds := testPlatform(t)
	activity := p.ActivitySeries(p.EnglishNodes())
	opts := fastOptions()
	opts.SkipBootstrap = true
	rep, err := NewCharacterizer(opts).Run(ds, activity)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	rep.Render(&sb)
	out := sb.String()
	for _, want := range []string{
		"Dataset (paper §III)",
		"Basic analysis (paper §IV-A)",
		"Figure 1",
		"Figure 2",
		"Reciprocity",
		"Figure 3",
		"Table I",
		"Table II",
		"Figure 4",
		"Figure 5",
		"User categorization",
		"§IV-C conjecture validation",
		"Activity analysis (paper §V)",
		"Figure 6",
		"Official Twitter",
		"Ljung–Box",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFingerprintContrast(t *testing.T) {
	v, err := gen.Verified(5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	tw, err := gen.Twitter(5000, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRNG(5)
	fpV := ComputeFingerprint(v.Graph, 0, rng)
	fpT := ComputeFingerprint(tw.Graph, 0, rng)
	sv := fpV.VerifiedLikeness()
	st := fpT.VerifiedLikeness()
	if sv <= st {
		t.Fatalf("verified-likeness must separate: verified %v vs generic %v", sv, st)
	}
	if sv < 0.7 {
		t.Fatalf("verified graph scores only %v", sv)
	}
	// The paper's own fingerprint must score ~1.
	if s := PaperVerifiedFingerprint().VerifiedLikeness(); s < 0.99 {
		t.Fatalf("paper fingerprint scores %v", s)
	}
	var sb strings.Builder
	CompareFingerprints(&sb, [2]string{"verified", "generic"}, [2]Fingerprint{fpV, fpT})
	if !strings.Contains(sb.String(), "reciprocity") || !strings.Contains(sb.String(), "verified-likeness") {
		t.Fatal("comparison table incomplete")
	}
}

func TestFingerprintEmptyGraph(t *testing.T) {
	rng := mathx.NewRNG(1)
	g, err := gen.ErdosRenyi(0, 0, 1), error(nil)
	if err != nil {
		t.Fatal(err)
	}
	fp := ComputeFingerprint(g, 0, rng)
	if fp.VerifiedLikeness() > 0.6 {
		t.Fatalf("empty graph scores %v", fp.VerifiedLikeness())
	}
}

// TestParallelDeterminism is the acceptance check for the concurrent
// pipeline: the rendered report must be byte-identical between a sequential
// run and a maximally concurrent one, because every stochastic stage draws
// from its own seed-derived RNG stream.
func TestParallelDeterminism(t *testing.T) {
	p, ds := testPlatform(t)
	activity := p.ActivitySeries(p.EnglishNodes())
	render := func(parallelism int) string {
		opts := fastOptions()
		opts.Parallelism = parallelism
		rep, err := NewCharacterizer(opts).Run(ds, activity)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		var sb strings.Builder
		rep.Render(&sb)
		return sb.String()
	}
	seq := render(1)
	for _, par := range []int{2, 8} {
		if got := render(par); got != seq {
			t.Fatalf("report at parallelism %d differs from sequential run", par)
		}
	}
}

// TestParallelDeterminismHeavyStages pins the acceptance criterion for the
// intra-stage parallelism: with betweenness and the CSN bootstraps enabled —
// the two stages that shard their own hot loops and hand Options.Parallelism
// through as their worker budget — the rendered report must still be
// byte-identical between Parallelism 1 and 8.
func TestParallelDeterminismHeavyStages(t *testing.T) {
	_, ds := testPlatform(t)
	render := func(parallelism int) string {
		opts := Options{
			DistanceSources:    40,
			BetweennessSources: 24,
			BootstrapReps:      10,
			Seed:               5,
			SkipEigen:          true, // keep the test fast; eigen has no sharded loop
			Stages:             []string{StageDegree, StageCentrality},
			Parallelism:        parallelism,
		}
		rep, err := NewCharacterizer(opts).Run(ds, nil)
		if err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		if rep.Degree == nil || math.IsNaN(rep.Degree.GoFP) {
			t.Fatalf("parallelism %d: bootstrap did not run", parallelism)
		}
		if len(rep.Centrality) == 0 {
			t.Fatalf("parallelism %d: betweenness panels missing", parallelism)
		}
		var sb strings.Builder
		rep.Render(&sb)
		return sb.String()
	}
	seq := render(1)
	if got := render(8); got != seq {
		t.Fatal("heavy-stage report at parallelism 8 differs from sequential run")
	}
}

func TestStageSubsetOption(t *testing.T) {
	_, ds := testPlatform(t)
	opts := fastOptions()
	opts.SkipBootstrap = true
	opts.Stages = []string{StageSummary, StageReciprocity}
	rep, err := NewCharacterizer(opts).Run(ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Requested stages (and the summary's components dependency) ran...
	if rep.Summary.Nodes != ds.Graph.NumNodes() {
		t.Fatal("summary stage did not run")
	}
	if rep.Reciprocity <= 0 {
		t.Fatal("reciprocity stage did not run")
	}
	// ...and unrequested ones did not.
	if rep.Degree != nil || rep.Distances != nil || rep.Bios != nil || rep.Centrality != nil {
		t.Fatal("unrequested stages ran")
	}
	// Unknown names error.
	opts.Stages = []string{"nonsense"}
	if _, err := NewCharacterizer(opts).Run(ds, nil); err == nil {
		t.Fatal("unknown stage name must error")
	}
	// Valid names that cannot apply to this run (no activity series) error
	// rather than returning an empty report.
	opts.Stages = []string{StageActivity}
	if _, err := NewCharacterizer(opts).Run(ds, nil); err == nil {
		t.Fatal("inapplicable-only stage selection must error")
	}
}

func TestTimingsOption(t *testing.T) {
	_, ds := testPlatform(t)
	opts := fastOptions()
	opts.SkipBootstrap = true
	opts.SkipEigen = true
	opts.Timings = true
	rep, err := NewCharacterizer(opts).Run(ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Timings) == 0 {
		t.Fatal("timings requested but empty")
	}
	seen := map[string]bool{}
	for _, tm := range rep.Timings {
		seen[tm.Name] = true
		if tm.Duration < 0 {
			t.Fatalf("negative duration for %s", tm.Name)
		}
	}
	for _, want := range []string{StageComponents, StageSummary, StageDegree, StageReciprocity} {
		if !seen[want] {
			t.Errorf("missing timing for stage %q", want)
		}
	}
	if seen[StageEigen] || seen[StageActivity] {
		t.Error("skipped stages must not report timings")
	}
	// Without the option the field stays empty, and the rendered report is
	// identical either way — timings never leak into the render.
	opts.Timings = false
	rep2, err := NewCharacterizer(opts).Run(ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Timings != nil {
		t.Fatal("timings recorded without the option")
	}
	var with, without strings.Builder
	rep.Render(&with)
	rep2.Render(&without)
	if with.String() != without.String() {
		t.Fatal("enabling timings changed the rendered report")
	}
}
