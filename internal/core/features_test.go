package core

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"elites/internal/cache"
	"elites/internal/features"
)

// featuresOptions enables the opt-in feature stage next to the cheap
// battery configuration.
func featuresOptions(dir string) Options {
	o := cacheOptions(dir)
	o.Stages = []string{StageFeatures}
	return o
}

func matricesBitIdentical(t *testing.T, want, got *features.Matrix, label string) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: nil matrix (want=%v got=%v)", label, want != nil, got != nil)
	}
	if want.N != got.N || want.CoreK != got.CoreK || want.Degeneracy != got.Degeneracy ||
		want.TailCount != got.TailCount || want.ClassCounts != got.ClassCounts ||
		math.Float64bits(want.TailXmin) != math.Float64bits(got.TailXmin) {
		t.Fatalf("%s: scalar mismatch", label)
	}
	for i := range want.Data {
		if math.Float64bits(want.Data[i]) != math.Float64bits(got.Data[i]) {
			t.Fatalf("%s: Data[%d] differs", label, i)
		}
	}
	for i := range want.Probs {
		if math.Float64bits(want.Probs[i]) != math.Float64bits(got.Probs[i]) {
			t.Fatalf("%s: Probs[%d] differs", label, i)
		}
	}
	for i := range want.Class {
		if want.Class[i] != got.Class[i] {
			t.Fatalf("%s: Class[%d] differs", label, i)
		}
	}
}

func TestFeatureStageColdWarmBitIdentical(t *testing.T) {
	p, ds := testPlatform(t)
	activity := p.ActivitySeries(p.EnglishNodes())
	dir := t.TempDir()
	opts := featuresOptions(dir)

	cold, err := NewCharacterizer(opts).Run(ds, activity)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold.Cache.Misses, []string{StageFeatures}) || len(cold.Cache.Hits) != 0 {
		t.Fatalf("cold traffic: %+v", cold.Cache)
	}
	warm, err := NewCharacterizer(opts).Run(ds, activity)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm.Cache.Hits, []string{StageFeatures}) || len(warm.Cache.Misses) != 0 {
		t.Fatalf("warm traffic: %+v", warm.Cache)
	}
	matricesBitIdentical(t, cold.Features, warm.Features, "warm hydration")
}

func TestFeatureStageCorruptShardRecomputes(t *testing.T) {
	p, ds := testPlatform(t)
	activity := p.ActivitySeries(p.EnglishNodes())
	dir := t.TempDir()
	opts := featuresOptions(dir)

	cold, err := NewCharacterizer(opts).Run(ds, activity)
	if err != nil {
		t.Fatal(err)
	}

	// Truncate one shard entry on disk; the checksum mismatch must turn the
	// whole stage into a miss (full recompute), never an error or a
	// partially-hydrated matrix.
	shards, _ := filepath.Glob(filepath.Join(dir, "features.shard0000-*.bin"))
	if len(shards) != 1 {
		t.Fatalf("want one shard-0 entry, found %v", shards)
	}
	data, err := os.ReadFile(shards[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(shards[0], data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	cc, err := cache.New(dir)
	if err != nil {
		t.Fatal(err)
	}
	cc.DropMemory()

	warm, err := NewCharacterizer(opts).Run(ds, activity)
	if err != nil {
		t.Fatalf("corrupt shard broke the run: %v", err)
	}
	if !contains(warm.Cache.Misses, StageFeatures) {
		t.Fatalf("corrupt shard should force a recompute: %+v", warm.Cache)
	}
	matricesBitIdentical(t, cold.Features, warm.Features, "recompute after corruption")
}

func TestFeatureStageOptIn(t *testing.T) {
	p, ds := testPlatform(t)
	activity := p.ActivitySeries(p.EnglishNodes())
	dir := t.TempDir()

	// The default battery neither runs nor caches the feature stage.
	rep, err := NewCharacterizer(cacheOptions(dir)).Run(ds, activity)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Features != nil {
		t.Fatal("feature matrix computed without opting in")
	}
	if contains(rep.Cache.Hits, StageFeatures) || contains(rep.Cache.Misses, StageFeatures) {
		t.Fatalf("feature stage in default cache traffic: %+v", rep.Cache)
	}

	// Options.Features is the flag-shaped opt-in: the stage joins the full
	// battery instead of replacing it.
	opts := cacheOptions(t.TempDir())
	opts.Features = true
	opts.Parallelism = 1 // observer below appends without locking
	var observed []string
	opts.StageObserver = func(tm StageTiming) { observed = append(observed, tm.Name) }
	full, err := NewCharacterizer(opts).Run(ds, activity)
	if err != nil {
		t.Fatal(err)
	}
	if full.Features == nil || full.Summary.Nodes != ds.Graph.NumNodes() {
		t.Fatal("Features=true should add the stage to the full battery")
	}
	if !contains(full.Cache.Misses, StageFeatures) {
		t.Fatalf("feature stage missing from cache traffic: %+v", full.Cache)
	}
	if !contains(observed, StageFeatures) {
		t.Fatalf("feature stage invisible to StageObserver: %v", observed)
	}
}
