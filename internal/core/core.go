// Package core implements the paper's contribution as a library: a
// characterization pipeline that runs the full battery of §IV network
// analyses and §V activity analyses over a verified-user dataset and
// produces a structured Report — dataset summary, degree and eigenvalue
// power-law inference with alternatives, reciprocity, distance distribution,
// bio n-gram tables, centrality correlations with GAM splines, and the
// portmanteau / ADF / PELT verdicts — plus renderers that print each table
// and figure in the paper's order, and a network-fingerprint comparator for
// the verified-vs-generic contrast.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"time"

	"elites/internal/cache"
	"elites/internal/centrality"
	"elites/internal/faults"
	"elites/internal/features"
	"elites/internal/graph"
	"elites/internal/mathx"
	"elites/internal/obs"
	"elites/internal/pipeline"
	"elites/internal/powerlaw"
	"elites/internal/spectral"
	"elites/internal/stats"
	"elites/internal/store"
	"elites/internal/text"
	"elites/internal/timeseries"
	"elites/internal/twitter"
)

// ErrNoData is returned when the dataset has no graph.
var ErrNoData = errors.New("core: dataset has no graph")

// Options tunes the pipeline's sampled analyses. The zero value picks
// defaults scaled to graphs of tens of thousands of nodes.
type Options struct {
	// DistanceSources is the number of BFS sources for the distance
	// distribution (0 = 200; exact when >= number of nodes).
	DistanceSources int
	// BetweennessSources is the number of Brandes sources (0 = 256).
	BetweennessSources int
	// EigenK is how many top Laplacian eigenvalues to fit (0 = 150).
	EigenK int
	// EigenIters is the Lanczos Krylov dimension (0 = 3·EigenK).
	EigenIters int
	// BootstrapReps is the CSN goodness-of-fit replicate count (0 = 50).
	BootstrapReps int
	// TopNGrams is the table length for bios (0 = 15, the paper's).
	TopNGrams int
	// Seed drives all sampling.
	Seed uint64
	// SkipEigen skips the Laplacian eigenvalue analysis.
	SkipEigen bool
	// SkipBetweenness skips betweenness (the slowest analysis).
	SkipBetweenness bool
	// SkipBootstrap skips goodness-of-fit bootstraps.
	SkipBootstrap bool
	// SkipCategories skips the per-archetype table and the §IV-C
	// mutual-core validation.
	SkipCategories bool
	// Parallelism bounds how many analysis stages run concurrently
	// (0 = GOMAXPROCS, 1 = one stage at a time) and is also the worker
	// budget handed to the stages that shard their own hot loops
	// (betweenness sources, bootstrap replicates); all sharded loops
	// additionally respect one process-wide worker cap (internal/parallel)
	// so concurrent stages compose instead of oversubscribing. Reports are
	// bit-identical across parallelism levels: every stochastic stage
	// draws from its own RNG stream derived from Seed, never from a
	// shared sequence, and every sharded reduction combines fixed-layout
	// partials in a fixed order.
	Parallelism int
	// Stages restricts the run to the named stages plus their transitive
	// dependencies (nil = all). See StageNames for the vocabulary; names
	// skipped by other options or missing data are ignored, unknown names
	// are an error.
	Stages []string
	// Timings records per-stage wall clock into Report.Timings. Timings
	// are not rendered, so timed reports stay byte-comparable.
	Timings bool
	// CacheDir, when non-empty, enables the two-tier per-stage result
	// cache rooted at that directory (in-process LRU over an on-disk
	// store; see internal/cache). The expensive and mid-weight stages —
	// basic, distances, degree, eigen, centrality, mutualcore — are keyed
	// on (dataset digest, options digest, stage, codec version), so a warm
	// re-run hydrates their outputs instead of recomputing betweenness,
	// the bootstraps, the clustering/assortativity passes and the
	// BFS sweeps. Cached and fresh runs render byte-identically; cache
	// traffic is reported in Report.Cache. Parallelism and Timings never
	// enter cache keys (they cannot change results — the determinism
	// contract), so a report cached at one worker budget serves every
	// other.
	CacheDir string
	// NoCache disables the result cache even when CacheDir is set.
	NoCache bool
	// CacheMemBytes caps the cache's in-memory LRU tier (0 keeps
	// cache.DefaultMemBytes). The cap applies to the per-directory shared
	// instance, so the last Characterizer to set it wins for every holder
	// of that directory — evictions are reported in Report.Cache.
	CacheMemBytes int64
	// StageObserver, when non-nil, is called once per executed stage as it
	// finishes (cache hits included), concurrently when stages overlap.
	// It must not block: the pipeline's workers call it inline. Serving
	// layers use it for live progress on long runs; it never affects
	// results and never enters cache keys.
	StageObserver func(StageTiming)
	// Features opts the per-user feature-matrix stage (internal/features)
	// into the run. The stage is opt-in — it also registers when Stages
	// names "features" explicitly — so the default battery, its cache
	// traffic and its rendered output are unchanged. The matrix is cached
	// as a tiny manifest entry plus fixed-width row shards (ShardRows
	// each), which is what lets eliteserve answer per-user feature
	// requests without running the pipeline.
	Features bool
	// StageRetries re-runs a failed (non-panicking) stage up to this many
	// extra times before recording the failure; 0 disables retries. Stages
	// are deterministic, so retries exist for environmental failures —
	// cache hydration races, injected faults — not flaky math.
	StageRetries int
	// StageRetryBackoff is the base delay between retry attempts, doubling
	// per attempt (0 = 10ms). It never affects results, only latency.
	StageRetryBackoff time.Duration
	// StageTimeout bounds each stage's wall clock; a stage that overruns
	// fails with pipeline.ErrStageTimeout and the rest of the battery
	// continues. 0 disables per-stage deadlines.
	StageTimeout time.Duration
	// Faults, when non-nil, is the deterministic fault-injection layer: the
	// scheduler consults it before every stage attempt and the result cache
	// before every disk operation. Production runs leave it nil; the chaos
	// suite and eliteserve's hidden -faults flag use it to rehearse
	// failures. It never enters cache keys.
	Faults *faults.Injector
}

// Pipeline stage names, in canonical (paper) order.
const (
	StageComponents  = "components"
	StageSummary     = "summary"
	StageBasic       = "basic"
	StageDegree      = "degree"
	StageEigen       = "eigen"
	StageReciprocity = "reciprocity"
	StageDistances   = "distances"
	StageBios        = "bios"
	StageHistograms  = "histograms"
	StageCentrality  = "centrality"
	StageCategories  = "categories"
	StageMutualCore  = "mutualcore"
	StageActivity    = "activity"
	StageFeatures    = "features"
)

// StageNames returns every pipeline stage name in canonical order. Which
// stages actually run depends on the dataset (bios, histograms, centrality
// and categories need profiles; activity needs a series) and the Skip*
// options.
func StageNames() []string {
	return []string{
		StageComponents, StageSummary, StageBasic, StageDegree, StageEigen,
		StageReciprocity, StageDistances, StageBios, StageHistograms,
		StageCentrality, StageCategories, StageMutualCore, StageActivity,
		StageFeatures,
	}
}

// StageTiming is one executed pipeline stage's measured wall clock.
// CacheHit marks stages hydrated from the result cache instead of computed.
// A failed stage carries its error (a *pipeline.StagePanicError for
// contained panics, stack included); a stage skipped because a dependency
// failed carries Skipped plus an error wrapping pipeline.ErrDependencySkipped.
type StageTiming struct {
	Name     string
	Duration time.Duration
	CacheHit bool
	// Err is nil for stages that completed; view rendering turns non-nil
	// entries into the report's structured stage_errors. Excluded from JSON
	// (error values don't marshal usefully) — ReportView carries the
	// rendered form.
	Err error `json:"-"`
	// Skipped marks stages that never executed because a dependency failed
	// or the run was cancelled.
	Skipped bool
	// Retries counts re-run attempts beyond the first under StageRetries.
	Retries int
}

// CacheReport summarizes result-cache traffic for one Run (only stages that
// participate in caching appear). Render ignores it, so cached and fresh
// reports stay byte-comparable.
type CacheReport struct {
	// Dir is the cache root.
	Dir string
	// Hits lists cached stages hydrated without running, in declaration
	// order; Misses lists cached stages that ran and stored their result.
	Hits   []string
	Misses []string
	// Evictions is the shared cache instance's cumulative memory-tier
	// eviction count at the end of the run (process-lifetime, not
	// per-run: the instance is shared per directory).
	Evictions uint64
}

func (o Options) withDefaults() Options {
	if o.DistanceSources == 0 {
		o.DistanceSources = 200
	}
	if o.BetweennessSources == 0 {
		o.BetweennessSources = 256
	}
	if o.EigenK == 0 {
		o.EigenK = 150
	}
	if o.EigenIters == 0 {
		o.EigenIters = 3 * o.EigenK
	}
	if o.BootstrapReps == 0 {
		o.BootstrapReps = 50
	}
	if o.TopNGrams == 0 {
		o.TopNGrams = 15
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// DatasetSummary mirrors the paper's §III table.
type DatasetSummary struct {
	Nodes         int
	Edges         int64
	Density       float64
	Isolated      int
	AvgOutDegree  float64
	MaxOutDegree  int
	MaxOutNode    int
	GiantSCCSize  int
	GiantSCCShare float64
	NumSCCs       int
	NumWCCs       int
	TotalVerified int
}

// BasicAnalysis mirrors §IV-A.
type BasicAnalysis struct {
	Clustering           float64
	Assortativity        float64
	AttractingComponents int
	// AttractingCores lists, for up to 10 largest attracting components,
	// a representative member (high in-degree "celebrity" nodes).
	AttractingCores []int
}

// PowerLawAnalysis mirrors §IV-B for one distribution.
type PowerLawAnalysis struct {
	Fit   *powerlaw.Fit
	GoFP  float64 // bootstrap p-value; NaN if skipped
	Vuong []*powerlaw.VuongResult
}

// CentralityPair is one Figure 5 panel: a correlation between an influence
// measure and a network-centrality (or metric) score, with its spline.
type CentralityPair struct {
	Label    string
	Pearson  float64 // on log-log scale
	Spearman float64
	PValue   float64 // Pearson t-test p-value
	Curve    []stats.CurvePoint
	N        int
}

// BioAnalysis mirrors §IV-E.
type BioAnalysis struct {
	TopUnigrams []text.NGram
	TopBigrams  []text.NGram
	TopTrigrams []text.NGram
	Cloud       []text.CloudEntry
}

// ActivityAnalysis mirrors §V.
type ActivityAnalysis struct {
	Series         *timeseries.DailySeries
	LjungBoxMaxP   float64
	BoxPierceMaxP  float64
	ADF            *timeseries.ADFResult
	Changepoints   []timeseries.SweepCandidate
	WeekdayMeans   [7]float64
	SundayWeekday  float64 // Sunday mean / weekday mean
	PortmanteauLag int
}

// Report bundles every analysis output.
type Report struct {
	Summary      DatasetSummary
	Basic        BasicAnalysis
	Degree       *PowerLawAnalysis
	Eigen        *PowerLawAnalysis
	Reciprocity  float64
	Distances    *graph.DistanceDistribution
	Bios         *BioAnalysis
	Centrality   []CentralityPair
	Activity     *ActivityAnalysis
	MetricHists  map[string]*stats.Histogram // Figure 1 panels
	DegreeSeries []stats.CCDFPoint           // Figure 2 series
	// Categories is the per-archetype table (user categorization).
	Categories *CategoryAnalysis
	// MutualCore validates the §IV-C core-reciprocity conjecture.
	MutualCore *MutualCoreAnalysis
	// Features is the per-user feature matrix + scorer output; nil unless
	// Options.Features (or an explicit "features" stage selection) opted
	// the stage in.
	Features *features.Matrix
	// Timings holds per-stage wall clocks when Options.Timings is set.
	// Render ignores it, keeping rendered reports comparable across runs.
	Timings []StageTiming
	// Cache summarizes result-cache hits and misses when Options.CacheDir
	// enabled the cache. Render ignores it.
	Cache *CacheReport
}

// Characterizer runs the pipeline.
type Characterizer struct {
	opts Options
}

// NewCharacterizer builds a pipeline with the given options.
func NewCharacterizer(opts Options) *Characterizer {
	return &Characterizer{opts: opts.withDefaults()}
}

// Run characterizes a dataset by executing the analysis stage graph —
// activity may be nil (skips §V). Stages with no dependency between them run
// concurrently, bounded by Options.Parallelism; each stochastic stage draws
// from an RNG stream derived from Options.Seed and the stage name, so the
// report is bit-identical whatever the parallelism or schedule.
func (c *Characterizer) Run(ds *twitter.Dataset, activity *timeseries.DailySeries) (*Report, error) {
	return c.RunContext(context.Background(), ds, activity)
}

// RunContext is Run with cancellation: when ctx is cancelled the stage
// graph stops scheduling (in-flight stages finish, nothing further starts)
// and the error wraps ctx.Err(). A server threads the http.Request context
// here so abandoned requests stop burning workers mid-battery; cancellation
// is stage-granular — see internal/pipeline.
func (c *Characterizer) RunContext(ctx context.Context, ds *twitter.Dataset, activity *timeseries.DailySeries) (*Report, error) {
	if ds == nil || ds.Graph == nil {
		return nil, ErrNoData
	}
	g := ds.Graph
	// Derive (unlike Split) never advances base, so concurrent stages can
	// key their streams off it without a lock.
	base := mathx.NewRNG(c.opts.Seed)
	rep := &Report{}

	// Result cache: content-address the dataset once, then give each
	// expensive stage a key over exactly the options that shape its
	// output. withCache is the identity when the cache is off, so the
	// stage graph below reads the same either way.
	var rcache *cache.Cache
	var dsDigest uint64
	if c.opts.CacheDir != "" && !c.opts.NoCache {
		if cc, err := cache.New(c.opts.CacheDir); err == nil {
			rcache = cc
			if c.opts.CacheMemBytes > 0 {
				rcache.SetMaxBytes(c.opts.CacheMemBytes)
			}
			dsDigest = store.DatasetDigest(ds, activity)
		}
	}
	withCache := func(st pipeline.Stage, version int, optsDigest uint64,
		enc func(e *cache.Encoder), dec func(d *cache.Decoder) error) pipeline.Stage {
		if rcache == nil {
			return st
		}
		st.CacheKey = cache.Key{
			Stage: st.Name, Version: version,
			Dataset: dsDigest, Options: optsDigest,
		}.String()
		st.Encode = func() ([]byte, error) {
			var e cache.Encoder
			enc(&e)
			return e.Bytes(), nil
		}
		st.Decode = func(data []byte) error {
			d := cache.NewDecoder(data)
			if err := dec(d); err != nil {
				return err
			}
			return d.Finish()
		}
		return st
	}

	// Shared intermediate: the component decompositions feed the summary.
	var scc *graph.SCCResult
	var wcc *graph.WCCResult

	stages := []pipeline.Stage{
		{Name: StageComponents, Run: func() error {
			scc = graph.StronglyConnectedComponents(g)
			wcc = graph.WeaklyConnectedComponents(g)
			return nil
		}},
		{Name: StageSummary, Deps: []string{StageComponents}, Run: func() error {
			c.summarize(rep, ds, scc, wcc)
			return nil
		}},
		withCache(pipeline.Stage{Name: StageBasic, Deps: []string{StageComponents}, Run: func() error {
			c.basic(rep, g, scc)
			return nil
		}}, basicCodecVersion,
			// No option shapes this stage's output (and Seed deliberately
			// stays out of the digest), so one entry serves every run over
			// the same dataset.
			cache.HashWords(),
			func(e *cache.Encoder) { encodeBasicTo(e, rep.Basic) },
			func(d *cache.Decoder) error {
				b, err := decodeBasicFrom(d)
				if err != nil {
					return err
				}
				rep.Basic = b
				return nil
			}),
		withCache(pipeline.Stage{Name: StageDegree, Run: func() error {
			c.degreeAnalysis(rep, g, base.Derive(StageDegree))
			return nil
		}}, degreeCodecVersion,
			cache.HashWords(c.opts.Seed, uint64(c.opts.BootstrapReps), boolWord(c.opts.SkipBootstrap)),
			func(e *cache.Encoder) { encodeDegreeTo(e, rep.DegreeSeries, rep.Degree) },
			func(d *cache.Decoder) error {
				series, pa, err := decodeDegreeFrom(d)
				if err != nil {
					return err
				}
				rep.DegreeSeries, rep.Degree = series, pa
				return nil
			}),
	}
	if !c.opts.SkipEigen {
		stages = append(stages, withCache(pipeline.Stage{Name: StageEigen, Run: func() error {
			c.eigenAnalysis(rep, g, base.Derive(StageEigen))
			return nil
		}}, eigenCodecVersion,
			cache.HashWords(c.opts.Seed, uint64(c.opts.EigenK), uint64(c.opts.EigenIters),
				uint64(c.opts.BootstrapReps), boolWord(c.opts.SkipBootstrap)),
			func(e *cache.Encoder) { encodePowerLawTo(e, rep.Eigen) },
			func(d *cache.Decoder) error {
				pa, err := decodePowerLawFrom(d)
				if err != nil {
					return err
				}
				rep.Eigen = pa
				return nil
			}))
	}
	stages = append(stages,
		pipeline.Stage{Name: StageReciprocity, Run: func() error {
			rep.Reciprocity = graph.Reciprocity(g)
			return nil
		}},
		withCache(pipeline.Stage{Name: StageDistances, Run: func() error {
			rep.Distances = graph.SampledDistancesWorkers(g, c.opts.DistanceSources,
				base.Derive(StageDistances), c.opts.Parallelism)
			return nil
		}}, distancesCodecVersion,
			cache.HashWords(c.opts.Seed, uint64(c.opts.DistanceSources)),
			func(e *cache.Encoder) { encodeDistancesTo(e, rep.Distances) },
			func(d *cache.Decoder) error {
				dd, err := decodeDistancesFrom(d)
				if err != nil {
					return err
				}
				rep.Distances = dd
				return nil
			}),
	)
	if len(ds.Profiles) > 0 {
		stages = append(stages,
			pipeline.Stage{Name: StageBios, Run: func() error {
				c.bioAnalysis(rep, ds)
				return nil
			}},
			pipeline.Stage{Name: StageHistograms, Run: func() error {
				c.metricHistograms(rep, ds)
				return nil
			}},
			withCache(pipeline.Stage{Name: StageCentrality, Run: func() error {
				c.centralityAnalysis(rep, ds, base.Derive(StageCentrality))
				return nil
			}}, centralityCodecVersion,
				cache.HashWords(c.opts.Seed, uint64(c.opts.BetweennessSources), boolWord(c.opts.SkipBetweenness)),
				func(e *cache.Encoder) { encodeCentralityTo(e, rep.Centrality) },
				func(d *cache.Decoder) error {
					pairs, err := decodeCentralityFrom(d)
					if err != nil {
						return err
					}
					rep.Centrality = pairs
					return nil
				}),
		)
		if !c.opts.SkipCategories {
			stages = append(stages, pipeline.Stage{Name: StageCategories, Run: func() error {
				if ca, err := AnalyzeCategories(ds); err == nil {
					rep.Categories = ca
				}
				return nil
			}})
		}
	}
	if !c.opts.SkipCategories {
		stages = append(stages, withCache(pipeline.Stage{Name: StageMutualCore, Run: func() error {
			rep.MutualCore = AnalyzeMutualCore(g)
			return nil
		}}, mutualCoreCodecVersion,
			cache.HashWords(), // deterministic over the graph; no options
			func(e *cache.Encoder) { encodeMutualCoreTo(e, rep.MutualCore) },
			func(d *cache.Decoder) error {
				m, err := decodeMutualCoreFrom(d)
				if err != nil {
					return err
				}
				rep.MutualCore = m
				return nil
			}))
	}
	if activity != nil {
		stages = append(stages, pipeline.Stage{Name: StageActivity, Run: func() error {
			c.activityAnalysis(rep, activity)
			return nil
		}})
	}
	if c.opts.Features || stageRequested(c.opts.Stages, StageFeatures) {
		fopts := features.Options{
			BetweennessSources: c.opts.BetweennessSources,
			Seed:               c.opts.Seed,
			Parallelism:        c.opts.Parallelism,
		}
		fdigest := features.OptionsDigest(fopts)
		// Row payloads are cached as per-shard entries (features.Store)
		// keyed on the same (dataset, options) identity; the stage body is
		// just the manifest. A missing or corrupt shard fails Decode, so
		// the scheduler treats the whole stage as a miss and recomputes —
		// the matrix is never partially hydrated.
		fstore := features.Store{Cache: rcache, Dataset: dsDigest, Options: fdigest}
		stages = append(stages, withCache(pipeline.Stage{Name: StageFeatures, Run: func() error {
			m, err := features.Compute(ds, fopts)
			if err != nil {
				return err
			}
			rep.Features = m
			return nil
		}}, features.ManifestCodecVersion, fdigest,
			func(e *cache.Encoder) {
				features.EncodeManifest(e, rep.Features)
				fstore.Put(rep.Features)
			},
			func(d *cache.Decoder) error {
				m, err := features.DecodeManifest(d, g.NumNodes())
				if err != nil {
					return err
				}
				if err := fstore.Load(m); err != nil {
					return err
				}
				rep.Features = m
				return nil
			}))
	}

	only, err := filterStageSelection(c.opts.Stages, stages)
	if err != nil {
		return nil, err
	}
	// Per-stage resilience policy: bounded retries with deterministic
	// backoff and an optional deadline, applied uniformly (panics are never
	// retried — the pipeline refuses).
	if c.opts.StageRetries > 0 || c.opts.StageTimeout > 0 {
		policy := pipeline.RetryPolicy{MaxRetries: c.opts.StageRetries, Backoff: c.opts.StageRetryBackoff}
		if policy.MaxRetries > 0 && policy.Backoff == 0 {
			policy.Backoff = 10 * time.Millisecond
		}
		for i := range stages {
			stages[i].Retry = policy
			stages[i].Timeout = c.opts.StageTimeout
		}
	}
	popts := pipeline.Options{
		Parallelism: c.opts.Parallelism,
		Only:        only,
	}
	if rcache != nil {
		popts.Cache = rcache
	}
	runCtx := ctx
	if inj := c.opts.Faults; inj != nil {
		// Give KindCancel rules this run's own cancel, hook the scheduler,
		// and hook the (per-directory shared) cache for the run's duration.
		var cancel context.CancelFunc
		runCtx, cancel = context.WithCancel(ctx)
		defer cancel()
		inj.BindCancel(cancel)
		defer inj.BindCancel(nil)
		popts.Intercept = inj.Stage
		if rcache != nil {
			rcache.SetFaults(inj.Cache)
			defer rcache.SetFaults(nil)
		}
	}
	// Tracing: when the caller's context carries a span (a served request
	// or a -trace-out CLI run), wrap the whole battery in a "pipeline"
	// span and synthesize one "stage.<name>" child per executed stage from
	// its Timing — cache hit/miss and retry counts as attrs; injected
	// faults, recovered panics and retries as events. Observation never
	// shapes results, so this composes with the StageObserver hook.
	runSpan := obs.SpanFromContext(ctx).Child("pipeline")
	observer := c.opts.StageObserver
	if observer != nil || runSpan != nil {
		popts.Observe = func(tm pipeline.Timing) {
			if observer != nil {
				observer(StageTiming{Name: tm.Name, Duration: tm.Duration, CacheHit: tm.CacheHit,
					Err: tm.Err, Skipped: tm.Skipped, Retries: tm.Retries})
			}
			if runSpan == nil {
				return
			}
			sp := runSpan.ChildAt("stage."+tm.Name, tm.Start)
			sp.SetAttrBool("cache_hit", tm.CacheHit)
			sp.SetAttrInt("retries", tm.Retries)
			if tm.Retries > 0 {
				sp.AddEventAt("retry", tm.Start, "count", strconv.Itoa(tm.Retries))
			}
			if tm.Err != nil {
				sp.SetAttr("error", tm.Err.Error())
				if errors.Is(tm.Err, faults.ErrInjected) {
					sp.AddEventAt("fault.injected", tm.Start)
				}
				var pe *pipeline.StagePanicError
				if errors.As(tm.Err, &pe) {
					sp.AddEventAt("panic.recovered", tm.Start, "value", fmt.Sprint(pe.Value))
				}
			}
			sp.EndAt(tm.Start.Add(tm.Duration))
		}
	}
	timings, runErr := pipeline.RunContext(runCtx, stages, popts)
	if runSpan != nil {
		if runErr != nil && errors.Is(runErr, pipeline.ErrCanceled) {
			runSpan.AddEvent("canceled")
		}
		if runErr != nil {
			runSpan.SetAttr("error", runErr.Error())
		}
		runSpan.End()
	}
	if c.opts.Timings {
		for _, tm := range timings {
			// Deselected stages stay invisible; failed stages and
			// dependency/cancellation skips surface so a degraded report
			// can say exactly what is missing and why.
			if tm.Skipped && tm.Err == nil {
				continue
			}
			rep.Timings = append(rep.Timings, StageTiming{
				Name: tm.Name, Duration: tm.Duration, CacheHit: tm.CacheHit,
				Err: tm.Err, Skipped: tm.Skipped, Retries: tm.Retries,
			})
		}
	}
	if rcache != nil {
		cr := &CacheReport{Dir: rcache.Dir(), Evictions: rcache.Stats().Evictions}
		for i, tm := range timings {
			if stages[i].CacheKey == "" || tm.Skipped || tm.Err != nil {
				continue
			}
			if tm.CacheHit {
				cr.Hits = append(cr.Hits, tm.Name)
			} else {
				cr.Misses = append(cr.Misses, tm.Name)
			}
		}
		rep.Cache = cr
	}
	if runErr != nil {
		// Partial report: stages that completed keep their results, the
		// error (and Timings, when requested) says what failed. Callers that
		// want all-or-nothing keep their `if err != nil` guard; the serving
		// layer renders what survived.
		return rep, runErr
	}
	return rep, nil
}

// boolWord folds a flag into an options digest.
func boolWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// stageRequested reports whether a stage selection names stage explicitly.
func stageRequested(requested []string, stage string) bool {
	for _, name := range requested {
		if name == stage {
			return true
		}
	}
	return false
}

// filterStageSelection validates a user stage selection against the full
// vocabulary and drops names that are valid but not registered for this run
// (skipped by options or missing data). Requesting only unavailable stages
// is an error rather than a silently empty report.
func filterStageSelection(requested []string, stages []pipeline.Stage) ([]string, error) {
	if len(requested) == 0 {
		return nil, nil
	}
	known := make(map[string]bool, len(StageNames()))
	for _, name := range StageNames() {
		known[name] = true
	}
	registered := make(map[string]bool, len(stages))
	for _, s := range stages {
		registered[s.Name] = true
	}
	var only []string
	for _, name := range requested {
		if !known[name] {
			return nil, fmt.Errorf("core: unknown stage %q (known: %v)", name, StageNames())
		}
		if registered[name] {
			only = append(only, name)
		}
	}
	if len(only) == 0 {
		return nil, fmt.Errorf("core: none of the requested stages %v apply to this run", requested)
	}
	return only, nil
}

func (c *Characterizer) summarize(rep *Report, ds *twitter.Dataset, scc *graph.SCCResult, wcc *graph.WCCResult) {
	g := ds.Graph
	outDeg := g.OutDegrees()
	ds1 := graph.SummarizeDegrees(outDeg)
	maxNode := graph.ArgMax(outDeg)
	_, giant := scc.Largest()
	rep.Summary = DatasetSummary{
		Nodes:         g.NumNodes(),
		Edges:         g.NumEdges(),
		Density:       g.Density(),
		Isolated:      len(graph.IsolatedNodes(g)),
		AvgOutDegree:  ds1.Mean,
		MaxOutDegree:  ds1.Max,
		MaxOutNode:    maxNode,
		GiantSCCSize:  giant,
		GiantSCCShare: float64(giant) / float64(max(g.NumNodes(), 1)),
		NumSCCs:       scc.NumComponents(),
		NumWCCs:       wcc.NumComponents(),
		TotalVerified: ds.TotalVerified,
	}
}

// basic fills the §IV-A analysis. It is the only stage that writes
// rep.Basic, so no other stage can clobber it however the graph schedules.
func (c *Characterizer) basic(rep *Report, g *graph.Digraph, scc *graph.SCCResult) {
	ac := graph.AttractingComponents(g, scc)
	in := g.InDegrees()
	basic := BasicAnalysis{
		Clustering:           graph.AverageLocalClustering(g),
		Assortativity:        graph.DegreeAssortativityWithIn(g, in),
		AttractingComponents: len(ac),
	}
	// Representative attracting cores: highest in-degree members.
	type core struct{ node, indeg int }
	var cores []core
	for _, members := range ac {
		best := members[0]
		for _, v := range members {
			if in[v] > in[best] {
				best = v
			}
		}
		cores = append(cores, core{best, in[best]})
	}
	sort.Slice(cores, func(i, j int) bool { return cores[i].indeg > cores[j].indeg })
	for i := 0; i < len(cores) && i < 10; i++ {
		basic.AttractingCores = append(basic.AttractingCores, cores[i].node)
	}
	rep.Basic = basic
}

func (c *Characterizer) degreeAnalysis(rep *Report, g *graph.Digraph, rng *mathx.RNG) {
	outDeg := g.OutDegrees()
	rep.DegreeSeries = stats.DegreeFrequency(outDeg)
	fit, err := powerlaw.FitDiscrete(outDeg, nil)
	if err != nil {
		return
	}
	pa := &PowerLawAnalysis{Fit: fit, GoFP: nan()}
	if !c.opts.SkipBootstrap {
		pa.GoFP = fit.GoodnessOfFitWorkers(c.opts.BootstrapReps, rng, c.opts.Parallelism)
	}
	pa.Vuong = fit.CompareAll()
	rep.Degree = pa
}

func (c *Characterizer) eigenAnalysis(rep *Report, g *graph.Digraph, rng *mathx.RNG) {
	op := spectral.NewLaplacianOperator(g)
	evs, err := spectral.TopEigenvaluesLanczos(op, c.opts.EigenK, c.opts.EigenIters, rng)
	if err != nil || len(evs) == 0 {
		return
	}
	fit, err := powerlaw.FitContinuous(evs, nil)
	if err != nil {
		return
	}
	pa := &PowerLawAnalysis{Fit: fit, GoFP: nan()}
	if !c.opts.SkipBootstrap {
		pa.GoFP = fit.GoodnessOfFitWorkers(c.opts.BootstrapReps, rng, c.opts.Parallelism)
	}
	// Poisson does not apply to continuous eigenvalues; CompareAll
	// handles that by skipping it.
	pa.Vuong = fit.CompareAll()
	rep.Eigen = pa
}

func (c *Characterizer) bioAnalysis(rep *Report, ds *twitter.Dataset) {
	uni := text.NewCounter(1)
	big := text.NewCounter(2)
	tri := text.NewCounter(3)
	for _, bio := range ds.Bios() {
		toks := text.Tokenize(bio)
		uni.Add(toks)
		big.Add(toks)
		tri.Add(toks)
	}
	k := c.opts.TopNGrams
	ba := &BioAnalysis{
		TopUnigrams: uni.Top(2 * k),
		TopBigrams:  big.Top(k),
		TopTrigrams: tri.Top(k),
	}
	ba.Cloud = text.BuildCloud(ba.TopUnigrams)
	rep.Bios = ba
}

func (c *Characterizer) metricHistograms(rep *Report, ds *twitter.Dataset) {
	rep.MetricHists = make(map[string]*stats.Histogram, 4)
	for _, m := range []twitter.Metric{
		twitter.MetricFriends, twitter.MetricFollowers,
		twitter.MetricListed, twitter.MetricStatuses,
	} {
		rep.MetricHists[m.String()] = stats.NewLogHistogram(ds.MetricValues(m), 30)
	}
}

// centralityAnalysis builds the six Figure 5 panels.
func (c *Characterizer) centralityAnalysis(rep *Report, ds *twitter.Dataset, rng *mathx.RNG) {
	g := ds.Graph
	pr, err := centrality.PageRank(g, nil)
	if err != nil {
		return
	}
	followers := ds.MetricValues(twitter.MetricFollowers)
	listed := ds.MetricValues(twitter.MetricListed)
	statuses := ds.MetricValues(twitter.MetricStatuses)
	var bc []float64
	if !c.opts.SkipBetweenness {
		bc = centrality.ApproxBetweennessWorkers(g, c.opts.BetweennessSources, rng, c.opts.Parallelism)
	}
	panels := []struct {
		label string
		x, y  []float64
	}{
		{"list memberships vs betweenness", bc, listed},
		{"follower count vs betweenness", bc, followers},
		{"list memberships vs pagerank", pr, listed},
		{"follower count vs pagerank", pr, followers},
		{"follower count vs status count", statuses, followers},
		{"follower count vs list memberships", listed, followers},
	}
	for _, p := range panels {
		if p.x == nil {
			continue
		}
		pair := buildCentralityPair(p.label, p.x, p.y)
		if pair != nil {
			rep.Centrality = append(rep.Centrality, *pair)
		}
	}
}

// buildCentralityPair computes log-log correlations and the GAM spline for
// one panel, dropping non-positive points (as log-log plots must).
func buildCentralityPair(label string, x, y []float64) *CentralityPair {
	var lx, ly []float64
	for i := range x {
		if x[i] > 0 && y[i] > 0 {
			lx = append(lx, log10(x[i]))
			ly = append(ly, log10(y[i]))
		}
	}
	if len(lx) < 10 {
		return nil
	}
	pearson, err := stats.Pearson(lx, ly)
	if err != nil {
		return nil
	}
	spearman, _ := stats.Spearman(lx, ly)
	pair := &CentralityPair{
		Label:    label,
		Pearson:  pearson,
		Spearman: spearman,
		PValue:   stats.CorrelationTest(pearson, len(lx)),
		N:        len(lx),
	}
	if sp, err := stats.FitSpline(lx, ly, nil); err == nil {
		pair.Curve = sp.Curve(25)
	}
	return pair
}

func (c *Characterizer) activityAnalysis(rep *Report, activity *timeseries.DailySeries) {
	aa := &ActivityAnalysis{Series: activity, PortmanteauLag: 185}
	maxLag := 185
	if maxLag >= activity.Len() {
		maxLag = activity.Len() - 2
	}
	aa.PortmanteauLag = maxLag
	if lb, err := timeseries.LjungBox(activity.Values, maxLag); err == nil {
		aa.LjungBoxMaxP = timeseries.MaxPValue(lb)
	}
	if bp, err := timeseries.BoxPierce(activity.Values, maxLag); err == nil {
		aa.BoxPierceMaxP = timeseries.MaxPValue(bp)
	}
	if adf, err := timeseries.ADF(activity.Values, timeseries.RegConstantTrend, -1); err == nil {
		aa.ADF = adf
	}
	aa.Changepoints = timeseries.PenaltySweep(activity.Values, 10, 400, 12, 7, 6)
	aa.WeekdayMeans = activity.WeekdayMeans()
	weekday := (aa.WeekdayMeans[1] + aa.WeekdayMeans[2] + aa.WeekdayMeans[3] +
		aa.WeekdayMeans[4] + aa.WeekdayMeans[5]) / 5
	if weekday > 0 {
		aa.SundayWeekday = aa.WeekdayMeans[0] / weekday
	}
	rep.Activity = aa
}

func log10(v float64) float64 { return math.Log10(v) }

func nan() float64 { return math.NaN() }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
