// Package core implements the paper's contribution as a library: a
// characterization pipeline that runs the full battery of §IV network
// analyses and §V activity analyses over a verified-user dataset and
// produces a structured Report — dataset summary, degree and eigenvalue
// power-law inference with alternatives, reciprocity, distance distribution,
// bio n-gram tables, centrality correlations with GAM splines, and the
// portmanteau / ADF / PELT verdicts — plus renderers that print each table
// and figure in the paper's order, and a network-fingerprint comparator for
// the verified-vs-generic contrast.
package core

import (
	"errors"
	"math"
	"sort"

	"elites/internal/centrality"
	"elites/internal/graph"
	"elites/internal/mathx"
	"elites/internal/powerlaw"
	"elites/internal/spectral"
	"elites/internal/stats"
	"elites/internal/text"
	"elites/internal/timeseries"
	"elites/internal/twitter"
)

// ErrNoData is returned when the dataset has no graph.
var ErrNoData = errors.New("core: dataset has no graph")

// Options tunes the pipeline's sampled analyses. The zero value picks
// defaults scaled to graphs of tens of thousands of nodes.
type Options struct {
	// DistanceSources is the number of BFS sources for the distance
	// distribution (0 = 200; exact when >= number of nodes).
	DistanceSources int
	// BetweennessSources is the number of Brandes sources (0 = 256).
	BetweennessSources int
	// EigenK is how many top Laplacian eigenvalues to fit (0 = 150).
	EigenK int
	// EigenIters is the Lanczos Krylov dimension (0 = 3·EigenK).
	EigenIters int
	// BootstrapReps is the CSN goodness-of-fit replicate count (0 = 50).
	BootstrapReps int
	// TopNGrams is the table length for bios (0 = 15, the paper's).
	TopNGrams int
	// Seed drives all sampling.
	Seed uint64
	// SkipEigen skips the Laplacian eigenvalue analysis.
	SkipEigen bool
	// SkipBetweenness skips betweenness (the slowest analysis).
	SkipBetweenness bool
	// SkipBootstrap skips goodness-of-fit bootstraps.
	SkipBootstrap bool
	// SkipCategories skips the per-archetype table and the §IV-C
	// mutual-core validation.
	SkipCategories bool
}

func (o Options) withDefaults() Options {
	if o.DistanceSources == 0 {
		o.DistanceSources = 200
	}
	if o.BetweennessSources == 0 {
		o.BetweennessSources = 256
	}
	if o.EigenK == 0 {
		o.EigenK = 150
	}
	if o.EigenIters == 0 {
		o.EigenIters = 3 * o.EigenK
	}
	if o.BootstrapReps == 0 {
		o.BootstrapReps = 50
	}
	if o.TopNGrams == 0 {
		o.TopNGrams = 15
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// DatasetSummary mirrors the paper's §III table.
type DatasetSummary struct {
	Nodes         int
	Edges         int64
	Density       float64
	Isolated      int
	AvgOutDegree  float64
	MaxOutDegree  int
	MaxOutNode    int
	GiantSCCSize  int
	GiantSCCShare float64
	NumSCCs       int
	NumWCCs       int
	TotalVerified int
}

// BasicAnalysis mirrors §IV-A.
type BasicAnalysis struct {
	Clustering           float64
	Assortativity        float64
	AttractingComponents int
	// AttractingCores lists, for up to 10 largest attracting components,
	// a representative member (high in-degree "celebrity" nodes).
	AttractingCores []int
}

// PowerLawAnalysis mirrors §IV-B for one distribution.
type PowerLawAnalysis struct {
	Fit   *powerlaw.Fit
	GoFP  float64 // bootstrap p-value; NaN if skipped
	Vuong []*powerlaw.VuongResult
}

// CentralityPair is one Figure 5 panel: a correlation between an influence
// measure and a network-centrality (or metric) score, with its spline.
type CentralityPair struct {
	Label    string
	Pearson  float64 // on log-log scale
	Spearman float64
	PValue   float64 // Pearson t-test p-value
	Curve    []stats.CurvePoint
	N        int
}

// BioAnalysis mirrors §IV-E.
type BioAnalysis struct {
	TopUnigrams []text.NGram
	TopBigrams  []text.NGram
	TopTrigrams []text.NGram
	Cloud       []text.CloudEntry
}

// ActivityAnalysis mirrors §V.
type ActivityAnalysis struct {
	Series         *timeseries.DailySeries
	LjungBoxMaxP   float64
	BoxPierceMaxP  float64
	ADF            *timeseries.ADFResult
	Changepoints   []timeseries.SweepCandidate
	WeekdayMeans   [7]float64
	SundayWeekday  float64 // Sunday mean / weekday mean
	PortmanteauLag int
}

// Report bundles every analysis output.
type Report struct {
	Summary      DatasetSummary
	Basic        BasicAnalysis
	Degree       *PowerLawAnalysis
	Eigen        *PowerLawAnalysis
	Reciprocity  float64
	Distances    *graph.DistanceDistribution
	Bios         *BioAnalysis
	Centrality   []CentralityPair
	Activity     *ActivityAnalysis
	MetricHists  map[string]*stats.Histogram // Figure 1 panels
	DegreeSeries []stats.CCDFPoint           // Figure 2 series
	// Categories is the per-archetype table (user categorization).
	Categories *CategoryAnalysis
	// MutualCore validates the §IV-C core-reciprocity conjecture.
	MutualCore *MutualCoreAnalysis
}

// Characterizer runs the pipeline.
type Characterizer struct {
	opts Options
}

// NewCharacterizer builds a pipeline with the given options.
func NewCharacterizer(opts Options) *Characterizer {
	return &Characterizer{opts: opts.withDefaults()}
}

// Run characterizes a dataset. activity may be nil (skips §V).
func (c *Characterizer) Run(ds *twitter.Dataset, activity *timeseries.DailySeries) (*Report, error) {
	if ds == nil || ds.Graph == nil {
		return nil, ErrNoData
	}
	g := ds.Graph
	rng := mathx.NewRNG(c.opts.Seed)
	rep := &Report{}

	c.summarize(rep, ds)
	c.basic(rep, g)
	c.degreeAnalysis(rep, g, rng)
	if !c.opts.SkipEigen {
		c.eigenAnalysis(rep, g, rng)
	}
	rep.Reciprocity = graph.Reciprocity(g)
	rep.Distances = graph.SampledDistances(g, c.opts.DistanceSources, rng)
	if len(ds.Profiles) > 0 {
		c.bioAnalysis(rep, ds)
		c.metricHistograms(rep, ds)
		c.centralityAnalysis(rep, ds, rng)
		if !c.opts.SkipCategories {
			if ca, err := AnalyzeCategories(ds); err == nil {
				rep.Categories = ca
			}
		}
	}
	if !c.opts.SkipCategories {
		rep.MutualCore = AnalyzeMutualCore(g)
	}
	if activity != nil {
		c.activityAnalysis(rep, activity)
	}
	return rep, nil
}

func (c *Characterizer) summarize(rep *Report, ds *twitter.Dataset) {
	g := ds.Graph
	outDeg := g.OutDegrees()
	ds1 := graph.SummarizeDegrees(outDeg)
	maxNode := graph.ArgMax(outDeg)
	scc := graph.StronglyConnectedComponents(g)
	_, giant := scc.Largest()
	wcc := graph.WeaklyConnectedComponents(g)
	rep.Summary = DatasetSummary{
		Nodes:         g.NumNodes(),
		Edges:         g.NumEdges(),
		Density:       g.Density(),
		Isolated:      len(graph.IsolatedNodes(g)),
		AvgOutDegree:  ds1.Mean,
		MaxOutDegree:  ds1.Max,
		MaxOutNode:    maxNode,
		GiantSCCSize:  giant,
		GiantSCCShare: float64(giant) / float64(max(g.NumNodes(), 1)),
		NumSCCs:       scc.NumComponents(),
		NumWCCs:       wcc.NumComponents(),
		TotalVerified: ds.TotalVerified,
	}
	rep.Basic.AttractingComponents = len(graph.AttractingComponents(g, scc))
	// Representative attracting cores: highest in-degree members.
	ac := graph.AttractingComponents(g, scc)
	in := g.InDegrees()
	type core struct{ node, indeg int }
	var cores []core
	for _, members := range ac {
		best := members[0]
		for _, v := range members {
			if in[v] > in[best] {
				best = v
			}
		}
		cores = append(cores, core{best, in[best]})
	}
	sort.Slice(cores, func(i, j int) bool { return cores[i].indeg > cores[j].indeg })
	for i := 0; i < len(cores) && i < 10; i++ {
		rep.Basic.AttractingCores = append(rep.Basic.AttractingCores, cores[i].node)
	}
}

func (c *Characterizer) basic(rep *Report, g *graph.Digraph) {
	rep.Basic.Clustering = graph.AverageLocalClustering(g)
	rep.Basic.Assortativity = graph.DegreeAssortativity(g)
}

func (c *Characterizer) degreeAnalysis(rep *Report, g *graph.Digraph, rng *mathx.RNG) {
	outDeg := g.OutDegrees()
	rep.DegreeSeries = stats.DegreeFrequency(outDeg)
	fit, err := powerlaw.FitDiscrete(outDeg, nil)
	if err != nil {
		return
	}
	pa := &PowerLawAnalysis{Fit: fit, GoFP: nan()}
	if !c.opts.SkipBootstrap {
		pa.GoFP = fit.GoodnessOfFit(c.opts.BootstrapReps, rng)
	}
	pa.Vuong = fit.CompareAll()
	rep.Degree = pa
}

func (c *Characterizer) eigenAnalysis(rep *Report, g *graph.Digraph, rng *mathx.RNG) {
	op := spectral.NewLaplacianOperator(g)
	evs, err := spectral.TopEigenvaluesLanczos(op, c.opts.EigenK, c.opts.EigenIters, rng)
	if err != nil || len(evs) == 0 {
		return
	}
	fit, err := powerlaw.FitContinuous(evs, nil)
	if err != nil {
		return
	}
	pa := &PowerLawAnalysis{Fit: fit, GoFP: nan()}
	if !c.opts.SkipBootstrap {
		pa.GoFP = fit.GoodnessOfFit(c.opts.BootstrapReps, rng)
	}
	// Poisson does not apply to continuous eigenvalues; CompareAll
	// handles that by skipping it.
	pa.Vuong = fit.CompareAll()
	rep.Eigen = pa
}

func (c *Characterizer) bioAnalysis(rep *Report, ds *twitter.Dataset) {
	uni := text.NewCounter(1)
	big := text.NewCounter(2)
	tri := text.NewCounter(3)
	for _, bio := range ds.Bios() {
		toks := text.Tokenize(bio)
		uni.Add(toks)
		big.Add(toks)
		tri.Add(toks)
	}
	k := c.opts.TopNGrams
	ba := &BioAnalysis{
		TopUnigrams: uni.Top(2 * k),
		TopBigrams:  big.Top(k),
		TopTrigrams: tri.Top(k),
	}
	ba.Cloud = text.BuildCloud(ba.TopUnigrams)
	rep.Bios = ba
}

func (c *Characterizer) metricHistograms(rep *Report, ds *twitter.Dataset) {
	rep.MetricHists = make(map[string]*stats.Histogram, 4)
	for _, m := range []twitter.Metric{
		twitter.MetricFriends, twitter.MetricFollowers,
		twitter.MetricListed, twitter.MetricStatuses,
	} {
		rep.MetricHists[m.String()] = stats.NewLogHistogram(ds.MetricValues(m), 30)
	}
}

// centralityAnalysis builds the six Figure 5 panels.
func (c *Characterizer) centralityAnalysis(rep *Report, ds *twitter.Dataset, rng *mathx.RNG) {
	g := ds.Graph
	pr, err := centrality.PageRank(g, nil)
	if err != nil {
		return
	}
	followers := ds.MetricValues(twitter.MetricFollowers)
	listed := ds.MetricValues(twitter.MetricListed)
	statuses := ds.MetricValues(twitter.MetricStatuses)
	var bc []float64
	if !c.opts.SkipBetweenness {
		bc = centrality.ApproxBetweenness(g, c.opts.BetweennessSources, rng)
	}
	panels := []struct {
		label string
		x, y  []float64
	}{
		{"list memberships vs betweenness", bc, listed},
		{"follower count vs betweenness", bc, followers},
		{"list memberships vs pagerank", pr, listed},
		{"follower count vs pagerank", pr, followers},
		{"follower count vs status count", statuses, followers},
		{"follower count vs list memberships", listed, followers},
	}
	for _, p := range panels {
		if p.x == nil {
			continue
		}
		pair := buildCentralityPair(p.label, p.x, p.y)
		if pair != nil {
			rep.Centrality = append(rep.Centrality, *pair)
		}
	}
}

// buildCentralityPair computes log-log correlations and the GAM spline for
// one panel, dropping non-positive points (as log-log plots must).
func buildCentralityPair(label string, x, y []float64) *CentralityPair {
	var lx, ly []float64
	for i := range x {
		if x[i] > 0 && y[i] > 0 {
			lx = append(lx, log10(x[i]))
			ly = append(ly, log10(y[i]))
		}
	}
	if len(lx) < 10 {
		return nil
	}
	pearson, err := stats.Pearson(lx, ly)
	if err != nil {
		return nil
	}
	spearman, _ := stats.Spearman(lx, ly)
	pair := &CentralityPair{
		Label:    label,
		Pearson:  pearson,
		Spearman: spearman,
		PValue:   stats.CorrelationTest(pearson, len(lx)),
		N:        len(lx),
	}
	if sp, err := stats.FitSpline(lx, ly, nil); err == nil {
		pair.Curve = sp.Curve(25)
	}
	return pair
}

func (c *Characterizer) activityAnalysis(rep *Report, activity *timeseries.DailySeries) {
	aa := &ActivityAnalysis{Series: activity, PortmanteauLag: 185}
	maxLag := 185
	if maxLag >= activity.Len() {
		maxLag = activity.Len() - 2
	}
	aa.PortmanteauLag = maxLag
	if lb, err := timeseries.LjungBox(activity.Values, maxLag); err == nil {
		aa.LjungBoxMaxP = timeseries.MaxPValue(lb)
	}
	if bp, err := timeseries.BoxPierce(activity.Values, maxLag); err == nil {
		aa.BoxPierceMaxP = timeseries.MaxPValue(bp)
	}
	if adf, err := timeseries.ADF(activity.Values, timeseries.RegConstantTrend, -1); err == nil {
		aa.ADF = adf
	}
	aa.Changepoints = timeseries.PenaltySweep(activity.Values, 10, 400, 12, 7, 6)
	aa.WeekdayMeans = activity.WeekdayMeans()
	weekday := (aa.WeekdayMeans[1] + aa.WeekdayMeans[2] + aa.WeekdayMeans[3] +
		aa.WeekdayMeans[4] + aa.WeekdayMeans[5]) / 5
	if weekday > 0 {
		aa.SundayWeekday = aa.WeekdayMeans[0] / weekday
	}
	rep.Activity = aa
}

func log10(v float64) float64 { return math.Log10(v) }

func nan() float64 { return math.NaN() }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
