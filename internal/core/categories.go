package core

import (
	"fmt"
	"io"
	"sort"

	"elites/internal/centrality"
	"elites/internal/graph"
	"elites/internal/text"
	"elites/internal/twitter"
)

// CategoryStat summarizes one verified-user archetype — the "User
// Categorization" axis the paper indexes under. It quantifies which
// occupations dominate the verified population (journalism, per §IV-E),
// who commands the audience, and how topically closed each group's follow
// structure is (TwitterRank-style affinity).
type CategoryStat struct {
	Category twitter.Category
	Count    int
	Share    float64
	// MeanFollowers / MeanListed are audience averages.
	MeanFollowers float64
	MeanListed    float64
	// PageRankShare is the fraction of global PageRank mass held by the
	// category.
	PageRankShare float64
	// Affinity is the topic-sensitive PageRank self-mass: how much of the
	// category-personalized rank stays within the category.
	Affinity float64
	// DistinctiveTerms are the bio terms most characteristic of the
	// category (tf·idf over categories).
	DistinctiveTerms []text.DistinctiveTerm
}

// CategoryAnalysis holds per-archetype statistics, sorted by Count.
type CategoryAnalysis struct {
	Stats []CategoryStat
}

// AnalyzeCategories computes the per-category table for a dataset.
func AnalyzeCategories(ds *twitter.Dataset) (*CategoryAnalysis, error) {
	if ds == nil || ds.Graph == nil || len(ds.Profiles) == 0 {
		return nil, ErrNoData
	}
	g := ds.Graph
	pr, err := centrality.PageRank(g, nil)
	if err != nil {
		return nil, err
	}
	// Topic labels = categories.
	nTopics := 0
	topicOf := make([]int, len(ds.Profiles))
	for i, p := range ds.Profiles {
		topicOf[i] = int(p.Category)
		if int(p.Category)+1 > nTopics {
			nTopics = int(p.Category) + 1
		}
	}
	tr, err := centrality.TopicSensitivePageRank(g, topicOf, nTopics, nil)
	if err != nil {
		return nil, err
	}
	// Distinctive bio terms per category.
	groups := make(map[string][]string)
	for _, p := range ds.Profiles {
		groups[p.Category.String()] = append(groups[p.Category.String()], p.Bio)
	}
	distinct := text.DistinctiveTerms(groups, 5)

	type acc struct {
		count             int
		followers, listed float64
		prMass            float64
	}
	accs := make(map[twitter.Category]*acc)
	for i, p := range ds.Profiles {
		a := accs[p.Category]
		if a == nil {
			a = &acc{}
			accs[p.Category] = a
		}
		a.count++
		a.followers += float64(p.Followers)
		a.listed += float64(p.Listed)
		a.prMass += pr[i]
	}
	out := &CategoryAnalysis{}
	for cat, a := range accs {
		cs := CategoryStat{
			Category:         cat,
			Count:            a.count,
			Share:            float64(a.count) / float64(len(ds.Profiles)),
			MeanFollowers:    a.followers / float64(a.count),
			MeanListed:       a.listed / float64(a.count),
			PageRankShare:    a.prMass,
			Affinity:         tr.TopicAffinity(int(cat), topicOf),
			DistinctiveTerms: distinct[cat.String()],
		}
		out.Stats = append(out.Stats, cs)
	}
	// Stats are collected in map order; break count ties by category id so
	// the table is a pure function of the dataset (the determinism contract
	// extends to rendered bytes — warm cache runs and CI byte-compare them).
	sort.Slice(out.Stats, func(i, j int) bool {
		if out.Stats[i].Count != out.Stats[j].Count {
			return out.Stats[i].Count > out.Stats[j].Count
		}
		return out.Stats[i].Category < out.Stats[j].Category
	})
	return out, nil
}

// Render writes the category table.
func (c *CategoryAnalysis) Render(w io.Writer) {
	fmt.Fprintf(w, "%-14s %7s %7s %13s %10s %9s  %s\n",
		"category", "count", "share", "mean-followers", "pr-share", "affinity", "distinctive terms")
	for _, s := range c.Stats {
		terms := ""
		for i, t := range s.DistinctiveTerms {
			if i >= 3 {
				break
			}
			if i > 0 {
				terms += ", "
			}
			terms += t.Term
		}
		fmt.Fprintf(w, "%-14s %7d %6.1f%% %13.0f %9.3f %9.3f  %s\n",
			s.Category, s.Count, 100*s.Share, s.MeanFollowers,
			s.PageRankShare, s.Affinity, terms)
	}
}

// MutualCoreAnalysis is the §IV-C conjecture validation the paper leaves to
// future work: reciprocity inside versus outside the network's dense core.
type MutualCoreAnalysis struct {
	// CoreK is the core-number threshold used (half the degeneracy).
	CoreK int
	// Degeneracy is the maximum core number.
	Degeneracy int
	// CoreNodes is the number of nodes at or above CoreK.
	CoreNodes int
	// CoreReciprocity / PeripheryReciprocity split edge reciprocity by
	// whether both endpoints sit in the core.
	CoreReciprocity      float64
	PeripheryReciprocity float64
	// RichClub is the normalized rich-club curve; values > 1 at high k
	// mean the elite interconnects preferentially.
	RichClub []graph.RichClubPoint
	// MutualEdgeShare is the fraction of edges that are reciprocated
	// (equals Reciprocity; kept for the report).
	MutualEdgeShare float64
}

// AnalyzeMutualCore validates the §IV-C conjecture on a graph.
func AnalyzeMutualCore(g *graph.Digraph) *MutualCoreAnalysis {
	cores := graph.KCores(g)
	k := cores.MaxCore / 2
	if k < 1 {
		k = 1
	}
	coreR, perR := graph.CoreReciprocity(g, cores, k)
	coreNodes := 0
	for _, c := range cores.Core {
		if c >= k {
			coreNodes++
		}
	}
	return &MutualCoreAnalysis{
		CoreK:                k,
		Degeneracy:           cores.MaxCore,
		CoreNodes:            coreNodes,
		CoreReciprocity:      coreR,
		PeripheryReciprocity: perR,
		RichClub:             graph.RichClub(g, 10),
		MutualEdgeShare:      graph.Reciprocity(g),
	}
}

// ConjectureHolds reports whether core edges reciprocate more than
// periphery edges — the paper's §IV-C assertion.
func (m *MutualCoreAnalysis) ConjectureHolds() bool {
	return m.CoreReciprocity > m.PeripheryReciprocity
}

// Render writes the §IV-C validation summary.
func (m *MutualCoreAnalysis) Render(w io.Writer) {
	fmt.Fprintf(w, "degeneracy (max core):      %d\n", m.Degeneracy)
	fmt.Fprintf(w, "core threshold k:           %d (%d nodes)\n", m.CoreK, m.CoreNodes)
	fmt.Fprintf(w, "core-edge reciprocity:      %.3f\n", m.CoreReciprocity)
	fmt.Fprintf(w, "periphery-edge reciprocity: %.3f\n", m.PeripheryReciprocity)
	fmt.Fprintf(w, "conjecture (core > periphery): %v\n", m.ConjectureHolds())
	if len(m.RichClub) > 0 {
		fmt.Fprintf(w, "rich-club φ_norm by degree threshold:\n")
		for _, p := range m.RichClub {
			fmt.Fprintf(w, "  k>%-6d n=%-7d φ=%.4f  φ/φ_rand=%.2f\n", p.K, p.N, p.Phi, p.PhiNorm)
		}
	}
}
