package core

import (
	"fmt"
	"io"
	"math"

	"elites/internal/graph"
	"elites/internal/mathx"
	"elites/internal/powerlaw"
)

// Fingerprint is the compact structural signature the paper's conclusion
// proposes as a discriminator between verified-like and generic networks:
// "the above-mentioned deviations likely constitute a unique fingerprint for
// verified users".
type Fingerprint struct {
	Reciprocity    float64
	Clustering     float64
	Assortativity  float64
	GiantSCCShare  float64
	MeanDistance   float64
	PowerLawAlpha  float64 // NaN when no plausible power-law tail
	PowerLawGoF    float64 // bootstrap p; NaN when skipped
	IsolatedShare  float64
	AttractingRate float64 // attracting components per node
}

// ComputeFingerprint measures the signature of a graph. bootstrapReps <= 0
// skips the goodness-of-fit bootstrap (PowerLawGoF = NaN).
func ComputeFingerprint(g *graph.Digraph, bootstrapReps int, rng *mathx.RNG) Fingerprint {
	fp := Fingerprint{
		Reciprocity:   graph.Reciprocity(g),
		Clustering:    graph.AverageLocalClustering(g),
		Assortativity: graph.DegreeAssortativity(g),
		PowerLawAlpha: math.NaN(),
		PowerLawGoF:   math.NaN(),
	}
	n := g.NumNodes()
	if n == 0 {
		return fp
	}
	scc := graph.StronglyConnectedComponents(g)
	_, giant := scc.Largest()
	fp.GiantSCCShare = float64(giant) / float64(n)
	fp.IsolatedShare = float64(len(graph.IsolatedNodes(g))) / float64(n)
	fp.AttractingRate = float64(len(graph.AttractingComponents(g, scc))) / float64(n)
	sources := 150
	if sources > n {
		sources = n
	}
	fp.MeanDistance = graph.SampledDistances(g, sources, rng).Mean()
	if fit, err := powerlaw.FitDiscrete(g.OutDegrees(), nil); err == nil {
		fp.PowerLawAlpha = fit.Alpha
		if bootstrapReps > 0 {
			fp.PowerLawGoF = fit.GoodnessOfFit(bootstrapReps, rng)
		}
	}
	return fp
}

// PaperVerifiedFingerprint is the fingerprint the paper measured on the real
// English verified network (231,246 nodes).
func PaperVerifiedFingerprint() Fingerprint {
	return Fingerprint{
		Reciprocity:    0.337,
		Clustering:     0.1583,
		Assortativity:  -0.04,
		GiantSCCShare:  0.9724,
		MeanDistance:   2.74,
		PowerLawAlpha:  3.24,
		PowerLawGoF:    0.13,
		IsolatedShare:  6027.0 / 231246.0,
		AttractingRate: 6091.0 / 231246.0,
	}
}

// VerifiedLikeness scores how closely a fingerprint matches the paper's
// verified signature, in [0, 1]: the mean of per-dimension band scores
// (1 inside the verified band, decaying linearly outside). It is the simple
// discriminator the conclusion sketches ("evaluate the strength of an
// unverified user's case") applied at network granularity.
func (f Fingerprint) VerifiedLikeness() float64 {
	type band struct {
		v, lo, hi, slack float64
	}
	bands := []band{
		{f.Reciprocity, 0.28, 0.40, 0.12},    // well above Twitter's 0.221
		{f.Clustering, 0.08, 0.25, 0.10},     // low but present
		{f.Assortativity, -0.12, 0.00, 0.10}, // slight dissortativity
		{f.GiantSCCShare, 0.93, 0.995, 0.05}, // giant SCC ≈ 97%
		{f.MeanDistance, 2.2, 3.2, 0.8},      // short paths
		{f.PowerLawAlpha, 2.8, 3.7, 0.5},     // tail exponent ≈ 3.24
	}
	score := 0.0
	count := 0.0
	for _, b := range bands {
		if math.IsNaN(b.v) {
			// A missing power-law tail is itself evidence against
			// verified-likeness.
			count++
			continue
		}
		count++
		switch {
		case b.v >= b.lo && b.v <= b.hi:
			score++
		case b.v < b.lo:
			score += math.Max(0, 1-(b.lo-b.v)/b.slack)
		default:
			score += math.Max(0, 1-(b.v-b.hi)/b.slack)
		}
	}
	if count == 0 {
		return 0
	}
	return score / count
}

// CompareFingerprints renders a side-by-side table of two fingerprints with
// the paper's reference values — the verified-vs-generic contrast table.
func CompareFingerprints(w io.Writer, names [2]string, fps [2]Fingerprint) {
	paper := PaperVerifiedFingerprint()
	fmt.Fprintf(w, "%-24s %14s %14s %16s\n", "metric", names[0], names[1], "paper (verified)")
	row := func(name string, a, b, p float64, format string) {
		fmt.Fprintf(w, "%-24s "+format+" "+format+" "+format+"\n", name,
			a, b, p)
	}
	row("reciprocity", fps[0].Reciprocity, fps[1].Reciprocity, paper.Reciprocity, "%14.3f")
	row("clustering", fps[0].Clustering, fps[1].Clustering, paper.Clustering, "%14.4f")
	row("assortativity", fps[0].Assortativity, fps[1].Assortativity, paper.Assortativity, "%14.3f")
	row("giant SCC share", fps[0].GiantSCCShare, fps[1].GiantSCCShare, paper.GiantSCCShare, "%14.4f")
	row("mean distance", fps[0].MeanDistance, fps[1].MeanDistance, paper.MeanDistance, "%14.2f")
	row("power-law alpha", fps[0].PowerLawAlpha, fps[1].PowerLawAlpha, paper.PowerLawAlpha, "%14.3f")
	row("power-law GoF p", fps[0].PowerLawGoF, fps[1].PowerLawGoF, paper.PowerLawGoF, "%14.3f")
	row("isolated share", fps[0].IsolatedShare, fps[1].IsolatedShare, paper.IsolatedShare, "%14.4f")
	row("attracting / node", fps[0].AttractingRate, fps[1].AttractingRate, paper.AttractingRate, "%14.4f")
	fmt.Fprintf(w, "%-24s %14.3f %14.3f %16s\n", "verified-likeness",
		fps[0].VerifiedLikeness(), fps[1].VerifiedLikeness(), "1.000 (by def.)")
}
