package centrality

import (
	"strconv"
	"sync"

	"elites/internal/graph"
	"elites/internal/mathx"
	"elites/internal/parallel"
)

// maxBetweennessPartials bounds how many partial score vectors a parallel
// Brandes run materializes. Sources are split into at most this many
// fixed-layout chunks — a function of the source count only, never of the
// worker count — and the per-chunk vectors are summed in chunk order, so
// floating-point results are bit-identical at every parallelism level while
// memory stays at O(partials · n) rather than O(sources · n).
const maxBetweennessPartials = 64

// betweennessWorkspace holds the per-source scratch of Brandes' algorithm so
// parallel workers do not allocate per BFS.
type betweennessWorkspace struct {
	dist  []int32
	sigma []float64
	delta []float64
	order []int32   // nodes in BFS visit order
	preds [][]int32 // predecessor lists
}

func newBetweennessWorkspace(n int) *betweennessWorkspace {
	return &betweennessWorkspace{
		dist:  make([]int32, n),
		sigma: make([]float64, n),
		delta: make([]float64, n),
		order: make([]int32, 0, n),
		preds: make([][]int32, n),
	}
}

// accumulate runs a single Brandes source iteration, adding partial
// dependencies into bc.
func (w *betweennessWorkspace) accumulate(g *graph.Digraph, s int, bc []float64) {
	n := g.NumNodes()
	for i := 0; i < n; i++ {
		w.dist[i] = -1
		w.sigma[i] = 0
		w.delta[i] = 0
		w.preds[i] = w.preds[i][:0]
	}
	w.order = w.order[:0]
	w.dist[s] = 0
	w.sigma[s] = 1
	queue := append(w.order, int32(s)) // reuse backing array as queue
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := w.dist[u]
		for _, v := range g.OutNeighbors(int(u)) {
			if w.dist[v] < 0 {
				w.dist[v] = du + 1
				queue = append(queue, v)
			}
			if w.dist[v] == du+1 {
				w.sigma[v] += w.sigma[u]
				w.preds[v] = append(w.preds[v], u)
			}
		}
	}
	w.order = queue
	// Dependency accumulation in reverse BFS order.
	for i := len(w.order) - 1; i >= 0; i-- {
		v := w.order[i]
		coef := (1 + w.delta[v]) / w.sigma[v]
		for _, u := range w.preds[v] {
			w.delta[u] += w.sigma[u] * coef
		}
		if int(v) != s {
			bc[v] += w.delta[v]
		}
	}
}

// Betweenness computes exact betweenness centrality for all nodes with
// Brandes' algorithm, parallelized over sources on the shared worker pool.
// Directed; scores are raw dependency sums (no normalization), matching
// networkx's betweenness_centrality(normalized=False).
func Betweenness(g *graph.Digraph) []float64 {
	return BetweennessWorkers(g, 0)
}

// BetweennessWorkers is Betweenness with an explicit worker budget
// (<= 0 means GOMAXPROCS). Results are bit-identical at every budget.
func BetweennessWorkers(g *graph.Digraph, workers int) []float64 {
	n := g.NumNodes()
	sources := make([]int, n)
	for i := range sources {
		sources[i] = i
	}
	return betweennessFrom(g, sources, 1, workers)
}

// ApproxBetweenness estimates betweenness from k uniformly sampled sources,
// scaled by n/k so that values are comparable to the exact ones (Brandes &
// Pich source sampling). Sampling error concentrates on low-betweenness
// nodes; the paper's Figure 5 uses ranks of high-betweenness nodes, which
// stabilize quickly (see BenchmarkAblationBetweennessSampling). Note that
// rng is used only as a key for derived streams and is never advanced:
// calling twice with the same generator samples the same source set. For an
// independent resample, pass a different generator (or Split).
func ApproxBetweenness(g *graph.Digraph, k int, rng *mathx.RNG) []float64 {
	return ApproxBetweennessWorkers(g, k, rng, 0)
}

// ApproxBetweennessWorkers is ApproxBetweenness with an explicit worker
// budget (<= 0 means GOMAXPROCS). Each sampling draw comes from its own
// stream derived from rng (which is not advanced), so the sampled source set
// is a pure function of the rng state and k — independent of scheduling,
// worker count, and any other use of rng.
func ApproxBetweennessWorkers(g *graph.Digraph, k int, rng *mathx.RNG, workers int) []float64 {
	n := g.NumNodes()
	if k >= n {
		return BetweennessWorkers(g, workers)
	}
	return betweennessFrom(g, sampleSources(n, k, rng), float64(n)/float64(k), workers)
}

// sampleSources draws k distinct sources from [0, n) by a partial
// Fisher–Yates shuffle whose j-th swap index comes from the derived stream
// "source/j". Derive does not advance rng, so the sample commutes with every
// other consumer of the generator and with scheduling order.
func sampleSources(n, k int, rng *mathx.RNG) []int {
	pool := make([]int, n)
	for i := range pool {
		pool[i] = i
	}
	for j := 0; j < k; j++ {
		r := rng.Derive("source/" + strconv.Itoa(j))
		i := j + r.Intn(n-j)
		pool[j], pool[i] = pool[i], pool[j]
	}
	return pool[:k]
}

// betweennessFrom runs Brandes over the given sources, sharded into
// fixed-layout chunks (at most maxBetweennessPartials of them) on the shared
// worker pool. Each chunk accumulates its sources — in source order — into a
// private partial vector; partials are then summed in chunk order, so the
// result is bit-identical whatever the worker budget or schedule.
func betweennessFrom(g *graph.Digraph, sources []int, scale float64, workers int) []float64 {
	n := g.NumNodes()
	bc := make([]float64, n)
	if len(sources) == 0 {
		return bc
	}
	width := (len(sources) + maxBetweennessPartials - 1) / maxBetweennessPartials
	pool := sync.Pool{New: func() any { return newBetweennessWorkspace(n) }}
	partials := parallel.ChunkReduce(len(sources), width, workers, func(lo, hi int) []float64 {
		ws := pool.Get().(*betweennessWorkspace)
		part := make([]float64, n)
		for _, s := range sources[lo:hi] {
			ws.accumulate(g, s, part)
		}
		pool.Put(ws)
		return part
	})
	for _, p := range partials {
		for i, v := range p {
			bc[i] += v
		}
	}
	if scale != 1 {
		for i := range bc {
			bc[i] *= scale
		}
	}
	return bc
}
