package centrality

import (
	"strconv"
	"sync"

	"elites/internal/graph"
	"elites/internal/mathx"
	"elites/internal/parallel"
)

// Brandes betweenness kernel.
//
// # Numeric contract
//
// The kernel is predecessor-list-free in the classic sense: no per-node
// slice-of-slices is kept. A per-source level-synchronous BFS records the
// discovery order into one flat, level-bucketed `order` array, and the
// shortest-path DAG's in-edges are captured as flat runs in one reused
// buffer as the traversal finds them (no pointer-chasing, no per-BFS
// re-append of 2·n slice headers). The floating-point semantics are pinned
// so that scores are bit-identical to the classic predecessor-list
// formulation (the test-only reference in reference_test.go) at every
// worker budget:
//
//   - sigma values are shortest-path counts — exact integers in float64, so
//     their accumulation order never matters while counts stay below 2^53
//     (true by an enormous margin on the paper's graphs; beyond it both this
//     kernel and the reference degrade identically in spirit but not
//     necessarily in the last ulp).
//   - delta accumulation order is pinned by the BFS discovery order: the
//     dependency pass walks `order` backwards (levels deepest-first, reverse
//     discovery order within a level), and each node v pushes
//     sigma[u]·(1+delta[v])/sigma[v] to its DAG in-neighbors u.
//     Contributions to a fixed delta[u] slot therefore arrive in reverse
//     discovery order of u's DAG successors — exactly the order the
//     predecessor-list formulation produces — and the iteration order of
//     u within one v is immaterial (distinct delta slots).
//   - each source chunk accumulates its sources in source order into a
//     private partial vector; partials are folded element-wise in chunk
//     order (parallel.BlockedSumInto), bit-identical to a serial left fold.
//
// # Cache-conscious layout
//
// All per-node BFS state lives in one 32-byte struct (nodeState: sigma,
// delta, dist, discovery position, flat-predecessor run) so that every
// random probe of a node — the discovery check in a top-down step, the
// sigma pull in a bottom-up step, the delta push in the dependency pass —
// touches a single cache line instead of up to four parallel arrays.
//
// # Direction-optimizing BFS
//
// Each level expands either top-down (scan frontier out-edges, the classic
// way) or bottom-up (scan the in-edges of still-unreached nodes, Beamer
// style): when the frontier's out-edge count dwarfs the in-edges of the
// unreached remainder, most top-down probes would hit already-visited nodes
// and the sweep is cheaper. The switch is keyed only on per-level edge/node
// counts — pure functions of (graph, source) — so the traversal direction,
// and with it every float operation, is independent of scheduling and
// worker budget.
//
// A bottom-up sweep discovers nodes in index order, not discovery order, so
// it reorders the new level with a stable counting sort keyed on each
// node's earliest parent position ("first discoverer"): the resulting
// bucket order (earliest parent, then index) is exactly the order a
// top-down scan would have appended, which keeps the delta ordering — and
// the bits — identical whichever direction the heuristic picks
// (TestBetweennessDirectionInvariance pins this).

// maxBetweennessPartials bounds how many partial score vectors a parallel
// Brandes run materializes. Sources are split into at most this many
// fixed-layout chunks — a function of the source count only, never of the
// worker count — and the per-chunk vectors are folded in chunk order, so
// floating-point results are bit-identical at every parallelism level while
// memory stays at O(partials · n) rather than O(sources · n).
const maxBetweennessPartials = 64

// betweennessReduceBlock is the column width (in float64 elements; 32 KiB)
// of the blocked partial-vector fold. Fixed so the reduction layout is a
// function of n only.
const betweennessReduceBlock = 4096

// bottomUpBeneficial decides the traversal direction for one BFS level:
// top-down costs one probe per frontier out-edge (mf); bottom-up costs one
// probe per in-edge of a still-unreached node plus the index sweep over the
// unreached nodes themselves. restIn is the *estimated* unreached in-edge
// count (unreached · m/n — the exact figure would cost a random in-degree
// lookup per discovery, and the estimate preserves determinism because it
// is a pure function of the reached count). Declared as a variable so tests
// can force either direction.
var bottomUpBeneficial = func(mf, restIn, unreached int64) bool {
	return 8*mf > restIn+unreached
}

// nodeState is the per-node scratch of one Brandes source iteration, packed
// into 32 bytes so every random node probe touches one cache line.
type nodeState struct {
	sigma float64 // shortest-path count (exact integer in float64)
	delta float64 // dependency accumulator
	dist  int32   // BFS level; -1 = unreached
	pos   int32   // discovery index in order; valid only for reached nodes
	// Flat predecessor run: the DAG in-neighbors of this node are
	// preds[predStart : predStart+predCnt].
	predStart int32
	predCnt   int32
}

// betweennessWorkspace holds the per-source scratch so parallel workers
// allocate nothing per BFS in steady state.
type betweennessWorkspace struct {
	st    []nodeState
	order []int32 // level-bucketed BFS discovery order (cap n, never grows)
	preds []int32 // flat DAG in-neighbor runs, reset per source
	pairs []int64 // top-down scratch: (v<<32 | u) DAG edges of one level
	// front is the frontier membership bitmap for bottom-up sweeps. At
	// ~n/8 bytes it stays L1-resident, so the ~80% of in-edge probes that
	// miss the frontier cost one bit test instead of a random 32-byte
	// nodeState load.
	front  []uint64
	buf    []int32 // bottom-up scratch: newly discovered level, index order
	minPos []int32 // bottom-up scratch: earliest-parent discovery index
	cnt    []int32 // bottom-up scratch: counting-sort buckets per parent
}

func newBetweennessWorkspace(n int) *betweennessWorkspace {
	return &betweennessWorkspace{
		st:     make([]nodeState, n),
		order:  make([]int32, 0, n),
		front:  make([]uint64, (n+63)/64),
		buf:    make([]int32, 0, n),
		minPos: make([]int32, n),
		cnt:    make([]int32, n),
	}
}

// wsPool recycles workspaces across calls (and across the serving layer's
// repeated runs); entries sized for a smaller graph than requested are
// dropped and reallocated.
var wsPool sync.Pool

func getWorkspace(n int) *betweennessWorkspace {
	w, _ := wsPool.Get().(*betweennessWorkspace)
	if w == nil || cap(w.order) < n {
		return newBetweennessWorkspace(n)
	}
	w.st = w.st[:n]
	w.order = w.order[:0]
	w.front = w.front[:(n+63)/64]
	w.buf = w.buf[:0]
	w.minPos = w.minPos[:n]
	w.cnt = w.cnt[:n]
	return w
}

// partialPool recycles per-chunk partial score vectors; getPartial returns a
// zeroed slice of exactly n elements.
var partialPool sync.Pool

func getPartial(n int) []float64 {
	if p, ok := partialPool.Get().(*[]float64); ok && cap(*p) >= n {
		s := (*p)[:n]
		clear(s)
		return s
	}
	return make([]float64, n)
}

// accumulate runs a single Brandes source iteration, adding partial
// dependencies into bc. It allocates nothing in steady state
// (TestBetweennessSteadyStateAllocs).
func (w *betweennessWorkspace) accumulate(g *graph.Digraph, s int, bc []float64) {
	n := g.NumNodes()
	outOff, outAdj := g.CSR()
	inOff, inAdj := g.InCSR()
	m := int64(len(inAdj))
	st := w.st
	for i := range st {
		st[i] = nodeState{dist: -1}
	}

	// Forward phase: level-synchronous BFS. order is bucketed by level in
	// discovery order; st[v].pos is v's index in order.
	//
	// preds is written through an explicit cursor rather than append: the
	// DAG edge count is bounded by m, so sizing the buffer once keeps the
	// hot recording loops free of capacity checks (and allocation-free
	// after the first source on a graph).
	order := w.order[:0]
	if int64(cap(w.preds)) < m+1 { // +1: slack slot for the filter pass
		w.preds = make([]int32, m+1)
	}
	preds := w.preds[:cap(w.preds)]
	pcur := int32(0)
	st[s] = nodeState{sigma: 1}
	order = append(order, int32(s))
	for lf := 0; lf < len(order); {
		hf := len(order)
		frontier := order[lf:hf]
		d := st[frontier[0]].dist
		var mf int64
		for _, u := range frontier {
			mf += outOff[u+1] - outOff[u]
		}
		unreached := int64(n - hf)
		if bottomUpBeneficial(mf, unreached*m/int64(n), unreached) {
			// Bottom-up: sweep unreached nodes, pulling sigma from their
			// frontier in-neighbors. The matching in-neighbors are exactly
			// the node's DAG predecessors, so the flat run is recorded for
			// free; then restore top-down discovery order. Frontier
			// membership is tested against the L1-resident bitmap first so
			// non-frontier probes never touch the nodeState array.
			front := w.front
			clear(front)
			for _, u := range frontier {
				front[uint32(u)>>6] |= 1 << (uint32(u) & 63)
			}
			buf := w.buf[:0]
			for v := 0; v < n; v++ {
				if st[v].dist >= 0 {
					continue
				}
				// Filter pass: branch-free frontier test — every probe
				// stores its node id, only hits advance the cursor (preds
				// carries one slack slot for the trailing dead store).
				// Touching no nodeState here keeps the loop free of
				// unpredictable branches and dependent random loads.
				start := pcur
				for _, u := range inAdj[inOff[v]:inOff[v+1]] {
					preds[pcur] = u
					pcur += int32(front[uint32(u)>>6] >> (uint32(u) & 63) & 1)
				}
				if pcur == start {
					continue
				}
				// Sum pass over the recorded run: branch-free body, so the
				// out-of-order window overlaps the random sigma loads.
				var sum float64
				mp := int32(1<<31 - 1)
				for _, u := range preds[start:pcur] {
					su := &st[u]
					sum += su.sigma
					if su.pos < mp {
						mp = su.pos
					}
				}
				st[v] = nodeState{sigma: sum, dist: d + 1,
					predStart: start, predCnt: pcur - start}
				w.minPos[v] = mp
				buf = append(buf, int32(v))
			}
			w.buf = buf // retain (fixed) capacity across levels
			// Stable counting sort of the new level by earliest-parent
			// position: bucket order (parent pos, then node index) is
			// exactly the top-down append order.
			cnt := w.cnt[:len(frontier)]
			for i := range cnt {
				cnt[i] = 0
			}
			for _, v := range buf {
				cnt[w.minPos[v]-int32(lf)]++
			}
			var off int32
			for i, c := range cnt {
				cnt[i] = off
				off += c
			}
			order = order[:hf+len(buf)]
			for _, v := range buf {
				k := w.minPos[v] - int32(lf)
				idx := int32(hf) + cnt[k]
				cnt[k]++
				order[idx] = v
				st[v].pos = idx
			}
		} else {
			// Top-down: scan frontier out-edges in discovery order,
			// recording DAG edges as (v, u) pairs to be grouped into flat
			// per-node runs once the level is complete.
			pairs := w.pairs[:0]
			for _, u := range frontier {
				su := st[u].sigma
				for _, v := range outAdj[outOff[u]:outOff[u+1]] {
					sv := &st[v]
					if sv.dist < 0 {
						sv.dist = d + 1
						sv.sigma = su
						sv.pos = int32(len(order))
						sv.predCnt = 1
						order = append(order, v)
						pairs = append(pairs, int64(v)<<32|int64(u))
					} else if sv.dist == d+1 {
						sv.sigma += su
						sv.predCnt++
						pairs = append(pairs, int64(v)<<32|int64(u))
					}
				}
			}
			w.pairs = pairs
			// Group: assign each new node its run, then scatter the pairs
			// (predCnt doubles as the fill cursor and ends back at the
			// run length).
			for _, v := range order[hf:] {
				sv := &st[v]
				sv.predStart = pcur
				pcur += sv.predCnt
				sv.predCnt = 0
			}
			for _, p := range pairs {
				sv := &st[int32(p>>32)]
				preds[sv.predStart+sv.predCnt] = int32(p)
				sv.predCnt++
			}
		}
		lf = hf
	}
	w.order = order[:0]

	// Dependency pass: walk order backwards (levels deepest-first, reverse
	// discovery order within each level) and push each node's coefficient
	// along its flat DAG in-neighbor run.
	for i := len(order) - 1; i >= 1; i-- {
		v := order[i]
		sv := &st[v]
		coef := (1 + sv.delta) / sv.sigma
		for _, u := range preds[sv.predStart : sv.predStart+sv.predCnt] {
			su := &st[u]
			su.delta += su.sigma * coef
		}
		bc[v] += sv.delta
	}
}

// Betweenness computes exact betweenness centrality for all nodes with
// Brandes' algorithm, parallelized over sources on the shared worker pool.
// Directed; scores are raw dependency sums (no normalization), matching
// networkx's betweenness_centrality(normalized=False).
func Betweenness(g *graph.Digraph) []float64 {
	return BetweennessWorkers(g, 0)
}

// BetweennessWorkers is Betweenness with an explicit worker budget
// (<= 0 means GOMAXPROCS). Results are bit-identical at every budget.
func BetweennessWorkers(g *graph.Digraph, workers int) []float64 {
	n := g.NumNodes()
	sources := make([]int, n)
	for i := range sources {
		sources[i] = i
	}
	return betweennessFrom(g, sources, 1, workers)
}

// ApproxBetweenness estimates betweenness from k uniformly sampled sources,
// scaled by n/k so that values are comparable to the exact ones (Brandes &
// Pich source sampling). Sampling error concentrates on low-betweenness
// nodes; the paper's Figure 5 uses ranks of high-betweenness nodes, which
// stabilize quickly (see BenchmarkAblationBetweennessSampling). Note that
// rng is used only as a key for derived streams and is never advanced:
// calling twice with the same generator samples the same source set. For an
// independent resample, pass a different generator (or Split).
func ApproxBetweenness(g *graph.Digraph, k int, rng *mathx.RNG) []float64 {
	return ApproxBetweennessWorkers(g, k, rng, 0)
}

// ApproxBetweennessWorkers is ApproxBetweenness with an explicit worker
// budget (<= 0 means GOMAXPROCS). Each sampling draw comes from its own
// stream derived from rng (which is not advanced), so the sampled source set
// is a pure function of the rng state and k — independent of scheduling,
// worker count, and any other use of rng.
func ApproxBetweennessWorkers(g *graph.Digraph, k int, rng *mathx.RNG, workers int) []float64 {
	n := g.NumNodes()
	if k >= n {
		return BetweennessWorkers(g, workers)
	}
	return betweennessFrom(g, sampleSources(n, k, rng), float64(n)/float64(k), workers)
}

// sampleSources draws k distinct sources from [0, n) by a partial
// Fisher–Yates shuffle whose j-th swap index comes from the derived stream
// "source/j". Derive does not advance rng, so the sample commutes with every
// other consumer of the generator and with scheduling order.
func sampleSources(n, k int, rng *mathx.RNG) []int {
	pool := make([]int, n)
	for i := range pool {
		pool[i] = i
	}
	for j := 0; j < k; j++ {
		r := rng.Derive("source/" + strconv.Itoa(j))
		i := j + r.Intn(n-j)
		pool[j], pool[i] = pool[i], pool[j]
	}
	return pool[:k]
}

// betweennessFrom runs Brandes over the given sources, sharded into
// fixed-layout chunks (at most maxBetweennessPartials of them) on the shared
// worker pool. Each chunk accumulates its sources — in source order — into a
// pooled partial vector; partials are then folded element-wise in chunk
// order by the blocked parallel reduction, so the result is bit-identical
// whatever the worker budget or schedule.
func betweennessFrom(g *graph.Digraph, sources []int, scale float64, workers int) []float64 {
	n := g.NumNodes()
	bc := make([]float64, n)
	if len(sources) == 0 {
		return bc
	}
	g.InCSR() // build the transpose once, before the workers race to it
	width := (len(sources) + maxBetweennessPartials - 1) / maxBetweennessPartials
	partials := parallel.ChunkReduce(len(sources), width, workers, func(lo, hi int) []float64 {
		ws := getWorkspace(n)
		part := getPartial(n)
		for _, s := range sources[lo:hi] {
			ws.accumulate(g, s, part)
		}
		wsPool.Put(ws)
		return part
	})
	parallel.BlockedSumInto(bc, partials, betweennessReduceBlock, workers)
	for _, p := range partials {
		p := p
		partialPool.Put(&p)
	}
	if scale != 1 {
		for i := range bc {
			bc[i] *= scale
		}
	}
	return bc
}
