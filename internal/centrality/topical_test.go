package centrality

import (
	"math"
	"testing"

	"elites/internal/graph"
	"elites/internal/mathx"
)

// twoCommunityGraph builds two dense communities with sparse cross links.
func twoCommunityGraph(rng *mathx.RNG, size int) (*graph.Digraph, []int) {
	n := 2 * size
	b := graph.NewBuilder(n)
	topics := make([]int, n)
	for v := 0; v < n; v++ {
		if v >= size {
			topics[v] = 1
		}
	}
	for v := 0; v < n; v++ {
		base := 0
		if topics[v] == 1 {
			base = size
		}
		for k := 0; k < 6; k++ {
			u := base + rng.Intn(size)
			if u != v {
				b.AddEdge(v, u)
			}
		}
		// Sparse cross-community edge.
		if rng.Bool(0.1) {
			u := (base + size + rng.Intn(size)) % n
			if u != v {
				b.AddEdge(v, u)
			}
		}
	}
	return b.Build(), topics
}

func TestTopicSensitivePageRankConcentrates(t *testing.T) {
	rng := mathx.NewRNG(1)
	g, topics := twoCommunityGraph(rng, 150)
	tr, err := TopicSensitivePageRank(g, topics, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for topic := 0; topic < 2; topic++ {
		aff := tr.TopicAffinity(topic, topics)
		if aff < 0.75 {
			t.Fatalf("topic %d affinity = %v, want high", topic, aff)
		}
		// Scores sum to 1.
		sum := 0.0
		for _, s := range tr.Scores[topic] {
			sum += s
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("topic %d scores sum to %v", topic, sum)
		}
	}
}

func TestTopicRankTop(t *testing.T) {
	rng := mathx.NewRNG(2)
	g, topics := twoCommunityGraph(rng, 100)
	tr, err := TopicSensitivePageRank(g, topics, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	top := tr.Top(0, 10)
	if len(top) != 10 {
		t.Fatalf("top = %d entries", len(top))
	}
	// Top nodes for topic 0 should mostly belong to community 0.
	inComm := 0
	for _, v := range top {
		if topics[v] == 0 {
			inComm++
		}
	}
	if inComm < 8 {
		t.Fatalf("only %d/10 top nodes in their own community", inComm)
	}
	// Descending order.
	for i := 1; i < len(top); i++ {
		if tr.Scores[0][top[i]] > tr.Scores[0][top[i-1]] {
			t.Fatal("Top not sorted")
		}
	}
	if tr.Top(5, 3) != nil {
		t.Fatal("out-of-range topic should return nil")
	}
}

func TestTopicSensitivePageRankValidation(t *testing.T) {
	g := graph.FromEdges(3, [][2]int{{0, 1}})
	if _, err := TopicSensitivePageRank(g, []int{0}, 1, nil); err != ErrBadParam {
		t.Fatal("label length mismatch should error")
	}
	if _, err := TopicSensitivePageRank(g, []int{0, 0, 0}, 0, nil); err != ErrBadParam {
		t.Fatal("zero topics should error")
	}
	// A topic with no members yields a zero row, not an error.
	tr, err := TopicSensitivePageRank(g, []int{0, 0, 0}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tr.Scores[1] {
		if s != 0 {
			t.Fatal("empty topic should have zero scores")
		}
	}
}
