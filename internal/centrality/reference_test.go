package centrality

// Test-only reference implementation of the betweenness kernel's numeric
// contract (see the kernel comment in betweenness.go). It is the classic
// predecessor-list Brandes formulation — per-node preds slices re-appended
// on every BFS, a single mixed-level queue, a serial chunk-order fold — and
// performs exactly the floating-point operations the optimized kernel pins:
// sigma accumulated along the BFS scan, delta pushed in reverse discovery
// order, partials folded left-to-right in chunk order. The equivalence
// tests assert the predecessor-free, direction-optimizing kernel is
// bit-identical to this reference at several worker budgets, which pins the
// level-bucketed layout, the bottom-up discovery-order reconstruction and
// the blocked reduction without freezing last-ulp behaviour against
// unrelated refactors.

import (
	"fmt"
	"math"
	"testing"

	"elites/internal/graph"
	"elites/internal/mathx"
)

type refWorkspace struct {
	dist  []int32
	sigma []float64
	delta []float64
	order []int32
	preds [][]int32
}

func newRefWorkspace(n int) *refWorkspace {
	return &refWorkspace{
		dist:  make([]int32, n),
		sigma: make([]float64, n),
		delta: make([]float64, n),
		order: make([]int32, 0, n),
		preds: make([][]int32, n),
	}
}

func (w *refWorkspace) accumulate(g *graph.Digraph, s int, bc []float64) {
	n := g.NumNodes()
	for i := 0; i < n; i++ {
		w.dist[i] = -1
		w.sigma[i] = 0
		w.delta[i] = 0
		w.preds[i] = w.preds[i][:0]
	}
	w.order = w.order[:0]
	w.dist[s] = 0
	w.sigma[s] = 1
	queue := append(w.order, int32(s))
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := w.dist[u]
		for _, v := range g.OutNeighbors(int(u)) {
			if w.dist[v] < 0 {
				w.dist[v] = du + 1
				queue = append(queue, v)
			}
			if w.dist[v] == du+1 {
				w.sigma[v] += w.sigma[u]
				w.preds[v] = append(w.preds[v], u)
			}
		}
	}
	w.order = queue
	for i := len(w.order) - 1; i >= 0; i-- {
		v := w.order[i]
		coef := (1 + w.delta[v]) / w.sigma[v]
		for _, u := range w.preds[v] {
			w.delta[u] += w.sigma[u] * coef
		}
		if int(v) != s {
			bc[v] += w.delta[v]
		}
	}
}

// refBetweennessFrom restates betweennessFrom serially: the same fixed chunk
// layout, one freshly allocated partial per chunk, partials folded
// left-to-right, then the scale multiply.
func refBetweennessFrom(g *graph.Digraph, sources []int, scale float64) []float64 {
	n := g.NumNodes()
	bc := make([]float64, n)
	if len(sources) == 0 {
		return bc
	}
	width := (len(sources) + maxBetweennessPartials - 1) / maxBetweennessPartials
	ws := newRefWorkspace(n)
	for lo := 0; lo < len(sources); lo += width {
		hi := min(lo+width, len(sources))
		part := make([]float64, n)
		for _, s := range sources[lo:hi] {
			ws.accumulate(g, s, part)
		}
		for i, v := range part {
			bc[i] += v
		}
	}
	if scale != 1 {
		for i := range bc {
			bc[i] *= scale
		}
	}
	return bc
}

// betweennessFixtures are directed, asymmetric graphs chosen to exercise
// every kernel path: multi-level sparse BFS trees (top-down), dense
// small-diameter graphs (bottom-up sweeps plus the counting-sort reorder),
// DAG layers, disconnected pieces, and degenerate sizes.
func betweennessFixtures() map[string]*graph.Digraph {
	rng := mathx.NewRNG(1234)
	layered := graph.NewBuilder(40)
	for l := 0; l < 3; l++ { // 4 layers of 10, edges only forward
		for u := 0; u < 10; u++ {
			for v := 0; v < 10; v++ {
				if rng.Bool(0.4) {
					layered.AddEdge(l*10+u, (l+1)*10+v)
				}
			}
		}
	}
	twoParts := graph.NewBuilder(30)
	for u := 0; u < 12; u++ {
		for v := 0; v < 12; v++ {
			if u != v && rng.Bool(0.3) {
				twoParts.AddEdge(u, v)
			}
		}
	}
	for u := 15; u < 30; u++ {
		twoParts.AddEdge(u, 15+(u+1)%15)
	}
	return map[string]*graph.Digraph{
		"sparse":       randomDigraph(rng, 90, 0.03),
		"dense":        randomDigraph(rng, 120, 0.35),
		"layered-dag":  layered.Build(),
		"disconnected": twoParts.Build(),
		"path":         graph.FromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}),
		"singleton":    graph.NewBuilder(1).Build(),
		"tiny":         randomDigraph(rng, 3, 0.5),
	}
}

// TestBetweennessMatchesReferenceExact: the optimized kernel must be
// bit-identical to the predecessor-list reference over all sources, at every
// worker budget the acceptance contract names.
func TestBetweennessMatchesReferenceExact(t *testing.T) {
	for name, g := range betweennessFixtures() {
		n := g.NumNodes()
		sources := make([]int, n)
		for i := range sources {
			sources[i] = i
		}
		want := refBetweennessFrom(g, sources, 1)
		for _, workers := range []int{1, 2, 4, 7, 8} {
			equalBits(t, fmt.Sprintf("%s workers=%d", name, workers),
				BetweennessWorkers(g, workers), want)
		}
	}
}

// TestApproxBetweennessMatchesReference: the sampled variant shares the
// kernel and the n/k scaling; it must be bit-identical to the reference over
// the same derived source sample.
func TestApproxBetweennessMatchesReference(t *testing.T) {
	rng := mathx.NewRNG(77)
	for name, g := range betweennessFixtures() {
		n := g.NumNodes()
		k := n / 2
		if k < 1 {
			continue
		}
		base := mathx.NewRNG(99)
		want := refBetweennessFrom(g, sampleSources(n, k, base), float64(n)/float64(k))
		for _, workers := range []int{1, 4, 7} {
			equalBits(t, fmt.Sprintf("%s workers=%d", name, workers),
				ApproxBetweennessWorkers(g, k, base, workers), want)
		}
	}
	_ = rng
}

// TestBetweennessDirectionInvariance forces the direction heuristic to each
// extreme: an all-top-down and an all-bottom-up traversal must produce
// bit-identical scores, because the bottom-up counting-sort reconstruction
// restores the top-down discovery order that pins delta accumulation.
func TestBetweennessDirectionInvariance(t *testing.T) {
	orig := bottomUpBeneficial
	defer func() { bottomUpBeneficial = orig }()
	for name, g := range betweennessFixtures() {
		bottomUpBeneficial = func(mf, restIn, unreached int64) bool { return false }
		topDown := BetweennessWorkers(g, 3)
		bottomUpBeneficial = func(mf, restIn, unreached int64) bool { return true }
		bottomUp := BetweennessWorkers(g, 3)
		equalBits(t, name+" top-down vs bottom-up", bottomUp, topDown)
	}
}

// TestBetweennessSteadyStateAllocs pins the zero-alloc contract of the
// per-source accumulation: with a warmed workspace, one Brandes source
// iteration must not touch the heap.
func TestBetweennessSteadyStateAllocs(t *testing.T) {
	rng := mathx.NewRNG(21)
	g := randomDigraph(rng, 400, 0.05)
	g.InCSR() // transpose is built once per graph, outside the measured path
	ws := getWorkspace(g.NumNodes())
	bc := make([]float64, g.NumNodes())
	for s := 0; s < 4; s++ { // warm every buffer the iteration touches
		ws.accumulate(g, s, bc)
	}
	s := 0
	allocs := testing.AllocsPerRun(25, func() {
		ws.accumulate(g, s%g.NumNodes(), bc)
		s++
	})
	wsPool.Put(ws)
	if allocs != 0 {
		t.Fatalf("steady-state source accumulation allocates %.1f times per run, want 0", allocs)
	}
	for _, v := range bc {
		if math.IsNaN(v) {
			t.Fatal("NaN leaked into scores")
		}
	}
}
