// Package centrality implements the node-importance measures used in the
// paper's Figure 5 analysis: PageRank (power iteration with dangling-mass
// redistribution), Brandes betweenness centrality (exact and source-sampled,
// parallelized over sources with ordered reduction so scores are
// bit-identical at any worker count), HITS hubs/authorities and closeness.
// All routines operate on the CSR digraphs of internal/graph and are
// deterministic given their inputs, whatever the scheduling.
package centrality

import (
	"errors"
	"math"

	"elites/internal/graph"
	"elites/internal/mathx"
)

// ErrBadParam flags out-of-range algorithm parameters.
var ErrBadParam = errors.New("centrality: bad parameter")

// PageRankOptions configures the power iteration.
type PageRankOptions struct {
	// Damping is the teleportation damping factor; 0.85 if zero.
	Damping float64
	// Tol is the L1 convergence tolerance; 1e-10 if zero.
	Tol float64
	// MaxIter bounds the iteration count; 200 if zero.
	MaxIter int
}

func (o *PageRankOptions) defaults() PageRankOptions {
	out := PageRankOptions{Damping: 0.85, Tol: 1e-10, MaxIter: 200}
	if o == nil {
		return out
	}
	if o.Damping != 0 {
		out.Damping = o.Damping
	}
	if o.Tol != 0 {
		out.Tol = o.Tol
	}
	if o.MaxIter != 0 {
		out.MaxIter = o.MaxIter
	}
	return out
}

// PageRank computes the PageRank vector of g. The returned scores sum to 1.
// Dangling nodes (zero out-degree — the paper's celebrity sinks) donate their
// rank uniformly, the standard strongly-preferential handling.
func PageRank(g *graph.Digraph, opts *PageRankOptions) ([]float64, error) {
	o := opts.defaults()
	if o.Damping <= 0 || o.Damping >= 1 {
		return nil, ErrBadParam
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, nil
	}
	// Iterate on the reverse graph so each node pulls rank from its
	// in-neighbors; contributions are rank[u]/outdeg[u].
	rev := g.Reverse()
	outDeg := g.OutDegrees()
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	var dangling []int
	for u := 0; u < n; u++ {
		if outDeg[u] == 0 {
			dangling = append(dangling, u)
		}
	}
	for iter := 0; iter < o.MaxIter; iter++ {
		danglingMass := 0.0
		for _, u := range dangling {
			danglingMass += rank[u]
		}
		base := (1-o.Damping)/float64(n) + o.Damping*danglingMass/float64(n)
		for v := 0; v < n; v++ {
			s := 0.0
			for _, u := range rev.OutNeighbors(v) {
				s += rank[u] / float64(outDeg[u])
			}
			next[v] = base + o.Damping*s
		}
		delta := 0.0
		for i := range rank {
			delta += math.Abs(next[i] - rank[i])
		}
		rank, next = next, rank
		if delta < o.Tol {
			break
		}
	}
	return rank, nil
}

// PersonalizedPageRank computes PageRank with teleportation restricted to
// the given seed set (uniform over seeds). Used by the crawl example to rank
// proximity to the verified core.
func PersonalizedPageRank(g *graph.Digraph, seeds []int, opts *PageRankOptions) ([]float64, error) {
	o := opts.defaults()
	n := g.NumNodes()
	if n == 0 {
		return nil, nil
	}
	if len(seeds) == 0 {
		return nil, ErrBadParam
	}
	tele := make([]float64, n)
	for _, s := range seeds {
		if s < 0 || s >= n {
			return nil, graph.ErrNodeRange
		}
		tele[s] += 1 / float64(len(seeds))
	}
	rev := g.Reverse()
	outDeg := g.OutDegrees()
	rank := make([]float64, n)
	copy(rank, tele)
	next := make([]float64, n)
	var dangling []int
	for u := 0; u < n; u++ {
		if outDeg[u] == 0 {
			dangling = append(dangling, u)
		}
	}
	for iter := 0; iter < o.MaxIter; iter++ {
		danglingMass := 0.0
		for _, u := range dangling {
			danglingMass += rank[u]
		}
		delta := 0.0
		for v := 0; v < n; v++ {
			s := 0.0
			for _, u := range rev.OutNeighbors(v) {
				s += rank[u] / float64(outDeg[u])
			}
			nv := (1-o.Damping)*tele[v] + o.Damping*(s+danglingMass*tele[v])
			delta += math.Abs(nv - rank[v])
			next[v] = nv
		}
		rank, next = next, rank
		if delta < o.Tol {
			break
		}
	}
	return rank, nil
}

// HITSResult holds hub and authority scores (each L2-normalized).
type HITSResult struct {
	Hubs        []float64
	Authorities []float64
	Iterations  int
}

// HITS runs the Kleinberg hubs-and-authorities iteration to the given
// tolerance (L1 change in both vectors).
func HITS(g *graph.Digraph, maxIter int, tol float64) *HITSResult {
	n := g.NumNodes()
	if maxIter <= 0 {
		maxIter = 100
	}
	if tol <= 0 {
		tol = 1e-10
	}
	hubs := make([]float64, n)
	auth := make([]float64, n)
	for i := range hubs {
		hubs[i] = 1
		auth[i] = 1
	}
	rev := g.Reverse()
	newAuth := make([]float64, n)
	newHubs := make([]float64, n)
	iters := 0
	for iter := 0; iter < maxIter; iter++ {
		iters = iter + 1
		// auth(v) = Σ_{u→v} hub(u)
		for v := 0; v < n; v++ {
			s := 0.0
			for _, u := range rev.OutNeighbors(v) {
				s += hubs[u]
			}
			newAuth[v] = s
		}
		normalizeL2(newAuth)
		// hub(u) = Σ_{u→v} auth(v)
		for u := 0; u < n; u++ {
			s := 0.0
			for _, v := range g.OutNeighbors(u) {
				s += newAuth[v]
			}
			newHubs[u] = s
		}
		normalizeL2(newHubs)
		delta := 0.0
		for i := range hubs {
			delta += math.Abs(newHubs[i]-hubs[i]) + math.Abs(newAuth[i]-auth[i])
		}
		copy(hubs, newHubs)
		copy(auth, newAuth)
		if delta < tol {
			break
		}
	}
	return &HITSResult{Hubs: hubs, Authorities: auth, Iterations: iters}
}

func normalizeL2(v []float64) {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	if s == 0 {
		return
	}
	s = math.Sqrt(s)
	for i := range v {
		v[i] /= s
	}
}

// DegreeCentrality returns in- and out-degree centralities normalized by
// (n-1).
func DegreeCentrality(g *graph.Digraph) (in, out []float64) {
	n := g.NumNodes()
	in = make([]float64, n)
	out = make([]float64, n)
	if n < 2 {
		return
	}
	norm := 1 / float64(n-1)
	for v, d := range g.InDegrees() {
		in[v] = float64(d) * norm
	}
	for v := 0; v < n; v++ {
		out[v] = float64(g.OutDegree(v)) * norm
	}
	return
}

// Closeness computes sampled harmonic closeness centrality: for k random
// "landmark" sources, each node's score is the mean of 1/d(landmark→node)
// over landmarks that reach it, rescaled to [0,1]. With k >= n it is exact
// harmonic closeness on the reversed distances.
func Closeness(g *graph.Digraph, k int, rng *mathx.RNG) []float64 {
	n := g.NumNodes()
	scores := make([]float64, n)
	if n == 0 {
		return scores
	}
	var sources []int
	if k >= n {
		sources = make([]int, n)
		for i := range sources {
			sources[i] = i
		}
	} else {
		sources = rng.Perm(n)[:k]
	}
	for _, s := range sources {
		dist := graph.BFS(g, s)
		for v, d := range dist {
			if d > 0 {
				scores[v] += 1 / float64(d)
			}
		}
	}
	for i := range scores {
		scores[i] /= float64(len(sources))
	}
	return scores
}
