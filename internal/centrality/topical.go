package centrality

import (
	"elites/internal/graph"
)

// TopicRank is a TwitterRank-style topic-sensitive PageRank (Weng et al.,
// cited in the paper's related work): for each topic, a personalized
// PageRank whose teleportation is restricted to the nodes labelled with
// that topic. The result ranks accounts by topical influence rather than
// raw global popularity.
type TopicRank struct {
	// Scores[t][v] is node v's rank under topic t; each row sums to 1.
	Scores [][]float64
	// Topics is the number of distinct topics.
	Topics int
}

// TopicSensitivePageRank computes per-topic ranks. topicOf labels each node
// with a topic in [0, topics); nodes with labels outside the range are never
// teleported to but still accumulate rank through links.
func TopicSensitivePageRank(g *graph.Digraph, topicOf []int, topics int, opts *PageRankOptions) (*TopicRank, error) {
	if len(topicOf) != g.NumNodes() {
		return nil, ErrBadParam
	}
	if topics <= 0 {
		return nil, ErrBadParam
	}
	seedsByTopic := make([][]int, topics)
	for v, t := range topicOf {
		if t >= 0 && t < topics {
			seedsByTopic[t] = append(seedsByTopic[t], v)
		}
	}
	tr := &TopicRank{Scores: make([][]float64, topics), Topics: topics}
	for t := 0; t < topics; t++ {
		if len(seedsByTopic[t]) == 0 {
			tr.Scores[t] = make([]float64, g.NumNodes())
			continue
		}
		scores, err := PersonalizedPageRank(g, seedsByTopic[t], opts)
		if err != nil {
			return nil, err
		}
		tr.Scores[t] = scores
	}
	return tr, nil
}

// Top returns the k highest-ranked nodes for a topic.
func (tr *TopicRank) Top(topic, k int) []int {
	if topic < 0 || topic >= tr.Topics {
		return nil
	}
	scores := tr.Scores[topic]
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection sort for small k keeps this allocation-light.
	if k > len(idx) {
		k = len(idx)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if scores[idx[j]] > scores[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}

// TopicAffinity reports how concentrated topic t's rank mass is on its own
// members: Σ_{v: topic(v)=t} score_t(v). Values near 1 indicate strong
// topical homophily in the follow structure.
func (tr *TopicRank) TopicAffinity(topic int, topicOf []int) float64 {
	if topic < 0 || topic >= tr.Topics {
		return 0
	}
	s := 0.0
	for v, t := range topicOf {
		if t == topic {
			s += tr.Scores[topic][v]
		}
	}
	return s
}
