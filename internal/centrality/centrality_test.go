package centrality

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"elites/internal/graph"
	"elites/internal/mathx"
)

func randomDigraph(rng *mathx.RNG, n int, p float64) *graph.Digraph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Bool(p) {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

func TestPageRankUniformOnCycle(t *testing.T) {
	g := graph.FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	pr, err := PageRank(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range pr {
		if math.Abs(v-0.2) > 1e-9 {
			t.Fatalf("cycle PageRank not uniform: %v", pr)
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	rng := mathx.NewRNG(1)
	f := func(seed uint32) bool {
		n := 2 + rng.Intn(40)
		g := randomDigraph(rng, n, 0.1)
		pr, err := PageRank(g, nil)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, v := range pr {
			if v < 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPageRankStarAnalytic(t *testing.T) {
	// Three leaves point at a dangling center. Hand-solved fixed point
	// with damping 0.85: leaf = 0.152672..., center = 0.541985...
	g := graph.FromEdges(4, [][2]int{{0, 3}, {1, 3}, {2, 3}})
	pr, err := PageRank(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantLeaf := 0.15267175572519084
	wantCenter := 0.5419847328244275
	for i := 0; i < 3; i++ {
		if math.Abs(pr[i]-wantLeaf) > 1e-8 {
			t.Fatalf("leaf rank %v, want %v", pr[i], wantLeaf)
		}
	}
	if math.Abs(pr[3]-wantCenter) > 1e-8 {
		t.Fatalf("center rank %v, want %v", pr[3], wantCenter)
	}
}

func TestPageRankDamping(t *testing.T) {
	g := graph.FromEdges(3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	if _, err := PageRank(g, &PageRankOptions{Damping: 1.5}); err == nil {
		t.Fatal("bad damping should error")
	}
}

func TestPageRankEmpty(t *testing.T) {
	pr, err := PageRank(graph.NewBuilder(0).Build(), nil)
	if err != nil || pr != nil {
		t.Fatalf("empty graph: %v %v", pr, err)
	}
}

func TestPersonalizedPageRankConcentratesOnSeeds(t *testing.T) {
	// Two disconnected triangles; teleport to triangle A only.
	g := graph.FromEdges(6, [][2]int{
		{0, 1}, {1, 2}, {2, 0},
		{3, 4}, {4, 5}, {5, 3},
	})
	pr, err := PersonalizedPageRank(g, []int{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sumA := pr[0] + pr[1] + pr[2]
	sumB := pr[3] + pr[4] + pr[5]
	if sumB > 1e-9 {
		t.Fatalf("mass leaked to disconnected component: %v", sumB)
	}
	if math.Abs(sumA-1) > 1e-6 {
		t.Fatalf("mass = %v, want 1", sumA)
	}
	if _, err := PersonalizedPageRank(g, nil, nil); err == nil {
		t.Fatal("empty seeds should error")
	}
	if _, err := PersonalizedPageRank(g, []int{99}, nil); err == nil {
		t.Fatal("bad seed should error")
	}
}

func TestHITSStar(t *testing.T) {
	// Leaves 0,1,2 point at 3: leaves are pure hubs, 3 is the authority.
	g := graph.FromEdges(4, [][2]int{{0, 3}, {1, 3}, {2, 3}})
	res := HITS(g, 0, 0)
	if res.Authorities[3] < 0.99 {
		t.Fatalf("authority of center = %v", res.Authorities[3])
	}
	for i := 0; i < 3; i++ {
		if math.Abs(res.Hubs[i]-1/math.Sqrt(3)) > 1e-6 {
			t.Fatalf("hub %d = %v", i, res.Hubs[i])
		}
		if res.Authorities[i] > 1e-9 {
			t.Fatalf("leaf authority should be 0: %v", res.Authorities[i])
		}
	}
}

func TestDegreeCentrality(t *testing.T) {
	g := graph.FromEdges(4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 0}})
	in, out := DegreeCentrality(g)
	if out[0] != 1 || math.Abs(in[0]-1.0/3) > 1e-12 {
		t.Fatalf("degree centrality wrong: in=%v out=%v", in, out)
	}
}

func TestClosenessPath(t *testing.T) {
	// 0→1→2: harmonic closeness (incoming) of 2 is (1/2 + 1/1)/3 sources
	// when exact over all sources.
	g := graph.FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	rng := mathx.NewRNG(2)
	c := Closeness(g, 10, rng)
	if math.Abs(c[2]-(1.0/2+1.0)/3) > 1e-12 {
		t.Fatalf("closeness = %v", c)
	}
	if c[0] != 0 {
		t.Fatalf("unreachable node closeness should be 0, got %v", c[0])
	}
}

// bruteBetweenness computes betweenness via the σ_sv·σ_vt/σ_st identity with
// independent forward BFS path counting — an oracle structurally different
// from Brandes' dependency accumulation.
func bruteBetweenness(g *graph.Digraph) []float64 {
	n := g.NumNodes()
	// dist[s][v], sigma[s][v]
	dist := make([][]int32, n)
	sigma := make([][]float64, n)
	for s := 0; s < n; s++ {
		dist[s] = graph.BFS(g, s)
		sig := make([]float64, n)
		sig[s] = 1
		// Process nodes in BFS order (by distance).
		order := make([]int, 0, n)
		for v := 0; v < n; v++ {
			if dist[s][v] >= 0 {
				order = append(order, v)
			}
		}
		// Sort by distance (stable insertion by counting distances).
		byDist := make([][]int, n+1)
		for _, v := range order {
			byDist[dist[s][v]] = append(byDist[dist[s][v]], v)
		}
		for d := 0; d <= n-1; d++ {
			for _, u := range byDist[d] {
				for _, v := range g.OutNeighbors(u) {
					if dist[s][v] == int32(d+1) {
						sig[v] += sig[u]
					}
				}
			}
		}
		sigma[s] = sig
	}
	bc := make([]float64, n)
	for s := 0; s < n; s++ {
		for tt := 0; tt < n; tt++ {
			if s == tt || dist[s][tt] < 0 {
				continue
			}
			for v := 0; v < n; v++ {
				if v == s || v == tt {
					continue
				}
				if dist[s][v] >= 0 && dist[v][tt] >= 0 &&
					dist[s][v]+dist[v][tt] == dist[s][tt] {
					bc[v] += sigma[s][v] * sigma[v][tt] / sigma[s][tt]
				}
			}
		}
	}
	return bc
}

func TestBetweennessPathGraph(t *testing.T) {
	g := graph.FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	bc := Betweenness(g)
	want := []float64{0, 3, 4, 3, 0}
	for i, w := range want {
		if math.Abs(bc[i]-w) > 1e-9 {
			t.Fatalf("betweenness = %v, want %v", bc, want)
		}
	}
}

func TestBetweennessAgainstBruteForce(t *testing.T) {
	rng := mathx.NewRNG(3)
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(15)
		g := randomDigraph(rng, n, 0.15)
		got := Betweenness(g)
		want := bruteBetweenness(g)
		for v := range want {
			if math.Abs(got[v]-want[v]) > 1e-7 {
				t.Fatalf("trial %d node %d: Brandes %v vs brute %v", trial, v, got[v], want[v])
			}
		}
	}
}

func TestApproxBetweennessConverges(t *testing.T) {
	rng := mathx.NewRNG(4)
	g := randomDigraph(rng, 120, 0.04)
	exact := Betweenness(g)
	approx := ApproxBetweenness(g, 60, rng)
	// Rank correlation of top nodes: the top exact node should be in the
	// approx top 5.
	topExact := argMaxF(exact)
	rank := 0
	for v := range approx {
		if approx[v] > approx[topExact] {
			rank++
		}
	}
	if rank > 5 {
		t.Fatalf("top exact node ranked %d in approximation", rank)
	}
	// Full sampling equals exact.
	full := ApproxBetweenness(g, g.NumNodes(), rng)
	for v := range exact {
		if math.Abs(full[v]-exact[v]) > 1e-9 {
			t.Fatal("k>=n sampling should be exact")
		}
	}
}

func argMaxF(x []float64) int {
	best := 0
	for i, v := range x {
		if v > x[best] {
			best = i
		}
	}
	return best
}

// equalBits fails the test unless two score vectors are bit-identical —
// the worker-invariance contract is exact float equality, not tolerance.
func equalBits(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", label, len(got), len(want))
	}
	for v := range want {
		if math.Float64bits(got[v]) != math.Float64bits(want[v]) {
			t.Fatalf("%s: node %d: %v (%x) vs %v (%x)",
				label, v, got[v], math.Float64bits(got[v]), want[v], math.Float64bits(want[v]))
		}
	}
}

// TestBetweennessWorkerInvariance: exact Betweenness must be byte-identical
// at worker budgets 1, 2, 4, 7 and 8 — including graphs with fewer sources
// than workers — because source chunks have a fixed layout and their partial
// vectors are folded in chunk order (blocked over disjoint column ranges).
func TestBetweennessWorkerInvariance(t *testing.T) {
	rng := mathx.NewRNG(9)
	for _, n := range []int{3, 40, 150} { // n=3 exercises sources < workers
		g := randomDigraph(rng, n, 0.1)
		ref := BetweennessWorkers(g, 1)
		for _, workers := range []int{2, 4, 7, 8} {
			equalBits(t, fmt.Sprintf("n=%d workers=%d", n, workers),
				BetweennessWorkers(g, workers), ref)
		}
	}
}

// TestApproxBetweennessWorkerInvariance: the sampled variant must be
// byte-identical across worker budgets too, and — because source draws come
// from derived streams that never advance the caller's generator — repeated
// calls with the same generator must agree exactly.
func TestApproxBetweennessWorkerInvariance(t *testing.T) {
	rng := mathx.NewRNG(10)
	g := randomDigraph(rng, 150, 0.05)
	base := mathx.NewRNG(77)
	ref := ApproxBetweennessWorkers(g, 40, base, 1)
	for _, workers := range []int{4, 7} {
		equalBits(t, fmt.Sprintf("workers=%d", workers),
			ApproxBetweennessWorkers(g, 40, base, workers), ref)
	}
	equalBits(t, "repeat call", ApproxBetweennessWorkers(g, 40, base, 3), ref)
	// k > sources-per-chunk with workers > k: the n < workers edge case.
	small := randomDigraph(rng, 6, 0.3)
	equalBits(t, "k<workers",
		ApproxBetweennessWorkers(small, 3, base, 7),
		ApproxBetweennessWorkers(small, 3, base, 1))
}
