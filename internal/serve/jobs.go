package serve

import (
	"fmt"
	"sync"
	"time"

	"elites/internal/cache"
	"elites/internal/core"
)

// jobs.go is the async half of the report endpoint. When a cold run
// exceeds the server's latency budget (Config.AsyncAfter), the handler
// returns 202 with a job id instead of holding the connection; the run
// continues detached (it is its own waiter, so client disconnects never
// cancel it) and the client polls /v1/jobs/{id} for per-stage progress and
// fetches /v1/jobs/{id}/result when done. Job ids are content-addressed
// from the same identity the coalescer uses, so re-POSTing the same
// request while a job is running lands on the same job.

// progress accumulates per-stage completions as a run executes; shared
// between the pipeline's StageObserver and job status requests.
type progress struct {
	mu     sync.Mutex
	stages []core.StageTiming
}

func newProgress() *progress { return &progress{} }

func (p *progress) observe(st core.StageTiming) {
	p.mu.Lock()
	p.stages = append(p.stages, st)
	p.mu.Unlock()
}

func (p *progress) snapshot() []core.StageTiming {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]core.StageTiming, len(p.stages))
	copy(out, p.stages)
	return out
}

// job is one detached report run.
type job struct {
	ID      string
	Dataset string
	Key     string
	Format  string
	Created time.Time

	done chan struct{} // closed when body/err are final

	mu   sync.Mutex
	prog *progress // the run's live progress sink, once known
	out  runOutcome
	err  error
}

// setProgress records the run's progress sink (called from inside the
// coalescer's fn, so only when this job's goroutine started the run).
func (j *job) setProgress(p *progress) {
	j.mu.Lock()
	j.prog = p
	j.mu.Unlock()
}

// progressSnapshot returns the stages completed so far, or nil when this
// job piggybacked on a run it did not start.
func (j *job) progressSnapshot() []core.StageTiming {
	j.mu.Lock()
	p := j.prog
	j.mu.Unlock()
	if p == nil {
		return nil
	}
	return p.snapshot()
}

func (j *job) finish(out runOutcome, err error) {
	j.mu.Lock()
	j.out, j.err = out, err
	j.mu.Unlock()
	close(j.done)
}

func (j *job) result() (runOutcome, error, bool) {
	select {
	case <-j.done:
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.out, j.err, true
	default:
		return runOutcome{}, nil, false
	}
}

// jobTable tracks live and recently finished jobs, bounded: completed jobs
// beyond keep are evicted oldest-first (running jobs are never evicted).
type jobTable struct {
	mu    sync.Mutex
	byID  map[string]*job
	order []string // insertion order, for eviction
	keep  int
}

func newJobTable(keep int) *jobTable {
	if keep < 1 {
		keep = 64
	}
	return &jobTable{byID: map[string]*job{}, keep: keep}
}

// jobID derives the content-addressed id for a coalescer key.
func jobID(key string) string {
	h := cache.NewHasher()
	h.String(key)
	return fmt.Sprintf("j%012x", h.Sum()&0xffffffffffff)
}

// getOrCreate returns the job for key, creating (and marking created=true)
// if none is live. A finished job for the same key is replaced — its result
// is served from the result cache anyway on the re-run. A *live* job under
// the same id but a different key is a 48-bit hash collision between two
// request identities; getOrCreate refuses (error) rather than hand one
// request's body to the other.
func (t *jobTable) getOrCreate(key, datasetID, format string, now time.Time) (*job, bool, error) {
	id := jobID(key)
	t.mu.Lock()
	defer t.mu.Unlock()
	if j, ok := t.byID[id]; ok {
		_, _, finished := j.result()
		if !finished {
			if j.Key != key {
				return nil, false, fmt.Errorf("serve: job id collision for %s; retry shortly", id)
			}
			return j, false, nil
		}
		// Replacing a finished job under the same id (same key, or a
		// stale colliding one): drop its eviction-order entry so the
		// replacement gets a fresh position instead of inheriting the old
		// job's (oldest-first) slot.
		for i, oid := range t.order {
			if oid == id {
				t.order = append(t.order[:i], t.order[i+1:]...)
				break
			}
		}
	}
	j := &job{
		ID: id, Dataset: datasetID, Key: key, Format: format,
		Created: now, done: make(chan struct{}), prog: newProgress(),
	}
	t.byID[id] = j
	t.order = append(t.order, id)
	t.evictLocked()
	return j, true, nil
}

// running counts jobs that have not finished — the jobs a shutdown right
// now would abandon.
func (t *jobTable) running() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, j := range t.byID {
		if _, _, finished := j.result(); !finished {
			n++
		}
	}
	return n
}

func (t *jobTable) get(id string) (*job, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.byID[id]
	return j, ok
}

// evictLocked drops the oldest finished jobs over the keep bound.
func (t *jobTable) evictLocked() {
	for len(t.byID) > t.keep {
		evicted := false
		for i, id := range t.order {
			j, ok := t.byID[id]
			if !ok {
				t.order = append(t.order[:i], t.order[i+1:]...)
				evicted = true
				break
			}
			if _, _, finished := j.result(); finished {
				delete(t.byID, id)
				t.order = append(t.order[:i], t.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything is still running; never evict live jobs
		}
	}
}
