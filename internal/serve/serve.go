// Package serve is the HTTP serving subsystem over the characterization
// engine: an embeddable server that registers datasets (in-memory, from
// store directories, or generated from elitegen-style specs), runs the
// paper's analysis battery on demand through core.Characterizer, and
// answers JSON (or rendered-text) queries about the results.
//
// The serving path is built for heavy identical traffic over a small set
// of datasets:
//
//   - a single-flight coalescer keyed on the same (dataset digest, options
//     digest) identity as the result cache, so N identical concurrent
//     requests trigger exactly one pipeline run (coalesce.go);
//   - a bounded admission queue that sheds overload with 429 instead of
//     accumulating goroutines (admission.go);
//   - request-context cancellation threaded down to the pipeline
//     scheduler, so a run every waiter abandoned stops at the next stage
//     boundary (core.RunContext);
//   - an async job model: cold runs over the latency budget return 202
//     with a job id and per-stage progress polling (jobs.go);
//   - Prometheus-style /metrics with request, run, and stage-cache
//     accounting (metrics.go).
//
// Per-user feature traffic (features.go) adds one more tier: feature rows
// are stored as fixed-width shards in the result cache, so a warm
// /users/{rank}/features or users:batch request decodes one shard instead
// of running the pipeline — even in a fresh server process sharing the
// cache directory.
//
// Endpoints: GET /healthz, GET /metrics, GET /v1/datasets,
// GET /v1/datasets/{id}, GET|POST /v1/datasets/{id}/report,
// GET /v1/datasets/{id}/stages/{stage}, GET /v1/datasets/{id}/users/{rank},
// GET /v1/datasets/{id}/users/{rank}/features,
// POST /v1/datasets/{id}/users:batch,
// GET /v1/jobs/{id}, GET /v1/jobs/{id}/result.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"elites/internal/cache"
	"elites/internal/core"
	"elites/internal/features"
	"elites/internal/gen"
	"elites/internal/mathx"
	"elites/internal/obs"
	"elites/internal/store"
	"elites/internal/timeseries"
	"elites/internal/twitter"
)

// Config tunes a Server. The zero value serves with the default battery
// options, two concurrent runs, eight queued, and no async budget (every
// report request is synchronous).
type Config struct {
	// Options is the base characterization configuration every request
	// runs with (seed, sampling sizes, CacheDir for warm serving, ...).
	// Requests may restrict Options.Stages via ?stages=; everything else
	// is fixed at server construction so response bytes are a pure
	// function of (dataset, server options, requested stages, format).
	Options core.Options
	// MaxConcurrent bounds simultaneously executing pipeline runs
	// (<= 0 means 2). Coalesced requests count once.
	MaxConcurrent int
	// MaxQueue bounds runs waiting for a slot (< 0 means 0 — shed as soon
	// as every slot is busy; 0 means the default 8).
	MaxQueue int
	// AsyncAfter, when > 0, is the latency budget for POST report
	// requests: a run still going after this long detaches into a job and
	// the client gets 202 + job id. 0 serves everything synchronously.
	AsyncAfter time.Duration
	// JobsKept bounds retained finished jobs (0 means 64).
	JobsKept int
	// BodyCacheBytes caps the in-memory memo of encoded response bodies
	// (0 means 64 MiB; < 0 disables). Bodies are constants per request
	// identity — datasets are immutable and options fixed — so the memo
	// needs no invalidation and makes warm traffic O(memory read).
	BodyCacheBytes int64
	// Tracer, when non-nil, records a span tree per request (continuing
	// any incoming traceparent) and serves it at GET /debug/traces.
	// Tracing never touches cache keys or response bytes.
	Tracer *obs.Tracer
	// Logger, when non-nil, receives one structured record per request
	// with trace/span ids attached.
	Logger *slog.Logger
	// SlowRequest, when > 0 and Logger and Tracer are set, is the
	// flight-recorder threshold: requests at least this slow log their
	// full span tree.
	SlowRequest time.Duration
}

// dataset is one registered dataset plus its memoized identity and
// per-user degree ranking.
type dataset struct {
	ID       string
	Source   string
	ds       *twitter.Dataset
	activity *timeseries.DailySeries
	digest   uint64

	rankOnce sync.Once
	byRank   []int32 // node ids, rank 1 first (out-degree desc, node asc)
	outDeg   []int
	inDeg    []int

	// featMu guards the per-dataset feature memos: the full matrix (set
	// after a pipeline run computed it) and individually decoded shards
	// (hydrated from the result cache without a run). See features.go.
	featMu   sync.Mutex
	feat     *features.Matrix
	shardMem map[int]*features.Rows
}

// Server is the HTTP serving layer. Construct with New, register datasets,
// then mount it anywhere an http.Handler goes.
type Server struct {
	cfg        Config
	mux        *http.ServeMux
	flight     *flight
	admit      *admission
	jobs       *jobTable
	bodies     *bodyCache
	met        *metrics
	optsDigest uint64

	// shards is the result-cache instance feature shards are read from
	// (nil when the server runs cache-less); featDigest is the
	// features.OptionsDigest half of every shard key, fixed at
	// construction like optsDigest.
	shards     *cache.Cache
	featDigest uint64

	// draining flips once (Drain or POST /v1/admin/drain) and never back:
	// new pipeline work is refused with 503 while in-flight requests and
	// async jobs run to completion (WaitJobs), and /healthz + /readyz turn
	// 503 so a fleet router stops routing here.
	draining atomic.Bool

	// jitterMu guards jitter, the seeded stream behind the equal-jitter
	// Retry-After values on shed/draining responses.
	jitterMu sync.Mutex
	jitter   *mathx.RNG

	mu       sync.Mutex
	datasets map[string]*dataset
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2
	}
	switch {
	case cfg.MaxQueue == 0:
		cfg.MaxQueue = 8
	case cfg.MaxQueue < 0:
		cfg.MaxQueue = 0
	}
	if cfg.BodyCacheBytes == 0 {
		cfg.BodyCacheBytes = 64 << 20
	}
	s := &Server{
		cfg:        cfg,
		mux:        http.NewServeMux(),
		flight:     newFlight(),
		admit:      newAdmission(cfg.MaxConcurrent, cfg.MaxQueue),
		jobs:       newJobTable(cfg.JobsKept),
		bodies:     newBodyCache(cfg.BodyCacheBytes),
		met:        newMetrics(time.Now()),
		optsDigest: optionsDigest(cfg.Options),
		featDigest: features.OptionsDigest(features.Options{
			BetweennessSources: cfg.Options.BetweennessSources,
			Seed:               cfg.Options.Seed,
		}),
		jitter:   mathx.NewRNG(cfg.Options.Seed).Derive("serve/retry-after"),
		datasets: map[string]*dataset{},
	}
	if cfg.Options.CacheDir != "" && !cfg.Options.NoCache {
		if cc, err := cache.New(cfg.Options.CacheDir); err == nil {
			s.shards = cc
		}
	}
	s.route("GET /healthz", "healthz", s.handleHealthz)
	s.route("GET /readyz", "readyz", s.handleReadyz)
	s.route("POST /v1/admin/drain", "drain", s.handleDrain)
	s.route("GET /metrics", "metrics", s.handleMetrics)
	s.route("GET /v1/datasets", "datasets", s.handleDatasets)
	s.route("GET /v1/datasets/{id}", "dataset", s.handleDataset)
	s.route("GET /v1/datasets/{id}/report", "report", s.handleReport)
	s.route("POST /v1/datasets/{id}/report", "report", s.handleReport)
	s.route("GET /v1/datasets/{id}/stages/{stage}", "stage", s.handleStage)
	s.route("GET /v1/datasets/{id}/users/{rank}", "user", s.handleUser)
	s.route("GET /v1/datasets/{id}/users/{rank}/features", "user_features", s.handleUserFeatures)
	s.route("POST /v1/datasets/{id}/users:batch", "users_batch", s.handleUsersBatch)
	s.route("GET /v1/jobs/{id}", "job", s.handleJob)
	s.route("GET /v1/jobs/{id}/result", "job_result", s.handleJobResult)
	s.route("GET /debug/traces", "debug_traces", s.handleDebugTraces)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// optionsDigest folds every result-shaping option into the server's half
// of the request identity (worker budgets and observability knobs stay
// out, per the determinism contract).
func optionsDigest(o core.Options) uint64 {
	h := cache.NewHasher()
	for _, v := range []uint64{
		uint64(o.DistanceSources), uint64(o.BetweennessSources),
		uint64(o.EigenK), uint64(o.EigenIters), uint64(o.BootstrapReps),
		uint64(o.TopNGrams), o.Seed,
		boolWord(o.SkipEigen), boolWord(o.SkipBetweenness),
		boolWord(o.SkipBootstrap), boolWord(o.SkipCategories),
		boolWord(o.Features),
	} {
		h.Word(v)
	}
	return h.Sum()
}

func boolWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// --- dataset registration ----------------------------------------------------

func validID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// RegisterDataset registers an in-memory dataset under id. The dataset's
// content digest (the cache identity) is computed once here.
func (s *Server) RegisterDataset(id string, ds *twitter.Dataset, activity *timeseries.DailySeries, source string) error {
	if !validID(id) {
		return fmt.Errorf("serve: invalid dataset id %q", id)
	}
	if ds == nil || ds.Graph == nil {
		return fmt.Errorf("serve: dataset %q has no graph", id)
	}
	d := &dataset{
		ID: id, Source: source, ds: ds, activity: activity,
		digest: store.DatasetDigest(ds, activity),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.datasets[id]; dup {
		return fmt.Errorf("serve: dataset id %q already registered", id)
	}
	s.datasets[id] = d
	return nil
}

// RegisterDir loads a store dataset directory (elitegen/elitecrawl output)
// and registers it under id.
func (s *Server) RegisterDir(id, dir string) error {
	ds, activity, _, err := store.LoadDataset(dir)
	if err != nil {
		return fmt.Errorf("serve: loading %s: %w", dir, err)
	}
	return s.RegisterDataset(id, ds, activity, "dir:"+dir)
}

// RegisterGenerated synthesizes a dataset from an elitegen-style spec
// (kind "verified" or "twitter", n users, generation seed) and registers
// it under id.
func (s *Server) RegisterGenerated(id, kind string, n int, seed uint64) error {
	cfg := twitter.DefaultPlatformConfig(n)
	cfg.Seed = seed
	switch kind {
	case "verified":
		// default graph config
	case "twitter":
		g := gen.TwitterDefaults(n)
		g.Seed = seed
		cfg.GraphConfig = g
	default:
		return fmt.Errorf("serve: unknown dataset kind %q (want verified or twitter)", kind)
	}
	p, err := twitter.NewPlatform(cfg)
	if err != nil {
		return err
	}
	ds, err := twitter.DatasetFromPlatform(p)
	if err != nil {
		return err
	}
	activity := p.ActivitySeries(p.EnglishNodes())
	return s.RegisterDataset(id, ds, activity,
		fmt.Sprintf("gen:%s:n=%d:seed=%d", kind, n, seed))
}

// DatasetIDs lists registered dataset ids, sorted.
func (s *Server) DatasetIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.datasets))
	for id := range s.datasets {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func (s *Server) dataset(id string) (*dataset, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.datasets[id]
	return d, ok
}

// ranking memoizes the out-degree ranking used by the per-user endpoints
// (features.RankByOutDegree is the single definition of the order, shared
// with eliteanalyze -features so batch bodies compare byte-for-byte).
func (d *dataset) ranking() ([]int32, []int, []int) {
	d.rankOnce.Do(func() {
		g := d.ds.Graph
		d.outDeg = g.OutDegrees()
		d.inDeg = g.InDegrees()
		d.byRank = features.RankByOutDegree(g)
	})
	return d.byRank, d.outDeg, d.inDeg
}

// --- request plumbing --------------------------------------------------------

// recorder captures the status code for metrics.
type recorder struct {
	http.ResponseWriter
	status int
}

func (rec *recorder) WriteHeader(code int) {
	if rec.status == 0 {
		rec.status = code
	}
	rec.ResponseWriter.WriteHeader(code)
}

func (rec *recorder) Write(b []byte) (int, error) {
	if rec.status == 0 {
		rec.status = http.StatusOK
	}
	return rec.ResponseWriter.Write(b)
}

// route mounts a handler with metrics, tracing and logging
// instrumentation under a stable route label (patterns with wildcards
// would explode series cardinality). The span continues any incoming
// traceparent, so a request proxied by eliterouter shares the router's
// trace id; its id becomes the latency histogram's exemplar.
func (s *Server) route(pattern, label string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &recorder{ResponseWriter: w}
		sp := s.cfg.Tracer.StartFromHeader(r.Header, "serve."+label)
		if sp != nil {
			sp.SetAttr("route", label)
			sp.SetAttr("path", r.URL.Path)
			r = r.WithContext(obs.ContextWithSpan(r.Context(), sp))
		}
		h(rec, r)
		code := rec.status
		if code == 0 {
			// Nothing written: the client went away mid-request.
			code = 499
		}
		dur := time.Since(start)
		traceID := ""
		if sp != nil {
			traceID = sp.TraceID().String()
			sp.SetAttrInt("status", code)
			sp.End()
		}
		s.met.observeRequest(label, code, dur, traceID)
		if lg := s.cfg.Logger; lg != nil {
			l := obs.WithSpan(lg, sp)
			l.Info("request",
				"route", label, "method", r.Method, "path", r.URL.Path,
				"status", code, "dur_ms", float64(dur.Microseconds())/1000)
			if s.cfg.SlowRequest > 0 && dur >= s.cfg.SlowRequest && sp != nil {
				l.Warn("slow request",
					"threshold", s.cfg.SlowRequest.String(),
					"span_tree", "\n"+obs.RenderTree(s.cfg.Tracer.TraceSpans(traceID)))
			}
		}
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// parseStages validates and canonicalizes a ?stages= selection: names must
// be known, and the result is deduplicated in canonical order so every
// spelling of the same subset coalesces onto one run (and one cache key).
func parseStages(raw string) ([]string, error) {
	if raw == "" {
		return nil, nil
	}
	want := map[string]bool{}
	for _, s := range strings.Split(raw, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		known := false
		for _, name := range core.StageNames() {
			if s == name {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("unknown stage %q (known: %s)", s, strings.Join(core.StageNames(), ","))
		}
		want[s] = true
	}
	if len(want) == 0 {
		return nil, nil
	}
	var out []string
	for _, name := range core.StageNames() {
		if want[name] {
			out = append(out, name)
		}
	}
	return out, nil
}

// reportKey is the coalescer/cache identity of one request class.
func (s *Server) reportKey(d *dataset, stages []string, format string) string {
	return fmt.Sprintf("%016x-%016x|stages=%s|format=%s",
		d.digest, s.optsDigest, strings.Join(stages, ","), format)
}

// --- draining ----------------------------------------------------------------

// ErrDraining is returned (and mapped to HTTP 503) when the server has been
// asked to drain: it finishes in-flight work but admits no new pipeline
// runs, so a fleet router can remove it gracefully.
var ErrDraining = errors.New("serve: server draining")

// Drain puts the server into draining mode: /healthz and /readyz turn 503,
// new pipeline work is refused with 503 + Retry-After, and in-flight
// requests and async jobs run to completion. Draining is one-way.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// WaitJobs blocks until every async job has finished or ctx expires, and
// returns the number of jobs still running at return — the jobs a shutdown
// at that moment would abandon.
func (s *Server) WaitJobs(ctx context.Context) (abandoned int) {
	for {
		n := s.jobs.running()
		if n == 0 {
			return 0
		}
		select {
		case <-ctx.Done():
			return s.jobs.running()
		case <-time.After(25 * time.Millisecond):
		}
	}
}

// retryAfterSeconds is the Retry-After value for shed (429) and draining
// (503) responses: equal jitter over a 2-second base (1s floor + uniform
// 0–1s) so a burst of simultaneously rejected clients doesn't come back in
// lockstep and re-trip admission all at once.
func (s *Server) retryAfterSeconds() int {
	s.jitterMu.Lock()
	defer s.jitterMu.Unlock()
	return 1 + s.jitter.Intn(2)
}

// --- run execution -----------------------------------------------------------

// runBattery is the single execution path every report-shaped request
// funnels into (through the coalescer): the admission gate, then the
// characterizer run with the request context threaded through, with run
// metrics recorded. Runs are always timed — Report.Timings is what tells
// the JSON views which value-typed sections actually executed, and it
// never reaches response bytes. On stage failure the partial report comes
// back alongside the error; callers decide whether it is servable
// (degradable).
func (s *Server) runBattery(ctx context.Context, d *dataset, stages []string, prog *progress) (*core.Report, error) {
	if s.draining.Load() {
		s.met.addDrainRejected()
		return nil, ErrDraining
	}
	adm := obs.SpanFromContext(ctx).Child("admit")
	if err := s.admit.acquire(ctx); err != nil {
		if errors.Is(err, ErrBusy) {
			s.met.addShed()
			adm.AddEvent("shed")
		}
		adm.End()
		return nil, err
	}
	adm.End()
	defer s.admit.release()

	opts := s.cfg.Options
	opts.Stages = stages
	opts.Timings = true
	opts.StageObserver = prog.observe
	s.met.runStarted()
	rep, err := core.NewCharacterizer(opts).RunContext(ctx, d.ds, d.activity)
	var cr *core.CacheReport
	if rep != nil {
		cr = rep.Cache
	}
	s.met.runFinished(cr, err != nil &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)))
	return rep, err
}

// degradable decides whether a failed run is still worth serving as a
// partial (degraded) report: there is a report to serve, the failure is not
// a cancellation (the client is gone, or the whole run was torn down — a
// partial body would be arbitrary, not degraded), and at least one stage
// actually produced a result.
func degradable(ctx context.Context, rep *core.Report, err error) bool {
	if rep == nil || ctx.Err() != nil ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	for _, tm := range rep.Timings {
		if tm.Err == nil && !tm.Skipped {
			return true
		}
	}
	return false
}

// writeDegradedBanner prefixes a degraded text report with the failed-stage
// summary, so plain-text consumers cannot mistake a partial report for a
// complete one.
func writeDegradedBanner(buf *bytes.Buffer, rep *core.Report) {
	failed := 0
	for _, tm := range rep.Timings {
		if tm.Err != nil {
			failed++
		}
	}
	fmt.Fprintf(buf, "!! DEGRADED REPORT: %d stage(s) failed\n", failed)
	for _, tm := range rep.Timings {
		if tm.Err != nil {
			fmt.Fprintf(buf, "!!   %s: %v\n", tm.Name, tm.Err)
		}
	}
	buf.WriteByte('\n')
}

// buildReport runs the battery and encodes the full-report body. A run
// where some stages failed but others completed encodes as a degraded
// body: JSON grows "degraded": true plus structured stage_errors entries,
// text gets the banner. Clean runs encode exactly as before, so a re-run
// after a fault clears is byte-identical to a never-faulted response.
func (s *Server) buildReport(ctx context.Context, d *dataset, stages []string, format string, prog *progress) (runOutcome, error) {
	rep, err := s.runBattery(ctx, d, stages, prog)
	if err != nil && !degradable(ctx, rep, err) {
		return runOutcome{}, err
	}
	degraded := err != nil
	switch format {
	case "text":
		var buf bytes.Buffer
		if degraded {
			writeDegradedBanner(&buf, rep)
		}
		rep.Render(&buf)
		return runOutcome{body: buf.Bytes(), degraded: degraded}, nil
	case "json", "":
		b, merr := json.MarshalIndent(core.NewReportView(rep), "", "  ")
		if merr != nil {
			return runOutcome{}, merr
		}
		return runOutcome{body: append(b, '\n'), degraded: degraded}, nil
	}
	return runOutcome{}, fmt.Errorf("serve: unknown format %q", format)
}

// writeOutcome writes a run's body, marking degraded responses with a
// Warning header and counting them, so clients and operators can tell a
// partial report from a complete one without parsing the body.
func (s *Server) writeOutcome(w http.ResponseWriter, format string, out runOutcome) {
	w.Header().Set("Content-Type", contentType(format))
	if out.degraded {
		w.Header().Set("Warning", `199 eliteserve "degraded: one or more stages failed"`)
		s.met.addDegraded()
	}
	w.Write(out.body)
}

// writeRunError maps run failures onto HTTP semantics.
func (s *Server) writeRunError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, "server busy: admission queue full")
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeError(w, http.StatusServiceUnavailable, "server draining: not admitting new work")
	case r.Context().Err() != nil:
		// The client is gone; nothing useful to write. The recorder logs
		// this as 499.
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "run exceeded deadline")
	default:
		writeError(w, http.StatusInternalServerError, "characterization failed: %v", err)
	}
}

func contentType(format string) string {
	if format == "text" {
		return "text/plain; charset=utf-8"
	}
	return "application/json"
}

// --- handlers ----------------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":       "draining",
			"datasets":     len(s.DatasetIDs()),
			"jobs_running": s.jobs.running(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"datasets": len(s.DatasetIDs()),
	})
}

// handleReadyz is the readiness half of the health surface: it reports
// whether this worker should receive new traffic, which is exactly "not
// draining". Liveness (/healthz) stays useful during a drain for operators
// watching the worker finish up.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// handleDrain (POST /v1/admin/drain) flips the server into draining mode
// for graceful removal from a fleet: health turns 503 so routers eject
// this worker, new pipeline work is refused, in-flight work finishes.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	s.Drain()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":       "draining",
		"jobs_running": s.jobs.running(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.met.serveExposition(w, r)
}

// handleDebugTraces serves the tracer's ring buffer (404 when tracing
// is disabled). See obs.(*Tracer).ServeTraces for the query parameters.
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	s.cfg.Tracer.ServeTraces(w, r)
}

// datasetInfo is the JSON row for dataset listings.
type datasetInfo struct {
	ID          string `json:"id"`
	Nodes       int    `json:"nodes"`
	Edges       int64  `json:"edges"`
	HasProfiles bool   `json:"has_profiles"`
	HasActivity bool   `json:"has_activity"`
	Source      string `json:"source,omitempty"`
	Digest      string `json:"digest"`
}

func (d *dataset) info() datasetInfo {
	return datasetInfo{
		ID: d.ID, Nodes: d.ds.Graph.NumNodes(), Edges: d.ds.Graph.NumEdges(),
		HasProfiles: len(d.ds.Profiles) > 0, HasActivity: d.activity != nil,
		Source: d.Source, Digest: fmt.Sprintf("%016x", d.digest),
	}
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	var infos []datasetInfo
	for _, id := range s.DatasetIDs() {
		d, _ := s.dataset(id)
		infos = append(infos, d.info())
	}
	writeJSON(w, http.StatusOK, map[string]any{"datasets": infos})
}

func (s *Server) handleDataset(w http.ResponseWriter, r *http.Request) {
	d, ok := s.dataset(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, d.info())
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	d, ok := s.dataset(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q", r.PathValue("id"))
		return
	}
	stages, err := parseStages(r.URL.Query().Get("stages"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	if format != "json" && format != "text" {
		writeError(w, http.StatusBadRequest, "unknown format %q (want json or text)", format)
		return
	}
	key := s.reportKey(d, stages, format)
	reqSpan := obs.SpanFromContext(r.Context())
	if body, ok := s.bodies.get(key); ok {
		s.met.addBodyHit()
		reqSpan.SetAttr("body_cache", "hit")
		w.Header().Set("Content-Type", contentType(format))
		w.Write(body)
		return
	}
	reqSpan.SetAttr("body_cache", "miss")
	run := func(ctx context.Context, prog *progress) (runOutcome, error) {
		// The coalescer hands fn a detached context; re-attach the leader
		// request's span so the pipeline spans land in its trace.
		return s.buildReport(obs.ContextWithSpan(ctx, reqSpan), d, stages, format, prog)
	}

	if s.cfg.AsyncAfter > 0 && r.Method == http.MethodPost {
		s.handleReportAsync(w, r, d, key, format, run)
		return
	}
	out, joined, err := s.flight.Do(r.Context(), key, run)
	if joined {
		s.met.addCoalesced()
	}
	if err != nil {
		s.writeRunError(w, r, err)
		return
	}
	if !out.degraded {
		s.bodies.put(key, out.body)
	}
	s.writeOutcome(w, format, out)
}

// handleReportAsync implements the 202 job model: wait up to the latency
// budget, then detach. The job is its own (never-cancelling) waiter, so
// the run continues after the client disconnects.
func (s *Server) handleReportAsync(w http.ResponseWriter, r *http.Request, d *dataset, key, format string, run func(context.Context, *progress) (runOutcome, error)) {
	j, created, err := s.jobs.getOrCreate(key, d.ID, format, time.Now())
	if err != nil {
		// A live job under the same content-addressed id belongs to a
		// different request identity (hash collision) — refuse rather
		// than hand this client that job's body.
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if created {
		go func() {
			out, joined, err := s.flight.Do(context.Background(), key,
				func(ctx context.Context, prog *progress) (runOutcome, error) {
					j.setProgress(prog)
					return run(ctx, prog)
				})
			if joined {
				s.met.addCoalesced()
			}
			if err == nil && !out.degraded {
				s.bodies.put(key, out.body)
			}
			j.finish(out, err)
		}()
	}
	budget := time.NewTimer(s.cfg.AsyncAfter)
	defer budget.Stop()
	select {
	case <-j.done:
		out, err, _ := j.result()
		if err != nil {
			s.writeRunError(w, r, err)
			return
		}
		s.writeOutcome(w, format, out)
	case <-budget.C:
		s.met.addJobQueued()
		writeJSON(w, http.StatusAccepted, map[string]string{
			"job_id":     j.ID,
			"status_url": "/v1/jobs/" + j.ID,
			"result_url": "/v1/jobs/" + j.ID + "/result",
		})
	case <-r.Context().Done():
		// Client gone; the job keeps running. Recorded as 499.
	}
}

func (s *Server) handleStage(w http.ResponseWriter, r *http.Request) {
	d, ok := s.dataset(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q", r.PathValue("id"))
		return
	}
	stage := r.PathValue("stage")
	stages, err := parseStages(stage)
	if err != nil || len(stages) != 1 {
		writeError(w, http.StatusBadRequest, "unknown stage %q (known: %s)",
			stage, strings.Join(core.StageNames(), ","))
		return
	}
	// The run must include every stage the view draws from (components'
	// servable projection is the summary table).
	runStages := core.ViewStages(stage)
	// The requested stage is part of the identity: the body names it, even
	// when two stages would share a run subset.
	key := s.reportKey(d, runStages, "stage:"+stage)
	reqSpan := obs.SpanFromContext(r.Context())
	if body, ok := s.bodies.get(key); ok {
		s.met.addBodyHit()
		reqSpan.SetAttr("body_cache", "hit")
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
		return
	}
	reqSpan.SetAttr("body_cache", "miss")
	out, joined, err := s.flight.Do(r.Context(), key, func(ctx context.Context, prog *progress) (runOutcome, error) {
		rep, rerr := s.runBattery(obs.ContextWithSpan(ctx, reqSpan), d, runStages, prog)
		if rerr != nil && !degradable(ctx, rep, rerr) {
			return runOutcome{}, rerr
		}
		frag, verr := core.StageView(rep, stage)
		if verr != nil {
			return runOutcome{}, verr
		}
		payload := map[string]any{
			"dataset": d.ID, "stage": stage, "result": frag,
		}
		if rerr != nil {
			payload["degraded"] = true
		}
		b, merr := json.MarshalIndent(payload, "", "  ")
		if merr != nil {
			return runOutcome{}, merr
		}
		return runOutcome{body: append(b, '\n'), degraded: rerr != nil}, nil
	})
	if joined {
		s.met.addCoalesced()
	}
	if err != nil {
		s.writeRunError(w, r, err)
		return
	}
	if !out.degraded {
		s.bodies.put(key, out.body)
	}
	s.writeOutcome(w, "json", out)
}

// userView is the per-user payload: degree ranking plus the §IV
// verification-feature metrics the related work motivates serving
// per-account. Profile is nil (omitted) only when the dataset carries no
// profiles at all — a false/zero profile value always serializes, so
// "not verified" is distinguishable from "no profile recorded".
type userView struct {
	Rank      int              `json:"rank"`
	Node      int              `json:"node"`
	OutDegree int              `json:"out_degree"`
	InDegree  int              `json:"in_degree"`
	Profile   *userProfileView `json:"profile,omitempty"`
}

// userProfileView is the profile half of a per-user response.
type userProfileView struct {
	ScreenName string `json:"screen_name"`
	Name       string `json:"name"`
	Category   string `json:"category"`
	Verified   bool   `json:"verified"`
	Followers  int64  `json:"followers"`
	Friends    int64  `json:"friends"`
	Listed     int64  `json:"listed"`
	Statuses   int64  `json:"statuses"`
	Bio        string `json:"bio,omitempty"`
}

func (s *Server) handleUser(w http.ResponseWriter, r *http.Request) {
	d, ok := s.dataset(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q", r.PathValue("id"))
		return
	}
	rank, err := strconv.Atoi(r.PathValue("rank"))
	if err != nil || rank < 1 {
		writeError(w, http.StatusBadRequest, "rank must be a positive integer, got %q", r.PathValue("rank"))
		return
	}
	byRank, outDeg, inDeg := d.ranking()
	if rank > len(byRank) {
		writeError(w, http.StatusNotFound, "rank %d out of range (dataset has %d users)", rank, len(byRank))
		return
	}
	node := int(byRank[rank-1])
	v := userView{
		Rank: rank, Node: node,
		OutDegree: outDeg[node], InDegree: inDeg[node],
	}
	if node < len(d.ds.Profiles) {
		p := d.ds.Profiles[node]
		v.Profile = &userProfileView{
			ScreenName: p.ScreenName,
			Name:       p.Name,
			Category:   p.Category.String(),
			Verified:   p.Verified,
			Followers:  p.Followers,
			Friends:    p.Friends,
			Listed:     p.Listed,
			Statuses:   p.Statuses,
			Bio:        p.Bio,
		}
	}
	writeJSON(w, http.StatusOK, v)
}

// jobStatus is the polling payload for async runs.
type jobStatus struct {
	ID         string       `json:"id"`
	Dataset    string       `json:"dataset"`
	State      string       `json:"state"` // running | done | failed
	Created    time.Time    `json:"created"`
	StagesDone int          `json:"stages_done"`
	Stages     []stageState `json:"stages,omitempty"`
	Error      string       `json:"error,omitempty"`
	ResultURL  string       `json:"result_url,omitempty"`
}

// stageState is one completed stage in a job's progress.
type stageState struct {
	Name       string  `json:"name"`
	DurationMS float64 `json:"duration_ms"`
	CacheHit   bool    `json:"cache_hit"`
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	st := jobStatus{ID: j.ID, Dataset: j.Dataset, Created: j.Created, State: "running"}
	if _, err, finished := j.result(); finished {
		if err != nil {
			st.State = "failed"
			st.Error = err.Error()
		} else {
			st.State = "done"
			st.ResultURL = "/v1/jobs/" + j.ID + "/result"
		}
	}
	timings := j.progressSnapshot()
	if len(timings) == 0 {
		// The job may have joined a run another request started; surface
		// that run's progress instead.
		if c, live := s.flight.peek(j.Key); live {
			timings = c.prog.snapshot()
		}
	}
	for _, tm := range timings {
		st.Stages = append(st.Stages, stageState{
			Name:       tm.Name,
			DurationMS: float64(tm.Duration.Microseconds()) / 1000,
			CacheHit:   tm.CacheHit,
		})
	}
	st.StagesDone = len(st.Stages)
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	out, err, finished := j.result()
	if !finished {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, "job %s still running", j.ID)
		return
	}
	if err != nil {
		s.writeRunError(w, r, err)
		return
	}
	s.writeOutcome(w, j.Format, out)
}
