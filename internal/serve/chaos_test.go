package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"elites/internal/faults"
)

// chaos_test.go drives the full HTTP server through the fault matrix: every
// injector kind crossed with the cold / warm / coalesced / async request
// paths. The invariants under every combination: the server never crashes,
// fault responses are either clean, structurally degraded (200 + Warning +
// "degraded": true), or structured errors — and the first clean request
// after the fault clears is byte-identical to a never-faulted body.

// chaosConfig builds a server config with its own cache dir and the given
// fault spec. The body memo is disabled so every request actually runs the
// battery (the fault schedule is per-run, and memoized bodies would mask
// later rule firings).
func chaosConfig(t *testing.T, spec string) Config {
	t.Helper()
	opts := fastServeOptions()
	opts.CacheDir = t.TempDir()
	cfg := Config{Options: opts, BodyCacheBytes: -1}
	if spec != "" {
		inj, err := faults.Parse(spec, 1)
		if err != nil {
			t.Fatalf("parse %q: %v", spec, err)
		}
		cfg.Options.Faults = inj
	}
	return cfg
}

// chaosResp is one captured response.
type chaosResp struct {
	code    int
	body    []byte
	warning string
}

func chaosDo(t *testing.T, ts *httptest.Server, method, path string) chaosResp {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return chaosResp{code: resp.StatusCode, body: buf.Bytes(), warning: resp.Header.Get("Warning")}
}

// degradedView is the slice of the JSON body the chaos assertions read.
type degradedView struct {
	Degraded    bool `json:"degraded"`
	StageErrors []struct {
		Stage   string `json:"stage"`
		Error   string `json:"error"`
		Panic   bool   `json:"panic"`
		Stack   string `json:"stack"`
		Skipped bool   `json:"skipped"`
	} `json:"stage_errors"`
}

func parseDegraded(t *testing.T, body []byte) degradedView {
	t.Helper()
	var v degradedView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("unmarshal report: %v", err)
	}
	return v
}

// chaosRef memoizes the never-faulted report body once per binary.
var (
	chaosRefOnce sync.Once
	chaosRefBody []byte
)

func referenceBody(t *testing.T) []byte {
	t.Helper()
	chaosRefOnce.Do(func() {
		s := newTestServer(t, chaosConfig(t, ""))
		ts := httptest.NewServer(s)
		defer ts.Close()
		r := chaosDo(t, ts, http.MethodGet, "/v1/datasets/demo/report")
		if r.code != http.StatusOK {
			t.Fatalf("reference run: %d %s", r.code, r.body)
		}
		chaosRefBody = r.body
	})
	return chaosRefBody
}

// assertClean checks a response is a complete, never-degraded report
// byte-identical to the reference.
func assertClean(t *testing.T, r chaosResp, ref []byte) {
	t.Helper()
	if r.code != http.StatusOK {
		t.Fatalf("clean request: code %d, body %s", r.code, r.body)
	}
	if r.warning != "" {
		t.Fatalf("clean request carries Warning %q", r.warning)
	}
	if !bytes.Equal(r.body, ref) {
		t.Fatalf("clean body diverges from the never-faulted reference\n got: %s\nwant: %s", r.body, ref)
	}
}

// assertDegraded checks a response is a 200 partial report with the Warning
// header, "degraded": true, and a structured error entry for wantStage.
func assertDegraded(t *testing.T, r chaosResp, wantStage string) degradedView {
	t.Helper()
	if r.code != http.StatusOK {
		t.Fatalf("degraded request: code %d, body %s", r.code, r.body)
	}
	if r.warning == "" {
		t.Fatal("degraded response missing Warning header")
	}
	v := parseDegraded(t, r.body)
	if !v.Degraded {
		t.Fatalf("body not marked degraded: %s", r.body)
	}
	for _, se := range v.StageErrors {
		if se.Stage == wantStage && se.Error != "" {
			return v
		}
	}
	t.Fatalf("no stage_errors entry for %q in %s", wantStage, r.body)
	return v
}

// TestChaosMatrix crosses every injector kind with every request path.
func TestChaosMatrix(t *testing.T) {
	ref := referenceBody(t)
	const report = "/v1/datasets/demo/report"

	injectors := []struct {
		name string
		spec string
		// expect is the faulted request's outcome: "degraded" (200 partial),
		// "clean" (the fault is absorbed), or "error" (structured 5xx).
		expect string
	}{
		{"stage-panic", "stage:degree=panic", "degraded"},
		{"stage-error", "stage:degree=error", "degraded"},
		{"stage-slow", "stage:degree=slow:delay=30ms", "clean"},
		{"cache-read-ioerror", "cache:read=ioerror:times=all", "clean"},
		{"cache-write-enospc", "cache:write=enospc:times=all", "clean"},
		{"stage-cancel", "stage:degree=cancel", "error"},
	}
	paths := []string{"cold", "warm", "coalesced", "async"}

	for _, inj := range injectors {
		for _, path := range paths {
			t.Run(inj.name+"/"+path, func(t *testing.T) {
				spec := inj.spec
				if path == "warm" && inj.expect != "clean" {
					// Let the warming run pass clean; the rule fires on the
					// second (warm-cache) run. Cache-op rules already fire
					// on every hit and are absorbed either way.
					spec += ":after=1"
				}
				cfg := chaosConfig(t, spec)
				if path == "async" {
					cfg.AsyncAfter = time.Nanosecond
				}
				s := newTestServer(t, cfg)
				ts := httptest.NewServer(s)
				defer ts.Close()

				if path == "warm" {
					// Warming run: clean either way — stage rules hold fire
					// until the second run (after=1), cache rules fire but
					// are absorbed.
					assertClean(t, chaosDo(t, ts, http.MethodGet, report), ref)
				}

				checkFaulted := func(r chaosResp) {
					switch inj.expect {
					case "degraded":
						assertDegraded(t, r, "degree")
					case "clean":
						assertClean(t, r, ref)
					case "error":
						if r.code != http.StatusInternalServerError {
							t.Fatalf("cancel injection: code %d, body %s", r.code, r.body)
						}
						var e map[string]string
						if err := json.Unmarshal(r.body, &e); err != nil || e["error"] == "" {
							t.Fatalf("cancel error body not structured: %s", r.body)
						}
					}
				}

				switch path {
				case "cold", "warm":
					checkFaulted(chaosDo(t, ts, http.MethodGet, report))
				case "coalesced":
					const n = 4
					resps := make([]chaosResp, n)
					var wg sync.WaitGroup
					for i := 0; i < n; i++ {
						i := i
						wg.Add(1)
						go func() {
							defer wg.Done()
							resps[i] = chaosDo(t, ts, http.MethodGet, report)
						}()
					}
					wg.Wait()
					// Exactly one run fires the (times=1) fault; every
					// response is either that run's outcome or a clean
					// straggler. At least one response must carry the fault.
					faulted := 0
					for _, r := range resps {
						switch {
						case inj.expect == "clean":
							assertClean(t, r, ref)
							faulted++ // the fault is absorbed into every clean body
						case r.code == http.StatusOK && r.warning == "":
							assertClean(t, r, ref)
						default:
							checkFaulted(r)
							faulted++
						}
					}
					if faulted == 0 {
						t.Fatal("no response observed the injected fault")
					}
				case "async":
					r := chaosDo(t, ts, http.MethodPost, report)
					if r.code == http.StatusAccepted {
						var acc struct {
							JobID string `json:"job_id"`
						}
						if err := json.Unmarshal(r.body, &acc); err != nil || acc.JobID == "" {
							t.Fatalf("202 body: %s", r.body)
						}
						r = pollJobResult(t, ts, acc.JobID)
					}
					checkFaulted(r)
				}

				// The fault window is spent (or absorbed): the next request
				// must serve the full clean report, byte-identical to a
				// never-faulted server's.
				assertClean(t, chaosDo(t, ts, http.MethodGet, report), ref)
				if inj.expect == "degraded" && s.met.degradedTotal() == 0 {
					t.Fatal("eliteserve_degraded_total not incremented")
				}
			})
		}
	}
}

// pollJobResult waits for an async job to finish and fetches its result.
func pollJobResult(t *testing.T, ts *httptest.Server, jobID string) chaosResp {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := chaosDo(t, ts, http.MethodGet, "/v1/jobs/"+jobID)
		if st.code != http.StatusOK {
			t.Fatalf("job status: %d %s", st.code, st.body)
		}
		var v struct {
			State string `json:"state"`
		}
		if err := json.Unmarshal(st.body, &v); err != nil {
			t.Fatal(err)
		}
		if v.State != "running" {
			return chaosDo(t, ts, http.MethodGet, "/v1/jobs/"+jobID+"/result")
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosPanicThroughCoalescerWithWaiters panics a real battery stage
// while concurrent waiters share the run through the coalescer: the server
// must survive, every waiter of the panicked run gets the same degraded
// body with a typed panic entry (stage, panic flag, captured stack), and
// the next clean request is byte-identical to the never-faulted reference.
func TestChaosPanicThroughCoalescerWithWaiters(t *testing.T) {
	ref := referenceBody(t)
	const report = "/v1/datasets/demo/report"
	s := newTestServer(t, chaosConfig(t, "stage:centrality=panic"))
	ts := httptest.NewServer(s)
	defer ts.Close()

	const n = 8
	resps := make([]chaosResp, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resps[i] = chaosDo(t, ts, http.MethodGet, report)
		}()
	}
	wg.Wait()

	var degraded []chaosResp
	for _, r := range resps {
		if r.code != http.StatusOK {
			t.Fatalf("waiter got %d: %s", r.code, r.body)
		}
		if r.warning != "" {
			degraded = append(degraded, r)
		} else {
			assertClean(t, r, ref)
		}
	}
	if len(degraded) == 0 {
		t.Fatal("no waiter observed the panicked run")
	}
	for i, r := range degraded {
		v := assertDegraded(t, r, "centrality")
		found := false
		for _, se := range v.StageErrors {
			if se.Stage == "centrality" {
				found = true
				if !se.Panic {
					t.Fatalf("centrality entry not marked panic: %s", r.body)
				}
				if se.Stack == "" {
					t.Fatal("panic entry missing captured stack")
				}
			}
		}
		if !found {
			t.Fatal("no centrality stage_errors entry")
		}
		if !bytes.Equal(r.body, degraded[0].body) {
			t.Fatalf("degraded waiter %d body diverges from waiter 0", i)
		}
	}

	// Fault window spent: the server recovers to clean, byte-identical
	// bodies with no restart.
	assertClean(t, chaosDo(t, ts, http.MethodGet, report), ref)
	if got := s.met.degradedTotal(); got == 0 {
		t.Fatal("eliteserve_degraded_total not incremented")
	}
}

// TestChaosStageRetrySucceedsTransiently: with a per-stage retry policy, a
// rule that fails the degree stage exactly once is absorbed — the response
// is clean and the retry is invisible to the client.
func TestChaosStageRetryAbsorbsTransientFault(t *testing.T) {
	ref := referenceBody(t)
	cfg := chaosConfig(t, "stage:degree=error")
	cfg.Options.StageRetries = 2
	cfg.Options.StageRetryBackoff = time.Millisecond
	s := newTestServer(t, cfg)
	ts := httptest.NewServer(s)
	defer ts.Close()
	assertClean(t, chaosDo(t, ts, http.MethodGet, "/v1/datasets/demo/report"), ref)
	if inj := cfg.Options.Faults; inj.Fired("stage:degree") != 1 {
		t.Fatalf("fault fired %d times, want 1", inj.Fired("stage:degree"))
	}
}

// TestChaosMetricsExposition: a degraded run surfaces in /metrics as
// eliteserve_degraded_total.
func TestChaosMetricsExposition(t *testing.T) {
	s := newTestServer(t, chaosConfig(t, "stage:degree=error"))
	ts := httptest.NewServer(s)
	defer ts.Close()
	r := chaosDo(t, ts, http.MethodGet, "/v1/datasets/demo/report")
	assertDegraded(t, r, "degree")
	m := chaosDo(t, ts, http.MethodGet, "/metrics")
	if m.code != http.StatusOK {
		t.Fatalf("/metrics: %d", m.code)
	}
	if !bytes.Contains(m.body, []byte("eliteserve_degraded_total 1")) {
		t.Fatalf("exposition missing eliteserve_degraded_total 1:\n%s",
			firstMatchingLines(m.body, "eliteserve_degraded"))
	}
}

// firstMatchingLines extracts exposition lines containing substr, for
// failure messages.
func firstMatchingLines(body []byte, substr string) string {
	var out bytes.Buffer
	for _, line := range bytes.Split(body, []byte("\n")) {
		if bytes.Contains(line, []byte(substr)) {
			fmt.Fprintf(&out, "%s\n", line)
		}
	}
	return out.String()
}
