package serve

import (
	"context"
	"errors"
	"sync"

	"elites/internal/obs"
)

// coalesce.go is the server's single-flight layer: N identical concurrent
// requests — same (dataset digest, options digest) identity the result
// cache keys on — trigger exactly one pipeline run and share its encoded
// body. Unlike a plain singleflight, each in-flight run owns a context
// that is cancelled only when its last remaining waiter abandons, so a
// popular run survives individual disconnects but a run nobody is waiting
// for stops burning workers at the next stage boundary.

// runOutcome is what one coalesced execution produces: the encoded response
// body plus whether it is a degraded (partial) report. Degraded bodies flow
// to every waiter of the faulted run but are never memoized, so the first
// request after the fault clears re-runs and serves clean bytes.
type runOutcome struct {
	body     []byte
	degraded bool
}

// flight deduplicates concurrent executions by key.
type flight struct {
	mu    sync.Mutex
	calls map[string]*call
}

// call is one in-flight (or just-finished) execution.
type call struct {
	waiters int                // live waiters; last one out cancels the run
	cancel  context.CancelFunc // cancels the run's context
	done    chan struct{}      // closed after out/err are set
	out     runOutcome
	err     error
	prog    *progress // live per-stage progress, shared with job status
	traceID string    // the creator request's trace id; joiners link to it
}

func newFlight() *flight {
	return &flight{calls: map[string]*call{}}
}

// Do returns the body produced by fn for key, starting fn in a new
// goroutine if no identical execution is in flight, otherwise joining the
// existing one. fn receives a context that is cancelled when every waiter
// for this key has gone away; it must return promptly after that.
//
// The joined return reports whether this caller shared another caller's
// run. When the caller's own ctx is cancelled the call returns ctx.Err()
// immediately (the run keeps going for any remaining waiters). A joiner
// that receives a cancellation error from a run its own context did not
// cause (it piled onto a call whose waiters all left) retries on a fresh
// call rather than failing spuriously.
func (f *flight) Do(ctx context.Context, key string, fn func(context.Context, *progress) (runOutcome, error)) (out runOutcome, joined bool, err error) {
	for {
		f.mu.Lock()
		c, ok := f.calls[key]
		if !ok {
			runCtx, cancel := context.WithCancel(context.Background())
			c = &call{cancel: cancel, done: make(chan struct{}), prog: newProgress(),
				traceID: obs.TraceIDFromContext(ctx)}
			f.calls[key] = c
			go func() {
				o, e := fn(runCtx, c.prog)
				c.out, c.err = o, e
				// Remove from the map before signalling completion so a
				// retrying waiter is guaranteed a fresh call.
				f.mu.Lock()
				delete(f.calls, key)
				f.mu.Unlock()
				close(c.done)
				cancel()
			}()
		}
		c.waiters++
		leaderTrace := c.traceID
		f.mu.Unlock()

		if ok {
			// Joined another request's run: record the causality on this
			// request's span as a link to the leader's trace.
			if sp := obs.SpanFromContext(ctx); sp != nil && leaderTrace != sp.TraceID().String() {
				if id, idOK := obs.ParseTraceID(leaderTrace); idOK {
					sp.AddLink(id)
				}
				sp.AddEvent("coalesced", "leader_trace", leaderTrace)
			}
		}

		select {
		case <-c.done:
			if ok && c.err != nil && errors.Is(c.err, context.Canceled) && ctx.Err() == nil {
				// We joined a run that was cancelled by *other* waiters
				// leaving; our request is still live, so run it afresh.
				continue
			}
			return c.out, ok, c.err
		case <-ctx.Done():
			f.mu.Lock()
			c.waiters--
			if c.waiters == 0 {
				c.cancel()
			}
			f.mu.Unlock()
			return runOutcome{}, ok, ctx.Err()
		}
	}
}

// peek returns the in-flight call for key, if any — the job layer uses it
// to surface live progress.
func (f *flight) peek(key string) (*call, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.calls[key]
	return c, ok
}
