package serve

import (
	"io"
	"net/http"
	"strconv"
	"time"

	"elites/internal/core"
	"elites/internal/obs"
)

// metrics.go exposes the server's traffic through the shared
// obs.Registry: request counts by route and status, a request latency
// histogram (with trace-id exemplars in the OpenMetrics render),
// pipeline-run accounting (started, coalesced, shed, cancelled) and the
// stage-result-cache traffic accumulated from each run's Report.Cache —
// the hit ratio there is the number that tells an operator whether warm
// traffic is actually being served from cache. Every metric name and
// the classic text render are unchanged from the pre-registry emitter.

type metrics struct {
	reg *obs.Registry

	requests *obs.CounterVec
	latency  *obs.Histogram

	runs          *obs.Counter // pipeline runs actually started
	coalesced     *obs.Counter // requests served by piggybacking on another's run
	shed          *obs.Counter // requests rejected 429 by admission
	cancelled     *obs.Counter // runs abandoned via context
	jobsQueued    *obs.Counter // 202 responses handed out
	bodyHits      *obs.Counter // requests served straight from the encoded-body memo
	degraded      *obs.Counter // degraded (partial-report) responses served
	drainRejected *obs.Counter // pipeline work refused 503 while draining
	shardHits     *obs.Counter // feature requests answered from precomputed shards
	cacheHits     *obs.Counter // stage-level, summed from Report.Cache
	cacheMisses   *obs.Counter
}

func newMetrics(now time.Time) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{reg: reg}

	reg.GaugeFunc("eliteserve_uptime_seconds", "Time since the server started.", 3,
		func() float64 { return time.Since(now).Seconds() })
	m.requests = reg.CounterVec("eliteserve_requests_total",
		"HTTP requests by route and status code.", "route", "code")
	m.latency = reg.Histogram("eliteserve_request_duration_seconds",
		"HTTP request latency.", obs.DefaultLatencyBuckets)

	m.runs = reg.Counter("eliteserve_runs_total", "Characterization pipeline runs started.")
	m.coalesced = reg.Counter("eliteserve_coalesced_requests_total", "Requests served by joining another request's in-flight run.")
	m.shed = reg.Counter("eliteserve_shed_requests_total", "Requests rejected with 429 by the admission queue.")
	m.cancelled = reg.Counter("eliteserve_cancelled_runs_total", "Runs cancelled because every waiter abandoned.")
	m.jobsQueued = reg.Counter("eliteserve_jobs_queued_total", "Async job (202) responses issued.")
	m.bodyHits = reg.Counter("eliteserve_body_cache_hits_total", "Requests served straight from the encoded-body memo, no pipeline run.")
	m.degraded = reg.Counter("eliteserve_degraded_total", "Degraded (partial-report) responses served after stage failures.")
	m.drainRejected = reg.Counter("eliteserve_draining_rejected_total", "Pipeline work refused with 503 while the server was draining.")
	m.shardHits = reg.Counter("eliteserve_feature_shard_hits_total", "Per-user feature requests served from precomputed shards, no pipeline run.")
	m.cacheHits = reg.Counter("eliteserve_stage_cache_hits_total", "Pipeline stages hydrated from the result cache.")
	m.cacheMisses = reg.Counter("eliteserve_stage_cache_misses_total", "Cache-eligible pipeline stages that had to compute.")

	reg.GaugeFunc("eliteserve_stage_cache_hit_ratio", "Stage-result-cache hit ratio since start.", 4,
		func() float64 {
			hits, misses := m.cacheHits.Value(), m.cacheMisses.Value()
			if t := hits + misses; t > 0 {
				return float64(hits) / float64(t)
			}
			return 0
		})
	return m
}

// observeRequest records one finished request; traceID, when non-empty,
// becomes the latency bucket's exemplar.
func (m *metrics) observeRequest(route string, code int, d time.Duration, traceID string) {
	m.requests.Inc(route, itoa3(code))
	m.latency.ObserveExemplar(d.Seconds(), traceID)
}

func (m *metrics) runStarted() { m.runs.Inc() }

func (m *metrics) runFinished(cr *core.CacheReport, cancelled bool) {
	if cancelled {
		m.cancelled.Inc()
	}
	if cr != nil {
		m.cacheHits.Add(uint64(len(cr.Hits)))
		m.cacheMisses.Add(uint64(len(cr.Misses)))
	}
}

func (m *metrics) addCoalesced() { m.coalesced.Inc() }
func (m *metrics) addShed()      { m.shed.Inc() }
func (m *metrics) addJobQueued() { m.jobsQueued.Inc() }
func (m *metrics) addBodyHit()   { m.bodyHits.Inc() }

func (m *metrics) addFeatureShardHit() { m.shardHits.Inc() }
func (m *metrics) addDegraded()        { m.degraded.Inc() }
func (m *metrics) addDrainRejected()   { m.drainRejected.Inc() }

// degradedTotal is the degraded-response count, for tests.
func (m *metrics) degradedTotal() uint64 { return m.degraded.Value() }

// counters snapshots values used by tests.
func (m *metrics) counters() (runs, coalesced, shed uint64) {
	return m.runs.Value(), m.coalesced.Value(), m.shed.Value()
}

// featureShardHits is the shard-served feature request count, for tests.
func (m *metrics) featureShardHits() uint64 { return m.shardHits.Value() }

// write renders the exposition in the requested flavor.
func (m *metrics) write(w io.Writer, om bool) { m.reg.Write(w, om) }

// serveExposition renders /metrics with Accept-negotiated flavor:
// classic 0.0.4 by default, OpenMetrics with exemplars on request.
func (m *metrics) serveExposition(w http.ResponseWriter, r *http.Request) {
	ct, om := obs.NegotiateExposition(r.Header)
	w.Header().Set("Content-Type", ct)
	m.write(w, om)
}

// itoa3 formats an HTTP status code without fmt in the request path.
func itoa3(code int) string {
	if code >= 100 && code < 1000 {
		return string([]byte{byte('0' + code/100), byte('0' + code/10%10), byte('0' + code%10)})
	}
	return strconv.Itoa(code)
}
