package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"elites/internal/core"
)

// metrics.go is a dependency-free Prometheus-text-format exposition of the
// server's traffic: request counts by route and status, a request latency
// histogram, pipeline-run accounting (started, coalesced, shed, cancelled)
// and the stage-result-cache traffic accumulated from each run's
// Report.Cache — the hit ratio there is the number that tells an operator
// whether warm traffic is actually being served from cache.

// latencyBuckets are the histogram upper bounds, in seconds.
var latencyBuckets = []float64{
	0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// reqKey labels one requests-counter series.
type reqKey struct {
	route string
	code  int
}

type metrics struct {
	mu       sync.Mutex
	started  time.Time
	requests map[reqKey]uint64

	latCounts []uint64 // len(latencyBuckets)+1; last slot is +Inf
	latSum    float64
	latCount  uint64

	runs          uint64 // pipeline runs actually started
	coalesced     uint64 // requests served by piggybacking on another's run
	shed          uint64 // requests rejected 429 by admission
	cancelled     uint64 // runs abandoned via context
	jobsQueued    uint64 // 202 responses handed out
	bodyHits      uint64 // requests served straight from the encoded-body memo
	shardHits     uint64 // feature requests answered from precomputed shards
	degraded      uint64 // degraded (partial-report) responses served
	drainRejected uint64 // pipeline work refused 503 while draining

	cacheHits   uint64 // stage-level, summed from Report.Cache
	cacheMisses uint64
}

func newMetrics(now time.Time) *metrics {
	return &metrics{
		started:   now,
		requests:  map[reqKey]uint64{},
		latCounts: make([]uint64, len(latencyBuckets)+1),
	}
}

func (m *metrics) observeRequest(route string, code int, d time.Duration) {
	sec := d.Seconds()
	m.mu.Lock()
	m.requests[reqKey{route, code}]++
	i := sort.SearchFloat64s(latencyBuckets, sec)
	m.latCounts[i]++
	m.latSum += sec
	m.latCount++
	m.mu.Unlock()
}

func (m *metrics) runStarted() {
	m.mu.Lock()
	m.runs++
	m.mu.Unlock()
}

func (m *metrics) runFinished(cr *core.CacheReport, cancelled bool) {
	m.mu.Lock()
	if cancelled {
		m.cancelled++
	}
	if cr != nil {
		m.cacheHits += uint64(len(cr.Hits))
		m.cacheMisses += uint64(len(cr.Misses))
	}
	m.mu.Unlock()
}

func (m *metrics) addCoalesced() { m.mu.Lock(); m.coalesced++; m.mu.Unlock() }
func (m *metrics) addShed()      { m.mu.Lock(); m.shed++; m.mu.Unlock() }
func (m *metrics) addJobQueued() { m.mu.Lock(); m.jobsQueued++; m.mu.Unlock() }
func (m *metrics) addBodyHit()   { m.mu.Lock(); m.bodyHits++; m.mu.Unlock() }

func (m *metrics) addFeatureShardHit() { m.mu.Lock(); m.shardHits++; m.mu.Unlock() }
func (m *metrics) addDegraded()        { m.mu.Lock(); m.degraded++; m.mu.Unlock() }
func (m *metrics) addDrainRejected()   { m.mu.Lock(); m.drainRejected++; m.mu.Unlock() }

// degradedTotal is the degraded-response count, for tests.
func (m *metrics) degradedTotal() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.degraded
}

// snapshot values used by tests.
func (m *metrics) counters() (runs, coalesced, shed uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.runs, m.coalesced, m.shed
}

// featureShardHits is the shard-served feature request count, for tests.
func (m *metrics) featureShardHits() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.shardHits
}

// write renders the exposition. Metric names follow Prometheus
// conventions; everything is a counter or gauge plus one histogram.
func (m *metrics) write(w io.Writer, now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP eliteserve_uptime_seconds Time since the server started.\n")
	fmt.Fprintf(w, "# TYPE eliteserve_uptime_seconds gauge\n")
	fmt.Fprintf(w, "eliteserve_uptime_seconds %.3f\n", now.Sub(m.started).Seconds())

	fmt.Fprintf(w, "# HELP eliteserve_requests_total HTTP requests by route and status code.\n")
	fmt.Fprintf(w, "# TYPE eliteserve_requests_total counter\n")
	keys := make([]reqKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].route != keys[j].route {
			return keys[i].route < keys[j].route
		}
		return keys[i].code < keys[j].code
	})
	for _, k := range keys {
		fmt.Fprintf(w, "eliteserve_requests_total{route=%q,code=\"%d\"} %d\n", k.route, k.code, m.requests[k])
	}

	fmt.Fprintf(w, "# HELP eliteserve_request_duration_seconds HTTP request latency.\n")
	fmt.Fprintf(w, "# TYPE eliteserve_request_duration_seconds histogram\n")
	cum := uint64(0)
	for i, ub := range latencyBuckets {
		cum += m.latCounts[i]
		fmt.Fprintf(w, "eliteserve_request_duration_seconds_bucket{le=\"%g\"} %d\n", ub, cum)
	}
	cum += m.latCounts[len(latencyBuckets)]
	fmt.Fprintf(w, "eliteserve_request_duration_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "eliteserve_request_duration_seconds_sum %.6f\n", m.latSum)
	fmt.Fprintf(w, "eliteserve_request_duration_seconds_count %d\n", m.latCount)

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("eliteserve_runs_total", "Characterization pipeline runs started.", m.runs)
	counter("eliteserve_coalesced_requests_total", "Requests served by joining another request's in-flight run.", m.coalesced)
	counter("eliteserve_shed_requests_total", "Requests rejected with 429 by the admission queue.", m.shed)
	counter("eliteserve_cancelled_runs_total", "Runs cancelled because every waiter abandoned.", m.cancelled)
	counter("eliteserve_jobs_queued_total", "Async job (202) responses issued.", m.jobsQueued)
	counter("eliteserve_body_cache_hits_total", "Requests served straight from the encoded-body memo, no pipeline run.", m.bodyHits)
	counter("eliteserve_degraded_total", "Degraded (partial-report) responses served after stage failures.", m.degraded)
	counter("eliteserve_draining_rejected_total", "Pipeline work refused with 503 while the server was draining.", m.drainRejected)
	counter("eliteserve_feature_shard_hits_total", "Per-user feature requests served from precomputed shards, no pipeline run.", m.shardHits)
	counter("eliteserve_stage_cache_hits_total", "Pipeline stages hydrated from the result cache.", m.cacheHits)
	counter("eliteserve_stage_cache_misses_total", "Cache-eligible pipeline stages that had to compute.", m.cacheMisses)

	ratio := 0.0
	if t := m.cacheHits + m.cacheMisses; t > 0 {
		ratio = float64(m.cacheHits) / float64(t)
	}
	fmt.Fprintf(w, "# HELP eliteserve_stage_cache_hit_ratio Stage-result-cache hit ratio since start.\n")
	fmt.Fprintf(w, "# TYPE eliteserve_stage_cache_hit_ratio gauge\n")
	fmt.Fprintf(w, "eliteserve_stage_cache_hit_ratio %.4f\n", ratio)
}
