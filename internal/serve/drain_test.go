package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestDrainRefusesNewWork: a drained server turns its health surface red,
// refuses new pipeline runs with 503 + Retry-After, and counts the
// rejections — but keeps answering cheap reads (datasets, metrics).
func TestDrainRefusesNewWork(t *testing.T) {
	s := newTestServer(t, Config{Options: fastServeOptions()})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Drain via the admin endpoint (the fleet's graceful-removal path).
	resp, err := ts.Client().Post(ts.URL+"/v1/admin/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !s.Draining() {
		t.Fatalf("drain: %d, Draining=%v", resp.StatusCode, s.Draining())
	}

	if code, body := get(t, ts, "/healthz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(string(body), "draining") {
		t.Fatalf("healthz after drain: %d %s", code, body)
	}
	if code, _ := get(t, ts, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain: %d", code)
	}

	resp, err = ts.Client().Get(ts.URL + "/v1/datasets/demo/report?stages=summary")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("report while draining: %d, want 503", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 2 {
		t.Fatalf("Retry-After = %q, want jittered 1..2", resp.Header.Get("Retry-After"))
	}

	if code, _ := get(t, ts, "/v1/datasets"); code != http.StatusOK {
		t.Fatalf("dataset listing while draining: %d, want 200", code)
	}
	code, body := get(t, ts, "/metrics")
	if code != http.StatusOK || !strings.Contains(string(body), "eliteserve_draining_rejected_total 1") {
		t.Fatalf("metrics after drained rejection: %d\n%s", code, body)
	}
}

// TestRetryAfterEqualJitter: the shed/draining Retry-After is 1 or 2
// seconds (equal jitter over a 2s base) and actually varies, so
// synchronized clients spread their retries.
func TestRetryAfterEqualJitter(t *testing.T) {
	s := New(Config{Options: fastServeOptions()})
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		v := s.retryAfterSeconds()
		if v < 1 || v > 2 {
			t.Fatalf("retryAfterSeconds = %d, want 1..2", v)
		}
		seen[v] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("jitter never varied: %v", seen)
	}
}

// TestWaitJobsReportsAbandoned: WaitJobs returns 0 once every async job
// finishes, and the count of still-running jobs when the budget expires
// first.
func TestWaitJobsReportsAbandoned(t *testing.T) {
	s := newTestServer(t, Config{Options: fastServeOptions(), AsyncAfter: time.Millisecond})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// With no jobs, WaitJobs returns immediately.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if n := s.WaitJobs(ctx); n != 0 {
		t.Fatalf("WaitJobs on idle server = %d, want 0", n)
	}

	// Kick off a cold async run, then immediately wait with a zero budget:
	// the job is still running, so it counts as abandoned.
	resp, err := ts.Client().Post(ts.URL+"/v1/datasets/demo/report", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async POST: %d, want 202", resp.StatusCode)
	}
	expired, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if n := s.WaitJobs(expired); n != 1 {
		t.Fatalf("WaitJobs with expired budget = %d, want 1 abandoned", n)
	}

	// A generous budget drains cleanly.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel2()
	if n := s.WaitJobs(ctx2); n != 0 {
		t.Fatalf("WaitJobs = %d abandoned, want 0", n)
	}
}
