package serve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"elites/internal/obs"
)

// trace_test.go pins the server half of the tracing contract: an
// incoming traceparent header continues the caller's trace through
// admission, cache lookup and the per-stage pipeline spans; coalesced
// joiners link to the leader run's trace; and /metrics (which the same
// obs.Registry now renders) stays valid classic exposition with the
// pre-existing metric names. Run under -race by CI.

func newTraceServer(t *testing.T, tr *obs.Tracer) *Server {
	t.Helper()
	cfg := Config{
		Options:       fastServeOptions(),
		MaxConcurrent: 2,
		MaxQueue:      8,
		Tracer:        tr,
	}
	return newTestServer(t, cfg)
}

// TestTraceContinuesFromHeader: a request carrying a traceparent header
// yields serve.report, pipeline and stage.* spans all under the remote
// trace id, with cache attrs on the stage spans.
func TestTraceContinuesFromHeader(t *testing.T) {
	tr := obs.NewTracer(obs.TracerConfig{Name: "worker", Seed: 3})
	s := newTraceServer(t, tr)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// A remote "router" span supplies the inbound header.
	remote := obs.NewTracer(obs.TracerConfig{Name: "router", Seed: 4})
	root := remote.Root("router.request")
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/datasets/demo/report?stages=summary", nil)
	obs.InjectHeader(req.Header, root)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report: %d", resp.StatusCode)
	}
	root.End()

	want := root.TraceID().String()
	spans := tr.TraceSpans(want)
	names := map[string]obs.SpanRecord{}
	for _, rec := range spans {
		names[rec.Name] = rec
	}
	for _, n := range []string{"serve.report", "admit", "pipeline", "stage.summary"} {
		if _, ok := names[n]; !ok {
			t.Fatalf("trace %s missing span %q; have %v", want, n, spanNames(spans))
		}
	}
	if got := names["serve.report"].Attrs["status"]; got != "200" {
		t.Fatalf("serve.report status attr = %q", got)
	}
	if got := names["serve.report"].Attrs["body_cache"]; got != "miss" {
		t.Fatalf("cold request body_cache attr = %q, want miss", got)
	}
	if got := names["stage.summary"].Attrs["cache_hit"]; got != "false" {
		t.Fatalf("cold stage cache_hit attr = %q, want false", got)
	}
	// The serve.report span must parent under the remote root.
	if names["serve.report"].Parent != root.SpanID().String() {
		t.Fatalf("serve.report parent = %s, want %s", names["serve.report"].Parent, root.SpanID())
	}

	// Warm re-request in a fresh trace: served from the body memo, so the
	// span records the hit and no pipeline span appears.
	root2 := remote.Root("router.request")
	req2, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/datasets/demo/report?stages=summary", nil)
	obs.InjectHeader(req2.Header, root2)
	resp2, err := ts.Client().Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	warm := tr.TraceSpans(root2.TraceID().String())
	if len(warm) == 0 {
		t.Fatal("warm request recorded no spans")
	}
	for _, rec := range warm {
		if rec.Name == "serve.report" && rec.Attrs["body_cache"] != "hit" {
			t.Fatalf("warm serve.report body_cache = %q, want hit", rec.Attrs["body_cache"])
		}
		if rec.Name == "pipeline" {
			t.Fatal("warm request ran the pipeline")
		}
	}
}

// TestDebugTracesEndpoint: the handler is routed and span counts cover
// the stages executed (the CI smoke asserts the same bound end to end).
func TestDebugTracesEndpoint(t *testing.T) {
	tr := obs.NewTracer(obs.TracerConfig{Name: "worker", Seed: 3})
	s := newTraceServer(t, tr)
	ts := httptest.NewServer(s)
	defer ts.Close()

	if code, _ := get(t, ts, "/v1/datasets/demo/report?stages=summary,degree"); code != http.StatusOK {
		t.Fatalf("report: %d", code)
	}
	code, body := get(t, ts, "/debug/traces")
	if code != http.StatusOK {
		t.Fatalf("/debug/traces: %d", code)
	}
	// 2 stages ran; the trace must hold at least serve.report + admit +
	// pipeline + one span per stage.
	if got := strings.Count(string(body), `"span"`); got < 5 {
		t.Fatalf("debug/traces has %d spans, want >= 5:\n%s", got, body)
	}
	for _, want := range []string{"stage.summary", "stage.degree", "serve.report"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("debug/traces missing %q", want)
		}
	}
}

// TestNoTracerDebugTraces404s: without a tracer the endpoint reports
// tracing disabled rather than an empty trace list.
func TestNoTracerDebugTraces404s(t *testing.T) {
	s := newTestServer(t, Config{Options: fastServeOptions(), MaxConcurrent: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()
	if code, _ := get(t, ts, "/debug/traces"); code != http.StatusNotFound {
		t.Fatalf("/debug/traces without tracer: %d, want 404", code)
	}
}

// TestCoalescedJoinerLinksLeader: a request that joins another request's
// in-flight run records the leader's trace id as a span link plus a
// "coalesced" event — the cross-trace causality /debug/traces exposes.
func TestCoalescedJoinerLinksLeader(t *testing.T) {
	tr := obs.NewTracer(obs.TracerConfig{Name: "worker", Seed: 3})
	f := newFlight()

	leader := tr.Root("serve.report")
	joiner := tr.Root("serve.report")
	release := make(chan struct{})
	fn := func(ctx context.Context, _ *progress) (runOutcome, error) {
		<-release
		return runOutcome{body: []byte("b")}, nil
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		f.Do(obs.ContextWithSpan(context.Background(), leader), "k", fn)
	}()
	// Wait for the leader's call to be registered, then join.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := f.peek("k"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leader call never registered")
		}
		time.Sleep(time.Millisecond)
	}
	var joined bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, joined, _ = f.Do(obs.ContextWithSpan(context.Background(), joiner), "k", fn)
	}()
	// Wait for the joiner to register, then let the run finish. The link
	// is recorded before Do blocks on the run, so after wg.Wait() it is
	// guaranteed to be on the span.
	for {
		if c, ok := f.peek("k"); ok {
			f.mu.Lock()
			w := c.waiters
			f.mu.Unlock()
			if w == 2 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("joiner never registered")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if !joined {
		t.Fatal("second caller did not join the leader's run")
	}
	joiner.End()

	recs := tr.TraceSpans(joiner.TraceID().String())
	if len(recs) != 1 {
		t.Fatalf("joiner trace has %d spans", len(recs))
	}
	if len(recs[0].Links) != 1 || recs[0].Links[0] != leader.TraceID().String() {
		t.Fatalf("joiner links = %v, want [%s]", recs[0].Links, leader.TraceID())
	}
	foundEvent := false
	for _, ev := range recs[0].Events {
		if ev.Name == "coalesced" && ev.Attrs["leader_trace"] == leader.TraceID().String() {
			foundEvent = true
		}
	}
	if !foundEvent {
		t.Fatalf("joiner events = %+v, want coalesced with leader_trace", recs[0].Events)
	}
	leader.End()
}

// TestMetricsExpositionValid: the registry-rendered /metrics passes the
// strict classic-format validator and still carries every pre-existing
// metric name — the golden guarantee the migration made.
func TestMetricsExpositionValid(t *testing.T) {
	tr := obs.NewTracer(obs.TracerConfig{Name: "worker", Seed: 3})
	s := newTraceServer(t, tr)
	ts := httptest.NewServer(s)
	defer ts.Close()

	if code, _ := get(t, ts, "/v1/datasets/demo/report?stages=summary"); code != http.StatusOK {
		t.Fatal("report failed")
	}
	code, body := get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("serve /metrics invalid exposition: %v\n%s", err, body)
	}
	for _, name := range []string{
		"eliteserve_uptime_seconds",
		"eliteserve_requests_total",
		"eliteserve_request_duration_seconds_bucket",
		"eliteserve_runs_total",
		"eliteserve_coalesced_requests_total",
		"eliteserve_shed_requests_total",
		"eliteserve_cancelled_runs_total",
		"eliteserve_jobs_queued_total",
		"eliteserve_body_cache_hits_total",
		"eliteserve_degraded_total",
		"eliteserve_draining_rejected_total",
		"eliteserve_feature_shard_hits_total",
		"eliteserve_stage_cache_hits_total",
		"eliteserve_stage_cache_misses_total",
		"eliteserve_stage_cache_hit_ratio",
	} {
		if !strings.Contains(string(body), name) {
			t.Fatalf("/metrics missing pre-existing metric %q:\n%s", name, body)
		}
	}
	// Exemplars must not leak into the classic flavor...
	if strings.Contains(string(body), "trace_id") {
		t.Fatalf("classic /metrics leaked exemplars:\n%s", body)
	}
	// ...but appear under the OpenMetrics Accept.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	om, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(om), "trace_id") || !strings.Contains(string(om), "# EOF") {
		t.Fatalf("OpenMetrics /metrics missing exemplars or EOF:\n%s", om)
	}
}

func spanNames(recs []obs.SpanRecord) []string {
	names := make([]string, len(recs))
	for i, r := range recs {
		names[i] = r.Name
	}
	return names
}
