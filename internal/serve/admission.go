package serve

import (
	"context"
	"errors"
)

// ErrBusy is returned (and mapped to HTTP 429) when the admission queue is
// full: every run slot is busy and the bounded wait queue is at capacity.
var ErrBusy = errors.New("serve: server busy, admission queue full")

// admission bounds how much characterization work the server accepts:
// at most maxConcurrent pipeline runs execute at once, at most maxQueue
// more wait for a slot, and anything beyond that is shed immediately with
// ErrBusy instead of accumulating unbounded goroutines. Coalesced requests
// count as one admission (the coalescer sits in front of the gate).
type admission struct {
	running chan struct{} // capacity = maxConcurrent
	queued  chan struct{} // capacity = maxConcurrent + maxQueue
}

func newAdmission(maxConcurrent, maxQueue int) *admission {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{
		running: make(chan struct{}, maxConcurrent),
		queued:  make(chan struct{}, maxConcurrent+maxQueue),
	}
}

// acquire claims a run slot, waiting in the bounded queue if necessary.
// It returns ErrBusy when the queue itself is full (shed immediately — the
// caller maps this to 429) and ctx.Err() if the caller gives up while
// queued. On nil error the caller must release().
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.queued <- struct{}{}:
	default:
		return ErrBusy
	}
	select {
	case a.running <- struct{}{}:
		return nil
	case <-ctx.Done():
		<-a.queued
		return ctx.Err()
	}
}

func (a *admission) release() {
	<-a.running
	<-a.queued
}
