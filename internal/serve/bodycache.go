package serve

import (
	"container/list"
	"sync"
)

// bodyCache memoizes encoded response bodies by coalescer key. Datasets
// are immutable after registration and result-shaping options are fixed at
// server construction, so a body is a constant for its key — there is no
// invalidation, only LRU eviction under a byte cap. This is what makes
// warm traffic O(memory read + socket write): without it every warm
// request would still re-run the battery (cache-hydrated but re-encoded,
// hundreds of milliseconds at paper scale) even when the bytes cannot
// change.
type bodyCache struct {
	mu       sync.Mutex
	entries  map[string]*list.Element
	lru      *list.List // front = most recent; values are *bodyEntry
	bytes    int64
	maxBytes int64
}

type bodyEntry struct {
	key  string
	body []byte
}

// newBodyCache builds a memo capped at maxBytes (<= 0 disables: get always
// misses, put is a no-op).
func newBodyCache(maxBytes int64) *bodyCache {
	return &bodyCache{
		entries:  map[string]*list.Element{},
		lru:      list.New(),
		maxBytes: maxBytes,
	}
}

func (b *bodyCache) get(key string) ([]byte, bool) {
	if b.maxBytes <= 0 {
		return nil, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	el, ok := b.entries[key]
	if !ok {
		return nil, false
	}
	b.lru.MoveToFront(el)
	return el.Value.(*bodyEntry).body, true
}

func (b *bodyCache) put(key string, body []byte) {
	if b.maxBytes <= 0 || int64(len(body)) > b.maxBytes {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if el, ok := b.entries[key]; ok {
		// Concurrent coalesced writers store identical bytes; refresh.
		b.lru.MoveToFront(el)
		return
	}
	b.entries[key] = b.lru.PushFront(&bodyEntry{key: key, body: body})
	b.bytes += int64(len(body))
	for b.bytes > b.maxBytes && b.lru.Len() > 1 {
		el := b.lru.Back()
		e := el.Value.(*bodyEntry)
		b.lru.Remove(el)
		delete(b.entries, e.key)
		b.bytes -= int64(len(e.body))
	}
}
