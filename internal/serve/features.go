package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"elites/internal/core"
	"elites/internal/features"
)

// features.go serves the per-user feature matrix. Requests resolve rows
// through three tiers, cheapest first:
//
//  1. the per-dataset matrix memo (a pipeline run in this process already
//     computed it);
//  2. individual feature shards decoded straight from the result cache —
//     this is how a fresh server process over a warm cache directory
//     answers without ever running the pipeline (counted in
//     eliteserve_feature_shard_hits_total);
//  3. a pipeline run restricted to the features stage, coalesced through
//     the same single-flight machinery as report requests.
//
// Encoded bodies additionally memoize in bodyCache, so repeat requests are
// a map lookup.

// maxBatchRanks bounds one users:batch request.
const maxBatchRanks = 1024

// maxBatchBody bounds the users:batch request body size in bytes.
const maxBatchBody = 1 << 20

// getFeatures returns the dataset's memoized full matrix, if any.
func (d *dataset) getFeatures() *features.Matrix {
	d.featMu.Lock()
	defer d.featMu.Unlock()
	return d.feat
}

// setFeatures memoizes a computed matrix (first writer wins; the matrix is
// deterministic so any two are bit-identical).
func (d *dataset) setFeatures(m *features.Matrix) {
	if m == nil {
		return
	}
	d.featMu.Lock()
	if d.feat == nil {
		d.feat = m
	}
	d.featMu.Unlock()
}

// featureSource answers row lookups for one request, backed either by the
// full matrix or by the subset of decoded shards the request needs.
type featureSource struct {
	mat    *features.Matrix
	shards map[int]*features.Rows
}

// row returns node u's feature vector, class probabilities and class.
func (fs *featureSource) row(u int) (row, probs []float64, class int) {
	var r *features.Rows
	if fs.mat != nil {
		r = &fs.mat.Rows
	} else {
		r = fs.shards[u/features.ShardRows]
	}
	return r.Row(u), r.ProbsRow(u), r.ClassOf(u)
}

// featureRows resolves the rows covering nodes through the three tiers.
func (s *Server) featureRows(ctx context.Context, d *dataset, nodes []int) (*featureSource, error) {
	if m := d.getFeatures(); m != nil {
		return &featureSource{mat: m}, nil
	}

	// Tier 2: decode only the shards this request touches, memoizing each
	// per dataset. All-or-nothing per request — a single missing shard
	// falls through to a full run, which repopulates every shard at once.
	if s.shards != nil {
		n := d.ds.Graph.NumNodes()
		st := features.Store{Cache: s.shards, Dataset: d.digest, Options: s.featDigest}
		got := map[int]*features.Rows{}
		ok := true
		d.featMu.Lock()
		for _, u := range nodes {
			i := u / features.ShardRows
			if _, have := got[i]; have {
				continue
			}
			if r, have := d.shardMem[i]; have {
				got[i] = r
				continue
			}
			r, hit := st.LoadShard(i, n)
			if !hit {
				ok = false
				break
			}
			if d.shardMem == nil {
				d.shardMem = map[int]*features.Rows{}
			}
			d.shardMem[i] = r
			got[i] = r
		}
		d.featMu.Unlock()
		if ok {
			s.met.addFeatureShardHit()
			return &featureSource{shards: got}, nil
		}
	}

	// Tier 3: run the features stage (coalesced; a concurrent identical
	// request joins this run). The fn memoizes the matrix on the dataset
	// before returning, so joiners — and this caller — read it back from
	// the memo afterwards.
	key := s.reportKey(d, []string{core.StageFeatures}, "features-run")
	_, joined, err := s.flight.Do(ctx, key, func(ctx context.Context, prog *progress) (runOutcome, error) {
		rep, rerr := s.runBattery(ctx, d, []string{core.StageFeatures}, prog)
		if rerr != nil {
			// No degraded tier here: a feature response is the matrix, so a
			// failed features stage has nothing partial to serve.
			return runOutcome{}, rerr
		}
		d.setFeatures(rep.Features)
		return runOutcome{}, nil
	})
	if joined {
		s.met.addCoalesced()
	}
	if err != nil {
		return nil, err
	}
	m := d.getFeatures()
	if m == nil {
		return nil, fmt.Errorf("serve: features stage produced no matrix")
	}
	return &featureSource{mat: m}, nil
}

func (s *Server) handleUserFeatures(w http.ResponseWriter, r *http.Request) {
	d, ok := s.dataset(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q", r.PathValue("id"))
		return
	}
	rank, err := strconv.Atoi(r.PathValue("rank"))
	if err != nil || rank < 1 {
		writeError(w, http.StatusBadRequest, "rank must be a positive integer, got %q", r.PathValue("rank"))
		return
	}
	byRank, _, _ := d.ranking()
	if rank > len(byRank) {
		writeError(w, http.StatusNotFound, "rank %d out of range (dataset has %d users)", rank, len(byRank))
		return
	}
	key := s.reportKey(d, []string{core.StageFeatures}, fmt.Sprintf("user-features:%d", rank))
	if body, ok := s.bodies.get(key); ok {
		s.met.addBodyHit()
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
		return
	}
	node := int(byRank[rank-1])
	src, err := s.featureRows(r.Context(), d, []int{node})
	if err != nil {
		s.writeRunError(w, r, err)
		return
	}
	row, probs, class := src.row(node)
	body, merr := encodeBody(core.NewUserFeaturesView(rank, node, row, probs, class))
	if merr != nil {
		writeError(w, http.StatusInternalServerError, "encoding failure")
		return
	}
	s.bodies.put(key, body)
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// batchRequest is the users:batch request body.
type batchRequest struct {
	Ranks []int `json:"ranks"`
}

func (s *Server) handleUsersBatch(w http.ResponseWriter, r *http.Request) {
	d, ok := s.dataset(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q", r.PathValue("id"))
		return
	}
	var req batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Ranks) == 0 {
		writeError(w, http.StatusBadRequest, "ranks must be a non-empty array")
		return
	}
	if len(req.Ranks) > maxBatchRanks {
		writeError(w, http.StatusBadRequest, "too many ranks (%d > %d)", len(req.Ranks), maxBatchRanks)
		return
	}
	byRank, _, _ := d.ranking()
	nodes := make([]int, len(req.Ranks))
	for i, rank := range req.Ranks {
		if rank < 1 || rank > len(byRank) {
			writeError(w, http.StatusBadRequest, "rank %d out of range (dataset has %d users)", rank, len(byRank))
			return
		}
		nodes[i] = int(byRank[rank-1])
	}

	// The body is a function of the ordered rank list, so the memo key is
	// too (request order is preserved in the response).
	var sb strings.Builder
	for i, rank := range req.Ranks {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(rank))
	}
	key := s.reportKey(d, []string{core.StageFeatures}, "users-batch:"+sb.String())
	if body, ok := s.bodies.get(key); ok {
		s.met.addBodyHit()
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
		return
	}
	src, err := s.featureRows(r.Context(), d, nodes)
	if err != nil {
		s.writeRunError(w, r, err)
		return
	}
	view := core.UsersBatchView{Users: make([]core.UserFeaturesView, len(nodes))}
	for i, node := range nodes {
		row, probs, class := src.row(node)
		view.Users[i] = core.NewUserFeaturesView(req.Ranks[i], node, row, probs, class)
	}
	body, merr := encodeBody(view)
	if merr != nil {
		writeError(w, http.StatusInternalServerError, "encoding failure")
		return
	}
	s.bodies.put(key, body)
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// encodeBody renders a view exactly like writeJSON does, but returns the
// bytes for memoization instead of writing them.
func encodeBody(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
