package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"elites/internal/core"
	"elites/internal/timeseries"
	"elites/internal/twitter"
)

// test fixtures: one small platform per binary, reused across tests.
var (
	fixOnce     sync.Once
	fixDataset  *twitter.Dataset
	fixActivity *timeseries.DailySeries
)

func testFixtures(t *testing.T) (*twitter.Dataset, *timeseries.DailySeries) {
	t.Helper()
	fixOnce.Do(func() {
		p, err := twitter.NewPlatform(twitter.DefaultPlatformConfig(400))
		if err != nil {
			t.Fatal(err)
		}
		fixDataset, err = twitter.DatasetFromPlatform(p)
		if err != nil {
			t.Fatal(err)
		}
		fixActivity = p.ActivitySeries(p.EnglishNodes())
	})
	return fixDataset, fixActivity
}

// fastServeOptions keeps test batteries quick but exercises every stage.
func fastServeOptions() core.Options {
	return core.Options{
		DistanceSources:    30,
		BetweennessSources: 16,
		EigenK:             16,
		BootstrapReps:      5,
		Seed:               7,
	}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	ds, activity := testFixtures(t)
	s := New(cfg)
	if err := s.RegisterDataset("demo", ds, activity, "test"); err != nil {
		t.Fatal(err)
	}
	return s
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestBasicEndpoints(t *testing.T) {
	s := newTestServer(t, Config{Options: fastServeOptions()})
	ts := httptest.NewServer(s)
	defer ts.Close()

	code, body := get(t, ts, "/healthz")
	if code != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz: %d %s", code, body)
	}

	code, body = get(t, ts, "/v1/datasets")
	if code != http.StatusOK {
		t.Fatalf("datasets: %d %s", code, body)
	}
	var list struct {
		Datasets []datasetInfo `json:"datasets"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Datasets) != 1 || list.Datasets[0].ID != "demo" || list.Datasets[0].Nodes == 0 {
		t.Fatalf("datasets listing: %+v", list)
	}

	if code, _ := get(t, ts, "/v1/datasets/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown dataset: %d", code)
	}
	if code, _ := get(t, ts, "/v1/datasets/demo/report?stages=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bogus stage selection: %d", code)
	}
	if code, _ := get(t, ts, "/v1/datasets/demo/report?format=yaml"); code != http.StatusBadRequest {
		t.Fatalf("bogus format: %d", code)
	}
	if code, _ := get(t, ts, "/v1/datasets/demo/stages/bogus"); code != http.StatusBadRequest {
		t.Fatalf("bogus stage: %d", code)
	}
	if code, _ := get(t, ts, "/v1/datasets/demo/users/0"); code != http.StatusBadRequest {
		t.Fatalf("rank 0: %d", code)
	}
	if code, _ := get(t, ts, "/v1/datasets/demo/users/99999999"); code != http.StatusNotFound {
		t.Fatalf("rank out of range: %d", code)
	}
	if code, _ := get(t, ts, "/v1/jobs/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown job: %d", code)
	}
}

// TestUserEndpoint: rank 1 must be the dataset's maximum out-degree node,
// with profile metrics attached.
func TestUserEndpoint(t *testing.T) {
	ds, _ := testFixtures(t)
	s := newTestServer(t, Config{Options: fastServeOptions()})
	ts := httptest.NewServer(s)
	defer ts.Close()

	code, body := get(t, ts, "/v1/datasets/demo/users/1")
	if code != http.StatusOK {
		t.Fatalf("user 1: %d %s", code, body)
	}
	var v userView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	outDeg := ds.Graph.OutDegrees()
	maxDeg := 0
	for _, d := range outDeg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	if v.OutDegree != maxDeg {
		t.Fatalf("rank 1 out-degree = %d, want max %d", v.OutDegree, maxDeg)
	}
	if v.Profile == nil || v.Profile.ScreenName == "" || v.Profile.Category == "" {
		t.Fatalf("profile fields missing: %+v", v)
	}
	// Zero/false profile values must serialize (distinguishable from "no
	// profile recorded").
	if !strings.Contains(string(body), `"verified"`) {
		t.Fatalf("profile JSON must carry the verified flag explicitly: %s", body)
	}
	// Ranks walk downward in degree.
	code, body = get(t, ts, "/v1/datasets/demo/users/2")
	if code != http.StatusOK {
		t.Fatal(code)
	}
	var v2 userView
	if err := json.Unmarshal(body, &v2); err != nil {
		t.Fatal(err)
	}
	if v2.OutDegree > v.OutDegree {
		t.Fatalf("rank 2 degree %d exceeds rank 1 degree %d", v2.OutDegree, v.OutDegree)
	}
}

// TestWarmReportServedFromCacheAndByteIdentical: a repeated request's body
// — both JSON and the rendered-text format — must be byte-identical to the
// cold one (served from the body memo; a fresh identity still hydrates its
// cacheable stages from the result cache), and text must equal what a
// direct Characterizer run renders (the eliteanalyze stdout contract).
func TestWarmReportServedFromCacheAndByteIdentical(t *testing.T) {
	ds, activity := testFixtures(t)
	opts := fastServeOptions()
	opts.CacheDir = t.TempDir()
	s := newTestServer(t, Config{Options: opts})
	ts := httptest.NewServer(s)
	defer ts.Close()

	code, cold := get(t, ts, "/v1/datasets/demo/report?format=text")
	if code != http.StatusOK {
		t.Fatalf("cold report: %d %s", code, cold)
	}
	code, warm := get(t, ts, "/v1/datasets/demo/report?format=text")
	if code != http.StatusOK {
		t.Fatal(code)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("warm text body differs from cold")
	}

	// Direct run with identical options == what eliteanalyze prints.
	rep, err := core.NewCharacterizer(opts).Run(ds, activity)
	if err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	rep.Render(&direct)
	if !bytes.Equal(warm, direct.Bytes()) {
		t.Fatal("served text report differs from a direct Characterizer render")
	}
	if rep.Cache == nil || len(rep.Cache.Hits) == 0 {
		t.Fatalf("direct warm run should hit the shared cache: %+v", rep.Cache)
	}

	// JSON: also byte-stable.
	code, j1 := get(t, ts, "/v1/datasets/demo/report")
	if code != http.StatusOK {
		t.Fatal(code)
	}
	code, j2 := get(t, ts, "/v1/datasets/demo/report")
	if code != http.StatusOK {
		t.Fatal(code)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatal("JSON report is not byte-stable")
	}

	// The metrics must show stage-cache traffic with hits.
	code, mbody := get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatal(code)
	}
	if !strings.Contains(string(mbody), "eliteserve_stage_cache_hits_total") {
		t.Fatalf("metrics missing cache counters:\n%s", mbody)
	}
	var hits float64
	fmt.Sscanf(findMetric(string(mbody), "eliteserve_stage_cache_hits_total"), "%g", &hits)
	if hits == 0 {
		t.Fatal("warm request recorded no stage cache hits")
	}
}

// findMetric returns the value field of the first sample named m.
func findMetric(body, m string) string {
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, m+" ") {
			return strings.TrimPrefix(line, m+" ")
		}
	}
	return ""
}

// TestStageEndpoint runs one stage subset and checks the fragment shape.
func TestStageEndpoint(t *testing.T) {
	ds, _ := testFixtures(t)
	s := newTestServer(t, Config{Options: fastServeOptions()})
	ts := httptest.NewServer(s)
	defer ts.Close()

	code, body := get(t, ts, "/v1/datasets/demo/stages/summary")
	if code != http.StatusOK {
		t.Fatalf("stage summary: %d %s", code, body)
	}
	var resp struct {
		Dataset string           `json:"dataset"`
		Stage   string           `json:"stage"`
		Result  core.SummaryView `json:"result"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Stage != "summary" || resp.Result.Nodes != ds.Graph.NumNodes() {
		t.Fatalf("stage fragment: %+v", resp)
	}
}

// TestFlightCoalescesIdenticalRequests is the core coalescing contract:
// 8 concurrent Do calls on one key run fn exactly once and every caller
// receives byte-identical bodies. The fn blocks until all 8 have joined,
// so the test is deterministic.
func TestFlightCoalescesIdenticalRequests(t *testing.T) {
	f := newFlight()
	const n = 8
	var runs int32
	release := make(chan struct{})
	fn := func(ctx context.Context, _ *progress) (runOutcome, error) {
		atomic.AddInt32(&runs, 1)
		<-release
		return runOutcome{body: []byte("the-body")}, nil
	}

	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	joins := make([]bool, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, joined, err := f.Do(context.Background(), "k", fn)
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			bodies[i], joins[i] = out.body, joined
		}()
	}
	// Wait until all 8 are registered as waiters, then let the run finish.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, ok := f.peek("k")
		if ok {
			f.mu.Lock()
			w := c.waiters
			f.mu.Unlock()
			if w == n {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("waiters never assembled")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := atomic.LoadInt32(&runs); got != 1 {
		t.Fatalf("fn ran %d times, want exactly 1", got)
	}
	joinedCount := 0
	for i := range bodies {
		if string(bodies[i]) != "the-body" {
			t.Fatalf("caller %d got %q", i, bodies[i])
		}
		if joins[i] {
			joinedCount++
		}
	}
	if joinedCount != n-1 {
		t.Fatalf("joined = %d, want %d", joinedCount, n-1)
	}
}

// TestFlightCancellation: when every waiter abandons, the run's context is
// cancelled; a later identical request starts a fresh run instead of
// inheriting the cancelled result.
func TestFlightCancellation(t *testing.T) {
	f := newFlight()
	started := make(chan struct{}, 2)
	var cancelSeen int32
	fn := func(ctx context.Context, _ *progress) (runOutcome, error) {
		started <- struct{}{}
		<-ctx.Done()
		atomic.AddInt32(&cancelSeen, 1)
		return runOutcome{}, ctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := f.Do(ctx, "k", fn)
		errc <- err
	}()
	<-started
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v", err)
	}
	// The run must observe cancellation.
	deadline := time.Now().Add(5 * time.Second)
	for atomic.LoadInt32(&cancelSeen) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("run never saw cancellation")
		}
		time.Sleep(time.Millisecond)
	}
	// A fresh request reruns fn (and can complete normally this time).
	fn2 := func(ctx context.Context, _ *progress) (runOutcome, error) {
		return runOutcome{body: []byte("fresh")}, nil
	}
	out, _, err := f.Do(context.Background(), "k", fn2)
	if err != nil || string(out.body) != "fresh" {
		t.Fatalf("fresh run after cancellation: %q %v", out.body, err)
	}
}

// TestHTTPCoalescing drives 8 identical cold requests through the real
// handler stack: every body must be byte-identical, nothing may be shed,
// and the requests must collapse to (nearly) one pipeline run. The exact
// 8→1 collapse is proven deterministically at the flight level above; at
// the HTTP level a straggler that arrives after the first run finished
// legitimately starts a second, so the assertion here is runs ≤ 2 with
// runs+coalesced covering all 8.
func TestHTTPCoalescing(t *testing.T) {
	s := newTestServer(t, Config{Options: fastServeOptions(), MaxConcurrent: 1, MaxQueue: 8})
	ts := httptest.NewServer(s)
	defer ts.Close()

	const n = 8
	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	codes := make([]int, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := ts.Client().Get(ts.URL + "/v1/datasets/demo/report")
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			codes[i] = resp.StatusCode
			bodies[i], errs[i] = io.ReadAll(resp.Body)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: %d %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d body differs", i)
		}
	}
	runs, coalesced, shed := s.met.counters()
	bodyHits := s.met.bodyHits.Value()
	if shed != 0 {
		t.Fatalf("admission shed %d coalescible requests", shed)
	}
	if runs+coalesced+bodyHits < n {
		t.Fatalf("accounting: runs=%d coalesced=%d bodyHits=%d for %d requests",
			runs, coalesced, bodyHits, n)
	}
	if runs > 2 {
		t.Fatalf("%d pipeline runs for %d identical concurrent requests", runs, n)
	}
}

// TestAsyncJobModel: with a tiny latency budget, a cold POST returns 202
// with a job id; polling reaches "done" with per-stage progress; the
// result endpoint serves the same bytes as a later synchronous GET.
func TestAsyncJobModel(t *testing.T) {
	opts := fastServeOptions()
	opts.CacheDir = t.TempDir()
	s := newTestServer(t, Config{Options: opts, AsyncAfter: time.Millisecond})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := ts.Client().Post(ts.URL+"/v1/datasets/demo/report", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cold POST with 1ms budget: %d %s", resp.StatusCode, body)
	}
	var accepted struct {
		JobID     string `json:"job_id"`
		StatusURL string `json:"status_url"`
		ResultURL string `json:"result_url"`
	}
	if err := json.Unmarshal(body, &accepted); err != nil || accepted.JobID == "" {
		t.Fatalf("202 body: %s (%v)", body, err)
	}

	// Poll until done.
	var st jobStatus
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, sb := get(t, ts, accepted.StatusURL)
		if code != http.StatusOK {
			t.Fatalf("job status: %d %s", code, sb)
		}
		if err := json.Unmarshal(sb, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == "done" {
			break
		}
		if st.State == "failed" {
			t.Fatalf("job failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.StagesDone == 0 {
		t.Fatal("finished job reports no completed stages")
	}

	code, result := get(t, ts, accepted.ResultURL)
	if code != http.StatusOK {
		t.Fatalf("job result: %d", code)
	}
	// A synchronous GET now serves the same bytes (warm via cache).
	code, direct := get(t, ts, "/v1/datasets/demo/report")
	if code != http.StatusOK {
		t.Fatal(code)
	}
	if !bytes.Equal(result, direct) {
		t.Fatal("job result differs from synchronous body")
	}
}

// TestAdmissionSheds: with one slot, no queue, and a run parked on the
// slot, a second distinct request is rejected 429.
func TestAdmissionSheds(t *testing.T) {
	a := newAdmission(1, 0)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.acquire(context.Background()); !errors.Is(err, ErrBusy) {
		t.Fatalf("second acquire = %v, want ErrBusy", err)
	}
	a.release()
	if err := a.acquire(context.Background()); err != nil {
		t.Fatalf("after release: %v", err)
	}
	a.release()

	// Queued waiters respect context cancellation.
	a2 := newAdmission(1, 1)
	if err := a2.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- a2.acquire(ctx) }()
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued acquire = %v", err)
	}
}

func TestParseStagesCanonicalizes(t *testing.T) {
	a, err := parseStages("degree,basic")
	if err != nil {
		t.Fatal(err)
	}
	b, err := parseStages("basic, degree,basic")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("orderings disagree: %v vs %v", a, b)
	}
	if strings.Join(a, ",") != "basic,degree" {
		t.Fatalf("canonical order: %v", a)
	}
	if _, err := parseStages("nope"); err == nil {
		t.Fatal("unknown stage must error")
	}
	if got, err := parseStages(""); err != nil || got != nil {
		t.Fatalf("empty selection: %v %v", got, err)
	}
}

func TestRegisterValidation(t *testing.T) {
	s := New(Config{})
	if err := s.RegisterDataset("bad id!", &twitter.Dataset{}, nil, ""); err == nil {
		t.Fatal("invalid id accepted")
	}
	if err := s.RegisterDataset("ok", nil, nil, ""); err == nil {
		t.Fatal("nil dataset accepted")
	}
	ds, activity := testFixtures(t)
	if err := s.RegisterDataset("ok", ds, activity, "test"); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterDataset("ok", ds, activity, "test"); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if err := s.RegisterGenerated("gen", "bogus-kind", 100, 1); err == nil {
		t.Fatal("bogus kind accepted")
	}
}

// TestComponentsStageServesSummary: the components stage has no rendering
// of its own — its endpoint must serve the populated summary table, not
// null (the run subset is expanded through core.ViewStages).
func TestComponentsStageServesSummary(t *testing.T) {
	ds, _ := testFixtures(t)
	s := newTestServer(t, Config{Options: fastServeOptions()})
	ts := httptest.NewServer(s)
	defer ts.Close()

	code, body := get(t, ts, "/v1/datasets/demo/stages/components")
	if code != http.StatusOK {
		t.Fatalf("stage components: %d %s", code, body)
	}
	var resp struct {
		Result *core.SummaryView `json:"result"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Result == nil || resp.Result.Nodes != ds.Graph.NumNodes() {
		t.Fatalf("components fragment not populated: %s", body)
	}
}

// TestJobTableReplacementKeepsFreshOrder: re-creating a finished job under
// the same key must give the replacement a fresh eviction position, not
// the stale oldest-first slot (which made evictLocked delete the newest
// job while retaining older ones).
func TestJobTableReplacementKeepsFreshOrder(t *testing.T) {
	tbl := newJobTable(2)
	now := time.Now()
	a, created, err := tbl.getOrCreate("key-a", "d", "json", now)
	if err != nil || !created {
		t.Fatalf("first job: created=%v err=%v", created, err)
	}
	a.finish(runOutcome{body: []byte("a")}, nil)
	// Replace a under the same key; it must now be the youngest entry.
	a2, created, err := tbl.getOrCreate("key-a", "d", "json", now)
	if err != nil || !created || a2 == a {
		t.Fatal("finished job should be replaced")
	}
	a2.finish(runOutcome{body: []byte("a2")}, nil)
	b, _, _ := tbl.getOrCreate("key-b", "d", "json", now)
	b.finish(runOutcome{body: []byte("b")}, nil)
	// keep=2: after c, the table must retain the two youngest (b, c) and
	// evict a2 — not inherit a's stale front-of-order slot for a2.
	c, _, _ := tbl.getOrCreate("key-c", "d", "json", now)
	c.finish(runOutcome{body: []byte("c")}, nil)
	if _, ok := tbl.get(c.ID); !ok {
		t.Fatal("newest job evicted")
	}
	if _, ok := tbl.get(b.ID); !ok {
		t.Fatal("second-newest job evicted")
	}
	if _, ok := tbl.get(a2.ID); ok {
		t.Fatal("oldest finished job should have been evicted")
	}
}

// TestJobTableKeyCollisionRefused: a live job whose id matches but whose
// key differs (48-bit hash collision between request identities) must be
// refused, never returned as "the" job.
func TestJobTableKeyCollisionRefused(t *testing.T) {
	tbl := newJobTable(4)
	j, _, err := tbl.getOrCreate("key-a", "d", "json", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	j.Key = "some-other-identity" // simulate the collision
	if _, _, err := tbl.getOrCreate("key-a", "d", "json", time.Now()); err == nil {
		t.Fatal("live colliding job must be refused")
	}
	// Once finished, the colliding slot is reclaimed.
	j.finish(runOutcome{}, nil)
	if _, created, err := tbl.getOrCreate("key-a", "d", "json", time.Now()); err != nil || !created {
		t.Fatalf("finished colliding job should be replaced: created=%v err=%v", created, err)
	}
}

// TestBodyCache: constant bodies memoize per key, LRU-evict under the byte
// cap, and a non-positive cap disables the memo.
func TestBodyCache(t *testing.T) {
	bc := newBodyCache(200)
	bc.put("a", bytes.Repeat([]byte{1}, 90))
	bc.put("b", bytes.Repeat([]byte{2}, 90))
	if _, ok := bc.get("a"); !ok {
		t.Fatal("a should be resident")
	}
	bc.put("c", bytes.Repeat([]byte{3}, 90)) // evicts b (a was refreshed)
	if _, ok := bc.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := bc.get("a"); !ok {
		t.Fatal("refreshed entry evicted")
	}
	bc.put("huge", bytes.Repeat([]byte{4}, 500)) // over cap: not stored
	if _, ok := bc.get("huge"); ok {
		t.Fatal("oversized body must not be stored")
	}
	off := newBodyCache(-1)
	off.put("k", []byte("v"))
	if _, ok := off.get("k"); ok {
		t.Fatal("disabled memo must always miss")
	}
}

// TestWarmRequestServedFromBodyMemo: the second identical request must not
// start a pipeline run at all — it is served from the encoded-body memo.
func TestWarmRequestServedFromBodyMemo(t *testing.T) {
	s := newTestServer(t, Config{Options: fastServeOptions()})
	ts := httptest.NewServer(s)
	defer ts.Close()

	code, first := get(t, ts, "/v1/datasets/demo/report?stages=summary")
	if code != http.StatusOK {
		t.Fatalf("first: %d %s", code, first)
	}
	runsBefore, _, _ := s.met.counters()
	code, second := get(t, ts, "/v1/datasets/demo/report?stages=summary")
	if code != http.StatusOK {
		t.Fatal(code)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("memoized body differs")
	}
	runsAfter, _, _ := s.met.counters()
	if runsAfter != runsBefore {
		t.Fatalf("warm request started a pipeline run (%d → %d)", runsBefore, runsAfter)
	}
	if hits := s.met.bodyHits.Value(); hits == 0 {
		t.Fatal("warm request not counted as a body-memo hit")
	}
}
