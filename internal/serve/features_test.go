package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"elites/internal/graph"
	"elites/internal/twitter"
)

func postJSON(t *testing.T, ts *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func TestUserFeaturesEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Options: fastServeOptions()})
	ts := httptest.NewServer(s)
	defer ts.Close()

	code, body := get(t, ts, "/v1/datasets/demo/users/1/features")
	if code != http.StatusOK {
		t.Fatalf("features: %d %s", code, body)
	}
	var view struct {
		Rank     int `json:"rank"`
		Node     int `json:"node"`
		Features struct {
			OutDegree *float64 `json:"out_degree"`
			BetwPct   *float64 `json:"betweenness_pct"`
		} `json:"features"`
		Score struct {
			Class string `json:"class"`
		} `json:"score"`
	}
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, body)
	}
	if view.Rank != 1 || view.Features.OutDegree == nil || *view.Features.OutDegree < 1 {
		t.Fatalf("rank-1 row: %s", body)
	}
	if view.Score.Class == "" {
		t.Fatalf("missing scorer verdict: %s", body)
	}

	// The second request must come from the body memo, not a second run.
	runsBefore, _, _ := s.met.counters()
	_, again := get(t, ts, "/v1/datasets/demo/users/1/features")
	if !bytes.Equal(body, again) {
		t.Fatal("repeat request body differs")
	}
	if runsAfter, _, _ := s.met.counters(); runsAfter != runsBefore {
		t.Fatalf("repeat request ran the pipeline (%d -> %d)", runsBefore, runsAfter)
	}

	if code, _ := get(t, ts, "/v1/datasets/demo/users/0/features"); code != http.StatusBadRequest {
		t.Fatalf("rank 0: %d", code)
	}
	if code, _ := get(t, ts, "/v1/datasets/demo/users/99999999/features"); code != http.StatusNotFound {
		t.Fatalf("rank out of range: %d", code)
	}
}

// TestUsersBatchGoldenBytes pins the batch body byte-identical across a cold
// run, a warm repeat, and a second server instance sharing the cache
// directory — and asserts the second instance answered from precomputed
// shards without a single pipeline run.
func TestUsersBatchGoldenBytes(t *testing.T) {
	ds, activity := testFixtures(t)
	dir := t.TempDir()
	opts := fastServeOptions()
	opts.CacheDir = dir

	srvA := New(Config{Options: opts})
	if err := srvA.RegisterDataset("demo", ds, activity, "test"); err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(srvA)
	defer tsA.Close()

	const reqBody = `{"ranks":[1,2,3]}`
	code, cold := postJSON(t, tsA, "/v1/datasets/demo/users:batch", reqBody)
	if code != http.StatusOK {
		t.Fatalf("cold batch: %d %s", code, cold)
	}
	code, warm := postJSON(t, tsA, "/v1/datasets/demo/users:batch", reqBody)
	if code != http.StatusOK || !bytes.Equal(cold, warm) {
		t.Fatalf("warm batch diverged (code %d)", code)
	}

	// A fresh server process over the same cache directory must serve the
	// identical bytes from shards alone: zero pipeline runs.
	srvB := New(Config{Options: opts})
	if err := srvB.RegisterDataset("demo", ds, activity, "test"); err != nil {
		t.Fatal(err)
	}
	tsB := httptest.NewServer(srvB)
	defer tsB.Close()

	code, fresh := postJSON(t, tsB, "/v1/datasets/demo/users:batch", reqBody)
	if code != http.StatusOK {
		t.Fatalf("shard-tier batch: %d %s", code, fresh)
	}
	if !bytes.Equal(cold, fresh) {
		t.Fatalf("shard-tier body diverged:\ncold: %s\nfresh: %s", cold, fresh)
	}
	if runs, _, _ := srvB.met.counters(); runs != 0 {
		t.Fatalf("second instance ran the pipeline %d times", runs)
	}
	if hits := srvB.met.featureShardHits(); hits == 0 {
		t.Fatal("second instance did not count a shard hit")
	}

	// The single-user endpoint rides the same shards.
	if code, _ := get(t, tsB, "/v1/datasets/demo/users/2/features"); code != http.StatusOK {
		t.Fatalf("single-user over shards: %d", code)
	}
	if runs, _, _ := srvB.met.counters(); runs != 0 {
		t.Fatal("single-user request over shards ran the pipeline")
	}
}

func TestUsersBatchValidationAndOrder(t *testing.T) {
	s := newTestServer(t, Config{Options: fastServeOptions()})
	ts := httptest.NewServer(s)
	defer ts.Close()

	for _, bad := range []string{``, `{}`, `{"ranks":[]}`, `{"ranks":[0]}`, `{"ranks":[99999999]}`, `not json`} {
		if code, _ := postJSON(t, ts, "/v1/datasets/demo/users:batch", bad); code != http.StatusBadRequest {
			t.Fatalf("body %q: want 400, got %d", bad, code)
		}
	}
	if code, _ := postJSON(t, ts, "/v1/datasets/nope/users:batch", `{"ranks":[1]}`); code != http.StatusNotFound {
		t.Fatalf("unknown dataset: %d", code)
	}

	// Response rows come back in request order, not rank order.
	code, body := postJSON(t, ts, "/v1/datasets/demo/users:batch", `{"ranks":[3,1,2]}`)
	if code != http.StatusOK {
		t.Fatalf("batch: %d %s", code, body)
	}
	var view struct {
		Users []struct {
			Rank int `json:"rank"`
		} `json:"users"`
	}
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if len(view.Users) != 3 || view.Users[0].Rank != 3 || view.Users[1].Rank != 1 || view.Users[2].Rank != 2 {
		t.Fatalf("order not preserved: %+v", view.Users)
	}
}

// TestUserFeaturesNaNRendersNull: a profileless graph with a zero-degree
// node produces 0/0 and x/0 ratios; both must render as JSON null, not
// break encoding.
func TestUserFeaturesNaNRendersNull(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1) // node 1: in 1, out 0 (+Inf ratio); node 2: isolated (NaN)
	ds := &twitter.Dataset{Graph: b.Build()}

	s := New(Config{Options: fastServeOptions()})
	if err := s.RegisterDataset("tiny", ds, nil, "test"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	code, body := postJSON(t, ts, "/v1/datasets/tiny/users:batch", `{"ranks":[1,2,3]}`)
	if code != http.StatusOK {
		t.Fatalf("batch: %d %s", code, body)
	}
	if !strings.Contains(string(body), `"follower_following_ratio": null`) {
		t.Fatalf("non-finite ratio not rendered as null:\n%s", body)
	}
	if !json.Valid(body) {
		t.Fatal("body is not valid JSON")
	}
}
