package fleet

import (
	"encoding/binary"
	"fmt"

	"elites/internal/cache"
)

// lkg.go is the router's graceful-degradation floor: the last-known-good
// body store. Every clean (non-degraded) 200 the router proxies for a
// GET under /v1/datasets is recorded against its identity key in the
// shared result-cache directory — the same content-addressed store the
// workers hydrate stages from, so the bodies survive router restarts and
// are visible to every router sharing the directory. When every replica
// for an identity is down or the retry budget is exhausted, the router
// serves these exact bytes with a Warning header instead of a 502: the
// degraded body is byte-identical to the last healthy response for the
// same identity, because it *is* that response.

// lkgStore persists last-known-good response bodies keyed by identity.
type lkgStore struct {
	c *cache.Cache // nil when the router runs cache-less (memory off too)
}

// newLKGStore opens the store over the shared cache directory; an empty
// dir yields a disabled store (get always misses, put is a no-op).
func newLKGStore(dir string) (*lkgStore, error) {
	if dir == "" {
		return &lkgStore{}, nil
	}
	c, err := cache.New(dir)
	if err != nil {
		return nil, err
	}
	return &lkgStore{c: c}, nil
}

// key renders the cache key for one identity.
func (s *lkgStore) key(identity uint64) string {
	return fmt.Sprintf("routerlkg-%016x", identity)
}

// put records a clean body and its content type for identity.
func (s *lkgStore) put(identity uint64, contentType string, body []byte) {
	if s.c == nil {
		return
	}
	buf := binary.AppendUvarint(nil, uint64(len(contentType)))
	buf = append(buf, contentType...)
	buf = append(buf, body...)
	s.c.Put(s.key(identity), buf)
}

// get returns the last-known-good body for identity, if one was recorded.
// A malformed entry (impossible short frame) is treated as a miss — the
// cache layer already rejects torn or corrupted files by checksum.
func (s *lkgStore) get(identity uint64) (contentType string, body []byte, ok bool) {
	if s.c == nil {
		return "", nil, false
	}
	raw, ok := s.c.Get(s.key(identity))
	if !ok {
		return "", nil, false
	}
	n, used := binary.Uvarint(raw)
	if used <= 0 || uint64(len(raw)-used) < n {
		return "", nil, false
	}
	return string(raw[used : used+int(n)]), raw[used+int(n):], true
}
