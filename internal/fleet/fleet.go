// Package fleet is the coordination layer that turns a set of eliteserve
// replicas into one fault-tolerant characterization service. The router
// rendezvous-hashes each request's cache identity — the same (dataset
// digest, options digest, stage subset, format) tuple the workers key
// their coalescer and result cache on — onto a stable worker order, so
// repeated requests for one identity land on one replica and its
// single-flight coalescing works fleet-wide, while a worker leaving never
// remaps identities between the survivors.
//
// Around that placement sits a degradation ladder, crossed one rung at a
// time as failures accumulate:
//
//  1. Retry: a failed attempt (transport error, injected drop, 5xx) is
//     retried on the next worker in hash order, under a budget, with
//     decorrelated-jitter backoff between attempts.
//  2. Hedge: warm GETs that dawdle past a latency trigger (a fixed
//     -hedge-after, or an adaptive p95 of recent successes) launch a
//     speculative second attempt; first response wins.
//  3. Breaker: per-worker consecutive failures trip a circuit breaker
//     mirroring the result cache's 3-strike design; an open breaker skips
//     the worker except for a periodic pass-through probe.
//  4. Eject: the health prober marks a worker down after consecutive
//     failed /healthz probes; it rejoins through a probation period where
//     any failure sends it straight back down.
//  5. Degrade: when every attempt fails — all replicas down or the budget
//     exhausted — the router serves the last-known-good body for the
//     identity from the shared cache directory, verbatim, with a Warning
//     header, rather than a 502.
//
// Only when there is no worker and no cached body does a request shed
// with 503 and a jittered Retry-After. Every rung is visible in
// /metrics (eliterouter_retries_total, _hedges_total, _failovers_total,
// _breaker_trips_total, _degraded_total, _shed_total, _worker_up).
package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"elites/internal/cache"
	"elites/internal/faults"
	"elites/internal/mathx"
	"elites/internal/obs"
)

const (
	// maxRequestBody bounds the buffered client body (re-sent on every
	// retry and hedge attempt).
	maxRequestBody = 8 << 20
	// maxResponseBody bounds a buffered worker response.
	maxResponseBody = 64 << 20
	// latencyRingSize is how many recent GET latencies feed the adaptive
	// hedge trigger.
	latencyRingSize = 128
)

// Config configures a Router. Zero values take the documented defaults.
type Config struct {
	// Workers are the eliteserve base URLs ("http://127.0.0.1:9001" or
	// just "127.0.0.1:9001"). At least one is required.
	Workers []string

	// ProbeInterval is the health-probe cadence (default 500ms).
	ProbeInterval time.Duration
	// EjectAfter is how many consecutive failed probes eject an up worker
	// (default 3).
	EjectAfter int
	// ProbationProbes is the clean-probe streak that promotes a
	// readmitted worker from probation back to up (default 3).
	ProbationProbes int

	// Retries is the budget of extra sequential attempts after the first
	// (default 2).
	Retries int
	// RequestTimeout bounds one client request end to end, across all
	// attempts (default 60s).
	RequestTimeout time.Duration
	// BackoffBase and BackoffCap bound the decorrelated-jitter backoff
	// between retry attempts (defaults 25ms and 1s).
	BackoffBase time.Duration
	BackoffCap  time.Duration

	// HedgeAfter, when positive, is a fixed delay after which a warm GET
	// launches a speculative second attempt. When zero, the trigger is
	// adaptive: the p95 of recent successful GET latencies, active once
	// HedgeMinSamples (default 20) have been observed.
	HedgeAfter      time.Duration
	HedgeMinSamples int

	// CacheDir is the shared result-cache directory; the router stores
	// last-known-good bodies there for degraded serving. Empty disables
	// degradation to cached bodies.
	CacheDir string

	// Transport is the base RoundTripper (default http.DefaultTransport).
	Transport http.RoundTripper
	// Faults, when non-nil, injects network faults ("net:<host:port>"
	// points) into every probe and proxied attempt.
	Faults *faults.Injector
	// Seed feeds the backoff and Retry-After jitter streams.
	Seed uint64

	// Tracer, when non-nil, opens a root span per proxied request,
	// injects traceparent on every attempt (so worker spans share the
	// trace id), and serves the span buffer at GET /debug/traces.
	Tracer *obs.Tracer
	// Logger, when non-nil, receives one structured record per proxied
	// request plus warnings for degradation-ladder transitions.
	Logger *slog.Logger
	// SlowRequest, when > 0 and Logger and Tracer are set, logs the full
	// span tree of requests at least this slow.
	SlowRequest time.Duration
}

func (c *Config) setDefaults() {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = 3
	}
	if c.ProbationProbes <= 0 {
		c.ProbationProbes = 3
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 25 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = time.Second
	}
	if c.HedgeMinSamples <= 0 {
		c.HedgeMinSamples = 20
	}
	if c.Transport == nil {
		c.Transport = http.DefaultTransport
	}
}

// Router proxies requests onto the worker fleet. It implements
// http.Handler and owns /healthz, /metrics and /fleet/workers itself;
// everything else is routed by identity.
type Router struct {
	cfg       Config
	workers   []*worker
	met       *fleetMetrics
	lkg       *lkgStore
	transport http.RoundTripper
	client    *http.Client

	jitterMu  sync.Mutex
	backoff   *mathx.RNG
	shedRNG   *mathx.RNG
	prevDelay time.Duration

	digestMu sync.RWMutex
	digests  map[string]uint64 // dataset id -> digest, learned from workers

	latMu    sync.Mutex
	latRing  [latencyRingSize]float64 // seconds
	latNext  int
	latCount int

	startOnce sync.Once
	closeOnce sync.Once
	probeStop chan struct{}
	probeDone chan struct{}
}

// New builds a Router over cfg.Workers. The health prober does not start
// until Start is called, so tests can drive probes synchronously.
func New(cfg Config) (*Router, error) {
	cfg.setDefaults()
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("fleet: no workers configured")
	}
	workers := make([]*worker, 0, len(cfg.Workers))
	seen := map[string]bool{}
	for _, raw := range cfg.Workers {
		w, err := newWorker(raw)
		if err != nil {
			return nil, err
		}
		if seen[w.name] {
			return nil, fmt.Errorf("fleet: duplicate worker %q", w.name)
		}
		seen[w.name] = true
		workers = append(workers, w)
	}
	lkg, err := newLKGStore(cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	transport := cfg.Transport
	if cfg.Faults != nil {
		transport = &faultTransport{base: cfg.Transport, inj: cfg.Faults}
	}
	root := mathx.NewRNG(cfg.Seed)
	rt := &Router{
		cfg:       cfg,
		workers:   workers,
		met:       newFleetMetrics(time.Now()),
		lkg:       lkg,
		transport: transport,
		client:    &http.Client{Transport: transport},
		backoff:   root.Derive("fleet/backoff"),
		shedRNG:   root.Derive("fleet/retry-after"),
		prevDelay: cfg.BackoffBase,
		digests:   map[string]uint64{},
		probeStop: make(chan struct{}),
		probeDone: make(chan struct{}),
	}
	return rt, nil
}

// Start launches the background health prober. Close stops it.
func (rt *Router) Start() {
	rt.startOnce.Do(func() { go rt.probeLoop() })
}

// Close stops the health prober (idempotent; safe before Start).
func (rt *Router) Close() {
	rt.closeOnce.Do(func() { close(rt.probeStop) })
	rt.startOnce.Do(func() { close(rt.probeDone) })
	<-rt.probeDone
}

// ServeHTTP answers the router's own endpoints and proxies the rest.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodGet && r.URL.Path == "/healthz":
		rt.handleHealthz(w)
	case r.Method == http.MethodGet && r.URL.Path == "/metrics":
		rt.handleMetrics(w, r)
	case r.Method == http.MethodGet && r.URL.Path == "/fleet/workers":
		rt.handleWorkers(w)
	case r.URL.Path == "/debug/traces":
		rt.cfg.Tracer.ServeTraces(w, r)
	default:
		rt.proxy(w, r)
	}
}

func (rt *Router) infos() []workerInfo {
	infos := make([]workerInfo, len(rt.workers))
	for i, w := range rt.workers {
		infos[i] = w.info()
	}
	return infos
}

func (rt *Router) handleHealthz(w http.ResponseWriter) {
	available := 0
	for _, wk := range rt.workers {
		if wk.available() {
			available++
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":            "ok",
		"workers":           len(rt.workers),
		"workers_available": available,
	})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	ct, om := obs.NegotiateExposition(r.Header)
	w.Header().Set("Content-Type", ct)
	rt.met.write(w, rt.infos(), om)
}

func (rt *Router) handleWorkers(w http.ResponseWriter) {
	writeJSON(w, http.StatusOK, map[string]any{"workers": rt.infos()})
}

// --- identity routing --------------------------------------------------------

// identityKey maps a request to its rendezvous key and route class.
// Dataset requests hash the dataset's content digest (learned from the
// workers' own listings, so the key matches the workers' cache identity)
// plus the path and the result-shaping query parameters; job requests
// hash the job id, which is itself content-addressed by the workers.
// retryOn404 marks the jobs scatter: a 404 is retried on the next worker
// (the job may have been created there before a topology change) without
// feeding the failure machinery.
func (rt *Router) identityKey(r *http.Request) (key uint64, class string, retryOn404, cacheable bool) {
	p := r.URL.Path
	h := cache.NewHasher()
	h.String("fleet/identity")
	switch {
	case strings.HasPrefix(p, "/v1/jobs/"):
		id := strings.TrimPrefix(p, "/v1/jobs/")
		if i := strings.IndexByte(id, '/'); i >= 0 {
			id = id[:i]
		}
		h.String("job")
		h.String(id)
		return h.Sum(), "jobs", true, false
	case strings.HasPrefix(p, "/v1/datasets/"):
		id := strings.TrimPrefix(p, "/v1/datasets/")
		if i := strings.IndexByte(id, '/'); i >= 0 {
			id = id[:i]
		}
		q := r.URL.Query()
		h.String("dataset")
		h.Word(rt.datasetDigest(id))
		h.String(p)
		h.String(q.Get("stages"))
		h.String(q.Get("format"))
		return h.Sum(), "datasets", false, r.Method == http.MethodGet
	case p == "/v1/datasets":
		h.String("listing")
		return h.Sum(), "datasets", false, r.Method == http.MethodGet
	default:
		h.String("path")
		h.String(p)
		h.String(r.URL.RawQuery)
		return h.Sum(), "other", false, false
	}
}

// datasetDigest returns the learned content digest for a dataset id, or a
// stable hash of the id before any worker has reported one. Both sides of
// the fallback are deterministic, so routing is stable either way.
func (rt *Router) datasetDigest(id string) uint64 {
	rt.digestMu.RLock()
	d, ok := rt.digests[id]
	rt.digestMu.RUnlock()
	if ok {
		return d
	}
	h := cache.NewHasher()
	h.String("fleet/dataset-id")
	h.String(id)
	return h.Sum()
}

// --- proxying ----------------------------------------------------------------

// attemptResult is one worker's answer (or failure) for one attempt.
type attemptResult struct {
	idx  int
	w    *worker
	resp *upstreamResponse
	err  error
}

// statusRecorder captures the written status code for metrics/tracing.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (rec *statusRecorder) WriteHeader(code int) {
	if rec.status == 0 {
		rec.status = code
	}
	rec.ResponseWriter.WriteHeader(code)
}

func (rec *statusRecorder) Write(b []byte) (int, error) {
	if rec.status == 0 {
		rec.status = http.StatusOK
	}
	return rec.ResponseWriter.Write(b)
}

// proxy instruments one routed request — root span (continuing any
// incoming traceparent), per-request metrics with trace-id exemplar,
// structured log record, slow-request span-tree dump — around the
// routing machinery in proxyRouted.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sp := rt.cfg.Tracer.StartFromHeader(r.Header, "router.request")
	if sp != nil {
		sp.SetAttr("method", r.Method)
		sp.SetAttr("path", r.URL.Path)
		r = r.WithContext(obs.ContextWithSpan(r.Context(), sp))
	}
	rec := &statusRecorder{ResponseWriter: w}
	class := rt.proxyRouted(rec, r, start)
	code := rec.status
	if code == 0 {
		// Nothing written: the client went away mid-request.
		code = 499
	}
	dur := time.Since(start)
	traceID := ""
	if sp != nil {
		traceID = sp.TraceID().String()
		sp.SetAttr("class", class)
		sp.SetAttrInt("status", code)
		sp.End()
	}
	rt.met.observeRequest(class, code, dur, traceID)
	if lg := rt.cfg.Logger; lg != nil {
		l := obs.WithSpan(lg, sp)
		l.Info("request",
			"class", class, "method", r.Method, "path", r.URL.Path,
			"status", code, "dur_ms", float64(dur.Microseconds())/1000)
		if rt.cfg.SlowRequest > 0 && dur >= rt.cfg.SlowRequest && sp != nil {
			l.Warn("slow request",
				"threshold", rt.cfg.SlowRequest.String(),
				"span_tree", "\n"+obs.RenderTree(rt.cfg.Tracer.TraceSpans(traceID)))
		}
	}
}

// proxyRouted is the routing body: identity, attempts, degradation. It
// returns the route class for the metrics series.
func (rt *Router) proxyRouted(w http.ResponseWriter, r *http.Request, start time.Time) string {
	key, class, retryOn404, cacheable := rt.identityKey(r)

	var body []byte
	if r.Body != nil && r.Body != http.NoBody {
		var err error
		body, err = io.ReadAll(io.LimitReader(r.Body, maxRequestBody+1))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "reading request body: " + err.Error()})
			return class
		}
		if len(body) > maxRequestBody {
			writeJSON(w, http.StatusRequestEntityTooLarge, map[string]string{"error": "request body too large"})
			return class
		}
	}

	order := rendezvousOrder(rt.workers, key)
	candidates := make([]*worker, 0, len(order))
	for _, wk := range order {
		if wk.selectable() {
			candidates = append(candidates, wk)
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.RequestTimeout)
	defer cancel()

	res := rt.runAttempts(ctx, r, candidates, body, retryOn404)
	if res == nil {
		rt.degrade(w, r, key, cacheable)
		return class
	}

	if res.idx > 0 {
		rt.met.addFailover()
	}
	if r.Method == http.MethodGet && res.resp.status == http.StatusOK {
		rt.observeLatency(time.Since(start))
		if cacheable && res.resp.header.Get("Warning") == "" {
			rt.lkg.put(key, res.resp.header.Get("Content-Type"), res.resp.body)
		}
	}
	res.resp.copyHeaders(w.Header())
	w.Header().Set("X-Elites-Worker", res.w.name)
	w.WriteHeader(res.resp.status)
	w.Write(res.resp.body)
	return class
}

// runAttempts walks the candidate list: sequential budgeted retries on
// failure (with decorrelated-jitter backoff), plus at most one hedged
// attempt for GETs that outlive the latency trigger. It returns the
// winning result, or nil when every attempt failed (the degrade path).
func (rt *Router) runAttempts(ctx context.Context, r *http.Request, candidates []*worker, body []byte, retryOn404 bool) *attemptResult {
	if len(candidates) == 0 {
		return nil
	}
	pathq := r.URL.Path
	if r.URL.RawQuery != "" {
		pathq += "?" + r.URL.RawQuery
	}

	sp := obs.SpanFromContext(ctx)
	resc := make(chan attemptResult, len(candidates))
	launched := 0
	launch := func(hedge bool) bool {
		if launched >= len(candidates) {
			return false
		}
		wk, idx := candidates[launched], launched
		launched++
		go rt.attempt(ctx, wk, idx, hedge, r, pathq, body, resc)
		return true
	}

	launch(false)
	outstanding := 1
	retriesUsed := 0
	hedged := false
	canHedge := r.Method == http.MethodGet
	var hedgeC <-chan time.Time
	if d, ok := rt.hedgeDelay(); ok && canHedge && len(candidates) > 1 {
		timer := time.NewTimer(d)
		defer timer.Stop()
		hedgeC = timer.C
	}

	for outstanding > 0 {
		select {
		case res := <-resc:
			outstanding--
			v, tripped := rt.classify(&res, retryOn404)
			if tripped {
				sp.AddEvent("breaker.open", "worker", res.w.name)
				if lg := rt.cfg.Logger; lg != nil {
					obs.WithSpan(lg, sp).Warn("breaker open", "worker", res.w.name)
				}
			}
			switch v {
			case verdictServe:
				return &res
			case verdictSoft:
				// Jobs scatter: the worker is healthy, the job just is
				// not there. Try the next worker immediately; if the
				// scatter is exhausted, the 404 stands.
				if outstanding == 0 && !launch(false) {
					return &res
				}
				if outstanding == 0 {
					outstanding++
				}
			case verdictRetry:
				if outstanding > 0 {
					continue // a hedge is still in flight; let it answer
				}
				if retriesUsed >= rt.cfg.Retries {
					return nil
				}
				if !rt.backoffSleep(ctx) {
					return nil
				}
				if !launch(false) {
					return nil
				}
				retriesUsed++
				outstanding++
				rt.met.addRetry()
				sp.AddEvent("retry", "failed_worker", res.w.name)
			}
		case <-hedgeC:
			hedgeC = nil
			if !hedged && launch(true) {
				hedged = true
				outstanding++
				rt.met.addHedge()
				sp.AddEvent("hedge")
			}
		case <-ctx.Done():
			return nil
		}
	}
	return nil
}

type verdict int

const (
	verdictServe verdict = iota
	verdictRetry
	verdictSoft
)

// classify turns one attempt outcome into a verdict and feeds the
// worker's failure accounting. Transport errors and 5xx answers are
// worker faults (breaker input); 429 is a healthy-but-busy signal,
// retried without blaming the worker; a jobs-scatter 404 is soft.
// tripped reports whether this failure opened the worker's breaker.
func (rt *Router) classify(res *attemptResult, retryOn404 bool) (v verdict, tripped bool) {
	switch {
	case res.err != nil:
		return verdictRetry, res.w.noteRequestFailure()
	case res.resp.status >= 500:
		return verdictRetry, res.w.noteRequestFailure()
	case res.resp.status == http.StatusTooManyRequests:
		res.w.noteRequestSuccess()
		return verdictRetry, false
	case res.resp.status == http.StatusNotFound && retryOn404:
		res.w.noteRequestSuccess()
		return verdictSoft, false
	default:
		res.w.noteRequestSuccess()
		return verdictServe, false
	}
}

// attempt sends one request to one worker and reports on resc. Each
// attempt gets its own child span (hedged attempts are siblings with a
// hedge=true attr), and that span's traceparent is injected upstream so
// the worker's serve/pipeline spans continue the same trace.
func (rt *Router) attempt(ctx context.Context, wk *worker, idx int, hedge bool, r *http.Request, pathq string, body []byte, resc chan<- attemptResult) {
	asp := obs.SpanFromContext(ctx).Child("router.attempt")
	asp.SetAttr("worker", wk.name)
	asp.SetAttrInt("attempt", idx)
	if hedge {
		asp.SetAttrBool("hedge", true)
	}
	finish := func(res attemptResult) {
		switch {
		case res.err != nil:
			asp.SetAttr("error", res.err.Error())
			if errors.Is(res.err, faults.ErrInjected) {
				asp.AddEvent("fault.injected")
			}
		case res.resp != nil:
			asp.SetAttrInt("status", res.resp.status)
		}
		asp.End()
		resc <- res
	}

	req, err := http.NewRequestWithContext(ctx, r.Method, wk.url.String()+pathq, bodyReader(body))
	if err != nil {
		finish(attemptResult{idx: idx, w: wk, err: err})
		return
	}
	for _, k := range []string{"Content-Type", "Accept"} {
		if v := r.Header.Get(k); v != "" {
			req.Header.Set(k, v)
		}
	}
	obs.InjectHeader(req.Header, asp)
	resp, err := rt.client.Do(req)
	if err != nil {
		finish(attemptResult{idx: idx, w: wk, err: err})
		return
	}
	ur, err := readResponse(resp)
	finish(attemptResult{idx: idx, w: wk, resp: ur, err: err})
}

// backoffSleep waits one decorrelated-jitter interval:
// d = min(cap, uniform(base, 3*prev)). Returns false if ctx expired.
func (rt *Router) backoffSleep(ctx context.Context) bool {
	rt.jitterMu.Lock()
	base, hi := rt.cfg.BackoffBase, 3*rt.prevDelay
	if hi < base {
		hi = base
	}
	if hi > rt.cfg.BackoffCap {
		hi = rt.cfg.BackoffCap
	}
	d := base
	if span := hi - base; span > 0 {
		d = base + time.Duration(rt.backoff.Intn(int(span)))
	}
	rt.prevDelay = d
	rt.jitterMu.Unlock()

	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// retryAfterSeconds is the equal-jitter Retry-After for shed responses
// (1 or 2 seconds over a 2s base), so synchronized clients spread out.
func (rt *Router) retryAfterSeconds() int {
	rt.jitterMu.Lock()
	defer rt.jitterMu.Unlock()
	return 1 + rt.shedRNG.Intn(2)
}

// --- hedging -----------------------------------------------------------------

// observeLatency records one successful GET latency for the adaptive
// hedge trigger.
func (rt *Router) observeLatency(d time.Duration) {
	rt.latMu.Lock()
	rt.latRing[rt.latNext] = d.Seconds()
	rt.latNext = (rt.latNext + 1) % latencyRingSize
	if rt.latCount < latencyRingSize {
		rt.latCount++
	}
	rt.latMu.Unlock()
}

// hedgeDelay returns the current hedge trigger: the fixed HedgeAfter if
// configured, otherwise the p95 of recent successful GET latencies once
// enough samples exist. ok=false disables hedging for this request.
func (rt *Router) hedgeDelay() (time.Duration, bool) {
	if rt.cfg.HedgeAfter > 0 {
		return rt.cfg.HedgeAfter, true
	}
	rt.latMu.Lock()
	n := rt.latCount
	if n < rt.cfg.HedgeMinSamples {
		rt.latMu.Unlock()
		return 0, false
	}
	samples := make([]float64, n)
	copy(samples, rt.latRing[:n])
	rt.latMu.Unlock()
	sort.Float64s(samples)
	p95 := samples[(n*95)/100]
	d := time.Duration(p95 * float64(time.Second))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d, true
}

// --- degradation -------------------------------------------------------------

// degrade is the bottom of the ladder: every attempt failed. GETs with a
// last-known-good body serve those exact bytes (byte-identical to the
// last healthy response for this identity) with a Warning header;
// everything else sheds with 503 + jittered Retry-After.
func (rt *Router) degrade(w http.ResponseWriter, r *http.Request, key uint64, cacheable bool) {
	sp := obs.SpanFromContext(r.Context())
	if r.Method == http.MethodGet && cacheable {
		if ct, body, ok := rt.lkg.get(key); ok {
			if ct != "" {
				w.Header().Set("Content-Type", ct)
			}
			w.Header().Set("Warning", `199 eliterouter "degraded: serving last-known-good cached response"`)
			w.Header().Set("X-Elites-Degraded", "true")
			w.WriteHeader(http.StatusOK)
			w.Write(body)
			rt.met.addDegraded()
			sp.AddEvent("degraded")
			if lg := rt.cfg.Logger; lg != nil {
				obs.WithSpan(lg, sp).Warn("degraded response", "path", r.URL.Path)
			}
			return
		}
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", rt.retryAfterSeconds()))
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{
		"error": "no worker available and no cached response",
	})
	rt.met.addShed()
	sp.AddEvent("shed")
	if lg := rt.cfg.Logger; lg != nil {
		obs.WithSpan(lg, sp).Warn("request shed", "path", r.URL.Path)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
