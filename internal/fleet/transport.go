package fleet

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"strings"

	"elites/internal/faults"
)

// transport.go injects the fleet's network fault surface into the router's
// HTTP transport. Every proxied attempt consults the injector at
// "net:<worker host:port>" before touching the wire, so a chaos spec like
// "net:127.0.0.1:9001=drop:times=3,net:*=slow:delay=5ms:p=0.2" produces
// deterministic connection drops, added latency and 5xx bursts — the
// failure menu the retry/hedge/breaker machinery exists to absorb —
// without a flaky network or iptables.

// faultTransport wraps a base RoundTripper with injected network faults.
type faultTransport struct {
	base http.RoundTripper
	inj  *faults.Injector
}

// RoundTrip consults the injector for the target worker. KindSlow rules
// delay in Net (honoring the request context); a KindDrop error surfaces
// as a transport failure (torn connection); a Kind5xx error synthesizes a
// 503 from the worker without touching it, like an overloaded or crashing
// replica answering from its front door.
func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if err := t.inj.Net(req.Context(), req.URL.Host); err != nil {
		switch {
		case errors.Is(err, faults.ErrHTTP5xx):
			body := `{"error":"injected upstream 5xx"}` + "\n"
			return &http.Response{
				StatusCode:    http.StatusServiceUnavailable,
				Status:        "503 Service Unavailable",
				Proto:         req.Proto,
				ProtoMajor:    req.ProtoMajor,
				ProtoMinor:    req.ProtoMinor,
				Header:        http.Header{"Content-Type": []string{"application/json"}},
				Body:          io.NopCloser(strings.NewReader(body)),
				ContentLength: int64(len(body)),
				Request:       req,
			}, nil
		default:
			// Drops, context expiry from a slow rule, and any other
			// injected failure all surface as transport errors.
			return nil, err
		}
	}
	return t.base.RoundTrip(req)
}

// upstreamResponse is one fully-read worker response: the attempt loop
// buffers bodies so hedged losers can be discarded and winners can be
// written (and possibly stored as last-known-good) atomically.
type upstreamResponse struct {
	status int
	header http.Header
	body   []byte
}

// copyHeaders transplants the response headers a client needs from a
// buffered upstream response (Content-Length is recomputed by the writer).
func (u *upstreamResponse) copyHeaders(dst http.Header) {
	for _, k := range []string{"Content-Type", "Warning", "Retry-After"} {
		if v := u.header.Get(k); v != "" {
			dst.Set(k, v)
		}
	}
}

// readResponse drains and closes an *http.Response into an
// upstreamResponse, capped at maxResponseBody.
func readResponse(resp *http.Response) (*upstreamResponse, error) {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBody))
	if err != nil {
		return nil, err
	}
	return &upstreamResponse{status: resp.StatusCode, header: resp.Header, body: body}, nil
}

// bodyReader returns a fresh reader over the buffered request body for one
// attempt (every retry and hedge re-sends the same bytes).
func bodyReader(body []byte) io.ReadCloser {
	if len(body) == 0 {
		return http.NoBody
	}
	return io.NopCloser(bytes.NewReader(body))
}
