package fleet

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"elites/internal/cache"
)

// newTestRouter builds a Router with fast test timings over worker URLs.
func newTestRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = time.Millisecond
	}
	if cfg.BackoffCap == 0 {
		cfg.BackoffCap = 2 * time.Millisecond
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = time.Hour // probes driven manually via ProbeNow
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

// behaviorSet maps worker host:port -> handler behavior, shared by every
// fake worker in a test so behaviors can be assigned after the rendezvous
// order is known.
type behaviorSet struct {
	mu sync.Mutex
	m  map[string]http.HandlerFunc
}

func newBehaviorSet() *behaviorSet { return &behaviorSet{m: map[string]http.HandlerFunc{}} }

func (b *behaviorSet) set(addr string, h http.HandlerFunc) {
	b.mu.Lock()
	b.m[addr] = h
	b.mu.Unlock()
}

func (b *behaviorSet) handler(w http.ResponseWriter, r *http.Request) {
	b.mu.Lock()
	h := b.m[r.Host]
	b.mu.Unlock()
	if h == nil {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintf(w, "default from %s", r.Host)
		return
	}
	h(w, r)
}

// fakeFleet spins up n fake workers over one behaviorSet.
func fakeFleet(t *testing.T, n int) (*behaviorSet, []string) {
	t.Helper()
	bs := newBehaviorSet()
	addrs := make([]string, n)
	for i := range addrs {
		ts := httptest.NewServer(http.HandlerFunc(bs.handler))
		t.Cleanup(ts.Close)
		addrs[i] = strings.TrimPrefix(ts.URL, "http://")
	}
	return bs, addrs
}

func respondText(code int, body string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(code)
		fmt.Fprint(w, body)
	}
}

// orderFor returns the router's rendezvous order for a request path.
func orderFor(rt *Router, method, target string) []*worker {
	req := httptest.NewRequest(method, target, nil)
	key, _, _, _ := rt.identityKey(req)
	return rendezvousOrder(rt.workers, key)
}

func doGet(rt *Router, target string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, target, nil))
	return rec
}

// --- placement ---------------------------------------------------------------

// TestRendezvousStability: ranking is deterministic, spreads identities
// across workers, and removing a worker never reorders the survivors —
// the property that keeps cache identities pinned through topology churn.
func TestRendezvousStability(t *testing.T) {
	var workers []*worker
	for i := 0; i < 5; i++ {
		w, err := newWorker(fmt.Sprintf("10.0.0.%d:9000", i))
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
	}

	primaries := map[string]int{}
	for k := 0; k < 200; k++ {
		h := cache.NewHasher()
		h.String("test/key")
		h.Word(uint64(k))
		key := h.Sum()

		o1 := rendezvousOrder(workers, key)
		o2 := rendezvousOrder(workers, key)
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("key %d: order not deterministic", k)
			}
		}
		primaries[o1[0].name]++

		// Drop the primary: the survivors keep their relative order.
		survivors := make([]*worker, 0, len(workers)-1)
		for _, w := range workers {
			if w != o1[0] {
				survivors = append(survivors, w)
			}
		}
		after := rendezvousOrder(survivors, key)
		for i := range after {
			if after[i] != o1[i+1] {
				t.Fatalf("key %d: removal remapped survivors (pos %d: %s != %s)",
					k, i, after[i].name, o1[i+1].name)
			}
		}
	}
	// Placement is reasonably spread: every worker owns something.
	if len(primaries) != len(workers) {
		t.Fatalf("placement collapsed: only %d of %d workers are primaries: %v",
			len(primaries), len(workers), primaries)
	}
}

// TestIdentityKeySeparation: the stage subset, format and dataset digest
// are all part of the routed identity, matching the workers' cache keys.
func TestIdentityKeySeparation(t *testing.T) {
	_, addrs := fakeFleet(t, 2)
	rt := newTestRouter(t, Config{Workers: addrs})

	keyOf := func(target string) uint64 {
		k, _, _, _ := rt.identityKey(httptest.NewRequest(http.MethodGet, target, nil))
		return k
	}
	base := keyOf("/v1/datasets/demo/report?stages=summary")
	if keyOf("/v1/datasets/demo/report?stages=summary") != base {
		t.Fatal("identity key not deterministic")
	}
	if keyOf("/v1/datasets/demo/report?stages=summary,degree") == base {
		t.Fatal("stage subset does not separate identities")
	}
	if keyOf("/v1/datasets/demo/report?stages=summary&format=text") == base {
		t.Fatal("format does not separate identities")
	}

	// Learning a digest moves the dataset's identities (now keyed by
	// content, like the workers' own cache).
	rt.digestMu.Lock()
	rt.digests["demo"] = 0xfeed
	rt.digestMu.Unlock()
	if keyOf("/v1/datasets/demo/report?stages=summary") == base {
		t.Fatal("learned digest did not change the identity key")
	}
}

// --- worker state machine ----------------------------------------------------

func TestWorkerHealthStateMachine(t *testing.T) {
	w, err := newWorker("127.0.0.1:9001")
	if err != nil {
		t.Fatal(err)
	}
	const eject, probation = 3, 3

	// up -> down takes eject consecutive failures.
	for i := 0; i < eject-1; i++ {
		if ejected, _ := w.noteProbe(false, eject, probation); ejected {
			t.Fatalf("ejected after only %d failures", i+1)
		}
	}
	if ejected, _ := w.noteProbe(false, eject, probation); !ejected || w.available() {
		t.Fatal("not ejected at the threshold")
	}

	// down -> probation on the first healthy probe; traffic flows again.
	if _, readmitted := w.noteProbe(true, eject, probation); !readmitted || !w.available() {
		t.Fatal("healthy probe did not readmit to probation")
	}

	// Any failure during probation goes straight back down.
	if ejected, _ := w.noteProbe(false, eject, probation); !ejected || w.available() {
		t.Fatal("probation failure did not re-eject")
	}

	// Full recovery: readmit, then a clean streak promotes to up.
	w.noteProbe(true, eject, probation)
	w.noteProbe(true, eject, probation)
	w.noteProbe(true, eject, probation)
	w.mu.Lock()
	st := w.state
	w.mu.Unlock()
	if st != stateUp {
		t.Fatalf("state after clean streak = %v, want up", st)
	}

	// A request failure during probation also re-ejects.
	w.noteProbe(false, eject, probation)
	w.noteProbe(false, eject, probation)
	w.noteProbe(false, eject, probation)
	w.noteProbe(true, eject, probation) // probation again
	w.noteRequestFailure()
	if w.available() {
		t.Fatal("request failure during probation did not re-eject")
	}
}

func TestWorkerBreaker(t *testing.T) {
	w, err := newWorker("127.0.0.1:9001")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < breakerTripAfter-1; i++ {
		if tripped := w.noteRequestFailure(); tripped {
			t.Fatalf("breaker tripped after only %d failures", i+1)
		}
	}
	if !w.noteRequestFailure() {
		t.Fatalf("breaker did not trip at %d consecutive failures", breakerTripAfter)
	}

	// While open, only every breakerProbeAfter-th selection passes.
	passed := 0
	for i := 1; i <= 2*breakerProbeAfter; i++ {
		if w.selectable() {
			passed++
			if i%breakerProbeAfter != 0 {
				t.Fatalf("selection %d passed an open breaker off-cadence", i)
			}
		}
	}
	if passed != 2 {
		t.Fatalf("%d probe selections in %d asks, want 2", passed, 2*breakerProbeAfter)
	}

	// One success closes it.
	w.noteRequestSuccess()
	if !w.selectable() {
		t.Fatal("breaker still open after a success")
	}
}

// --- routing behaviors -------------------------------------------------------

// TestRetryFailsOverToNextWorker: a 5xx from the rendezvous primary is
// retried on the next worker in hash order and feeds the primary's
// failure accounting.
func TestRetryFailsOverToNextWorker(t *testing.T) {
	bs, addrs := fakeFleet(t, 2)
	rt := newTestRouter(t, Config{Workers: addrs})

	const target = "/v1/datasets/demo/report?stages=summary"
	order := orderFor(rt, http.MethodGet, target)
	bs.set(order[0].name, respondText(http.StatusInternalServerError, `{"error":"boom"}`))
	bs.set(order[1].name, respondText(http.StatusOK, "ok from backup"))

	rec := doGet(rt, target)
	if rec.Code != http.StatusOK || rec.Body.String() != "ok from backup" {
		t.Fatalf("failover response: %d %q", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Elites-Worker"); got != order[1].name {
		t.Fatalf("served by %q, want backup %q", got, order[1].name)
	}
	retries, _, failovers, _, _ := rt.met.counters()
	if retries != 1 || failovers != 1 {
		t.Fatalf("retries=%d failovers=%d, want 1/1", retries, failovers)
	}
	if info := order[0].info(); info.Failures != 1 {
		t.Fatalf("primary failures = %d, want 1", info.Failures)
	}
}

// TestRetryBudgetExhaustion: with every worker failing and no cached
// body, the request sheds with 503 + equal-jitter Retry-After — never a
// hung connection, never a raw 502.
func TestRetryBudgetExhaustion(t *testing.T) {
	bs, addrs := fakeFleet(t, 2)
	rt := newTestRouter(t, Config{Workers: addrs, Retries: 2})
	for _, a := range addrs {
		bs.set(a, respondText(http.StatusBadGateway, "down"))
	}

	rec := doGet(rt, "/v1/datasets/demo/report?stages=summary")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("exhausted budget: %d, want 503", rec.Code)
	}
	ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil || ra < 1 || ra > 2 {
		t.Fatalf("Retry-After = %q, want jittered 1..2", rec.Header().Get("Retry-After"))
	}
	_, _, _, _, shed := rt.met.counters()
	if shed != 1 {
		t.Fatalf("shed = %d, want 1", shed)
	}
}

// TestHedgedRead: a GET whose primary dawdles past the hedge trigger is
// answered by a speculative attempt on the next worker.
func TestHedgedRead(t *testing.T) {
	bs, addrs := fakeFleet(t, 2)
	rt := newTestRouter(t, Config{Workers: addrs, HedgeAfter: 10 * time.Millisecond})

	const target = "/v1/datasets/demo/report?stages=summary"
	order := orderFor(rt, http.MethodGet, target)
	bs.set(order[0].name, func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(400 * time.Millisecond)
		fmt.Fprint(w, "slow primary")
	})
	bs.set(order[1].name, respondText(http.StatusOK, "fast hedge"))

	start := time.Now()
	rec := doGet(rt, target)
	if rec.Code != http.StatusOK || rec.Body.String() != "fast hedge" {
		t.Fatalf("hedged response: %d %q", rec.Code, rec.Body.String())
	}
	if d := time.Since(start); d > 300*time.Millisecond {
		t.Fatalf("hedge did not cut latency: %v", d)
	}
	_, hedges, failovers, _, _ := rt.met.counters()
	if hedges != 1 || failovers != 1 {
		t.Fatalf("hedges=%d failovers=%d, want 1/1", hedges, failovers)
	}
}

// TestDegradedServesLastKnownGood: after a clean response is recorded,
// total fleet failure serves those exact bytes with a Warning header and
// a 200 — the acceptance bar is byte-identity, not similarity.
func TestDegradedServesLastKnownGood(t *testing.T) {
	bs, addrs := fakeFleet(t, 2)
	rt := newTestRouter(t, Config{Workers: addrs, CacheDir: t.TempDir()})

	const target = "/v1/datasets/demo/report?stages=summary"
	clean := `{"summary":{"nodes":400}}`
	for _, a := range addrs {
		bs.set(a, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, clean)
		})
	}
	if rec := doGet(rt, target); rec.Code != http.StatusOK {
		t.Fatalf("warm request: %d", rec.Code)
	}

	// The fleet dies.
	for _, a := range addrs {
		bs.set(a, respondText(http.StatusInternalServerError, "dead"))
	}
	rec := doGet(rt, target)
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded request: %d, want 200", rec.Code)
	}
	if rec.Body.String() != clean {
		t.Fatalf("degraded body %q not byte-identical to clean body %q", rec.Body.String(), clean)
	}
	if rec.Header().Get("X-Elites-Degraded") != "true" ||
		!strings.Contains(rec.Header().Get("Warning"), "last-known-good") {
		t.Fatalf("degraded markers missing: %v", rec.Header())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("degraded Content-Type = %q", ct)
	}
	_, _, _, degraded, shed := rt.met.counters()
	if degraded != 1 || shed != 0 {
		t.Fatalf("degraded=%d shed=%d, want 1/0", degraded, shed)
	}

	// A degraded body must never refresh the last-known-good store: the
	// Warning-bearing 200 is not a clean observation. (Worker-degraded
	// bodies carry Warning too and are likewise not recorded.)
	rec2 := doGet(rt, target)
	if rec2.Code != http.StatusOK || rec2.Body.String() != clean {
		t.Fatalf("second degraded read: %d %q", rec2.Code, rec2.Body.String())
	}
}

// TestJobsScatter: job lookups are routed by job id, and a 404 (the job
// lives on another worker after topology churn) scatters to the next
// worker without feeding the failure machinery.
func TestJobsScatter(t *testing.T) {
	bs, addrs := fakeFleet(t, 2)
	rt := newTestRouter(t, Config{Workers: addrs})

	const target = "/v1/jobs/abc123"
	order := orderFor(rt, http.MethodGet, target)
	bs.set(order[0].name, respondText(http.StatusNotFound, `{"error":"unknown job"}`))
	bs.set(order[1].name, respondText(http.StatusOK, `{"state":"done"}`))

	rec := doGet(rt, target)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "done") {
		t.Fatalf("scattered job lookup: %d %q", rec.Code, rec.Body.String())
	}
	if info := order[0].info(); info.Failures != 0 {
		t.Fatalf("scatter 404 counted as a worker failure: %+v", info)
	}
	retries, _, _, _, _ := rt.met.counters()
	if retries != 0 {
		t.Fatalf("scatter counted as a retry: %d", retries)
	}

	// Nobody has the job: the 404 stands (it is an answer, not a fault).
	bs.set(order[1].name, respondText(http.StatusNotFound, `{"error":"unknown job"}`))
	if rec := doGet(rt, target); rec.Code != http.StatusNotFound {
		t.Fatalf("exhausted scatter: %d, want 404", rec.Code)
	}
}

// --- health probing ----------------------------------------------------------

// healthToggle is a fake worker health surface with a flippable state.
type healthToggle struct {
	mu      sync.Mutex
	healthy map[string]bool
}

func (h *healthToggle) handler(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	ok := h.healthy[r.Host]
	h.mu.Unlock()
	switch {
	case r.URL.Path == "/healthz" && ok:
		fmt.Fprint(w, `{"status":"ok"}`)
	case r.URL.Path == "/healthz":
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"status":"draining"}`)
	case r.URL.Path == "/v1/datasets":
		fmt.Fprint(w, `{"datasets":[{"id":"demo","digest":"00000000000000ff"}]}`)
	default:
		w.WriteHeader(http.StatusOK)
	}
}

func (h *healthToggle) set(addr string, ok bool) {
	h.mu.Lock()
	h.healthy[addr] = ok
	h.mu.Unlock()
}

// TestProbeEjectionAndReadmission walks the full health cycle: eject
// after consecutive probe failures, readmit to probation on recovery,
// promote to up after a clean streak — with the transitions visible in
// /metrics and /fleet/workers.
func TestProbeEjectionAndReadmission(t *testing.T) {
	ht := &healthToggle{healthy: map[string]bool{}}
	ts1 := httptest.NewServer(http.HandlerFunc(ht.handler))
	ts2 := httptest.NewServer(http.HandlerFunc(ht.handler))
	t.Cleanup(ts1.Close)
	t.Cleanup(ts2.Close)
	a1 := strings.TrimPrefix(ts1.URL, "http://")
	a2 := strings.TrimPrefix(ts2.URL, "http://")
	ht.set(a1, true)
	ht.set(a2, true)

	rt := newTestRouter(t, Config{Workers: []string{a1, a2}, EjectAfter: 3, ProbationProbes: 3})
	ctx := context.Background()

	rt.ProbeNow(ctx)
	if d := rt.datasetDigest("demo"); d != 0xff {
		t.Fatalf("digest learning: got %#x, want 0xff", d)
	}

	// Worker 2 turns unhealthy (e.g. draining): three probe failures eject.
	ht.set(a2, false)
	for i := 0; i < 3; i++ {
		rt.ProbeNow(ctx)
	}
	var w2 *worker
	for _, w := range rt.workers {
		if w.name == a2 {
			w2 = w
		}
	}
	if w2.available() {
		t.Fatal("unhealthy worker not ejected after 3 probe failures")
	}
	rec := doGet(rt, "/metrics")
	body := rec.Body.String()
	if !strings.Contains(body, fmt.Sprintf("eliterouter_worker_up{worker=%q} 0", a2)) ||
		!strings.Contains(body, "eliterouter_workers_available 1") {
		t.Fatalf("metrics do not show the ejection:\n%s", body)
	}

	// Recovery: first healthy probe readmits (traffic flows, probation),
	// two more promote to up.
	ht.set(a2, true)
	rt.ProbeNow(ctx)
	if !w2.available() {
		t.Fatal("healthy probe did not readmit")
	}
	if st := w2.info().State; st != "probation" {
		t.Fatalf("state after readmission = %q, want probation", st)
	}
	rt.ProbeNow(ctx)
	rt.ProbeNow(ctx)
	if st := w2.info().State; st != "up" {
		t.Fatalf("state after clean streak = %q, want up", st)
	}
	if !strings.Contains(doGet(rt, "/metrics").Body.String(), "eliterouter_readmissions_total 1") {
		t.Fatal("readmission not counted")
	}
}

// TestDownWorkerReceivesNoTraffic: requests for an identity whose primary
// is down go straight to the backup, with no retry spent.
func TestDownWorkerReceivesNoTraffic(t *testing.T) {
	bs, addrs := fakeFleet(t, 2)
	rt := newTestRouter(t, Config{Workers: addrs, EjectAfter: 1})

	const target = "/v1/datasets/demo/report?stages=summary"
	order := orderFor(rt, http.MethodGet, target)
	bs.set(order[0].name, respondText(http.StatusOK, "primary"))
	bs.set(order[1].name, respondText(http.StatusOK, "backup"))

	// Mark the primary down directly (the prober's job).
	order[0].noteProbe(false, 1, 3)
	if order[0].available() {
		t.Fatal("setup: primary should be down")
	}
	rec := doGet(rt, target)
	if rec.Code != http.StatusOK || rec.Body.String() != "backup" {
		t.Fatalf("down-primary routing: %d %q", rec.Code, rec.Body.String())
	}
	retries, _, _, _, _ := rt.met.counters()
	if retries != 0 {
		t.Fatalf("skipping a down worker burned %d retries", retries)
	}
	if info := order[0].info(); info.Requests != 0 {
		t.Fatalf("down worker still saw %d requests", info.Requests)
	}
}
