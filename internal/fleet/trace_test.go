package fleet

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"elites/internal/obs"
)

// trace_test.go pins the router half of the tracing contract: every
// proxied request opens one router.request root span, each attempt is a
// child carrying the worker name, the traceparent header injected
// upstream puts both workers' serve spans in the same trace, retries and
// hedges surface as events/sibling spans, and the registry-rendered
// /metrics stays valid exposition. Run under -race by CI.

func newTraceTracer(seed uint64) *obs.Tracer {
	return obs.NewTracer(obs.TracerConfig{Name: "router", Seed: seed})
}

// TestTraceRetryOneTraceID: a failing primary forces a retry onto the
// second worker; both workers receive traceparent headers naming the
// SAME trace, the root span records the retry event, and /debug/traces
// serves the whole tree.
func TestTraceRetryOneTraceID(t *testing.T) {
	bs, addrs := fakeFleet(t, 2)
	tr := newTraceTracer(9)
	rt := newTestRouter(t, Config{Workers: addrs, Retries: 1, Tracer: tr})

	const target = "/v1/datasets/demo/report?stages=summary"
	order := orderFor(rt, http.MethodGet, target)

	seen := make(chan string, 2)
	bs.set(order[0].name, func(w http.ResponseWriter, r *http.Request) {
		seen <- r.Header.Get("traceparent")
		w.WriteHeader(http.StatusInternalServerError)
	})
	bs.set(order[1].name, func(w http.ResponseWriter, r *http.Request) {
		seen <- r.Header.Get("traceparent")
		w.Write([]byte("ok from retry"))
	})

	rec := doGet(rt, target)
	if rec.Code != http.StatusOK || rec.Body.String() != "ok from retry" {
		t.Fatalf("retried response: %d %q", rec.Code, rec.Body.String())
	}

	tp1, tp2 := <-seen, <-seen
	trace1, parent1, ok1 := obs.ParseTraceparent(tp1)
	trace2, parent2, ok2 := obs.ParseTraceparent(tp2)
	if !ok1 || !ok2 {
		t.Fatalf("workers received unparseable traceparents %q %q", tp1, tp2)
	}
	if trace1 != trace2 {
		t.Fatalf("attempts carried different trace ids: %s vs %s", trace1, trace2)
	}
	if parent1 == parent2 {
		t.Fatal("attempts shared a span id; want distinct sibling spans")
	}

	spans := tr.TraceSpans(trace1.String())
	var root *obs.SpanRecord
	attempts := 0
	for i, rec := range spans {
		switch rec.Name {
		case "router.request":
			root = &spans[i]
		case "router.attempt":
			attempts++
		}
	}
	if root == nil || attempts != 2 {
		t.Fatalf("trace has root=%v attempts=%d, want root + 2 attempts", root != nil, attempts)
	}
	if root.Attrs["status"] != "200" {
		t.Fatalf("root status attr = %q", root.Attrs["status"])
	}
	retried := false
	for _, ev := range root.Events {
		if ev.Name == "retry" && ev.Attrs["failed_worker"] == order[0].name {
			retried = true
		}
	}
	if !retried {
		t.Fatalf("root events %+v missing retry(failed_worker=%s)", root.Events, order[0].name)
	}

	// The same tree must come back over GET /debug/traces.
	dbg := doGet(rt, "/debug/traces?trace="+trace1.String())
	if dbg.Code != http.StatusOK {
		t.Fatalf("/debug/traces: %d", dbg.Code)
	}
	for _, want := range []string{trace1.String(), "router.request", "router.attempt"} {
		if !strings.Contains(dbg.Body.String(), want) {
			t.Fatalf("/debug/traces missing %q:\n%s", want, dbg.Body.String())
		}
	}
}

// TestTraceHedgeSiblingSpans: a hedged read produces two sibling
// router.attempt spans under one root, the speculative one marked
// hedge=true, with a hedge event on the root.
func TestTraceHedgeSiblingSpans(t *testing.T) {
	bs, addrs := fakeFleet(t, 2)
	tr := newTraceTracer(9)
	rt := newTestRouter(t, Config{Workers: addrs, HedgeAfter: 10 * time.Millisecond, Tracer: tr})

	const target = "/v1/datasets/demo/report?stages=summary"
	order := orderFor(rt, http.MethodGet, target)
	release := make(chan struct{})
	bs.set(order[0].name, func(w http.ResponseWriter, r *http.Request) {
		<-release
		w.Write([]byte("slow primary"))
	})
	bs.set(order[1].name, respondText(http.StatusOK, "fast hedge"))
	defer close(release)

	rec := doGet(rt, target)
	if rec.Code != http.StatusOK || rec.Body.String() != "fast hedge" {
		t.Fatalf("hedged response: %d %q", rec.Code, rec.Body.String())
	}

	// The root span ends when the handler returns; the hedged attempt's
	// span is recorded before its result is delivered, so both are in the
	// ring now (the abandoned primary attempt may still be parked).
	var rootID, trace string
	for _, rec := range tr.Spans() {
		if rec.Name == "router.request" {
			rootID, trace = rec.Span, rec.Trace
		}
	}
	if rootID == "" {
		t.Fatal("no router.request span recorded")
	}
	hedged := 0
	for _, rec := range tr.TraceSpans(trace) {
		if rec.Name != "router.attempt" {
			continue
		}
		if rec.Parent != rootID {
			t.Fatalf("attempt span parent = %s, want root %s", rec.Parent, rootID)
		}
		if rec.Attrs["hedge"] == "true" {
			hedged++
			if rec.Attrs["worker"] != order[1].name {
				t.Fatalf("hedged attempt ran on %s, want %s", rec.Attrs["worker"], order[1].name)
			}
		}
	}
	if hedged != 1 {
		t.Fatalf("hedge=true attempt spans = %d, want 1", hedged)
	}
}

// TestFleetMetricsExpositionValid: the router's registry-rendered
// /metrics passes the strict validator and keeps every pre-existing
// metric name (scripts/fleetload.sh and CI grep these).
func TestFleetMetricsExpositionValid(t *testing.T) {
	bs, addrs := fakeFleet(t, 2)
	tr := newTraceTracer(9)
	rt := newTestRouter(t, Config{Workers: addrs, Tracer: tr})
	bs.set(addrs[0], respondText(http.StatusOK, "ok"))
	bs.set(addrs[1], respondText(http.StatusOK, "ok"))
	doGet(rt, "/v1/datasets/demo/report?stages=summary")

	rec := doGet(rt, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	body := rec.Body.String()
	if err := obs.ValidateExposition([]byte(body)); err != nil {
		t.Fatalf("fleet /metrics invalid exposition: %v\n%s", err, body)
	}
	for _, name := range []string{
		"eliterouter_uptime_seconds",
		"eliterouter_worker_up",
		"eliterouter_workers_available",
		"eliterouter_breaker_open",
		"eliterouter_requests_total",
		"eliterouter_request_duration_seconds_bucket",
		"eliterouter_retries_total",
		"eliterouter_hedges_total",
		"eliterouter_failovers_total",
		"eliterouter_breaker_trips_total",
		"eliterouter_degraded_total",
		"eliterouter_shed_total",
		"eliterouter_probe_failures_total",
		"eliterouter_ejections_total",
		"eliterouter_readmissions_total",
	} {
		if !strings.Contains(body, name) {
			t.Fatalf("/metrics missing pre-existing metric %q:\n%s", name, body)
		}
	}
	// fleetload.sh parses worker_up lines as exactly 'name{...} 0|1'.
	if !strings.Contains(body, `eliterouter_worker_up{worker="`+addrs[0]+`"} 1`) &&
		!strings.Contains(body, `eliterouter_worker_up{worker="`+addrs[0]+`"} 0`) {
		t.Fatalf("worker_up gauge not rendered as integral 0/1:\n%s", body)
	}
	if strings.Contains(body, "trace_id") {
		t.Fatalf("classic /metrics leaked exemplars:\n%s", body)
	}

	// OpenMetrics flavor adds exemplars + EOF.
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text")
	omrec := httptest.NewRecorder()
	rt.ServeHTTP(omrec, req)
	om := omrec.Body.String()
	if !strings.Contains(om, "# EOF") || !strings.Contains(om, "trace_id") {
		t.Fatalf("OpenMetrics /metrics missing EOF or exemplars:\n%s", om)
	}
}
