package fleet

import (
	"io"
	"strconv"
	"sync/atomic"
	"time"

	"elites/internal/obs"
)

// metrics.go is the router's exposition, rendered from the shared
// obs.Registry like internal/serve: per-worker availability and breaker
// gauges plus fleet-wide counters for every robustness mechanism —
// retries, hedges, failovers, ejections, degraded serves — so an
// operator watching a chaos drill can see exactly which layer absorbed
// each fault. Every metric name from the pre-registry emitter is
// preserved; per-worker gauge rows are rebuilt from a live workerInfo
// snapshot on each scrape.

type fleetMetrics struct {
	reg *obs.Registry

	workerUp    *obs.GaugeVec
	available   *obs.Gauge
	breakerOpen *obs.GaugeVec
	brTrips     atomic.Uint64 // synced from workerInfo on each scrape

	requests *obs.CounterVec
	latency  *obs.Histogram

	retries      *obs.Counter // sequential failover attempts after a failure
	hedges       *obs.Counter // speculative attempts launched by the latency trigger
	failovers    *obs.Counter // responses ultimately served by a non-primary worker
	degraded     *obs.Counter // last-known-good bodies served with a Warning header
	shed         *obs.Counter // 503s with no worker and no last-known-good body
	probeFails   *obs.Counter // health probes that failed
	ejections    *obs.Counter // workers ejected (up/probation -> down)
	readmissions *obs.Counter // workers readmitted to probation
}

func newFleetMetrics(now time.Time) *fleetMetrics {
	reg := obs.NewRegistry()
	m := &fleetMetrics{reg: reg}

	reg.GaugeFunc("eliterouter_uptime_seconds", "Time since the router started.", 3,
		func() float64 { return time.Since(now).Seconds() })
	m.workerUp = reg.GaugeVec("eliterouter_worker_up",
		"Whether the health prober considers the worker servable (up or probation).",
		obs.GaugeShortest, "worker")
	m.available = reg.Gauge("eliterouter_workers_available", "Workers currently servable.", obs.GaugeShortest)
	m.breakerOpen = reg.GaugeVec("eliterouter_breaker_open",
		"Whether the worker's request circuit breaker is open.",
		obs.GaugeShortest, "worker")
	m.requests = reg.CounterVec("eliterouter_requests_total",
		"Routed requests by route class and status code.", "route", "code")
	m.latency = reg.Histogram("eliterouter_request_duration_seconds",
		"Routed request latency.", obs.DefaultLatencyBuckets)

	m.retries = reg.Counter("eliterouter_retries_total", "Failover attempts launched after a failed attempt.")
	m.hedges = reg.Counter("eliterouter_hedges_total", "Speculative (hedged) attempts launched by the latency trigger.")
	m.failovers = reg.Counter("eliterouter_failovers_total", "Responses served by a worker other than the rendezvous primary.")
	reg.CounterFunc("eliterouter_breaker_trips_total", "Per-worker circuit breaker open transitions.",
		m.brTrips.Load)
	m.degraded = reg.Counter("eliterouter_degraded_total", "Last-known-good cached bodies served because every attempt failed.")
	m.shed = reg.Counter("eliterouter_shed_total", "Requests shed with 503 (no worker available, no cached body).")
	m.probeFails = reg.Counter("eliterouter_probe_failures_total", "Health probes that failed.")
	m.ejections = reg.Counter("eliterouter_ejections_total", "Workers ejected by the health prober.")
	m.readmissions = reg.Counter("eliterouter_readmissions_total", "Workers readmitted to probation after a healthy probe.")
	return m
}

// observeRequest records one routed request; traceID, when non-empty,
// becomes the latency bucket's exemplar.
func (m *fleetMetrics) observeRequest(route string, code int, d time.Duration, traceID string) {
	m.requests.Inc(route, strconv.Itoa(code))
	m.latency.ObserveExemplar(d.Seconds(), traceID)
}

func (m *fleetMetrics) addRetry()       { m.retries.Inc() }
func (m *fleetMetrics) addHedge()       { m.hedges.Inc() }
func (m *fleetMetrics) addFailover()    { m.failovers.Inc() }
func (m *fleetMetrics) addDegraded()    { m.degraded.Inc() }
func (m *fleetMetrics) addShed()        { m.shed.Inc() }
func (m *fleetMetrics) addProbeFail()   { m.probeFails.Inc() }
func (m *fleetMetrics) addEjection()    { m.ejections.Inc() }
func (m *fleetMetrics) addReadmission() { m.readmissions.Inc() }

// counters snapshots the robustness counters, for tests.
func (m *fleetMetrics) counters() (retries, hedges, failovers, degraded, shed uint64) {
	return m.retries.Value(), m.hedges.Value(), m.failovers.Value(), m.degraded.Value(), m.shed.Value()
}

// sync rebuilds the per-worker gauges and the trip total from a live
// snapshot; called by write before rendering.
func (m *fleetMetrics) sync(infos []workerInfo) {
	m.workerUp.Reset()
	m.breakerOpen.Reset()
	available := 0
	var trips uint64
	for _, wi := range infos {
		up := 0.0
		if wi.State != "down" {
			up = 1
			available++
		}
		m.workerUp.Set(up, wi.Worker)
		open := 0.0
		if wi.BreakerOpen {
			open = 1
		}
		m.breakerOpen.Set(open, wi.Worker)
		trips += wi.brTrips
	}
	m.available.Set(float64(available))
	m.brTrips.Store(trips)
}

// write renders the exposition in the requested flavor; infos carries
// the per-worker state rows.
func (m *fleetMetrics) write(w io.Writer, infos []workerInfo, om bool) {
	m.sync(infos)
	m.reg.Write(w, om)
}
