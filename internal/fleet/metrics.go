package fleet

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// metrics.go is the router's Prometheus-text exposition, in the same
// dependency-free style as internal/serve: per-worker availability and
// breaker gauges plus fleet-wide counters for every robustness mechanism —
// retries, hedges, failovers, ejections, degraded serves — so an operator
// watching a chaos drill can see exactly which layer absorbed each fault.

// fleetLatencyBuckets are the histogram upper bounds, in seconds.
var fleetLatencyBuckets = []float64{
	0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

type fleetMetrics struct {
	mu       sync.Mutex
	started  time.Time
	requests map[reqKey]uint64 // by route class and status code

	latCounts []uint64
	latSum    float64
	latCount  uint64

	retries      uint64 // sequential failover attempts after a failure
	hedges       uint64 // speculative attempts launched by the latency trigger
	failovers    uint64 // responses ultimately served by a non-primary worker
	degraded     uint64 // last-known-good bodies served with a Warning header
	shed         uint64 // 503s with no worker and no last-known-good body
	probeFails   uint64 // health probes that failed
	ejections    uint64 // workers ejected (up/probation -> down)
	readmissions uint64 // workers readmitted to probation
}

// reqKey labels one requests-counter series.
type reqKey struct {
	route string
	code  int
}

func newFleetMetrics(now time.Time) *fleetMetrics {
	return &fleetMetrics{
		started:   now,
		requests:  map[reqKey]uint64{},
		latCounts: make([]uint64, len(fleetLatencyBuckets)+1),
	}
}

func (m *fleetMetrics) observeRequest(route string, code int, d time.Duration) {
	sec := d.Seconds()
	m.mu.Lock()
	m.requests[reqKey{route, code}]++
	i := sort.SearchFloat64s(fleetLatencyBuckets, sec)
	m.latCounts[i]++
	m.latSum += sec
	m.latCount++
	m.mu.Unlock()
}

func (m *fleetMetrics) addRetry()       { m.mu.Lock(); m.retries++; m.mu.Unlock() }
func (m *fleetMetrics) addHedge()       { m.mu.Lock(); m.hedges++; m.mu.Unlock() }
func (m *fleetMetrics) addFailover()    { m.mu.Lock(); m.failovers++; m.mu.Unlock() }
func (m *fleetMetrics) addDegraded()    { m.mu.Lock(); m.degraded++; m.mu.Unlock() }
func (m *fleetMetrics) addShed()        { m.mu.Lock(); m.shed++; m.mu.Unlock() }
func (m *fleetMetrics) addProbeFail()   { m.mu.Lock(); m.probeFails++; m.mu.Unlock() }
func (m *fleetMetrics) addEjection()    { m.mu.Lock(); m.ejections++; m.mu.Unlock() }
func (m *fleetMetrics) addReadmission() { m.mu.Lock(); m.readmissions++; m.mu.Unlock() }

// counters snapshots the robustness counters, for tests.
func (m *fleetMetrics) counters() (retries, hedges, failovers, degraded, shed uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.retries, m.hedges, m.failovers, m.degraded, m.shed
}

// write renders the exposition; infos carries the per-worker state rows.
func (m *fleetMetrics) write(w io.Writer, now time.Time, infos []workerInfo) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP eliterouter_uptime_seconds Time since the router started.\n")
	fmt.Fprintf(w, "# TYPE eliterouter_uptime_seconds gauge\n")
	fmt.Fprintf(w, "eliterouter_uptime_seconds %.3f\n", now.Sub(m.started).Seconds())

	fmt.Fprintf(w, "# HELP eliterouter_worker_up Whether the health prober considers the worker servable (up or probation).\n")
	fmt.Fprintf(w, "# TYPE eliterouter_worker_up gauge\n")
	available := 0
	for _, wi := range infos {
		up := 0
		if wi.State != "down" {
			up = 1
			available++
		}
		fmt.Fprintf(w, "eliterouter_worker_up{worker=%q} %d\n", wi.Worker, up)
	}
	fmt.Fprintf(w, "# HELP eliterouter_workers_available Workers currently servable.\n")
	fmt.Fprintf(w, "# TYPE eliterouter_workers_available gauge\n")
	fmt.Fprintf(w, "eliterouter_workers_available %d\n", available)

	fmt.Fprintf(w, "# HELP eliterouter_breaker_open Whether the worker's request circuit breaker is open.\n")
	fmt.Fprintf(w, "# TYPE eliterouter_breaker_open gauge\n")
	var trips uint64
	for _, wi := range infos {
		open := 0
		if wi.BreakerOpen {
			open = 1
		}
		trips += wi.brTrips
		fmt.Fprintf(w, "eliterouter_breaker_open{worker=%q} %d\n", wi.Worker, open)
	}

	fmt.Fprintf(w, "# HELP eliterouter_requests_total Routed requests by route class and status code.\n")
	fmt.Fprintf(w, "# TYPE eliterouter_requests_total counter\n")
	keys := make([]reqKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].route != keys[j].route {
			return keys[i].route < keys[j].route
		}
		return keys[i].code < keys[j].code
	})
	for _, k := range keys {
		fmt.Fprintf(w, "eliterouter_requests_total{route=%q,code=\"%d\"} %d\n", k.route, k.code, m.requests[k])
	}

	fmt.Fprintf(w, "# HELP eliterouter_request_duration_seconds Routed request latency.\n")
	fmt.Fprintf(w, "# TYPE eliterouter_request_duration_seconds histogram\n")
	cum := uint64(0)
	for i, ub := range fleetLatencyBuckets {
		cum += m.latCounts[i]
		fmt.Fprintf(w, "eliterouter_request_duration_seconds_bucket{le=\"%g\"} %d\n", ub, cum)
	}
	cum += m.latCounts[len(fleetLatencyBuckets)]
	fmt.Fprintf(w, "eliterouter_request_duration_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "eliterouter_request_duration_seconds_sum %.6f\n", m.latSum)
	fmt.Fprintf(w, "eliterouter_request_duration_seconds_count %d\n", m.latCount)

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("eliterouter_retries_total", "Failover attempts launched after a failed attempt.", m.retries)
	counter("eliterouter_hedges_total", "Speculative (hedged) attempts launched by the latency trigger.", m.hedges)
	counter("eliterouter_failovers_total", "Responses served by a worker other than the rendezvous primary.", m.failovers)
	counter("eliterouter_breaker_trips_total", "Per-worker circuit breaker open transitions.", trips)
	counter("eliterouter_degraded_total", "Last-known-good cached bodies served because every attempt failed.", m.degraded)
	counter("eliterouter_shed_total", "Requests shed with 503 (no worker available, no cached body).", m.shed)
	counter("eliterouter_probe_failures_total", "Health probes that failed.", m.probeFails)
	counter("eliterouter_ejections_total", "Workers ejected by the health prober.", m.ejections)
	counter("eliterouter_readmissions_total", "Workers readmitted to probation after a healthy probe.", m.readmissions)
}
