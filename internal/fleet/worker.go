package fleet

import (
	"fmt"
	"net/url"
	"sort"
	"strings"
	"sync"

	"elites/internal/cache"
)

// worker.go is the per-worker half of the fleet's robustness machinery:
// the health state machine the prober drives (up → down after consecutive
// probe failures, down → probation on the first healthy probe, probation →
// up after a streak of clean probes — with any failure during probation
// sending the worker straight back down), and a request-path circuit
// breaker mirroring the result cache's 3-strike design (consecutive
// request failures open it; while open the worker is skipped except for a
// periodic pass-through probe request).

// workerState is the health prober's verdict on one worker.
type workerState int

const (
	// stateUp: serving normally.
	stateUp workerState = iota
	// stateProbation: readmitted after an ejection, serving traffic again,
	// but one probe or request failure sends it straight back down.
	stateProbation
	// stateDown: ejected; receives no traffic until a probe succeeds.
	stateDown
)

func (s workerState) String() string {
	switch s {
	case stateUp:
		return "up"
	case stateProbation:
		return "probation"
	case stateDown:
		return "down"
	}
	return fmt.Sprintf("workerState(%d)", int(s))
}

// Breaker thresholds, mirroring internal/cache's disk breaker: trip after
// breakerTripAfter consecutive request failures; while open, let every
// breakerProbeAfter-th selection through as a live probe.
const (
	breakerTripAfter  = 3
	breakerProbeAfter = 8
)

// worker is one eliteserve replica plus its health and breaker state.
type worker struct {
	url  *url.URL
	name string // host:port — the metrics label and fault point ("net:<name>")
	hash uint64 // rendezvous half, fixed at construction

	mu         sync.Mutex
	state      workerState
	probeFails int // consecutive failed probes
	probeOKs   int // consecutive clean probes while in probation
	sawDigests bool

	consecFails uint64 // consecutive request failures (breaker input)
	brOpen      bool
	brSkips     uint64 // selections skipped while open, for probe cadence
	brTrips     uint64

	requests uint64 // proxied attempts sent to this worker
	failures uint64 // attempts that failed (transport error or 5xx)
}

// newWorker parses one base URL ("http://127.0.0.1:9001").
func newWorker(raw string) (*worker, error) {
	if !strings.Contains(raw, "://") {
		raw = "http://" + raw
	}
	u, err := url.Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("fleet: worker url %q: %w", raw, err)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("fleet: worker url %q has no host", raw)
	}
	u.Path, u.RawQuery, u.Fragment = "", "", ""
	h := cache.NewHasher()
	h.String("fleet/worker")
	h.String(u.Host)
	return &worker{url: u, name: u.Host, hash: h.Sum()}, nil
}

// score is this worker's rendezvous (highest-random-weight) score for an
// identity key: a pure function of (worker, key), so every router instance
// ranks the same workers identically and a worker leaving never remaps
// identities between the survivors.
func (w *worker) score(key uint64) uint64 {
	h := cache.NewHasher()
	h.Word(w.hash)
	h.Word(key)
	return h.Sum()
}

// rendezvousOrder ranks workers for key by descending score (name-ordered
// on the vanishingly unlikely tie, for determinism).
func rendezvousOrder(workers []*worker, key uint64) []*worker {
	out := make([]*worker, len(workers))
	copy(out, workers)
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := out[i].score(key), out[j].score(key)
		if si != sj {
			return si > sj
		}
		return out[i].name < out[j].name
	})
	return out
}

// selectable reports whether this worker may receive the next request:
// never while down; while the breaker is open, only as the periodic
// pass-through probe (every breakerProbeAfter-th ask).
func (w *worker) selectable() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.state == stateDown {
		return false
	}
	if w.brOpen {
		w.brSkips++
		return w.brSkips%breakerProbeAfter == 0
	}
	return true
}

// available reports whether the prober currently considers the worker
// servable (up or probation) — the eliterouter_worker_up gauge.
func (w *worker) available() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.state != stateDown
}

// noteRequestSuccess records a successful proxied attempt: the breaker
// closes (the live request doubled as its half-open probe) and the
// failure streak resets.
func (w *worker) noteRequestSuccess() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.requests++
	w.consecFails = 0
	if w.brOpen {
		w.brOpen = false
		w.brSkips = 0
	}
}

// noteRequestFailure records a failed attempt; enough in a row trip the
// breaker, and any failure while in probation re-ejects the worker.
// It reports whether this failure tripped the breaker.
func (w *worker) noteRequestFailure() (tripped bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.requests++
	w.failures++
	w.consecFails++
	if w.state == stateProbation {
		w.state = stateDown
		w.probeOKs = 0
	}
	if w.consecFails >= breakerTripAfter && !w.brOpen {
		w.brOpen = true
		w.brSkips = 0
		w.brTrips++
		return true
	}
	return false
}

// noteProbe feeds one health-probe outcome through the state machine.
// ejectAfter is the consecutive-failure ejection threshold, probation the
// clean-probe streak that promotes probation → up. It reports state
// transitions for the metrics (ejected, readmitted to probation).
func (w *worker) noteProbe(ok bool, ejectAfter, probation int) (ejected, readmitted bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if ok {
		w.probeFails = 0
		switch w.state {
		case stateDown:
			w.state = stateProbation
			w.probeOKs = 1
			readmitted = true
		case stateProbation:
			w.probeOKs++
			if w.probeOKs >= probation {
				w.state = stateUp
				w.probeOKs = 0
			}
		}
		// A reachable worker also closes the request breaker: the probe is
		// the half-open check.
		w.consecFails = 0
		if w.brOpen {
			w.brOpen = false
			w.brSkips = 0
		}
		return
	}
	w.probeFails++
	w.probeOKs = 0
	switch w.state {
	case stateProbation:
		w.state = stateDown
		ejected = true
	case stateUp:
		if w.probeFails >= ejectAfter {
			w.state = stateDown
			ejected = true
		}
	}
	return
}

// workerInfo is the JSON row for GET /fleet/workers and the metrics
// snapshot.
type workerInfo struct {
	Worker      string `json:"worker"`
	State       string `json:"state"`
	BreakerOpen bool   `json:"breaker_open"`
	Requests    uint64 `json:"requests"`
	Failures    uint64 `json:"failures"`
	ProbeFails  int    `json:"probe_fails"`

	brTrips uint64
}

func (w *worker) info() workerInfo {
	w.mu.Lock()
	defer w.mu.Unlock()
	return workerInfo{
		Worker:      w.name,
		State:       w.state.String(),
		BreakerOpen: w.brOpen,
		Requests:    w.requests,
		Failures:    w.failures,
		ProbeFails:  w.probeFails,
		brTrips:     w.brTrips,
	}
}
