package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// health.go is the router's active health model. A background prober hits
// every worker's /healthz on a fixed cadence; consecutive failures eject
// the worker (it receives no traffic), the first healthy probe readmits
// it to probation, and a clean streak promotes it back to up — with any
// wobble during probation sending it straight back down. Probes travel
// through the same fault-injected transport as real requests, so a chaos
// spec that drops a worker's connections also ejects it, exactly as a
// real partition would. A draining worker answers /healthz with 503 and
// is ejected the same way: drain + ejection is the fleet's graceful
// removal path.
//
// Healthy probes double as the dataset-digest learning channel: the first
// clean probe after (re)admission fetches the worker's /v1/datasets
// listing and records each dataset's content digest, so the router's
// identity keys match the workers' own cache identities.

// probeLoop runs until Close; probeDone closes on exit.
func (rt *Router) probeLoop() {
	defer close(rt.probeDone)
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.probeStop:
			return
		case <-t.C:
			rt.probeAll(context.Background())
		}
	}
}

// probeAll probes every worker once, concurrently, and applies the state
// machine. Exported via ProbeNow for synchronous use (startup, tests).
func (rt *Router) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, wk := range rt.workers {
		wg.Add(1)
		go func(wk *worker) {
			defer wg.Done()
			rt.probeWorker(ctx, wk)
		}(wk)
	}
	wg.Wait()
}

// ProbeNow runs one synchronous probe round, so callers can settle the
// fleet view before serving (and tests can step the state machine
// deterministically).
func (rt *Router) ProbeNow(ctx context.Context) { rt.probeAll(ctx) }

func (rt *Router) probeWorker(ctx context.Context, wk *worker) {
	timeout := rt.cfg.ProbeInterval
	if timeout > time.Second {
		timeout = time.Second
	}
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	ok := rt.probeOnce(pctx, wk, "/healthz") == http.StatusOK
	if !ok {
		rt.met.addProbeFail()
	}
	ejected, readmitted := wk.noteProbe(ok, rt.cfg.EjectAfter, rt.cfg.ProbationProbes)
	if ejected {
		rt.met.addEjection()
		wk.mu.Lock()
		wk.sawDigests = false
		wk.mu.Unlock()
		if lg := rt.cfg.Logger; lg != nil {
			lg.Warn("worker ejected", "worker", wk.name)
		}
	}
	if readmitted {
		rt.met.addReadmission()
		if lg := rt.cfg.Logger; lg != nil {
			lg.Info("worker readmitted", "worker", wk.name)
		}
	}
	if ok {
		wk.mu.Lock()
		saw := wk.sawDigests
		wk.sawDigests = true
		wk.mu.Unlock()
		if !saw {
			rt.learnDigests(pctx, wk)
		}
	}
}

// probeOnce GETs one worker path through the (fault-injected) transport
// and returns the status code, or 0 on a transport failure.
func (rt *Router) probeOnce(ctx context.Context, wk *worker, path string) int {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, wk.url.String()+path, nil)
	if err != nil {
		return 0
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	// Drain a bounded amount so the connection can be reused.
	buf := make([]byte, 4096)
	for {
		if _, err := resp.Body.Read(buf); err != nil {
			break
		}
	}
	return resp.StatusCode
}

// learnDigests fetches the worker's dataset listing and records each
// dataset's content digest for identity routing. Failures are silent —
// routing falls back to hashing the dataset id, which is still stable.
func (rt *Router) learnDigests(ctx context.Context, wk *worker) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, wk.url.String()+"/v1/datasets", nil)
	if err != nil {
		return
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var listing struct {
		Datasets []struct {
			ID     string `json:"id"`
			Digest string `json:"digest"`
		} `json:"datasets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		return
	}
	rt.digestMu.Lock()
	for _, d := range listing.Datasets {
		if v, err := strconv.ParseUint(d.Digest, 16, 64); err == nil {
			rt.digests[d.ID] = v
		}
	}
	rt.digestMu.Unlock()
}
