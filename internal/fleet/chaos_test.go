package fleet

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"elites/internal/core"
	"elites/internal/faults"
	"elites/internal/serve"
)

// chaos_test.go is the fleet's end-to-end chaos drill: a router fronting
// two REAL serve.Servers (full pipeline, shared result cache) under
// deterministic network faults — injected latency, connection drops and
// 5xx bursts — with one worker killed outright mid-load. The acceptance
// bar: a 200-request load completes with zero 5xx responses, every
// degraded body is byte-identical to a worker's own non-degraded body for
// the same identity, and the failover/retry/breaker counters are visible
// in /metrics. Run under -race by the chaos CI job.

// newChaosWorker builds one real serving stack over a small generated
// dataset. Both workers generate from the same seed and share cacheDir,
// so their bodies are byte-identical and warm requests hydrate from the
// shared content-addressed cache.
func newChaosWorker(t *testing.T, cacheDir string) (*httptest.Server, string) {
	t.Helper()
	s := serve.New(serve.Config{
		Options: core.Options{
			DistanceSources:    20,
			BetweennessSources: 8,
			EigenK:             8,
			BootstrapReps:      3,
			Seed:               7,
			CacheDir:           cacheDir,
		},
		MaxConcurrent: 2,
		MaxQueue:      64,
	})
	if err := s.RegisterGenerated("demo", "verified", 300, 11); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts, strings.TrimPrefix(ts.URL, "http://")
}

func TestChaosFleetLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos drill runs full pipelines; skipped in -short")
	}
	cacheDir := t.TempDir()
	tsA, addrA := newChaosWorker(t, cacheDir)
	_, addrB := newChaosWorker(t, cacheDir)

	// The identities under load: report classes (the coalescer/cache
	// identity the fleet hashes on) plus cheap reads.
	targets := []string{
		"/v1/datasets/demo/report?stages=summary",
		"/v1/datasets/demo/report?stages=summary,degree",
		"/v1/datasets/demo/report?stages=summary&format=text",
		"/v1/datasets/demo",
		"/v1/datasets",
	}

	// Baselines: each worker's own non-degraded body, fetched directly
	// (no router, no faults). Also verifies the two workers agree byte
	// for byte, which is what makes failover invisible to clients.
	baseline := map[string][]byte{}
	for _, target := range targets {
		bodyA := directGet(t, tsA.URL+target)
		baseline[target] = bodyA
	}

	// Deterministic network chaos, every mechanism at once:
	//   - worker A's connections drop for a burst mid-load,
	//   - a fleet-wide 5xx burst later on,
	//   - probabilistic added latency throughout.
	spec := fmt.Sprintf("net:%s=drop:times=8:after=10,net:*=5xx:times=5:after=60,net:*=slow:delay=200us:p=0.2", addrA)
	inj, err := faults.Parse(spec, 1)
	if err != nil {
		t.Fatal(err)
	}

	rt, err := New(Config{
		Workers:         []string{addrA, addrB},
		ProbeInterval:   time.Hour, // probes driven manually
		EjectAfter:      3,
		ProbationProbes: 3,
		Retries:         2,
		RequestTimeout:  60 * time.Second,
		BackoffBase:     time.Millisecond,
		BackoffCap:      5 * time.Millisecond,
		HedgeAfter:      2 * time.Second, // static trigger; latency is bounded here
		CacheDir:        cacheDir,
		Faults:          inj,
		Seed:            42,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.ProbeNow(context.Background())

	front := httptest.NewServer(rt)
	defer front.Close()

	const load = 200
	const killAt = 90 // worker A dies mid-load
	degradedSeen := 0
	for i := 0; i < load; i++ {
		if i == killAt {
			tsA.Close()
			// The prober notices within EjectAfter rounds; in production
			// this is EjectAfter*ProbeInterval of wall clock.
			for p := 0; p < 3; p++ {
				rt.ProbeNow(context.Background())
			}
		}
		target := targets[i%len(targets)]
		resp, err := front.Client().Get(front.URL + target)
		if err != nil {
			t.Fatalf("request %d (%s): %v", i, target, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("request %d (%s): reading body: %v", i, target, err)
		}
		if resp.StatusCode >= 500 {
			t.Fatalf("request %d (%s): %d leaked through the degradation ladder\n%s",
				i, target, resp.StatusCode, body)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d (%s): %d, want 200", i, target, resp.StatusCode)
		}
		if resp.Header.Get("X-Elites-Degraded") == "true" {
			degradedSeen++
			if !strings.Contains(resp.Header.Get("Warning"), "last-known-good") {
				t.Fatalf("request %d: degraded response without Warning header", i)
			}
		}
		// Degraded or not, every body must be byte-identical to the
		// worker's own non-degraded body for the identity: degraded reads
		// serve recorded clean bytes, healthy reads hydrate the shared
		// cache, and the two workers generate identical datasets.
		if !bytes.Equal(body, baseline[target]) {
			t.Fatalf("request %d (%s): body diverged from baseline (degraded=%v)\n got %d bytes, want %d",
				i, target, resp.Header.Get("X-Elites-Degraded") == "true", len(body), len(baseline[target]))
		}
	}

	// The chaos must actually have exercised the machinery.
	retries, _, failovers, _, shed := rt.met.counters()
	if shed != 0 {
		t.Fatalf("%d requests shed: the last-known-good floor has holes", shed)
	}
	if retries == 0 || failovers == 0 {
		t.Fatalf("chaos did not engage the ladder: retries=%d failovers=%d", retries, failovers)
	}

	// And the fleet view tells the story: A down, B carrying the load,
	// counters exposed.
	resp, err := front.Client().Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		fmt.Sprintf("eliterouter_worker_up{worker=%q} 0", addrA),
		fmt.Sprintf("eliterouter_worker_up{worker=%q} 1", addrB),
		"eliterouter_workers_available 1",
		"eliterouter_retries_total",
		"eliterouter_failovers_total",
		"eliterouter_breaker_trips_total",
		"eliterouter_ejections_total 1",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
	t.Logf("chaos drill: %d requests, %d retries, %d failovers, %d degraded, 0 shed",
		load, retries, failovers, degradedSeen)
}

// TestChaosWorkerDrainFailover: draining a worker (the fleet's graceful
// removal path) turns its health surface red; the prober ejects it and
// traffic fails over with zero errors.
func TestChaosWorkerDrainFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full pipelines; skipped in -short")
	}
	cacheDir := t.TempDir()
	tsA, addrA := newChaosWorker(t, cacheDir)
	_, addrB := newChaosWorker(t, cacheDir)

	rt, err := New(Config{
		Workers:        []string{addrA, addrB},
		ProbeInterval:  time.Hour,
		EjectAfter:     3,
		Retries:        2,
		BackoffBase:    time.Millisecond,
		BackoffCap:     5 * time.Millisecond,
		RequestTimeout: 60 * time.Second,
		CacheDir:       cacheDir,
		Seed:           42,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	const target = "/v1/datasets/demo/report?stages=summary"
	want := directGet(t, tsA.URL+target)

	rec := doGet(rt, target)
	if rec.Code != http.StatusOK || !bytes.Equal(rec.Body.Bytes(), want) {
		t.Fatalf("pre-drain request: %d", rec.Code)
	}

	// Drain A: its healthz turns 503 and the prober ejects it.
	resp, err := http.Post(tsA.URL+"/v1/admin/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for i := 0; i < 3; i++ {
		rt.ProbeNow(context.Background())
	}
	for _, w := range rt.workers {
		if w.name == addrA && w.available() {
			t.Fatal("drained worker not ejected")
		}
	}

	// Every identity still serves, now from B, byte-identical.
	for i := 0; i < 10; i++ {
		rec := doGet(rt, target)
		if rec.Code != http.StatusOK {
			t.Fatalf("post-drain request %d: %d", i, rec.Code)
		}
		if !bytes.Equal(rec.Body.Bytes(), want) {
			t.Fatalf("post-drain body diverged on request %d", i)
		}
		if got := rec.Header().Get("X-Elites-Worker"); got != addrB {
			t.Fatalf("post-drain request %d served by %q, want %q", i, got, addrB)
		}
	}
}

func directGet(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}
