package text

import (
	"strings"
	"testing"
)

func TestTokenizeBasics(t *testing.T) {
	toks := Tokenize("Official Twitter account of the New York Times.")
	want := []string{"official", "twitter", "account", "of", "the", "new", "york", "times"}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("tokens = %v", toks)
		}
	}
}

func TestTokenizeDropsURLsAndMentions(t *testing.T) {
	toks := Tokenize("Host of @show — watch https://example.com/live or www.example.org now")
	for _, tok := range toks {
		if strings.Contains(tok, "example") || strings.Contains(tok, "show") {
			t.Fatalf("URL/mention leaked: %v", toks)
		}
	}
}

func TestTokenizeHashtagsAndApostrophes(t *testing.T) {
	toks := Tokenize("#Journalist editor's picks")
	if toks[0] != "journalist" {
		t.Fatalf("hashtag handling: %v", toks)
	}
	found := false
	for _, tok := range toks {
		if tok == "editor's" {
			found = true
		}
	}
	if !found {
		t.Fatalf("apostrophe handling: %v", toks)
	}
}

func TestTokenizePunctuationSplit(t *testing.T) {
	toks := Tokenize("Singer/Songwriter, producer|mixer")
	want := map[string]bool{"singer": true, "songwriter": true, "producer": true, "mixer": true}
	if len(toks) != 4 {
		t.Fatalf("tokens = %v", toks)
	}
	for _, tok := range toks {
		if !want[tok] {
			t.Fatalf("unexpected token %q", tok)
		}
	}
}

func TestCounterBigrams(t *testing.T) {
	c := NewCounter(2)
	c.AddText("official twitter account")
	c.AddText("official twitter page")
	if c.Count("official", "twitter") != 2 {
		t.Fatalf("count = %d", c.Count("official", "twitter"))
	}
	if c.Count("twitter", "account") != 1 {
		t.Fatal("bigram missing")
	}
	if c.Count("account", "official") != 0 {
		t.Fatal("cross-document bigram should not exist")
	}
}

func TestCounterShortDocs(t *testing.T) {
	c := NewCounter(3)
	c.AddText("too short")
	if c.Distinct() != 0 {
		t.Fatal("short docs should contribute nothing")
	}
}

func TestTopFiltersStopwordMajority(t *testing.T) {
	c := NewCounter(3)
	for i := 0; i < 10; i++ {
		c.AddText("editor in chief")    // 1/3 stopwords: keep
		c.AddText("one of the best")    // "of the" inside: the trigrams
		c.AddText("to be or not to be") // heavy stopwords: drop
	}
	top := c.Top(10)
	phrases := map[string]int{}
	for _, g := range top {
		phrases[g.Phrase()] = g.Count
	}
	if phrases["Editor In Chief"] != 10 {
		t.Fatalf("Editor In Chief missing: %v", phrases)
	}
	for p := range phrases {
		lower := strings.ToLower(p)
		if strings.Contains(lower, "to be or") || lower == "of the best" {
			t.Fatalf("stopword-heavy phrase survived: %q", p)
		}
	}
}

func TestTopOrderingDeterministic(t *testing.T) {
	c := NewCounter(1)
	c.AddText("alpha beta beta gamma gamma")
	top := c.Top(3)
	if len(top) != 3 {
		t.Fatalf("top = %v", top)
	}
	if top[0].Count != 2 || top[1].Count != 2 || top[2].Count != 1 {
		t.Fatalf("counts = %v", top)
	}
	// Tie broken lexicographically: beta before gamma.
	if top[0].Phrase() != "Beta" || top[1].Phrase() != "Gamma" {
		t.Fatalf("tie order = %v, %v", top[0].Phrase(), top[1].Phrase())
	}
}

func TestTopDropsSingleRuneTokens(t *testing.T) {
	c := NewCounter(1)
	for i := 0; i < 5; i++ {
		c.AddText("x factor")
	}
	for _, g := range c.Top(10) {
		if g.Phrase() == "X" {
			t.Fatal("single-rune token should be filtered")
		}
	}
}

func TestPhraseTitleCase(t *testing.T) {
	g := NGram{Tokens: []string{"official", "twitter", "account"}}
	if g.Phrase() != "Official Twitter Account" {
		t.Fatalf("Phrase = %q", g.Phrase())
	}
}

func TestIsStopword(t *testing.T) {
	if !IsStopword("the") || IsStopword("official") {
		t.Fatal("stopword classification wrong")
	}
}

func TestBuildCloudWeights(t *testing.T) {
	grams := []NGram{
		{Tokens: []string{"journalist"}, Count: 100},
		{Tokens: []string{"producer"}, Count: 25},
	}
	cloud := BuildCloud(grams)
	if cloud[0].Weight != 1 {
		t.Fatalf("top weight = %v", cloud[0].Weight)
	}
	if cloud[1].Weight != 0.5 { // sqrt(25/100)
		t.Fatalf("second weight = %v", cloud[1].Weight)
	}
	if BuildCloud(nil) != nil {
		t.Fatal("empty cloud")
	}
}

func TestRenderASCII(t *testing.T) {
	grams := []NGram{
		{Tokens: []string{"journalist"}, Count: 100},
		{Tokens: []string{"producer"}, Count: 50},
		{Tokens: []string{"author"}, Count: 10},
		{Tokens: []string{"founder"}, Count: 2},
	}
	out := RenderASCII(BuildCloud(grams), 60)
	if !strings.Contains(out, "JOURNALIST") {
		t.Fatalf("dominant word not emphasized:\n%s", out)
	}
	if !strings.Contains(out, "Founder") {
		t.Fatalf("small word missing:\n%s", out)
	}
	// Lines respect the width roughly (allow decoration slack).
	for _, line := range strings.Split(out, "\n") {
		if len([]rune(line)) > 80 {
			t.Fatalf("line too long: %q", line)
		}
	}
}
