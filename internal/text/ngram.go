// Package text implements the bio-analysis pipeline of the paper's §IV-E:
// tokenization of user biographies, stopword handling, unigram/bigram/
// trigram frequency counting (Tables I and II), top-k selection, and an
// ASCII word-cloud renderer (Figure 4).
package text

import (
	"sort"
	"strings"
	"unicode"
)

// Tokenize lowercases and splits a bio into word tokens. Letters, digits and
// intra-word apostrophes survive; URLs and @mentions are dropped whole;
// #hashtags keep their word. This mirrors the usual social-bio preprocessing
// before n-gram counting.
func Tokenize(s string) []string {
	fields := strings.Fields(s)
	var out []string
	for _, f := range fields {
		lf := strings.ToLower(f)
		if strings.HasPrefix(lf, "http://") || strings.HasPrefix(lf, "https://") ||
			strings.HasPrefix(lf, "www.") || strings.HasPrefix(lf, "@") {
			continue
		}
		lf = strings.TrimPrefix(lf, "#")
		var b strings.Builder
		for _, r := range lf {
			switch {
			case unicode.IsLetter(r) || unicode.IsDigit(r):
				b.WriteRune(r)
			case r == '\'':
				// keep intra-word apostrophes ("editor's")
				if b.Len() > 0 {
					b.WriteRune(r)
				}
			default:
				if b.Len() > 0 {
					out = appendToken(out, b.String())
					b.Reset()
				}
			}
		}
		if b.Len() > 0 {
			out = appendToken(out, b.String())
		}
	}
	return out
}

func appendToken(out []string, tok string) []string {
	tok = strings.TrimRight(tok, "'")
	if tok == "" {
		return out
	}
	return append(out, tok)
}

// defaultStopwords is the non-informative word list used when filtering
// n-grams "constituted largely of non-informative words" (§IV-E). It holds
// function words only — content words like "official" must survive.
var defaultStopwords = map[string]bool{
	"a": true, "an": true, "the": true, "and": true, "or": true, "but": true,
	"of": true, "in": true, "on": true, "at": true, "to": true, "for": true,
	"by": true, "with": true, "from": true, "as": true, "is": true,
	"are": true, "was": true, "were": true, "be": true, "been": true,
	"am": true, "it": true, "its": true, "i": true, "im": true, "we": true,
	"you": true, "he": true, "she": true, "they": true, "my": true,
	"our": true, "your": true, "his": true, "her": true, "their": true,
	"me": true, "us": true, "this": true, "that": true, "these": true,
	"those": true, "all": true, "not": true, "no": true, "so": true,
	"do": true, "does": true, "did": true, "have": true, "has": true,
	"had": true, "will": true, "would": true, "can": true, "could": true,
	"about": true, "into": true, "over": true, "than": true, "then": true,
	"too": true, "very": true, "just": true, "more": true, "most": true,
	"here": true, "there": true, "when": true, "where": true, "what": true,
	"who": true, "how": true, "why": true, "up": true, "down": true,
	"out": true, "if": true, "because": true, "while": true, "also": true,
	"et": true, "de": true, "la": true, "el": true, "y": true,
}

// IsStopword reports whether tok is in the default stopword list.
func IsStopword(tok string) bool { return defaultStopwords[tok] }

// NGram is an n-token phrase with its occurrence count.
type NGram struct {
	Tokens []string
	Count  int
}

// Phrase renders the n-gram in Title Case, the presentation style of the
// paper's tables ("Official Twitter Account").
func (g NGram) Phrase() string {
	parts := make([]string, len(g.Tokens))
	for i, t := range g.Tokens {
		parts[i] = titleCase(t)
	}
	return strings.Join(parts, " ")
}

func titleCase(t string) string {
	if t == "" {
		return t
	}
	r := []rune(t)
	r[0] = unicode.ToUpper(r[0])
	return string(r)
}

// Counter accumulates n-gram counts over a corpus for a fixed n.
type Counter struct {
	n      int
	counts map[string]int
}

// NewCounter returns a counter for n-grams of the given order (1, 2, 3, ...).
func NewCounter(n int) *Counter {
	if n < 1 {
		n = 1
	}
	return &Counter{n: n, counts: make(map[string]int)}
}

// Add counts the n-grams of one document's token stream. N-grams never cross
// document boundaries.
func (c *Counter) Add(tokens []string) {
	if len(tokens) < c.n {
		return
	}
	for i := 0; i+c.n <= len(tokens); i++ {
		key := strings.Join(tokens[i:i+c.n], "\x00")
		c.counts[key]++
	}
}

// AddText tokenizes and counts a raw document.
func (c *Counter) AddText(doc string) { c.Add(Tokenize(doc)) }

// Distinct returns the number of distinct n-grams seen.
func (c *Counter) Distinct() int { return len(c.counts) }

// Top returns the k most frequent n-grams after filtering. An n-gram is
// dropped when the majority of its tokens are stopwords (so "Editor in
// Chief" survives with 1/3 stopwords, while "of the and" dies), or when any
// token is shorter than 2 runes. Ties break lexicographically for
// determinism.
func (c *Counter) Top(k int) []NGram {
	type kv struct {
		key   string
		count int
	}
	var items []kv
	for key, cnt := range c.counts {
		toks := strings.Split(key, "\x00")
		stop := 0
		bad := false
		for _, t := range toks {
			if IsStopword(t) {
				stop++
			}
			if len([]rune(t)) < 2 {
				bad = true
			}
		}
		if bad || stop*2 > len(toks) {
			continue
		}
		items = append(items, kv{key, cnt})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].count != items[j].count {
			return items[i].count > items[j].count
		}
		return items[i].key < items[j].key
	})
	if k > len(items) {
		k = len(items)
	}
	out := make([]NGram, k)
	for i := 0; i < k; i++ {
		out[i] = NGram{
			Tokens: strings.Split(items[i].key, "\x00"),
			Count:  items[i].count,
		}
	}
	return out
}

// Count returns the count of an exact n-gram (tokens already lowercase).
func (c *Counter) Count(tokens ...string) int {
	return c.counts[strings.Join(tokens, "\x00")]
}
