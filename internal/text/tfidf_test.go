package text

import "testing"

func TestDistinctiveTermsSeparatesGroups(t *testing.T) {
	groups := map[string][]string{
		"journalist": {
			"award winning journalist covering politics",
			"journalist and editor breaking news",
			"news reporter journalist",
		},
		"athlete": {
			"professional rugby player",
			"olympic athlete and rugby player",
			"rugby player for the tigers",
		},
	}
	out := DistinctiveTerms(groups, 5)
	if len(out) != 2 {
		t.Fatalf("groups = %d", len(out))
	}
	hasTerm := func(terms []DistinctiveTerm, want string) bool {
		for _, tt := range terms {
			if tt.Term == want {
				return true
			}
		}
		return false
	}
	if !hasTerm(out["journalist"], "journalist") {
		t.Fatalf("journalist terms = %v", out["journalist"])
	}
	if !hasTerm(out["athlete"], "rugby") {
		t.Fatalf("athlete terms = %v", out["athlete"])
	}
	// Shared terms ("player" appears only in athlete; "and" is a
	// stopword) must not leak stopwords.
	for _, terms := range out {
		for _, tt := range terms {
			if IsStopword(tt.Term) {
				t.Fatalf("stopword %q leaked", tt.Term)
			}
			if tt.Count <= 0 || tt.Score <= 0 {
				t.Fatalf("bad term stats: %+v", tt)
			}
		}
	}
}

func TestDistinctiveTermsSharedTermsSuppressed(t *testing.T) {
	groups := map[string][]string{
		"a": {"common alpha alpha", "common alpha"},
		"b": {"common beta beta", "common beta"},
		"c": {"common gamma gamma", "common gamma"},
	}
	out := DistinctiveTerms(groups, 3)
	for name, terms := range out {
		if len(terms) == 0 {
			t.Fatalf("group %s empty", name)
		}
		if terms[0].Term == "common" {
			t.Fatalf("group %s: shared term ranked first", name)
		}
	}
}

func TestDistinctiveTermsEmptyGroup(t *testing.T) {
	out := DistinctiveTerms(map[string][]string{
		"full":  {"hello world"},
		"empty": {},
	}, 5)
	if out["empty"] != nil {
		t.Fatalf("empty group terms = %v", out["empty"])
	}
}

func TestDistinctiveTermsTopKClamp(t *testing.T) {
	out := DistinctiveTerms(map[string][]string{
		"a": {"one two three four five six"},
		"b": {"seven eight"},
	}, 2)
	if len(out["a"]) > 2 {
		t.Fatalf("topK not applied: %v", out["a"])
	}
	// topK <= 0 defaults.
	out = DistinctiveTerms(map[string][]string{"a": {"x yz zz"}, "b": {"ww"}}, 0)
	if out == nil {
		t.Fatal("default topK failed")
	}
}
