package text

import (
	"math"
	"sort"
)

// DistinctiveTerm is a term scored by how characteristic it is of one group
// of documents relative to the others.
type DistinctiveTerm struct {
	Term  string
	Score float64 // tf·idf with idf over groups
	Count int     // raw occurrences within the group
}

// DistinctiveTerms computes, for each named group of documents (e.g. bios
// per user category), the terms that most distinguish it: term frequency
// within the group times log(#groups / #groups containing the term).
// Stopwords and single-rune tokens are excluded. Used for the topical-
// homophily analysis (Semertzidis et al. in the paper's related work: "how
// people describe themselves").
func DistinctiveTerms(groups map[string][]string, topK int) map[string][]DistinctiveTerm {
	if topK <= 0 {
		topK = 10
	}
	// Per-group term counts and group document frequency.
	counts := make(map[string]map[string]int, len(groups))
	groupsWith := make(map[string]int)
	for name, docs := range groups {
		c := make(map[string]int)
		for _, doc := range docs {
			for _, tok := range Tokenize(doc) {
				if IsStopword(tok) || len([]rune(tok)) < 2 {
					continue
				}
				c[tok]++
			}
		}
		counts[name] = c
		for term := range c {
			groupsWith[term]++
		}
	}
	nGroups := float64(len(groups))
	out := make(map[string][]DistinctiveTerm, len(groups))
	for name, c := range counts {
		total := 0
		for _, n := range c {
			total += n
		}
		if total == 0 {
			out[name] = nil
			continue
		}
		terms := make([]DistinctiveTerm, 0, len(c))
		for term, n := range c {
			idf := math.Log((nGroups + 1) / (float64(groupsWith[term]) + 0.5))
			if idf <= 0 {
				continue
			}
			terms = append(terms, DistinctiveTerm{
				Term:  term,
				Score: float64(n) / float64(total) * idf,
				Count: n,
			})
		}
		sort.Slice(terms, func(i, j int) bool {
			if terms[i].Score != terms[j].Score {
				return terms[i].Score > terms[j].Score
			}
			return terms[i].Term < terms[j].Term
		})
		if len(terms) > topK {
			terms = terms[:topK]
		}
		out[name] = terms
	}
	return out
}
