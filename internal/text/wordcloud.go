package text

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CloudEntry is a word with the weight that controls its render size.
type CloudEntry struct {
	Word   string
	Count  int
	Weight float64 // normalized to (0, 1]
}

// BuildCloud converts top unigrams into weighted cloud entries, weighting by
// sqrt of the count ratio so mid-frequency words remain visible — the usual
// word-cloud scaling.
func BuildCloud(grams []NGram) []CloudEntry {
	if len(grams) == 0 {
		return nil
	}
	maxCount := grams[0].Count
	for _, g := range grams {
		if g.Count > maxCount {
			maxCount = g.Count
		}
	}
	out := make([]CloudEntry, len(grams))
	for i, g := range grams {
		out[i] = CloudEntry{
			Word:   g.Phrase(),
			Count:  g.Count,
			Weight: math.Sqrt(float64(g.Count) / float64(maxCount)),
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Word < out[j].Word
	})
	return out
}

// RenderASCII lays the cloud out as rows of words in five size buckets,
// largest first, wrapped to the given width. It is the terminal stand-in for
// the paper's Figure 4 graphic.
func RenderASCII(cloud []CloudEntry, width int) string {
	if width < 20 {
		width = 20
	}
	var b strings.Builder
	styles := []struct {
		min    float64
		format string
	}{
		{0.8, "█ %s █"},
		{0.6, "▓ %s ▓"},
		{0.4, "▒ %s ▒"},
		{0.2, "░ %s ░"},
		{0.0, "%s"},
	}
	lineLen := 0
	for _, e := range cloud {
		var word string
		for _, s := range styles {
			if e.Weight >= s.min {
				if e.Weight >= 0.6 {
					word = fmt.Sprintf(s.format, strings.ToUpper(e.Word))
				} else {
					word = fmt.Sprintf(s.format, e.Word)
				}
				break
			}
		}
		w := len([]rune(word)) + 2
		if lineLen+w > width && lineLen > 0 {
			b.WriteByte('\n')
			lineLen = 0
		}
		b.WriteString(word)
		b.WriteString("  ")
		lineLen += w
	}
	if lineLen > 0 {
		b.WriteByte('\n')
	}
	return b.String()
}
